// What-if analysis: how does query performance respond to the space
// budget, and where do the diminishing returns set in? Sweeps the budget
// on the paper's TPC-D instance for several algorithms and prints the
// cost-vs-space frontier, the kind of chart a DBA would consult before
// buying disks.

#include <cstdio>

#include "common/format.h"
#include "common/table_printer.h"
#include "core/advisor.h"
#include "data/tpcd.h"

int main() {
  using namespace olapidx;
  CubeSchema schema = TpcdSchema();
  CubeLattice lattice(schema);
  CubeGraphOptions gopts;
  gopts.raw_scan_penalty = 2.0;
  Advisor advisor(schema, TpcdPaperSizes(), AllSliceQueries(lattice),
                  gopts);

  double everything = TpcdPaperSizes().TotalViewSpace() +
                      TpcdPaperSizes().TotalFatIndexSpace();
  std::printf("What-if: average query cost vs space budget (TPC-D, "
              "materialize-everything = %s rows)\n\n",
              FormatRowCount(everything).c_str());

  TablePrinter t({"budget", "inner-level", "1-greedy",
                  "two-step 50/50 strict", "views-only"});
  for (double budget : {2e6, 5e6, 8e6, 12e6, 16e6, 20e6, 25e6, 30e6, 40e6,
                        81e6}) {
    std::vector<std::string> row = {FormatRowCount(budget)};
    for (Algorithm algo : {Algorithm::kInnerLevel, Algorithm::kOneGreedy,
                           Algorithm::kTwoStep, Algorithm::kHruViewsOnly}) {
      AdvisorConfig config;
      config.algorithm = algo;
      config.space_budget = budget;
      config.two_step.index_fraction = 0.5;
      config.two_step.strict_fit = true;
      Recommendation rec = advisor.Recommend(config);
      row.push_back(FormatRowCount(rec.average_query_cost));
    }
    t.AddRow(row);
  }
  t.Print();

  // ASCII frontier for the inner-level column.
  std::printf("\nInner-level frontier (each # = 100K rows of average "
              "query cost):\n");
  for (double budget : {2e6, 5e6, 8e6, 12e6, 16e6, 20e6, 25e6, 30e6}) {
    AdvisorConfig config;
    config.algorithm = Algorithm::kInnerLevel;
    config.space_budget = budget;
    Recommendation rec = advisor.Recommend(config);
    int bars = static_cast<int>(rec.average_query_cost / 1e5);
    std::printf("  %6s |%s\n", FormatRowCount(budget).c_str(),
                std::string(static_cast<size_t>(bars), '#').c_str());
  }
  std::printf("\nReading the knee: beyond ~25M rows the curve is flat — "
              "Example 2.1's law of diminishing returns.\n");
  return 0;
}
