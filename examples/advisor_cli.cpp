// advisor_cli: a command-line physical-design advisor.
//
//   advisor_cli --dims p:200000,s:10000,c:100000
//               [--rows 6000000 | --sizes sizes.txt]
//               [--workload log.txt] --budget 25000000
//               [--algorithm inner|1greedy|2greedy|3greedy|twostep|
//                viewsonly|optimal]
//               [--index-fraction 0.5] [--maintenance 0.0]
//               [--raw-penalty 2.0] [--threads N] [--out design.txt]
//               [--dump-sizes sizes.txt]
//               [--deadline-ms 500] [--max-stages N]
//               [--checkpoint ckpt.txt] [--resume ckpt.txt]
//               [--metrics-json metrics.json] [--trace-json trace.json]
//               [--sparse] [--top-queries N] [--query-mass F]
//               [--max-views N] [--beam B]
//               [--zipf-queries N] [--zipf-skew S] [--zipf-seed SEED]
//               [--cost-model paper|calibrated:FILE]
//   advisor_cli --csv facts.csv --budget 10000 [...]
//   advisor_cli --hierarchy store:400/60/8,day:365/12 --rows 3000000
//               --budget 50000 [...]
//
// --sparse switches to the workload-pruned graph (core/sparse_cube_graph.h)
// and is the only way past n = 8: --top-queries/--query-mass prune the
// workload, --max-views caps the retained lattice, and cost columns are
// stored compressed. --beam B caps per-stage greedy re-evaluations at the
// B most promising dirty views (stale-bound ranking); the printed beam
// factor is the a-posteriori per-stage guarantee. Beyond 10 dimensions a
// workload must be explicit: --workload FILE or --zipf-queries N (a
// sampled Zipf(--zipf-skew) workload of N distinct slice queries,
// deterministic in --zipf-seed).
//
// --replay FILE replays a saved workload (query-log format, counts
// expanded into repeated requests) through the batched serving path
// (engine/batch_executor.h) against the recommended design — views
// compressed to columnar stores — and prints the measured totals next to
// the model-predicted cost of the same workload on the same design. The
// replay runs on the --csv facts when given, else on synthetic Zipf facts
// sized from --rows (capped at 250K rows). Incompatible with --hierarchy.
//
// --cost-model picks the edge-cost model behind the CostModel seam:
// "paper" (the default |C|/|E| linear model) or "calibrated:FILE", an
// "olapidx-costmodel v1" file fitted by the calibration pipeline (write
// one with bench_calibration --save-model=FILE). A missing or malformed
// model file exits with the InvalidArgument exit code. Works in all three
// modes (flat, --sparse, --hierarchy).
//
// --hierarchy switches to the hierarchical lattice: each dimension lists
// its per-level cardinalities finest→coarsest (store:400/60/8 = 400
// stores, 60 cities, 8 regions, plus the implicit ALL). Sizes come from
// the analytical model (--rows is required), the workload is all
// hierarchical slice queries (or a sampled Zipf workload with
// --zipf-queries), and the recommendation is printed as level vectors
// plus index dimension orders. --sparse composes with --hierarchy: the
// workload-pruned hierarchical build (--top-queries/--query-mass/
// --max-views apply) with compressed cost columns and the streaming edge
// sink, the only way past lattices whose dense census overflows. The
// flat-cube inputs (--dims, --csv, --sizes, --workload, --out,
// --dump-sizes, --checkpoint, --resume, --replay) do not apply in this
// mode; --algorithm, --budget, --raw-penalty, --maintenance, --threads,
// --deadline-ms, --max-stages, --metrics-json, and --trace-json all do.
//
// Dimension sizes come from --sizes (olapidx-sizes v1 file), from the
// analytical model given --rows, or — with --csv — measured from the data
// itself (exact distinct counts up to 200K rows, HyperLogLog beyond). The
// workload file uses the query-log format of workload/query_log.h;
// without it, all 3^n slice queries are equiprobable. The chosen design
// is printed and optionally written in the olapidx-design v1 format
// (see core/serialize.h).
//
// Anytime runs: --deadline-ms (wall clock) and --max-stages (deterministic
// stage budget) interrupt the greedy algorithms mid-run; the best-so-far
// Observability: --metrics-json FILE writes the run's metrics-registry
// delta (common/metrics.h JSON form; "{}"-like empty document when the
// build has OLAPIDX_METRICS=OFF), and --trace-json FILE enables the span
// tracer for the run and writes the captured spans (common/trace.h).
//
// design is printed, and with --checkpoint FILE the pick prefix is saved
// in the olapidx-checkpoint v1 format. A later run with --resume FILE (and
// the same inputs, algorithm, and budget) continues where it stopped,
// reproducing the uninterrupted pick sequence bit-exactly.
//
// Exit codes: 0 on success, 2 for usage errors and plain file I/O
// failures, and a distinct per-StatusCode value (common/status.h,
// StatusExitCode: 3..13) for every failure that carries a Status — so a
// wrapping script can tell a corrupt checkpoint (data loss) from a
// mismatched one (failed precondition) without parsing stderr. All errors
// go to stderr; stdout carries only the design.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "calibration/calibrator.h"
#include "common/format.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/advisor.h"
#include "core/serialize.h"
#include "cost/calibrated_cost_model.h"
#include "cost/cost_model.h"
#include "hierarchy/hierarchical_advisor.h"
#include "cost/analytical_model.h"
#include "data/csv_loader.h"
#include "data/fact_generator.h"
#include "data/size_estimation.h"
#include "workload/query_log.h"

namespace {

using namespace olapidx;

[[noreturn]] void Usage(const char* message) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n", message);
  std::fprintf(
      stderr,
      "usage: advisor_cli --dims name:card[,name:card...] --budget ROWS\n"
      "       [--rows N | --sizes FILE] [--workload FILE]\n"
      "       [--hierarchy name:c1/c2[,name:c1...] --rows N]\n"
      "       [--algorithm inner|1greedy|2greedy|3greedy|twostep|"
      "viewsonly|optimal]\n"
      "       [--index-fraction F] [--maintenance RATE] "
      "[--raw-penalty P] [--threads N] [--out FILE]\n"
      "       [--deadline-ms MS] [--max-stages N] [--checkpoint FILE] "
      "[--resume FILE]\n"
      "       [--metrics-json FILE] [--trace-json FILE]\n"
      "       [--sparse] [--top-queries N] [--query-mass F] "
      "[--max-views N] [--beam B]\n"
      "       [--zipf-queries N] [--zipf-skew S] [--zipf-seed SEED]\n"
      "       [--cost-model paper|calibrated:FILE] [--replay FILE]\n");
  std::exit(2);
}

void WriteFileOrDie(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out || !(out << text) || !out.flush()) {
    std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
    std::exit(2);
  }
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read '%s'\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --hierarchy mode: parse "name:c1/c2[,name:c1...]" (per-level
// cardinalities finest→coarsest), build the hierarchical advisor over
// analytical sizes, run the shared AdvisorConfig, and print the design as
// level vectors + index dimension orders.
int RunHierarchy(const std::string& hierarchy_arg, double rows,
                 double budget, const AdvisorConfig& config,
                 double raw_penalty, double maintenance, long threads,
                 std::shared_ptr<const CostModel> cost_model,
                 const std::string& metrics_json_path,
                 const std::string& trace_json_path, bool sparse,
                 long top_queries, double query_mass, long max_views,
                 long zipf_queries, double zipf_skew, long zipf_seed) {
  std::vector<HierarchicalDimension> dims;
  std::istringstream in(hierarchy_arg);
  std::string item;
  while (std::getline(in, item, ',')) {
    size_t colon = item.find(':');
    if (colon == std::string::npos || colon == 0) {
      Usage("bad --hierarchy entry (want name:card[/card...])");
    }
    HierarchicalDimension dim;
    dim.name = item.substr(0, colon);
    std::istringstream levels(item.substr(colon + 1));
    std::string card_text;
    uint64_t previous = 0;
    while (std::getline(levels, card_text, '/')) {
      uint64_t card = std::strtoull(card_text.c_str(), nullptr, 10);
      if (card == 0) Usage("bad cardinality in --hierarchy");
      if (previous != 0 && card > previous) {
        Usage("--hierarchy level cardinalities must not increase "
              "(list them finest to coarsest)");
      }
      previous = card;
      // The finest level carries the dimension's name (as in the flat
      // model); coarser roll-up levels get derived names.
      dim.levels.push_back(HierarchyLevel{
          dim.levels.empty()
              ? dim.name
              : dim.name + "_l" + std::to_string(dim.levels.size()),
          card});
    }
    if (dim.levels.empty()) Usage("bad --hierarchy entry (no levels)");
    dims.push_back(std::move(dim));
  }
  if (dims.empty()) Usage("bad --hierarchy (no dimensions)");
  if (rows < 1.0) Usage("--hierarchy requires --rows");
  HierarchicalSchema schema(std::move(dims));

  if (!sparse && (top_queries > 0 || query_mass < 1.0 || max_views > 0)) {
    Usage("--top-queries/--query-mass/--max-views require --sparse");
  }
  if (!trace_json_path.empty()) Tracer::Global().SetEnabled(true);

  // Workload: all hierarchical slice queries, or a sampled Zipf workload.
  // The full enumeration is Π_d (1 + 2·levels_d) queries — guard against
  // schemas where that is infeasible.
  double population = 1.0;
  for (int d = 0; d < schema.num_dimensions(); ++d) {
    population *= 1.0 + 2.0 * schema.num_levels(d);
  }
  const std::string cost_model_name =
      cost_model != nullptr ? cost_model->name() : "";
  std::vector<WeightedHQuery> workload;
  if (zipf_queries > 0) {
    if (static_cast<double>(zipf_queries) > population) {
      Usage("--zipf-queries exceeds the schema's query population");
    }
    workload = SampledZipfHWorkload(schema,
                                    static_cast<size_t>(zipf_queries),
                                    zipf_skew,
                                    static_cast<uint64_t>(zipf_seed));
  } else if (population > 1e6) {
    Usage("enumerating all hierarchical slice queries is infeasible for "
          "this schema; provide --zipf-queries N");
  } else {
    workload = UniformHWorkload(schema);
  }

  StatusOr<HierarchicalAdvisor> advisor_or = [&]() {
    if (sparse) {
      SparseHierarchicalGraphOptions sopts;
      sopts.top_queries = static_cast<size_t>(top_queries);
      sopts.query_mass = query_mass;
      if (max_views > 0) sopts.max_views = static_cast<size_t>(max_views);
      sopts.raw_scan_penalty = raw_penalty;
      sopts.maintenance_per_row = maintenance;
      sopts.num_threads = static_cast<size_t>(threads);
      sopts.cost_model = std::move(cost_model);
      return HierarchicalAdvisor::CreateSparse(schema, rows, workload,
                                               sopts);
    }
    HierarchicalGraphOptions gopts;
    gopts.raw_scan_penalty = raw_penalty;
    gopts.maintenance_per_row = maintenance;
    gopts.num_threads = static_cast<size_t>(threads);
    gopts.cost_model = std::move(cost_model);
    return HierarchicalAdvisor::Create(schema, rows, workload, gopts);
  }();
  if (!advisor_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 advisor_or.status().ToString().c_str());
    return StatusExitCode(advisor_or.status());
  }
  const HierarchicalAdvisor& advisor = *advisor_or;
  if (const SparseBuildStats* ss = advisor.sparse_stats()) {
    if (ss->view_cap_hit) {
      std::fprintf(
          stderr,
          "warning: --max-views cap binds: %s%llu answering views "
          "dropped; raise --max-views to recover them\n",
          ss->views_dropped_truncated ? "at least " : "",
          static_cast<unsigned long long>(ss->views_dropped));
    }
  }
  HRecommendation rec = advisor.TryRecommend(config);
  if (!rec.status.ok() && !rec.status.IsInterruption()) {
    std::fprintf(stderr, "error: %s\n", rec.status.ToString().c_str());
    return StatusExitCode(rec.status);
  }

  std::printf("algorithm: %s (hierarchical lattice)\n",
              AlgorithmName(config.algorithm));
  if (!cost_model_name.empty()) {
    std::printf("cost model: %s\n", cost_model_name.c_str());
  }
  if (!rec.completed) {
    std::printf("note: selection interrupted (%s) after %llu stage(s); "
                "the design below is the valid best-so-far prefix\n",
                rec.status.ToString().c_str(),
                static_cast<unsigned long long>(rec.raw.stats.stages));
  }
  std::printf("views: %u   queries: %zu   structures considered: %u\n",
              advisor.cube_graph().graph.num_views(), workload.size(),
              advisor.cube_graph().graph.num_structures());
  if (const SparseBuildStats* ss = advisor.sparse_stats()) {
    std::printf(
        "sparse graph: %zu/%zu queries retained (%.1f%% of mass), "
        "%zu views (%zu with candidate index families, cap %s)\n",
        ss->retained_queries, ss->workload_queries,
        ss->total_mass > 0.0 ? 100.0 * ss->retained_mass / ss->total_mass
                             : 100.0,
        ss->retained_views, ss->candidate_views,
        ss->view_cap_hit ? "hit" : "not hit");
    std::printf("sparse graph peak memory: %.1f MiB (edge runs + cost "
                "table)\n",
                static_cast<double>(ss->build.peak_bytes) /
                    (1024.0 * 1024.0));
  }
  std::printf("space: %s of %s budget\n",
              FormatRowCount(rec.space_used).c_str(),
              FormatRowCount(budget).c_str());
  std::printf("average query cost: %s -> %s rows\n",
              FormatRowCount(rec.initial_average_cost).c_str(),
              FormatRowCount(rec.average_query_cost).c_str());
  if (rec.raw.total_maintenance > 0.0) {
    std::printf("maintenance charged: %s\n",
                FormatRowCount(rec.raw.total_maintenance).c_str());
  }
  std::printf("evaluation: %s\n", rec.raw.stats.ToString().c_str());
  std::printf("\ndesign (%zu structures):\n", rec.structures.size());
  for (const HRecommendedStructure& s : rec.structures) {
    std::printf("  %-60s %s rows\n", s.name.c_str(),
                FormatRowCount(s.space).c_str());
  }

  if (!metrics_json_path.empty()) {
    WriteFileOrDie(metrics_json_path, rec.raw.metrics.ToJson() + "\n");
    std::printf("\nwrote %s\n", metrics_json_path.c_str());
  }
  if (!trace_json_path.empty()) {
    WriteFileOrDie(trace_json_path, Tracer::Global().ToJson() + "\n");
    std::printf("wrote %s\n", trace_json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dims_arg, hierarchy_arg;
  std::string sizes_path, workload_path, out_path, csv_path;
  std::string dump_sizes_path, checkpoint_path, resume_path;
  std::string metrics_json_path, trace_json_path;
  std::string algorithm = "inner";
  double rows = 0.0, budget = 0.0, index_fraction = 0.5;
  double maintenance = 0.0, raw_penalty = 2.0;
  long threads = 0;  // 0 = shared pool sized from the hardware
  long deadline_ms = 0;  // 0 = no deadline
  long max_stages = 0;   // 0 = no stage budget
  bool sparse = false;
  long top_queries = 0;    // 0 = no cap
  double query_mass = 1.0;
  long max_views = 0;      // 0 = the sparse builder's default cap
  long beam = 0;           // 0 = exact greedy
  long zipf_queries = 0;   // 0 = no sampled workload
  double zipf_skew = 1.0;
  long zipf_seed = 42;
  std::string cost_model_arg = "paper";
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    // Accept the "--flag=value" spelling too (used by scripted callers).
    std::string inline_value;
    size_t eq = flag.find('=');
    if (flag.rfind("--", 0) == 0 && eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
      if (inline_value.empty()) {
        Usage(("missing value for " + flag).c_str());
      }
    }
    auto next = [&]() -> std::string {
      if (!inline_value.empty()) return inline_value;
      if (i + 1 >= argc) Usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--dims") {
      dims_arg = next();
    } else if (flag == "--hierarchy") {
      hierarchy_arg = next();
    } else if (flag == "--csv") {
      csv_path = next();
    } else if (flag == "--rows") {
      rows = std::atof(next().c_str());
    } else if (flag == "--sizes") {
      sizes_path = next();
    } else if (flag == "--workload") {
      workload_path = next();
    } else if (flag == "--budget") {
      budget = std::atof(next().c_str());
    } else if (flag == "--algorithm") {
      algorithm = next();
    } else if (flag == "--index-fraction") {
      index_fraction = std::atof(next().c_str());
    } else if (flag == "--maintenance") {
      maintenance = std::atof(next().c_str());
    } else if (flag == "--raw-penalty") {
      raw_penalty = std::atof(next().c_str());
    } else if (flag == "--threads") {
      threads = std::atol(next().c_str());
      if (threads < 0) Usage("--threads must be >= 0");
    } else if (flag == "--out") {
      out_path = next();
    } else if (flag == "--dump-sizes") {
      dump_sizes_path = next();
    } else if (flag == "--deadline-ms") {
      deadline_ms = std::atol(next().c_str());
      if (deadline_ms <= 0) Usage("--deadline-ms must be positive");
    } else if (flag == "--max-stages") {
      max_stages = std::atol(next().c_str());
      if (max_stages <= 0) Usage("--max-stages must be positive");
    } else if (flag == "--checkpoint") {
      checkpoint_path = next();
    } else if (flag == "--resume") {
      resume_path = next();
    } else if (flag == "--metrics-json") {
      metrics_json_path = next();
    } else if (flag == "--trace-json") {
      trace_json_path = next();
    } else if (flag == "--sparse") {
      sparse = true;
    } else if (flag == "--top-queries") {
      top_queries = std::atol(next().c_str());
      if (top_queries <= 0) Usage("--top-queries must be positive");
    } else if (flag == "--query-mass") {
      query_mass = std::atof(next().c_str());
      if (!(query_mass > 0.0) || query_mass > 1.0) {
        Usage("--query-mass must be in (0, 1]");
      }
    } else if (flag == "--max-views") {
      max_views = std::atol(next().c_str());
      if (max_views <= 0) Usage("--max-views must be positive");
    } else if (flag == "--beam") {
      beam = std::atol(next().c_str());
      if (beam < 0) Usage("--beam must be >= 0");
    } else if (flag == "--zipf-queries") {
      zipf_queries = std::atol(next().c_str());
      if (zipf_queries <= 0) Usage("--zipf-queries must be positive");
    } else if (flag == "--zipf-skew") {
      zipf_skew = std::atof(next().c_str());
      if (!(zipf_skew >= 0.0)) Usage("--zipf-skew must be >= 0");
    } else if (flag == "--zipf-seed") {
      zipf_seed = std::atol(next().c_str());
    } else if (flag == "--cost-model") {
      cost_model_arg = next();
    } else if (flag == "--replay") {
      replay_path = next();
    } else if (flag == "--help" || flag == "-h") {
      Usage(nullptr);
    } else {
      Usage(("unknown flag " + flag).c_str());
    }
  }
  if (dims_arg.empty() && csv_path.empty() && hierarchy_arg.empty()) {
    Usage("--dims, --csv, or --hierarchy is required");
  }
  if (budget <= 0.0) Usage("--budget is required and must be positive");

  // Algorithm and run control are shared by the flat and hierarchical
  // paths; neither depends on the schema.
  AdvisorConfig config;
  config.space_budget = budget;
  if (algorithm == "inner") {
    config.algorithm = Algorithm::kInnerLevel;
  } else if (algorithm == "1greedy") {
    config.algorithm = Algorithm::kOneGreedy;
  } else if (algorithm == "2greedy" || algorithm == "3greedy") {
    config.algorithm = Algorithm::kRGreedy;
    config.r_greedy.r = algorithm[0] - '0';
    config.r_greedy.max_subsets_per_view = 200'000;
  } else if (algorithm == "twostep") {
    config.algorithm = Algorithm::kTwoStep;
    config.two_step.index_fraction = index_fraction;
    config.two_step.strict_fit = true;
  } else if (algorithm == "viewsonly") {
    config.algorithm = Algorithm::kHruViewsOnly;
  } else if (algorithm == "optimal") {
    config.algorithm = Algorithm::kOptimal;
  } else {
    Usage("unknown --algorithm");
  }
  config.r_greedy.num_threads = static_cast<size_t>(threads);
  config.inner_greedy.num_threads = static_cast<size_t>(threads);
  config.r_greedy.beam_width = static_cast<size_t>(beam);
  config.inner_greedy.beam_width = static_cast<size_t>(beam);
  if (deadline_ms > 0) {
    config.control.deadline =
        Deadline::AfterMillis(static_cast<int64_t>(deadline_ms));
  }
  if (max_stages > 0) {
    config.control.max_steps = static_cast<size_t>(max_stages);
  }

  // The cost model behind the graph builders' CostModel seam: the paper's
  // linear model (null, the builders' default) or a calibrated model
  // loaded from an "olapidx-costmodel v1" file.
  std::shared_ptr<const CostModel> cost_model;
  if (cost_model_arg != "paper") {
    const std::string prefix = "calibrated:";
    if (cost_model_arg.rfind(prefix, 0) != 0 ||
        cost_model_arg.size() == prefix.size()) {
      Usage("--cost-model must be 'paper' or 'calibrated:FILE'");
    }
    const std::string model_path = cost_model_arg.substr(prefix.size());
    StatusOr<CalibratedCostModel> loaded =
        CalibratedCostModel::Load(model_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error in %s: %s\n", model_path.c_str(),
                   loaded.status().ToString().c_str());
      return StatusExitCode(loaded.status());
    }
    cost_model =
        std::make_shared<CalibratedCostModel>(std::move(loaded).value());
  }

  if (!hierarchy_arg.empty()) {
    if (!dims_arg.empty() || !csv_path.empty() || !sizes_path.empty() ||
        !workload_path.empty() || !out_path.empty() ||
        !dump_sizes_path.empty() || !checkpoint_path.empty() ||
        !resume_path.empty() || !replay_path.empty()) {
      Usage("--hierarchy is incompatible with the flat-cube inputs "
            "(--dims/--csv/--sizes/--workload/--out/--dump-sizes/"
            "--checkpoint/--resume/--replay)");
    }
    return RunHierarchy(hierarchy_arg, rows, budget, config, raw_penalty,
                        maintenance, threads, std::move(cost_model),
                        metrics_json_path, trace_json_path, sparse,
                        top_queries, query_mass, max_views, zipf_queries,
                        zipf_skew, zipf_seed);
  }

  // Schema and sizes: from the CSV data, or from --dims plus --rows/--sizes.
  std::optional<CsvCube> csv;
  std::unique_ptr<CubeSchema> schema_holder;
  if (!csv_path.empty()) {
    StatusOr<CsvCube> loaded = LoadCsvFacts(ReadFileOrDie(csv_path));
    if (!loaded.ok()) {
      std::fprintf(stderr, "error in %s: %s\n", csv_path.c_str(),
                   loaded.status().ToString().c_str());
      return StatusExitCode(loaded.status());
    }
    csv.emplace(std::move(loaded).value());
    schema_holder = std::make_unique<CubeSchema>(csv->schema);
  } else {
    std::vector<Dimension> dims;
    std::istringstream in(dims_arg);
    std::string item;
    while (std::getline(in, item, ',')) {
      size_t colon = item.find(':');
      if (colon == std::string::npos || colon == 0) {
        Usage("bad --dims entry (want name:cardinality)");
      }
      uint64_t card =
          std::strtoull(item.c_str() + colon + 1, nullptr, 10);
      if (card == 0) Usage("bad cardinality in --dims");
      dims.push_back(Dimension{item.substr(0, colon), card});
    }
    schema_holder = std::make_unique<CubeSchema>(dims);
  }
  CubeSchema& schema = *schema_holder;

  ViewSizes sizes;
  if (csv.has_value()) {
    sizes = csv->fact.num_rows() <= 200'000
                ? ExactViewSizes(csv->fact)
                : EstimateViewSizesHll(csv->fact);
  } else if (!sizes_path.empty()) {
    StatusOr<ViewSizes> parsed =
        ParseViewSizes(ReadFileOrDie(sizes_path), schema);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error in %s: %s\n", sizes_path.c_str(),
                   parsed.status().ToString().c_str());
      return StatusExitCode(parsed.status());
    }
    sizes = std::move(parsed).value();
  } else if (rows >= 1.0) {
    sizes = AnalyticalViewSizes(schema, rows);
  } else {
    Usage("provide --rows, --sizes, or --csv");
  }

  // Workload.
  CubeLattice lattice(schema);
  Workload workload;
  if (!workload_path.empty()) {
    std::string error;
    if (!ParseQueryLog(ReadFileOrDie(workload_path), schema, &workload,
                       &error)) {
      std::fprintf(stderr, "error in %s: %s\n", workload_path.c_str(),
                   error.c_str());
      return 2;
    }
    if (workload.empty()) {
      std::fprintf(stderr, "error: workload file has no queries\n");
      return 2;
    }
  } else if (zipf_queries > 0) {
    workload = SampledZipfSliceQueries(lattice, zipf_skew,
                                       static_cast<size_t>(zipf_queries),
                                       static_cast<uint64_t>(zipf_seed));
  } else if (schema.num_dimensions() > 10) {
    Usage("enumerating all 3^n slice queries is infeasible beyond 10 "
          "dimensions; provide --workload FILE or --zipf-queries N");
  } else {
    workload = AllSliceQueries(lattice);
  }

  SelectionCheckpoint resume_checkpoint;
  if (!resume_path.empty()) {
    StatusOr<SelectionCheckpoint> parsed =
        ParseCheckpoint(ReadFileOrDie(resume_path), schema);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error in %s: %s\n", resume_path.c_str(),
                   parsed.status().ToString().c_str());
      return StatusExitCode(parsed.status());
    }
    resume_checkpoint = std::move(parsed).value();
    config.resume = &resume_checkpoint;
  }

  // The tracer is off by default (its only cost is then one relaxed
  // atomic load per span site); --trace-json opts this run in.
  if (!trace_json_path.empty()) Tracer::Global().SetEnabled(true);
  StatusOr<Advisor> advisor_or = [&]() -> StatusOr<Advisor> {
    if (sparse) {
      SparseCubeGraphOptions sopts;
      sopts.top_queries = static_cast<size_t>(top_queries);
      sopts.query_mass = query_mass;
      if (max_views > 0) sopts.max_views = static_cast<size_t>(max_views);
      sopts.raw_scan_penalty = raw_penalty;
      sopts.maintenance_per_row = maintenance;
      sopts.num_threads = static_cast<size_t>(threads);
      sopts.cost_model = cost_model;
      return Advisor::CreateSparse(schema, sizes, workload, sopts);
    }
    if (top_queries > 0 || query_mass < 1.0 || max_views > 0) {
      Usage("--top-queries/--query-mass/--max-views require --sparse");
    }
    CubeGraphOptions gopts;
    gopts.raw_scan_penalty = raw_penalty;
    gopts.maintenance_per_row = maintenance;
    gopts.num_threads = static_cast<size_t>(threads);
    gopts.cost_model = cost_model;
    return Advisor::Create(schema, sizes, workload, gopts);
  }();
  if (!advisor_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 advisor_or.status().ToString().c_str());
    return StatusExitCode(advisor_or.status());
  }
  const Advisor& advisor = *advisor_or;
  if (const SparseBuildStats* ss = advisor.sparse_stats()) {
    if (ss->view_cap_hit) {
      std::fprintf(
          stderr,
          "warning: --max-views cap binds: %s%llu answering views "
          "dropped; raise --max-views to recover them\n",
          ss->views_dropped_truncated ? "at least " : "",
          static_cast<unsigned long long>(ss->views_dropped));
    }
  }
  Recommendation rec = advisor.Recommend(config);

  if (!rec.status.ok() && !rec.status.IsInterruption()) {
    std::fprintf(stderr, "error: %s\n", rec.status.ToString().c_str());
    return StatusExitCode(rec.status);
  }

  std::printf("algorithm: %s\n", AlgorithmName(config.algorithm));
  if (cost_model != nullptr) {
    std::printf("cost model: %s\n", cost_model->name());
  }
  if (!rec.completed) {
    std::printf("note: selection interrupted (%s) after %llu stage(s); "
                "the design below is the valid best-so-far prefix\n",
                rec.status.ToString().c_str(),
                static_cast<unsigned long long>(rec.raw.stats.stages));
  }
  std::printf("queries: %zu   structures considered: %u\n",
              workload.size(),
              advisor.cube_graph().graph.num_structures());
  if (const SparseBuildStats* ss = advisor.sparse_stats()) {
    std::printf(
        "sparse graph: %zu/%zu queries retained (%.1f%% of mass), "
        "%zu views (%zu with candidate index families, cap %s)\n",
        ss->retained_queries, ss->workload_queries,
        ss->total_mass > 0.0 ? 100.0 * ss->retained_mass / ss->total_mass
                             : 100.0,
        ss->retained_views, ss->candidate_views,
        ss->view_cap_hit ? "hit" : "not hit");
    std::printf("sparse graph peak memory: %.1f MiB (edge runs + cost "
                "table)\n",
                static_cast<double>(ss->build.peak_bytes) / (1024.0 * 1024.0));
  }
  std::printf("space: %s of %s budget\n",
              FormatRowCount(rec.space_used).c_str(),
              FormatRowCount(budget).c_str());
  if (rec.space_used > 1.05 * budget) {
    std::printf("note: greedy stages may overshoot the budget (the "
                "paper's Theorem 5.1/5.2 semantics);\n      rerun with a "
                "smaller budget for a strict fit.\n");
  }
  std::printf("average query cost: %s -> %s rows\n",
              FormatRowCount(rec.initial_average_cost).c_str(),
              FormatRowCount(rec.average_query_cost).c_str());
  if (rec.raw.total_maintenance > 0.0) {
    std::printf("maintenance charged: %s\n",
                FormatRowCount(rec.raw.total_maintenance).c_str());
  }
  std::printf("evaluation: %s\n", rec.raw.stats.ToString().c_str());
  if (beam > 0) {
    std::printf("beam: width %ld, %llu re-evaluations skipped, per-stage "
                "guarantee factor %.4f\n",
                beam,
                static_cast<unsigned long long>(rec.raw.beam_skipped),
                rec.raw.beam_stage_factor);
  }
  if (rec.raw.candidates_truncated > 0) {
    std::printf("note: subset enumeration was capped; %llu candidate "
                "subsets were skipped\n",
                static_cast<unsigned long long>(
                    rec.raw.candidates_truncated));
  }
  std::printf("\n%s", SerializeDesign(rec.structures, schema).c_str());

  if (!replay_path.empty()) {
    Workload replay_workload;
    std::string error;
    if (!ParseQueryLog(ReadFileOrDie(replay_path), schema, &replay_workload,
                       &error)) {
      std::fprintf(stderr, "error in %s: %s\n", replay_path.c_str(),
                   error.c_str());
      return 2;
    }
    if (replay_workload.empty()) {
      std::fprintf(stderr, "error: replay file has no queries\n");
      return 2;
    }
    // The measured side needs real rows: the CSV facts when given, else
    // synthetic Zipf facts at the advertised row count (capped so a
    // warehouse-scale --rows doesn't stall the CLI).
    std::optional<FactTable> synthetic;
    const FactTable* fact = nullptr;
    if (csv.has_value()) {
      fact = &csv->fact;
    } else {
      if (rows < 1.0) Usage("--replay without --csv requires --rows");
      const size_t replay_rows =
          static_cast<size_t>(std::min(rows, 250'000.0));
      synthetic.emplace(GenerateZipfFacts(schema, replay_rows, zipf_skew,
                                          static_cast<uint64_t>(zipf_seed)));
      fact = &*synthetic;
    }
    StatusOr<BatchReplayResult> measured = ReplayDesignBatched(
        *fact, rec.structures, replay_workload, /*batch_size=*/256,
        /*num_threads=*/threads > 0 ? static_cast<size_t>(threads) : 1);
    if (!measured.ok()) {
      std::fprintf(stderr, "error replaying %s: %s\n", replay_path.c_str(),
                   measured.status().ToString().c_str());
      return StatusExitCode(measured.status());
    }
    // Model-predicted cost of the same workload against the same design,
    // under whichever model drove selection.
    const CostModel& model = cost_model != nullptr
                                 ? *cost_model
                                 : PaperCostModel::Instance();
    DesignCost predicted = DesignCostUnderModel(
        schema, sizes, replay_workload, rec.structures, model, raw_penalty);
    const BatchReplayResult& m = *measured;
    const double wall_ms = static_cast<double>(m.wall_ns) / 1e6;
    const double qps = wall_ms > 0.0
                           ? 1e3 * static_cast<double>(m.requests) / wall_ms
                           : 0.0;
    std::printf("\nreplay of %s (%zu distinct queries) on %zu fact rows, "
                "batched serving path:\n",
                replay_path.c_str(), replay_workload.size(),
                fact->num_rows());
    std::printf("  requests: %llu in %llu batch(es), %llu unique after "
                "coalescing\n",
                static_cast<unsigned long long>(m.requests),
                static_cast<unsigned long long>(m.batches),
                static_cast<unsigned long long>(m.unique_requests));
    std::printf("  model cost:    %s rows/query average (%s total)\n",
                FormatRowCount(predicted.average).c_str(),
                FormatRowCount(predicted.total).c_str());
    std::printf("  measured:      %s rows/query serial-equivalent; "
                "%s physical rows decoded (%.1fx shared)\n",
                FormatRowCount(
                    static_cast<double>(m.logical_rows) /
                    static_cast<double>(std::max<uint64_t>(1, m.requests)))
                    .c_str(),
                FormatRowCount(static_cast<double>(m.rows_decoded)).c_str(),
                static_cast<double>(m.logical_rows) /
                    std::max(1.0, static_cast<double>(m.rows_decoded)));
    std::printf("  throughput:    %.0f queries/s (%.1f ms wall)\n", qps,
                wall_ms);
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
      return 2;
    }
    out << SerializeDesign(rec.structures, schema);
    std::printf("\nwrote %s\n", out_path.c_str());
  }
  if (!checkpoint_path.empty()) {
    if (rec.completed) {
      std::printf("\nrun completed; no checkpoint needed (not writing "
                  "%s)\n",
                  checkpoint_path.c_str());
    } else {
      std::ofstream out(checkpoint_path);
      if (!out) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     checkpoint_path.c_str());
        return 2;
      }
      out << SerializeCheckpoint(rec.ToCheckpoint(config), schema);
      std::printf("\nwrote %s (continue with --resume)\n",
                  checkpoint_path.c_str());
    }
  }
  if (!dump_sizes_path.empty()) {
    std::ofstream out(dump_sizes_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   dump_sizes_path.c_str());
      return 2;
    }
    out << SerializeViewSizes(sizes, schema);
    std::printf("wrote %s (reusable via --sizes)\n",
                dump_sizes_path.c_str());
  }
  if (!metrics_json_path.empty()) {
    // The per-run delta captured on the SelectionResult, not the global
    // registry: repeated runs in one process would otherwise accumulate.
    WriteFileOrDie(metrics_json_path, rec.raw.metrics.ToJson() + "\n");
    std::printf("wrote %s\n", metrics_json_path.c_str());
  }
  if (!trace_json_path.empty()) {
    WriteFileOrDie(trace_json_path, Tracer::Global().ToJson() + "\n");
    std::printf("wrote %s\n", trace_json_path.c_str());
  }
  return 0;
}
