// End-to-end advisor walkthrough on real (generated) data:
//
//   1. generate a scaled TPC-D-like fact table,
//   2. estimate every subcube's size by sampling (GEE estimator) instead of
//      materializing the cube,
//   3. run the selection algorithm under a budget,
//   4. materialize the recommended views and B-tree indexes,
//   5. execute the whole slice-query workload and measure the actual rows
//      processed, comparing against both the raw-table baseline and the
//      advisor's predictions.

#include <cstdio>

#include "common/format.h"
#include "common/table_printer.h"
#include "core/advisor.h"
#include "cost/distinct_estimator.h"
#include "data/fact_generator.h"
#include "engine/executor.h"
#include "engine/key_codec.h"

namespace {

using namespace olapidx;

// Estimates |V| for every subcube from a row sample of the fact table.
ViewSizes EstimateSizesBySampling(const FactTable& fact, size_t sample_size,
                                  uint64_t seed) {
  const CubeSchema& schema = fact.schema();
  Pcg32 rng(seed);
  std::vector<size_t> rows(sample_size);
  for (size_t i = 0; i < sample_size; ++i) {
    rows[i] = rng.NextBounded(static_cast<uint32_t>(fact.num_rows()));
  }
  ViewSizes sizes(schema.num_dimensions());
  for (uint32_t mask = 1; mask < sizes.num_views(); ++mask) {
    AttributeSet attrs = AttributeSet::FromMask(mask);
    KeyCodec codec(schema, attrs.ToVector());
    std::vector<uint64_t> sample;
    sample.reserve(sample_size);
    for (size_t r : rows) {
      sample.push_back(codec.EncodeRow(fact.RowDims(r)));
    }
    sizes.Set(attrs, std::max(1.0, GeeEstimate(sample, fact.num_rows())));
  }
  return sizes;
}

}  // namespace

int main() {
  TpcdScaledConfig gen;
  gen.rows = 60'000;
  std::printf("Generating scaled TPC-D fact table: %zu rows "
              "(parts=%u suppliers=%u customers=%u)...\n",
              gen.rows, gen.parts, gen.suppliers, gen.customers);
  FactTable fact = GenerateTpcdScaledFacts(gen);
  CubeSchema schema = fact.schema();

  std::printf("Estimating subcube sizes from a 4K-row sample (GEE)...\n");
  ViewSizes sizes = EstimateSizesBySampling(fact, 4'000, /*seed=*/17);
  {
    TablePrinter t({"subcube", "estimated rows"});
    for (uint32_t mask = sizes.num_views(); mask-- > 1;) {
      t.AddRow({AttributeSet::FromMask(mask).ToString(schema.names()),
                FormatRowCount(sizes[mask])});
    }
    t.Print();
  }

  CubeLattice lattice(schema);
  Workload workload = AllSliceQueries(lattice);
  CubeGraphOptions gopts;
  gopts.raw_scan_penalty = 2.0;
  Advisor advisor(schema, sizes, workload, gopts);

  AdvisorConfig config;
  config.algorithm = Algorithm::kInnerLevel;
  config.space_budget = 0.3 * (sizes.TotalViewSpace() +
                               sizes.TotalFatIndexSpace());
  Recommendation rec = advisor.Recommend(config);
  std::printf("\nRecommendation (budget %s rows): %s\n",
              FormatRowCount(config.space_budget).c_str(),
              rec.raw.PicksToString(advisor.cube_graph().graph).c_str());

  std::printf("Materializing...\n");
  Catalog catalog(&fact);
  for (const RecommendedStructure& s : rec.structures) {
    if (s.is_view()) {
      catalog.MaterializeView(s.view);
    } else {
      catalog.BuildIndex(s.view, s.index);
    }
  }
  std::printf("\nEstimated vs actual sizes of the materialized views:\n");
  {
    TablePrinter t({"subcube", "estimated", "actual"});
    for (AttributeSet attrs : catalog.materialized_views()) {
      t.AddRow({attrs.ToString(schema.names()),
                FormatRowCount(sizes.SizeOf(attrs)),
                FormatRowCount(
                    static_cast<double>(catalog.view(attrs).num_rows()))});
    }
    t.Print();
  }
  std::printf(
      "Total space: %s rows actual vs %s estimated. GEE guarantees only a "
      "sqrt(N/n) factor, and\nnear-unique subcubes (psc, pc, sc) sit at its "
      "underestimation edge — the classic estimation risk\nSection 4.2.1 "
      "delegates to sampling. The design still pays off:\n",
      FormatRowCount(catalog.TotalSpaceRows()).c_str(),
      FormatRowCount(rec.space_used).c_str());

  std::printf("\nExecuting all %zu slice queries (8 random slices "
              "each)...\n",
              workload.size());
  Executor executor(&catalog);
  Pcg32 rng(5);
  double with_rows = 0.0;
  double naive_rows = 0.0;
  for (const WeightedQuery& wq : workload.queries()) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<uint32_t> values;
      for (int a : wq.query.selection().ToVector()) {
        values.push_back(rng.NextBounded(
            static_cast<uint32_t>(schema.dimension(a).cardinality)));
      }
      ExecutionStats stats;
      executor.Execute(wq.query, values, &stats);
      with_rows += static_cast<double>(stats.rows_processed);
      naive_rows += static_cast<double>(fact.num_rows());
    }
  }
  double executed = static_cast<double>(workload.size()) * 8.0;
  std::printf("\nAverage rows processed per query:\n");
  std::printf("  raw fact table only: %s\n",
              FormatRowCount(naive_rows / executed).c_str());
  std::printf("  with recommendation: %s  (%.0fx speedup)\n",
              FormatRowCount(with_rows / executed).c_str(),
              naive_rows / with_rows);
  std::printf("  advisor's model prediction: %s\n",
              FormatRowCount(rec.average_query_cost).c_str());
  return 0;
}
