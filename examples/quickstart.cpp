// Quickstart: pick views and indexes for the paper's TPC-D cube in ~30
// lines. Builds the lattice, attaches the published subcube sizes, asks
// the advisor for an inner-level-greedy selection under a 25M-row budget,
// and prints the physical design plus the expected query costs.

#include <cstdio>

#include "common/format.h"
#include "core/advisor.h"
#include "data/tpcd.h"

int main() {
  using namespace olapidx;

  // 1. Describe the cube: dimensions and their cardinalities.
  CubeSchema schema = TpcdSchema();  // part, supplier, customer

  // 2. Provide subcube row counts (here: the paper's published numbers;
  //    see cost/analytical_model.h and cost/distinct_estimator.h for ways
  //    to estimate them from data).
  ViewSizes sizes = TpcdPaperSizes();

  // 3. Declare the query workload: all 3^n slice queries, equiprobable.
  CubeLattice lattice(schema);
  Workload workload = AllSliceQueries(lattice);

  // 4. Ask the advisor what to precompute.
  CubeGraphOptions graph_options;
  graph_options.raw_scan_penalty = 2.0;
  Advisor advisor(schema, sizes, workload, graph_options);

  AdvisorConfig config;
  config.algorithm = Algorithm::kInnerLevel;
  config.space_budget = 25e6;
  Recommendation rec = advisor.Recommend(config);

  // 5. Use the recommendation.
  std::printf("Materialize (in pick order):\n");
  for (const RecommendedStructure& s : rec.structures) {
    std::printf("  %-14s %s rows%s\n", s.name.c_str(),
                FormatRowCount(s.space).c_str(),
                s.is_view() ? "" : "  (index)");
  }
  std::printf("\nSpace used: %s rows (budget %s)\n",
              FormatRowCount(rec.space_used).c_str(),
              FormatRowCount(config.space_budget).c_str());
  std::printf("Average query cost: %s -> %s rows (%sx faster)\n",
              FormatRowCount(rec.initial_average_cost).c_str(),
              FormatRowCount(rec.average_query_cost).c_str(),
              FormatFixed(rec.initial_average_cost / rec.average_query_cost,
                          1)
                  .c_str());
  return 0;
}
