// Hierarchical cube walkthrough: dimensions with drill-down levels
// (store→city→region, day→month→quarter), the richer lattice they induce,
// and what the one-step algorithms pick on it — including mid-level
// aggregates that a flat model cannot even express.

#include <cstdio>

#include "common/format.h"
#include "common/table_printer.h"
#include "core/inner_greedy.h"
#include "core/r_greedy.h"
#include "core/two_step.h"
#include "hierarchy/hierarchical_executor.h"
#include "hierarchy/hierarchical_graph.h"

int main() {
  using namespace olapidx;

  HierarchicalSchema schema({
      HierarchicalDimension{
          "store", {{"store", 2'000}, {"city", 150}, {"region", 12}}},
      HierarchicalDimension{
          "day", {{"day", 730}, {"month", 24}, {"quarter", 8}}},
      HierarchicalDimension{"product", {{"sku", 5'000}, {"brand", 200}}},
  });
  double raw_rows = 3e6;

  HierarchicalLattice lattice(&schema);
  std::printf("Hierarchical retail cube: %llu views (flat model would "
              "have %u), %zu slice queries\n\n",
              static_cast<unsigned long long>(lattice.num_views()), 1u << 3,
              EnumerateAllHQueries(schema).size());

  HierarchicalGraphOptions options;
  options.raw_scan_penalty = 2.0;
  HierarchicalCubeGraph cube = BuildHierarchicalCubeGraph(
      schema, raw_rows, UniformHWorkload(schema), options);

  double total = 0.0;
  for (uint32_t v = 0; v < cube.graph.num_views(); ++v) {
    total += cube.graph.view_space(v) *
             (1.0 + static_cast<double>(cube.graph.num_indexes(v)));
  }
  double budget = 0.03 * total;
  std::printf("Budget: %s rows (3%% of materialize-everything = %s)\n\n",
              FormatRowCount(budget).c_str(),
              FormatRowCount(total).c_str());

  TablePrinter t({"algorithm", "benefit", "space", "picks"});
  auto run = [&](const char* label, SelectionResult r) {
    t.AddRow({label, FormatRowCount(r.Benefit()),
              FormatRowCount(r.space_used),
              std::to_string(r.picks.size())});
    return r;
  };
  run("1-greedy", RGreedy(cube.graph, budget, {.r = 1}));
  run("2-greedy", RGreedy(cube.graph, budget, {.r = 2}));
  SelectionResult inner =
      run("inner-level", InnerLevelGreedy(cube.graph, budget));
  run("two-step 50/50",
      TwoStep(cube.graph, budget,
              TwoStepOptions{.index_fraction = 0.5, .strict_fit = true}));
  t.Print();

  std::printf("\nInner-level selection:\n");
  for (const StructureRef& s : inner.picks) {
    std::printf("  %-55s %s rows\n",
                cube.graph.StructureName(s).c_str(),
                FormatRowCount(cube.graph.structure_space(s)).c_str());
  }
  std::printf(
      "\nNote the mid-level picks (city/month/brand aggregates): those are "
      "the views a flat\nper-dimension model cannot represent, and they "
      "carry much of the benefit here.\n");

  // Physical check at 1/60 scale: materialize the same picks over real
  // data and run a few slice queries through the B-tree executor.
  std::printf("\nPhysical spot-check (50K-row fact table):\n");
  HierarchyMaps maps = HierarchyMaps::Balanced(schema);
  FactTable fact = GenerateHierarchicalFacts(schema, 50'000, /*seed=*/7);
  HierarchicalCatalog catalog(&fact, &maps);
  for (const StructureRef& s : inner.picks) {
    const LevelVector& levels = cube.view_levels[s.view];
    catalog.MaterializeView(levels);
    if (!s.is_view()) {
      catalog.BuildIndex(levels, cube.IndexOrderOf(s.view, s.index));
    }
  }
  HierarchicalExecutor executor(&catalog);
  // "Sales by city for month 5", "by brand in region 3", "total for sku 42".
  struct Demo {
    const char* label;
    HSliceQuery query;
    std::vector<uint32_t> values;
  };
  std::vector<Demo> demos = {
      {"sales by city, month = 5",
       HSliceQuery({HDimRole{HDimRole::kGroupBy, 1},
                    HDimRole{HDimRole::kSelect, 1},
                    HDimRole{HDimRole::kAbsent, 0}}),
       {5}},
      {"sales by brand, region = 3",
       HSliceQuery({HDimRole{HDimRole::kSelect, 2},
                    HDimRole{HDimRole::kAbsent, 0},
                    HDimRole{HDimRole::kGroupBy, 1}}),
       {3}},
      {"total sales, sku = 42",
       HSliceQuery({HDimRole{HDimRole::kAbsent, 0},
                    HDimRole{HDimRole::kAbsent, 0},
                    HDimRole{HDimRole::kSelect, 0}}),
       {42}},
  };
  for (const Demo& demo : demos) {
    HExecutionStats stats;
    HGroupedResult result = executor.Execute(demo.query, demo.values,
                                             &stats);
    std::printf("  %-28s -> %zu groups, %llu rows processed (vs %zu raw)\n",
                demo.label, result.num_rows(),
                static_cast<unsigned long long>(stats.rows_processed),
                fact.num_rows());
  }
  return 0;
}
