// advisor_serve: the resident advisor as a command-driven process.
//
//   advisor_serve --dims p:200000,s:10000,c:100000 --rows 6000000
//                 --budget 25000000
//                 [--algorithm inner|1greedy|2greedy|viewsonly]
//                 [--workload log.txt] [--journal state.journal]
//                 [--drift-threshold F] [--deadline-ms MS]
//                 [--script FILE]
//
// Commands are read from --script FILE or stdin, one per line ('#' starts
// a comment, blank lines are ignored):
//
//   observe <group> ; <sel> [; count]   record an executed query
//                                       (query-log line, workload/query_log.h)
//   whatif [budget ...]                 budget sweep vs the served design
//   epoch                               close the observation epoch
//                                       (drift check, maybe re-select)
//   complete                            finish a pending re-selection
//   save                                journal the served state
//   snapshot                            print the served design
//   stats                               print the service counters
//   quit                                exit
//
// With --journal FILE the service restores from FILE when it exists —
// killing this process at any point and re-running the same command
// prefix resumes bit-identically (the crash-safety contract of
// service/advisor_service.h). Exit codes follow advisor_cli: 0 on
// success, 2 for usage errors, StatusExitCode values for Status failures.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/format.h"
#include "cost/analytical_model.h"
#include "core/advisor.h"
#include "service/advisor_service.h"
#include "workload/query_log.h"

namespace {

using namespace olapidx;

[[noreturn]] void Usage(const char* message) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n", message);
  std::fprintf(
      stderr,
      "usage: advisor_serve --dims name:card[,name:card...] --rows N "
      "--budget ROWS\n"
      "       [--algorithm inner|1greedy|2greedy|viewsonly]\n"
      "       [--workload FILE] [--journal FILE]\n"
      "       [--drift-threshold F] [--deadline-ms MS] [--script FILE]\n");
  std::exit(2);
}

void PrintSnapshot(const ServedSnapshot& snap, const CubeSchema& schema) {
  (void)schema;
  std::printf("epoch %llu  generation %llu%s%s\n",
              static_cast<unsigned long long>(snap.epoch),
              static_cast<unsigned long long>(snap.generation),
              snap.degraded ? "  [degraded]" : "",
              snap.pending ? "  [pending]" : "");
  std::printf("space: %s   average query cost: %s rows\n",
              FormatRowCount(snap.recommendation.space_used).c_str(),
              FormatRowCount(snap.recommendation.average_query_cost).c_str());
  std::printf("design (%zu structures):\n",
              snap.recommendation.structures.size());
  for (const RecommendedStructure& s : snap.recommendation.structures) {
    std::printf("  %-50s %s rows\n", s.name.c_str(),
                FormatRowCount(s.space).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string dims_arg, workload_path, journal_path, script_path;
  std::string algorithm = "inner";
  double rows = 0.0, budget = 0.0;
  double drift_threshold = -1.0;  // <0 = library default
  long deadline_ms = 0;           // 0 = library default

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--dims") {
      dims_arg = next();
    } else if (flag == "--rows") {
      rows = std::atof(next().c_str());
    } else if (flag == "--budget") {
      budget = std::atof(next().c_str());
    } else if (flag == "--algorithm") {
      algorithm = next();
    } else if (flag == "--workload") {
      workload_path = next();
    } else if (flag == "--journal") {
      journal_path = next();
    } else if (flag == "--drift-threshold") {
      drift_threshold = std::atof(next().c_str());
      if (!(drift_threshold >= 0.0)) {
        Usage("--drift-threshold must be >= 0");
      }
    } else if (flag == "--deadline-ms") {
      deadline_ms = std::atol(next().c_str());
      if (deadline_ms <= 0) Usage("--deadline-ms must be positive");
    } else if (flag == "--script") {
      script_path = next();
    } else if (flag == "--help" || flag == "-h") {
      Usage(nullptr);
    } else {
      Usage(("unknown flag " + flag).c_str());
    }
  }
  if (dims_arg.empty()) Usage("--dims is required");
  if (rows < 1.0) Usage("--rows is required");
  if (budget <= 0.0) Usage("--budget is required and must be positive");

  std::vector<Dimension> dims;
  {
    std::istringstream in(dims_arg);
    std::string item;
    while (std::getline(in, item, ',')) {
      size_t colon = item.find(':');
      if (colon == std::string::npos || colon == 0) {
        Usage("bad --dims entry (want name:cardinality)");
      }
      uint64_t card = std::strtoull(item.c_str() + colon + 1, nullptr, 10);
      if (card == 0) Usage("bad cardinality in --dims");
      dims.push_back(Dimension{item.substr(0, colon), card});
    }
  }
  CubeSchema schema(dims);
  ViewSizes sizes = AnalyticalViewSizes(schema, rows);

  ServiceOptions options;
  options.base.space_budget = budget;
  if (algorithm == "inner") {
    options.base.algorithm = Algorithm::kInnerLevel;
  } else if (algorithm == "1greedy") {
    options.base.algorithm = Algorithm::kOneGreedy;
  } else if (algorithm == "2greedy") {
    options.base.algorithm = Algorithm::kRGreedy;
    options.base.r_greedy.r = 2;
    options.base.r_greedy.max_subsets_per_view = 200'000;
  } else if (algorithm == "viewsonly") {
    options.base.algorithm = Algorithm::kHruViewsOnly;
  } else {
    Usage("unknown --algorithm");
  }
  options.journal_path = journal_path;
  if (drift_threshold >= 0.0) options.drift_threshold = drift_threshold;
  if (deadline_ms > 0) options.default_deadline_ms = deadline_ms;

  Workload initial;
  if (!workload_path.empty()) {
    std::ifstream in(workload_path);
    if (!in) {
      std::fprintf(stderr, "error: cannot read '%s'\n",
                   workload_path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    if (!ParseQueryLog(text.str(), schema, &initial, &error)) {
      std::fprintf(stderr, "error in %s: %s\n", workload_path.c_str(),
                   error.c_str());
      return 2;
    }
  } else {
    CubeLattice lattice(schema);
    initial = AllSliceQueries(lattice);
  }

  StatusOr<std::unique_ptr<AdvisorService>> service_or =
      AdvisorService::Create(schema, sizes, initial, options);
  if (!service_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 service_or.status().ToString().c_str());
    return StatusExitCode(service_or.status());
  }
  AdvisorService& service = **service_or;
  std::printf("serving (epoch %llu%s)\n",
              static_cast<unsigned long long>(service.epoch()),
              journal_path.empty() ? "" : ", journaled");

  std::ifstream script;
  if (!script_path.empty()) {
    script.open(script_path);
    if (!script) {
      std::fprintf(stderr, "error: cannot read '%s'\n",
                   script_path.c_str());
      return 2;
    }
  }
  std::istream& in = script_path.empty() ? std::cin : script;

  std::string line;
  while (std::getline(in, line)) {
    std::istringstream words(line);
    std::string command;
    if (!(words >> command) || command[0] == '#') continue;

    if (command == "quit" || command == "exit") {
      break;
    } else if (command == "observe") {
      std::string rest;
      std::getline(words, rest);
      Workload observed;
      std::string error;
      if (!ParseQueryLog(rest, schema, &observed, &error) ||
          observed.empty()) {
        std::printf("observe: bad query line (%s)\n", error.c_str());
        continue;
      }
      for (const WeightedQuery& wq : observed.queries()) {
        Status s = service.Observe(wq.query, wq.frequency);
        if (!s.ok()) std::printf("observe: dropped (%s)\n",
                                 s.ToString().c_str());
      }
    } else if (command == "whatif") {
      WhatIfRequest request;
      double b;
      while (words >> b) request.budgets.push_back(b);
      WhatIfResult result = service.WhatIf(request);
      std::printf("whatif [epoch %llu]: %s (%zu retries)\n",
                  static_cast<unsigned long long>(result.epoch),
                  result.status.ToString().c_str(), result.retries);
      for (const WhatIfPoint& p : result.points) {
        std::printf("  budget %-14s -> cost %-12s %zu structures "
                    "(+%zu/-%zu)%s\n",
                    FormatRowCount(p.budget).c_str(),
                    FormatRowCount(p.average_query_cost).c_str(),
                    p.num_structures, p.added.size(), p.removed.size(),
                    p.completed ? "" : "  [cut short]");
      }
    } else if (command == "epoch") {
      EpochResult result = service.AdvanceEpoch();
      std::printf("epoch %llu: drift %.4f%s%s%s%s -> %s\n",
                  static_cast<unsigned long long>(result.epoch),
                  result.drift,
                  result.drift_detected ? " [drift]" : "",
                  result.reselected ? " [reselected]" : "",
                  result.degraded ? " [degraded]" : "",
                  result.pending ? " [pending]" : "",
                  result.status.ToString().c_str());
    } else if (command == "complete") {
      Status s = service.CompletePendingReselection();
      std::printf("complete: %s\n", s.ToString().c_str());
    } else if (command == "save") {
      Status s = service.Save();
      std::printf("save: %s\n", s.ToString().c_str());
    } else if (command == "snapshot") {
      PrintSnapshot(service.Snapshot(), schema);
    } else if (command == "stats") {
      ServiceStats st = service.Stats();
      std::printf(
          "whatif ok/deadline/rejected/failed: %llu/%llu/%llu/%llu "
          "(%llu retries)\n"
          "observations: %llu (%llu dropped)\n"
          "epochs: %llu advanced, %llu failed; reselections: %llu "
          "(%llu degraded)\n",
          static_cast<unsigned long long>(st.whatif_ok),
          static_cast<unsigned long long>(st.whatif_deadline_exceeded),
          static_cast<unsigned long long>(st.whatif_rejected),
          static_cast<unsigned long long>(st.whatif_failed),
          static_cast<unsigned long long>(st.whatif_retries),
          static_cast<unsigned long long>(st.observations),
          static_cast<unsigned long long>(st.observations_dropped),
          static_cast<unsigned long long>(st.epochs_advanced),
          static_cast<unsigned long long>(st.epoch_failures),
          static_cast<unsigned long long>(st.reselections),
          static_cast<unsigned long long>(st.degraded_reselections));
    } else {
      std::printf("unknown command '%s' (observe/whatif/epoch/complete/"
                  "save/snapshot/stats/quit)\n",
                  command.c_str());
    }
  }
  return 0;
}
