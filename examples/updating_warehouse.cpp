// A living warehouse: nightly loads append fact rows and every
// materialized structure must be refreshed before the next business day.
// This example closes the loop on the update-aware extension: it measures
// *actual* engine work (query rows processed + refresh rows touched +
// index entries rebuilt) for physical designs chosen with different
// assumed maintenance rates, and shows the space-hungry design losing
// once loads dominate.

#include <cstdio>

#include "common/format.h"
#include "common/table_printer.h"
#include "core/advisor.h"
#include "data/fact_generator.h"
#include "data/size_estimation.h"
#include "engine/executor.h"
#include "engine/physical_design.h"

namespace {

using namespace olapidx;

void AppendDay(FactTable& fact, size_t rows, uint64_t seed) {
  Pcg32 rng(seed);
  const CubeSchema& schema = fact.schema();
  std::vector<uint32_t> dims(
      static_cast<size_t>(schema.num_dimensions()));
  for (size_t r = 0; r < rows; ++r) {
    for (int a = 0; a < schema.num_dimensions(); ++a) {
      dims[static_cast<size_t>(a)] = rng.NextBounded(
          static_cast<uint32_t>(schema.dimension(a).cardinality));
    }
    fact.Append(dims, 1.0 + rng.NextDouble() * 99.0);
  }
}

}  // namespace

int main() {
  TpcdScaledConfig config;
  config.rows = 40'000;
  constexpr size_t kDays = 6;
  constexpr size_t kRowsPerDay = 20'000;  // heavy nightly loads
  constexpr int kQueriesPerDay = 40;

  std::printf("Simulating %zu nightly loads of %zu rows with %d queries "
              "per day.\n\n",
              kDays, kRowsPerDay, kQueriesPerDay);

  TablePrinter t({"assumed maint/row", "structures", "space (rows)",
                  "query rows/day", "refresh rows/day", "total rows/day"});
  double best_total = -1.0;
  double best_rate = 0.0;
  for (double assumed_rate : {0.0, 2.0, 8.0}) {
    FactTable fact = GenerateTpcdScaledFacts(config);
    CubeSchema schema = fact.schema();
    ViewSizes sizes = ExactViewSizes(fact);
    CubeLattice lattice(schema);
    Workload workload = AllSliceQueries(lattice);

    CubeGraphOptions gopts;
    gopts.raw_scan_penalty = 2.0;
    gopts.maintenance_per_row = assumed_rate;
    Advisor advisor(schema, sizes, workload, gopts);
    AdvisorConfig aconfig;
    aconfig.algorithm = Algorithm::kInnerLevel;
    aconfig.space_budget =
        0.5 * (sizes.TotalViewSpace() + sizes.TotalFatIndexSpace());
    Recommendation rec = advisor.Recommend(aconfig);

    Catalog catalog(&fact);
    std::vector<PhysicalDesignItem> items;
    for (const RecommendedStructure& s : rec.structures) {
      items.push_back(PhysicalDesignItem{s.view, s.index});
    }
    StatusOr<PhysicalDesignStats> applied =
        MaterializePhysicalDesign(catalog, items);
    if (!applied.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   applied.status().ToString().c_str());
      return 1;
    }
    Executor executor(&catalog);

    double query_rows = 0.0;
    double refresh_rows = 0.0;
    Pcg32 rng(1234);
    for (size_t day = 0; day < kDays; ++day) {
      // Daytime: queries drawn uniformly from the workload.
      for (int qi = 0; qi < kQueriesPerDay; ++qi) {
        const WeightedQuery& wq =
            workload[rng.NextBounded(static_cast<uint32_t>(
                workload.size()))];
        std::vector<uint32_t> values;
        for (int a : wq.query.selection().ToVector()) {
          values.push_back(rng.NextBounded(static_cast<uint32_t>(
              schema.dimension(a).cardinality)));
        }
        ExecutionStats stats;
        executor.Execute(wq.query, values, &stats);
        query_rows += static_cast<double>(stats.rows_processed);
      }
      // Nightly load + refresh.
      AppendDay(fact, kRowsPerDay, 500 + day);
      Catalog::RefreshStats stats = catalog.RefreshAfterAppend();
      refresh_rows += static_cast<double>(stats.delta_rows_scanned) +
                      static_cast<double>(stats.groups_touched) +
                      stats.index_entries_rebuilt;
    }
    double days = static_cast<double>(kDays);
    double total = (query_rows + refresh_rows) / days;
    if (best_total < 0.0 || total < best_total) {
      best_total = total;
      best_rate = assumed_rate;
    }
    t.AddRow({FormatFixed(assumed_rate, 1),
              std::to_string(rec.structures.size()),
              FormatRowCount(rec.space_used),
              FormatRowCount(query_rows / days),
              FormatRowCount(refresh_rows / days),
              FormatRowCount(total)});
  }
  t.Print();
  std::printf(
      "\nMeasured winner: the design advised with maintenance rate %.1f "
      "(total %s rows of engine work per day).\nAssuming maintenance away "
      "over-materializes; assuming too much starves the queries — the "
      "rate is a real\nworkload parameter, exactly what the update-aware "
      "extension lets the advisor trade off.\n",
      best_rate, FormatRowCount(best_total).c_str());
  return 0;
}
