// Bring-your-own cube: define a 5-dimensional retail schema, estimate view
// sizes analytically from dimension cardinalities (no data needed), skew
// the workload toward the queries the dashboards actually run, and compare
// the selection algorithms — including what happens when the workload
// changes after the physical design was frozen.

#include <cstdio>

#include "common/format.h"
#include "common/table_printer.h"
#include "core/advisor.h"
#include "core/selection_state.h"
#include "cost/analytical_model.h"

int main() {
  using namespace olapidx;

  // A retail cube: 5 dimensions, one year of data, ~20M fact rows.
  CubeSchema schema({Dimension{"store", 450},
                     Dimension{"product", 30'000},
                     Dimension{"day", 365},
                     Dimension{"promo", 40},
                     Dimension{"channel", 5}});
  double raw_rows = 20e6;
  ViewSizes sizes = AnalyticalViewSizes(schema, raw_rows);
  std::printf("Retail cube: 2^5 = %u subcubes, %llu fat structures, "
              "sparsity %.2e\n",
              1u << 5,
              static_cast<unsigned long long>(
                  CubeLattice::TotalFatStructures(5)),
              CubeSparsity(schema, raw_rows));

  // Dashboards slice by store and day far more often than anything else.
  CubeLattice lattice(schema);
  Workload workload = HotDimensionSliceQueries(
      lattice, AttributeSet::Of({0, 2}), /*hot_boost=*/6.0);

  CubeGraphOptions gopts;
  gopts.raw_scan_penalty = 2.0;
  Advisor advisor(schema, sizes, workload, gopts);

  double budget = 0.01 * (sizes.TotalViewSpace() +
                          sizes.TotalFatIndexSpace());
  std::printf("Budget: %s rows (1%% of materialize-everything)\n\n",
              FormatRowCount(budget).c_str());

  TablePrinter t({"algorithm", "avg query cost", "space used",
                  "structures", "candidates evaluated"});
  Recommendation kept;
  for (auto [label, algo] :
       {std::pair{"inner-level", Algorithm::kInnerLevel},
        {"2-greedy", Algorithm::kRGreedy},
        {"two-step 50/50", Algorithm::kTwoStep},
        {"views-only", Algorithm::kHruViewsOnly}}) {
    AdvisorConfig config;
    config.algorithm = algo;
    config.space_budget = budget;
    config.r_greedy.r = 2;
    config.two_step.index_fraction = 0.5;
    config.two_step.strict_fit = true;
    Recommendation rec = advisor.Recommend(config);
    if (algo == Algorithm::kInnerLevel) kept = rec;
    t.AddRow({label, FormatRowCount(rec.average_query_cost),
              FormatRowCount(rec.space_used),
              std::to_string(rec.structures.size()),
              std::to_string(rec.raw.candidates_evaluated)});
  }
  t.Print();

  std::printf("\nInner-level design (first 12 picks):\n");
  for (size_t i = 0; i < kept.structures.size() && i < 12; ++i) {
    const RecommendedStructure& s = kept.structures[i];
    std::printf("  %2zu. %-40s %s rows\n", i + 1, s.name.c_str(),
                FormatRowCount(s.space).c_str());
  }

  // What if the analysts pivot to product-level questions? Product is the
  // 30K-member dimension, so product-heavy queries need very different
  // structures than the store/day design. Re-evaluate the frozen design
  // under the new workload and compare with re-advising.
  Workload new_workload = HotDimensionSliceQueries(
      lattice, AttributeSet::Of({1}), /*hot_boost=*/24.0);
  Advisor new_advisor(schema, sizes, new_workload, gopts);
  AdvisorConfig config;
  config.algorithm = Algorithm::kInnerLevel;
  config.space_budget = budget;
  Recommendation fresh = new_advisor.Recommend(config);

  SelectionState frozen(&new_advisor.cube_graph().graph);
  for (const StructureRef& s : kept.raw.picks) frozen.ApplyStructure(s);
  // Frequencies are normalized, so τ is already the weighted average cost.
  double frozen_avg = frozen.TotalCost() / new_workload.TotalFrequency();
  std::printf("\nWorkload drift (product-heavy analysis):\n");
  std::printf("  frozen store/day design: avg cost %s\n",
              FormatRowCount(frozen_avg).c_str());
  std::printf("  re-advised design:       avg cost %s (%.0f%% better)\n",
              FormatRowCount(fresh.average_query_cost).c_str(),
              100.0 * (1.0 - fresh.average_query_cost / frozen_avg));
  return 0;
}
