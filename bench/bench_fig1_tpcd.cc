// Experiment E1 — Section 2 / Figure 1 / Example 2.1.
//
// The motivating TPC-D instance: 25M rows of space, all 27 slice queries
// equiprobable. The paper reports an average query cost of 1.18M rows for
// the two-step process (equal split, each step fitting its allotment) and
// 0.74M rows for the integrated 1-greedy — "almost 40 percent" better —
// plus "around 80M rows" to materialize everything and a law of
// diminishing returns beyond 25M.

#include <cstdio>

#include "bench_json.h"
#include "common/format.h"
#include "common/table_printer.h"
#include "core/advisor.h"
#include "data/tpcd.h"

namespace olapidx {
namespace {

Advisor MakeAdvisor() {
  CubeSchema schema = TpcdSchema();
  CubeLattice lattice(schema);
  CubeGraphOptions opts;
  opts.raw_scan_penalty = 2.0;  // raw = normalized TPC-D tables (join work)
  return Advisor(schema, TpcdPaperSizes(), AllSliceQueries(lattice), opts);
}

void Run(bench::BenchJsonReporter* rep) {
  Advisor advisor = MakeAdvisor();
  ViewSizes sizes = TpcdPaperSizes();

  std::printf("== E1: TPC-D motivating example (Section 2, Figure 1) ==\n\n");
  std::printf("Subcube sizes (paper's Figure 1):\n");
  {
    TablePrinter t({"subcube", "rows"});
    const std::vector<std::string>& names = advisor.schema().names();
    for (uint32_t mask = 8; mask-- > 0;) {
      AttributeSet attrs = AttributeSet::FromMask(mask);
      t.AddRow({attrs.ToString(names), FormatRowCount(sizes[mask])});
    }
    t.Print();
  }
  std::printf(
      "\nSpace to materialize every subcube and fat index: %s rows "
      "(paper: ~80M)\n\n",
      FormatRowCount(sizes.TotalViewSpace() + sizes.TotalFatIndexSpace())
          .c_str());

  auto run = [&](Algorithm algo, const char* label, const char* json_label,
                 double budget) {
    AdvisorConfig config;
    config.algorithm = algo;
    config.space_budget = budget;
    config.r_greedy.r = 1;
    config.two_step.index_fraction = 0.5;
    config.two_step.strict_fit = true;
    Recommendation rec = advisor.Recommend(config);
    std::printf("%-28s avg query cost %s rows  (space used %s)\n", label,
                FormatRowCount(rec.average_query_cost).c_str(),
                FormatRowCount(rec.space_used).c_str());
    std::printf("    picks: %s\n",
                rec.raw.PicksToString(advisor.cube_graph().graph).c_str());
    if (rep != nullptr) rep->AddSelectionRun(json_label, rec.raw);
    return rec;
  };

  std::printf("Selections at S = 25M rows:\n");
  Recommendation two =
      run(Algorithm::kTwoStep, "two-step (50/50, strict)", "two_step",
          25e6);
  Recommendation one = run(Algorithm::kOneGreedy, "1-greedy (one step)",
                           "one_greedy", 25e6);
  run(Algorithm::kInnerLevel, "inner-level greedy", "inner_level", 25e6);
  run(Algorithm::kHruViewsOnly, "HRU views-only", "hru_views_only", 25e6);

  std::printf("\nPaper vs measured:\n");
  TablePrinter t({"metric", "paper", "measured"});
  t.AddRow({"two-step avg cost", "1.18M",
            FormatRowCount(two.average_query_cost)});
  t.AddRow({"1-greedy avg cost", "0.74M",
            FormatRowCount(one.average_query_cost)});
  double improvement = 1.0 - one.average_query_cost / two.average_query_cost;
  t.AddRow({"one-step improvement", "~40%", FormatPercent(improvement)});
  double index_space = 0.0;
  for (const RecommendedStructure& s : one.structures) {
    if (!s.is_view()) index_space += s.space;
  }
  t.AddRow({"index share of space", "~75%",
            FormatPercent(index_space / one.space_used)});
  t.Print();
  if (rep != nullptr) {
    rep->AddScalar("two_step_avg_cost", two.average_query_cost);
    rep->AddScalar("one_greedy_avg_cost", one.average_query_cost);
    rep->AddScalar("one_step_improvement", improvement);
    rep->AddScalar("index_share_of_space", index_space / one.space_used);
  }

  std::printf(
      "\nLaw of diminishing returns (1-greedy, growing budget):\n");
  TablePrinter curve({"budget", "avg query cost", "space used"});
  for (double budget : {5e6, 10e6, 15e6, 20e6, 25e6, 40e6, 60e6, 81e6}) {
    AdvisorConfig config;
    config.algorithm = Algorithm::kOneGreedy;
    config.space_budget = budget;
    Recommendation rec = advisor.Recommend(config);
    curve.AddRow({FormatRowCount(budget),
                  FormatRowCount(rec.average_query_cost),
                  FormatRowCount(rec.space_used)});
    if (rep != nullptr) {
      rep->AddSelectionRun(
          "one_greedy_budget_" +
              std::to_string(static_cast<long long>(budget / 1e6)) + "M",
          rec.raw);
    }
  }
  curve.Print();
  std::printf(
      "\nThe structures beyond ~25M provide virtually no benefit "
      "(Example 2.1).\n");
}

}  // namespace
}  // namespace olapidx

int main(int argc, char** argv) {
  olapidx::bench::BenchArgs args =
      olapidx::bench::ParseBenchArgs(argc, argv, "fig1_tpcd");
  olapidx::bench::BenchJsonReporter rep("fig1_tpcd");
  olapidx::Run(args.json ? &rep : nullptr);
  olapidx::bench::FinishBenchJson(rep, args);
  return 0;
}
