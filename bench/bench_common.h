// Shared helpers for the Section 6 experiment benches: run the algorithm
// family on a cube instance and report each algorithm's benefit as a
// fraction of the optimality reference *for the space it actually used*
// (greedy stages may overshoot the budget; Theorems 5.1/5.2 compare against
// the optimum at the used space). The reference is the exact
// branch-and-bound optimum where feasible and a certified upper bound
// otherwise — so UB-based ratios are lower bounds on the true ratio.

#ifndef OLAPIDX_BENCH_BENCH_COMMON_H_
#define OLAPIDX_BENCH_BENCH_COMMON_H_

#include <string>

#include "bench_json.h"
#include "common/format.h"
#include "core/cube_graph.h"
#include "core/inner_greedy.h"
#include "core/optimal.h"
#include "core/r_greedy.h"
#include "core/two_step.h"

namespace olapidx::bench {

struct AlgoOutcome {
  double benefit = 0.0;
  double space_used = 0.0;
  double ratio = 0.0;       // benefit / reference(space_used)
  bool ratio_exact = false; // reference was a proven optimum
  bool ran = false;
  // Carried over from the SelectionResult for JSON reporting.
  double tau = 0.0;
  double wall_ms = 0.0;
  uint64_t stages = 0;
  uint64_t candidates = 0;
};

struct FamilyResult {
  AlgoOutcome one, two, three, inner, two_step;
  double budget = 0.0;
};

inline AlgoOutcome Finish(const QueryViewGraph& g, SelectionResult r,
                          uint32_t max_exact_structures,
                          uint64_t node_limit) {
  AlgoOutcome out;
  out.ran = true;
  out.benefit = r.Benefit();
  out.space_used = r.space_used;
  out.tau = r.final_cost;
  out.wall_ms = static_cast<double>(r.stats.total_wall_micros) / 1000.0;
  out.stages = r.stats.stages;
  out.candidates = r.candidates_evaluated;
  double reference = 0.0;
  bool exact = false;
  if (g.num_structures() <= max_exact_structures) {
    SelectionResult opt = BranchAndBoundOptimal(
        g, r.space_used, OptimalOptions{.node_limit = node_limit});
    if (opt.proven_optimal) {
      reference = opt.Benefit();
      exact = true;
    }
  }
  if (!exact) reference = UpperBoundBenefit(g, r.space_used);
  out.ratio = reference > 0.0 ? out.benefit / reference : 1.0;
  out.ratio_exact = exact;
  return out;
}

// Runs the family at `budget`. r = 3 runs only when `run_three`, with at
// most `three_cap` index subsets enumerated per view per stage (SIZE_MAX =
// exact; dimension-6 base views have C(720,2) ≈ 2.6e5 pairs).
inline FamilyResult RunFamily(const QueryViewGraph& g, double budget,
                              bool run_three,
                              uint32_t max_exact_structures = 40,
                              uint64_t node_limit = 20'000'000,
                              size_t three_cap = 200'000) {
  FamilyResult out;
  out.budget = budget;
  out.one = Finish(g, RGreedy(g, budget, RGreedyOptions{.r = 1}),
                   max_exact_structures, node_limit);
  out.two = Finish(g, RGreedy(g, budget, RGreedyOptions{.r = 2}),
                   max_exact_structures, node_limit);
  if (run_three) {
    out.three = Finish(
        g,
        RGreedy(g, budget,
                RGreedyOptions{.r = 3, .max_subsets_per_view = three_cap}),
        max_exact_structures, node_limit);
  }
  out.inner = Finish(g, InnerLevelGreedy(g, budget), max_exact_structures,
                     node_limit);
  out.two_step = Finish(
      g,
      TwoStep(g, budget,
              TwoStepOptions{.index_fraction = 0.5, .strict_fit = true}),
      max_exact_structures, node_limit);
  return out;
}

inline std::string Ratio(const AlgoOutcome& a) {
  if (!a.ran) return "-";
  return FormatFixed(a.ratio, 3) + (a.ratio_exact ? "" : "*");
}

// One JSON row per algorithm that ran, labeled "<label>/<algo>". Used by
// the Section 6 sweep benches so every table row lands in the report.
inline void AddFamilyRows(BenchJsonReporter& rep, const std::string& label,
                          const FamilyResult& f) {
  auto add = [&](const char* algo, const AlgoOutcome& a) {
    if (!a.ran) return;
    Json row = Json::Object();
    row.Set("label", Json::Str(label + "/" + algo));
    row.Set("tau", Json::Number(a.tau));
    row.Set("benefit", Json::Number(a.benefit));
    row.Set("space", Json::Number(a.space_used));
    row.Set("ratio", Json::Number(a.ratio));
    row.Set("ratio_exact", Json::Bool(a.ratio_exact));
    row.Set("stages", Json::Number(static_cast<double>(a.stages)));
    row.Set("candidates_evaluated",
            Json::Number(static_cast<double>(a.candidates)));
    row.Set("wall_ms", Json::Number(a.wall_ms));
    rep.AddRun(std::move(row));
  };
  add("one_greedy", f.one);
  add("two_greedy", f.two);
  add("three_greedy", f.three);
  add("inner_level", f.inner);
  add("two_step", f.two_step);
}

}  // namespace olapidx::bench

#endif  // OLAPIDX_BENCH_BENCH_COMMON_H_
