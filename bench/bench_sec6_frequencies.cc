// Experiment E7 — Section 6: varying the query frequencies. The paper's
// problem statement (Section 5.1) notes the algorithms generalize from
// uniform frequencies to arbitrary f_i; this bench sweeps uniform, Zipf
// and hot-dimension workloads and reports both the optimality ratios and
// how the selected structures shift toward the hot queries.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "common/table_printer.h"
#include "core/selection_state.h"
#include "data/synthetic.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

void Run(bench::BenchJsonReporter* rep) {
  std::printf("== E7: optimality ratio vs query-frequency skew "
              "(Section 6, dim 4, cardinality 100, sparsity 0.02) ==\n\n");
  SyntheticCube cube = UniformSyntheticCube(4, 100, 0.02);
  CubeLattice lattice(cube.schema);
  double total =
      cube.sizes.TotalViewSpace() + cube.sizes.TotalFatIndexSpace();

  TablePrinter t({"workload", "1-greedy", "2-greedy", "3-greedy", "inner",
                  "two-step"});
  auto add = [&](const std::string& label, const Workload& w) {
    CubeGraphOptions opts;
    opts.raw_scan_penalty = 2.0;
    CubeGraph cg = BuildCubeGraph(cube.schema, cube.sizes, w, opts);
    bench::FamilyResult f =
        bench::RunFamily(cg.graph, 0.04 * total, /*run_three=*/true);
    t.AddRow({label, bench::Ratio(f.one), bench::Ratio(f.two),
              bench::Ratio(f.three), bench::Ratio(f.inner),
              bench::Ratio(f.two_step)});
    if (rep != nullptr) bench::AddFamilyRows(*rep, label, f);
  };
  add("uniform", AllSliceQueries(lattice));
  for (double skew : {0.5, 1.0, 2.0}) {
    add("Zipf skew " + FormatFixed(skew, 1),
        ZipfSliceQueries(lattice, skew, /*seed=*/42));
  }
  add("hot dims {0,1} x4",
      HotDimensionSliceQueries(lattice, AttributeSet::Of({0, 1}), 4.0));
  add("hot dim {3} x16",
      HotDimensionSliceQueries(lattice, AttributeSet::Of({3}), 16.0));
  t.Print();

  // Show that the selection genuinely follows the workload: evaluate the
  // selection made under the *uniform* workload against the *hot*
  // workload's τ — it must lose to the selection made under the hot
  // workload itself. Structure ids coincide across the two graphs (same
  // lattice, same enumeration order), so picks transfer directly.
  std::printf("\nWorkload-sensitivity check (inner-level, 4%% budget):\n");
  CubeGraphOptions opts;
  opts.raw_scan_penalty = 2.0;
  Workload hot_w =
      HotDimensionSliceQueries(lattice, AttributeSet::Of({3}), 16.0);
  Workload uni_w = AllSliceQueries(lattice);
  CubeGraph hot_g = BuildCubeGraph(cube.schema, cube.sizes, hot_w, opts);
  CubeGraph uni_g = BuildCubeGraph(cube.schema, cube.sizes, uni_w, opts);
  double budget = 0.04 * total;
  SelectionResult hot_sel = InnerLevelGreedy(hot_g.graph, budget);
  SelectionResult uni_sel = InnerLevelGreedy(uni_g.graph, budget);
  SelectionState cross(&hot_g.graph);
  for (const StructureRef& s : uni_sel.picks) cross.ApplyStructure(s);
  SelectionState native(&hot_g.graph);
  for (const StructureRef& s : hot_sel.picks) native.ApplyStructure(s);
  std::printf("  tau under hot workload, selection tuned for hot:     "
              "%s\n",
              FormatRowCount(native.TotalCost()).c_str());
  std::printf("  tau under hot workload, selection tuned for uniform: "
              "%s  (%.1f%% worse)\n",
              FormatRowCount(cross.TotalCost()).c_str(),
              100.0 * (cross.TotalCost() / native.TotalCost() - 1.0));
  if (rep != nullptr) {
    rep->AddScalar("hot_tau_native", native.TotalCost());
    rep->AddScalar("hot_tau_cross", cross.TotalCost());
  }
}

}  // namespace
}  // namespace olapidx

int main(int argc, char** argv) {
  olapidx::bench::BenchArgs args =
      olapidx::bench::ParseBenchArgs(argc, argv, "sec6_frequencies");
  olapidx::bench::BenchJsonReporter rep("sec6_frequencies");
  olapidx::Run(args.json ? &rep : nullptr);
  olapidx::bench::FinishBenchJson(rep, args);
  return 0;
}
