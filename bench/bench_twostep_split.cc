// Experiment E8 — Section 2's observation that the right view/index space
// split cannot be chosen a priori: on the TPC-D instance the best two-step
// split gives about three quarters of the space to indexes, and a bad
// split is catastrophic. Sweeps the index fraction under both budget
// semantics and compares with the integrated one-step algorithms.

#include <cstdio>
#include <string>

#include "bench_json.h"
#include "common/format.h"
#include "common/table_printer.h"
#include "core/advisor.h"
#include "data/tpcd.h"

namespace olapidx {
namespace {

void Run(bench::BenchJsonReporter* rep) {
  CubeSchema schema = TpcdSchema();
  CubeLattice lattice(schema);
  CubeGraphOptions opts;
  opts.raw_scan_penalty = 2.0;
  Advisor advisor(schema, TpcdPaperSizes(), AllSliceQueries(lattice), opts);

  std::printf("== E8: two-step split sweep on TPC-D (S = 25M) ==\n\n");
  TablePrinter t({"index fraction", "strict avg cost", "strict space",
                  "loose avg cost", "loose space"});
  for (double f : {0.0, 0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0}) {
    std::string cells[4];
    int i = 0;
    for (bool strict : {true, false}) {
      AdvisorConfig config;
      config.algorithm = Algorithm::kTwoStep;
      config.space_budget = kTpcdExampleBudget;
      config.two_step.index_fraction = f;
      config.two_step.strict_fit = strict;
      Recommendation rec = advisor.Recommend(config);
      cells[i++] = FormatRowCount(rec.average_query_cost);
      cells[i++] = FormatRowCount(rec.space_used);
      if (rep != nullptr) {
        rep->AddSelectionRun("split_" + FormatPercent(f, 0) +
                                 (strict ? "_strict" : "_loose"),
                             rec.raw);
      }
    }
    t.AddRow({FormatPercent(f, 0), cells[0], cells[1], cells[2],
              cells[3]});
  }
  t.Print();

  AdvisorConfig one;
  one.algorithm = Algorithm::kOneGreedy;
  one.space_budget = kTpcdExampleBudget;
  Recommendation one_rec = advisor.Recommend(one);
  double index_space = 0.0;
  for (const RecommendedStructure& s : one_rec.structures) {
    if (!s.is_view()) index_space += s.space;
  }
  std::printf(
      "\nIntegrated 1-greedy: avg cost %s, and it chose the split itself: "
      "%s of its space went to indexes\n(paper: \"we are best off "
      "allocating three-quarters of the available space to the "
      "indexes\").\n",
      FormatRowCount(one_rec.average_query_cost).c_str(),
      FormatPercent(index_space / one_rec.space_used).c_str());
  std::printf(
      "No fixed split matches it across instances — the fraction depends "
      "on subcube/index sizes (Section 2).\n");
  if (rep != nullptr) {
    rep->AddSelectionRun("one_greedy", one_rec.raw);
    rep->AddScalar("one_greedy_avg_cost", one_rec.average_query_cost);
    rep->AddScalar("one_greedy_index_share",
                   index_space / one_rec.space_used);
  }
}

}  // namespace
}  // namespace olapidx

int main(int argc, char** argv) {
  olapidx::bench::BenchArgs args =
      olapidx::bench::ParseBenchArgs(argc, argv, "twostep_split");
  olapidx::bench::BenchJsonReporter rep("twostep_split");
  olapidx::Run(args.json ? &rep : nullptr);
  olapidx::bench::FinishBenchJson(rep, args);
  return 0;
}
