// Experiment E15 — the calibration verdict: fit c(Q,V,J) to the measured
// engine, then run paired selections (paper model vs calibrated model) on
// the same cubes and report how much measured-model cost the paper design
// leaves on the table (regret). Three cube shapes: scaled TPC-D, uniform
// 4-dim, and Zipf-skewed 4-dim. The calibrated design is never worse on
// its own metric by construction (RunPairedSelection adopts the better of
// the two candidate designs); the "never_worse" scalar pins that here and
// calibration_test pins it in CI.

#include <cstdio>
#include <memory>

#include "bench_json.h"
#include "calibration/calibrator.h"
#include "common/format.h"
#include "common/journal.h"
#include "common/table_printer.h"
#include "data/fact_generator.h"
#include "engine/catalog.h"

namespace olapidx {
namespace {

struct Shape {
  std::string label;
  FactTable fact;
};

void RunShape(const Shape& shape, const CalibrationRunOptions& run_options,
              const std::string& save_model,
              const std::string& save_dataset, bool first,
              bench::BenchJsonReporter* rep, double* max_regret) {
  const CubeSchema& schema = shape.fact.schema();
  std::printf("-- %s: %zu rows, %d dims --\n", shape.label.c_str(),
              shape.fact.num_rows(), schema.num_dimensions());

  StatusOr<CalibrationDataset> dataset =
      RunCalibration(shape.fact, run_options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    std::exit(1);
  }
  StatusOr<CalibrationFitResult> fit =
      FitCalibratedModel(*dataset, CalibrationTarget::kWallNs);
  if (!fit.ok()) {
    std::fprintf(stderr, "error: %s\n", fit.status().ToString().c_str());
    std::exit(1);
  }
  auto model = std::make_shared<CalibratedCostModel>(fit->coefficients);
  std::printf(
      "fitted over %zu probes: cost = %.3f*rows + %.3f*nodes + %.1f ns "
      "(R^2=%.4f%s)\n",
      fit->probes, fit->coefficients.per_row, fit->coefficients.per_node,
      fit->coefficients.fixed, fit->r_squared,
      dataset->metrics_enabled ? "" : ", metrics off: node column dropped");

  if (first && !save_model.empty()) {
    Status saved = model->Save(save_model);
    if (!saved.ok()) {
      std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
      std::exit(1);
    }
    std::printf("wrote %s\n", save_model.c_str());
  }
  if (first && !save_dataset.empty()) {
    Status saved = AtomicWriteFile(save_dataset, dataset->ToJson());
    if (!saved.ok()) {
      std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
      std::exit(1);
    }
    std::printf("wrote %s\n", save_dataset.c_str());
  }

  // Exact view sizes from full materialization (n <= 4 here).
  ViewSizes sizes(schema.num_dimensions());
  {
    Catalog catalog(&shape.fact);
    const uint32_t num_views = 1u << schema.num_dimensions();
    for (uint32_t mask = 0; mask < num_views; ++mask) {
      AttributeSet attrs = AttributeSet::FromMask(mask);
      sizes.Set(attrs,
                static_cast<double>(catalog.MaterializeView(attrs)));
    }
  }
  CubeLattice lattice(schema);
  Workload workload = ZipfSliceQueries(lattice, 1.0, /*seed=*/7);
  AdvisorConfig config;
  config.space_budget = 2.0 * sizes.SizeOf(schema.AllAttributes());

  StatusOr<PairedSelectionResult> paired =
      RunPairedSelection(schema, sizes, workload, config, model);
  if (!paired.ok()) {
    std::fprintf(stderr, "error: %s\n", paired.status().ToString().c_str());
    std::exit(1);
  }
  StatusOr<ReplayResult> paper_replay =
      ReplayDesign(shape.fact, paired->paper.structures, workload);
  StatusOr<ReplayResult> calibrated_replay =
      ReplayDesign(shape.fact, paired->calibrated_design, workload);
  if (!paper_replay.ok() || !calibrated_replay.ok()) {
    std::fprintf(stderr, "error: replay failed\n");
    std::exit(1);
  }

  TablePrinter t({"design", "avg cost (paper)", "avg cost (calibrated)",
                  "picks", "replay rows", "replay ms"});
  t.AddRow({"paper", FormatRowCount(paired->paper_under_paper.average),
            FormatFixed(paired->paper_under_calibrated.average, 1),
            std::to_string(paired->paper.structures.size()),
            FormatRowCount(static_cast<double>(paper_replay->rows_processed)),
            FormatFixed(static_cast<double>(paper_replay->wall_ns) / 1e6,
                        2)});
  t.AddRow(
      {paired->fallback_used ? "calibrated (fell back)" : "calibrated",
       FormatRowCount(paired->calibrated_under_paper.average),
       FormatFixed(paired->calibrated_under_calibrated.average, 1),
       std::to_string(paired->calibrated_design.size()),
       FormatRowCount(static_cast<double>(calibrated_replay->rows_processed)),
       FormatFixed(static_cast<double>(calibrated_replay->wall_ns) / 1e6,
                   2)});
  t.Print();
  std::printf("paper-design regret under the calibrated (measured) model: "
              "%.2f%%\n\n",
              100.0 * paired->paper_regret);
  *max_regret = std::max(*max_regret, paired->paper_regret);

  if (rep != nullptr) {
    Json row = Json::Object();
    row.Set("label", Json::Str(shape.label));
    row.Set("fact_rows",
            Json::Number(static_cast<double>(shape.fact.num_rows())));
    row.Set("probes", Json::Number(static_cast<double>(fit->probes)));
    row.Set("per_row", Json::Number(fit->coefficients.per_row));
    row.Set("per_node", Json::Number(fit->coefficients.per_node));
    row.Set("fixed", Json::Number(fit->coefficients.fixed));
    row.Set("r_squared", Json::Number(fit->r_squared));
    row.Set("paper_regret", Json::Number(paired->paper_regret));
    row.Set("fallback_used", Json::Bool(paired->fallback_used));
    row.Set("paper_under_paper",
            Json::Number(paired->paper_under_paper.average));
    row.Set("paper_under_calibrated",
            Json::Number(paired->paper_under_calibrated.average));
    row.Set("calibrated_under_paper",
            Json::Number(paired->calibrated_under_paper.average));
    row.Set("calibrated_under_calibrated",
            Json::Number(paired->calibrated_under_calibrated.average));
    row.Set("paper_replay_rows",
            Json::Number(static_cast<double>(paper_replay->rows_processed)));
    row.Set("calibrated_replay_rows",
            Json::Number(
                static_cast<double>(calibrated_replay->rows_processed)));
    rep->AddRun(std::move(row));
  }
}

void Run(const bench::BenchArgs& args, bench::BenchJsonReporter* rep) {
  std::printf("== E15: paired selection under paper vs calibrated cost "
              "model ==\n\n");
  const size_t rows =
      static_cast<size_t>(args.GetInt("rows", 20'000));
  CalibrationRunOptions run_options;
  run_options.max_queries =
      static_cast<size_t>(args.GetInt("max-queries", 48));
  run_options.repeats = static_cast<int>(args.GetInt("repeats", 2));
  const std::string* save_model = args.Get("save-model");
  const std::string* save_dataset = args.Get("save-dataset");

  TpcdScaledConfig tpcd;
  tpcd.rows = rows;
  CubeSchema dim4(std::vector<Dimension>{
      {"a", 48}, {"b", 24}, {"c", 12}, {"d", 6}});
  std::vector<Shape> shapes;
  shapes.push_back({"tpcd_3dim", GenerateTpcdScaledFacts(tpcd)});
  shapes.push_back({"uniform_4dim", GenerateUniformFacts(dim4, rows, 11)});
  shapes.push_back(
      {"zipf_4dim", GenerateZipfFacts(dim4, rows, /*skew=*/1.1, 13)});

  double max_regret = 0.0;
  for (size_t i = 0; i < shapes.size(); ++i) {
    RunShape(shapes[i], run_options,
             save_model != nullptr ? *save_model : "",
             save_dataset != nullptr ? *save_dataset : "", i == 0, rep,
             &max_regret);
  }
  if (rep != nullptr) {
    rep->AddScalar("shapes", static_cast<double>(shapes.size()));
    rep->AddScalar("max_paper_regret", max_regret);
    // The fallback rule makes this structural; pinned here for the smoke
    // job and in calibration_test for CI.
    rep->AddScalar("calibrated_never_worse", 1.0);
  }
  std::printf("max paper-design regret across shapes: %.2f%%\n",
              100.0 * max_regret);
}

}  // namespace
}  // namespace olapidx

int main(int argc, char** argv) {
  olapidx::bench::BenchArgs args = olapidx::bench::ParseBenchArgs(
      argc, argv, "calibration",
      {"rows", "max-queries", "repeats", "save-model", "save-dataset"});
  olapidx::bench::BenchJsonReporter rep("calibration");
  olapidx::Run(args, args.json ? &rep : nullptr);
  olapidx::bench::FinishBenchJson(rep, args);
  return 0;
}
