// Service-plane benchmark — the resident AdvisorService's operating
// costs: initial bring-up (graph build + first selection), observation
// throughput into the sharded frequency sketch (serial and concurrent),
// what-if request latency (sequential) and throughput under concurrent
// load, a drift-triggered epoch close (re-selection included), and the
// crash-safety tax (journal save, journaled restart). Prints a
// paper-style table and emits BENCH_service.json under --json[=FILE].

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/check.h"
#include "data/synthetic.h"
#include "service/advisor_service.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

constexpr int kDefaultDims = 6;
constexpr size_t kDefaultRequests = 200;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

SliceQuery MaskedQuery(uint32_t group_mask, uint32_t selection_mask = 0) {
  return SliceQuery(AttributeSet::FromMask(group_mask),
                    AttributeSet::FromMask(selection_mask));
}

void AddRow(bench::BenchJsonReporter& rep, const std::string& label,
            double wall_ms, double ops_per_sec = 0.0) {
  Json row = Json::Object();
  row.Set("label", Json::Str(label));
  row.Set("wall_ms", Json::Number(wall_ms));
  if (ops_per_sec > 0.0) row.Set("ops_per_sec", Json::Number(ops_per_sec));
  rep.AddRun(std::move(row));
  if (ops_per_sec > 0.0) {
    std::printf("%-28s %12.2f ms %14.0f ops/s\n", label.c_str(), wall_ms,
                ops_per_sec);
  } else {
    std::printf("%-28s %12.2f ms\n", label.c_str(), wall_ms);
  }
}

void RunBench(bench::BenchJsonReporter& rep, int dims, size_t requests) {
  SyntheticCube cube = UniformSyntheticCube(dims, 8, 0.3);
  CubeLattice lattice(cube.schema);
  const std::string journal = "BENCH_service.journal";
  std::remove(journal.c_str());

  ServiceOptions options;
  options.base.algorithm = Algorithm::kInnerLevel;
  options.base.space_budget = 0.25 * cube.sizes.TotalViewSpace();
  options.graph.raw_scan_penalty = 2.0;
  options.drift_threshold = 0.05;
  options.default_deadline_ms = 60'000;
  options.journal_path = journal;

  // Bring-up: graph build + the complete initial selection.
  auto start = std::chrono::steady_clock::now();
  StatusOr<std::unique_ptr<AdvisorService>> created = AdvisorService::Create(
      cube.schema, cube.sizes, AllSliceQueries(lattice), options);
  OLAPIDX_CHECK(created.ok());
  AdvisorService& service = **created;
  AddRow(rep, "create", MsSince(start));

  // Observation plane: the sketch's insert path, serial then concurrent.
  const size_t kObservations = 200'000;
  const uint32_t all_mask = (1u << static_cast<uint32_t>(dims)) - 1u;
  start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < kObservations; ++i) {
    (void)service.Observe(
        MaskedQuery(static_cast<uint32_t>(i) % all_mask + 1u));
  }
  double serial_ms = MsSince(start);
  AddRow(rep, "observe/serial", serial_ms,
         static_cast<double>(kObservations) / serial_ms * 1000.0);

  constexpr size_t kObserveThreads = 4;
  start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kObserveThreads; ++t) {
      threads.emplace_back([&service, t, all_mask] {
        for (size_t i = 0; i < kObservations / kObserveThreads; ++i) {
          (void)service.Observe(MaskedQuery(
              static_cast<uint32_t>(t * 31 + i) % all_mask + 1u));
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  double parallel_ms = MsSince(start);
  AddRow(rep, "observe/4threads", parallel_ms,
         static_cast<double>(kObservations) / parallel_ms * 1000.0);

  // Request plane, sequential: a 3-point budget sweep per request.
  double budget = options.base.space_budget;
  WhatIfRequest sweep;
  sweep.budgets = {0.5 * budget, budget, 2.0 * budget};
  start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < requests; ++i) {
    WhatIfResult result = service.WhatIf(sweep);
    OLAPIDX_CHECK(result.status.ok());
  }
  double seq_ms = MsSince(start);
  AddRow(rep, "whatif/sequential", seq_ms,
         static_cast<double>(requests) / seq_ms * 1000.0);
  rep.AddScalar("whatif_mean_ms", seq_ms / static_cast<double>(requests));

  // Request plane, concurrent: 4 requesters racing admission control.
  constexpr size_t kRequestThreads = 4;
  start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kRequestThreads; ++t) {
      threads.emplace_back([&service, &sweep, requests] {
        for (size_t i = 0; i < requests / kRequestThreads; ++i) {
          (void)service.WhatIf(sweep);  // rejections are terminal answers
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  double conc_ms = MsSince(start);
  AddRow(rep, "whatif/4threads", conc_ms,
         static_cast<double>(requests) / conc_ms * 1000.0);

  // Control plane: shift the observed distribution, close the epoch, and
  // time the drift-triggered re-selection (epoch close includes the
  // journal write).
  (void)service.AdvanceEpoch();  // establish the baseline epoch
  for (int i = 0; i < 500; ++i) {
    (void)service.Observe(MaskedQuery(1u, all_mask & ~1u), 8.0);
  }
  start = std::chrono::steady_clock::now();
  EpochResult epoch = service.AdvanceEpoch();
  OLAPIDX_CHECK(epoch.status.ok());
  OLAPIDX_CHECK(epoch.reselected);
  AddRow(rep, "epoch_close/reselect", MsSince(start));
  rep.AddScalar("drift", epoch.drift);

  // Crash-safety tax: explicit journal save, then a journaled restart.
  start = std::chrono::steady_clock::now();
  OLAPIDX_CHECK(service.Save().ok());
  AddRow(rep, "journal/save", MsSince(start));

  start = std::chrono::steady_clock::now();
  StatusOr<std::unique_ptr<AdvisorService>> restarted =
      AdvisorService::Create(cube.schema, cube.sizes,
                             AllSliceQueries(lattice), options);
  OLAPIDX_CHECK(restarted.ok());
  OLAPIDX_CHECK((*restarted)->epoch() == service.epoch());
  AddRow(rep, "journal/restart", MsSince(start));

  std::remove(journal.c_str());
}

}  // namespace
}  // namespace olapidx

int main(int argc, char** argv) {
  olapidx::bench::BenchArgs args = olapidx::bench::ParseBenchArgs(
      argc, argv, "service", {"dims", "requests"});
  const int dims =
      static_cast<int>(args.GetInt("dims", olapidx::kDefaultDims));
  const size_t requests = static_cast<size_t>(
      args.GetInt("requests",
                  static_cast<long>(olapidx::kDefaultRequests)));
  if (dims < 2 || dims > 10) {
    std::fprintf(stderr, "error: --dims must be in [2, 10]\n");
    return 2;
  }
  if (requests < 4) {
    std::fprintf(stderr, "error: --requests must be >= 4\n");
    return 2;
  }
  olapidx::bench::BenchJsonReporter rep("service");
  olapidx::RunBench(rep, dims, requests);
  olapidx::bench::FinishBenchJson(rep, args);
  return 0;
}
