// Experiment E11 — running-time scaling (google-benchmark). Section 5
// claims r-greedy runs in O(k·m^r) and inner-level greedy in O(k²·m²),
// where m is the number of structures; this bench measures wall time per
// full selection across cube dimensions (m grows factorially with n) and
// across r, plus B+tree build/scan microbenchmarks for the engine.

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "bench_json.h"
#include "core/cube_graph.h"
#include "core/inner_greedy.h"
#include "core/optimal.h"
#include "core/r_greedy.h"
#include "core/two_step.h"
#include "data/fact_generator.h"
#include "data/synthetic.h"
#include "engine/view_index.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

// One synthetic cube instance: the graph and the budget derived from the
// *same* build (the seed version rebuilt the cube a second time just to
// compute the budget, doubling setup cost).
struct ScalingSetup {
  CubeGraph cg;
  double budget = 0.0;
};

ScalingSetup MakeSetup(int n) {
  SyntheticCube cube = UniformSyntheticCube(n, 100, 0.05);
  CubeLattice lattice(cube.schema);
  CubeGraphOptions opts;
  opts.raw_scan_penalty = 2.0;
  ScalingSetup setup{BuildCubeGraph(cube.schema, cube.sizes,
                                    AllSliceQueries(lattice), opts),
                     0.0};
  setup.budget = 0.25 * (cube.sizes.TotalViewSpace() +
                         cube.sizes.TotalFatIndexSpace());
  return setup;
}

void ReportEvalCounters(benchmark::State& state,
                        const SelectionResult& res) {
  state.counters["evaluated"] =
      static_cast<double>(res.candidates_evaluated);
  state.counters["cache_hit_rate"] = res.stats.CacheHitRate();
}

void BM_RGreedy(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int r = static_cast<int>(state.range(1));
  ScalingSetup setup = MakeSetup(n);
  SelectionResult last;
  for (auto _ : state) {
    last = RGreedy(setup.cg.graph, setup.budget,
                   RGreedyOptions{.r = r, .max_subsets_per_view = 100'000});
    benchmark::DoNotOptimize(last.final_cost);
  }
  ReportEvalCounters(state, last);
  state.counters["structures"] =
      static_cast<double>(setup.cg.graph.num_structures());
}
BENCHMARK(BM_RGreedy)
    ->ArgsProduct({{3, 4, 5}, {1, 2, 3}})
    ->Args({6, 1})
    ->Args({6, 2})
    ->Unit(benchmark::kMillisecond);

// Ablation: the same selection with memoization disabled — the seed's
// evaluate-everything-every-stage behavior.
void BM_RGreedyNoMemo(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int r = static_cast<int>(state.range(1));
  ScalingSetup setup = MakeSetup(n);
  for (auto _ : state) {
    SelectionResult res =
        RGreedy(setup.cg.graph, setup.budget,
                RGreedyOptions{.r = r,
                               .max_subsets_per_view = 100'000,
                               .memoize = false});
    benchmark::DoNotOptimize(res.final_cost);
  }
}
BENCHMARK(BM_RGreedyNoMemo)
    ->Args({5, 2})
    ->Args({6, 2})
    ->Unit(benchmark::kMillisecond);

void BM_LazyOneGreedy(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ScalingSetup setup = MakeSetup(n);
  SelectionResult last;
  for (auto _ : state) {
    last = RGreedy(setup.cg.graph, setup.budget,
                   RGreedyOptions{.r = 1, .lazy_one_greedy = true});
    benchmark::DoNotOptimize(last.final_cost);
  }
  ReportEvalCounters(state, last);
  state.counters["structures"] =
      static_cast<double>(setup.cg.graph.num_structures());
}
BENCHMARK(BM_LazyOneGreedy)->DenseRange(3, 6)->Unit(
    benchmark::kMillisecond);

void BM_InnerLevelGreedy(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ScalingSetup setup = MakeSetup(n);
  SelectionResult last;
  for (auto _ : state) {
    last = InnerLevelGreedy(setup.cg.graph, setup.budget);
    benchmark::DoNotOptimize(last.final_cost);
  }
  ReportEvalCounters(state, last);
  state.counters["structures"] =
      static_cast<double>(setup.cg.graph.num_structures());
}
BENCHMARK(BM_InnerLevelGreedy)
    ->DenseRange(3, 6)
    ->Unit(benchmark::kMillisecond);

void BM_TwoStep(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ScalingSetup setup = MakeSetup(n);
  for (auto _ : state) {
    SelectionResult res =
        TwoStep(setup.cg.graph, setup.budget, TwoStepOptions{});
    benchmark::DoNotOptimize(res.final_cost);
  }
}
BENCHMARK(BM_TwoStep)->DenseRange(3, 6)->Unit(benchmark::kMillisecond);

void BM_BranchAndBoundOptimal(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ScalingSetup setup = MakeSetup(n);
  for (auto _ : state) {
    SelectionResult res =
        BranchAndBoundOptimal(setup.cg.graph, setup.budget);
    benchmark::DoNotOptimize(res.final_cost);
  }
}
BENCHMARK(BM_BranchAndBoundOptimal)
    ->DenseRange(2, 3)
    ->Unit(benchmark::kMillisecond);

void BM_BuildCubeGraph(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  SyntheticCube cube = UniformSyntheticCube(n, 100, 0.05);
  CubeLattice lattice(cube.schema);
  Workload w = AllSliceQueries(lattice);
  for (auto _ : state) {
    CubeGraph cg = BuildCubeGraph(cube.schema, cube.sizes, w);
    benchmark::DoNotOptimize(cg.graph.num_structures());
  }
}
BENCHMARK(BM_BuildCubeGraph)->DenseRange(3, 6)->Unit(
    benchmark::kMillisecond);

// ---- Engine microbenchmarks ----

void BM_BTreeInsert(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Pcg32 rng(1);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = rng.Next();
  for (auto _ : state) {
    BPlusTree tree;
    for (size_t i = 0; i < n; ++i) {
      tree.Insert(keys[i], static_cast<uint32_t>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BTreeInsert)->Range(1 << 10, 1 << 16);

void BM_BTreeBulkLoad(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Pcg32 rng(1);
  std::vector<std::pair<uint64_t, uint32_t>> entries(n);
  for (size_t i = 0; i < n; ++i) {
    entries[i] = {rng.Next(), static_cast<uint32_t>(i)};
  }
  std::sort(entries.begin(), entries.end());
  for (auto _ : state) {
    BPlusTree tree;
    tree.BulkLoad(entries);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BTreeBulkLoad)->Range(1 << 10, 1 << 16);

void BM_IndexPrefixScan(benchmark::State& state) {
  TpcdScaledConfig config;
  config.rows = static_cast<size_t>(state.range(0));
  FactTable fact = GenerateTpcdScaledFacts(config);
  MaterializedView view = MaterializedView::FromFactTable(
      fact, AttributeSet::Of({0, 1}));
  ViewIndex index(view, IndexKey({1, 0}));
  Pcg32 rng(2);
  for (auto _ : state) {
    uint32_t s = rng.NextBounded(config.suppliers);
    size_t rows = index.ScanPrefix({s}, [](uint32_t) {});
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_IndexPrefixScan)->Arg(20'000)->Arg(60'000);

void BM_GroupByMaterialize(benchmark::State& state) {
  TpcdScaledConfig config;
  config.rows = static_cast<size_t>(state.range(0));
  FactTable fact = GenerateTpcdScaledFacts(config);
  for (auto _ : state) {
    MaterializedView v = MaterializedView::FromFactTable(
        fact, AttributeSet::Of({0, 1}));
    benchmark::DoNotOptimize(v.num_rows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(config.rows));
}
BENCHMARK(BM_GroupByMaterialize)->Arg(20'000)->Arg(60'000);

// Deterministic selection sweep for --json mode: one full selection per
// (algorithm, dimension) cell with wall time from the algorithm's own
// EvaluationStats — no repetition statistics, but stable row content and
// schema. Used by the CI bench-smoke job and by the metrics-overhead
// measurement (compare wall_ms of two builds of this sweep). Each row
// carries the dimension's one-time graph-construction cost separately
// from the selection's own wall time ("graph_build_ms" vs
// "selection_ms"), so construction and selection scaling can be read
// apart from the same report.
void RunJsonSweep(bench::BenchJsonReporter& rep) {
  for (int n = 3; n <= 5; ++n) {
    auto build_start = std::chrono::steady_clock::now();
    ScalingSetup setup = MakeSetup(n);
    double graph_build_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() -
                                build_start)
                                .count();
    std::string dim = "dim" + std::to_string(n);
    auto add = [&](const std::string& label, const SelectionResult& res) {
      double selection_ms =
          static_cast<double>(res.stats.total_wall_micros) / 1000.0;
      rep.AddSelectionRun(label, res,
                          {{"graph_build_ms", graph_build_ms},
                           {"selection_ms", selection_ms}});
    };
    for (int r = 1; r <= 2; ++r) {
      add(dim + "/rgreedy_r" + std::to_string(r),
          RGreedy(setup.cg.graph, setup.budget,
                  RGreedyOptions{.r = r, .max_subsets_per_view = 100'000}));
    }
    add(dim + "/lazy_one_greedy",
        RGreedy(setup.cg.graph, setup.budget,
                RGreedyOptions{.r = 1, .lazy_one_greedy = true}));
    add(dim + "/inner_level",
        InnerLevelGreedy(setup.cg.graph, setup.budget));
    add(dim + "/two_step",
        TwoStep(setup.cg.graph, setup.budget, TwoStepOptions{}));
  }
}

}  // namespace
}  // namespace olapidx

// BENCHMARK_MAIN() rejects unrecognized flags, so --json is peeled off
// here: with it, the deterministic JSON sweep runs instead of the
// google-benchmark harness (whose own flags still work without --json).
int main(int argc, char** argv) {
  using olapidx::bench::BenchArgs;
  using olapidx::bench::BenchJsonReporter;
  BenchArgs json_args;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json_args.json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        json_args.json_path = argv[++i];
      } else {
        json_args.json_path = "BENCH_perf_scaling.json";
      }
    } else if (arg.rfind("--json=", 0) == 0) {
      json_args.json = true;
      json_args.json_path = arg.substr(7);
      if (json_args.json_path.empty()) {
        json_args.json_path = "BENCH_perf_scaling.json";
      }
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (json_args.json) {
    BenchJsonReporter rep("perf_scaling");
    olapidx::RunJsonSweep(rep);
    olapidx::bench::FinishBenchJson(rep, json_args);
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
