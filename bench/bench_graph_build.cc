// Experiment E12 — query-view graph construction time. The Section 5.1
// graph has 2^n views, Σ_k C(n,k)·k! fat indexes, and a slice workload of
// up to 3^n queries; the seed builder walked every (query, view,
// permutation) triple serially. This bench times that retained reference
// against the fast builder (superset enumeration + prefix-class costing +
// sharded parallel emission) across cube dimensions, and reports per-dim
// speedups. The reference is capped at dimension 7 — the dim-8 triple loop
// takes minutes, which is the point of the fast path.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/check.h"
#include "core/cube_graph.h"
#include "data/synthetic.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

constexpr int kMinDim = 4;
constexpr int kDefaultMaxDim = 7;
constexpr int kMaxReferenceDim = 7;

struct Timed {
  double ms = 0.0;
  size_t structures = 0;
  size_t queries = 0;
};

template <typename BuildFn>
Timed BestOf(int reps, const BuildFn& build) {
  Timed out;
  out.ms = 1e300;
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    CubeGraph cg = build();
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    out.ms = std::min(out.ms, ms);
    out.structures = cg.graph.num_structures();
    out.queries = cg.graph.num_queries();
  }
  return out;
}

void AddBuildRow(bench::BenchJsonReporter& rep, const std::string& label,
                 int dim, const Timed& t) {
  Json row = Json::Object();
  row.Set("label", Json::Str(label));
  row.Set("dim", Json::Number(dim));
  row.Set("structures", Json::Number(static_cast<double>(t.structures)));
  row.Set("queries", Json::Number(static_cast<double>(t.queries)));
  row.Set("wall_ms", Json::Number(t.ms));
  rep.AddRun(std::move(row));
}

void RunBench(bench::BenchJsonReporter& rep, int max_dim) {
  std::printf("%-4s %10s %8s %12s %10s %10s %10s %8s %8s\n", "dim",
              "structures", "queries", "reference_ms", "fast_t1_ms",
              "fast_t2_ms", "fast_t8_ms", "x_t1", "x_t8");
  for (int n = kMinDim; n <= max_dim; ++n) {
    SyntheticCube cube = UniformSyntheticCube(n, 100, 0.05);
    CubeLattice lattice(cube.schema);
    Workload workload = AllSliceQueries(lattice);
    const int reps = n <= 5 ? 5 : (n == 6 ? 3 : 1);
    const std::string dim = "dim" + std::to_string(n);

    Timed ref;
    const bool run_reference = n <= kMaxReferenceDim;
    if (run_reference) {
      ref = BestOf(reps, [&] {
        return BuildCubeGraphReference(cube.schema, cube.sizes, workload,
                                       CubeGraphOptions{});
      });
      AddBuildRow(rep, dim + "/reference", n, ref);
    }

    Timed fast[3];
    const size_t thread_counts[3] = {1, 2, 8};
    for (int i = 0; i < 3; ++i) {
      CubeGraphOptions options;
      options.num_threads = thread_counts[i];
      fast[i] = BestOf(reps, [&] {
        StatusOr<CubeGraph> built =
            TryBuildCubeGraph(cube.schema, cube.sizes, workload, options);
        OLAPIDX_CHECK(built.ok());
        return *std::move(built);
      });
      AddBuildRow(rep,
                  dim + "/fast_t" + std::to_string(thread_counts[i]), n,
                  fast[i]);
    }

    if (run_reference) {
      for (int i = 0; i < 3; ++i) {
        rep.AddScalar("speedup_" + dim + "_t" +
                          std::to_string(thread_counts[i]),
                      ref.ms / fast[i].ms);
      }
      std::printf("%-4d %10zu %8zu %12.2f %10.2f %10.2f %10.2f %7.2fx %7.2fx\n",
                  n, fast[0].structures, fast[0].queries, ref.ms, fast[0].ms,
                  fast[1].ms, fast[2].ms, ref.ms / fast[0].ms,
                  ref.ms / fast[2].ms);
    } else {
      std::printf("%-4d %10zu %8zu %12s %10.2f %10.2f %10.2f %8s %8s\n", n,
                  fast[0].structures, fast[0].queries, "-", fast[0].ms,
                  fast[1].ms, fast[2].ms, "-", "-");
    }
  }
}

}  // namespace
}  // namespace olapidx

int main(int argc, char** argv) {
  olapidx::bench::BenchArgs args =
      olapidx::bench::ParseBenchArgs(argc, argv, "graph_build", {"max-dim"});
  const int max_dim =
      static_cast<int>(args.GetInt("max-dim", olapidx::kDefaultMaxDim));
  if (max_dim < olapidx::kMinDim || max_dim > 8) {
    std::fprintf(stderr, "error: --max-dim must be in [%d, 8]\n",
                 olapidx::kMinDim);
    return 2;
  }
  olapidx::bench::BenchJsonReporter rep("graph_build");
  olapidx::RunBench(rep, max_dim);
  olapidx::bench::FinishBenchJson(rep, args);
  return 0;
}
