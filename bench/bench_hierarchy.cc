// Experiment E13 (extension) — the paper's framework on hierarchical
// lattices. Section 3 notes the algorithms' correctness and guarantees do
// not depend on the choice of views/queries/indexes; here the universe is
// the [HRU96]-style hierarchy lattice (one level per dimension per view).
// We verify: (a) the flat special case reproduces the paper's model
// exactly, (b) the greedy family stays near the certified bound on
// hierarchical instances, (c) mid-level aggregates dominate selections,
// and (d) the update-aware extension shifts picks under maintenance load.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_json.h"
#include "common/check.h"
#include "common/format.h"
#include "common/table_printer.h"
#include "core/inner_greedy.h"
#include "core/optimal.h"
#include "core/r_greedy.h"
#include "core/two_step.h"
#include "hierarchy/hierarchical_graph.h"

namespace olapidx {
namespace {

HierarchicalSchema RetailSchema(int levels_per_dim) {
  auto chain = [&](const std::string& base, uint64_t finest) {
    std::vector<HierarchyLevel> levels;
    uint64_t card = finest;
    for (int l = 0; l < levels_per_dim; ++l) {
      levels.push_back(
          HierarchyLevel{base + std::to_string(l), card});
      card = std::max<uint64_t>(2, card / 12);
    }
    return levels;
  };
  return HierarchicalSchema({
      HierarchicalDimension{"store", chain("s", 2'000)},
      HierarchicalDimension{"time", chain("t", 730)},
      HierarchicalDimension{"prod", chain("p", 5'000)},
  });
}

double TotalSpace(const QueryViewGraph& g) {
  double total = 0.0;
  for (uint32_t v = 0; v < g.num_views(); ++v) {
    total += g.view_space(v) *
             (1.0 + static_cast<double>(g.num_indexes(v)));
  }
  return total;
}

void Run(bench::BenchJsonReporter* rep) {
  std::printf("== E13 (extension): selection on hierarchical lattices ==\n\n");
  TablePrinter t({"levels/dim", "views", "structures", "queries",
                  "1-greedy", "2-greedy", "inner", "two-step",
                  "mid-level picks"});
  for (int levels = 1; levels <= 3; ++levels) {
    HierarchicalSchema schema = RetailSchema(levels);
    HierarchicalGraphOptions options;
    options.raw_scan_penalty = 2.0;
    HierarchicalCubeGraph cube = BuildHierarchicalCubeGraph(
        schema, 3e6, UniformHWorkload(schema), options);
    double budget = 0.03 * TotalSpace(cube.graph);

    auto ratio_value = [&](const SelectionResult& r) {
      double ub = UpperBoundBenefit(cube.graph, r.space_used);
      return r.Benefit() / ub;
    };
    auto ratio = [&](const SelectionResult& r) {
      std::string text = FormatFixed(ratio_value(r), 3) + "*";
      return text;
    };
    auto report = [&](const char* algo, const SelectionResult& r) {
      if (rep != nullptr) {
        Json row = Json::Object();
        row.Set("label",
                Json::Str("levels" + std::to_string(levels) + "/" + algo));
        row.Set("tau", Json::Number(r.final_cost));
        row.Set("benefit", Json::Number(r.Benefit()));
        row.Set("space", Json::Number(r.space_used));
        row.Set("ratio_vs_bound", Json::Number(ratio_value(r)));
        rep->AddRun(std::move(row));
      }
      return r;
    };
    SelectionResult inner = InnerLevelGreedy(cube.graph, budget);
    int mid = 0;
    for (const StructureRef& s : inner.picks) {
      if (!s.is_view()) continue;
      const LevelVector& lv = cube.view_levels[s.view];
      for (int d = 0; d < schema.num_dimensions(); ++d) {
        if (lv.level(d) > 0 && lv.level(d) < schema.all_level(d)) {
          ++mid;
          break;
        }
      }
    }
    t.AddRow({std::to_string(levels),
              std::to_string(cube.graph.num_views()),
              std::to_string(cube.graph.num_structures()),
              std::to_string(cube.graph.num_queries()),
              ratio(report("one_greedy",
                           RGreedy(cube.graph, budget, {.r = 1}))),
              ratio(report("two_greedy",
                           RGreedy(cube.graph, budget, {.r = 2}))),
              ratio(report("inner_level", inner)),
              ratio(report(
                  "two_step",
                  TwoStep(cube.graph, budget,
                          TwoStepOptions{.index_fraction = 0.5,
                                         .strict_fit = true}))),
              std::to_string(mid)});
  }
  t.Print();
  std::printf("\n(* = vs certified upper bound.) With 1 level per "
              "dimension this is exactly the paper's flat model; richer "
              "hierarchies\nadd mid-level aggregates, which the one-step "
              "algorithms exploit while two-step keeps losing.\n");

  // Maintenance pressure on a hierarchical instance: picks should shift
  // toward coarser (cheaper-to-refresh) structures.
  std::printf("\nUpdate-aware extension on the 3-level instance:\n");
  HierarchicalSchema schema = RetailSchema(3);
  TablePrinter m({"maintenance/row", "picks", "space", "net benefit",
                  "avg structure rows"});
  for (double rate : {0.0, 50.0, 200.0, 1000.0}) {
    HierarchicalGraphOptions options;
    options.raw_scan_penalty = 2.0;
    options.maintenance_per_row = rate;
    HierarchicalCubeGraph cube = BuildHierarchicalCubeGraph(
        schema, 3e6, UniformHWorkload(schema), options);
    double budget = 0.03 * TotalSpace(cube.graph);
    SelectionResult r = InnerLevelGreedy(cube.graph, budget);
    double avg = r.picks.empty()
                     ? 0.0
                     : r.space_used / static_cast<double>(r.picks.size());
    m.AddRow({FormatFixed(rate, 1), std::to_string(r.picks.size()),
              FormatRowCount(r.space_used), FormatRowCount(r.Benefit()),
              FormatRowCount(avg)});
    if (rep != nullptr) {
      Json row = Json::Object();
      row.Set("label", Json::Str("maintenance_" + FormatFixed(rate, 0)));
      row.Set("picks", Json::Number(static_cast<double>(r.picks.size())));
      row.Set("space", Json::Number(r.space_used));
      row.Set("net_benefit", Json::Number(r.Benefit()));
      rep->AddRun(std::move(row));
    }
  }
  m.Print();
}

template <typename Fn>
double BestOfMs(int reps, const Fn& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count());
  }
  return best;
}

// E13b — hierarchical graph construction time. The reference builder walks
// every (query, view, key order) triple serially; the fast path is the
// same generic core as the flat builder (odometer superset enumeration,
// one division per prefix class, sharded parallel emission, lazy names).
// Each row also splits the end-to-end advisor time into graph_build_ms vs
// selection_ms (inner-level greedy at a 3% budget) to show where the time
// now goes.
void RunBuildBench(bench::BenchJsonReporter* rep) {
  std::printf("\n== E13b: hierarchical graph build, reference vs fast ==\n\n");
  struct Instance {
    std::string label;
    HierarchicalSchema schema;
  };
  auto wide = [] {
    // 5 dimensions × 2 levels: 3^5 views but 5!-index view families — the
    // largest lattice here, and the one where the triple loop hurts most.
    std::vector<HierarchicalDimension> dims;
    const uint64_t finest[] = {2'000, 730, 5'000, 300, 50};
    for (int d = 0; d < 5; ++d) {
      dims.push_back(HierarchicalDimension{
          "w" + std::to_string(d),
          {{"f" + std::to_string(d), finest[d]},
           {"c" + std::to_string(d), std::max<uint64_t>(2, finest[d] / 20)}}});
    }
    return HierarchicalSchema(std::move(dims));
  };
  std::vector<Instance> instances;
  instances.push_back({"retail2", RetailSchema(2)});
  instances.push_back({"retail3", RetailSchema(3)});
  instances.push_back({"wide5x2", wide()});

  std::printf("%-8s %8s %10s %8s %12s %10s %10s %10s %12s %8s %8s\n",
              "schema", "views", "structures", "queries", "reference_ms",
              "fast_t1_ms", "fast_t2_ms", "fast_t8_ms", "selection_ms",
              "x_t1", "x_t8");
  for (const Instance& inst : instances) {
    HierarchicalGraphOptions options;
    options.raw_scan_penalty = 2.0;
    const std::vector<WeightedHQuery> workload =
        UniformHWorkload(inst.schema);
    const int reps = 3;

    double ref_ms = BestOfMs(reps, [&] {
      BuildHierarchicalCubeGraphReference(inst.schema, 3e6, workload,
                                          options);
    });

    double fast_ms[3];
    const size_t thread_counts[3] = {1, 2, 8};
    HierarchicalCubeGraph cube;
    for (int i = 0; i < 3; ++i) {
      options.num_threads = thread_counts[i];
      fast_ms[i] = BestOfMs(reps, [&] {
        StatusOr<HierarchicalCubeGraph> built =
            TryBuildHierarchicalCubeGraph(inst.schema, 3e6, workload,
                                          options);
        OLAPIDX_CHECK(built.ok());
        cube = *std::move(built);
      });
    }

    double budget = 0.03 * TotalSpace(cube.graph);
    double selection_ms =
        BestOfMs(reps, [&] { InnerLevelGreedy(cube.graph, budget); });

    std::printf("%-8s %8u %10u %8u %12.2f %10.2f %10.2f %10.2f %12.2f "
                "%7.2fx %7.2fx\n",
                inst.label.c_str(), cube.graph.num_views(),
                cube.graph.num_structures(), cube.graph.num_queries(),
                ref_ms, fast_ms[0], fast_ms[1], fast_ms[2], selection_ms,
                ref_ms / fast_ms[0], ref_ms / fast_ms[2]);
    if (rep != nullptr) {
      for (int i = 0; i < 3; ++i) {
        Json row = Json::Object();
        row.Set("label", Json::Str("build_" + inst.label + "/fast_t" +
                                   std::to_string(thread_counts[i])));
        row.Set("graph_build_ms", Json::Number(fast_ms[i]));
        row.Set("selection_ms", Json::Number(selection_ms));
        row.Set("reference_ms", Json::Number(ref_ms));
        rep->AddRun(std::move(row));
        rep->AddScalar("speedup_" + inst.label + "_t" +
                           std::to_string(thread_counts[i]),
                       ref_ms / fast_ms[i]);
      }
    }
  }
  std::printf("\nThe split shows construction no longer dominates: on the "
              "largest lattice the remaining advisor time is the\n"
              "selection itself, and the build parallelizes on top of the "
              "single-thread algorithmic win.\n");
}

}  // namespace
}  // namespace olapidx

int main(int argc, char** argv) {
  olapidx::bench::BenchArgs args =
      olapidx::bench::ParseBenchArgs(argc, argv, "hierarchy");
  olapidx::bench::BenchJsonReporter rep("hierarchy");
  olapidx::Run(args.json ? &rep : nullptr);
  olapidx::RunBuildBench(args.json ? &rep : nullptr);
  olapidx::bench::FinishBenchJson(rep, args);
  return 0;
}
