// Experiment E3 — Section 6, Figure 3: the performance guarantee of
// r-greedy as a function of r — 0 at r = 1, rising rapidly (0.39, 0.49,
// 0.53 at r = 2, 3, 4), a knee at r = 4, approaching 1 − 1/e ≈ 0.63 — with
// inner-level greedy's 0.467 between 2- and 3-greedy; plus an empirical
// column showing the measured worst case over adversarial trap instances.

#include <cstdio>
#include <string>

#include "bench_json.h"
#include "common/format.h"
#include "common/table_printer.h"
#include "core/guarantees.h"
#include "core/inner_greedy.h"
#include "core/optimal.h"
#include "core/r_greedy.h"
#include "data/example_graphs.h"

namespace olapidx {
namespace {

void Run(bench::BenchJsonReporter* rep) {
  std::printf("== E3: performance guarantees vs r (Figure 3) ==\n\n");
  TablePrinter t({"r", "guarantee 1-e^-((r-1)/r)", "paper", "delta vs r-1"});
  const char* paper[] = {"0", "0.39", "0.49", "0.53", "", "", "", ""};
  double prev = 0.0;
  for (int r = 1; r <= 8; ++r) {
    double gv = RGreedyGuarantee(r);
    t.AddRow({std::to_string(r), FormatFixed(gv, 4),
              r <= 4 ? paper[r - 1] : "-",
              r == 1 ? "-" : FormatFixed(gv - prev, 4)});
    if (rep != nullptr) {
      rep->AddScalar("guarantee_r" + std::to_string(r), gv);
    }
    prev = gv;
  }
  t.Print();
  std::printf("\nlimit r->inf: %s (= 1 - 1/e, the [HRU96] bound)\n",
              FormatFixed(RGreedyGuarantee(1'000'000), 4).c_str());
  std::printf("inner-level greedy: %s (paper: 0.467) — between 2-greedy "
              "(%s) and 3-greedy (%s) at ~2-greedy's running time\n",
              FormatFixed(InnerLevelGuarantee(), 4).c_str(),
              FormatFixed(RGreedyGuarantee(2), 4).c_str(),
              FormatFixed(RGreedyGuarantee(3), 4).c_str());
  std::printf("\nASCII rendering of Figure 3 (guarantee vs r):\n");
  for (int r = 1; r <= 10; ++r) {
    int bars = static_cast<int>(RGreedyGuarantee(r) * 60);
    std::printf("  r=%2d |%s %0.3f\n", r, std::string(
        static_cast<size_t>(bars), '#').c_str(), RGreedyGuarantee(r));
  }

  // Empirical check that the guarantees are not violated, and that the
  // r = 1 guarantee of zero is tight in the limit.
  std::printf("\nMeasured benefit ratios on the trap family "
              "(budget 2, decoy 1):\n");
  TablePrinter m({"trap benefit", "1-greedy/opt", "2-greedy/opt",
                  "inner/opt"});
  for (double tb : {5.0, 50.0, 500.0, 5000.0}) {
    QueryViewGraph g = OneGreedyTrapInstance(tb, 1.0);
    double opt = BranchAndBoundOptimal(g, 2.0).Benefit();
    double r1 = RGreedy(g, 2.0, {.r = 1}).Benefit() / opt;
    double r2 = RGreedy(g, 2.0, {.r = 2}).Benefit() / opt;
    double ri = InnerLevelGreedy(g, 2.0).Benefit() / opt;
    m.AddRow({FormatFixed(tb, 0), FormatFixed(r1, 4), FormatFixed(r2, 4),
              FormatFixed(ri, 4)});
    if (rep != nullptr) {
      Json row = Json::Object();
      row.Set("label", Json::Str("trap_" + std::to_string(
                                               static_cast<long long>(tb))));
      row.Set("one_greedy_ratio", Json::Number(r1));
      row.Set("two_greedy_ratio", Json::Number(r2));
      row.Set("inner_ratio", Json::Number(ri));
      rep->AddRun(std::move(row));
    }
  }
  m.Print();
  if (rep != nullptr) {
    rep->AddScalar("inner_level_guarantee", InnerLevelGuarantee());
    rep->AddScalar("limit_guarantee", RGreedyGuarantee(1'000'000));
  }
}

}  // namespace
}  // namespace olapidx

int main(int argc, char** argv) {
  olapidx::bench::BenchArgs args =
      olapidx::bench::ParseBenchArgs(argc, argv, "fig3_guarantees");
  olapidx::bench::BenchJsonReporter rep("fig3_guarantees");
  olapidx::Run(args.json ? &rep : nullptr);
  olapidx::bench::FinishBenchJson(rep, args);
  return 0;
}
