// The deterministic E2 (Figure 2) report, shared by bench_fig2_example and
// the golden-file test (tests/bench_json_test.cc). The bench's --json
// output is produced ONLY by FillFig2Report, so the checked-in golden
// genuinely guards what the binary emits: every selection here is a pure
// function of the calibrated Figure-2 instance, making the scrubbed
// document (BuildScrubbed) byte-stable across machines.

#ifndef OLAPIDX_BENCH_BENCH_FIG2_LIB_H_
#define OLAPIDX_BENCH_BENCH_FIG2_LIB_H_

#include "bench_json.h"
#include "core/inner_greedy.h"
#include "core/optimal.h"
#include "core/r_greedy.h"
#include "data/example_graphs.h"

namespace olapidx::bench {

inline void FillFig2Report(BenchJsonReporter& rep) {
  QueryViewGraph g = Figure2Instance();
  SelectionResult one = RGreedy(g, kFigure2Budget, RGreedyOptions{.r = 1});
  SelectionResult two = RGreedy(g, kFigure2Budget, RGreedyOptions{.r = 2});
  SelectionResult three = RGreedy(g, kFigure2Budget, RGreedyOptions{.r = 3});
  SelectionResult inner = InnerLevelGreedy(g, kFigure2Budget);
  SelectionResult opt7 = BranchAndBoundOptimal(g, kFigure2Budget);
  SelectionResult opt_inner = BranchAndBoundOptimal(g, inner.space_used);

  rep.AddSelectionRun("one_greedy", one);
  rep.AddSelectionRun("two_greedy", two);
  rep.AddSelectionRun("three_greedy", three);
  rep.AddSelectionRun("inner_level", inner);
  rep.AddSelectionRun("optimal_s7", opt7);
  rep.AddSelectionRun("optimal_s_inner", opt_inner);

  rep.AddScalar("budget", kFigure2Budget);
  rep.AddScalar("two_greedy_vs_optimal", two.Benefit() / opt7.Benefit());
  rep.AddScalar("three_greedy_vs_optimal",
                three.Benefit() / opt7.Benefit());
  rep.AddScalar("inner_vs_optimal",
                inner.Benefit() / opt_inner.Benefit());

  // The trap family: 1-greedy's benefit ratio sinks toward 0 as the trap
  // benefit grows (its guarantee is 0), while 2-greedy stays put.
  for (double tb : {10.0, 100.0, 1000.0, 100000.0}) {
    QueryViewGraph tg = OneGreedyTrapInstance(tb, 1.0);
    SelectionResult g1 = RGreedy(tg, 2.0, RGreedyOptions{.r = 1});
    SelectionResult g2 = RGreedy(tg, 2.0, RGreedyOptions{.r = 2});
    SelectionResult go = BranchAndBoundOptimal(tg, 2.0);
    Json row = Json::Object();
    row.Set("label", Json::Str("trap_" + std::to_string(
                                             static_cast<long long>(tb))));
    row.Set("one_greedy_benefit", Json::Number(g1.Benefit()));
    row.Set("two_greedy_benefit", Json::Number(g2.Benefit()));
    row.Set("optimal_benefit", Json::Number(go.Benefit()));
    row.Set("one_greedy_ratio", Json::Number(g1.Benefit() / go.Benefit()));
    rep.AddRun(std::move(row));
  }
}

}  // namespace olapidx::bench

#endif  // OLAPIDX_BENCH_BENCH_FIG2_LIB_H_
