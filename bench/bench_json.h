// Machine-readable bench output: the "olapidx-bench" v1 JSON schema, a
// reporter every bench binary shares, and the --json flag parser.
//
// Every bench_* binary accepts
//     --json            write BENCH_<name>.json in the working directory
//     --json=FILE       write FILE
//     --json FILE       same, space-separated
// and emits a schema-versioned document:
//
//   {
//     "schema": "olapidx-bench",
//     "version": 1,
//     "bench": "<name>",
//     "runs": [ {"label": ..., "tau": ..., "space": ..., "stages": ...,
//                "wall_ms": ..., ...}, ... ],
//     "scalars": { "<headline metric>": <number>, ... },
//     "metrics": { <registry delta over the bench, metrics.h JSON form> }
//   }
//
// The reporter is header-only so the golden-file test (bench_json_test)
// can build documents without linking a bench binary — the ASan CI preset
// compiles tests with benchmarks off. Determinism: Build() output depends
// only on the rows added (plus wall-clock and registry fields, which
// BuildScrubbed() zeroes for golden comparisons).

#ifndef OLAPIDX_BENCH_BENCH_JSON_H_
#define OLAPIDX_BENCH_BENCH_JSON_H_

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/metrics.h"
#include "common/status.h"
#include "core/selection_result.h"

namespace olapidx::bench {

inline constexpr const char* kBenchJsonSchema = "olapidx-bench";
inline constexpr int kBenchJsonVersion = 1;

class BenchJsonReporter {
 public:
  explicit BenchJsonReporter(std::string bench_name)
      : name_(std::move(bench_name)),
        registry_before_(MetricsRegistry::Global().Snapshot()) {}

  const std::string& name() const { return name_; }

  // A fully custom row; must be an object with at least a "label" string.
  void AddRun(Json run) { runs_.push_back(std::move(run)); }

  // The standard row for one selection-algorithm run. `extra` appends
  // additional numeric fields (e.g. "graph_build_ms" alongside the
  // selection's own wall time) without changing the core schema.
  void AddSelectionRun(
      const std::string& label, const SelectionResult& r,
      const std::vector<std::pair<std::string, double>>& extra = {}) {
    Json run = Json::Object();
    run.Set("label", Json::Str(label));
    run.Set("tau", Json::Number(r.final_cost));
    run.Set("avg_query_cost", Json::Number(r.AverageQueryCost()));
    run.Set("benefit", Json::Number(r.Benefit()));
    run.Set("space", Json::Number(r.space_used));
    run.Set("stages", Json::Number(static_cast<double>(r.stats.stages)));
    run.Set("picks", Json::Number(static_cast<double>(r.picks.size())));
    run.Set("wall_ms",
            Json::Number(static_cast<double>(r.stats.total_wall_micros) /
                         1000.0));
    run.Set("candidates_evaluated",
            Json::Number(static_cast<double>(r.candidates_evaluated)));
    run.Set("cache_hits",
            Json::Number(static_cast<double>(r.stats.cache_hits)));
    run.Set("cache_misses",
            Json::Number(static_cast<double>(r.stats.cache_misses)));
    run.Set("bound_prunes",
            Json::Number(static_cast<double>(r.stats.bound_prunes)));
    run.Set("threads",
            Json::Number(static_cast<double>(r.stats.threads_used)));
    run.Set("completed", Json::Bool(r.completed));
    for (const auto& [name, value] : extra) {
      run.Set(name, Json::Number(value));
    }
    AddRun(std::move(run));
  }

  // Headline numbers outside any one run (e.g. "one_step_improvement").
  void AddScalar(const std::string& name, double value) {
    scalars_.emplace_back(name, value);
  }

  // The full document, including the volatile fields (wall clocks, the
  // metrics-registry delta since the reporter was constructed).
  Json Build() const {
    Json doc = BuildCommon();
    MetricsSnapshot delta = SnapshotDelta(
        registry_before_, MetricsRegistry::Global().Snapshot());
    StatusOr<Json> metrics = Json::Parse(delta.ToJson());
    doc.Set("metrics",
            metrics.ok() ? std::move(metrics.value()) : Json::Object());
    return doc;
  }

  // The document with every volatile field removed or zeroed — a pure
  // function of the benchmark's deterministic outputs, suitable for
  // byte-exact golden comparison: every wall-clock field and the thread
  // count → 0, and no "metrics" member.
  Json BuildScrubbed() const {
    Json doc = BuildCommon();
    Json scrubbed_runs = Json::Array();
    for (const Json& run : doc.Find("runs")->elements()) {
      Json r = run;
      if (r.is_object()) {
        for (const char* volatile_field :
             {"wall_ms", "threads", "graph_build_ms", "selection_ms"}) {
          if (r.Find(volatile_field) != nullptr) {
            r.Set(volatile_field, Json::Number(0));
          }
        }
      }
      scrubbed_runs.Push(std::move(r));
    }
    doc.Set("runs", std::move(scrubbed_runs));
    return doc;
  }

  Status WriteFile(const std::string& path) const {
    std::string text = Build().Dump(2);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      return Status::Internal("cannot open '" + path + "' for writing");
    }
    size_t written = std::fwrite(text.data(), 1, text.size(), f);
    int closed = std::fclose(f);
    if (written != text.size() || closed != 0) {
      return Status::Internal("short write to '" + path + "'");
    }
    return Status::Ok();
  }

 private:
  Json BuildCommon() const {
    Json doc = Json::Object();
    doc.Set("schema", Json::Str(kBenchJsonSchema));
    doc.Set("version", Json::Number(kBenchJsonVersion));
    doc.Set("bench", Json::Str(name_));
    Json runs = Json::Array();
    for (const Json& run : runs_) runs.Push(run);
    doc.Set("runs", std::move(runs));
    Json scalars = Json::Object();
    for (const auto& [name, value] : scalars_) {
      scalars.Set(name, Json::Number(value));
    }
    doc.Set("scalars", std::move(scalars));
    return doc;
  }

  std::string name_;
  MetricsSnapshot registry_before_;
  std::vector<Json> runs_;
  std::vector<std::pair<std::string, double>> scalars_;
};

// Schema check used by the bench-smoke CI job and the golden test: does
// `doc` look like a valid "olapidx-bench" v1 document?
inline Status ValidateBenchJson(const Json& doc) {
  if (!doc.is_object()) return Status::InvalidArgument("not a JSON object");
  const Json* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->AsString() != kBenchJsonSchema) {
    return Status::InvalidArgument("missing or wrong \"schema\"");
  }
  const Json* version = doc.Find("version");
  if (version == nullptr || !version->is_number() ||
      version->AsDouble() != kBenchJsonVersion) {
    return Status::InvalidArgument("missing or unsupported \"version\"");
  }
  const Json* bench = doc.Find("bench");
  if (bench == nullptr || !bench->is_string() || bench->AsString().empty()) {
    return Status::InvalidArgument("missing \"bench\" name");
  }
  const Json* runs = doc.Find("runs");
  if (runs == nullptr || !runs->is_array()) {
    return Status::InvalidArgument("missing \"runs\" array");
  }
  for (size_t i = 0; i < runs->size(); ++i) {
    const Json& run = runs->at(i);
    auto fail = [&](const std::string& what) {
      return Status::InvalidArgument("runs[" + std::to_string(i) + "]: " +
                                     what);
    };
    if (!run.is_object()) return fail("not an object");
    const Json* label = run.Find("label");
    if (label == nullptr || !label->is_string()) {
      return fail("missing \"label\"");
    }
    for (const auto& [key, value] : run.members()) {
      if (key == "label") continue;
      if (!value.is_number() && !value.is_bool() && !value.is_string()) {
        return fail("member \"" + key + "\" is not a scalar");
      }
    }
  }
  const Json* scalars = doc.Find("scalars");
  if (scalars != nullptr && !scalars->is_object()) {
    return Status::InvalidArgument("\"scalars\" is not an object");
  }
  const Json* metrics = doc.Find("metrics");
  if (metrics != nullptr && !metrics->is_object()) {
    return Status::InvalidArgument("\"metrics\" is not an object");
  }
  return Status::Ok();
}

// --json flag parsing shared by every bench main(). Benches register
// their bench-specific value flags by name ("max-dim" accepts
// "--max-dim=7" and "--max-dim 7"); anything unregistered prints usage
// and exits(2) — no more hand-rolled argv peeling per bench. (Exception:
// bench_perf_scaling forwards the rest to google-benchmark.)
// Parsing is strict: a space-separated value may not itself start with
// "--" (so "--queries --json" is a missing value, not a value named
// "--json"), repeating a flag is an error rather than a silent
// first-one-wins, and GetInt/GetDouble reject non-numeric values.
// Strict whole-string numeric parsing behind GetInt/GetDouble (and unit
// tested directly): trailing junk, an empty string, or overflow is a
// parse failure, never a silent 0.
inline bool ParseLongStrict(const std::string& text, long* out) {
  errno = 0;
  char* end = nullptr;
  long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = value;
  return true;
}

inline bool ParseDoubleStrict(const std::string& text, double* out) {
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = value;
  return true;
}

struct BenchArgs {
  bool json = false;
  std::string json_path;  // set iff json
  // Registered extra flags actually passed, as (name, raw value) in
  // command-line order.
  std::vector<std::pair<std::string, std::string>> extras;

  const std::string* Get(const std::string& name) const {
    for (const auto& [flag, value] : extras) {
      if (flag == name) return &value;
    }
    return nullptr;
  }
  // Both accessors parse strictly — a CI invocation with a typoed value
  // must fail loudly (exit 2), not run with a default.
  long GetInt(const std::string& name, long fallback) const {
    const std::string* raw = Get(name);
    if (raw == nullptr) return fallback;
    long value = 0;
    if (!ParseLongStrict(*raw, &value)) {
      std::fprintf(stderr, "error: --%s wants an integer, got '%s'\n",
                   name.c_str(), raw->c_str());
      std::exit(2);
    }
    return value;
  }
  double GetDouble(const std::string& name, double fallback) const {
    const std::string* raw = Get(name);
    if (raw == nullptr) return fallback;
    double value = 0.0;
    if (!ParseDoubleStrict(*raw, &value)) {
      std::fprintf(stderr, "error: --%s wants a number, got '%s'\n",
                   name.c_str(), raw->c_str());
      std::exit(2);
    }
    return value;
  }
};

// The exit-free parsing core (unit tested directly): `argv` excludes the
// program name. Returns false and sets *error on any malformed input —
// unknown flag, missing or flag-shaped value, empty "--flag=" value, or
// a repeated flag.
inline bool TryParseBenchArgs(const std::vector<std::string>& argv,
                              const std::string& bench_name,
                              const std::vector<std::string>& extra_flags,
                              BenchArgs* out, std::string* error) {
  *out = BenchArgs{};
  const std::string default_path = "BENCH_" + bench_name + ".json";
  for (size_t i = 0; i < argv.size(); ++i) {
    const std::string& arg = argv[i];
    if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
      if (out->json) {
        *error = "duplicate --json";
        return false;
      }
      out->json = true;
      if (arg == "--json") {
        out->json_path = (i + 1 < argv.size() && argv[i + 1][0] != '-')
                             ? argv[++i]
                             : default_path;
      } else {
        out->json_path = arg.substr(7);
        if (out->json_path.empty()) out->json_path = default_path;
      }
      continue;
    }
    bool matched = false;
    for (const std::string& flag : extra_flags) {
      const std::string prefix = "--" + flag;
      const bool inline_value = arg.rfind(prefix + "=", 0) == 0;
      if (!inline_value && arg != prefix) continue;
      std::string value;
      if (inline_value) {
        value = arg.substr(prefix.size() + 1);
        if (value.empty()) {
          *error = "missing value for --" + flag;
          return false;
        }
      } else {
        // The next argv entry is the value; another flag there means the
        // value is missing, not that the value is "--whatever".
        if (i + 1 >= argv.size() || argv[i + 1].rfind("--", 0) == 0) {
          *error = "missing value for --" + flag;
          return false;
        }
        value = argv[++i];
      }
      if (out->Get(flag) != nullptr) {
        *error = "duplicate --" + flag;
        return false;
      }
      out->extras.emplace_back(flag, std::move(value));
      matched = true;
      break;
    }
    if (!matched) {
      *error = "unknown flag " + arg;
      return false;
    }
  }
  return true;
}

inline BenchArgs ParseBenchArgs(int argc, char** argv,
                                const std::string& bench_name,
                                const std::vector<std::string>& extra_flags =
                                    {}) {
  std::vector<std::string> args(argv + 1, argv + argc);
  BenchArgs out;
  std::string error;
  if (!TryParseBenchArgs(args, bench_name, extra_flags, &out, &error)) {
    std::string extras_text;
    for (const std::string& flag : extra_flags) {
      extras_text += " [--" + flag + "=V]";
    }
    std::fprintf(stderr, "error: %s\nusage: bench_%s [--json[=FILE]]%s\n",
                 error.c_str(), bench_name.c_str(), extras_text.c_str());
    std::exit(2);
  }
  return out;
}

// Writes the report and prints a one-line confirmation (or the error).
inline void FinishBenchJson(const BenchJsonReporter& reporter,
                            const BenchArgs& args) {
  if (!args.json) return;
  Status written = reporter.WriteFile(args.json_path);
  if (written.ok()) {
    std::printf("\nwrote %s\n", args.json_path.c_str());
  } else {
    std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace olapidx::bench

#endif  // OLAPIDX_BENCH_BENCH_JSON_H_
