// Experiment E6 — Section 6: varying the sparsity of the cube (the ratio
// of raw rows to the product of the dimension cardinalities). Sparsity
// controls how quickly subcube sizes saturate: dense cubes make coarse
// views cheap relative to the base cube, sparse cubes make nearly every
// view as large as the raw data (so indexes carry more of the benefit).

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "common/table_printer.h"
#include "data/synthetic.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

void Run(bench::BenchJsonReporter* rep) {
  std::printf("== E6: optimality ratio vs cube sparsity "
              "(Section 6, dim 4, cardinality 50) ==\n\n");
  TablePrinter t({"sparsity", "base rows", "base/full-domain", "1-greedy",
                  "2-greedy", "3-greedy", "inner", "two-step",
                  "index share (inner)"});
  for (double sparsity : {0.001, 0.005, 0.02, 0.1, 0.3, 0.8}) {
    SyntheticCube cube = UniformSyntheticCube(4, 50, sparsity);
    CubeLattice lattice(cube.schema);
    CubeGraphOptions opts;
    opts.raw_scan_penalty = 2.0;
    CubeGraph cg = BuildCubeGraph(cube.schema, cube.sizes,
                                  AllSliceQueries(lattice), opts);
    double total =
        cube.sizes.TotalViewSpace() + cube.sizes.TotalFatIndexSpace();
    bench::FamilyResult f =
        bench::RunFamily(cg.graph, 0.04 * total, /*run_three=*/true);

    // How much of inner-level's space goes to indexes at this sparsity.
    SelectionResult inner = InnerLevelGreedy(cg.graph, 0.04 * total);
    double index_space = 0.0;
    for (const StructureRef& s : inner.picks) {
      if (!s.is_view()) index_space += cg.graph.structure_space(s);
    }
    double share =
        inner.space_used > 0 ? index_space / inner.space_used : 0.0;

    t.AddRow({FormatFixed(sparsity, 3), FormatRowCount(cube.raw_rows),
              FormatFixed(cube.sizes[cg.graph.num_views() - 1] /
                              cube.schema.DomainSize(
                                  cube.schema.AllAttributes()),
                          3),
              bench::Ratio(f.one), bench::Ratio(f.two),
              bench::Ratio(f.three), bench::Ratio(f.inner),
              bench::Ratio(f.two_step), FormatPercent(share)});
    if (rep != nullptr) {
      std::string label = "sparsity_" + FormatFixed(sparsity, 3);
      bench::AddFamilyRows(*rep, label, f);
      rep->AddScalar(label + "/index_share_inner", share);
    }
  }
  t.Print();
  std::printf("\n(* = vs certified upper bound.) Shape check: greedy "
              "stays near the bound across three decades of\nsparsity, "
              "and the space share it gives to indexes swings from ~2/3 "
              "to zero as the cube densifies —\nthe a-priori split the "
              "two-step process needs does not exist.\n");
}

}  // namespace
}  // namespace olapidx

int main(int argc, char** argv) {
  olapidx::bench::BenchArgs args =
      olapidx::bench::ParseBenchArgs(argc, argv, "sec6_sparsity");
  olapidx::bench::BenchJsonReporter rep("sec6_sparsity");
  olapidx::Run(args.json ? &rep : nullptr);
  olapidx::bench::FinishBenchJson(rep, args);
  return 0;
}
