// Experiment E16 — throughput-grade serving (supports ROADMAP item 3):
// replay a sampled Zipf slice-query stream against a materialized sparse
// recommendation on a dim-8 cube, comparing {serial, batched} × {row,
// compressed-columnar} execution. Reports QPS, p50/p99 latency, and
// bytes scanned per configuration, the batched-over-serial speedup, and
// the columnar compression ratios (dim-8 catalog and the paper's TPC-D
// views). Batched results are self-checked bit-identical to serial
// execution over the same storage before any timing runs.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/format.h"
#include "common/table_printer.h"
#include "core/advisor.h"
#include "cost/analytical_model.h"
#include "data/fact_generator.h"
#include "engine/batch_executor.h"
#include "engine/physical_design.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

constexpr uint64_t kSeed = 42;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Mixed cardinalities so view sizes don't collapse into powers of one
// base (the bench_sparse_scale schema, at dim 8).
CubeSchema MakeSchema() {
  const uint64_t cards[] = {100, 200, 50, 80, 120, 60, 90, 40};
  std::vector<Dimension> dims;
  for (int i = 0; i < 8; ++i) {
    dims.push_back(Dimension{"d" + std::to_string(i), cards[i]});
  }
  return CubeSchema(dims);
}

// One replayed request: a workload query plus selection constants drawn
// from a fact row, so every slice is non-empty.
struct Request {
  SliceQuery query;
  std::vector<uint32_t> values;
  Request(SliceQuery q, std::vector<uint32_t> v)
      : query(std::move(q)), values(std::move(v)) {}
};

// Each query re-draws its selection constants from a small Zipf-weighted
// pool of slices: serving traffic replays popular dashboard slices, so
// the same (query, values) request recurs within a batch — the sharing
// the batched path coalesces.
constexpr size_t kValuePoolSize = 12;

std::vector<Request> SampleStream(const Workload& workload,
                                  const FactTable& fact, size_t stream_len,
                                  uint64_t seed) {
  // Cumulative frequency table for Zipf-weighted query draws.
  std::vector<double> cdf;
  double total = 0.0;
  for (const WeightedQuery& wq : workload.queries()) {
    total += wq.frequency;
    cdf.push_back(total);
  }
  Pcg32 rng(seed);
  // Per-query slice pools (value tuples from random fact rows) and the
  // Zipf CDF over pool ranks shared by every query.
  std::vector<std::vector<std::vector<uint32_t>>> pools(workload.size());
  for (size_t q = 0; q < workload.size(); ++q) {
    const SliceQuery& query = workload[q].query;
    for (size_t p = 0; p < kValuePoolSize; ++p) {
      size_t row = rng.NextBounded(static_cast<uint32_t>(fact.num_rows()));
      std::vector<uint32_t> values;
      for (int a : query.selection().ToVector()) {
        values.push_back(fact.dim(row, a));
      }
      pools[q].push_back(std::move(values));
    }
  }
  std::vector<double> pool_cdf;
  double pool_total = 0.0;
  for (size_t p = 0; p < kValuePoolSize; ++p) {
    pool_total += 1.0 / static_cast<double>(p + 1);  // Zipf(1) over ranks
    pool_cdf.push_back(pool_total);
  }
  std::vector<Request> stream;
  stream.reserve(stream_len);
  for (size_t i = 0; i < stream_len; ++i) {
    double draw = rng.NextDouble() * total;
    size_t pick = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), draw) - cdf.begin());
    if (pick >= workload.size()) pick = workload.size() - 1;
    double vdraw = rng.NextDouble() * pool_total;
    size_t vpick = static_cast<size_t>(
        std::lower_bound(pool_cdf.begin(), pool_cdf.end(), vdraw) -
        pool_cdf.begin());
    if (vpick >= kValuePoolSize) vpick = kValuePoolSize - 1;
    stream.emplace_back(workload[pick].query, pools[pick][vpick]);
  }
  return stream;
}

struct RunResult {
  std::string label;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t rows_scanned = 0;   // physical rows decoded
  uint64_t bytes_scanned = 0;  // physical bytes read
};

double Percentile(std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(samples.size()));
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

RunResult RunSerial(const Catalog& catalog, const std::vector<Request>& stream,
                    bool columnar) {
  Executor exec(&catalog);
  exec.set_use_column_store(columnar);
  RunResult out;
  out.label = std::string("serial/") + (columnar ? "columnar" : "row");
  std::vector<double> latencies_ms;
  latencies_ms.reserve(stream.size());
  ExecutionStats stats;
  double start = NowSeconds();
  for (const Request& req : stream) {
    double t0 = NowSeconds();
    GroupedResult r = exec.Execute(req.query, req.values, &stats);
    latencies_ms.push_back((NowSeconds() - t0) * 1e3);
    out.rows_scanned += stats.rows_processed;
    out.bytes_scanned += stats.bytes_scanned;
    // Keep the result alive past the timestamp so the compiler can't
    // sink the execution.
    if (r.num_rows() == SIZE_MAX) std::printf("impossible\n");
  }
  double elapsed = NowSeconds() - start;
  out.qps = static_cast<double>(stream.size()) / std::max(1e-9, elapsed);
  out.p50_ms = Percentile(latencies_ms, 0.50);
  out.p99_ms = Percentile(latencies_ms, 0.99);
  return out;
}

RunResult RunBatched(const Catalog& catalog,
                     const std::vector<Request>& stream, size_t batch_size,
                     size_t threads, bool columnar) {
  BatchExecutor exec(&catalog, threads);
  exec.set_use_column_store(columnar);
  RunResult out;
  out.label = std::string("batched/") + (columnar ? "columnar" : "row");
  // A query's latency is its batch's wall time: batching trades a little
  // latency for throughput, and the percentiles should show that price.
  std::vector<double> latencies_ms;
  latencies_ms.reserve(stream.size());
  double start = NowSeconds();
  for (size_t begin = 0; begin < stream.size(); begin += batch_size) {
    size_t end = std::min(stream.size(), begin + batch_size);
    std::vector<SliceQuery> queries;
    std::vector<std::vector<uint32_t>> values;
    queries.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      queries.push_back(stream[i].query);
      values.push_back(stream[i].values);
    }
    BatchStats bstats;
    double t0 = NowSeconds();
    std::vector<GroupedResult> results =
        exec.ExecuteBatch(queries, values, nullptr, &bstats);
    double batch_ms = (NowSeconds() - t0) * 1e3;
    for (size_t i = begin; i < end; ++i) latencies_ms.push_back(batch_ms);
    out.rows_scanned += bstats.rows_decoded;
    out.bytes_scanned += bstats.bytes_scanned;
    if (results.size() == SIZE_MAX) std::printf("impossible\n");
  }
  double elapsed = NowSeconds() - start;
  out.qps = static_cast<double>(stream.size()) / std::max(1e-9, elapsed);
  out.p50_ms = Percentile(latencies_ms, 0.50);
  out.p99_ms = Percentile(latencies_ms, 0.99);
  return out;
}

bool BitEq(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Batched results over a given storage must equal serial results over the
// same storage bitwise; across storages (different scan order) keys and
// counts are exact and float aggregates agree to rounding.
void SelfCheck(const Catalog& catalog, const std::vector<Request>& stream,
               size_t batch_size, size_t threads) {
  size_t n = std::min(stream.size(), batch_size);
  std::vector<SliceQuery> queries;
  std::vector<std::vector<uint32_t>> values;
  for (size_t i = 0; i < n; ++i) {
    queries.push_back(stream[i].query);
    values.push_back(stream[i].values);
  }
  for (bool columnar : {false, true}) {
    Executor serial(&catalog);
    serial.set_use_column_store(columnar);
    BatchExecutor batched(&catalog, threads);
    batched.set_use_column_store(columnar);
    std::vector<GroupedResult> batch_results =
        batched.ExecuteBatch(queries, values);
    for (size_t i = 0; i < n; ++i) {
      GroupedResult expected = serial.Execute(queries[i], values[i]);
      OLAPIDX_CHECK(batch_results[i].keys == expected.keys);
      for (size_t r = 0; r < expected.num_rows(); ++r) {
        OLAPIDX_CHECK(BitEq(batch_results[i].sums[r], expected.sums[r]));
      }
    }
  }
  // Cross-storage: row vs columnar serial.
  Executor row_exec(&catalog);
  row_exec.set_use_column_store(false);
  Executor col_exec(&catalog);
  for (size_t i = 0; i < n; ++i) {
    GroupedResult row = row_exec.Execute(queries[i], values[i]);
    GroupedResult col = col_exec.Execute(queries[i], values[i]);
    OLAPIDX_CHECK(row.keys == col.keys);
    for (size_t r = 0; r < row.num_rows(); ++r) {
      OLAPIDX_CHECK(row.aggregates[r].count == col.aggregates[r].count);
      double scale = std::max(1.0, std::abs(row.sums[r]));
      OLAPIDX_CHECK(std::abs(row.sums[r] - col.sums[r]) <= 1e-9 * scale);
    }
  }
}

// Compression ratio of every materialized view in `catalog` (compressed /
// row-store bytes), assuming stores are attached.
double CompressionRatio(const Catalog& catalog, uint64_t* compressed_out,
                        uint64_t* row_out) {
  uint64_t compressed = 0;
  uint64_t row = 0;
  for (AttributeSet attrs : catalog.materialized_views()) {
    const ColumnStore* store = catalog.column_store(attrs);
    OLAPIDX_CHECK(store != nullptr);
    compressed += store->CompressedBytes();
    row += ColumnStore::RowStoreBytes(catalog.view(attrs));
  }
  if (compressed_out != nullptr) *compressed_out = compressed;
  if (row_out != nullptr) *row_out = row;
  return static_cast<double>(compressed) /
         static_cast<double>(std::max<uint64_t>(1, row));
}

// The paper's TPC-D lattice, compressed — the acceptance target for the
// Kaser & Lemire reordering (also pinned by column_store_test).
double TpcdCompressionRatio() {
  FactTable fact = GenerateTpcdScaledFacts(TpcdScaledConfig{});
  Catalog catalog(&fact);
  for (uint32_t mask = 1; mask < 8; ++mask) {
    catalog.MaterializeView(AttributeSet::FromMask(mask));
  }
  catalog.CompressAllViews();
  return CompressionRatio(catalog, nullptr, nullptr);
}

void Run(bench::BenchJsonReporter* rep, size_t rows, size_t num_queries,
         size_t stream_len, size_t batch_size, size_t threads, double skew,
         double budget_factor) {
  std::printf("== E16: serving throughput — {serial, batched} x {row, "
              "columnar} ==\n\n");
  CubeSchema schema = MakeSchema();
  FactTable fact = GenerateZipfFacts(schema, rows, skew, kSeed);
  CubeLattice lattice(schema);
  Workload workload =
      SampledZipfSliceQueries(lattice, skew, num_queries, kSeed);

  // A sparse recommendation under a paper-style space budget, applied to
  // the engine catalog.
  ViewSizes sizes = AnalyticalViewSizes(schema, static_cast<double>(rows));
  StatusOr<Advisor> advisor =
      Advisor::CreateSparse(schema, sizes, workload);
  OLAPIDX_CHECK(advisor.ok());
  AdvisorConfig config;
  config.algorithm = Algorithm::kInnerLevel;
  config.space_budget = budget_factor * static_cast<double>(rows);
  Recommendation rec = advisor->Recommend(config);
  OLAPIDX_CHECK(rec.status.ok());
  Catalog catalog(&fact);
  std::vector<PhysicalDesignItem> items;
  for (const RecommendedStructure& s : rec.structures) {
    items.push_back(PhysicalDesignItem{s.view, s.index});
  }
  StatusOr<PhysicalDesignStats> applied =
      MaterializePhysicalDesign(catalog, items);
  OLAPIDX_CHECK(applied.ok());
  size_t compressed_views = catalog.CompressAllViews();

  std::printf(
      "dim-8 Zipf(%.2f) cube: %zu rows, %zu distinct queries, stream of "
      "%zu\nrecommendation: %zu structure(s) (%zu views compressed), "
      "batch=%zu, threads=%zu\n\n",
      skew, fact.num_rows(), workload.size(), stream_len,
      rec.structures.size(), compressed_views, batch_size, threads);

  std::vector<Request> stream =
      SampleStream(workload, fact, stream_len, kSeed + 1);
  SelfCheck(catalog, stream, batch_size, threads);

  std::vector<RunResult> results;
  results.push_back(RunSerial(catalog, stream, /*columnar=*/false));
  results.push_back(RunSerial(catalog, stream, /*columnar=*/true));
  results.push_back(
      RunBatched(catalog, stream, batch_size, threads, /*columnar=*/false));
  results.push_back(
      RunBatched(catalog, stream, batch_size, threads, /*columnar=*/true));

  TablePrinter t({"config", "QPS", "p50 ms", "p99 ms", "Mrows scanned",
                  "MiB scanned"});
  for (const RunResult& r : results) {
    t.AddRow({r.label, FormatFixed(r.qps, 0), FormatFixed(r.p50_ms, 3),
              FormatFixed(r.p99_ms, 3),
              FormatFixed(static_cast<double>(r.rows_scanned) / 1e6, 2),
              FormatFixed(static_cast<double>(r.bytes_scanned) /
                              (1024.0 * 1024.0),
                          1)});
    if (rep != nullptr) {
      Json row = Json::Object();
      row.Set("label", Json::Str(r.label));
      row.Set("qps", Json::Number(r.qps));
      row.Set("p50_ms", Json::Number(r.p50_ms));
      row.Set("p99_ms", Json::Number(r.p99_ms));
      row.Set("rows_scanned", Json::Number(static_cast<double>(
                                  r.rows_scanned)));
      row.Set("bytes_scanned", Json::Number(static_cast<double>(
                                   r.bytes_scanned)));
      row.Set("threads",
              Json::Number(r.label.rfind("batched", 0) == 0
                               ? static_cast<double>(threads)
                               : 1.0));
      rep->AddRun(std::move(row));
    }
  }
  t.Print();

  double speedup_row = results[2].qps / std::max(1e-9, results[0].qps);
  double speedup_columnar =
      results[3].qps / std::max(1e-9, results[1].qps);
  uint64_t compressed_bytes = 0;
  uint64_t row_bytes = 0;
  double ratio = CompressionRatio(catalog, &compressed_bytes, &row_bytes);
  double tpcd_ratio = TpcdCompressionRatio();
  std::printf(
      "\nbatched-over-serial speedup: %.2fx (row), %.2fx (columnar)\n"
      "columnar compression: %.3fx of row storage on the dim-8 design "
      "(%.1f MiB -> %.1f MiB), %.3fx on the TPC-D views\n",
      speedup_row, speedup_columnar, ratio,
      static_cast<double>(row_bytes) / (1024.0 * 1024.0),
      static_cast<double>(compressed_bytes) / (1024.0 * 1024.0),
      tpcd_ratio);
  if (rep != nullptr) {
    rep->AddScalar("speedup_batched_over_serial_row", speedup_row);
    rep->AddScalar("speedup_batched_over_serial_columnar",
                   speedup_columnar);
    rep->AddScalar("compression_ratio", ratio);
    rep->AddScalar("tpcd_compression_ratio", tpcd_ratio);
    rep->AddScalar("threads", static_cast<double>(threads));
    rep->AddScalar("batch_size", static_cast<double>(batch_size));
  }
}

}  // namespace
}  // namespace olapidx

int main(int argc, char** argv) {
  olapidx::bench::BenchArgs args = olapidx::bench::ParseBenchArgs(
      argc, argv, "serving",
      {"rows", "queries", "stream", "batch", "threads", "skew", "budget"});
  olapidx::bench::BenchJsonReporter rep("serving");
  olapidx::Run(args.json ? &rep : nullptr,
               static_cast<size_t>(args.GetInt("rows", 40'000)),
               static_cast<size_t>(args.GetInt("queries", 64)),
               static_cast<size_t>(args.GetInt("stream", 4'096)),
               static_cast<size_t>(args.GetInt("batch", 1'024)),
               static_cast<size_t>(args.GetInt("threads", 8)),
               args.GetDouble("skew", 1.0), args.GetDouble("budget", 4.0));
  olapidx::bench::FinishBenchJson(rep, args);
  return 0;
}
