// Experiment E2 — Section 5, Examples 5.1 & 5.2 (Figure 2).
//
// The published figure is not machine-readable and some of its intermediate
// numbers are mutually inconsistent in the available text, so we run the
// calibrated reconstruction from data/example_graphs.h: a unit-space
// query-view graph exhibiting the same phenomena. The paper's own numbers
// are printed alongside for reference (1-greedy 46, 2-greedy 194, 3-greedy
// 226, optimal 300 at S = 7; inner-level 330 vs optimal 400 at 9 units).

#include <cstdio>

#include "bench_fig2_lib.h"
#include "bench_json.h"
#include "common/format.h"
#include "common/table_printer.h"
#include "core/inner_greedy.h"
#include "core/optimal.h"
#include "core/r_greedy.h"
#include "data/example_graphs.h"

namespace olapidx {
namespace {

void Run() {
  QueryViewGraph g = Figure2Instance();
  std::printf("== E2: Example 5.1 / 5.2 (Figure 2, reconstructed) ==\n\n");
  std::printf("Instance: %u views, %u structures, %u queries, unit "
              "spaces, S = %.0f\n\n",
              g.num_views(), g.num_structures(), g.num_queries(),
              kFigure2Budget);

  SelectionResult one = RGreedy(g, kFigure2Budget, RGreedyOptions{.r = 1});
  SelectionResult two = RGreedy(g, kFigure2Budget, RGreedyOptions{.r = 2});
  SelectionResult three = RGreedy(g, kFigure2Budget, RGreedyOptions{.r = 3});
  SelectionResult inner = InnerLevelGreedy(g, kFigure2Budget);
  SelectionResult opt7 = BranchAndBoundOptimal(g, kFigure2Budget);
  SelectionResult opt_inner = BranchAndBoundOptimal(g, inner.space_used);

  TablePrinter t({"algorithm", "benefit", "space", "vs optimal",
                  "paper (its instance)"});
  auto row = [&](const char* name, const SelectionResult& r,
                 const SelectionResult& opt, const char* paper) {
    t.AddRow({name, FormatFixed(r.Benefit(), 0),
              FormatFixed(r.space_used, 0),
              FormatPercent(r.Benefit() / opt.Benefit()), paper});
  };
  row("1-greedy", one, opt7, "46 / 300 = 15%");
  row("2-greedy", two, opt7, "194 / 300 = 65%");
  row("3-greedy", three, opt7, "226 / 300 = 75%");
  row("optimal (S=7)", opt7, opt7, "300");
  row("inner-level (uses 9)", inner, opt_inner, "330 / 400 = 83%");
  row("optimal (S=9)", opt_inner, opt_inner, "400");
  t.Print();

  std::printf("\nSelections:\n");
  std::printf("  1-greedy:    %s\n", one.PicksToString(g).c_str());
  std::printf("  2-greedy:    %s\n", two.PicksToString(g).c_str());
  std::printf("  3-greedy:    %s\n", three.PicksToString(g).c_str());
  std::printf("  inner-level: %s\n", inner.PicksToString(g).c_str());
  std::printf("  optimal(7):  %s\n", opt7.PicksToString(g).c_str());

  std::printf(
      "\n1-greedy can be arbitrarily bad (trap family, budget 2):\n");
  TablePrinter trap({"trap benefit", "1-greedy", "2-greedy", "optimal",
                     "1-greedy ratio"});
  for (double tb : {10.0, 100.0, 1000.0, 100000.0}) {
    QueryViewGraph tg = OneGreedyTrapInstance(tb, 1.0);
    SelectionResult g1 = RGreedy(tg, 2.0, RGreedyOptions{.r = 1});
    SelectionResult g2 = RGreedy(tg, 2.0, RGreedyOptions{.r = 2});
    SelectionResult go = BranchAndBoundOptimal(tg, 2.0);
    trap.AddRow({FormatFixed(tb, 0), FormatFixed(g1.Benefit(), 0),
                 FormatFixed(g2.Benefit(), 0), FormatFixed(go.Benefit(), 0),
                 FormatPercent(g1.Benefit() / go.Benefit(), 3)});
  }
  trap.Print();
}

}  // namespace
}  // namespace olapidx

int main(int argc, char** argv) {
  using olapidx::bench::BenchArgs;
  using olapidx::bench::BenchJsonReporter;
  BenchArgs args =
      olapidx::bench::ParseBenchArgs(argc, argv, "fig2_example");
  olapidx::Run();
  if (args.json) {
    // The JSON report reruns the selections via the shared lib so the
    // golden-file test covers exactly what this binary writes.
    BenchJsonReporter rep("fig2_example");
    olapidx::bench::FillFig2Report(rep);
    olapidx::bench::FinishBenchJson(rep, args);
  }
  return 0;
}
