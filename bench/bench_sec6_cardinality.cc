// Experiment E5 — Section 6: varying the cardinality of each dimension
// (uniform and mixed), dimension fixed at 4. The paper varied per-dimension
// cardinalities among its experiment knobs; the finding to reproduce is
// that the greedy family stays near-optimal across the sweep.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "common/table_printer.h"
#include "data/synthetic.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

bench::FamilyResult RunCube(const SyntheticCube& cube) {
  CubeLattice lattice(cube.schema);
  CubeGraphOptions opts;
  opts.raw_scan_penalty = 2.0;
  CubeGraph cg = BuildCubeGraph(cube.schema, cube.sizes,
                                AllSliceQueries(lattice), opts);
  double total =
      cube.sizes.TotalViewSpace() + cube.sizes.TotalFatIndexSpace();
  // 4% of everything: tight enough that choices matter.
  return bench::RunFamily(cg.graph, 0.04 * total, /*run_three=*/true);
}

void Run(bench::BenchJsonReporter* rep) {
  std::printf("== E5: optimality ratio vs dimension cardinality "
              "(Section 6, dim 4, sparsity 0.02) ==\n\n");
  TablePrinter t({"cardinalities", "base rows", "1-greedy", "2-greedy",
                  "3-greedy", "inner", "two-step"});
  auto add = [&](const std::string& label, const SyntheticCube& cube) {
    bench::FamilyResult f = RunCube(cube);
    t.AddRow({label, FormatRowCount(cube.raw_rows), bench::Ratio(f.one),
              bench::Ratio(f.two), bench::Ratio(f.three),
              bench::Ratio(f.inner), bench::Ratio(f.two_step)});
    if (rep != nullptr) bench::AddFamilyRows(*rep, label, f);
  };
  for (uint64_t card : {10u, 30u, 100u, 300u, 1000u}) {
    add("uniform " + std::to_string(card),
        UniformSyntheticCube(4, card, 0.02));
  }
  add("mixed 10/100/1000/10000",
      SyntheticCubeWithCardinalities({10, 100, 1000, 10000}, 0.02));
  add("mixed 5000/5000/10/10",
      SyntheticCubeWithCardinalities({5000, 5000, 10, 10}, 0.02));
  for (uint64_t seed : {1u, 2u, 3u}) {
    add("log-uniform [10,1000] seed " + std::to_string(seed),
        RandomSyntheticCube(4, 10, 1000, 0.02, seed));
  }
  t.Print();
  std::printf("\n(* = vs certified upper bound — the true optimality "
              "ratio is at least the printed value.)\nShape check: the "
              "greedy family stays within 10-20%% of the bound across two "
              "decades of cardinality while the\nfixed-split two-step drops "
              "to half (the Section 6 / Section 2 findings).\n");
}

}  // namespace
}  // namespace olapidx

int main(int argc, char** argv) {
  olapidx::bench::BenchArgs args =
      olapidx::bench::ParseBenchArgs(argc, argv, "sec6_cardinality");
  olapidx::bench::BenchJsonReporter rep("sec6_cardinality");
  olapidx::Run(args.json ? &rep : nullptr);
  olapidx::bench::FinishBenchJson(rep, args);
  return 0;
}
