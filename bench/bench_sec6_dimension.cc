// Experiment E4 — Section 6: r-greedy (r = 1, 2, 3) and inner-level greedy
// on cubes of dimension up to 6, compared against the optimum. The paper
// reports that "for dimensions up to 6 ... the algorithms in the r-greedy
// family produced solutions that were extremely close to the optimal".
//
// We compute exact optima (branch-and-bound) for dims 2-3 and a certified
// upper bound on the optimum for dims 4-6, so every ratio printed is a
// *lower* bound on the true optimality ratio.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "common/table_printer.h"
#include "data/synthetic.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

void Run(bench::BenchJsonReporter* rep) {
  std::printf("== E4: optimality ratio vs cube dimension (Section 6) ==\n");
  std::printf("Uniform cardinality 100, sparsity 0.05, all 3^n slice "
              "queries, budget swept as a fraction of the total\n"
              "view+index space, raw-scan penalty 2. Each ratio compares "
              "against the optimum for the space that run used.\n\n");

  TablePrinter t({"dim", "budget", "structures", "queries", "1-greedy",
                  "2-greedy", "3-greedy", "inner", "two-step"});
  for (int n = 2; n <= 6; ++n) {
    SyntheticCube cube = UniformSyntheticCube(n, 100, 0.05);
    CubeLattice lattice(cube.schema);
    CubeGraphOptions opts;
    opts.raw_scan_penalty = 2.0;
    CubeGraph cg = BuildCubeGraph(cube.schema, cube.sizes,
                                  AllSliceQueries(lattice), opts);
    double total = cube.sizes.TotalViewSpace() +
                   cube.sizes.TotalFatIndexSpace();
    // At n = 6 the base view alone has C(720,2) ≈ 2.6e5 index pairs per
    // stage; cap the per-view subset enumeration there (marked ^).
    size_t three_cap = n <= 5 ? SIZE_MAX : 2'000;
    for (double frac : {0.02, 0.08, 0.25}) {
      bench::FamilyResult f = bench::RunFamily(
          cg.graph, frac * total, /*run_three=*/true, 40, 20'000'000,
          three_cap);
      t.AddRow({std::to_string(n), FormatPercent(frac, 0),
                std::to_string(cg.graph.num_structures()),
                std::to_string(cg.graph.num_queries()),
                bench::Ratio(f.one), bench::Ratio(f.two),
                bench::Ratio(f.three) + (n >= 6 ? "^" : ""),
                bench::Ratio(f.inner), bench::Ratio(f.two_step)});
      if (rep != nullptr) {
        bench::AddFamilyRows(*rep,
                             "dim" + std::to_string(n) + "_budget" +
                                 FormatPercent(frac, 0),
                             f);
      }
    }
  }
  t.Print();
  std::printf("\n(* = ratio vs a certified upper bound rather than the "
              "exact optimum — a lower bound on the true ratio.\n ^ = "
              "r = 3 subset enumeration capped at 2000 per view per "
              "stage at dimension 6.)\n");
  std::printf(
      "\nPaper: near-optimal for all r on dims <= 6; note 1-greedy's "
      "guarantee is 0 yet it does well on\nnon-adversarial cubes — "
      "exactly the Section 6 observation.\n");
}

}  // namespace
}  // namespace olapidx

int main(int argc, char** argv) {
  olapidx::bench::BenchArgs args =
      olapidx::bench::ParseBenchArgs(argc, argv, "sec6_dimension");
  olapidx::bench::BenchJsonReporter rep("sec6_dimension");
  olapidx::Run(args.json ? &rep : nullptr);
  olapidx::bench::FinishBenchJson(rep, args);
  return 0;
}
