// Experiments E14/E17 — breaking the n ≤ 8 wall. The dense cube graph
// expands a full cost column per (view, query) and enumerates all m! fat
// indexes per view: at dimension 8 the cost table alone is ~2 GB, and
// 12–20 dimensions are out of reach entirely. This bench drives the
// workload-pruned sparse path (core/sparse_cube_graph.h, streaming edge
// sink on by default) with a sampled Zipf workload across dims
// 10/12/16/20 — build wall time, peak build memory (graph_build.peak_bytes
// model: edge-run sink + finalize scratch + cost table), pruning telemetry
// (including views dropped by the --max-views cap), and a beam-limited
// inner-level greedy selection with its a-posteriori guarantee — and
// closes with a dense-vs-sparse peak-memory comparison at dimension 8
// (the last dim both paths can build), reported as the
// "peak_reduction_dim8" scalar. --peak-budget-mib=M turns the bench into
// an assertion: exit 1 if any sparse build's peak exceeds M MiB (the CI
// bench-smoke memory-regression gate).
//
//   bench_sparse_scale [--json[=FILE]] [--max-dim=20] [--queries=600]
//                      [--skew=1.1] [--beam=64] [--peak-budget-mib=M]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/check.h"
#include "core/cube_graph.h"
#include "core/inner_greedy.h"
#include "core/sparse_cube_graph.h"
#include "cost/analytical_model.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

constexpr uint64_t kSeed = 42;

double MiB(uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

// A mixed-cardinality schema; the cycle keeps view sizes from collapsing
// into powers of one base.
CubeSchema MakeSchema(int n) {
  const uint64_t cards[] = {100, 200, 50, 80, 120, 60, 90, 40};
  std::vector<Dimension> dims;
  dims.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::string name = "d";
    name += std::to_string(i);
    dims.push_back(Dimension{std::move(name), cards[i % 8]});
  }
  return CubeSchema(dims);
}

// Returns the build's peak bytes so RunBench can enforce --peak-budget-mib.
uint64_t RunSparseDim(bench::BenchJsonReporter& rep, int n,
                      size_t num_queries, double skew, size_t beam) {
  CubeSchema schema = MakeSchema(n);
  const double raw_rows = 20e6;
  ViewSizes sizes = AnalyticalViewSizes(schema, raw_rows);
  CubeLattice lattice(schema);
  Workload workload =
      SampledZipfSliceQueries(lattice, skew, num_queries, kSeed);

  SparseCubeGraphOptions sparse_options;
  // A raw-scan penalty (the advisor_cli default) makes the base-view pick
  // improve every query, so later stages carry a large dirty set — the
  // regime the beam is for.
  sparse_options.raw_scan_penalty = 2.0;
  auto start = std::chrono::steady_clock::now();
  StatusOr<SparseCubeGraph> built =
      TryBuildSparseCubeGraph(schema, sizes, workload, sparse_options);
  OLAPIDX_CHECK(built.ok());
  const double build_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  const SparseCubeGraph& sparse = *built;

  InnerGreedyOptions options;
  options.beam_width = beam;
  SelectionResult result =
      InnerLevelGreedy(sparse.cube.graph, 4.0 * raw_rows, options);
  OLAPIDX_CHECK(result.status.ok());

  const std::string label = "dim" + std::to_string(n) + "/sparse_beam" +
                            std::to_string(beam);
  rep.AddSelectionRun(
      label, result,
      {{"graph_build_ms", build_ms},
       {"peak_bytes", static_cast<double>(sparse.stats.build.peak_bytes)},
       {"retained_queries",
        static_cast<double>(sparse.stats.retained_queries)},
       {"retained_views", static_cast<double>(sparse.stats.retained_views)},
       {"views_dropped", static_cast<double>(sparse.stats.views_dropped)},
       {"candidate_indexes",
        static_cast<double>(sparse.stats.candidate_indexes)},
       {"beam_skipped", static_cast<double>(result.beam_skipped)},
       {"beam_stage_factor", result.beam_stage_factor}});

  std::printf("%-4d %8zu %8zu %8llu %10llu %12.1f %12.1f %7llu %8.4f\n", n,
              sparse.stats.retained_queries, sparse.stats.retained_views,
              static_cast<unsigned long long>(sparse.stats.views_dropped),
              static_cast<unsigned long long>(
                  sparse.cube.graph.num_structures()),
              build_ms, MiB(sparse.stats.build.peak_bytes),
              static_cast<unsigned long long>(result.beam_skipped),
              result.beam_stage_factor);
  return sparse.stats.build.peak_bytes;
}

// Dense vs sparse peak build memory at dimension 8, full 3^8 workload.
// The dense peak comes from the graph_build.peak_bytes gauge when metrics
// are compiled in; the cost-table size is the metrics-off fallback (it
// understates the dense peak, so the reported reduction is conservative).
double PeakReductionDim8(bench::BenchJsonReporter& rep) {
  CubeSchema schema = MakeSchema(8);
  ViewSizes sizes = AnalyticalViewSizes(schema, 20e6);
  CubeLattice lattice(schema);
  Workload workload = AllSliceQueries(lattice);

  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  auto start = std::chrono::steady_clock::now();
  StatusOr<CubeGraph> dense =
      TryBuildCubeGraph(schema, sizes, workload, CubeGraphOptions{});
  const double dense_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  OLAPIDX_CHECK(dense.ok());
  uint64_t dense_peak = dense->graph.CostTableBytes();
  for (const auto& [name, value] :
       MetricsRegistry::Global().Snapshot().gauges) {
    if (name == "graph_build.peak_bytes" && value > 0) {
      dense_peak = std::max(dense_peak, static_cast<uint64_t>(value));
    }
  }
  (void)before;

  start = std::chrono::steady_clock::now();
  StatusOr<SparseCubeGraph> sparse =
      TryBuildSparseCubeGraph(schema, sizes, workload, {});
  const double sparse_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
  OLAPIDX_CHECK(sparse.ok());
  const uint64_t sparse_peak = sparse->stats.build.peak_bytes;
  OLAPIDX_CHECK(sparse_peak > 0);
  const double reduction =
      static_cast<double>(dense_peak) / static_cast<double>(sparse_peak);

  Json row = Json::Object();
  row.Set("label", Json::Str("dim8/dense_vs_sparse"));
  row.Set("dense_peak_bytes", Json::Number(static_cast<double>(dense_peak)));
  row.Set("sparse_peak_bytes",
          Json::Number(static_cast<double>(sparse_peak)));
  row.Set("dense_build_ms", Json::Number(dense_ms));
  row.Set("sparse_build_ms", Json::Number(sparse_ms));
  rep.AddRun(std::move(row));
  rep.AddScalar("peak_reduction_dim8", reduction);

  std::printf("\ndim 8, full 3^8 workload: dense peak %.1f MiB, sparse "
              "peak %.1f MiB -> %.1fx reduction\n",
              MiB(dense_peak), MiB(sparse_peak), reduction);
  return reduction;
}

// Returns the largest sparse-build peak across the dims run, in bytes.
uint64_t RunBench(bench::BenchJsonReporter& rep, int max_dim,
                  size_t queries, double skew, size_t beam) {
  std::printf("%-4s %8s %8s %8s %10s %12s %12s %7s %8s\n", "dim",
              "queries", "views", "dropped", "structures", "build_ms",
              "peak_MiB", "skipped", "factor");
  uint64_t max_peak = 0;
  for (int n : {10, 12, 16, 20}) {
    if (n > max_dim) break;
    max_peak = std::max(max_peak, RunSparseDim(rep, n, queries, skew, beam));
  }
  PeakReductionDim8(rep);
  return max_peak;
}

}  // namespace
}  // namespace olapidx

int main(int argc, char** argv) {
  olapidx::bench::BenchArgs args = olapidx::bench::ParseBenchArgs(
      argc, argv, "sparse_scale",
      {"max-dim", "queries", "skew", "beam", "peak-budget-mib"});
  const int max_dim = static_cast<int>(args.GetInt("max-dim", 20));
  const long queries = args.GetInt("queries", 600);
  const double skew = args.GetDouble("skew", 1.1);
  const long beam = args.GetInt("beam", 64);
  const double peak_budget_mib = args.GetDouble("peak-budget-mib", 0.0);
  if (max_dim < 8 || max_dim > 20 || queries <= 0 || beam < 0 ||
      skew < 0.0 || peak_budget_mib < 0.0) {
    std::fprintf(stderr,
                 "error: bad --max-dim/--queries/--skew/--beam/"
                 "--peak-budget-mib\n");
    return 2;
  }
  olapidx::bench::BenchJsonReporter rep("sparse_scale");
  const uint64_t max_peak =
      olapidx::RunBench(rep, max_dim, static_cast<size_t>(queries), skew,
                        static_cast<size_t>(beam));
  olapidx::bench::FinishBenchJson(rep, args);
  if (peak_budget_mib > 0.0 &&
      static_cast<double>(max_peak) > peak_budget_mib * 1024.0 * 1024.0) {
    std::fprintf(stderr,
                 "error: sparse build peak %.1f MiB exceeds "
                 "--peak-budget-mib %.1f\n",
                 static_cast<double>(max_peak) / (1024.0 * 1024.0),
                 peak_budget_mib);
    return 1;
  }
  return 0;
}
