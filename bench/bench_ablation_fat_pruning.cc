// Experiment E9 — Section 4.2.2's pruning claim: because any index on V
// costs |V| space and a fat index dominates every proper prefix of itself
// on every query, restricting attention to fat indexes loses nothing while
// shrinking the candidate set by roughly a factor of e - 1 ≈ 1.72.
//
// This ablation builds the cube graph both ways and shows (a) identical
// achieved benefit, (b) the structure-count reduction, (c) the work saved.

#include <cstdio>
#include <string>

#include "bench_json.h"
#include "common/format.h"
#include "common/table_printer.h"
#include "core/cube_graph.h"
#include "core/inner_greedy.h"
#include "core/r_greedy.h"
#include "data/synthetic.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

void Run(bench::BenchJsonReporter* rep) {
  std::printf("== E9: fat-index pruning ablation (Section 4.2.2) ==\n\n");
  TablePrinter t({"dim", "structures fat", "structures all", "ratio",
                  "benefit fat", "benefit all", "evals fat", "evals all"});
  for (int n = 2; n <= 5; ++n) {
    SyntheticCube cube = UniformSyntheticCube(n, 50, 0.05);
    CubeLattice lattice(cube.schema);
    Workload w = AllSliceQueries(lattice);
    CubeGraphOptions fat_opts;
    fat_opts.raw_scan_penalty = 2.0;
    CubeGraphOptions all_opts = fat_opts;
    all_opts.fat_indexes_only = false;
    CubeGraph fat = BuildCubeGraph(cube.schema, cube.sizes, w, fat_opts);
    CubeGraph all = BuildCubeGraph(cube.schema, cube.sizes, w, all_opts);

    double budget = 0.25 * (cube.sizes.TotalViewSpace() +
                            cube.sizes.TotalFatIndexSpace());
    SelectionResult rf = InnerLevelGreedy(fat.graph, budget);
    SelectionResult ra = InnerLevelGreedy(all.graph, budget);

    t.AddRow({std::to_string(n),
              std::to_string(fat.graph.num_structures()),
              std::to_string(all.graph.num_structures()),
              FormatFixed(static_cast<double>(all.graph.num_structures()) /
                              static_cast<double>(
                                  fat.graph.num_structures()),
                          2),
              FormatRowCount(rf.Benefit()), FormatRowCount(ra.Benefit()),
              std::to_string(rf.candidates_evaluated),
              std::to_string(ra.candidates_evaluated)});
    if (rep != nullptr) {
      Json row = Json::Object();
      row.Set("label", Json::Str("dim" + std::to_string(n)));
      row.Set("structures_fat",
              Json::Number(static_cast<double>(fat.graph.num_structures())));
      row.Set("structures_all",
              Json::Number(static_cast<double>(all.graph.num_structures())));
      row.Set("benefit_fat", Json::Number(rf.Benefit()));
      row.Set("benefit_all", Json::Number(ra.Benefit()));
      row.Set("evals_fat",
              Json::Number(static_cast<double>(rf.candidates_evaluated)));
      row.Set("evals_all",
              Json::Number(static_cast<double>(ra.candidates_evaluated)));
      rep->AddRun(std::move(row));
    }
  }
  t.Print();
  std::printf(
      "\nShape check: identical benefit with and without non-fat indexes, "
      "at proportionally more work.\nPer Section 4.2.2, a view with m "
      "attributes has ~e*m! ordered-subset indexes of which the ~(e-1)*m!\n"
      "non-fat ones are dominated, so the full universe approaches e = "
      "2.72x the fat one as m grows\n(measured per-lattice ratios above "
      "climb toward it).\n");
}

}  // namespace
}  // namespace olapidx

int main(int argc, char** argv) {
  olapidx::bench::BenchArgs args =
      olapidx::bench::ParseBenchArgs(argc, argv, "ablation_fat_pruning");
  olapidx::bench::BenchJsonReporter rep("ablation_fat_pruning");
  olapidx::Run(args.json ? &rep : nullptr);
  olapidx::bench::FinishBenchJson(rep, args);
  return 0;
}
