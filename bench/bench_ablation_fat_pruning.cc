// Experiment E9 — Section 4.2.2's pruning claim: because any index on V
// costs |V| space and a fat index dominates every proper prefix of itself
// on every query, restricting attention to fat indexes loses nothing while
// shrinking the candidate set by roughly a factor of e - 1 ≈ 1.72.
//
// This ablation builds the cube graph both ways and shows (a) identical
// achieved benefit, (b) the structure-count reduction, (c) the work saved.

#include <cstdio>
#include <string>

#include "common/format.h"
#include "common/table_printer.h"
#include "core/cube_graph.h"
#include "core/inner_greedy.h"
#include "core/r_greedy.h"
#include "data/synthetic.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

void Run() {
  std::printf("== E9: fat-index pruning ablation (Section 4.2.2) ==\n\n");
  TablePrinter t({"dim", "structures fat", "structures all", "ratio",
                  "benefit fat", "benefit all", "evals fat", "evals all"});
  for (int n = 2; n <= 5; ++n) {
    SyntheticCube cube = UniformSyntheticCube(n, 50, 0.05);
    CubeLattice lattice(cube.schema);
    Workload w = AllSliceQueries(lattice);
    CubeGraphOptions fat_opts;
    fat_opts.raw_scan_penalty = 2.0;
    CubeGraphOptions all_opts = fat_opts;
    all_opts.fat_indexes_only = false;
    CubeGraph fat = BuildCubeGraph(cube.schema, cube.sizes, w, fat_opts);
    CubeGraph all = BuildCubeGraph(cube.schema, cube.sizes, w, all_opts);

    double budget = 0.25 * (cube.sizes.TotalViewSpace() +
                            cube.sizes.TotalFatIndexSpace());
    SelectionResult rf = InnerLevelGreedy(fat.graph, budget);
    SelectionResult ra = InnerLevelGreedy(all.graph, budget);

    t.AddRow({std::to_string(n),
              std::to_string(fat.graph.num_structures()),
              std::to_string(all.graph.num_structures()),
              FormatFixed(static_cast<double>(all.graph.num_structures()) /
                              static_cast<double>(
                                  fat.graph.num_structures()),
                          2),
              FormatRowCount(rf.Benefit()), FormatRowCount(ra.Benefit()),
              std::to_string(rf.candidates_evaluated),
              std::to_string(ra.candidates_evaluated)});
  }
  t.Print();
  std::printf(
      "\nShape check: identical benefit with and without non-fat indexes, "
      "at proportionally more work.\nPer Section 4.2.2, a view with m "
      "attributes has ~e*m! ordered-subset indexes of which the ~(e-1)*m!\n"
      "non-fat ones are dominated, so the full universe approaches e = "
      "2.72x the fat one as m grows\n(measured per-lattice ratios above "
      "climb toward it).\n");
}

}  // namespace
}  // namespace olapidx

int main() {
  olapidx::Run();
  return 0;
}
