// Validates BENCH_*.json artifacts against the "olapidx-bench" v1 schema:
//     bench_json_validate FILE...
// Exits 0 iff every file parses as JSON and passes ValidateBenchJson, and
// prints a one-line verdict per file. The CI bench-smoke job runs this
// over every artifact the bench binaries wrote.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_json.h"

namespace olapidx::bench {
namespace {

bool ValidateFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  StatusOr<Json> parsed = Json::Parse(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return false;
  }
  Status valid = ValidateBenchJson(parsed.value());
  if (!valid.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 valid.ToString().c_str());
    return false;
  }
  const Json& doc = parsed.value();
  std::printf("%s: ok (bench %s, %zu run(s))\n", path.c_str(),
              doc.Find("bench")->AsString().c_str(),
              doc.Find("runs")->size());
  return true;
}

}  // namespace
}  // namespace olapidx::bench

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: bench_json_validate FILE...\n");
    return 2;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    all_ok = olapidx::bench::ValidateFile(argv[i]) && all_ok;
  }
  return all_ok ? 0 : 1;
}
