// Experiment E10 — cost-model validation (supports Section 4): the linear
// cost model claims answering γ_A σ_B from view V with index I_D costs
// |V| / |E| rows. We generate a scaled TPC-D fact table, materialize a full
// physical design, execute every slice-query shape against the real B-tree
// engine, and compare measured rows-processed against the model.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_json.h"
#include "common/format.h"
#include "common/table_printer.h"
#include "cost/linear_cost_model.h"
#include "data/fact_generator.h"
#include "engine/executor.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

void Run(bench::BenchJsonReporter* rep) {
  std::printf("== E10: engine-measured cost vs linear cost model ==\n\n");
  TpcdScaledConfig config;
  config.rows = 60'000;
  FactTable fact = GenerateTpcdScaledFacts(config);
  CubeSchema schema = fact.schema();
  Catalog catalog(&fact);

  // Exact view sizes from full materialization.
  ViewSizes sizes(3);
  for (uint32_t mask = 0; mask < 8; ++mask) {
    AttributeSet attrs = AttributeSet::FromMask(mask);
    sizes.Set(attrs, static_cast<double>(catalog.MaterializeView(attrs)));
  }
  // Build every fat index.
  CubeLattice lattice(schema);
  for (uint32_t v = 0; v < lattice.num_views(); ++v) {
    for (const IndexKey& key : lattice.FatIndexes(v)) {
      catalog.BuildIndex(lattice.AttrsOf(v), key);
    }
  }
  LinearCostModel model(&sizes);
  Executor executor(&catalog);

  std::printf("Scaled TPC-D: %zu rows; |ps|=%s |pc|=%s |sc|=%s (paper "
              "shape: ps tiny, pc/sc near base)\n\n",
              fact.num_rows(),
              FormatRowCount(sizes.SizeOf(AttributeSet::Of({0, 1}))).c_str(),
              FormatRowCount(sizes.SizeOf(AttributeSet::Of({0, 2}))).c_str(),
              FormatRowCount(sizes.SizeOf(AttributeSet::Of({1, 2})))
                  .c_str());

  TablePrinter t({"query", "plan", "model rows", "measured avg rows",
                  "ratio"});
  Workload all = AllSliceQueries(lattice);
  Pcg32 rng(99);
  double worst_ratio = 1.0;
  for (const WeightedQuery& wq : all.queries()) {
    const SliceQuery& q = wq.query;
    // Average measured cost over several random selection constants.
    constexpr int kTrials = 8;
    double measured = 0.0;
    ExecutionStats stats;
    for (int trial = 0; trial < kTrials; ++trial) {
      std::vector<uint32_t> values;
      for (int a : q.selection().ToVector()) {
        values.push_back(rng.NextBounded(
            static_cast<uint32_t>(schema.dimension(a).cardinality)));
      }
      executor.Execute(q, values, &stats);
      measured += static_cast<double>(stats.rows_processed);
    }
    measured /= kTrials;
    double modeled =
        stats.used_raw
            ? static_cast<double>(fact.num_rows())
            : model.QueryCost(q, stats.view, stats.index);
    double ratio = measured / std::max(1.0, modeled);
    // Track the worst discrepancy only where the model predicts a
    // non-trivial slice; point lookups into a sparse cube legitimately
    // return 0 rows for absent combinations while the model's |V|/|E| is
    // an average over *present* ones.
    if (modeled >= 10.0) {
      worst_ratio = std::max(worst_ratio,
                             std::max(ratio, 1.0 / std::max(1e-9, ratio)));
    }
    std::string plan = stats.used_raw
                           ? "raw"
                           : (stats.index.empty()
                                  ? "scan " + stats.view.ToString(
                                                  schema.names())
                                  : stats.index.ToString(schema.names()) +
                                        "(" +
                                        stats.view.ToString(schema.names()) +
                                        ")");
    t.AddRow({q.ToString(schema.names()), plan, FormatRowCount(modeled),
              FormatRowCount(measured), FormatFixed(ratio, 3)});
    if (rep != nullptr) {
      Json row = Json::Object();
      row.Set("label", Json::Str(q.ToString(schema.names())));
      row.Set("plan", Json::Str(plan));
      row.Set("model_rows", Json::Number(modeled));
      row.Set("measured_rows", Json::Number(measured));
      row.Set("ratio", Json::Number(ratio));
      rep->AddRun(std::move(row));
    }
  }
  t.Print();
  if (rep != nullptr) rep->AddScalar("worst_ratio", worst_ratio);

  // Micro-assert for the hoisted scan loop: Executor resolves predicate
  // and group-by column pointers once per query, not per row. Recompute
  // one slice naively — per-row attribute lookups straight off the fact
  // table — and abort on any divergence, then report the hoisted scan's
  // per-row cost so a regression shows up as a scalar, not just a vibe.
  {
    SliceQuery q(AttributeSet::Of({1}), AttributeSet::Of({2}));
    std::vector<uint32_t> values{fact.dim(17, 2)};
    ExecutionStats stats;
    GroupedResult got = executor.Execute(q, values, &stats);
    std::map<uint32_t, double> sums;
    std::map<uint32_t, uint64_t> counts;
    for (size_t r = 0; r < fact.num_rows(); ++r) {
      if (fact.dim(r, 2) != values[0]) continue;
      sums[fact.dim(r, 1)] += fact.measure(r);
      counts[fact.dim(r, 1)] += 1;
    }
    OLAPIDX_CHECK(got.keys.size() == sums.size());
    size_t slot = 0;
    for (const auto& [key, sum] : sums) {
      OLAPIDX_CHECK(got.keys[slot].size() == 1 && got.keys[slot][0] == key);
      OLAPIDX_CHECK(got.aggregates[slot].count == counts[key]);
      // The plan may aggregate in a different row order than the naive
      // loop, so sums agree to rounding, not bitwise.
      OLAPIDX_CHECK(std::fabs(got.sums[slot] - sum) <=
                    1e-9 * std::max(1.0, std::fabs(sum)));
      ++slot;
    }
    constexpr int kTimedTrials = 32;
    double t0 = 0.0, rows_timed = 0.0;
    {
      const auto start = std::chrono::steady_clock::now();
      for (int trial = 0; trial < kTimedTrials; ++trial) {
        executor.Execute(q, values, &stats);
        rows_timed += static_cast<double>(stats.rows_processed);
      }
      t0 = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count();
    }
    double ns_per_row = 1e9 * t0 / std::max(1.0, rows_timed);
    std::printf(
        "\nHoisted-scan micro-assert passed (%zu groups); scan cost "
        "%.1f ns/row over %d trials.\n",
        sums.size(), ns_per_row, kTimedTrials);
    if (rep != nullptr) rep->AddScalar("hoisted_scan_ns_per_row", ns_per_row);
  }
  std::printf(
      "\nWorst-case model/measured discrepancy factor over slices with "
      "modeled cost >= 10 rows: %.2f.\nExact for scans; index paths use "
      "the model's *average* slice size, so per-slice measurements\n"
      "fluctuate around ratio 1.0, and point lookups for absent "
      "combinations return 0 rows.\n",
      worst_ratio);
}

}  // namespace
}  // namespace olapidx

int main(int argc, char** argv) {
  olapidx::bench::BenchArgs args =
      olapidx::bench::ParseBenchArgs(argc, argv, "engine_validation");
  olapidx::bench::BenchJsonReporter rep("engine_validation");
  olapidx::Run(args.json ? &rep : nullptr);
  olapidx::bench::FinishBenchJson(rep, args);
  return 0;
}
