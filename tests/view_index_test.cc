#include "engine/view_index.h"

#include <gtest/gtest.h>

#include "data/fact_generator.h"

namespace olapidx {
namespace {

CubeSchema SmallSchema() {
  return CubeSchema(
      {Dimension{"a", 8}, Dimension{"b", 5}, Dimension{"c", 3}});
}

TEST(ViewIndexTest, PrefixScanFindsExactlyMatchingRows) {
  FactTable fact = GenerateUniformFacts(SmallSchema(), 600, /*seed=*/5);
  MaterializedView view = MaterializedView::FromFactTable(
      fact, AttributeSet::Of({0, 1, 2}));
  ViewIndex index(view, IndexKey({1, 0, 2}));  // key order b, a, c
  EXPECT_EQ(index.num_entries(), view.num_rows());
  index.tree().CheckInvariants();

  // For every b value, the prefix scan must return exactly the rows with
  // that b.
  for (uint32_t b = 0; b < 5; ++b) {
    size_t expected = 0;
    for (size_t r = 0; r < view.num_rows(); ++r) {
      if (view.dim(r, 1) == b) ++expected;
    }
    size_t got = 0;
    size_t visited = index.ScanPrefix({b}, [&](uint32_t row) {
      EXPECT_EQ(view.dim(row, 1), b);
      ++got;
    });
    EXPECT_EQ(got, expected) << "b=" << b;
    EXPECT_EQ(visited, expected);
  }
}

TEST(ViewIndexTest, TwoLevelPrefix) {
  FactTable fact = GenerateUniformFacts(SmallSchema(), 600, /*seed=*/6);
  MaterializedView view = MaterializedView::FromFactTable(
      fact, AttributeSet::Of({0, 1}));
  ViewIndex index(view, IndexKey({1, 0}));
  for (uint32_t b = 0; b < 5; ++b) {
    for (uint32_t a = 0; a < 8; ++a) {
      size_t expected = 0;
      for (size_t r = 0; r < view.num_rows(); ++r) {
        if (view.dim(r, 1) == b && view.dim(r, 0) == a) ++expected;
      }
      EXPECT_EQ(index.ScanPrefix({b, a}, [](uint32_t) {}), expected);
    }
  }
}

TEST(ViewIndexTest, EmptyPrefixScansEverything) {
  FactTable fact = GenerateUniformFacts(SmallSchema(), 200, /*seed=*/8);
  MaterializedView view = MaterializedView::FromFactTable(
      fact, AttributeSet::Of({0, 2}));
  ViewIndex index(view, IndexKey({2, 0}));
  EXPECT_EQ(index.ScanPrefix({}, [](uint32_t) {}), view.num_rows());
}

TEST(ViewIndexTest, FatIndexKeysAreUnique) {
  // A fat index (permutation of all view attributes) has one entry per
  // view row with no duplicate keys.
  FactTable fact = GenerateUniformFacts(SmallSchema(), 400, /*seed=*/10);
  MaterializedView view = MaterializedView::FromFactTable(
      fact, AttributeSet::Of({0, 1, 2}));
  ViewIndex index(view, IndexKey({2, 1, 0}));
  uint64_t prev = 0;
  bool first = true;
  size_t n = index.tree().ScanRange(0, ~0ULL, [&](uint64_t k, uint32_t) {
    if (!first) {
      EXPECT_GT(k, prev);  // strictly increasing: unique
    }
    prev = k;
    first = false;
  });
  EXPECT_EQ(n, view.num_rows());
}

TEST(ViewIndexDeathTest, KeyMustUseViewAttributes) {
  FactTable fact = GenerateUniformFacts(SmallSchema(), 50, /*seed=*/2);
  MaterializedView view =
      MaterializedView::FromFactTable(fact, AttributeSet::Of({0}));
  EXPECT_DEATH(ViewIndex(view, IndexKey({1})), "CHECK");
  EXPECT_DEATH(ViewIndex(view, IndexKey()), "CHECK");
}

}  // namespace
}  // namespace olapidx
