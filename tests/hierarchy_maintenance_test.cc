// Update-aware selection on hierarchical lattices: maintenance pressure
// must push the selection toward coarser (smaller) structures, and the
// zero-rate graph must match the rate-free build exactly.

#include <gtest/gtest.h>

#include "core/inner_greedy.h"
#include "hierarchy/hierarchical_graph.h"

namespace olapidx {
namespace {

HierarchicalSchema Schema() {
  return HierarchicalSchema({
      HierarchicalDimension{"store",
                            {{"store", 1000}, {"city", 80}, {"region", 8}}},
      HierarchicalDimension{"day", {{"day", 365}, {"month", 12}}},
  });
}

double TotalSpace(const QueryViewGraph& g) {
  double total = 0.0;
  for (uint32_t v = 0; v < g.num_views(); ++v) {
    total += g.view_space(v) *
             (1.0 + static_cast<double>(g.num_indexes(v)));
  }
  return total;
}

TEST(HierarchyMaintenanceTest, ZeroRateEqualsDefault) {
  HierarchicalSchema schema = Schema();
  HierarchicalGraphOptions plain;
  plain.raw_scan_penalty = 2.0;
  HierarchicalGraphOptions zero = plain;
  zero.maintenance_per_row = 0.0;
  HierarchicalCubeGraph a = BuildHierarchicalCubeGraph(
      schema, 50'000, UniformHWorkload(schema), plain);
  HierarchicalCubeGraph b = BuildHierarchicalCubeGraph(
      schema, 50'000, UniformHWorkload(schema), zero);
  double budget = 0.05 * TotalSpace(a.graph);
  EXPECT_NEAR(InnerLevelGreedy(a.graph, budget).Benefit(),
              InnerLevelGreedy(b.graph, budget).Benefit(), 1e-9);
}

TEST(HierarchyMaintenanceTest, PressureShrinksAverageStructure) {
  HierarchicalSchema schema = Schema();
  double avg_prev = 0.0;
  bool first = true;
  for (double rate : {0.0, 200.0}) {
    HierarchicalGraphOptions options;
    options.raw_scan_penalty = 2.0;
    options.maintenance_per_row = rate;
    HierarchicalCubeGraph cube = BuildHierarchicalCubeGraph(
        schema, 50'000, UniformHWorkload(schema), options);
    double budget = 0.05 * TotalSpace(cube.graph);
    SelectionResult r = InnerLevelGreedy(cube.graph, budget);
    ASSERT_FALSE(r.picks.empty()) << "rate " << rate;
    double avg =
        r.space_used / static_cast<double>(r.picks.size());
    if (!first) {
      EXPECT_LT(avg, avg_prev);
    }
    avg_prev = avg;
    first = false;
    // Benefits remain net-positive.
    EXPECT_GT(r.Benefit(), 0.0);
  }
}

}  // namespace
}  // namespace olapidx
