// Tests for the update-aware extension: per-structure maintenance costs
// subtracted from benefit. With all costs zero the behaviour must be
// byte-identical to the paper's space-only model.

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/inner_greedy.h"
#include "core/optimal.h"
#include "core/r_greedy.h"
#include "core/selection_state.h"
#include "data/example_graphs.h"
#include "data/tpcd.h"

namespace olapidx {
namespace {

TEST(MaintenanceTest, ZeroCostsReproducePaperModel) {
  QueryViewGraph g = Figure2Instance();
  // Explicitly set zeros (the default) and re-run the known traces.
  for (uint32_t v = 0; v < g.num_views(); ++v) {
    g.SetViewMaintenance(v, 0.0);
    for (int32_t k = 0; k < g.num_indexes(v); ++k) {
      g.SetIndexMaintenance(v, k, 0.0);
    }
  }
  EXPECT_NEAR(RGreedy(g, kFigure2Budget, {.r = 1}).Benefit(), 148.0, 1e-9);
  EXPECT_NEAR(RGreedy(g, kFigure2Budget, {.r = 2}).Benefit(), 206.0, 1e-9);
  EXPECT_NEAR(InnerLevelGreedy(g, kFigure2Budget).Benefit(), 346.0, 1e-9);
  EXPECT_NEAR(BranchAndBoundOptimal(g, kFigure2Budget).Benefit(), 264.0,
              1e-9);
}

TEST(MaintenanceTest, BenefitIsNetOfMaintenance) {
  QueryViewGraph g;
  uint32_t v = g.AddView("v", 1.0);
  uint32_t q = g.AddQuery("q", 100.0);
  g.AddViewEdge(q, v, 10.0);
  g.Finalize();
  g.SetViewMaintenance(v, 30.0);
  SelectionState state(&g);
  Candidate c{v, true, {}};
  EXPECT_NEAR(state.CandidateBenefit(c), 90.0 - 30.0, 1e-12);
  state.Apply(c);
  EXPECT_NEAR(state.TotalMaintenance(), 30.0, 1e-12);
  EXPECT_NEAR(state.TotalCost(), 10.0, 1e-12);   // τ excludes maintenance
  EXPECT_NEAR(state.TotalBenefit(), 60.0, 1e-12);  // net
}

TEST(MaintenanceTest, ExpensiveMaintenanceBlocksSelection) {
  QueryViewGraph g;
  uint32_t v = g.AddView("v", 1.0);
  uint32_t q = g.AddQuery("q", 100.0);
  g.AddViewEdge(q, v, 10.0);
  g.Finalize();
  g.SetViewMaintenance(v, 200.0);  // refresh costs more than it saves
  EXPECT_TRUE(RGreedy(g, 10.0, {.r = 1}).picks.empty());
  EXPECT_TRUE(InnerLevelGreedy(g, 10.0).picks.empty());
  SelectionResult opt = BranchAndBoundOptimal(g, 10.0);
  EXPECT_TRUE(opt.proven_optimal);
  EXPECT_TRUE(opt.picks.empty());
}

TEST(MaintenanceTest, MaintenanceShrinksSelections) {
  CubeSchema schema = TpcdSchema();
  CubeLattice lattice(schema);
  Workload workload = AllSliceQueries(lattice);
  ViewSizes sizes = TpcdPaperSizes();

  CubeGraphOptions base;
  base.raw_scan_penalty = 2.0;
  CubeGraphOptions updating = base;
  updating.maintenance_per_row = 5.0;  // heavy update traffic

  CubeGraph g0 = BuildCubeGraph(schema, sizes, workload, base);
  CubeGraph g1 = BuildCubeGraph(schema, sizes, workload, updating);
  SelectionResult r0 = InnerLevelGreedy(g0.graph, kTpcdExampleBudget);
  SelectionResult r1 = InnerLevelGreedy(g1.graph, kTpcdExampleBudget);
  // Under update pressure the advisor materializes less.
  EXPECT_LT(r1.space_used, r0.space_used);
  EXPECT_GT(r1.total_maintenance, 0.0);
  EXPECT_NEAR(r0.total_maintenance, 0.0, 1e-12);
  // Every selected structure must still pay for itself.
  EXPECT_GT(r1.Benefit(), 0.0);
}

TEST(MaintenanceTest, InnerBundleAccountsForIndexMaintenance) {
  // A view with one helpful and one maintenance-dominated index: the
  // grown bundle must exclude the bad index.
  QueryViewGraph g;
  uint32_t v = g.AddView("v", 1.0);
  int32_t good = g.AddIndex(v, "good", 1.0);
  int32_t bad = g.AddIndex(v, "bad", 1.0);
  uint32_t q0 = g.AddQuery("q0", 100.0);
  uint32_t q1 = g.AddQuery("q1", 100.0);
  uint32_t q2 = g.AddQuery("q2", 100.0);
  g.AddViewEdge(q0, v, 50.0);
  g.AddViewEdge(q1, v, 100.0);
  g.AddIndexEdge(q1, v, good, 10.0);
  g.AddViewEdge(q2, v, 100.0);
  g.AddIndexEdge(q2, v, bad, 10.0);
  g.Finalize();
  g.SetIndexMaintenance(v, bad, 500.0);

  SelectionResult r = InnerLevelGreedy(g, 100.0);
  for (const StructureRef& s : r.picks) {
    EXPECT_NE(g.StructureName(s), "bad(v)");
  }
  EXPECT_NEAR(r.Benefit(), 50.0 + 90.0, 1e-9);
}

TEST(MaintenanceTest, OptimalRespectsMaintenanceTradeoff) {
  // Two views: A saves 100 and costs 60 maintenance (net 40);
  //            B saves 50 with no maintenance (net 50). Budget fits one.
  QueryViewGraph g;
  uint32_t a = g.AddView("A", 1.0);
  uint32_t b = g.AddView("B", 1.0);
  uint32_t qa = g.AddQuery("qa", 200.0);
  uint32_t qb = g.AddQuery("qb", 200.0);
  g.AddViewEdge(qa, a, 100.0);
  g.AddViewEdge(qb, b, 150.0);
  g.Finalize();
  g.SetViewMaintenance(a, 60.0);
  SelectionResult opt = BranchAndBoundOptimal(g, 1.0);
  ASSERT_TRUE(opt.proven_optimal);
  ASSERT_EQ(opt.picks.size(), 1u);
  EXPECT_EQ(g.StructureName(opt.picks[0]), "B");
  EXPECT_NEAR(opt.Benefit(), 50.0, 1e-9);
}

}  // namespace
}  // namespace olapidx
