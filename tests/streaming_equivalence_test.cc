// Differential tests for the streaming edge-run sink
// (LatticeGraphOptions::sink_window_bytes): a build that spills and
// merges bounded windows must produce a graph *bit-identical* to the
// buffered build (window = 0) for every window size, thread count,
// index family, and cost-column layout — the sink reorders only when it
// can prove the merge restores the canonical order. Also the unpruned
// sparse-hierarchical contract: with nothing pruned,
// TryBuildSparseHierarchicalCubeGraph must reproduce
// TryBuildHierarchicalCubeGraph exactly on random multi-level schemas.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cube_graph.h"
#include "core/sparse_cube_graph.h"
#include "data/synthetic.h"
#include "hierarchy/hierarchical_graph.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

// Exact equality through the public accessors (both builds must perform
// the same double divisions in the same order). Works for flat and
// hierarchical graphs alike — it only touches QueryViewGraph.
void ExpectIdenticalQvg(const QueryViewGraph& a, const QueryViewGraph& b,
                        const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.num_views(), b.num_views());
  ASSERT_EQ(a.num_queries(), b.num_queries());
  ASSERT_EQ(a.num_structures(), b.num_structures());
  for (uint32_t q = 0; q < a.num_queries(); ++q) {
    ASSERT_EQ(a.query_name(q), b.query_name(q)) << "query " << q;
    ASSERT_EQ(a.query_default_cost(q), b.query_default_cost(q));
    ASSERT_EQ(a.query_frequency(q), b.query_frequency(q));
    ASSERT_EQ(a.QueryViews(q), b.QueryViews(q)) << "query " << q;
  }
  for (uint32_t v = 0; v < a.num_views(); ++v) {
    SCOPED_TRACE("view " + std::to_string(v));
    ASSERT_EQ(a.view_name(v), b.view_name(v));
    ASSERT_EQ(a.view_space(v), b.view_space(v));
    ASSERT_EQ(a.num_indexes(v), b.num_indexes(v));
    for (int32_t k = 0; k < a.num_indexes(v); ++k) {
      ASSERT_EQ(a.index_name(v, k), b.index_name(v, k)) << "index " << k;
      ASSERT_EQ(a.index_space(v, k), b.index_space(v, k));
    }
    ASSERT_EQ(a.ViewQueries(v), b.ViewQueries(v));
    const size_t nq = a.ViewQueries(v).size();
    for (size_t pos = 0; pos < nq; ++pos) {
      ASSERT_EQ(a.ViewCostAt(v, pos), b.ViewCostAt(v, pos)) << "pos " << pos;
      for (int32_t k = 0; k < a.num_indexes(v); ++k) {
        ASSERT_EQ(a.IndexCostAt(v, k, pos), b.IndexCostAt(v, k, pos))
            << "index " << k << " pos " << pos;
      }
    }
  }
  ASSERT_EQ(a.DefaultTotalCost(), b.DefaultTotalCost());
}

// Sink windows to sweep: buffered baseline, a pathologically tiny window
// that forces a flush nearly every run, and the production default.
const size_t kWindows[] = {0, size_t{1} << 10, size_t{1} << 18};

TEST(StreamingEquivalenceTest, FlatSparseMatchesBufferedAcrossWindows) {
  // 12 dimensions with the default max_fat_dim = 6: narrow views carry
  // fat index families, wide views carry workload-derived candidate
  // families, so both ForEachIndexCostClass branches stream.
  SyntheticCube cube = UniformSyntheticCube(12, 100, 0.05);
  CubeLattice lattice(cube.schema);
  Workload workload = SampledZipfSliceQueries(lattice, 1.1, 150, 7);

  SparseCubeGraphOptions buffered;
  buffered.raw_scan_penalty = 2.0;
  buffered.sink_window_bytes = 0;
  StatusOr<SparseCubeGraph> baseline =
      TryBuildSparseCubeGraph(cube.schema, cube.sizes, workload, buffered);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_GT(baseline->stats.candidate_views, 0u);
  EXPECT_GT(baseline->stats.fat_views, 0u);

  for (size_t window : kWindows) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      for (bool compress : {true, false}) {
        SparseCubeGraphOptions options = buffered;
        options.sink_window_bytes = window;
        options.num_threads = threads;
        options.compress_cost_columns = compress;
        StatusOr<SparseCubeGraph> run = TryBuildSparseCubeGraph(
            cube.schema, cube.sizes, workload, options);
        ASSERT_TRUE(run.ok()) << run.status().ToString();
        ExpectIdenticalQvg(run->cube.graph, baseline->cube.graph,
                           "window=" + std::to_string(window) +
                               " threads=" + std::to_string(threads) +
                               " compress=" + std::to_string(compress));
        ASSERT_EQ(run->cube.view_attrs, baseline->cube.view_attrs);
        ASSERT_EQ(run->cube.index_keys, baseline->cube.index_keys);
      }
    }
  }
}

HierarchicalSchema ThreeLevelSchema() {
  return HierarchicalSchema(
      {HierarchicalDimension{
           "store",
           {HierarchyLevel{"store", 200}, HierarchyLevel{"city", 40},
            HierarchyLevel{"region", 6}}},
       HierarchicalDimension{"product",
                             {HierarchyLevel{"product", 150},
                              HierarchyLevel{"category", 12}}},
       HierarchicalDimension{"time",
                             {HierarchyLevel{"day", 365},
                              HierarchyLevel{"month", 12}}}});
}

TEST(StreamingEquivalenceTest, HierarchicalSparseMatchesBufferedAcrossWindows) {
  HierarchicalSchema schema = ThreeLevelSchema();
  std::vector<WeightedHQuery> workload =
      SampledZipfHWorkload(schema, 120, 1.1, 5);

  SparseHierarchicalGraphOptions buffered;
  buffered.raw_scan_penalty = 2.0;
  buffered.sink_window_bytes = 0;
  StatusOr<SparseHierarchicalCubeGraph> baseline =
      TryBuildSparseHierarchicalCubeGraph(schema, 1e6, workload, buffered);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (size_t window : kWindows) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      SparseHierarchicalGraphOptions options = buffered;
      options.sink_window_bytes = window;
      options.num_threads = threads;
      StatusOr<SparseHierarchicalCubeGraph> run =
          TryBuildSparseHierarchicalCubeGraph(schema, 1e6, workload,
                                              options);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      ASSERT_EQ(run->hgraph.view_levels, baseline->hgraph.view_levels);
      ExpectIdenticalQvg(run->hgraph.graph, baseline->hgraph.graph,
                         "window=" + std::to_string(window) +
                             " threads=" + std::to_string(threads));
    }
  }
}

// A reproducible schema with 2–4 dimensions, 1–3 levels each, and
// strictly non-increasing per-level cardinalities.
HierarchicalSchema RandomSchema(uint64_t seed) {
  Pcg32 rng(seed);
  const int n = 2 + static_cast<int>(rng.NextBounded(3));
  std::vector<HierarchicalDimension> dims;
  for (int d = 0; d < n; ++d) {
    HierarchicalDimension dim;
    dim.name = "d" + std::to_string(d);
    const int levels = 1 + static_cast<int>(rng.NextBounded(3));
    uint64_t card = 20 + rng.NextBounded(200);
    for (int l = 0; l < levels; ++l) {
      dim.levels.push_back(HierarchyLevel{
          l == 0 ? dim.name : dim.name + "_l" + std::to_string(l), card});
      card = 1 + card / (2 + rng.NextBounded(4));
    }
    dims.push_back(std::move(dim));
  }
  return HierarchicalSchema(std::move(dims));
}

TEST(StreamingEquivalenceTest, SparseHierarchicalUnprunedMatchesDense) {
  for (uint64_t seed : {uint64_t{1}, uint64_t{17}, uint64_t{90210}}) {
    HierarchicalSchema schema = RandomSchema(seed);
    std::vector<WeightedHQuery> workload = UniformHWorkload(schema);

    HierarchicalGraphOptions dense_options;
    dense_options.raw_scan_penalty = 1.5;
    StatusOr<HierarchicalCubeGraph> dense =
        TryBuildHierarchicalCubeGraph(schema, 5e5, workload, dense_options);
    ASSERT_TRUE(dense.ok()) << dense.status().ToString();

    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      SparseHierarchicalGraphOptions options;
      options.raw_scan_penalty = 1.5;
      options.max_fat_dim = 8;  // every view fat: same family as dense
      options.num_threads = threads;
      StatusOr<SparseHierarchicalCubeGraph> sparse =
          TryBuildSparseHierarchicalCubeGraph(schema, 5e5, workload,
                                              options);
      ASSERT_TRUE(sparse.ok()) << sparse.status().ToString();
      const std::string label = "seed=" + std::to_string(seed) +
                                " threads=" + std::to_string(threads);
      SCOPED_TRACE(label);
      EXPECT_EQ(sparse->stats.retained_queries, workload.size());
      EXPECT_EQ(sparse->stats.retained_views,
                static_cast<size_t>(dense->graph.num_views()));
      EXPECT_FALSE(sparse->stats.view_cap_hit);
      ASSERT_EQ(sparse->hgraph.view_levels, dense->view_levels);
      ASSERT_EQ(sparse->hgraph.view_sizes, dense->view_sizes);
      ExpectIdenticalQvg(sparse->hgraph.graph, dense->graph, label);
    }
  }
}

}  // namespace
}  // namespace olapidx
