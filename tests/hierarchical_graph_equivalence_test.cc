// Differential test for the fast hierarchical graph builder:
// TryBuildHierarchicalCubeGraph (the generic provider-parameterized core
// path — odometer answering-view enumeration, prefix-class index costing,
// sharded parallel edge emission, lazy index names) must produce a graph
// *identical* to BuildHierarchicalCubeGraphReference (the original serial
// triple loop) — same views, decoded key orders, rendered names, edge sets,
// and bit-exact costs — for every schema, workload, option set, and thread
// count. A second family of tests pins the degeneration: with one level
// per dimension the hierarchical builder must reproduce flat
// TryBuildCubeGraph bit-for-bit under the id complement mapping.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cube_graph.h"
#include "hierarchy/hierarchical_graph.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

// Exact equality everywhere: both builders must perform the same double
// divisions, so == (not NEAR) is the contract.
void ExpectIdenticalHGraphs(const HierarchicalCubeGraph& fast,
                            const HierarchicalCubeGraph& ref,
                            const std::string& label) {
  SCOPED_TRACE(label);
  const QueryViewGraph& f = fast.graph;
  const QueryViewGraph& r = ref.graph;
  ASSERT_EQ(f.num_views(), r.num_views());
  ASSERT_EQ(f.num_queries(), r.num_queries());
  ASSERT_EQ(f.num_structures(), r.num_structures());
  ASSERT_EQ(fast.view_sizes, ref.view_sizes);
  ASSERT_EQ(fast.all_levels, ref.all_levels);
  ASSERT_EQ(fast.fat_indexes_only, ref.fat_indexes_only);
  ASSERT_EQ(fast.view_levels.size(), ref.view_levels.size());
  for (size_t v = 0; v < fast.view_levels.size(); ++v) {
    ASSERT_EQ(fast.view_levels[v], ref.view_levels[v]) << "view " << v;
  }
  // The fast path stores no order lists; decode-on-demand must reproduce
  // the reference's eager lists exactly (and rank back to the position).
  ASSERT_TRUE(fast.index_orders.empty());
  for (uint32_t q = 0; q < f.num_queries(); ++q) {
    ASSERT_EQ(f.query_name(q), r.query_name(q)) << "query " << q;
    ASSERT_EQ(f.query_default_cost(q), r.query_default_cost(q));
    ASSERT_EQ(f.query_frequency(q), r.query_frequency(q));
    ASSERT_EQ(f.QueryViews(q), r.QueryViews(q)) << "query " << q;
  }
  for (uint32_t v = 0; v < f.num_views(); ++v) {
    SCOPED_TRACE("view " + std::to_string(v));
    ASSERT_EQ(f.view_name(v), r.view_name(v));
    ASSERT_EQ(f.view_space(v), r.view_space(v));
    ASSERT_EQ(f.num_indexes(v), r.num_indexes(v));
    ASSERT_EQ(f.structure_maintenance(StructureRef{v, StructureRef::kNoIndex}),
              r.structure_maintenance(StructureRef{v, StructureRef::kNoIndex}));
    for (int32_t k = 0; k < f.num_indexes(v); ++k) {
      // Lazy rendering (fast) must match the eagerly stored string (ref).
      ASSERT_EQ(f.index_name(v, k), r.index_name(v, k)) << "index " << k;
      ASSERT_EQ(f.index_space(v, k), r.index_space(v, k));
      ASSERT_EQ(f.structure_maintenance(StructureRef{v, k}),
                r.structure_maintenance(StructureRef{v, k}));
      const std::vector<int> order = fast.IndexOrderOf(v, k);
      ASSERT_EQ(order, ref.index_orders[v][static_cast<size_t>(k)])
          << "index " << k;
      ASSERT_EQ(fast.IndexPositionOf(v, order), k);
      ASSERT_EQ(ref.IndexPositionOf(v, order), k);
    }
    ASSERT_EQ(f.ViewQueries(v), r.ViewQueries(v));
    const size_t nq = f.ViewQueries(v).size();
    for (size_t pos = 0; pos < nq; ++pos) {
      ASSERT_EQ(f.ViewCostAt(v, pos), r.ViewCostAt(v, pos)) << "pos " << pos;
      for (int32_t k = 0; k < f.num_indexes(v); ++k) {
        ASSERT_EQ(f.IndexCostAt(v, k, pos), r.IndexCostAt(v, k, pos))
            << "index " << k << " pos " << pos;
      }
    }
  }
  ASSERT_EQ(f.DefaultTotalCost(), r.DefaultTotalCost());
}

void CheckEquivalence(const HierarchicalSchema& schema, double raw_rows,
                      const std::vector<WeightedHQuery>& workload,
                      HierarchicalGraphOptions options,
                      const std::string& label) {
  HierarchicalCubeGraph ref =
      BuildHierarchicalCubeGraphReference(schema, raw_rows, workload,
                                          options);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    options.num_threads = threads;
    StatusOr<HierarchicalCubeGraph> fast =
        TryBuildHierarchicalCubeGraph(schema, raw_rows, workload, options);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    ExpectIdenticalHGraphs(*fast, ref,
                           label + " threads=" + std::to_string(threads));
  }
}

// A random hierarchy: `n` dimensions, each with `min_levels`..`max_levels`
// levels of strictly shrinking cardinality.
HierarchicalSchema RandomSchema(Pcg32& rng, int n, int min_levels,
                                int max_levels) {
  std::vector<HierarchicalDimension> dims;
  for (int d = 0; d < n; ++d) {
    const int num_levels =
        min_levels +
        static_cast<int>(rng.Next() %
                         static_cast<uint32_t>(max_levels - min_levels + 1));
    uint64_t card = 100 + rng.Next() % 4000;
    std::vector<HierarchyLevel> levels;
    for (int l = 0; l < num_levels; ++l) {
      levels.push_back(HierarchyLevel{
          "d" + std::to_string(d) + "l" + std::to_string(l), card});
      card = std::max<uint64_t>(2, card / (2 + rng.Next() % 12));
    }
    dims.push_back(
        HierarchicalDimension{"d" + std::to_string(d), std::move(levels)});
  }
  return HierarchicalSchema(std::move(dims));
}

// A random workload: `count` queries drawn from the full query space, with
// occasional duplicates and zero frequencies.
std::vector<WeightedHQuery> RandomWorkload(Pcg32& rng,
                                           const HierarchicalSchema& schema,
                                           int count) {
  std::vector<WeightedHQuery> out;
  for (int i = 0; i < count; ++i) {
    std::vector<HDimRole> roles(
        static_cast<size_t>(schema.num_dimensions()));
    for (int d = 0; d < schema.num_dimensions(); ++d) {
      const auto radix =
          static_cast<uint32_t>(1 + 2 * schema.num_levels(d));
      const int choice = static_cast<int>(rng.Next() % radix);
      HDimRole& role = roles[static_cast<size_t>(d)];
      if (choice == 0) {
        role.kind = HDimRole::kAbsent;
      } else if (choice <= schema.num_levels(d)) {
        role.kind = HDimRole::kGroupBy;
        role.level = choice - 1;
      } else {
        role.kind = HDimRole::kSelect;
        role.level = choice - 1 - schema.num_levels(d);
      }
    }
    const double freq =
        (i % 9 == 0) ? 0.0 : 1.0 + static_cast<double>(rng.Next() % 5);
    out.push_back(WeightedHQuery{HSliceQuery(std::move(roles)), freq});
    if (i % 6 == 0 && !out.empty()) {
      out.push_back(WeightedHQuery{out.back().query, 2.0});  // duplicate
    }
  }
  return out;
}

TEST(HierarchicalGraphEquivalenceTest, DeepHierarchiesFullWorkload) {
  // The acceptance shape: ≥ 2 dimensions × ≥ 3 levels, every query.
  Pcg32 rng(7);
  for (int n = 2; n <= 3; ++n) {
    HierarchicalSchema schema = RandomSchema(rng, n, 3, 3);
    HierarchicalGraphOptions options;
    options.raw_scan_penalty = 2.0;
    CheckEquivalence(schema, 250'000.0, UniformHWorkload(schema), options,
                     "deep n=" + std::to_string(n));
  }
}

TEST(HierarchicalGraphEquivalenceTest, RandomSchemasAndWorkloads) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Pcg32 rng(seed);
    const int n = 2 + static_cast<int>(seed % 3);  // dims 2..4
    HierarchicalSchema schema = RandomSchema(rng, n, 1, 3);
    HierarchicalGraphOptions options;
    options.raw_scan_penalty = 1.0 + 0.5 * static_cast<double>(seed % 4);
    CheckEquivalence(schema, 1000.0 * static_cast<double>(1 + seed % 50),
                     RandomWorkload(rng, schema, 80), options,
                     "random seed=" + std::to_string(seed));
  }
}

TEST(HierarchicalGraphEquivalenceTest, AblationAllOrderedSubsetIndexes) {
  Pcg32 rng(19);
  for (int n = 2; n <= 3; ++n) {
    HierarchicalSchema schema = RandomSchema(rng, n, 2, 3);
    HierarchicalGraphOptions options;
    options.fat_indexes_only = false;
    options.raw_scan_penalty = 2.0;
    CheckEquivalence(schema, 60'000.0, RandomWorkload(rng, schema, 60),
                     options, "ablation n=" + std::to_string(n));
  }
}

TEST(HierarchicalGraphEquivalenceTest, MaintenanceAndCustomDefaultCost) {
  Pcg32 rng(23);
  HierarchicalSchema schema = RandomSchema(rng, 3, 2, 2);
  HierarchicalGraphOptions options;
  options.maintenance_per_row = 0.25;
  options.default_query_cost = 123456.0;
  CheckEquivalence(schema, 40'000.0, UniformHWorkload(schema), options,
                   "maintenance");
}

TEST(HierarchicalGraphEquivalenceTest, EmptyWorkloadStillBuildsStructures) {
  Pcg32 rng(31);
  HierarchicalSchema schema = RandomSchema(rng, 2, 3, 3);
  CheckEquivalence(schema, 10'000.0, {}, HierarchicalGraphOptions{},
                   "empty workload");
}

// ---- Degeneration: one level per dimension == the flat cube builder ----

// With a single proper level per dimension the hierarchical lattice is the
// flat 2^n lattice with complemented ids: hierarchical level digit 0
// (present) ↔ flat mask bit 1, digit 1 (ALL) ↔ bit 0, so hierarchical view
// h corresponds to flat view (2^n − 1) − h, and both index families list
// key orders in the same lexicographic rank order. Everything except the
// rendered names must agree bit-for-bit.
void CheckDegeneration(int n, bool fat_indexes_only, uint64_t seed,
                       double maintenance_per_row) {
  SCOPED_TRACE("degeneration n=" + std::to_string(n) +
               (fat_indexes_only ? " fat" : " ablation"));
  Pcg32 rng(seed);

  // One flat attribute per hierarchical dimension, same cardinalities.
  std::vector<HierarchicalDimension> hdims;
  std::vector<Dimension> fdims;
  for (int d = 0; d < n; ++d) {
    const uint64_t card = 4 + rng.Next() % 60;
    const std::string name = "a" + std::to_string(d);
    hdims.push_back(
        HierarchicalDimension{name, {HierarchyLevel{name, card}}});
    fdims.push_back(Dimension{name, card});
  }
  HierarchicalSchema hschema(std::move(hdims));
  CubeSchema fschema(fdims);
  const double raw_rows = 5'000.0 + static_cast<double>(rng.Next() % 50'000);

  // Identical view sizes on both sides: the hierarchical analytical sizes,
  // re-keyed by the complement mapping.
  HierarchicalLattice hlattice(&hschema);
  const std::vector<double> hsizes = hlattice.AnalyticalSizes(raw_rows);
  const uint32_t nv = static_cast<uint32_t>(hlattice.num_views());
  ASSERT_EQ(nv, 1u << n);
  ViewSizes fsizes(n);
  for (uint32_t h = 0; h < nv; ++h) {
    fsizes.Set(AttributeSet::FromMask((nv - 1) - h), hsizes[h]);
  }
  ASSERT_TRUE(fsizes.Complete());

  // The same workload on both sides, in the same order: every (group-by,
  // selection) pair of disjoint attribute sets, with random frequencies.
  Workload fworkload;
  std::vector<WeightedHQuery> hworkload;
  for (uint32_t all = 0; all < nv; ++all) {
    for (uint32_t sel = all;; sel = (sel - 1) & all) {
      const uint32_t group = all & ~sel;
      const double freq = 1.0 + static_cast<double>(rng.Next() % 7);
      fworkload.Add(SliceQuery(AttributeSet::FromMask(group),
                               AttributeSet::FromMask(sel)),
                    freq);
      std::vector<HDimRole> roles(static_cast<size_t>(n));
      for (int d = 0; d < n; ++d) {
        HDimRole& role = roles[static_cast<size_t>(d)];
        if ((sel >> d) & 1u) {
          role.kind = HDimRole::kSelect;
        } else if ((group >> d) & 1u) {
          role.kind = HDimRole::kGroupBy;
        } else {
          role.kind = HDimRole::kAbsent;
        }
        role.level = 0;
      }
      hworkload.push_back(
          WeightedHQuery{HSliceQuery(std::move(roles)), freq});
      if (sel == 0) break;
    }
  }

  CubeGraphOptions foptions;
  foptions.fat_indexes_only = fat_indexes_only;
  foptions.raw_scan_penalty = 2.0;
  foptions.maintenance_per_row = maintenance_per_row;
  HierarchicalGraphOptions hoptions;
  hoptions.fat_indexes_only = fat_indexes_only;
  hoptions.raw_scan_penalty = 2.0;
  hoptions.maintenance_per_row = maintenance_per_row;

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    foptions.num_threads = threads;
    hoptions.num_threads = threads;
    StatusOr<CubeGraph> flat =
        TryBuildCubeGraph(fschema, fsizes, fworkload, foptions);
    ASSERT_TRUE(flat.ok()) << flat.status().ToString();
    StatusOr<HierarchicalCubeGraph> hier = TryBuildHierarchicalCubeGraph(
        hschema, raw_rows, hworkload, hoptions);
    ASSERT_TRUE(hier.ok()) << hier.status().ToString();
    const QueryViewGraph& fg = flat->graph;
    const QueryViewGraph& hg = hier->graph;
    ASSERT_EQ(fg.num_views(), hg.num_views());
    ASSERT_EQ(fg.num_queries(), hg.num_queries());
    ASSERT_EQ(fg.num_structures(), hg.num_structures());
    ASSERT_EQ(fg.DefaultTotalCost(), hg.DefaultTotalCost());
    for (uint32_t q = 0; q < fg.num_queries(); ++q) {
      ASSERT_EQ(fg.query_default_cost(q), hg.query_default_cost(q));
      ASSERT_EQ(fg.query_frequency(q), hg.query_frequency(q));
      // Query → view adjacency, under the complement id mapping.
      std::vector<uint32_t> mapped;
      for (uint32_t hv : hg.QueryViews(q)) mapped.push_back((nv - 1) - hv);
      std::sort(mapped.begin(), mapped.end());
      ASSERT_EQ(fg.QueryViews(q), mapped) << "query " << q;
    }
    for (uint32_t fv = 0; fv < nv; ++fv) {
      SCOPED_TRACE("flat view " + std::to_string(fv));
      const uint32_t hv = (nv - 1) - fv;
      ASSERT_EQ(fg.view_space(fv), hg.view_space(hv));
      ASSERT_EQ(fg.num_indexes(fv), hg.num_indexes(hv));
      ASSERT_EQ(
          fg.structure_maintenance(StructureRef{fv, StructureRef::kNoIndex}),
          hg.structure_maintenance(StructureRef{hv, StructureRef::kNoIndex}));
      for (int32_t k = 0; k < fg.num_indexes(fv); ++k) {
        // Rank k is the same key order on both sides: the flat key's
        // attribute sequence must equal the decoded dimension order.
        ASSERT_EQ(flat->index_keys[fv][static_cast<size_t>(k)].attrs(),
                  hier->IndexOrderOf(hv, k))
            << "index " << k;
        ASSERT_EQ(fg.index_space(fv, k), hg.index_space(hv, k));
        ASSERT_EQ(fg.structure_maintenance(StructureRef{fv, k}),
                  hg.structure_maintenance(StructureRef{hv, k}));
      }
      ASSERT_EQ(fg.ViewQueries(fv), hg.ViewQueries(hv));
      const size_t nq = fg.ViewQueries(fv).size();
      for (size_t pos = 0; pos < nq; ++pos) {
        ASSERT_EQ(fg.ViewCostAt(fv, pos), hg.ViewCostAt(hv, pos));
        for (int32_t k = 0; k < fg.num_indexes(fv); ++k) {
          ASSERT_EQ(fg.IndexCostAt(fv, k, pos), hg.IndexCostAt(hv, k, pos))
              << "index " << k << " pos " << pos;
        }
      }
    }
  }
}

TEST(HierarchicalGraphEquivalenceTest, DegenerationMatchesFlatFatIndexes) {
  for (int n = 1; n <= 4; ++n) {
    CheckDegeneration(n, /*fat_indexes_only=*/true,
                      /*seed=*/100 + static_cast<uint64_t>(n),
                      /*maintenance_per_row=*/0.0);
  }
}

TEST(HierarchicalGraphEquivalenceTest, DegenerationMatchesFlatAblation) {
  for (int n = 1; n <= 4; ++n) {
    CheckDegeneration(n, /*fat_indexes_only=*/false,
                      /*seed=*/200 + static_cast<uint64_t>(n),
                      /*maintenance_per_row=*/0.5);
  }
}

// ---- Status errors (satellite: no aborts on bad external input) ----

HierarchicalSchema TinySchema() {
  return HierarchicalSchema(
      {HierarchicalDimension{"a", {{"a0", 10}, {"a1", 4}}},
       HierarchicalDimension{"b", {{"b0", 6}}}});
}

TEST(HierarchicalGraphErrorTest, RejectsBadScalarOptions) {
  HierarchicalSchema schema = TinySchema();
  const std::vector<WeightedHQuery> w = UniformHWorkload(schema);
  EXPECT_EQ(TryBuildHierarchicalCubeGraph(schema, 0.5, w).status().code(),
            StatusCode::kInvalidArgument);
  HierarchicalGraphOptions bad_penalty;
  bad_penalty.raw_scan_penalty = 0.25;
  EXPECT_EQ(TryBuildHierarchicalCubeGraph(schema, 100.0, w, bad_penalty)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  HierarchicalGraphOptions bad_maintenance;
  bad_maintenance.maintenance_per_row = -1.0;
  EXPECT_EQ(TryBuildHierarchicalCubeGraph(schema, 100.0, w, bad_maintenance)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(HierarchicalGraphErrorTest, RejectsTooManyDimensions) {
  std::vector<HierarchicalDimension> dims;
  for (int d = 0; d < 9; ++d) {
    dims.push_back(
        HierarchicalDimension{"d" + std::to_string(d), {{"l0", 10}}});
  }
  HierarchicalSchema schema(std::move(dims));
  StatusOr<HierarchicalCubeGraph> fat =
      TryBuildHierarchicalCubeGraph(schema, 1000.0, {});
  EXPECT_EQ(fat.status().code(), StatusCode::kInvalidArgument);

  std::vector<HierarchicalDimension> seven;
  for (int d = 0; d < 7; ++d) {
    seven.push_back(
        HierarchicalDimension{"d" + std::to_string(d), {{"l0", 10}}});
  }
  HierarchicalSchema schema7(std::move(seven));
  HierarchicalGraphOptions ablation;
  ablation.fat_indexes_only = false;
  StatusOr<HierarchicalCubeGraph> all =
      TryBuildHierarchicalCubeGraph(schema7, 1000.0, {}, ablation);
  EXPECT_EQ(all.status().code(), StatusCode::kInvalidArgument);
}

TEST(HierarchicalGraphErrorTest, RejectsOversizedLattices) {
  // 8 dimensions × 5 levels: 6^8 ≈ 1.68M views > kMaxHierarchicalViews.
  std::vector<HierarchicalDimension> dims;
  for (int d = 0; d < 8; ++d) {
    std::vector<HierarchyLevel> levels;
    for (int l = 0; l < 5; ++l) {
      levels.push_back(
          HierarchyLevel{"l" + std::to_string(l),
                         static_cast<uint64_t>(1000 >> l) + 1});
    }
    dims.push_back(
        HierarchicalDimension{"d" + std::to_string(d), std::move(levels)});
  }
  HierarchicalSchema big(std::move(dims));
  StatusOr<HierarchicalCubeGraph> views =
      TryBuildHierarchicalCubeGraph(big, 1e6, {});
  EXPECT_EQ(views.status().code(), StatusCode::kInvalidArgument);

  // 8 dimensions × 2 levels: only 3^8 = 6561 views, but the 2^8 = 256
  // views with all 8 dimensions active carry 8! indexes each — over the
  // structure ceiling.
  std::vector<HierarchicalDimension> dims2;
  for (int d = 0; d < 8; ++d) {
    dims2.push_back(HierarchicalDimension{
        "d" + std::to_string(d), {{"fine", 100}, {"coarse", 10}}});
  }
  HierarchicalSchema wide(std::move(dims2));
  StatusOr<HierarchicalCubeGraph> structures =
      TryBuildHierarchicalCubeGraph(wide, 1e6, {});
  EXPECT_EQ(structures.status().code(), StatusCode::kInvalidArgument);
}

TEST(HierarchicalGraphErrorTest, RejectsMalformedWorkloads) {
  HierarchicalSchema schema = TinySchema();
  // Wrong number of roles.
  std::vector<WeightedHQuery> short_roles{
      WeightedHQuery{HSliceQuery({HDimRole{HDimRole::kGroupBy, 0}}), 1.0}};
  EXPECT_EQ(
      TryBuildHierarchicalCubeGraph(schema, 100.0, short_roles).status()
          .code(),
      StatusCode::kInvalidArgument);
  // Mentioned dimension at a non-proper level (select at ALL would break
  // column-class sharing; the builder must reject it up front).
  std::vector<WeightedHQuery> bad_level{WeightedHQuery{
      HSliceQuery({HDimRole{HDimRole::kSelect, 2},
                   HDimRole{HDimRole::kAbsent, 0}}),
      1.0}};
  EXPECT_EQ(
      TryBuildHierarchicalCubeGraph(schema, 100.0, bad_level).status()
          .code(),
      StatusCode::kInvalidArgument);
  // Negative frequency.
  std::vector<WeightedHQuery> bad_freq{WeightedHQuery{
      HSliceQuery({HDimRole{HDimRole::kGroupBy, 0},
                   HDimRole{HDimRole::kAbsent, 0}}),
      -2.0}};
  EXPECT_EQ(
      TryBuildHierarchicalCubeGraph(schema, 100.0, bad_freq).status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace olapidx
