#include "cost/hyperloglog.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace olapidx {
namespace {

TEST(HyperLogLogTest, EmptyEstimatesZero) {
  HyperLogLog hll(12);
  EXPECT_NEAR(hll.Estimate(), 0.0, 1e-9);
}

TEST(HyperLogLogTest, ExactForTinyCardinalities) {
  HyperLogLog hll(12);
  for (uint64_t v = 0; v < 10; ++v) hll.Add(v);
  // Linear-counting regime: essentially exact.
  EXPECT_NEAR(hll.Estimate(), 10.0, 1.0);
}

TEST(HyperLogLogTest, DuplicatesDoNotInflate) {
  HyperLogLog hll(12);
  for (int rep = 0; rep < 100; ++rep) {
    for (uint64_t v = 0; v < 50; ++v) hll.Add(v);
  }
  EXPECT_NEAR(hll.Estimate(), 50.0, 3.0);
}

class HyperLogLogAccuracyTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(HyperLogLogAccuracyTest, WithinExpectedError) {
  auto [precision, distinct] = GetParam();
  HyperLogLog hll(precision);
  SplitMix64 gen(42 ^ distinct);
  for (uint64_t i = 0; i < distinct; ++i) {
    hll.Add(gen.Next());
  }
  double std_error = 1.04 / std::sqrt(static_cast<double>(1u << precision));
  // Allow 4 standard errors plus a small absolute cushion.
  double tolerance = 4.0 * std_error * static_cast<double>(distinct) + 3.0;
  EXPECT_NEAR(hll.Estimate(), static_cast<double>(distinct), tolerance)
      << "p=" << precision << " n=" << distinct;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HyperLogLogAccuracyTest,
    ::testing::Combine(::testing::Values(10, 12, 14),
                       ::testing::Values(100u, 5'000u, 100'000u,
                                         1'000'000u)));

TEST(HyperLogLogTest, MergeEqualsUnion) {
  HyperLogLog a(12), b(12), u(12);
  SplitMix64 gen(7);
  for (int i = 0; i < 20'000; ++i) {
    uint64_t v = gen.Next();
    if (i % 2 == 0) {
      a.Add(v);
    } else {
      b.Add(v);
    }
    u.Add(v);
  }
  a.Merge(b);
  EXPECT_NEAR(a.Estimate(), u.Estimate(), 1e-9);
}

TEST(HyperLogLogTest, MergeDisjointAdds) {
  HyperLogLog a(12), b(12);
  SplitMix64 ga(1), gb(2);
  for (int i = 0; i < 10'000; ++i) a.Add(ga.Next());
  for (int i = 0; i < 10'000; ++i) b.Add(gb.Next());
  a.Merge(b);
  EXPECT_NEAR(a.Estimate(), 20'000.0, 20'000.0 * 0.15);
}

TEST(HyperLogLogDeathTest, PrecisionBounds) {
  EXPECT_DEATH(HyperLogLog(3), "CHECK");
  EXPECT_DEATH(HyperLogLog(19), "CHECK");
}

TEST(HyperLogLogDeathTest, MergePrecisionMismatch) {
  HyperLogLog a(10), b(12);
  EXPECT_DEATH(a.Merge(b), "CHECK");
}

}  // namespace
}  // namespace olapidx
