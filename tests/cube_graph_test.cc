#include "core/cube_graph.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "data/tpcd.h"

namespace olapidx {
namespace {

class CubeGraphTest : public ::testing::Test {
 protected:
  CubeGraphTest()
      : schema_(TpcdSchema()),
        sizes_(TpcdPaperSizes()),
        lattice_(schema_),
        workload_(AllSliceQueries(lattice_)),
        cube_(BuildCubeGraph(schema_, sizes_, workload_)) {}

  CubeSchema schema_;
  ViewSizes sizes_;
  CubeLattice lattice_;
  Workload workload_;
  CubeGraph cube_;
};

TEST_F(CubeGraphTest, StructureCounts) {
  // 3 dims: 8 views, 23 fat structures, 27 queries.
  EXPECT_EQ(cube_.graph.num_views(), 8u);
  EXPECT_EQ(cube_.graph.num_structures(),
            CubeLattice::TotalFatStructures(3));
  EXPECT_EQ(cube_.graph.num_queries(), 27u);
}

TEST_F(CubeGraphTest, ViewSpacesMatchSizes) {
  for (uint32_t v = 0; v < cube_.graph.num_views(); ++v) {
    EXPECT_EQ(cube_.graph.view_space(v), sizes_[v]);
    // Index spaces equal the view space.
    for (int32_t k = 0; k < cube_.graph.num_indexes(v); ++k) {
      EXPECT_EQ(cube_.graph.index_space(v, k), sizes_[v]);
    }
  }
}

TEST_F(CubeGraphTest, DefaultCostIsBaseViewSize) {
  for (uint32_t q = 0; q < cube_.graph.num_queries(); ++q) {
    EXPECT_EQ(cube_.graph.query_default_cost(q), 6e6);
  }
}

TEST_F(CubeGraphTest, EdgesOnlyForAnsweringViews) {
  for (uint32_t v = 0; v < cube_.graph.num_views(); ++v) {
    AttributeSet attrs = cube_.view_attrs[v];
    for (uint32_t q : cube_.graph.ViewQueries(v)) {
      EXPECT_TRUE(cube_.queries[q].AnswerableFrom(attrs));
    }
  }
}

TEST_F(CubeGraphTest, ViewNamesReadable) {
  EXPECT_EQ(cube_.graph.view_name(lattice_.BaseView()), "psc");
  EXPECT_EQ(cube_.graph.view_name(0), "none");
}

TEST_F(CubeGraphTest, IndexEdgesOnlyWhenCheaperThanScan) {
  for (uint32_t v = 0; v < cube_.graph.num_views(); ++v) {
    const auto& queries = cube_.graph.ViewQueries(v);
    for (size_t pos = 0; pos < queries.size(); ++pos) {
      double scan = cube_.graph.ViewCostAt(v, pos);
      EXPECT_FALSE(std::isinf(scan));  // every answering view has a scan edge
      for (int32_t k = 0; k < cube_.graph.num_indexes(v); ++k) {
        double c = cube_.graph.IndexCostAt(v, k, pos);
        if (!std::isinf(c)) {
          EXPECT_LT(c, scan);
        }
      }
    }
  }
}

TEST_F(CubeGraphTest, AllIndexesAblationGrowsStructureCount) {
  CubeGraphOptions opts;
  opts.fat_indexes_only = false;
  CubeGraph all = BuildCubeGraph(schema_, sizes_, workload_, opts);
  EXPECT_GT(all.graph.num_structures(), cube_.graph.num_structures());
  // 8 views + Σ all ordered-subset indexes: 3·1 + 3·4 + 1·15 = 30 indexes.
  EXPECT_EQ(all.graph.num_structures(), 8u + 3u + 12u + 15u);
}

TEST_F(CubeGraphTest, CustomDefaultCost) {
  CubeGraphOptions opts;
  opts.default_query_cost = 123.0;
  CubeGraph cg = BuildCubeGraph(schema_, sizes_, workload_, opts);
  EXPECT_EQ(cg.graph.query_default_cost(0), 123.0);
}

TEST_F(CubeGraphTest, FrequenciesPropagate) {
  Workload w;
  w.Add(SliceQuery(AttributeSet::Of({0}), AttributeSet()), 5.0);
  CubeGraph cg = BuildCubeGraph(schema_, sizes_, w);
  ASSERT_EQ(cg.graph.num_queries(), 1u);
  EXPECT_EQ(cg.graph.query_frequency(0), 5.0);
}

TEST(CubeGraphLimitsTest, NineDimensionsWithFatIndexesRejected) {
  SyntheticCube cube = UniformSyntheticCube(9, 10, 0.5);
  Workload w;
  w.Add(SliceQuery(AttributeSet::Of({0}), AttributeSet()));
  StatusOr<CubeGraph> built =
      TryBuildCubeGraph(cube.schema, cube.sizes, w, CubeGraphOptions{});
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(built.status().message().find("8 dimensions"), std::string::npos)
      << built.status().ToString();
}

TEST(CubeGraphLimitsTest, SevenDimensionAblationRejected) {
  SyntheticCube cube = UniformSyntheticCube(7, 10, 0.5);
  Workload w;
  w.Add(SliceQuery(AttributeSet::Of({0}), AttributeSet()));
  CubeGraphOptions options;
  options.fat_indexes_only = false;
  StatusOr<CubeGraph> built =
      TryBuildCubeGraph(cube.schema, cube.sizes, w, options);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(built.status().message().find("6 dimensions"), std::string::npos)
      << built.status().ToString();
}

TEST(CubeGraphLimitsTest, SevenDimensionFatBuildAccepted) {
  // 7 is within the fat-index limit; the same cube is rejected only for
  // the ablation family.
  SyntheticCube cube = UniformSyntheticCube(7, 10, 0.5);
  Workload w;
  w.Add(SliceQuery(AttributeSet::Of({0, 3}), AttributeSet::Of({5})));
  StatusOr<CubeGraph> built =
      TryBuildCubeGraph(cube.schema, cube.sizes, w, CubeGraphOptions{});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->graph.num_queries(), 1u);
}

}  // namespace
}  // namespace olapidx
