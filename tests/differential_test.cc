// Differential test oracle: three independent implementations of the same
// semantics are checked against each other on randomized small instances.
//
//  1. Engine vs analytical model. On a fully materialized random cube
//     (every view, every fat index, exact sizes) the linear cost model's
//     predictions are not estimates — they are exact. The planner's chosen
//     cost must equal an independently computed minimum over all access
//     paths, and the *measured* rows-processed, summed over the full
//     cross-product of selection constants, must hit the closed-form count
//     implied by |V| / |E| (each view row is touched once per combination
//     of the non-prefix selection values).
//
//  2. Greedy vs exhaustive optimal. On random unit-space graphs (the
//     setting of Theorem 5.1) and on small cube graphs, r-greedy and
//     inner-level greedy can never beat branch-and-bound, and their
//     benefit must respect the Section 5 guarantee against the proven
//     optimum at the space they actually used — checked per run, not just
//     in aggregate.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/cube_graph.h"
#include "cost/calibrated_cost_model.h"
#include "core/guarantees.h"
#include "core/inner_greedy.h"
#include "core/optimal.h"
#include "core/r_greedy.h"
#include "cost/linear_cost_model.h"
#include "data/fact_generator.h"
#include "data/synthetic.h"
#include "engine/executor.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

// ---------------------------------------------------------------------------
// Part 1: executor vs linear cost model.
// ---------------------------------------------------------------------------

TEST_P(DifferentialTest, ExecutorAgreesWithLinearCostModel) {
  uint64_t seed = GetParam();
  Pcg32 rng(seed);

  int n = 2 + static_cast<int>(seed % 2);  // 2 or 3 dimensions
  std::vector<Dimension> dims;
  for (int a = 0; a < n; ++a) {
    dims.push_back(Dimension{std::string(1, static_cast<char>('a' + a)),
                             2 + rng.NextBounded(4)});
  }
  CubeSchema schema(dims);
  FactTable fact =
      GenerateUniformFacts(schema, 60 + rng.NextBounded(140), seed * 31);
  Catalog catalog(&fact);
  CubeLattice lattice(schema);

  // Materialize everything: with every view present, every index prefix
  // resolves to an exactly materialized view, so the planner's estimates
  // coincide with the model on exact sizes.
  ViewSizes sizes(n);
  for (uint32_t v = 0; v < lattice.num_views(); ++v) {
    AttributeSet attrs = lattice.AttrsOf(v);
    sizes.Set(attrs, static_cast<double>(catalog.MaterializeView(attrs)));
    for (const IndexKey& key : lattice.FatIndexes(v)) {
      ASSERT_TRUE(catalog.BuildIndex(attrs, key).ok());
    }
  }
  LinearCostModel model(&sizes);
  Executor executor(&catalog);

  Workload all = AllSliceQueries(lattice);
  for (const WeightedQuery& wq : all.queries()) {
    const SliceQuery& q = wq.query;

    // Independent minimum over every access path the planner may use.
    double best = static_cast<double>(fact.num_rows());  // raw scan
    for (uint32_t v = 0; v < lattice.num_views(); ++v) {
      AttributeSet attrs = lattice.AttrsOf(v);
      if (!q.AnswerableFrom(attrs)) continue;
      best = std::min(best, model.ScanCost(attrs));
      for (const IndexKey& key : lattice.FatIndexes(v)) {
        best = std::min(best, model.QueryCost(q, attrs, key));
      }
    }

    std::vector<Executor::PlanChoice> plans = executor.Explain(q);
    ASSERT_FALSE(plans.empty());
    ASSERT_TRUE(plans.front().chosen);
    EXPECT_DOUBLE_EQ(plans.front().estimated_cost, best)
        << q.ToString(schema.names()) << " seed " << seed;

    // Enumerate the full cross-product of selection constants and sum the
    // measured rows. With E the index prefix actually usable for q, each
    // row of the chosen table is touched for exactly |combos| / domain(E)
    // of the combinations, so the sum is a closed-form integer — an exact
    // measured-cost identity, no averaging.
    std::vector<int> sel = q.selection().ToVector();
    uint64_t combos = 1;
    for (int a : sel) combos *= schema.dimension(a).cardinality;

    std::vector<uint32_t> values(sel.size(), 0);
    uint64_t measured_sum = 0;
    ExecutionStats stats;
    for (uint64_t c = 0; c < combos; ++c) {
      executor.Execute(q, values, &stats);
      EXPECT_DOUBLE_EQ(stats.estimated_cost, best);
      measured_sum += stats.rows_processed;
      for (size_t i = 0; i < values.size(); ++i) {  // odometer
        if (++values[i] <
            static_cast<uint32_t>(schema.dimension(sel[i]).cardinality)) {
          break;
        }
        values[i] = 0;
      }
    }

    uint64_t table_rows = stats.used_raw
                              ? fact.num_rows()
                              : catalog.view(stats.view).num_rows();
    AttributeSet prefix = stats.index.LongestSelectionPrefix(q.selection());
    uint64_t prefix_domain = 1;
    for (int a : prefix.ToVector()) {
      prefix_domain *= schema.dimension(a).cardinality;
    }
    ASSERT_EQ(combos % prefix_domain, 0u);  // prefix ⊆ selection
    EXPECT_EQ(measured_sum, table_rows * (combos / prefix_domain))
        << q.ToString(schema.names()) << " seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Part 2: greedy vs exhaustive optimal.
// ---------------------------------------------------------------------------

// A random graph with unit structure sizes — the setting in which Theorem
// 5.1's bound is stated (benefit vs the optimum at the space used).
QueryViewGraph RandomUnitGraph(uint64_t seed) {
  Pcg32 rng(seed);
  QueryViewGraph g;
  uint32_t num_views = 2 + rng.NextBounded(3);
  for (uint32_t v = 0; v < num_views; ++v) {
    g.AddView("v" + std::to_string(v), 1.0);
    uint32_t num_indexes = rng.NextBounded(4);
    for (uint32_t i = 0; i < num_indexes; ++i) {
      g.AddIndex(v, "i" + std::to_string(v) + "_" + std::to_string(i), 1.0);
    }
  }
  uint32_t num_queries = 3 + rng.NextBounded(5);
  for (uint32_t qi = 0; qi < num_queries; ++qi) {
    uint32_t q = g.AddQuery("q" + std::to_string(qi), 100.0,
                            1.0 + rng.NextBounded(3));
    for (uint32_t v = 0; v < num_views; ++v) {
      if (rng.NextBounded(5) >= 3) continue;
      double scan = 20.0 + rng.NextBounded(81);
      g.AddViewEdge(q, v, scan);
      for (int32_t k = 0; k < g.num_indexes(v); ++k) {
        if (rng.NextBounded(2) == 0) {
          g.AddIndexEdge(q, v, k,
                         1.0 + rng.NextBounded(static_cast<uint32_t>(scan)));
        }
      }
    }
  }
  g.Finalize();
  return g;
}

TEST_P(DifferentialTest, GreedyRespectsOptimalAndGuaranteeOnUnitGraphs) {
  QueryViewGraph g = RandomUnitGraph(GetParam());
  for (double budget : {1.0, 2.0, 4.0, 7.0}) {
    for (int r = 1; r <= 3; ++r) {
      SelectionResult greedy = RGreedy(g, budget, RGreedyOptions{.r = r});
      ASSERT_TRUE(greedy.status.ok());
      SelectionResult opt = BranchAndBoundOptimal(g, greedy.space_used);
      ASSERT_TRUE(opt.proven_optimal);
      // τ can never undercut the exhaustive optimum at the same space...
      EXPECT_LE(opt.final_cost,
                greedy.final_cost + 1e-9 * (1.0 + greedy.final_cost))
          << "r " << r << " budget " << budget;
      // ...and the benefit respects the per-run Theorem 5.1 bound.
      EXPECT_GE(greedy.Benefit(),
                RGreedyGuarantee(r) * opt.Benefit() - 1e-6)
          << "r " << r << " budget " << budget;
    }
    SelectionResult inner = InnerLevelGreedy(g, budget);
    ASSERT_TRUE(inner.status.ok());
    SelectionResult opt = BranchAndBoundOptimal(g, inner.space_used);
    ASSERT_TRUE(opt.proven_optimal);
    EXPECT_LE(opt.final_cost,
              inner.final_cost + 1e-9 * (1.0 + inner.final_cost));
    EXPECT_GE(inner.Benefit(), InnerLevelGuarantee() * opt.Benefit() - 1e-6)
        << "budget " << budget;
  }
}

TEST_P(DifferentialTest, GreedyTauDominatedByOptimalOnSmallCubes) {
  uint64_t seed = GetParam();
  // n = 2 keeps branch-and-bound exhaustive over all 8 structures; the
  // non-unit spaces mean Theorem 5.1 no longer applies, but optimality
  // domination must still hold.
  SyntheticCube cube = RandomSyntheticCube(2, 3, 50, 0.2, seed);
  CubeLattice lattice(cube.schema);
  CubeGraphOptions opts;
  opts.raw_scan_penalty = 2.0;
  CubeGraph cg = BuildCubeGraph(cube.schema, cube.sizes,
                                AllSliceQueries(lattice), opts);
  double total = cube.sizes.TotalViewSpace() +
                 cube.sizes.TotalFatIndexSpace();
  // The greedy loop runs while SpaceUsed() < budget, so its final pick may
  // overshoot the nominal budget (the paper's "until the space is
  // consumed" semantics). The fair exhaustive baseline is therefore the
  // optimum at the space each run actually used, exactly as in the
  // unit-graph test above. The relative slack on that space keeps the
  // solver from rejecting greedy's own pick set when its depth-first
  // summation order rounds one ulp above greedy's incremental sum.
  auto baseline_space = [](const SelectionResult& run) {
    return run.space_used * (1.0 + 1e-12);
  };
  for (double frac : {0.15, 0.4, 0.8}) {
    double budget = frac * total;
    for (int r = 1; r <= 2; ++r) {
      SelectionResult greedy =
          RGreedy(cg.graph, budget, RGreedyOptions{.r = r});
      SelectionResult opt =
          BranchAndBoundOptimal(cg.graph, baseline_space(greedy));
      ASSERT_TRUE(opt.proven_optimal) << "frac " << frac;
      EXPECT_LE(opt.final_cost,
                greedy.final_cost + 1e-9 * (1.0 + greedy.final_cost))
          << "r " << r << " frac " << frac << " seed " << seed;
    }
    SelectionResult inner = InnerLevelGreedy(cg.graph, budget);
    SelectionResult opt =
        BranchAndBoundOptimal(cg.graph, baseline_space(inner));
    ASSERT_TRUE(opt.proven_optimal) << "frac " << frac;
    EXPECT_LE(opt.final_cost,
              inner.final_cost + 1e-9 * (1.0 + inner.final_cost))
        << "frac " << frac << " seed " << seed;
  }
}

TEST_P(DifferentialTest, GreedyTauDominatedByOptimalUnderCalibratedModel) {
  // Same domination oracle, but with the edge costs produced by a
  // calibrated model through the CostModel seam: greedy-vs-exhaustive
  // domination is a property of the resulting graph and must survive any
  // monotone cost model, not just the paper's |C|/|E|.
  uint64_t seed = GetParam();
  SyntheticCube cube = RandomSyntheticCube(2, 3, 50, 0.2, seed);
  CubeLattice lattice(cube.schema);
  CubeGraphOptions opts;
  opts.raw_scan_penalty = 2.0;
  opts.cost_model = std::make_shared<CalibratedCostModel>(
      CalibrationCoefficients{5.0, 120.0, 800.0});
  CubeGraph cg = BuildCubeGraph(cube.schema, cube.sizes,
                                AllSliceQueries(lattice), opts);
  double total = cube.sizes.TotalViewSpace() +
                 cube.sizes.TotalFatIndexSpace();
  auto baseline_space = [](const SelectionResult& run) {
    return run.space_used * (1.0 + 1e-12);
  };
  for (double frac : {0.15, 0.4, 0.8}) {
    double budget = frac * total;
    for (int r = 1; r <= 2; ++r) {
      SelectionResult greedy =
          RGreedy(cg.graph, budget, RGreedyOptions{.r = r});
      SelectionResult opt =
          BranchAndBoundOptimal(cg.graph, baseline_space(greedy));
      ASSERT_TRUE(opt.proven_optimal) << "frac " << frac;
      EXPECT_LE(opt.final_cost,
                greedy.final_cost + 1e-9 * (1.0 + greedy.final_cost))
          << "r " << r << " frac " << frac << " seed " << seed;
    }
    SelectionResult inner = InnerLevelGreedy(cg.graph, budget);
    SelectionResult opt =
        BranchAndBoundOptimal(cg.graph, baseline_space(inner));
    ASSERT_TRUE(opt.proven_optimal) << "frac " << frac;
    EXPECT_LE(opt.final_cost,
              inner.final_cost + 1e-9 * (1.0 + inner.final_cost))
        << "frac " << frac << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace olapidx
