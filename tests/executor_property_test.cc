// Randomized differential testing of the executor: for random schemas,
// data, physical designs, and selection constants, Execute() must agree
// with the naive full-scan reference on every slice-query shape, and its
// rows-processed accounting must never exceed the chosen table's size.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/fact_generator.h"
#include "engine/executor.h"
#include "engine/physical_design.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

class ExecutorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorPropertyTest, AgreesWithNaiveEverywhere) {
  uint64_t seed = GetParam();
  Pcg32 rng(seed);

  // Random 3-dimensional schema with small cardinalities.
  std::vector<Dimension> dims;
  for (int a = 0; a < 3; ++a) {
    dims.push_back(Dimension{std::string(1, static_cast<char>('a' + a)),
                             2 + rng.NextBounded(9)});
  }
  CubeSchema schema(dims);
  FactTable fact =
      GenerateUniformFacts(schema, 100 + rng.NextBounded(400), seed * 7);
  Catalog catalog(&fact);

  // Random physical design: each view materialized with probability 1/2,
  // each of its fat indexes with probability 1/3.
  CubeLattice lattice(schema);
  std::vector<PhysicalDesignItem> items;
  for (uint32_t v = 1; v < lattice.num_views(); ++v) {
    if (rng.NextBounded(2) == 0) continue;
    AttributeSet attrs = lattice.AttrsOf(v);
    items.push_back(PhysicalDesignItem{attrs, IndexKey()});
    for (const IndexKey& key : lattice.FatIndexes(v)) {
      if (rng.NextBounded(3) == 0) {
        items.push_back(PhysicalDesignItem{attrs, key});
      }
    }
  }
  ASSERT_TRUE(MaterializePhysicalDesign(catalog, items).ok());

  Executor executor(&catalog);
  Workload all = AllSliceQueries(lattice);
  for (const WeightedQuery& wq : all.queries()) {
    std::vector<uint32_t> values;
    for (int a : wq.query.selection().ToVector()) {
      values.push_back(rng.NextBounded(
          static_cast<uint32_t>(schema.dimension(a).cardinality)));
    }
    ExecutionStats stats;
    GroupedResult fast = executor.Execute(wq.query, values, &stats);
    GroupedResult naive = executor.ExecuteNaive(wq.query, values);
    ASSERT_EQ(fast.num_rows(), naive.num_rows())
        << wq.query.ToString(schema.names()) << " seed " << seed;
    for (size_t r = 0; r < fast.num_rows(); ++r) {
      ASSERT_EQ(fast.keys[r], naive.keys[r]);
      ASSERT_NEAR(fast.sums[r], naive.sums[r], 1e-6);
    }
    // Accounting sanity: never touch more rows than the chosen table has.
    uint64_t table_rows =
        stats.used_raw
            ? fact.num_rows()
            : catalog.view(stats.view).num_rows();
    EXPECT_LE(stats.rows_processed, table_rows);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace olapidx
