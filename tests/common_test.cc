#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "common/format.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/backoff.h"
#include "common/journal.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"

namespace olapidx {
namespace {

TEST(Pcg32Test, Deterministic) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Pcg32 c(124);
  bool any_different = false;
  Pcg32 a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Pcg32Test, BoundedStaysInRange) {
  Pcg32 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(Pcg32Test, BoundedRoughlyUniform) {
  Pcg32 rng(99);
  constexpr int kBuckets = 8;
  int counts[kBuckets] = {0};
  constexpr int kDraws = 80'000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Pcg32Test, DoubleInUnitInterval) {
  Pcg32 rng(5);
  for (int i = 0; i < 10'000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfSamplerTest, ZeroSkewIsUniform) {
  ZipfSampler zipf(4, 0.0);
  for (uint32_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(zipf.Probability(k), 0.25, 1e-12);
  }
}

TEST(ZipfSamplerTest, ProbabilitiesDecreaseAndSumToOne) {
  ZipfSampler zipf(100, 1.0);
  double total = 0.0;
  double prev = 2.0;
  for (uint32_t k = 0; k < 100; ++k) {
    double p = zipf.Probability(k);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, SampleMatchesProbability) {
  ZipfSampler zipf(10, 1.2);
  Pcg32 rng(11);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(rng)];
  for (uint32_t k = 0; k < 10; ++k) {
    double expected = zipf.Probability(k) * kDraws;
    EXPECT_NEAR(counts[k], expected, 5 * std::sqrt(expected) + 10);
  }
}

TEST(SplitMix64Test, Deterministic) {
  SplitMix64 a(1), b(1);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_EQ(a.Next(), b.Next());
}

TEST(FormatTest, RowCounts) {
  EXPECT_EQ(FormatRowCount(6e6), "6M");
  EXPECT_EQ(FormatRowCount(0.8e6), "0.8M");
  EXPECT_EQ(FormatRowCount(1.18e6), "1.18M");
  EXPECT_EQ(FormatRowCount(10'000), "10K");
  EXPECT_EQ(FormatRowCount(1), "1");
  EXPECT_EQ(FormatRowCount(2.5e9), "2.5G");
}

TEST(FormatTest, FixedAndPercent) {
  EXPECT_EQ(FormatFixed(0.7351, 2), "0.74");
  EXPECT_EQ(FormatPercent(0.395), "39.5%");
  EXPECT_EQ(FormatPercent(0.5, 0), "50%");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  // Just exercise the code path; rendering is eyeballed in benches.
  t.Print(stderr);
}

TEST(TablePrinterDeathTest, RowArityMismatch) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "CHECK");
}

TEST(StatusTest, OkAndErrorBasics) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status bad = Status::InvalidArgument("bad field");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.ToString(), "INVALID_ARGUMENT: bad field");
}

TEST(StatusTest, WithContextChainsOutward) {
  Status inner = Status::NotFound("dimension 'q'");
  Status outer = inner.WithContext("line 3").WithContext("parsing design");
  EXPECT_EQ(outer.message(), "parsing design: line 3: dimension 'q'");
  EXPECT_EQ(outer.code(), StatusCode::kNotFound);
  EXPECT_TRUE(Status::Ok().WithContext("ignored").ok());
}

TEST(StatusTest, InterruptionCodes) {
  EXPECT_TRUE(Status::DeadlineExceeded("d").IsInterruption());
  EXPECT_TRUE(Status::Cancelled("c").IsInterruption());
  EXPECT_TRUE(Status::ResourceExhausted("r").IsInterruption());
  EXPECT_FALSE(Status::InvalidArgument("i").IsInterruption());
  EXPECT_FALSE(Status::Unavailable("u").IsInterruption());
  EXPECT_FALSE(Status::Ok().IsInterruption());
}

TEST(StatusOrTest, ValueAndStatusAccess) {
  StatusOr<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  EXPECT_TRUE(good.status().ok());
  StatusOr<int> bad = Status::DataLoss("corrupt");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kDataLoss);
}

TEST(StatusOrDeathTest, ValueOfErrorAborts) {
  StatusOr<int> bad = Status::Internal("boom");
  EXPECT_DEATH((void)bad.value(), "CHECK");
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_micros(), INT64_MAX);
}

TEST(DeadlineTest, PastDeadlineIsExpired) {
  Deadline d = Deadline::AfterMillis(0);
  EXPECT_FALSE(d.infinite());
  EXPECT_TRUE(d.expired());
  EXPECT_LE(Deadline::AfterMicros(1).remaining_micros(), 1);
  EXPECT_GT(Deadline::AfterMillis(60'000).remaining_micros(), 0);
}

TEST(RunControlTest, DefaultIsUnlimited) {
  RunControl control;
  EXPECT_TRUE(control.unlimited());
  EXPECT_FALSE(control.StopRequested());
}

TEST(RunControlTest, StopSourcesAndPrecedence) {
  CancelToken token;
  RunControl control;
  control.cancel = &token;
  EXPECT_FALSE(control.unlimited());  // a token alone ends "unlimited"
  EXPECT_FALSE(control.StopRequested());
  token.Cancel();
  EXPECT_TRUE(control.StopRequested());
  EXPECT_EQ(control.StopStatus().code(), StatusCode::kCancelled);
  // With both the token fired and the deadline expired, cancellation wins.
  control.deadline = Deadline::AfterMillis(0);
  EXPECT_EQ(control.StopStatus().code(), StatusCode::kCancelled);
  // Deadline alone reports DeadlineExceeded.
  RunControl timed;
  timed.deadline = Deadline::AfterMillis(0);
  EXPECT_TRUE(timed.StopRequested());
  EXPECT_EQ(timed.StopStatus().code(), StatusCode::kDeadlineExceeded);
  // max_steps is the algorithm's business, not StopRequested()'s.
  RunControl stepped;
  stepped.max_steps = 3;
  EXPECT_FALSE(stepped.unlimited());
  EXPECT_FALSE(stepped.StopRequested());
}

TEST(ThreadPoolTest, TryParallelForPropagatesTheFailingChunk) {
  ThreadPool pool(4);
  // Exactly one chunk fails: its Status must come back verbatim (chunks
  // skipped after the failure stay OK and must not mask it).
  Status s = pool.TryParallelFor(100, [](size_t, size_t, size_t chunk) {
    if (chunk == 2) return Status::Unavailable("chunk 2");
    return Status::Ok();
  });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.message(), "chunk 2");
}

TEST(ThreadPoolTest, TryParallelForReportsLowestChunkThatRan) {
  ThreadPool pool(4);
  // Every chunk fails with its own tag; whichever subset actually ran, the
  // reported Status is the lowest-numbered chunk among them.
  Status s = pool.TryParallelFor(100, [](size_t, size_t, size_t chunk) {
    return Status::Unavailable("chunk " + std::to_string(chunk));
  });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message().rfind("chunk ", 0), 0u) << s.ToString();
}

TEST(ThreadPoolTest, TryParallelForOkWhenAllChunksSucceed) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  Status s = pool.TryParallelFor(
      1000, [&](size_t begin, size_t end, size_t) {
        total += static_cast<int>(end - begin);
        return Status::Ok();
      });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPoolTest, PoolSurvivesRepeatedFailures) {
  // A failing job must not poison the pool or wedge its destructor.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    Status s = pool.TryParallelFor(64, [&](size_t, size_t, size_t chunk) {
      if (chunk % 2 == static_cast<size_t>(round % 2)) {
        return Status::Internal("injected");
      }
      return Status::Ok();
    });
    EXPECT_FALSE(s.ok());
  }
  std::atomic<int> total{0};
  EXPECT_TRUE(pool.TryParallelFor(10, [&](size_t begin, size_t end,
                                          size_t) {
                    total += static_cast<int>(end - begin);
                    return Status::Ok();
                  })
                  .ok());
  EXPECT_EQ(total.load(), 10);
  // Destructor joins cleanly at scope exit (deadlock would hang the test).
}

TEST(ThreadPoolTest, TwoFailingChunksLowestWinsEveryRun) {
  // The deterministic-failure contract: with chunks 2 and 5 both failing,
  // the reported Status is chunk 2's on every run, regardless of which
  // worker thread reaches which chunk first.
  ThreadPool pool(8);
  for (int round = 0; round < 100; ++round) {
    Status s = pool.TryParallelFor(64, [](size_t, size_t, size_t chunk) {
      if (chunk == 2 || chunk == 5) {
        return Status::Unavailable("chunk " + std::to_string(chunk));
      }
      return Status::Ok();
    });
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.message(), "chunk 2") << "round " << round;
  }
}

TEST(BackoffTest, RetriesTransientFailuresThenSucceeds) {
  int calls = 0;
  size_t retries = 0;
  std::vector<int64_t> delays;
  Status s = RetryWithBackoff(
      RetryPolicy{}, Deadline::Infinite(),
      [&]() {
        ++calls;
        return calls < 3 ? Status::Unavailable("flaky") : Status::Ok();
      },
      &retries, [&](int64_t micros) { delays.push_back(micros); });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
  // The schedule is deterministic: base, then base * multiplier.
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_EQ(delays[0], 200);
  EXPECT_EQ(delays[1], 400);
}

TEST(BackoffTest, NonTransientFailuresAreNotRetried) {
  int calls = 0;
  size_t retries = 0;
  Status s = RetryWithBackoff(
      RetryPolicy{}, Deadline::Infinite(),
      [&]() {
        ++calls;
        return Status::InvalidArgument("caller bug");
      },
      &retries, [](int64_t) {});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retries, 0u);
}

TEST(BackoffTest, AttemptBudgetReturnsLastTransientStatus) {
  int calls = 0;
  Status s = RetryWithBackoff(
      RetryPolicy{}, Deadline::Infinite(),
      [&]() {
        ++calls;
        return Status::Unavailable("still down");
      },
      nullptr, [](int64_t) {});
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);  // max_attempts
}

TEST(BackoffTest, ExpiredDeadlineShortCircuits) {
  int calls = 0;
  Status s = RetryWithBackoff(
      RetryPolicy{}, Deadline::AfterMillis(0),
      [&]() {
        ++calls;
        return Status::Ok();
      },
      nullptr, [](int64_t) {});
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(calls, 0);
}

TEST(JournalTest, HashHexRoundTrip) {
  for (uint64_t h : {0ull, 1ull, 0xdeadbeefcafef00dull, ~0ull}) {
    std::string hex = HashToHex(h);
    EXPECT_EQ(hex.size(), 16u);
    uint64_t parsed = 0;
    ASSERT_TRUE(ParseHexHash(hex, &parsed)) << hex;
    EXPECT_EQ(parsed, h);
  }
  uint64_t out = 0;
  EXPECT_FALSE(ParseHexHash("", &out));
  EXPECT_FALSE(ParseHexHash("abc", &out));                  // too short
  EXPECT_FALSE(ParseHexHash("00000000000000zz", &out));     // not hex
  EXPECT_FALSE(ParseHexHash("00000000000000000", &out));    // too long
}

TEST(JournalTest, AtomicWriteThenReadRoundTrips) {
  std::string path = ::testing::TempDir() + "olapidx_journal_rt.txt";
  std::remove(path.c_str());
  EXPECT_EQ(ReadFileToString(path).status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(AtomicWriteFile(path, "first\ncontents\n").ok());
  StatusOr<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, "first\ncontents\n");

  // Overwrite is atomic too: the new content fully replaces the old.
  ASSERT_TRUE(AtomicWriteFile(path, "second").ok());
  read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "second");
  EXPECT_TRUE(FileExists(path));
  std::remove(path.c_str());
}

TEST(StatusTest, ExitCodesAreDistinctAndLeaveUsageCodesFree) {
  EXPECT_EQ(StatusExitCode(Status::Ok()), 0);
  std::vector<Status> failures = {
      Status::InvalidArgument("x"), Status::NotFound("x"),
      Status::AlreadyExists("x"),   Status::FailedPrecondition("x"),
      Status::ResourceExhausted("x"), Status::DeadlineExceeded("x"),
      Status::Cancelled("x"),       Status::Unavailable("x"),
      Status::DataLoss("x"),        Status::Internal("x"),
      Status::Unimplemented("x")};
  std::vector<int> seen;
  for (const Status& s : failures) {
    int code = StatusExitCode(s);
    // 1 (generic shell failure) and 2 (usage errors) stay reserved.
    EXPECT_GE(code, 3) << StatusCodeName(s.code());
    EXPECT_LE(code, 13) << StatusCodeName(s.code());
    for (int prior : seen) EXPECT_NE(code, prior);
    seen.push_back(code);
  }
}

}  // namespace
}  // namespace olapidx
