#include <cmath>

#include <gtest/gtest.h>

#include "common/format.h"
#include "common/rng.h"
#include "common/table_printer.h"

namespace olapidx {
namespace {

TEST(Pcg32Test, Deterministic) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Pcg32 c(124);
  bool any_different = false;
  Pcg32 a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Pcg32Test, BoundedStaysInRange) {
  Pcg32 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(Pcg32Test, BoundedRoughlyUniform) {
  Pcg32 rng(99);
  constexpr int kBuckets = 8;
  int counts[kBuckets] = {0};
  constexpr int kDraws = 80'000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Pcg32Test, DoubleInUnitInterval) {
  Pcg32 rng(5);
  for (int i = 0; i < 10'000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfSamplerTest, ZeroSkewIsUniform) {
  ZipfSampler zipf(4, 0.0);
  for (uint32_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(zipf.Probability(k), 0.25, 1e-12);
  }
}

TEST(ZipfSamplerTest, ProbabilitiesDecreaseAndSumToOne) {
  ZipfSampler zipf(100, 1.0);
  double total = 0.0;
  double prev = 2.0;
  for (uint32_t k = 0; k < 100; ++k) {
    double p = zipf.Probability(k);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, SampleMatchesProbability) {
  ZipfSampler zipf(10, 1.2);
  Pcg32 rng(11);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(rng)];
  for (uint32_t k = 0; k < 10; ++k) {
    double expected = zipf.Probability(k) * kDraws;
    EXPECT_NEAR(counts[k], expected, 5 * std::sqrt(expected) + 10);
  }
}

TEST(SplitMix64Test, Deterministic) {
  SplitMix64 a(1), b(1);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_EQ(a.Next(), b.Next());
}

TEST(FormatTest, RowCounts) {
  EXPECT_EQ(FormatRowCount(6e6), "6M");
  EXPECT_EQ(FormatRowCount(0.8e6), "0.8M");
  EXPECT_EQ(FormatRowCount(1.18e6), "1.18M");
  EXPECT_EQ(FormatRowCount(10'000), "10K");
  EXPECT_EQ(FormatRowCount(1), "1");
  EXPECT_EQ(FormatRowCount(2.5e9), "2.5G");
}

TEST(FormatTest, FixedAndPercent) {
  EXPECT_EQ(FormatFixed(0.7351, 2), "0.74");
  EXPECT_EQ(FormatPercent(0.395), "39.5%");
  EXPECT_EQ(FormatPercent(0.5, 0), "50%");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  // Just exercise the code path; rendering is eyeballed in benches.
  t.Print(stderr);
}

TEST(TablePrinterDeathTest, RowArityMismatch) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "CHECK");
}

}  // namespace
}  // namespace olapidx
