#include "core/two_step.h"

#include <gtest/gtest.h>

#include "core/r_greedy.h"
#include "data/example_graphs.h"

namespace olapidx {
namespace {

// Graph with a strong view and a strong index on it.
QueryViewGraph ViewAndIndexGraph() {
  QueryViewGraph g;
  uint32_t v = g.AddView("v", 2.0);
  int32_t idx = g.AddIndex(v, "idx", 2.0);
  uint32_t q0 = g.AddQuery("q0", 100.0);
  uint32_t q1 = g.AddQuery("q1", 100.0);
  g.AddViewEdge(q0, v, 10.0);
  g.AddViewEdge(q1, v, 100.0);
  g.AddIndexEdge(q1, v, idx, 5.0);
  g.Finalize();
  return g;
}

TEST(HruViewGreedyTest, NeverPicksIndexes) {
  QueryViewGraph g = ViewAndIndexGraph();
  SelectionResult r = HruViewGreedy(g, 100.0);
  for (const StructureRef& s : r.picks) {
    EXPECT_TRUE(s.is_view());
  }
  EXPECT_NEAR(r.Benefit(), 90.0, 1e-9);  // only the view's scan benefit
}

TEST(HruViewGreedyTest, StrictFitSkipsOversizedViews) {
  QueryViewGraph g;
  uint32_t big = g.AddView("big", 10.0);
  uint32_t small = g.AddView("small", 1.0);
  uint32_t q0 = g.AddQuery("q0", 100.0);
  uint32_t q1 = g.AddQuery("q1", 100.0);
  g.AddViewEdge(q0, big, 1.0);    // benefit 99, ratio 9.9
  g.AddViewEdge(q1, small, 50.0);  // benefit 50, ratio 50
  g.Finalize();
  // Budget 5 with strict fit: big (space 10) never fits; small picked.
  SelectionResult strict = HruViewGreedy(g, 5.0, /*strict_fit=*/true);
  EXPECT_NEAR(strict.space_used, 1.0, 1e-9);
  EXPECT_NEAR(strict.Benefit(), 50.0, 1e-9);
  // Default HRU semantics: small first (better ratio), then the final
  // pick may overshoot.
  SelectionResult loose = HruViewGreedy(g, 5.0, /*strict_fit=*/false);
  EXPECT_NEAR(loose.space_used, 11.0, 1e-9);
  EXPECT_NEAR(loose.Benefit(), 149.0, 1e-9);
}

TEST(TwoStepTest, SplitsBudgetBetweenViewsAndIndexes) {
  QueryViewGraph g = ViewAndIndexGraph();
  SelectionResult r = TwoStep(g, 4.0, TwoStepOptions{.index_fraction = 0.5});
  // Stage 1 (budget 2): picks the view. Stage 2 (budget 2): its index.
  ASSERT_EQ(r.picks.size(), 2u);
  EXPECT_TRUE(r.picks[0].is_view());
  EXPECT_FALSE(r.picks[1].is_view());
  EXPECT_NEAR(r.Benefit(), 90.0 + 95.0, 1e-9);
}

TEST(TwoStepTest, ZeroIndexFractionEqualsViewOnlyGreedy) {
  QueryViewGraph g = Figure2Instance();
  SelectionResult two = TwoStep(g, kFigure2Budget,
                                TwoStepOptions{.index_fraction = 0.0});
  SelectionResult hru = HruViewGreedy(g, kFigure2Budget);
  EXPECT_NEAR(two.Benefit(), hru.Benefit(), 1e-9);
  EXPECT_EQ(two.picks.size(), hru.picks.size());
}

TEST(TwoStepTest, AllIndexFractionSelectsNothing) {
  // With no view budget there are no views, hence no legal indexes.
  QueryViewGraph g = Figure2Instance();
  SelectionResult r = TwoStep(g, kFigure2Budget,
                              TwoStepOptions{.index_fraction = 1.0});
  EXPECT_TRUE(r.picks.empty());
  EXPECT_NEAR(r.Benefit(), 0.0, 1e-12);
}

TEST(TwoStepTest, OneStepBeatsTwoStepOnFigure2) {
  // The paper's central claim: integrating the steps wins.
  QueryViewGraph g = Figure2Instance();
  SelectionResult two = TwoStep(g, kFigure2Budget,
                                TwoStepOptions{.index_fraction = 0.5});
  SelectionResult one = RGreedy(g, kFigure2Budget, RGreedyOptions{.r = 3});
  EXPECT_GT(one.Benefit(), two.Benefit());
}

TEST(TwoStepTest, IndexStageChargesOnlyIndexBudget) {
  // Views consume their own budget; the index stage its own.
  QueryViewGraph g = Figure2Instance();
  SelectionResult r = TwoStep(g, 8.0, TwoStepOptions{.index_fraction = 0.5});
  // View stage (budget 4): V3 (22), V1 (0 benefit → never picked),
  // so views picked have positive benefit only.
  double view_space = 0.0, index_space = 0.0;
  for (const StructureRef& s : r.picks) {
    if (s.is_view()) {
      view_space += g.view_space(s.view);
    } else {
      index_space += g.index_space(s.view, s.index);
    }
  }
  EXPECT_EQ(view_space + index_space, r.space_used);
  // The loose stage semantics allow each stage to overshoot by at most the
  // final pick (unit sizes here: exactly reaching its budget's ceiling).
  EXPECT_LE(view_space, 4.0 + 1.0);
  EXPECT_LE(index_space, 4.0 + 1.0);
}

TEST(TwoStepTest, StrictFitNeverOvershoots) {
  QueryViewGraph g = Figure2Instance();
  for (double frac : {0.25, 0.5, 0.75}) {
    SelectionResult r =
        TwoStep(g, 6.0, TwoStepOptions{.index_fraction = frac,
                                       .strict_fit = true});
    EXPECT_LE(r.space_used, 6.0 + 1e-9);
  }
}

}  // namespace
}  // namespace olapidx
