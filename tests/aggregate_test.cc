// Tests for the distributive aggregate states (SUM/COUNT/MIN/MAX/AVG)
// through materialized views, rollups, and the executor.

#include <cmath>

#include <gtest/gtest.h>

#include "data/fact_generator.h"
#include "engine/executor.h"

namespace olapidx {
namespace {

TEST(AggregateStateTest, MergeSemantics) {
  AggregateState a = AggregateState::OfMeasure(10.0);
  a.Merge(AggregateState::OfMeasure(2.0));
  a.Merge(AggregateState::OfMeasure(6.0));
  EXPECT_EQ(a.Value(AggregateKind::kSum), 18.0);
  EXPECT_EQ(a.Value(AggregateKind::kCount), 3.0);
  EXPECT_EQ(a.Value(AggregateKind::kMin), 2.0);
  EXPECT_EQ(a.Value(AggregateKind::kMax), 10.0);
  EXPECT_EQ(a.Value(AggregateKind::kAvg), 6.0);
}

TEST(AggregateStateTest, EmptyState) {
  AggregateState empty;
  EXPECT_EQ(empty.Value(AggregateKind::kSum), 0.0);
  EXPECT_EQ(empty.Value(AggregateKind::kCount), 0.0);
  EXPECT_EQ(empty.Value(AggregateKind::kAvg), 0.0);
  // Merging into empty adopts the other's extrema.
  AggregateState x = AggregateState::OfMeasure(5.0);
  empty.Merge(x);
  EXPECT_EQ(empty.Value(AggregateKind::kMin), 5.0);
  EXPECT_EQ(empty.Value(AggregateKind::kMax), 5.0);
}

CubeSchema SmallSchema() {
  return CubeSchema(
      {Dimension{"a", 5}, Dimension{"b", 4}, Dimension{"c", 3}});
}

TEST(MaterializedViewAggregatesTest, CountsAndExtremaCorrect) {
  CubeSchema schema = SmallSchema();
  FactTable fact(schema);
  fact.Append({0, 0, 0}, 5.0);
  fact.Append({0, 0, 1}, 3.0);
  fact.Append({0, 1, 0}, 9.0);
  fact.Append({1, 0, 0}, 1.0);
  MaterializedView v =
      MaterializedView::FromFactTable(fact, AttributeSet::Of({0}));
  ASSERT_EQ(v.num_rows(), 2u);
  // a = 0 group: measures {5, 3, 9}.
  EXPECT_EQ(v.aggregate(0).count, 3u);
  EXPECT_EQ(v.aggregate(0).min, 3.0);
  EXPECT_EQ(v.aggregate(0).max, 9.0);
  EXPECT_EQ(v.aggregate(0).sum, 17.0);
  // a = 1 group.
  EXPECT_EQ(v.aggregate(1).count, 1u);
  EXPECT_EQ(v.aggregate(1).min, 1.0);
}

TEST(MaterializedViewAggregatesTest, RollupPreservesAllAggregates) {
  CubeSchema schema = SmallSchema();
  FactTable fact = GenerateUniformFacts(schema, 500, /*seed=*/13);
  MaterializedView base = MaterializedView::FromFactTable(
      fact, AttributeSet::Of({0, 1, 2}));
  for (uint32_t mask = 0; mask < 8; ++mask) {
    AttributeSet attrs = AttributeSet::FromMask(mask);
    MaterializedView direct = MaterializedView::FromFactTable(fact, attrs);
    MaterializedView rolled = MaterializedView::FromView(base, attrs);
    ASSERT_EQ(direct.num_rows(), rolled.num_rows());
    for (size_t r = 0; r < direct.num_rows(); ++r) {
      EXPECT_NEAR(direct.aggregate(r).sum, rolled.aggregate(r).sum, 1e-9);
      EXPECT_EQ(direct.aggregate(r).count, rolled.aggregate(r).count);
      EXPECT_EQ(direct.aggregate(r).min, rolled.aggregate(r).min);
      EXPECT_EQ(direct.aggregate(r).max, rolled.aggregate(r).max);
    }
  }
}

TEST(ExecutorAggregatesTest, AllKindsMatchNaive) {
  CubeSchema schema = SmallSchema();
  FactTable fact = GenerateUniformFacts(schema, 600, /*seed=*/17);
  Catalog catalog(&fact);
  catalog.MaterializeView(AttributeSet::Of({0, 1}));
  catalog.BuildIndex(AttributeSet::Of({0, 1}), IndexKey({1, 0}));
  Executor executor(&catalog);

  SliceQuery q(AttributeSet::Of({0}), AttributeSet::Of({1}));
  for (uint32_t b = 0; b < 4; ++b) {
    ExecutionStats stats;
    GroupedResult fast = executor.Execute(q, {b}, &stats);
    GroupedResult naive = executor.ExecuteNaive(q, {b});
    EXPECT_FALSE(stats.used_raw);
    ASSERT_EQ(fast.num_rows(), naive.num_rows());
    for (size_t r = 0; r < fast.num_rows(); ++r) {
      for (AggregateKind kind :
           {AggregateKind::kSum, AggregateKind::kCount, AggregateKind::kMin,
            AggregateKind::kMax, AggregateKind::kAvg}) {
        EXPECT_NEAR(fast.Value(r, kind), naive.Value(r, kind), 1e-9)
            << "kind " << static_cast<int>(kind);
      }
    }
  }
}

}  // namespace
}  // namespace olapidx
