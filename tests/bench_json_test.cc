// The machine-readable bench harness: JSON round-trip bit-identity, the
// "olapidx-bench" v1 schema validator, and the checked-in golden for
// bench_fig2_example's scrubbed report (the bench's --json output is
// produced by the same FillFig2Report the golden test calls, so a drift
// in either the reporter or the selection algorithms fails here).
//
// Regenerate the golden after an intended change with
//     OLAPIDX_UPDATE_GOLDEN=1 ./build/tests/bench_json_test
// and review the diff like any other source edit.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_fig2_lib.h"
#include "bench_json.h"
#include "common/json.h"

namespace olapidx {
namespace {

using bench::BenchJsonReporter;
using bench::ValidateBenchJson;

std::string GoldenPath() {
  return std::string(OLAPIDX_TEST_GOLDEN_DIR) +
         "/bench_fig2_example.golden.json";
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Internal("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// A document exercising every value type and number edge the writer
// guarantees byte-stability for.
Json AssortedDoc() {
  Json doc = Json::Object();
  doc.Set("string", Json::Str("with \"quotes\", \\ and \n control"));
  doc.Set("int", Json::Number(123456789.0));
  doc.Set("negative", Json::Number(-42.0));
  doc.Set("zero", Json::Number(0.0));
  doc.Set("fraction", Json::Number(0.005));
  doc.Set("ratio", Json::Number(1.0 / 3.0));
  doc.Set("big", Json::Number(9007199254740992.0));  // 2^53
  doc.Set("flag_true", Json::Bool(true));
  doc.Set("flag_false", Json::Bool(false));
  doc.Set("nothing", Json::Null());
  Json arr = Json::Array();
  arr.Push(Json::Number(1.0));
  arr.Push(Json::Str(""));
  Json nested = Json::Object();
  nested.Set("z_first", Json::Number(1.0));  // insertion order, not sorted
  nested.Set("a_second", Json::Number(2.0));
  arr.Push(std::move(nested));
  arr.Push(Json::Array());
  doc.Set("list", std::move(arr));
  doc.Set("empty_object", Json::Object());
  return doc;
}

TEST(JsonRoundTripTest, DumpParseDumpIsBitIdentical) {
  Json doc = AssortedDoc();
  for (int indent : {0, 2, 4}) {
    std::string text = doc.Dump(indent);
    StatusOr<Json> reparsed = Json::Parse(text);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_EQ(reparsed.value().Dump(indent), text) << "indent " << indent;
  }
  // Pretty and compact forms describe the same tree.
  StatusOr<Json> from_pretty = Json::Parse(doc.Dump(2));
  ASSERT_TRUE(from_pretty.ok());
  EXPECT_EQ(from_pretty.value().Dump(0), doc.Dump(0));
}

TEST(JsonRoundTripTest, ParserRejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "01", "1 2",
                          "{\"a\":1} trailing", "\"unterminated",
                          "\"bad \\q escape\"", "nul", "+1", "--1",
                          "{a:1}", "[1 2]", "Infinity", "NaN"}) {
    EXPECT_FALSE(Json::Parse(bad).ok()) << "input: " << bad;
  }
}

TEST(BenchJsonReporterTest, ProducesValidSchemaAndRoundTripsThroughDisk) {
  BenchJsonReporter rep("unit");
  SelectionResult fake;
  fake.initial_cost = 100.0;
  fake.final_cost = 40.0;
  fake.space_used = 7.0;
  fake.total_frequency = 10.0;
  fake.candidates_evaluated = 12;
  fake.stats.stages = 3;
  rep.AddSelectionRun("fake_run", fake);
  Json custom = Json::Object();
  custom.Set("label", Json::Str("custom_row"));
  custom.Set("value", Json::Number(1.5));
  rep.AddRun(std::move(custom));
  rep.AddScalar("headline", 0.74);

  Json doc = rep.Build();
  ASSERT_TRUE(ValidateBenchJson(doc).ok())
      << ValidateBenchJson(doc).ToString();
  EXPECT_EQ(doc.Find("bench")->AsString(), "unit");
  EXPECT_EQ(doc.Find("runs")->size(), 2u);
  EXPECT_DOUBLE_EQ(
      doc.Find("runs")->at(0).Find("benefit")->AsDouble(), 60.0);
  ASSERT_TRUE(ValidateBenchJson(rep.BuildScrubbed()).ok());

  std::string path = ::testing::TempDir() + "/bench_json_test_unit.json";
  ASSERT_TRUE(rep.WriteFile(path).ok());
  StatusOr<std::string> written = ReadFileToString(path);
  ASSERT_TRUE(written.ok());
  StatusOr<Json> reparsed = Json::Parse(written.value());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_TRUE(ValidateBenchJson(reparsed.value()).ok());
  // Emit → parse → re-emit is bit-identical, including the trailing
  // newline WriteFile's Dump(2) appends.
  EXPECT_EQ(reparsed.value().Dump(2), written.value());
}

TEST(BenchJsonValidatorTest, RejectsNonConformingDocuments) {
  auto expect_invalid = [](const Json& doc, const std::string& what) {
    EXPECT_FALSE(ValidateBenchJson(doc).ok()) << what;
  };
  expect_invalid(Json::Array(), "not an object");
  expect_invalid(Json::Object(), "missing everything");

  Json doc = Json::Object();
  doc.Set("schema", Json::Str("olapidx-bench"));
  doc.Set("version", Json::Number(99.0));
  doc.Set("bench", Json::Str("x"));
  doc.Set("runs", Json::Array());
  expect_invalid(doc, "unsupported version");

  doc.Set("version", Json::Number(1.0));
  ASSERT_TRUE(ValidateBenchJson(doc).ok());

  Json unlabeled = Json::Object();
  unlabeled.Set("tau", Json::Number(1.0));
  Json runs = Json::Array();
  runs.Push(std::move(unlabeled));
  doc.Set("runs", std::move(runs));
  expect_invalid(doc, "run without label");

  Json nonscalar = Json::Object();
  nonscalar.Set("label", Json::Str("r"));
  nonscalar.Set("nested", Json::Object());
  runs = Json::Array();
  runs.Push(std::move(nonscalar));
  doc.Set("runs", std::move(runs));
  expect_invalid(doc, "non-scalar run member");
}

TEST(BenchArgsTest, ParsesJsonAndRegisteredFlagsInBothSpellings) {
  bench::BenchArgs args;
  std::string error;
  ASSERT_TRUE(bench::TryParseBenchArgs(
      {"--json", "--max-dim=12", "--queries", "200"}, "demo",
      {"max-dim", "queries"}, &args, &error))
      << error;
  EXPECT_TRUE(args.json);
  EXPECT_EQ(args.json_path, "BENCH_demo.json");
  EXPECT_EQ(args.GetInt("max-dim", 0), 12);
  EXPECT_EQ(args.GetInt("queries", 0), 200);
  EXPECT_EQ(args.GetInt("absent", 7), 7);

  ASSERT_TRUE(bench::TryParseBenchArgs({"--json=out.json"}, "demo", {},
                                       &args, &error))
      << error;
  EXPECT_EQ(args.json_path, "out.json");
}

TEST(BenchArgsTest, RejectsMalformedCommandLines) {
  bench::BenchArgs args;
  std::string error;
  // A flag where the value should be is a missing value, not a value.
  EXPECT_FALSE(bench::TryParseBenchArgs({"--queries", "--json"}, "demo",
                                        {"queries"}, &args, &error));
  EXPECT_EQ(error, "missing value for --queries");
  // Trailing flag with no value at all.
  EXPECT_FALSE(bench::TryParseBenchArgs({"--queries"}, "demo", {"queries"},
                                        &args, &error));
  // Empty "--flag=" value.
  EXPECT_FALSE(bench::TryParseBenchArgs({"--queries="}, "demo",
                                        {"queries"}, &args, &error));
  // Repeats are errors, not silent first-one-wins.
  EXPECT_FALSE(bench::TryParseBenchArgs({"--queries=1", "--queries=2"},
                                        "demo", {"queries"}, &args,
                                        &error));
  EXPECT_EQ(error, "duplicate --queries");
  EXPECT_FALSE(bench::TryParseBenchArgs({"--json", "--json"}, "demo", {},
                                        &args, &error));
  EXPECT_EQ(error, "duplicate --json");
  // Unregistered flags are unknown.
  EXPECT_FALSE(bench::TryParseBenchArgs({"--bogus=7"}, "demo", {"queries"},
                                        &args, &error));
  EXPECT_EQ(error, "unknown flag --bogus=7");
}

TEST(BenchArgsTest, StrictNumericParsingRejectsGarbage) {
  long l = 0;
  EXPECT_TRUE(bench::ParseLongStrict("42", &l));
  EXPECT_EQ(l, 42);
  EXPECT_TRUE(bench::ParseLongStrict("-7", &l));
  EXPECT_EQ(l, -7);
  EXPECT_FALSE(bench::ParseLongStrict("12x", &l));
  EXPECT_FALSE(bench::ParseLongStrict("", &l));
  EXPECT_FALSE(bench::ParseLongStrict("1e3", &l));
  EXPECT_FALSE(bench::ParseLongStrict("99999999999999999999999", &l));

  double d = 0.0;
  EXPECT_TRUE(bench::ParseDoubleStrict("1.5", &d));
  EXPECT_EQ(d, 1.5);
  EXPECT_TRUE(bench::ParseDoubleStrict("1e3", &d));
  EXPECT_EQ(d, 1000.0);
  EXPECT_FALSE(bench::ParseDoubleStrict("1.5skew", &d));
  EXPECT_FALSE(bench::ParseDoubleStrict("", &d));
}

TEST(BenchGoldenTest, Fig2ScrubbedReportMatchesCheckedInGolden) {
  BenchJsonReporter rep("fig2_example");
  bench::FillFig2Report(rep);
  Json scrubbed = rep.BuildScrubbed();
  ASSERT_TRUE(ValidateBenchJson(scrubbed).ok());
  std::string produced = scrubbed.Dump(2);

  if (std::getenv("OLAPIDX_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    out << produced;
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "golden regenerated at " << GoldenPath();
  }

  StatusOr<std::string> golden = ReadFileToString(GoldenPath());
  ASSERT_TRUE(golden.ok())
      << golden.status().ToString()
      << " — regenerate with OLAPIDX_UPDATE_GOLDEN=1";
  EXPECT_EQ(produced, golden.value())
      << "bench_fig2_example's deterministic output drifted; if intended, "
         "regenerate with OLAPIDX_UPDATE_GOLDEN=1 and review the diff";
}

}  // namespace
}  // namespace olapidx
