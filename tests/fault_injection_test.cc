// Unit tests for the fault-point registry, plus propagation tests proving
// that an armed fault surfaces at every public entry point as a Status —
// never as an abort — and leaves the component reusable afterwards.

#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/thread_pool.h"
#include "core/serialize.h"
#include "data/csv_loader.h"
#include "data/fact_generator.h"
#include "engine/executor.h"
#include "engine/physical_design.h"

namespace olapidx {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(FaultInjectionTest, DisarmedPointAlwaysPasses) {
  FaultInjector& fi = FaultInjector::Global();
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(fi.Check("test.point").ok());
  }
  EXPECT_EQ(fi.HitCount("test.point"), 5u);
  EXPECT_EQ(fi.HitCount("never.crossed"), 0u);
}

TEST_F(FaultInjectionTest, ArmNthFailsExactlyThatHit) {
  FaultInjector& fi = FaultInjector::Global();
  fi.ArmNth("test.point", 3);
  EXPECT_TRUE(fi.Check("test.point").ok());
  EXPECT_TRUE(fi.Check("test.point").ok());
  Status third = fi.Check("test.point");
  EXPECT_EQ(third.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(fi.Check("test.point").ok());  // later hits pass again
}

TEST_F(FaultInjectionTest, ArmNthCountsFromArmTime) {
  FaultInjector& fi = FaultInjector::Global();
  // Burn two hits before arming; "1st hit" means 1st after the arm.
  EXPECT_TRUE(fi.Check("test.point").ok());
  EXPECT_TRUE(fi.Check("test.point").ok());
  fi.ArmNth("test.point", 1, StatusCode::kInternal);
  EXPECT_EQ(fi.Check("test.point").code(), StatusCode::kInternal);
}

TEST_F(FaultInjectionTest, ArmAlwaysAndDisarm) {
  FaultInjector& fi = FaultInjector::Global();
  fi.ArmAlways("test.point");
  EXPECT_FALSE(fi.Check("test.point").ok());
  EXPECT_FALSE(fi.Check("test.point").ok());
  fi.Disarm("test.point");
  EXPECT_TRUE(fi.Check("test.point").ok());
}

TEST_F(FaultInjectionTest, ArmRandomIsDeterministicPerSeed) {
  FaultInjector& fi = FaultInjector::Global();
  auto pattern = [&](uint64_t seed) {
    fi.Reset();
    fi.ArmRandom("test.point", 0.5, seed);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(!fi.Check("test.point").ok());
    }
    return fired;
  };
  std::vector<bool> a = pattern(42);
  std::vector<bool> b = pattern(42);
  EXPECT_EQ(a, b);  // bit-reproducible
  // And not degenerate: both outcomes occur at p = 0.5 over 200 draws.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
  EXPECT_NE(pattern(43), a);  // a different seed gives a different pattern
}

TEST_F(FaultInjectionTest, ArmRandomExtremeProbabilities) {
  FaultInjector& fi = FaultInjector::Global();
  fi.ArmRandom("test.point", 0.0, 7);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(fi.Check("test.point").ok());
  fi.ArmRandom("test.point", 1.0, 7);
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(fi.Check("test.point").ok());
}

TEST_F(FaultInjectionTest, ResetClearsPlansAndCounters) {
  FaultInjector& fi = FaultInjector::Global();
  fi.ArmAlways("test.point");
  EXPECT_FALSE(fi.Check("test.point").ok());
  fi.Reset();
  EXPECT_TRUE(fi.Check("test.point").ok());
  EXPECT_EQ(fi.HitCount("test.point"), 1u);  // only the post-Reset hit
}

// ---- Propagation through the public entry points. These require the
// OLAPIDX_FAULT_POINT macro to be live (CMake option OLAPIDX_FAULT_INJECTION,
// ON by default). ----
#if defined(OLAPIDX_FAULT_INJECTION)

TEST_F(FaultInjectionTest, CsvLoaderSurfacesInjectedFault) {
  FaultInjector::Global().ArmAlways("csv.load");
  StatusOr<CsvCube> cube = LoadCsvFacts("a,m\nx,1\n");  // valid input
  ASSERT_FALSE(cube.ok());
  EXPECT_EQ(cube.status().code(), StatusCode::kUnavailable);
  FaultInjector::Global().Disarm("csv.load");
  EXPECT_TRUE(LoadCsvFacts("a,m\nx,1\n").ok());  // recovers
}

TEST_F(FaultInjectionTest, ParsersSurfaceInjectedFaults) {
  CubeSchema schema({Dimension{"a", 2}, Dimension{"b", 2}});
  FaultInjector::Global().ArmAlways("serialize.design.parse");
  EXPECT_EQ(ParseDesign("olapidx-design v1\nview a\n", schema)
                .status()
                .code(),
            StatusCode::kUnavailable);
  FaultInjector::Global().ArmAlways("serialize.sizes.parse");
  EXPECT_EQ(ParseViewSizes("olapidx-sizes v1\n", schema).status().code(),
            StatusCode::kUnavailable);
  FaultInjector::Global().ArmAlways("serialize.checkpoint.parse");
  EXPECT_EQ(ParseCheckpoint("olapidx-checkpoint v1\n", schema)
                .status()
                .code(),
            StatusCode::kUnavailable);
}

TEST_F(FaultInjectionTest, MaterializeSurfacesInjectedFault) {
  CubeSchema schema({Dimension{"a", 4}, Dimension{"b", 3}});
  FactTable fact = GenerateUniformFacts(schema, 100, /*seed=*/11);
  Catalog catalog(&fact);
  std::vector<PhysicalDesignItem> items = {
      {AttributeSet::Of({0}), IndexKey()}};
  FaultInjector::Global().ArmAlways("engine.materialize");
  StatusOr<PhysicalDesignStats> stats =
      MaterializePhysicalDesign(catalog, items);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(catalog.materialized_views().empty());  // no side effects
  FaultInjector::Global().Disarm("engine.materialize");
  EXPECT_TRUE(MaterializePhysicalDesign(catalog, items).ok());
}

TEST_F(FaultInjectionTest, ExecutorSurfacesInjectedFault) {
  CubeSchema schema({Dimension{"a", 4}, Dimension{"b", 3}});
  FactTable fact = GenerateUniformFacts(schema, 100, /*seed=*/12);
  Catalog catalog(&fact);
  Executor executor(&catalog);
  SliceQuery query(AttributeSet::Of({0}), AttributeSet());
  GroupedResult out;
  FaultInjector::Global().ArmAlways("executor.execute");
  EXPECT_EQ(executor.TryExecute(query, {}, &out).code(),
            StatusCode::kUnavailable);
  FaultInjector::Global().Disarm("executor.execute");
  ASSERT_TRUE(executor.TryExecute(query, {}, &out).ok());
  EXPECT_GT(out.num_rows(), 0u);
}

TEST_F(FaultInjectionTest, ThreadPoolSurvivesChunkFault) {
  ThreadPool pool(4);
  FaultInjector::Global().ArmNth("pool.chunk", 1);
  Status failed = pool.TryParallelFor(100, [](size_t, size_t, size_t) {
    return Status::Ok();
  });
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable);
  // The pool must stay fully usable: no deadlock, no poisoned state.
  std::vector<int> touched(pool.num_threads(), 0);
  Status ok = pool.TryParallelFor(
      100, [&](size_t begin, size_t end, size_t chunk) {
        touched[chunk] += static_cast<int>(end - begin);
        return Status::Ok();
      });
  EXPECT_TRUE(ok.ok());
  int total = 0;
  for (int t : touched) total += t;
  EXPECT_EQ(total, 100);
}

TEST_F(FaultInjectionTest, ThreadPoolSurfacesEnqueueFault) {
  ThreadPool pool(2);
  FaultInjector::Global().ArmAlways("pool.enqueue");
  bool ran = false;
  Status failed =
      pool.TryParallelFor(10, [&](size_t, size_t, size_t) {
        ran = true;
        return Status::Ok();
      });
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(ran);  // rejected before dispatch
}

#endif  // OLAPIDX_FAULT_INJECTION

}  // namespace
}  // namespace olapidx
