#include "data/size_estimation.h"

#include <gtest/gtest.h>

#include "data/fact_generator.h"
#include "engine/materialized_view.h"

namespace olapidx {
namespace {

TEST(ExactViewSizesTest, MatchesMaterialization) {
  CubeSchema schema(
      {Dimension{"a", 7}, Dimension{"b", 5}, Dimension{"c", 3}});
  FactTable fact = GenerateUniformFacts(schema, 400, /*seed=*/3);
  ViewSizes sizes = ExactViewSizes(fact);
  for (uint32_t mask = 1; mask < 8; ++mask) {
    AttributeSet attrs = AttributeSet::FromMask(mask);
    MaterializedView v = MaterializedView::FromFactTable(fact, attrs);
    EXPECT_EQ(sizes.SizeOf(attrs), static_cast<double>(v.num_rows()))
        << "mask " << mask;
  }
  EXPECT_TRUE(sizes.IsMonotone());
}

TEST(HllViewSizesTest, WithinSketchError) {
  TpcdScaledConfig config;
  config.rows = 40'000;
  FactTable fact = GenerateTpcdScaledFacts(config);
  ViewSizes exact = ExactViewSizes(fact);
  ViewSizes est = EstimateViewSizesHll(fact, /*precision=*/14);
  // p = 14 → ~0.8% standard error; allow 5%.
  for (uint32_t mask = 1; mask < 8; ++mask) {
    EXPECT_NEAR(est[mask], exact[mask], 0.05 * exact[mask] + 2.0)
        << "mask " << mask;
  }
  EXPECT_TRUE(est.IsMonotone());
  EXPECT_TRUE(est.Complete());
}

TEST(HllViewSizesTest, MuchBetterThanSamplingOnNearUniqueViews) {
  // The failure mode seen with GEE sampling in the examples: near-unique
  // subcubes. One full HLL pass nails them.
  TpcdScaledConfig config;
  config.rows = 40'000;
  FactTable fact = GenerateTpcdScaledFacts(config);
  ViewSizes est = EstimateViewSizesHll(fact, 14);
  ViewSizes exact = ExactViewSizes(fact);
  AttributeSet psc = AttributeSet::Of({0, 1, 2});
  EXPECT_NEAR(est.SizeOf(psc), exact.SizeOf(psc),
              0.05 * exact.SizeOf(psc));
}

TEST(HllViewSizesTest, ClampedToRowCount) {
  CubeSchema schema({Dimension{"a", 1000}, Dimension{"b", 1000}});
  FactTable fact = GenerateUniformFacts(schema, 100, /*seed=*/9);
  ViewSizes est = EstimateViewSizesHll(fact, 12);
  for (uint32_t mask = 1; mask < 4; ++mask) {
    EXPECT_LE(est[mask], 100.0);
    EXPECT_GE(est[mask], 1.0);
  }
}

}  // namespace
}  // namespace olapidx
