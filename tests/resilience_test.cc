// Resilience of the advisor runtime: the anytime contract (an interrupted
// run returns a valid best-so-far prefix), bit-exact checkpoint/resume,
// the monotonicity of τ in the stage budget, and the Advisor's rejection
// of inconsistent configs and checkpoints.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "core/inner_greedy.h"
#include "core/r_greedy.h"
#include "core/serialize.h"
#include "data/synthetic.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

bool IsPrefixOf(const std::vector<StructureRef>& prefix,
                const std::vector<StructureRef>& full) {
  if (prefix.size() > full.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (!(prefix[i] == full[i])) return false;
  }
  return true;
}

CubeGraph Dim4Graph() {
  SyntheticCube cube = UniformSyntheticCube(4, 8, 0.3);
  CubeLattice lattice(cube.schema);
  CubeGraphOptions opts;
  opts.raw_scan_penalty = 2.0;
  return BuildCubeGraph(cube.schema, cube.sizes, AllSliceQueries(lattice),
                        opts);
}

TEST(ResilienceTest, ExpiredDeadlineReturnsEmptyAnytimeResult) {
  CubeGraph cg = Dim4Graph();
  RGreedyOptions options;
  options.control.deadline = Deadline::AfterMillis(0);  // already expired
  SelectionResult r = RGreedy(cg.graph, 1e18, options);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(r.status.IsInterruption());
  EXPECT_TRUE(r.picks.empty());
  EXPECT_EQ(r.stats.stages, 0u);
}

TEST(ResilienceTest, MidRunDeadlineReturnsValidPrefix) {
  CubeGraph cg = Dim4Graph();
  SelectionResult full = RGreedy(cg.graph, 1e18, RGreedyOptions{});
  ASSERT_TRUE(full.completed);
  // A tiny (but nonzero) deadline interrupts somewhere mid-run; wherever
  // it lands, determinism makes the picks a prefix of the full run.
  RGreedyOptions options;
  options.control.deadline = Deadline::AfterMicros(50);
  SelectionResult partial = RGreedy(cg.graph, 1e18, options);
  EXPECT_TRUE(IsPrefixOf(partial.picks, full.picks));
  if (!partial.completed) {
    EXPECT_EQ(partial.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_LE(partial.space_used, full.space_used);
  }
}

TEST(ResilienceTest, CancelTokenStopsRun) {
  CubeGraph cg = Dim4Graph();
  CancelToken token;
  token.Cancel();  // cancelled before the first stage
  InnerGreedyOptions options;
  options.control.cancel = &token;
  SelectionResult r = InnerLevelGreedy(cg.graph, 1e18, options);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(r.picks.empty());
}

TEST(ResilienceTest, CancellationWinsOverExpiredDeadline) {
  CubeGraph cg = Dim4Graph();
  CancelToken token;
  token.Cancel();
  RGreedyOptions options;
  options.control.cancel = &token;
  options.control.deadline = Deadline::AfterMillis(0);
  SelectionResult r = RGreedy(cg.graph, 1e18, options);
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
}

TEST(ResilienceTest, StageBudgetYieldsExactPrefix) {
  CubeGraph cg = Dim4Graph();
  for (int r_value : {1, 2}) {
    RGreedyOptions base;
    base.r = r_value;
    SelectionResult full = RGreedy(cg.graph, 1e18, base);
    ASSERT_TRUE(full.completed);
    ASSERT_GT(full.stats.stages, 2u);
    for (size_t k = 0; k <= full.stats.stages + 1; ++k) {
      RGreedyOptions options = base;
      options.control.max_steps = k;
      SelectionResult partial = RGreedy(cg.graph, 1e18, options);
      EXPECT_TRUE(IsPrefixOf(partial.picks, full.picks))
          << "r=" << r_value << " k=" << k;
      if (k < full.stats.stages) {
        EXPECT_FALSE(partial.completed);
        EXPECT_EQ(partial.status.code(), StatusCode::kResourceExhausted);
        EXPECT_EQ(partial.stats.stages, k);
      } else {
        // All natural stages fit in the budget, so the picks are complete.
        // With k == stages exactly, the run cannot *prove* it is done (the
        // budget expires before the final no-positive-candidate stage) and
        // conservatively reports exhaustion; one extra step completes.
        EXPECT_EQ(partial.picks.size(), full.picks.size());
        if (k > full.stats.stages) {
          EXPECT_TRUE(partial.completed) << "k=" << k;
        }
      }
    }
  }
}

TEST(ResilienceTest, TauMonotoneNonIncreasingInStageBudget) {
  CubeGraph cg = Dim4Graph();
  // τ of the partial design must never get worse with a larger budget —
  // for every algorithm in the greedy family.
  struct Case {
    const char* name;
    std::function<SelectionResult(size_t)> run;
  };
  std::vector<Case> cases;
  for (int r_value : {1, 2}) {
    cases.push_back(Case{
        r_value == 1 ? "1-greedy" : "2-greedy", [&cg, r_value](size_t k) {
          RGreedyOptions options;
          options.r = r_value;
          options.control.max_steps = k;
          return RGreedy(cg.graph, 1e18, options);
        }});
  }
  cases.push_back(Case{"inner-level", [&cg](size_t k) {
                         InnerGreedyOptions options;
                         options.control.max_steps = k;
                         return InnerLevelGreedy(cg.graph, 1e18, options);
                       }});
  for (const Case& c : cases) {
    double prev_tau = 0.0;
    for (size_t k = 0; k <= 8; ++k) {
      SelectionResult r = c.run(k);
      if (k > 0) {
        EXPECT_LE(r.final_cost, prev_tau) << c.name << " budget " << k;
      }
      prev_tau = r.final_cost;
    }
  }
}

class AdvisorResumeTest : public ::testing::Test {
 protected:
  AdvisorResumeTest() : cube_(UniformSyntheticCube(5, 10, 0.2)) {
    CubeLattice lattice(cube_.schema);
    CubeGraphOptions opts;
    opts.raw_scan_penalty = 2.0;
    advisor_ = std::make_unique<Advisor>(cube_.schema, cube_.sizes,
                                         AllSliceQueries(lattice), opts);
  }

  AdvisorConfig Config(Algorithm algorithm) const {
    AdvisorConfig config;
    config.algorithm = algorithm;
    config.space_budget = 0.25 * cube_.sizes.TotalViewSpace();
    return config;
  }

  SyntheticCube cube_;
  std::unique_ptr<Advisor> advisor_;
};

TEST_F(AdvisorResumeTest, ResumeReproducesUninterruptedRunBitExactly) {
  for (Algorithm algorithm :
       {Algorithm::kOneGreedy, Algorithm::kInnerLevel}) {
    AdvisorConfig config = Config(algorithm);
    Recommendation full = advisor_->Recommend(config);
    ASSERT_TRUE(full.completed) << AlgorithmName(algorithm);
    ASSERT_GT(full.raw.stats.stages, 2u);

    // Interrupt after 2 stages and checkpoint.
    AdvisorConfig limited = Config(algorithm);
    limited.control.max_steps = 2;
    Recommendation partial = advisor_->Recommend(limited);
    ASSERT_FALSE(partial.completed);
    ASSERT_EQ(partial.status.code(), StatusCode::kResourceExhausted);

    // Round-trip the checkpoint through its on-disk format.
    std::string text = SerializeCheckpoint(partial.ToCheckpoint(limited),
                                           cube_.schema);
    StatusOr<SelectionCheckpoint> checkpoint =
        ParseCheckpoint(text, cube_.schema);
    ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();

    AdvisorConfig resumed_config = Config(algorithm);
    resumed_config.resume = &*checkpoint;
    Recommendation resumed = advisor_->Recommend(resumed_config);
    ASSERT_TRUE(resumed.completed) << resumed.status.ToString();

    // The combined pick sequence is bit-identical to the uninterrupted
    // run: same structures, same incremental benefits, same τ.
    ASSERT_EQ(resumed.structures.size(), full.structures.size());
    for (size_t i = 0; i < full.structures.size(); ++i) {
      EXPECT_EQ(resumed.structures[i].view, full.structures[i].view);
      EXPECT_TRUE(resumed.structures[i].index == full.structures[i].index);
    }
    EXPECT_EQ(resumed.raw.pick_benefits, full.raw.pick_benefits);
    EXPECT_EQ(resumed.raw.final_cost, full.raw.final_cost);
    EXPECT_EQ(resumed.raw.space_used, full.raw.space_used);
    EXPECT_EQ(resumed.raw.stats.stages, full.raw.stats.stages);
  }
}

TEST_F(AdvisorResumeTest, RejectsCheckpointFromDifferentRun) {
  AdvisorConfig config = Config(Algorithm::kOneGreedy);
  config.control.max_steps = 1;
  Recommendation partial = advisor_->Recommend(config);
  ASSERT_FALSE(partial.completed);
  SelectionCheckpoint checkpoint = partial.ToCheckpoint(config);

  // Wrong algorithm tag.
  AdvisorConfig other = Config(Algorithm::kInnerLevel);
  other.resume = &checkpoint;
  Recommendation rec = advisor_->Recommend(other);
  EXPECT_EQ(rec.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(rec.structures.empty());

  // Wrong budget.
  AdvisorConfig rebudgeted = Config(Algorithm::kOneGreedy);
  rebudgeted.space_budget *= 2.0;
  rebudgeted.resume = &checkpoint;
  rec = advisor_->Recommend(rebudgeted);
  EXPECT_EQ(rec.status.code(), StatusCode::kInvalidArgument);

  // A pick that does not exist in this cube's index family.
  SelectionCheckpoint bogus = checkpoint;
  bogus.picks.push_back(RecommendedStructure{
      AttributeSet::Of({0}), IndexKey({1}), "bogus", 1.0});
  bogus.pick_benefits.push_back(1.0);
  AdvisorConfig with_bogus = Config(Algorithm::kOneGreedy);
  with_bogus.resume = &bogus;
  rec = advisor_->Recommend(with_bogus);
  EXPECT_EQ(rec.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rec.status.message().find("checkpoint pick"),
            std::string::npos)
      << rec.status.ToString();
}

TEST_F(AdvisorResumeTest, NonGreedyAlgorithmsRejectControlAndResume) {
  AdvisorConfig config = Config(Algorithm::kOptimal);
  config.control.max_steps = 3;
  Recommendation rec = advisor_->Recommend(config);
  EXPECT_EQ(rec.status.code(), StatusCode::kUnimplemented);
  EXPECT_FALSE(rec.completed);
  EXPECT_TRUE(rec.structures.empty());

  SelectionCheckpoint checkpoint;
  checkpoint.algorithm = "branch-and-bound optimal";
  AdvisorConfig with_resume = Config(Algorithm::kTwoStep);
  with_resume.resume = &checkpoint;
  rec = advisor_->Recommend(with_resume);
  EXPECT_EQ(rec.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(AdvisorResumeTest, InterruptedRecommendationIsUsable) {
  // The anytime contract at the Advisor level: an interrupted run still
  // reports per-query plans over the partial design, and never a worse
  // average cost than the empty design.
  AdvisorConfig config = Config(Algorithm::kInnerLevel);
  config.control.max_steps = 1;
  Recommendation rec = advisor_->Recommend(config);
  ASSERT_FALSE(rec.completed);
  ASSERT_EQ(rec.structures.size(), rec.raw.picks.size());
  EXPECT_FALSE(rec.plans.empty());
  EXPECT_LE(rec.average_query_cost, rec.initial_average_cost);
}

}  // namespace
}  // namespace olapidx
