// AdvisorService: the resident advisor's contracts — initial serve,
// executor-fed observation, what-if sweeps with admission control and
// retry, drift-triggered re-selection, pending-selection resume, and
// crash-safe journaling (kill at any point, restart, get the same served
// state bit-identically).

#include "service/advisor_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/journal.h"
#include "data/fact_generator.h"
#include "data/synthetic.h"
#include "engine/catalog.h"
#include "engine/executor.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

SliceQuery Q(uint32_t group_mask, uint32_t selection_mask = 0) {
  return SliceQuery(AttributeSet::FromMask(group_mask),
                    AttributeSet::FromMask(selection_mask));
}

class AdvisorServiceTest : public ::testing::Test {
 protected:
  AdvisorServiceTest() : cube_(UniformSyntheticCube(4, 8, 0.3)) {
    CubeLattice lattice(cube_.schema);
    initial_ = AllSliceQueries(lattice);
    options_.base.algorithm = Algorithm::kInnerLevel;
    options_.base.space_budget = 0.25 * cube_.sizes.TotalViewSpace();
    options_.graph.raw_scan_penalty = 2.0;
    options_.drift_threshold = 0.1;
  }

  ~AdvisorServiceTest() override {
#ifdef OLAPIDX_FAULT_INJECTION
    FaultInjector::Global().Reset();
#endif
    if (!journal_path_.empty()) std::remove(journal_path_.c_str());
  }

  std::string UseJournal(const std::string& name) {
    journal_path_ = ::testing::TempDir() + name;
    std::remove(journal_path_.c_str());
    options_.journal_path = journal_path_;
    return journal_path_;
  }

  std::unique_ptr<AdvisorService> MustCreate() {
    StatusOr<std::unique_ptr<AdvisorService>> service =
        AdvisorService::Create(cube_.schema, cube_.sizes, initial_,
                               options_);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    return *std::move(service);
  }

  // Drive the observed distribution far from the baseline epoch so the
  // next AdvanceEpoch sees drift.
  void ObserveShifted(AdvisorService& service) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(service.Observe(Q(0b1100), 3.0).ok());
      ASSERT_TRUE(service.Observe(Q(0b0011, 0b0100), 1.0).ok());
    }
  }

  // A second distribution, disjoint from ObserveShifted's, so an epoch
  // whose baseline is the shifted stream still sees drift.
  void ObserveSkewed(AdvisorService& service) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(service.Observe(Q(0b0001, 0b0010), 5.0).ok());
    }
  }

  SyntheticCube cube_;
  Workload initial_;
  ServiceOptions options_;
  std::string journal_path_;
};

TEST_F(AdvisorServiceTest, ServesInitialDesignAtEpochZero) {
  std::unique_ptr<AdvisorService> service = MustCreate();
  ServedSnapshot snap = service->Snapshot();
  EXPECT_EQ(snap.epoch, 0u);
  EXPECT_EQ(snap.generation, 1u);
  EXPECT_FALSE(snap.pending);
  EXPECT_FALSE(snap.degraded);
  EXPECT_FALSE(snap.recommendation.structures.empty());
  EXPECT_NE(snap.graph_fingerprint, 0u);
  EXPECT_EQ(snap.checkpoint.graph_fingerprint, snap.graph_fingerprint);
}

TEST_F(AdvisorServiceTest, RejectsEmptyInitialWorkloadWithoutJournal) {
  Workload empty;
  StatusOr<std::unique_ptr<AdvisorService>> service =
      AdvisorService::Create(cube_.schema, cube_.sizes, empty, options_);
  EXPECT_EQ(service.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AdvisorServiceTest, ExecutorObserverFeedsTheSketch) {
  std::unique_ptr<AdvisorService> service = MustCreate();

  // A real engine loop: build a catalog over a small synthetic fact
  // table, wire the executor's observer to the service, execute queries.
  FactTable fact = GenerateUniformFacts(cube_.schema, 500, /*seed=*/7);
  Catalog catalog(&fact);
  Executor executor(&catalog);
  executor.SetQueryObserver(service->ObserverCallback());

  GroupedResult result;
  ASSERT_TRUE(executor.TryExecute(Q(0b0011), {}, &result).ok());
  ASSERT_TRUE(executor.TryExecute(Q(0b0011), {}, &result).ok());
  ASSERT_TRUE(executor.TryExecute(Q(0b0100), {}, &result).ok());

  ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.observations, 3u);
  EXPECT_EQ(stats.observations_dropped, 0u);
}

TEST_F(AdvisorServiceTest, WhatIfSweepsBudgetsAndDiffs) {
  std::unique_ptr<AdvisorService> service = MustCreate();
  double budget = options_.base.space_budget;
  WhatIfRequest request;
  request.budgets = {0.2 * budget, budget, 5.0 * budget};
  request.deadline_ms = 60'000;
  WhatIfResult result = service->WhatIf(request);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  ASSERT_EQ(result.points.size(), 3u);
  // Monotone: more space never raises the average query cost.
  EXPECT_GE(result.points[0].average_query_cost,
            result.points[1].average_query_cost);
  EXPECT_GE(result.points[1].average_query_cost,
            result.points[2].average_query_cost);
  // The served-budget point reproduces the served design: empty diff.
  EXPECT_TRUE(result.points[1].added.empty());
  EXPECT_TRUE(result.points[1].removed.empty());
  // The bigger budget materializes something new.
  EXPECT_FALSE(result.points[2].added.empty());
  EXPECT_EQ(service->Stats().whatif_ok, 1u);
}

TEST_F(AdvisorServiceTest, WhatIfHonorsItsDeadline) {
  std::unique_ptr<AdvisorService> service = MustCreate();
  WhatIfRequest request;
  request.budgets.assign(64, options_.base.space_budget);
  request.deadline_ms = 1;  // expires mid-sweep
  WhatIfResult result = service->WhatIf(request);
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(result.points.size(), 64u);
  EXPECT_EQ(service->Stats().whatif_deadline_exceeded, 1u);
}

#ifdef OLAPIDX_FAULT_INJECTION
TEST_F(AdvisorServiceTest, AdmissionControlRejectsExcessRequests) {
  options_.max_concurrent_requests = 1;
  // Pin the holder inside its request: every selection attempt fails
  // transiently and the retry loop backs off ~1s in total, all while the
  // single admission slot stays held.
  options_.retry.max_attempts = 20;
  options_.retry.base_micros = 20'000;
  std::unique_ptr<AdvisorService> service = MustCreate();
  FaultInjector::Global().ArmAlways("service.whatif.run");
  std::atomic<bool> in_request{false};
  std::thread holder([&] {
    WhatIfRequest slow;
    slow.deadline_ms = 60'000;
    in_request.store(true);
    WhatIfResult held = service->WhatIf(slow);
    EXPECT_EQ(held.status.code(), StatusCode::kUnavailable);
  });
  while (!in_request.load()) std::this_thread::yield();
  // Give the holder a beat to pass admission; it then sleeps in backoff.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  WhatIfResult rejected = service->WhatIf(WhatIfRequest{});
  holder.join();
  FaultInjector::Global().Reset();
  EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(rejected.points.empty());
  EXPECT_EQ(service->Stats().whatif_rejected, 1u);
}

TEST_F(AdvisorServiceTest, WhatIfRetriesTransientFaults) {
  options_.retry.base_micros = 1;  // keep the test fast
  std::unique_ptr<AdvisorService> service = MustCreate();
  // The first attempt fails transiently; the retry succeeds.
  FaultInjector::Global().ArmNth("service.whatif.run", 1);
  WhatIfRequest request;
  request.deadline_ms = 60'000;
  WhatIfResult result = service->WhatIf(request);
  FaultInjector::Global().Reset();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.retries, 1u);
  EXPECT_EQ(service->Stats().whatif_retries, 1u);
}

TEST_F(AdvisorServiceTest, WhatIfReportsExhaustedRetries) {
  options_.retry.base_micros = 1;
  std::unique_ptr<AdvisorService> service = MustCreate();
  FaultInjector::Global().ArmAlways("service.whatif.run");
  WhatIfRequest request;
  request.deadline_ms = 60'000;
  WhatIfResult result = service->WhatIf(request);
  FaultInjector::Global().Reset();
  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(service->Stats().whatif_failed, 1u);
}

TEST_F(AdvisorServiceTest, FailedReselectionKeepsServingPreviousDesign) {
  std::unique_ptr<AdvisorService> service = MustCreate();
  // Epoch 1 establishes the baseline distribution.
  ObserveShifted(*service);
  ASSERT_TRUE(service->AdvanceEpoch().status.ok());
  ServedSnapshot before = service->Snapshot();
  ObserveSkewed(*service);
  FaultInjector::Global().ArmAlways("service.worker.spawn");
  EpochResult result = service->AdvanceEpoch();
  FaultInjector::Global().Reset();
  EXPECT_FALSE(result.status.ok());
  EXPECT_TRUE(result.drift_detected);
  EXPECT_FALSE(result.reselected);
  // Epoch unadvanced, previous design still serving.
  EXPECT_EQ(service->epoch(), 1u);
  EXPECT_EQ(service->Snapshot().generation, before.generation);
  EXPECT_EQ(service->Stats().epoch_failures, 1u);
  // The retried epoch (fault cleared) succeeds against the same sketches.
  result = service->AdvanceEpoch();
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.reselected);
  EXPECT_EQ(service->epoch(), 2u);
}
#endif  // OLAPIDX_FAULT_INJECTION

TEST_F(AdvisorServiceTest, QuietEpochDoesNotReselect) {
  std::unique_ptr<AdvisorService> service = MustCreate();
  EpochResult result = service->AdvanceEpoch();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_FALSE(result.drift_detected);
  EXPECT_FALSE(result.reselected);
  EXPECT_EQ(result.epoch, 1u);
  EXPECT_EQ(service->Snapshot().generation, 1u);
}

TEST_F(AdvisorServiceTest, DriftTriggersReselectionForObservedWorkload) {
  std::unique_ptr<AdvisorService> service = MustCreate();
  // Epoch 1 establishes the baseline; epoch 2 sees a shifted epoch.
  ObserveShifted(*service);
  EpochResult first = service->AdvanceEpoch();
  ASSERT_TRUE(first.status.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(service->Observe(Q(0b0001, 0b0010), 5.0).ok());
  }
  EpochResult second = service->AdvanceEpoch();
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();
  EXPECT_TRUE(second.drift_detected);
  EXPECT_GT(second.drift, options_.drift_threshold);
  EXPECT_TRUE(second.reselected);
  ServedSnapshot snap = service->Snapshot();
  EXPECT_EQ(snap.generation, 2u);
  // The new advisor was built from the observed workload, not the
  // bootstrap workload.
  EXPECT_EQ(snap.workload.size(), 1u);
  EXPECT_EQ(snap.workload.queries()[0].query, Q(0b0001, 0b0010));
  EXPECT_EQ(service->Stats().reselections, 1u);
}

TEST_F(AdvisorServiceTest, PendingReselectionCompletesDeterministically) {
  // A stage-capped service never aborts: creation serves the valid
  // prefix design it managed within the stage budget and marks it
  // pending; each stage-capped re-selection does the same; and
  // CompletePendingReselection finishes the selection without ever
  // worsening the served design. Two identical flows must land on
  // bit-identical final designs.
  options_.reselect_max_stages = 1;
  auto run_flow = [this] {
    std::unique_ptr<AdvisorService> service = MustCreate();
    EXPECT_TRUE(service->Snapshot().pending);
    ObserveShifted(*service);
    EXPECT_TRUE(service->AdvanceEpoch().status.ok());
    ObserveSkewed(*service);
    EpochResult cut = service->AdvanceEpoch();
    EXPECT_TRUE(cut.status.ok()) << cut.status.ToString();
    EXPECT_TRUE(cut.reselected);
    EXPECT_TRUE(cut.pending);
    ServedSnapshot capped = service->Snapshot();
    EXPECT_TRUE(service->CompletePendingReselection().ok());
    ServedSnapshot done = service->Snapshot();
    EXPECT_FALSE(done.pending);
    // Completion only ever improves on the capped prefix design.
    EXPECT_LE(done.recommendation.average_query_cost,
              capped.recommendation.average_query_cost);
    EXPECT_GE(done.recommendation.structures.size(),
              capped.recommendation.structures.size());
    return done;
  };
  ServedSnapshot a = run_flow();
  ServedSnapshot b = run_flow();
  ASSERT_EQ(a.recommendation.structures.size(),
            b.recommendation.structures.size());
  for (size_t i = 0; i < a.recommendation.structures.size(); ++i) {
    EXPECT_EQ(a.recommendation.structures[i].name,
              b.recommendation.structures[i].name);
  }
  EXPECT_EQ(a.recommendation.space_used,
            b.recommendation.space_used);  // bit-exact
  EXPECT_EQ(a.recommendation.average_query_cost,
            b.recommendation.average_query_cost);
}

TEST_F(AdvisorServiceTest, RestartRestoresServedStateBitIdentically) {
  UseJournal("olapidx_service_restart.journal");
  ServedSnapshot before;
  {
    std::unique_ptr<AdvisorService> service = MustCreate();
    ObserveShifted(*service);
    ASSERT_TRUE(service->AdvanceEpoch().status.ok());
    ObserveSkewed(*service);
    EpochResult epoch = service->AdvanceEpoch();
    ASSERT_TRUE(epoch.status.ok()) << epoch.status.ToString();
    ASSERT_TRUE(epoch.reselected);
    before = service->Snapshot();
    // `service` is destroyed without any shutdown handshake — the "crash".
    // AdvanceEpoch already journaled; nothing after this point may matter.
  }
  std::unique_ptr<AdvisorService> restarted = MustCreate();
  ServedSnapshot after = restarted->Snapshot();
  EXPECT_EQ(after.epoch, before.epoch);
  EXPECT_EQ(after.generation, before.generation);
  EXPECT_EQ(after.pending, before.pending);
  EXPECT_EQ(after.graph_fingerprint, before.graph_fingerprint);
  ASSERT_EQ(after.recommendation.structures.size(),
            before.recommendation.structures.size());
  for (size_t i = 0; i < before.recommendation.structures.size(); ++i) {
    EXPECT_EQ(after.recommendation.structures[i].name,
              before.recommendation.structures[i].name);
  }
  EXPECT_EQ(after.recommendation.space_used,
            before.recommendation.space_used);  // bit-exact
  EXPECT_EQ(after.recommendation.average_query_cost,
            before.recommendation.average_query_cost);
  ASSERT_EQ(after.workload.size(), before.workload.size());
  for (size_t i = 0; i < before.workload.size(); ++i) {
    EXPECT_EQ(after.workload.queries()[i].query,
              before.workload.queries()[i].query);
    EXPECT_EQ(after.workload.queries()[i].frequency,
              before.workload.queries()[i].frequency);
  }
}

TEST_F(AdvisorServiceTest, RestartRestoresPendingSelectionExactly) {
  UseJournal("olapidx_service_pending.journal");
  options_.reselect_max_stages = 1;
  ServedSnapshot before;
  {
    std::unique_ptr<AdvisorService> service = MustCreate();
    ObserveShifted(*service);
    ASSERT_TRUE(service->AdvanceEpoch().status.ok());
    ObserveSkewed(*service);
    EpochResult epoch = service->AdvanceEpoch();
    ASSERT_TRUE(epoch.status.ok());
    ASSERT_TRUE(epoch.pending);
    before = service->Snapshot();
  }
  std::unique_ptr<AdvisorService> restarted = MustCreate();
  ServedSnapshot after = restarted->Snapshot();
  EXPECT_TRUE(after.pending);
  ASSERT_EQ(after.checkpoint.picks.size(), before.checkpoint.picks.size());
  EXPECT_EQ(after.checkpoint.stages, before.checkpoint.stages);
  EXPECT_EQ(after.checkpoint.pick_benefits,
            before.checkpoint.pick_benefits);  // bit-exact
  // And the restored pending selection still completes.
  ASSERT_TRUE(restarted->CompletePendingReselection().ok());
  EXPECT_FALSE(restarted->Snapshot().pending);
}

TEST_F(AdvisorServiceTest, RestartObservationsSurviveIntoDriftScore) {
  UseJournal("olapidx_service_sketch.journal");
  {
    std::unique_ptr<AdvisorService> service = MustCreate();
    ObserveShifted(*service);
    ASSERT_TRUE(service->Save().ok());
  }
  std::unique_ptr<AdvisorService> restarted = MustCreate();
  // The journaled current-epoch observations came back: a re-observation
  // of the same stream accumulates, and the first epoch close sees them.
  EpochResult first = restarted->AdvanceEpoch();
  ASSERT_TRUE(first.status.ok());
  // Second epoch with nothing observed vs a populated baseline: drift is
  // scored against the restored observations.
  ObserveShifted(*restarted);
  EpochResult second = restarted->AdvanceEpoch();
  ASSERT_TRUE(second.status.ok());
  EXPECT_FALSE(second.drift_detected);  // identical stream -> no drift
}

TEST_F(AdvisorServiceTest, CorruptJournalIsRejectedAsDataLoss) {
  std::string path = UseJournal("olapidx_service_corrupt.journal");
  {
    std::unique_ptr<AdvisorService> service = MustCreate();
    ASSERT_TRUE(service->Save().ok());
  }
  StatusOr<std::string> text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  std::string flipped = *text;
  flipped[flipped.size() / 2] ^= 0x01;
  ASSERT_TRUE(AtomicWriteFile(path, flipped).ok());
  StatusOr<std::unique_ptr<AdvisorService>> service =
      AdvisorService::Create(cube_.schema, cube_.sizes, initial_, options_);
  EXPECT_EQ(service.status().code(), StatusCode::kDataLoss)
      << service.status().ToString();
}

TEST_F(AdvisorServiceTest, JournalFromDifferentCubeIsRejected) {
  UseJournal("olapidx_service_mismatch.journal");
  {
    std::unique_ptr<AdvisorService> service = MustCreate();
    ASSERT_TRUE(service->Save().ok());
  }
  // Same schema shape, different sizes -> different graph fingerprint.
  SyntheticCube other = UniformSyntheticCube(4, 9, 0.3);
  StatusOr<std::unique_ptr<AdvisorService>> service =
      AdvisorService::Create(other.schema, other.sizes, initial_, options_);
  EXPECT_EQ(service.status().code(), StatusCode::kFailedPrecondition)
      << service.status().ToString();
}

}  // namespace
}  // namespace olapidx
