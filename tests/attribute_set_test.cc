#include "lattice/attribute_set.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace olapidx {
namespace {

TEST(AttributeSetTest, EmptySet) {
  AttributeSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_EQ(s.mask(), 0u);
  EXPECT_TRUE(s.ToVector().empty());
}

TEST(AttributeSetTest, OfBuildsMask) {
  AttributeSet s = AttributeSet::Of({0, 2, 5});
  EXPECT_EQ(s.mask(), 0b100101u);
  EXPECT_EQ(s.size(), 3);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_FALSE(s.Contains(1));
  EXPECT_TRUE(s.Contains(2));
  EXPECT_TRUE(s.Contains(5));
}

TEST(AttributeSetTest, FullSet) {
  AttributeSet s = AttributeSet::Full(4);
  EXPECT_EQ(s.mask(), 0b1111u);
  EXPECT_EQ(s.size(), 4);
}

TEST(AttributeSetTest, SubsetRelations) {
  AttributeSet ab = AttributeSet::Of({0, 1});
  AttributeSet a = AttributeSet::Of({0});
  AttributeSet c = AttributeSet::Of({2});
  EXPECT_TRUE(a.IsSubsetOf(ab));
  EXPECT_FALSE(ab.IsSubsetOf(a));
  EXPECT_TRUE(ab.IsSupersetOf(a));
  EXPECT_TRUE(AttributeSet().IsSubsetOf(a));
  EXPECT_FALSE(c.IsSubsetOf(ab));
  EXPECT_TRUE(a.IsSubsetOf(a));
}

TEST(AttributeSetTest, SetAlgebra) {
  AttributeSet ab = AttributeSet::Of({0, 1});
  AttributeSet bc = AttributeSet::Of({1, 2});
  EXPECT_EQ(ab.Union(bc), AttributeSet::Of({0, 1, 2}));
  EXPECT_EQ(ab.Intersect(bc), AttributeSet::Of({1}));
  EXPECT_EQ(ab.Minus(bc), AttributeSet::Of({0}));
  EXPECT_TRUE(ab.Intersects(bc));
  EXPECT_FALSE(ab.Intersects(AttributeSet::Of({2})));
}

TEST(AttributeSetTest, WithWithout) {
  AttributeSet s = AttributeSet::Of({1});
  EXPECT_EQ(s.With(3), AttributeSet::Of({1, 3}));
  EXPECT_EQ(s.Without(1), AttributeSet());
  EXPECT_EQ(s.Without(0), s);  // removing an absent attribute is a no-op
}

TEST(AttributeSetTest, ToVectorAscending) {
  AttributeSet s = AttributeSet::Of({4, 1, 3});
  EXPECT_EQ(s.ToVector(), (std::vector<int>{1, 3, 4}));
}

TEST(AttributeSetTest, ToStringSingleLetterNames) {
  std::vector<std::string> names = {"p", "s", "c"};
  EXPECT_EQ(AttributeSet::Of({0, 1, 2}).ToString(names), "psc");
  EXPECT_EQ(AttributeSet::Of({0, 2}).ToString(names), "pc");
  EXPECT_EQ(AttributeSet().ToString(names), "none");
}

TEST(AttributeSetTest, ToStringLongNamesUseCommas) {
  std::vector<std::string> names = {"part", "supplier"};
  EXPECT_EQ(AttributeSet::Of({0, 1}).ToString(names), "part,supplier");
}

TEST(AttributeSetTest, Ordering) {
  EXPECT_LT(AttributeSet::Of({0}), AttributeSet::Of({1}));
  EXPECT_EQ(AttributeSet::Of({0, 1}), AttributeSet::FromMask(3));
  EXPECT_NE(AttributeSet::Of({0}), AttributeSet::Of({1}));
}

std::vector<uint32_t> Collect(auto range) {
  std::vector<uint32_t> out;
  for (AttributeSet s : range) out.push_back(s.mask());
  return out;
}

TEST(AttributeSetTest, SubsetsOfEmptySetIsJustEmpty) {
  EXPECT_EQ(Collect(AttributeSet().Subsets()), (std::vector<uint32_t>{0}));
}

TEST(AttributeSetTest, SubsetsOfSingleton) {
  EXPECT_EQ(Collect(AttributeSet::Of({3}).Subsets()),
            (std::vector<uint32_t>{0, 8}));
}

TEST(AttributeSetTest, SubsetsOfFullSetAscending) {
  EXPECT_EQ(Collect(AttributeSet::Full(3).Subsets()),
            (std::vector<uint32_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(AttributeSetTest, SubsetsOfSparseMaskAscending) {
  // {0, 2} -> masks 0, 1, 4, 5 in ascending order.
  EXPECT_EQ(Collect(AttributeSet::Of({0, 2}).Subsets()),
            (std::vector<uint32_t>{0, 1, 4, 5}));
}

TEST(AttributeSetTest, SupersetsWithinSelf) {
  AttributeSet s = AttributeSet::Of({1, 2});
  EXPECT_EQ(Collect(s.SupersetsWithin(s)), (std::vector<uint32_t>{6}));
}

TEST(AttributeSetTest, SupersetsOfEmptyAreAllSubsetsOfUniverse) {
  EXPECT_EQ(Collect(AttributeSet().SupersetsWithin(AttributeSet::Full(2))),
            (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(AttributeSetTest, SupersetsWithinFullAscending) {
  // Supersets of {1} within {0,1,2}: 2, 3, 6, 7.
  EXPECT_EQ(Collect(AttributeSet::Of({1}).SupersetsWithin(
                AttributeSet::Full(3))),
            (std::vector<uint32_t>{2, 3, 6, 7}));
}

TEST(AttributeSetTest, SubsetsMatchBruteForceExhaustively) {
  constexpr int kN = 12;
  for (uint32_t mask = 0; mask < (1u << kN); ++mask) {
    std::vector<uint32_t> expected;
    for (uint32_t x = 0; x <= mask; ++x) {
      if ((x & ~mask) == 0) expected.push_back(x);
    }
    ASSERT_EQ(Collect(AttributeSet::FromMask(mask).Subsets()), expected)
        << "mask=" << mask;
  }
}

TEST(AttributeSetTest, SupersetsMatchBruteForceExhaustively) {
  constexpr int kN = 12;
  const AttributeSet universe = AttributeSet::Full(kN);
  for (uint32_t mask = 0; mask < (1u << kN); ++mask) {
    std::vector<uint32_t> expected;
    for (uint32_t x = mask; x < (1u << kN); ++x) {
      if ((mask & ~x) == 0) expected.push_back(x);
    }
    ASSERT_EQ(Collect(AttributeSet::FromMask(mask).SupersetsWithin(universe)),
              expected)
        << "mask=" << mask;
  }
}

TEST(AttributeSetTest, SupersetsWithinSparseUniverse) {
  // Supersets of {0} within {0, 1, 3}: 1, 3, 9, 11.
  EXPECT_EQ(Collect(AttributeSet::Of({0}).SupersetsWithin(
                AttributeSet::Of({0, 1, 3}))),
            (std::vector<uint32_t>{1, 3, 9, 11}));
}

}  // namespace
}  // namespace olapidx
