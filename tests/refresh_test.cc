// Incremental-maintenance tests: appending fact rows and refreshing the
// catalog must be equivalent to rebuilding from scratch, and the measured
// refresh work must scale with structure size — the physical justification
// for the update-aware selection extension's cost model.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/fact_generator.h"
#include "engine/executor.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

CubeSchema SmallSchema() {
  return CubeSchema(
      {Dimension{"a", 12}, Dimension{"b", 8}, Dimension{"c", 5}});
}

void AppendRandomRows(FactTable& fact, size_t rows, uint64_t seed) {
  Pcg32 rng(seed);
  const CubeSchema& schema = fact.schema();
  std::vector<uint32_t> dims(
      static_cast<size_t>(schema.num_dimensions()));
  for (size_t r = 0; r < rows; ++r) {
    for (int a = 0; a < schema.num_dimensions(); ++a) {
      dims[static_cast<size_t>(a)] = rng.NextBounded(
          static_cast<uint32_t>(schema.dimension(a).cardinality));
    }
    fact.Append(dims, 1.0 + rng.NextDouble() * 9.0);
  }
}

TEST(RefreshTest, DeltaEqualsRebuild) {
  FactTable fact = GenerateUniformFacts(SmallSchema(), 400, /*seed=*/3);
  Catalog catalog(&fact);
  catalog.MaterializeView(AttributeSet::Of({0, 1, 2}));
  catalog.MaterializeView(AttributeSet::Of({0, 1}));
  catalog.MaterializeView(AttributeSet::Of({2}));
  catalog.BuildIndex(AttributeSet::Of({0, 1}), IndexKey({1, 0}));

  AppendRandomRows(fact, 300, /*seed=*/99);
  Catalog::RefreshStats stats = catalog.RefreshAfterAppend();
  EXPECT_EQ(stats.views_refreshed, 3u);
  EXPECT_EQ(stats.delta_rows_scanned, 3u * 300u);
  EXPECT_EQ(stats.indexes_rebuilt, 1u);
  EXPECT_GT(stats.groups_touched, 0u);

  // Every refreshed view must equal a from-scratch rebuild.
  for (AttributeSet attrs : catalog.materialized_views()) {
    MaterializedView rebuilt =
        MaterializedView::FromFactTable(fact, attrs);
    const MaterializedView& refreshed = catalog.view(attrs);
    ASSERT_EQ(refreshed.num_rows(), rebuilt.num_rows())
        << attrs.ToString(fact.schema().names());
    for (size_t r = 0; r < rebuilt.num_rows(); ++r) {
      EXPECT_EQ(refreshed.RowKey(r), rebuilt.RowKey(r));
      EXPECT_NEAR(refreshed.aggregate(r).sum, rebuilt.aggregate(r).sum,
                  1e-9);
      EXPECT_EQ(refreshed.aggregate(r).count, rebuilt.aggregate(r).count);
      EXPECT_EQ(refreshed.aggregate(r).min, rebuilt.aggregate(r).min);
      EXPECT_EQ(refreshed.aggregate(r).max, rebuilt.aggregate(r).max);
    }
  }
}

TEST(RefreshTest, ExecutorCorrectAfterRefresh) {
  FactTable fact = GenerateUniformFacts(SmallSchema(), 500, /*seed=*/5);
  Catalog catalog(&fact);
  catalog.MaterializeView(AttributeSet::Of({0, 1, 2}));
  catalog.MaterializeView(AttributeSet::Of({0, 1}));
  catalog.BuildIndex(AttributeSet::Of({0, 1}), IndexKey({1, 0}));
  catalog.BuildIndex(AttributeSet::Of({0, 1, 2}), IndexKey({2, 1, 0}));

  AppendRandomRows(fact, 400, /*seed=*/77);
  catalog.RefreshAfterAppend();

  Executor executor(&catalog);
  CubeLattice lattice(SmallSchema());
  Workload all = AllSliceQueries(lattice);
  Pcg32 rng(9);
  for (const WeightedQuery& wq : all.queries()) {
    std::vector<uint32_t> values;
    for (int a : wq.query.selection().ToVector()) {
      values.push_back(rng.NextBounded(static_cast<uint32_t>(
          fact.schema().dimension(a).cardinality)));
    }
    ExecutionStats stats;
    GroupedResult fast = executor.Execute(wq.query, values, &stats);
    GroupedResult naive = executor.ExecuteNaive(wq.query, values);
    ASSERT_EQ(fast.num_rows(), naive.num_rows())
        << wq.query.ToString(fact.schema().names());
    for (size_t r = 0; r < fast.num_rows(); ++r) {
      EXPECT_EQ(fast.keys[r], naive.keys[r]);
      EXPECT_NEAR(fast.sums[r], naive.sums[r], 1e-6);
    }
  }
}

TEST(RefreshTest, RefreshIsIdempotent) {
  FactTable fact = GenerateUniformFacts(SmallSchema(), 200, /*seed=*/8);
  Catalog catalog(&fact);
  catalog.MaterializeView(AttributeSet::Of({0}));
  AppendRandomRows(fact, 100, /*seed=*/1);
  Catalog::RefreshStats first = catalog.RefreshAfterAppend();
  EXPECT_EQ(first.views_refreshed, 1u);
  Catalog::RefreshStats second = catalog.RefreshAfterAppend();
  EXPECT_EQ(second.views_refreshed, 0u);
  EXPECT_EQ(second.groups_touched, 0u);
}

TEST(RefreshTest, ViewsMaterializedAfterAppendNeedNoRefresh) {
  FactTable fact = GenerateUniformFacts(SmallSchema(), 200, /*seed=*/11);
  Catalog catalog(&fact);
  AppendRandomRows(fact, 100, /*seed=*/2);
  catalog.MaterializeView(AttributeSet::Of({1}));  // sees all 300 rows
  Catalog::RefreshStats stats = catalog.RefreshAfterAppend();
  EXPECT_EQ(stats.views_refreshed, 0u);
}

// Stress: random batch sizes across many refresh cycles must stay
// equivalent to a from-scratch rebuild (catches ordering and merge bugs
// in MaterializedView::ApplyDelta).
class RefreshStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RefreshStressTest, ManyRandomBatches) {
  uint64_t seed = GetParam();
  Pcg32 rng(seed);
  FactTable fact =
      GenerateUniformFacts(SmallSchema(), 50 + rng.NextBounded(200), seed);
  Catalog catalog(&fact);
  catalog.MaterializeView(AttributeSet::Of({0, 1, 2}));
  catalog.MaterializeView(AttributeSet::Of({0, 2}));
  catalog.MaterializeView(AttributeSet::Of({1}));
  catalog.BuildIndex(AttributeSet::Of({0, 2}), IndexKey({2, 0}));

  for (int cycle = 0; cycle < 8; ++cycle) {
    AppendRandomRows(fact, 1 + rng.NextBounded(150),
                     seed * 131 + static_cast<uint64_t>(cycle));
    catalog.RefreshAfterAppend();
  }
  for (AttributeSet attrs : catalog.materialized_views()) {
    MaterializedView rebuilt =
        MaterializedView::FromFactTable(fact, attrs);
    const MaterializedView& refreshed = catalog.view(attrs);
    ASSERT_EQ(refreshed.num_rows(), rebuilt.num_rows());
    for (size_t r = 0; r < rebuilt.num_rows(); ++r) {
      ASSERT_EQ(refreshed.RowKey(r), rebuilt.RowKey(r));
      ASSERT_NEAR(refreshed.aggregate(r).sum, rebuilt.aggregate(r).sum,
                  1e-6);
      ASSERT_EQ(refreshed.aggregate(r).count, rebuilt.aggregate(r).count);
    }
  }
  // Indexes were rebuilt each cycle; validate the surviving one.
  const ViewIndex& index = catalog.indexes(AttributeSet::Of({0, 2}))[0];
  index.tree().CheckInvariants();
  EXPECT_EQ(index.num_entries(),
            catalog.view(AttributeSet::Of({0, 2})).num_rows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefreshStressTest,
                         ::testing::Range<uint64_t>(1, 11));

TEST(RefreshTest, WorkScalesWithStructureSize) {
  // The refresh cost of a structure is Ω(delta) plus index-rebuild work
  // proportional to its size — the behaviour maintenance_per_row models.
  TpcdScaledConfig config;
  config.rows = 20'000;
  FactTable fact = GenerateTpcdScaledFacts(config);
  Catalog catalog(&fact);
  AttributeSet big = AttributeSet::Of({0, 1, 2});
  AttributeSet small = AttributeSet::Of({1});
  catalog.MaterializeView(big);
  catalog.MaterializeView(small);
  catalog.BuildIndex(big, IndexKey({0, 1, 2}));
  catalog.BuildIndex(small, IndexKey({1}));

  AppendRandomRows(fact, 2'000, /*seed=*/4);
  Catalog::RefreshStats stats = catalog.RefreshAfterAppend();
  // The big view's index rebuild dominates: entries rebuilt ≈ |psc| ≫ |s|.
  EXPECT_GT(stats.index_entries_rebuilt,
            0.9 * static_cast<double>(catalog.view(big).num_rows()));
  EXPECT_EQ(stats.indexes_rebuilt, 2u);
}

}  // namespace
}  // namespace olapidx
