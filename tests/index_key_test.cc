#include "lattice/index_key.h"

#include <gtest/gtest.h>

namespace olapidx {
namespace {

TEST(IndexKeyTest, EmptyKeyIsNoIndex) {
  IndexKey key;
  EXPECT_TRUE(key.empty());
  EXPECT_EQ(key.size(), 0);
  EXPECT_TRUE(key.AsSet().empty());
  // With no index, the usable prefix is always empty (cost degrades to a
  // full scan in the cost model).
  EXPECT_TRUE(key.LongestSelectionPrefix(AttributeSet::Of({0, 1})).empty());
}

TEST(IndexKeyTest, AsSetIgnoresOrder) {
  EXPECT_EQ(IndexKey({2, 0}).AsSet(), AttributeSet::Of({0, 2}));
  EXPECT_EQ(IndexKey({0, 2}).AsSet(), AttributeSet::Of({0, 2}));
}

TEST(IndexKeyTest, LongestSelectionPrefixDependsOnOrder) {
  // Section 2's example: I_sp on view ps helps a query selecting on s,
  // but I_ps does not.
  IndexKey sp({1, 0});  // supplier, part
  IndexKey ps({0, 1});  // part, supplier
  AttributeSet select_s = AttributeSet::Of({1});
  EXPECT_EQ(sp.LongestSelectionPrefix(select_s), AttributeSet::Of({1}));
  EXPECT_TRUE(ps.LongestSelectionPrefix(select_s).empty());
}

TEST(IndexKeyTest, PrefixStopsAtFirstNonSelectionAttribute) {
  IndexKey key({3, 1, 2, 0});
  // Selection {3, 2}: prefix is just {3} because 1 interrupts.
  EXPECT_EQ(key.LongestSelectionPrefix(AttributeSet::Of({2, 3})),
            AttributeSet::Of({3}));
  // Selection {3, 1, 0}: prefix is {3, 1}; 2 interrupts before 0.
  EXPECT_EQ(key.LongestSelectionPrefix(AttributeSet::Of({0, 1, 3})),
            AttributeSet::Of({1, 3}));
  // Full selection: whole key.
  EXPECT_EQ(key.LongestSelectionPrefix(AttributeSet::Of({0, 1, 2, 3})),
            AttributeSet::Of({0, 1, 2, 3}));
}

TEST(IndexKeyTest, HasProperPrefix) {
  IndexKey scp({1, 2, 0});
  EXPECT_TRUE(scp.HasProperPrefix(IndexKey({1})));
  EXPECT_TRUE(scp.HasProperPrefix(IndexKey({1, 2})));
  EXPECT_FALSE(scp.HasProperPrefix(IndexKey({1, 2, 0})));  // not proper
  EXPECT_FALSE(scp.HasProperPrefix(IndexKey({2})));
  EXPECT_FALSE(IndexKey({1}).HasProperPrefix(scp));
}

TEST(IndexKeyTest, ToString) {
  std::vector<std::string> names = {"p", "s", "c"};
  EXPECT_EQ(IndexKey({1, 0}).ToString(names), "I_sp");
  EXPECT_EQ(IndexKey().ToString(names), "I_none");
}

TEST(IndexKeyDeathTest, DuplicateAttributesRejected) {
  EXPECT_DEATH(IndexKey({0, 0}), "CHECK");
}

}  // namespace
}  // namespace olapidx
