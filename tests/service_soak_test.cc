// Deterministic soak: concurrent what-if requests, a live observation
// stream with a mid-run workload shift, periodic epoch closes, and —
// when the build has fault injection — seeded random faults at every
// service-adjacent site. Invariants checked:
//
//   * no lost request: every WhatIf returns a terminal status, and the
//     outcome counters add up to exactly the number submitted;
//   * epochs are monotone (never decrease, advance only on success);
//   * the drift shift halfway through triggers at least one re-selection;
//   * no deadlock: the whole run finishes (gtest's timeout is the guard);
//   * the service ends in a consistent, journal-round-trippable state.
//
// OLAPIDX_SOAK_ITERS scales the request count (default 600 ≥ the ISSUE's
// N = 500 floor); the fault seed is fixed so failures replay exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "data/synthetic.h"
#include "service/advisor_service.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

SliceQuery Q(uint32_t group_mask, uint32_t selection_mask = 0) {
  return SliceQuery(AttributeSet::FromMask(group_mask),
                    AttributeSet::FromMask(selection_mask));
}

size_t SoakIters() {
  const char* env = std::getenv("OLAPIDX_SOAK_ITERS");
  if (env != nullptr) {
    long parsed = std::atol(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 600;
}

TEST(ServiceSoakTest, ConcurrentRequestsObservationsAndEpochs) {
  const size_t kRequests = SoakIters();
  SyntheticCube cube = UniformSyntheticCube(4, 8, 0.3);
  CubeLattice lattice(cube.schema);

  ServiceOptions options;
  options.base.algorithm = Algorithm::kInnerLevel;
  options.base.space_budget = 0.25 * cube.sizes.TotalViewSpace();
  options.graph.raw_scan_penalty = 2.0;
  options.drift_threshold = 0.05;
  options.max_concurrent_requests = 3;
  options.retry.base_micros = 1;
  options.default_deadline_ms = 5'000;
  options.journal_path =
      ::testing::TempDir() + "olapidx_soak.journal";
  std::remove(options.journal_path.c_str());

  StatusOr<std::unique_ptr<AdvisorService>> service_or =
      AdvisorService::Create(cube.schema, cube.sizes,
                             AllSliceQueries(lattice), options);
  ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
  AdvisorService& service = **service_or;

#ifdef OLAPIDX_FAULT_INJECTION
  // Seeded random faults at every service-layer site. Rates are low
  // enough that retries usually absorb them but high enough that every
  // degraded path runs during the soak.
  FaultInjector& faults = FaultInjector::Global();
  faults.Reset();
  faults.ArmRandom("service.whatif.run", 0.05, /*seed=*/41);
  faults.ArmRandom("service.sketch.insert", 0.02, /*seed=*/42);
  faults.ArmRandom("service.worker.spawn", 0.10, /*seed=*/43);
  faults.ArmRandom("service.swap", 0.10, /*seed=*/44);
  faults.ArmRandom("journal.write", 0.05, /*seed=*/45);
#endif

  std::atomic<size_t> submitted{0};
  std::atomic<size_t> terminal{0};
  std::atomic<bool> epochs_monotone{true};
  std::atomic<bool> stop_control{false};

  // Request plane: 4 threads racing the 3-slot admission limit.
  constexpr size_t kRequestThreads = 4;
  std::vector<std::thread> requesters;
  for (size_t t = 0; t < kRequestThreads; ++t) {
    requesters.emplace_back([&, t] {
      double budget = options.base.space_budget;
      for (size_t i = t; i < kRequests; i += kRequestThreads) {
        WhatIfRequest request;
        request.budgets = {budget * (0.5 + 0.1 * static_cast<double>(i % 9))};
        submitted.fetch_add(1);
        WhatIfResult result = service.WhatIf(request);
        // Terminal outcome, always: one of the four counted states.
        switch (result.status.code()) {
          case StatusCode::kOk:
          case StatusCode::kDeadlineExceeded:
          case StatusCode::kResourceExhausted:
          case StatusCode::kUnavailable:
            terminal.fetch_add(1);
            break;
          default:
            ADD_FAILURE() << "unexpected terminal status: "
                          << result.status.ToString();
            terminal.fetch_add(1);
        }
      }
    });
  }

  // Observation plane: a steady stream that shifts distribution halfway.
  std::thread observer([&] {
    for (size_t i = 0; i < kRequests; ++i) {
      bool late = i >= kRequests / 2;
      // Early: group-heavy on dims {0,1}. Late: selective on dims {2,3}.
      SliceQuery q = late ? Q(0b1000, 0b0100) : Q(0b0011);
      (void)service.Observe(q, late ? 4.0 : 1.0);  // drops are fine
      if (i % 64 == 0) std::this_thread::yield();
    }
  });

  // Control plane: epoch closes racing everything else.
  std::thread controller([&] {
    uint64_t last_epoch = service.epoch();
    while (!stop_control.load()) {
      EpochResult result = service.AdvanceEpoch();
      uint64_t now = service.epoch();
      if (now < last_epoch) epochs_monotone.store(false);
      if (result.status.ok() && result.epoch < last_epoch) {
        epochs_monotone.store(false);
      }
      last_epoch = now;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  for (std::thread& t : requesters) t.join();
  observer.join();
  // A few more epoch closes now that the full shifted stream is in.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop_control.store(true);
  controller.join();
#ifdef OLAPIDX_FAULT_INJECTION
  FaultInjector::Global().Reset();
#endif
  // Final epoch closes with faults disarmed: the shifted distribution
  // must trigger a re-selection by now if none happened under fire.
  (void)service.AdvanceEpoch();
  for (int i = 0; i < 3 && service.Stats().reselections == 0; ++i) {
    for (int j = 0; j < 50; ++j) {
      (void)service.Observe(Q(0b1100, 0b0010), 8.0);
    }
    (void)service.AdvanceEpoch();
  }

  // No lost request.
  EXPECT_EQ(submitted.load(), kRequests);
  EXPECT_EQ(terminal.load(), kRequests);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.whatif_ok + stats.whatif_deadline_exceeded +
                stats.whatif_rejected + stats.whatif_failed,
            kRequests);
  // Monotone epochs.
  EXPECT_TRUE(epochs_monotone.load());
  // The workload shift was noticed.
  EXPECT_GE(stats.reselections, 1u);
  // The service is still fully functional after the soak.
  WhatIfResult sanity = service.WhatIf(WhatIfRequest{});
  EXPECT_TRUE(sanity.status.ok()) << sanity.status.ToString();
  // And its final state journals + restores cleanly (faults disarmed).
  ASSERT_TRUE(service.Save().ok());
  StatusOr<std::unique_ptr<AdvisorService>> restored =
      AdvisorService::Create(cube.schema, cube.sizes,
                             AllSliceQueries(lattice), options);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->epoch(), service.epoch());
  EXPECT_EQ((*restored)->Snapshot().generation,
            service.Snapshot().generation);
  std::remove(options.journal_path.c_str());
}

}  // namespace
}  // namespace olapidx
