#include "data/csv_loader.h"

#include <gtest/gtest.h>

#include "engine/executor.h"

namespace olapidx {
namespace {

const char* kSampleCsv =
    "part,supplier,customer,sales\n"
    "widget,widgets-r-us,acme,100.5\n"
    "sprocket,widgets-r-us,acme,20\n"
    "widget,bolts-inc,globex,7.25\n"
    "widget,widgets-r-us,globex,2\n";

TEST(CsvLoaderTest, ParsesSample) {
  std::string error;
  std::unique_ptr<CsvCube> cube = LoadCsvFacts(kSampleCsv, &error);
  ASSERT_NE(cube, nullptr) << error;
  EXPECT_EQ(cube->schema.num_dimensions(), 3);
  EXPECT_EQ(cube->schema.dimension(0).name, "part");
  EXPECT_EQ(cube->schema.dimension(0).cardinality, 2u);  // widget, sprocket
  EXPECT_EQ(cube->schema.dimension(1).cardinality, 2u);
  EXPECT_EQ(cube->schema.dimension(2).cardinality, 2u);
  EXPECT_EQ(cube->fact.num_rows(), 4u);
  // Dictionary round trip.
  uint32_t widget = cube->dictionaries[0].Lookup("widget");
  ASSERT_NE(widget, Dictionary::kNotFound);
  EXPECT_EQ(cube->dictionaries[0].Decode(widget), "widget");
  EXPECT_EQ(cube->dictionaries[0].Lookup("gadget"),
            Dictionary::kNotFound);
  // First row encodes as all-zero codes (first appearance).
  EXPECT_EQ(cube->fact.RowDims(0), (std::vector<uint32_t>{0, 0, 0}));
  EXPECT_EQ(cube->fact.measure(0), 100.5);
}

TEST(CsvLoaderTest, LoadedCubeAnswersQueries) {
  std::string error;
  std::unique_ptr<CsvCube> cube = LoadCsvFacts(kSampleCsv, &error);
  ASSERT_NE(cube, nullptr) << error;
  Catalog catalog(&cube->fact);
  catalog.MaterializeView(AttributeSet::Of({0}));
  Executor executor(&catalog);
  // SUM(sales) grouped by part.
  SliceQuery q(AttributeSet::Of({0}), AttributeSet());
  GroupedResult result = executor.Execute(q, {});
  ASSERT_EQ(result.num_rows(), 2u);
  uint32_t widget = cube->dictionaries[0].Lookup("widget");
  for (size_t r = 0; r < result.num_rows(); ++r) {
    if (result.keys[r][0] == widget) {
      EXPECT_NEAR(result.sums[r], 100.5 + 7.25 + 2.0, 1e-9);
      EXPECT_EQ(result.aggregates[r].count, 3u);
    } else {
      EXPECT_NEAR(result.sums[r], 20.0, 1e-9);
    }
  }
}

TEST(CsvLoaderTest, SkipsBlankLines) {
  std::string error;
  std::unique_ptr<CsvCube> cube = LoadCsvFacts(
      "\n\na,m\nx,1\n\ny,2\n", &error);
  ASSERT_NE(cube, nullptr) << error;
  EXPECT_EQ(cube->fact.num_rows(), 2u);
}

TEST(CsvLoaderTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_EQ(LoadCsvFacts("", &error), nullptr);
  EXPECT_EQ(LoadCsvFacts("onlymeasure\n1\n", &error), nullptr);
  EXPECT_EQ(LoadCsvFacts("a,m\nx\n", &error), nullptr);  // ragged row
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_EQ(LoadCsvFacts("a,m\nx,notanumber\n", &error), nullptr);
  EXPECT_EQ(LoadCsvFacts("a,m\nx,inf\n", &error), nullptr);
  EXPECT_EQ(LoadCsvFacts("a,m\n,1\n", &error), nullptr);  // empty dim
  EXPECT_EQ(LoadCsvFacts("a,a,m\nx,y,1\n", &error), nullptr);  // dup col
  EXPECT_EQ(LoadCsvFacts("a,m\n", &error), nullptr);  // no data
}

TEST(CsvLoaderTest, RoundTrip) {
  std::string error;
  std::unique_ptr<CsvCube> cube = LoadCsvFacts(kSampleCsv, &error);
  ASSERT_NE(cube, nullptr) << error;
  std::string rendered =
      WriteCsvFacts(cube->fact, cube->dictionaries, "sales");
  std::unique_ptr<CsvCube> again = LoadCsvFacts(rendered, &error);
  ASSERT_NE(again, nullptr) << error;
  ASSERT_EQ(again->fact.num_rows(), cube->fact.num_rows());
  for (size_t r = 0; r < cube->fact.num_rows(); ++r) {
    // Codes are assigned in first-appearance order, which the writer
    // preserves, so coded rows match exactly.
    EXPECT_EQ(again->fact.RowDims(r), cube->fact.RowDims(r));
    EXPECT_EQ(again->fact.measure(r), cube->fact.measure(r));
  }
  for (int a = 0; a < cube->schema.num_dimensions(); ++a) {
    EXPECT_EQ(again->schema.dimension(a).name,
              cube->schema.dimension(a).name);
    EXPECT_EQ(again->schema.dimension(a).cardinality,
              cube->schema.dimension(a).cardinality);
  }
}

TEST(DictionaryTest, DenseCodesInFirstSeenOrder) {
  Dictionary d;
  EXPECT_EQ(d.Encode("b"), 0u);
  EXPECT_EQ(d.Encode("a"), 1u);
  EXPECT_EQ(d.Encode("b"), 0u);  // stable
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.Decode(1), "a");
}

}  // namespace
}  // namespace olapidx
