#include "data/csv_loader.h"

#include <gtest/gtest.h>

#include "engine/executor.h"

namespace olapidx {
namespace {

const char* kSampleCsv =
    "part,supplier,customer,sales\n"
    "widget,widgets-r-us,acme,100.5\n"
    "sprocket,widgets-r-us,acme,20\n"
    "widget,bolts-inc,globex,7.25\n"
    "widget,widgets-r-us,globex,2\n";

TEST(CsvLoaderTest, ParsesSample) {
  StatusOr<CsvCube> cube = LoadCsvFacts(kSampleCsv);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  EXPECT_EQ(cube->schema.num_dimensions(), 3);
  EXPECT_EQ(cube->schema.dimension(0).name, "part");
  EXPECT_EQ(cube->schema.dimension(0).cardinality, 2u);  // widget, sprocket
  EXPECT_EQ(cube->schema.dimension(1).cardinality, 2u);
  EXPECT_EQ(cube->schema.dimension(2).cardinality, 2u);
  EXPECT_EQ(cube->fact.num_rows(), 4u);
  // Dictionary round trip.
  uint32_t widget = cube->dictionaries[0].Lookup("widget");
  ASSERT_NE(widget, Dictionary::kNotFound);
  EXPECT_EQ(cube->dictionaries[0].Decode(widget), "widget");
  EXPECT_EQ(cube->dictionaries[0].Lookup("gadget"),
            Dictionary::kNotFound);
  // First row encodes as all-zero codes (first appearance).
  EXPECT_EQ(cube->fact.RowDims(0), (std::vector<uint32_t>{0, 0, 0}));
  EXPECT_EQ(cube->fact.measure(0), 100.5);
}

TEST(CsvLoaderTest, LoadedCubeAnswersQueries) {
  StatusOr<CsvCube> cube = LoadCsvFacts(kSampleCsv);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  Catalog catalog(&cube->fact);
  catalog.MaterializeView(AttributeSet::Of({0}));
  Executor executor(&catalog);
  // SUM(sales) grouped by part.
  SliceQuery q(AttributeSet::Of({0}), AttributeSet());
  GroupedResult result = executor.Execute(q, {});
  ASSERT_EQ(result.num_rows(), 2u);
  uint32_t widget = cube->dictionaries[0].Lookup("widget");
  for (size_t r = 0; r < result.num_rows(); ++r) {
    if (result.keys[r][0] == widget) {
      EXPECT_NEAR(result.sums[r], 100.5 + 7.25 + 2.0, 1e-9);
      EXPECT_EQ(result.aggregates[r].count, 3u);
    } else {
      EXPECT_NEAR(result.sums[r], 20.0, 1e-9);
    }
  }
}

TEST(CsvLoaderTest, SkipsBlankLines) {
  StatusOr<CsvCube> cube = LoadCsvFacts("\n\na,m\nx,1\n\ny,2\n");
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  EXPECT_EQ(cube->fact.num_rows(), 2u);
}

TEST(CsvLoaderTest, HandlesCrlfLineEndings) {
  StatusOr<CsvCube> cube = LoadCsvFacts("a,b,m\r\nx,u,1\r\ny,v,2\r\n");
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  EXPECT_EQ(cube->schema.dimension(0).name, "a");
  EXPECT_EQ(cube->fact.num_rows(), 2u);
  EXPECT_EQ(cube->dictionaries[1].Lookup("v"), 1u);  // no trailing '\r'
  EXPECT_EQ(cube->fact.measure(1), 2.0);
}

TEST(CsvLoaderTest, HandlesFinalRowWithoutNewline) {
  StatusOr<CsvCube> cube = LoadCsvFacts("a,m\nx,1\ny,2.5");
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  ASSERT_EQ(cube->fact.num_rows(), 2u);
  EXPECT_EQ(cube->fact.measure(1), 2.5);
}

TEST(CsvLoaderTest, RejectsMalformedInput) {
  EXPECT_FALSE(LoadCsvFacts("").ok());
  EXPECT_FALSE(LoadCsvFacts("onlymeasure\n1\n").ok());
  Status ragged = LoadCsvFacts("a,m\nx\n").status();  // ragged row
  EXPECT_EQ(ragged.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(ragged.message().find("line 2"), std::string::npos);
  EXPECT_FALSE(LoadCsvFacts("a,m\nx,notanumber\n").ok());
  EXPECT_FALSE(LoadCsvFacts("a,m\nx,inf\n").ok());
  EXPECT_FALSE(LoadCsvFacts("a,m\nx,nan\n").ok());
  EXPECT_FALSE(LoadCsvFacts("a,m\n,1\n").ok());  // empty dim
  EXPECT_FALSE(LoadCsvFacts("a,a,m\nx,y,1\n").ok());  // dup col
  EXPECT_FALSE(LoadCsvFacts("a,m\n").ok());  // no data
}

TEST(CsvLoaderTest, RejectsOverflowingMeasure) {
  Status status = LoadCsvFacts("a,m\nx,1e999\n").status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("overflow"), std::string::npos)
      << status.ToString();
}

TEST(CsvLoaderTest, HintsAtUnsupportedQuoting) {
  Status status =
      LoadCsvFacts("a,m\n\"x, the letter\",1\n").status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("quoting is not supported"),
            std::string::npos)
      << status.ToString();
}

TEST(CsvLoaderTest, RoundTrip) {
  StatusOr<CsvCube> cube = LoadCsvFacts(kSampleCsv);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  std::string rendered =
      WriteCsvFacts(cube->fact, cube->dictionaries, "sales");
  StatusOr<CsvCube> again = LoadCsvFacts(rendered);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_EQ(again->fact.num_rows(), cube->fact.num_rows());
  for (size_t r = 0; r < cube->fact.num_rows(); ++r) {
    // Codes are assigned in first-appearance order, which the writer
    // preserves, so coded rows match exactly.
    EXPECT_EQ(again->fact.RowDims(r), cube->fact.RowDims(r));
    EXPECT_EQ(again->fact.measure(r), cube->fact.measure(r));
  }
  for (int a = 0; a < cube->schema.num_dimensions(); ++a) {
    EXPECT_EQ(again->schema.dimension(a).name,
              cube->schema.dimension(a).name);
    EXPECT_EQ(again->schema.dimension(a).cardinality,
              cube->schema.dimension(a).cardinality);
  }
}

TEST(DictionaryTest, DenseCodesInFirstSeenOrder) {
  Dictionary d;
  EXPECT_EQ(d.Encode("b"), 0u);
  EXPECT_EQ(d.Encode("a"), 1u);
  EXPECT_EQ(d.Encode("b"), 0u);  // stable
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.Decode(1), "a");
}

}  // namespace
}  // namespace olapidx
