// Crash-resume at every stage: for each greedy algorithm (RGreedy via
// 1-greedy, InnerLevelGreedy) on both the flat and the hierarchical
// lattice, interrupt the selection after k = 0..stages-1 stages ("kill"),
// serialize the checkpoint through its on-disk format ("crash"), parse it
// back in a fresh config ("restart"), resume, and require the final
// design to be bit-identical to the uninterrupted run — same structures
// in the same order, same pick benefits, same τ, same space. This is the
// exhaustive form of the resilience-test spot checks: no interruption
// point anywhere in a greedy run may perturb the resumed result.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "core/serialize.h"
#include "data/synthetic.h"
#include "hierarchy/hierarchical_advisor.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

struct FlatCase {
  const char* name;
  Algorithm algorithm;
};

class FlatCheckpointResumeTest
    : public ::testing::TestWithParam<FlatCase> {
 protected:
  FlatCheckpointResumeTest() : cube_(UniformSyntheticCube(4, 8, 0.3)) {
    CubeLattice lattice(cube_.schema);
    CubeGraphOptions opts;
    opts.raw_scan_penalty = 2.0;
    advisor_ = std::make_unique<Advisor>(cube_.schema, cube_.sizes,
                                         AllSliceQueries(lattice), opts);
  }

  AdvisorConfig Config() const {
    AdvisorConfig config;
    config.algorithm = GetParam().algorithm;
    config.space_budget = 0.3 * cube_.sizes.TotalViewSpace();
    return config;
  }

  SyntheticCube cube_;
  std::unique_ptr<Advisor> advisor_;
};

TEST_P(FlatCheckpointResumeTest, KillAtEveryStageResumesBitIdentically) {
  Recommendation full = advisor_->Recommend(Config());
  ASSERT_TRUE(full.completed) << full.status.ToString();
  ASSERT_GT(full.raw.stats.stages, 1u);

  for (size_t k = 0; k < full.raw.stats.stages; ++k) {
    SCOPED_TRACE("killed after stage " + std::to_string(k));
    // Kill: a deterministic stage budget stops the run after k stages.
    AdvisorConfig killed = Config();
    killed.control.max_steps = k;
    Recommendation partial = advisor_->Recommend(killed);
    ASSERT_FALSE(partial.completed);
    ASSERT_EQ(partial.status.code(), StatusCode::kResourceExhausted);
    ASSERT_EQ(partial.raw.stats.stages, k);

    // Crash + restart: the checkpoint survives only via its disk format.
    std::string text = SerializeCheckpoint(partial.ToCheckpoint(killed),
                                           cube_.schema);
    StatusOr<SelectionCheckpoint> checkpoint =
        ParseCheckpoint(text, cube_.schema);
    ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();
    EXPECT_EQ(checkpoint->graph_fingerprint, advisor_->graph_fingerprint());

    AdvisorConfig resumed_config = Config();
    resumed_config.resume = &*checkpoint;
    Recommendation resumed = advisor_->Recommend(resumed_config);
    ASSERT_TRUE(resumed.completed) << resumed.status.ToString();

    ASSERT_EQ(resumed.structures.size(), full.structures.size());
    for (size_t i = 0; i < full.structures.size(); ++i) {
      EXPECT_EQ(resumed.structures[i].view, full.structures[i].view);
      EXPECT_TRUE(resumed.structures[i].index == full.structures[i].index);
      EXPECT_EQ(resumed.structures[i].name, full.structures[i].name);
    }
    EXPECT_EQ(resumed.raw.pick_benefits, full.raw.pick_benefits);
    EXPECT_EQ(resumed.raw.final_cost, full.raw.final_cost);
    EXPECT_EQ(resumed.raw.space_used, full.raw.space_used);
    EXPECT_EQ(resumed.raw.stats.stages, full.raw.stats.stages);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Greedy, FlatCheckpointResumeTest,
    ::testing::Values(FlatCase{"r_greedy", Algorithm::kOneGreedy},
                      FlatCase{"inner_level", Algorithm::kInnerLevel}),
    [](const ::testing::TestParamInfo<FlatCase>& param) {
      return param.param.name;
    });

class HierarchicalCheckpointResumeTest
    : public ::testing::TestWithParam<FlatCase> {
 protected:
  HierarchicalCheckpointResumeTest() {
    HierarchicalSchema schema({
        HierarchicalDimension{"store", {{"store", 40}, {"region", 4}}},
        HierarchicalDimension{"day", {{"day", 30}, {"month", 6}}},
    });
    HierarchicalGraphOptions opts;
    opts.raw_scan_penalty = 2.0;
    StatusOr<HierarchicalAdvisor> advisor = HierarchicalAdvisor::Create(
        schema, 1'000, UniformHWorkload(schema), opts);
    EXPECT_TRUE(advisor.ok()) << advisor.status().ToString();
    advisor_ =
        std::make_unique<HierarchicalAdvisor>(*std::move(advisor));
  }

  AdvisorConfig Config() const {
    AdvisorConfig config;
    config.algorithm = GetParam().algorithm;
    config.space_budget = 2'500;
    return config;
  }

  std::unique_ptr<HierarchicalAdvisor> advisor_;
};

TEST_P(HierarchicalCheckpointResumeTest,
       KillAtEveryStageResumesBitIdentically) {
  HRecommendation full = advisor_->TryRecommend(Config());
  ASSERT_TRUE(full.completed) << full.status.ToString();
  ASSERT_GT(full.raw.stats.stages, 1u);

  for (size_t k = 0; k < full.raw.stats.stages; ++k) {
    SCOPED_TRACE("killed after stage " + std::to_string(k));
    AdvisorConfig killed = Config();
    killed.control.max_steps = k;
    HRecommendation partial = advisor_->TryRecommend(killed);
    ASSERT_FALSE(partial.completed);
    ASSERT_EQ(partial.status.code(), StatusCode::kResourceExhausted);

    HSelectionCheckpoint checkpoint = partial.ToCheckpoint(Config());
    EXPECT_EQ(checkpoint.graph_fingerprint,
              advisor_->graph_fingerprint());
    HRecommendation resumed = advisor_->TryRecommend(Config(), &checkpoint);
    ASSERT_TRUE(resumed.completed) << resumed.status.ToString();

    ASSERT_EQ(resumed.structures.size(), full.structures.size());
    for (size_t i = 0; i < full.structures.size(); ++i) {
      EXPECT_EQ(resumed.structures[i].name, full.structures[i].name);
      EXPECT_EQ(resumed.structures[i].space, full.structures[i].space);
    }
    EXPECT_EQ(resumed.raw.pick_benefits, full.raw.pick_benefits);
    EXPECT_EQ(resumed.raw.final_cost, full.raw.final_cost);
    EXPECT_EQ(resumed.raw.space_used, full.raw.space_used);
    EXPECT_EQ(resumed.raw.stats.stages, full.raw.stats.stages);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Greedy, HierarchicalCheckpointResumeTest,
    ::testing::Values(FlatCase{"r_greedy", Algorithm::kOneGreedy},
                      FlatCase{"inner_level", Algorithm::kInnerLevel}),
    [](const ::testing::TestParamInfo<FlatCase>& param) {
      return param.param.name;
    });

}  // namespace
}  // namespace olapidx
