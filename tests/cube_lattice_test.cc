#include "lattice/cube_lattice.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace olapidx {
namespace {

CubeSchema ThreeDims() {
  return CubeSchema(
      {Dimension{"p", 10}, Dimension{"s", 10}, Dimension{"c", 10}});
}

TEST(CubeLatticeTest, ViewCount) {
  CubeLattice lattice(ThreeDims());
  EXPECT_EQ(lattice.num_dimensions(), 3);
  EXPECT_EQ(lattice.num_views(), 8u);
  EXPECT_EQ(lattice.BaseView(), 7u);
}

TEST(CubeLatticeTest, DependenceRelation) {
  CubeLattice lattice(ThreeDims());
  ViewId p = lattice.ViewOf(AttributeSet::Of({0}));
  ViewId pc = lattice.ViewOf(AttributeSet::Of({0, 2}));
  ViewId c = lattice.ViewOf(AttributeSet::Of({2}));
  EXPECT_TRUE(lattice.DependsOn(p, pc));   // p computable from pc
  EXPECT_FALSE(lattice.DependsOn(pc, p));
  EXPECT_FALSE(lattice.DependsOn(p, c));
  EXPECT_TRUE(lattice.DependsOn(p, p));
  // Everything depends on the base view.
  for (ViewId v = 0; v < lattice.num_views(); ++v) {
    EXPECT_TRUE(lattice.DependsOn(v, lattice.BaseView()));
  }
}

TEST(CubeLatticeTest, ImmediateChildrenAndParents) {
  CubeLattice lattice(ThreeDims());
  ViewId ps = lattice.ViewOf(AttributeSet::Of({0, 1}));
  std::vector<ViewId> children = lattice.ImmediateChildren(ps);
  std::set<ViewId> child_set(children.begin(), children.end());
  EXPECT_EQ(child_set,
            (std::set<ViewId>{lattice.ViewOf(AttributeSet::Of({0})),
                              lattice.ViewOf(AttributeSet::Of({1}))}));
  std::vector<ViewId> parents = lattice.ImmediateParents(ps);
  ASSERT_EQ(parents.size(), 1u);
  EXPECT_EQ(parents[0], lattice.BaseView());
  EXPECT_TRUE(lattice.ImmediateParents(lattice.BaseView()).empty());
  EXPECT_TRUE(lattice.ImmediateChildren(0).empty());
}

TEST(CubeLatticeTest, FatIndexesArePermutations) {
  CubeLattice lattice(ThreeDims());
  std::vector<IndexKey> keys = lattice.FatIndexes(lattice.BaseView());
  EXPECT_EQ(keys.size(), 6u);  // 3! permutations
  std::set<IndexKey> unique(keys.begin(), keys.end());
  EXPECT_EQ(unique.size(), 6u);
  for (const IndexKey& k : keys) {
    EXPECT_EQ(k.AsSet(), AttributeSet::Of({0, 1, 2}));
  }
  // The apex view has no indexes.
  EXPECT_TRUE(lattice.FatIndexes(0).empty());
  // A one-attribute view has exactly one.
  EXPECT_EQ(lattice.FatIndexes(lattice.ViewOf(AttributeSet::Of({1})))
                .size(),
            1u);
}

TEST(CubeLatticeTest, AllIndexesAreOrderedSubsets) {
  CubeLattice lattice(ThreeDims());
  std::vector<IndexKey> keys = lattice.AllIndexes(lattice.BaseView());
  // sum_{r=1..3} 3!/(3-r)! = 3 + 6 + 6 = 15.
  EXPECT_EQ(keys.size(), 15u);
  std::set<IndexKey> unique(keys.begin(), keys.end());
  EXPECT_EQ(unique.size(), 15u);
}

TEST(CubeLatticeTest, StructureCounts) {
  EXPECT_EQ(CubeLattice::NumFatIndexes(0), 0u);
  EXPECT_EQ(CubeLattice::NumFatIndexes(1), 1u);
  EXPECT_EQ(CubeLattice::NumFatIndexes(3), 6u);
  EXPECT_EQ(CubeLattice::NumFatIndexes(6), 720u);
  EXPECT_EQ(CubeLattice::NumAllIndexes(3), 15u);
  // Section 3.5: 2^n views; fat structures grow factorially.
  // n = 3: views 8 + indexes (3·1 + 3·2 + 1·6) = 8 + 15 = 23.
  EXPECT_EQ(CubeLattice::TotalFatStructures(3), 23u);
  // n = 6: 64 views + 1957 - 64 + ... = computed value must match the sum.
  uint64_t expected = 0;
  // C(6,k)·(1 + k!) summed manually: 1·(1+0)=... compute directly:
  const uint64_t choose[7] = {1, 6, 15, 20, 15, 6, 1};
  const uint64_t fact[7] = {1, 1, 2, 6, 24, 120, 720};
  for (int k = 0; k <= 6; ++k) {
    expected += choose[k] * (1 + (k == 0 ? 0 : fact[k]));
  }
  EXPECT_EQ(CubeLattice::TotalFatStructures(6), expected);
}

TEST(CubeLatticeTest, FatIndexesMatchCountFormula) {
  CubeSchema schema({Dimension{"a", 2}, Dimension{"b", 2},
                     Dimension{"c", 2}, Dimension{"d", 2}});
  CubeLattice lattice(schema);
  uint64_t total = lattice.num_views();
  for (ViewId v = 0; v < lattice.num_views(); ++v) {
    total += lattice.FatIndexes(v).size();
  }
  EXPECT_EQ(total, CubeLattice::TotalFatStructures(4));
}

}  // namespace
}  // namespace olapidx
