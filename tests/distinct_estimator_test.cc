#include "cost/distinct_estimator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace olapidx {
namespace {

std::vector<uint64_t> DrawSample(uint64_t distinct, size_t n,
                                 uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<uint64_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(rng.NextBounded(static_cast<uint32_t>(distinct)));
  }
  return out;
}

TEST(ExactDistinctTest, Basics) {
  EXPECT_EQ(ExactDistinct({}), 0u);
  EXPECT_EQ(ExactDistinct({5}), 1u);
  EXPECT_EQ(ExactDistinct({5, 5, 5}), 1u);
  EXPECT_EQ(ExactDistinct({1, 2, 3, 2, 1}), 3u);
}

TEST(ChaoEstimateTest, AllUniqueSampleExtrapolates) {
  // A sample with no duplicates: Chao falls back to d_n (f2 == 0), clipped
  // to the population size.
  std::vector<uint64_t> sample = {1, 2, 3, 4};
  EXPECT_NEAR(ChaoEstimate(sample, 1000), 4.0, 1e-9);
}

TEST(ChaoEstimateTest, ReasonableOnUniformData) {
  constexpr uint64_t kDistinct = 500;
  constexpr uint64_t kPopulation = 100'000;
  std::vector<uint64_t> sample = DrawSample(kDistinct, 2'000, 17);
  double est = ChaoEstimate(sample, kPopulation);
  EXPECT_GT(est, kDistinct * 0.7);
  EXPECT_LT(est, kDistinct * 1.5);
}

TEST(GeeEstimateTest, WithinGuaranteedFactor) {
  // GEE is within sqrt(N/n) of the truth; with N/n = 25 the factor is 5.
  constexpr uint64_t kDistinct = 400;
  constexpr size_t kSample = 4'000;
  constexpr uint64_t kPopulation = 100'000;
  std::vector<uint64_t> sample = DrawSample(kDistinct, kSample, 23);
  double est = GeeEstimate(sample, kPopulation);
  double factor = std::sqrt(static_cast<double>(kPopulation) / kSample);
  EXPECT_GE(est, static_cast<double>(kDistinct) / factor * 0.9);
  EXPECT_LE(est, static_cast<double>(kDistinct) * factor * 1.1);
}

TEST(GeeEstimateTest, FullScanIsExact) {
  // When the "sample" is the full population, every estimator should land
  // on the exact distinct count.
  std::vector<uint64_t> all = DrawSample(100, 5'000, 31);
  uint64_t exact = ExactDistinct(all);
  EXPECT_NEAR(GeeEstimate(all, all.size()), static_cast<double>(exact),
              1e-9);
}

TEST(NaiveScaleUpTest, OverestimatesSaturatedDomains) {
  // 2000 draws over 50 distinct values: the sample already saw everything,
  // yet naive scale-up multiplies by N/n — the failure mode that motivates
  // principled estimators.
  std::vector<uint64_t> sample = DrawSample(50, 2'000, 41);
  double naive = NaiveScaleUpEstimate(sample, 100'000);
  EXPECT_GT(naive, 1'000.0);  // wildly above the true 50
  double gee = GeeEstimate(sample, 100'000);
  EXPECT_LT(gee, naive);  // GEE is strictly saner here
}

TEST(EstimatorsTest, ClampedToPopulation) {
  std::vector<uint64_t> sample = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_LE(GeeEstimate(sample, 10), 10.0);
  EXPECT_LE(ChaoEstimate(sample, 10), 10.0);
  EXPECT_LE(NaiveScaleUpEstimate(sample, 10), 10.0);
}

}  // namespace
}  // namespace olapidx
