#include "engine/key_codec.h"

#include <gtest/gtest.h>

namespace olapidx {
namespace {

CubeSchema SmallSchema() {
  // Cardinalities chosen to give distinct bit widths: 1000 → 10 bits,
  // 50 → 6 bits, 3 → 2 bits.
  return CubeSchema(
      {Dimension{"a", 1000}, Dimension{"b", 50}, Dimension{"c", 3}});
}

TEST(KeyCodecTest, RoundTrips) {
  CubeSchema schema = SmallSchema();
  KeyCodec codec(schema, {2, 0, 1});  // key order: c, a, b
  std::vector<uint32_t> dims = {999, 49, 2};  // values by attribute id
  uint64_t key = codec.EncodeRow(dims);
  EXPECT_EQ(codec.Decode(key, 0), 2u);    // c
  EXPECT_EQ(codec.Decode(key, 1), 999u);  // a
  EXPECT_EQ(codec.Decode(key, 2), 49u);   // b
  EXPECT_EQ(codec.total_bits(), 2 + 10 + 6);
}

TEST(KeyCodecTest, OrderPreservedLexicographically) {
  CubeSchema schema = SmallSchema();
  KeyCodec codec(schema, {0, 1});
  // (5, 49) < (6, 0) lexicographically.
  EXPECT_LT(codec.EncodePrefix({5, 49}), codec.EncodePrefix({6, 0}));
  // Same first attr: second decides.
  EXPECT_LT(codec.EncodePrefix({5, 3}), codec.EncodePrefix({5, 4}));
}

TEST(KeyCodecTest, PrefixRangeCoversExactlyMatchingKeys) {
  CubeSchema schema = SmallSchema();
  KeyCodec codec(schema, {0, 1, 2});
  auto [lo, hi] = codec.PrefixRange({7});
  // Smallest and largest keys with a = 7: the suffix (b, c = 6 + 2 bits)
  // ranges over all bit patterns.
  EXPECT_EQ(lo, codec.EncodePrefix({7, 0, 0}));
  EXPECT_EQ(hi, codec.EncodePrefix({7}) | ((1ULL << (6 + 2)) - 1));
  // Neighbours fall outside.
  EXPECT_LT(codec.EncodePrefix({6, 49}), lo);
  EXPECT_GT(codec.EncodePrefix({8, 0}), hi);
}

TEST(KeyCodecTest, FullPrefixRangeIsPointRange) {
  CubeSchema schema = SmallSchema();
  KeyCodec codec(schema, {0, 1});
  auto [lo, hi] = codec.PrefixRange({3, 4});
  EXPECT_EQ(lo, hi);
}

TEST(KeyCodecTest, EmptyPrefixRangeCoversEverything) {
  CubeSchema schema = SmallSchema();
  KeyCodec codec(schema, {0, 1});
  auto [lo, hi] = codec.PrefixRange({});
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, (1ULL << codec.total_bits()) - 1);
}

TEST(KeyCodecTest, EmptyKey) {
  CubeSchema schema = SmallSchema();
  KeyCodec codec(schema, {});
  EXPECT_EQ(codec.total_bits(), 0);
  EXPECT_EQ(codec.EncodeRow({1, 2, 0}), 0u);
}

TEST(KeyCodecTest, CardinalityOneDimension) {
  CubeSchema schema(
      {Dimension{"a", 1}, Dimension{"b", 4}});
  KeyCodec codec(schema, {0, 1});
  EXPECT_EQ(codec.total_bits(), 1 + 2);
  EXPECT_EQ(codec.Decode(codec.EncodeRow({0, 3}), 1), 3u);
}

TEST(KeyCodecDeathTest, TooManyBitsRejected) {
  std::vector<Dimension> dims;
  for (int i = 0; i < 5; ++i) {
    dims.push_back(Dimension{"d" + std::to_string(i), 1u << 20});
  }
  CubeSchema schema(dims);  // 5 × 20 bits = 100 > 64
  EXPECT_DEATH(KeyCodec(schema, {0, 1, 2, 3, 4}), "CHECK");
}

TEST(KeyCodecDeathTest, PrefixValueOutOfRange) {
  CubeSchema schema = SmallSchema();
  KeyCodec codec(schema, {2});  // c has 2 bits (max value 3)
  EXPECT_DEATH(codec.EncodePrefix({4}), "CHECK");
}

}  // namespace
}  // namespace olapidx
