#include "engine/physical_design.h"

#include <gtest/gtest.h>

#include "data/fact_generator.h"

namespace olapidx {
namespace {

CubeSchema SmallSchema() {
  return CubeSchema(
      {Dimension{"a", 6}, Dimension{"b", 5}, Dimension{"c", 4}});
}

TEST(PhysicalDesignTest, MaterializesCoarsestFirst) {
  FactTable fact = GenerateUniformFacts(SmallSchema(), 600, /*seed=*/4);
  Catalog catalog(&fact);
  // Items deliberately ordered finest-first; the planner must still roll
  // up everything below the base view.
  std::vector<PhysicalDesignItem> items = {
      {AttributeSet::Of({0}), IndexKey()},
      {AttributeSet::Of({0, 1}), IndexKey()},
      {AttributeSet::Of({0, 1, 2}), IndexKey()},
  };
  StatusOr<PhysicalDesignStats> stats =
      MaterializePhysicalDesign(catalog, items);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->views_materialized, 3u);
  EXPECT_EQ(stats->views_rolled_up, 2u);  // {0,1} from base, {0} from {0,1}
  EXPECT_EQ(stats->indexes_built, 0u);
  EXPECT_EQ(stats->total_rows, catalog.TotalSpaceRows());
}

TEST(PhysicalDesignTest, IndexItemsImplyTheirView) {
  FactTable fact = GenerateUniformFacts(SmallSchema(), 300, /*seed=*/5);
  Catalog catalog(&fact);
  std::vector<PhysicalDesignItem> items = {
      {AttributeSet::Of({0, 1}), IndexKey({1, 0})},
  };
  StatusOr<PhysicalDesignStats> stats =
      MaterializePhysicalDesign(catalog, items);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(catalog.HasView(AttributeSet::Of({0, 1})));
  EXPECT_EQ(stats->views_materialized, 1u);
  EXPECT_EQ(stats->indexes_built, 1u);
  EXPECT_EQ(catalog.indexes(AttributeSet::Of({0, 1})).size(), 1u);
}

TEST(PhysicalDesignTest, Idempotent) {
  FactTable fact = GenerateUniformFacts(SmallSchema(), 300, /*seed=*/6);
  Catalog catalog(&fact);
  std::vector<PhysicalDesignItem> items = {
      {AttributeSet::Of({1}), IndexKey()},
      {AttributeSet::Of({1}), IndexKey({1})},
      {AttributeSet::Of({1}), IndexKey({1})},  // duplicate index
  };
  StatusOr<PhysicalDesignStats> first =
      MaterializePhysicalDesign(catalog, items);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->views_materialized, 1u);
  EXPECT_EQ(first->indexes_built, 1u);
  StatusOr<PhysicalDesignStats> second =
      MaterializePhysicalDesign(catalog, items);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->views_materialized, 0u);
  EXPECT_EQ(second->indexes_built, 0u);
  EXPECT_EQ(second->total_rows, first->total_rows);
}

TEST(PhysicalDesignTest, RollupProducesSameContentsAsDirect) {
  FactTable fact = GenerateUniformFacts(SmallSchema(), 700, /*seed=*/7);
  Catalog planned(&fact);
  std::vector<PhysicalDesignItem> items = {
      {AttributeSet::Of({2}), IndexKey()},
      {AttributeSet::Of({1, 2}), IndexKey()},
      {AttributeSet::Of({0, 1, 2}), IndexKey()},
  };
  ASSERT_TRUE(MaterializePhysicalDesign(planned, items).ok());
  MaterializedView direct =
      MaterializedView::FromFactTable(fact, AttributeSet::Of({2}));
  const MaterializedView& rolled = planned.view(AttributeSet::Of({2}));
  ASSERT_EQ(rolled.num_rows(), direct.num_rows());
  for (size_t r = 0; r < direct.num_rows(); ++r) {
    EXPECT_EQ(rolled.RowKey(r), direct.RowKey(r));
    EXPECT_NEAR(rolled.sum(r), direct.sum(r), 1e-9);
  }
}

TEST(PhysicalDesignTest, RejectsInvalidItemsWithoutSideEffects) {
  FactTable fact = GenerateUniformFacts(SmallSchema(), 200, /*seed=*/8);
  Catalog catalog(&fact);
  std::vector<PhysicalDesignItem> items = {
      {AttributeSet::Of({0}), IndexKey()},
      // Index key {1} is outside view {0}: the whole design is rejected
      // up front, so even the valid first item must not be applied.
      {AttributeSet::Of({0}), IndexKey({1})},
  };
  StatusOr<PhysicalDesignStats> stats =
      MaterializePhysicalDesign(catalog, items);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(stats.status().message().find("design item 2"),
            std::string::npos)
      << stats.status().ToString();
  EXPECT_TRUE(catalog.materialized_views().empty());
}

}  // namespace
}  // namespace olapidx
