#include "engine/executor.h"

#include <gtest/gtest.h>

#include "data/fact_generator.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

CubeSchema SmallSchema() {
  return CubeSchema(
      {Dimension{"a", 8}, Dimension{"b", 6}, Dimension{"c", 4}});
}

bool SameResult(const GroupedResult& x, const GroupedResult& y) {
  if (x.group_attrs != y.group_attrs) return false;
  if (x.num_rows() != y.num_rows()) return false;
  for (size_t r = 0; r < x.num_rows(); ++r) {
    if (x.keys[r] != y.keys[r]) return false;
    if (std::abs(x.sums[r] - y.sums[r]) > 1e-6) return false;
  }
  return true;
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : fact_(GenerateUniformFacts(SmallSchema(), 800, /*seed=*/21)),
        catalog_(&fact_),
        executor_(&catalog_) {}

  FactTable fact_;
  Catalog catalog_;
  Executor executor_;
};

TEST_F(ExecutorTest, RawFallbackMatchesNaive) {
  SliceQuery q(AttributeSet::Of({0}), AttributeSet::Of({1}));
  ExecutionStats stats;
  GroupedResult fast = executor_.Execute(q, {3}, &stats);
  GroupedResult naive = executor_.ExecuteNaive(q, {3});
  EXPECT_TRUE(SameResult(fast, naive));
  EXPECT_TRUE(stats.used_raw);
  EXPECT_EQ(stats.rows_processed, fact_.num_rows());
}

TEST_F(ExecutorTest, ViewScanBeatsRaw) {
  catalog_.MaterializeView(AttributeSet::Of({0, 1}));
  SliceQuery q(AttributeSet::Of({0}), AttributeSet::Of({1}));
  ExecutionStats stats;
  GroupedResult fast = executor_.Execute(q, {2}, &stats);
  EXPECT_TRUE(SameResult(fast, executor_.ExecuteNaive(q, {2})));
  EXPECT_FALSE(stats.used_raw);
  EXPECT_EQ(stats.view, AttributeSet::Of({0, 1}));
  EXPECT_TRUE(stats.index.empty());
  EXPECT_EQ(stats.rows_processed,
            catalog_.view(AttributeSet::Of({0, 1})).num_rows());
}

TEST_F(ExecutorTest, IndexScanTouchesOnlyMatchingRows) {
  AttributeSet ab = AttributeSet::Of({0, 1});
  catalog_.MaterializeView(ab);
  catalog_.BuildIndex(ab, IndexKey({1, 0}));
  SliceQuery q(AttributeSet::Of({0}), AttributeSet::Of({1}));
  ExecutionStats stats;
  GroupedResult fast = executor_.Execute(q, {4}, &stats);
  EXPECT_TRUE(SameResult(fast, executor_.ExecuteNaive(q, {4})));
  EXPECT_FALSE(stats.used_raw);
  EXPECT_EQ(stats.index, IndexKey({1, 0}));
  // Only the rows with b = 4 are touched.
  size_t matching = 0;
  const MaterializedView& view = catalog_.view(ab);
  for (size_t r = 0; r < view.num_rows(); ++r) {
    if (view.dim(r, 1) == 4) ++matching;
  }
  EXPECT_EQ(stats.rows_processed, matching);
  EXPECT_LT(stats.rows_processed, view.num_rows());
}

TEST_F(ExecutorTest, UselessIndexIgnored) {
  AttributeSet ab = AttributeSet::Of({0, 1});
  catalog_.MaterializeView(ab);
  catalog_.BuildIndex(ab, IndexKey({0, 1}));  // prefix a, but selection is b
  SliceQuery q(AttributeSet::Of({0}), AttributeSet::Of({1}));
  ExecutionStats stats;
  executor_.Execute(q, {1}, &stats);
  EXPECT_TRUE(stats.index.empty());  // plain view scan chosen
}

TEST_F(ExecutorTest, PartialPrefixIndexFiltersRemainder) {
  AttributeSet abc = AttributeSet::Of({0, 1, 2});
  catalog_.MaterializeView(abc);
  catalog_.BuildIndex(abc, IndexKey({2, 0, 1}));
  // Selection on c (prefix) and b (post-filter); group by a.
  SliceQuery q(AttributeSet::Of({0}), AttributeSet::Of({1, 2}));
  ExecutionStats stats;
  GroupedResult fast = executor_.Execute(q, {2, 3}, &stats);  // b=2, c=3
  EXPECT_TRUE(SameResult(fast, executor_.ExecuteNaive(q, {2, 3})));
  EXPECT_EQ(stats.index, IndexKey({2, 0, 1}));
  // Rows touched: all rows with c = 3 (b filtered after the scan).
  const MaterializedView& view = catalog_.view(abc);
  size_t c3 = 0;
  for (size_t r = 0; r < view.num_rows(); ++r) {
    if (view.dim(r, 2) == 3) ++c3;
  }
  EXPECT_EQ(stats.rows_processed, c3);
}

TEST_F(ExecutorTest, FullPointLookup) {
  AttributeSet abc = AttributeSet::Of({0, 1, 2});
  catalog_.MaterializeView(abc);
  catalog_.BuildIndex(abc, IndexKey({0, 1, 2}));
  SliceQuery q(AttributeSet(), AttributeSet::Of({0, 1, 2}));
  ExecutionStats stats;
  GroupedResult res = executor_.Execute(q, {1, 2, 3}, &stats);
  EXPECT_TRUE(SameResult(res, executor_.ExecuteNaive(q, {1, 2, 3})));
  EXPECT_LE(stats.rows_processed, 1u);
}

TEST_F(ExecutorTest, WholeSubcubeQuery) {
  catalog_.MaterializeView(AttributeSet::Of({1}));
  SliceQuery q(AttributeSet::Of({1}), AttributeSet());
  ExecutionStats stats;
  GroupedResult res = executor_.Execute(q, {}, &stats);
  EXPECT_TRUE(SameResult(res, executor_.ExecuteNaive(q, {})));
  EXPECT_FALSE(stats.used_raw);
  EXPECT_EQ(stats.rows_processed,
            catalog_.view(AttributeSet::Of({1})).num_rows());
}

TEST_F(ExecutorTest, PlannerPrefersCheapestPath) {
  // Materialize both a big and a small answering view; the small one wins.
  catalog_.MaterializeView(AttributeSet::Of({0, 1, 2}));
  catalog_.MaterializeView(AttributeSet::Of({0}));
  SliceQuery q(AttributeSet::Of({0}), AttributeSet());
  ExecutionStats stats;
  executor_.Execute(q, {}, &stats);
  EXPECT_EQ(stats.view, AttributeSet::Of({0}));
}

TEST_F(ExecutorTest, AllSliceQueriesAgreeWithNaive) {
  // Full sweep: materialize a few views + indexes, then check every slice
  // query shape with a couple of selection constants.
  catalog_.MaterializeView(AttributeSet::Of({0, 1, 2}));
  catalog_.MaterializeView(AttributeSet::Of({0, 1}));
  catalog_.MaterializeView(AttributeSet::Of({2}));
  catalog_.BuildIndex(AttributeSet::Of({0, 1, 2}), IndexKey({2, 1, 0}));
  catalog_.BuildIndex(AttributeSet::Of({0, 1}), IndexKey({1, 0}));

  CubeLattice lattice(SmallSchema());
  Workload all = AllSliceQueries(lattice);
  for (const WeightedQuery& wq : all.queries()) {
    std::vector<int> sel = wq.query.selection().ToVector();
    std::vector<uint32_t> values;
    for (int a : sel) {
      values.push_back(static_cast<uint32_t>(a + 1));  // arbitrary constants
    }
    GroupedResult fast = executor_.Execute(wq.query, values);
    GroupedResult naive = executor_.ExecuteNaive(wq.query, values);
    EXPECT_TRUE(SameResult(fast, naive))
        << wq.query.ToString({"a", "b", "c"});
  }
}

TEST_F(ExecutorTest, ExplainRanksPlans) {
  AttributeSet ab = AttributeSet::Of({0, 1});
  catalog_.MaterializeView(ab);
  catalog_.BuildIndex(ab, IndexKey({1, 0}));
  SliceQuery q(AttributeSet::Of({0}), AttributeSet::Of({1}));
  std::vector<Executor::PlanChoice> plans = executor_.Explain(q);
  // raw + view scan + index path.
  ASSERT_EQ(plans.size(), 3u);
  EXPECT_TRUE(plans[0].chosen);
  EXPECT_FALSE(plans[0].use_raw);
  EXPECT_EQ(plans[0].index, IndexKey({1, 0}));
  for (size_t i = 1; i < plans.size(); ++i) {
    EXPECT_GE(plans[i].estimated_cost, plans[i - 1].estimated_cost);
    EXPECT_FALSE(plans[i].chosen);
  }
  // The chosen plan agrees with what Execute actually uses.
  ExecutionStats stats;
  executor_.Execute(q, {2}, &stats);
  EXPECT_EQ(stats.view, plans[0].view);
  EXPECT_EQ(stats.index, plans[0].index);
  // The rendering mentions the index and the view.
  std::string text = executor_.ExplainString(q);
  EXPECT_NE(text.find("-> index I_ba on ab"), std::string::npos);
  EXPECT_NE(text.find("scan raw fact table"), std::string::npos);
}

TEST_F(ExecutorTest, ExplainOnEmptyCatalogOffersOnlyRaw) {
  SliceQuery q(AttributeSet::Of({0}), AttributeSet());
  std::vector<Executor::PlanChoice> plans = executor_.Explain(q);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_TRUE(plans[0].use_raw);
  EXPECT_TRUE(plans[0].chosen);
}

TEST_F(ExecutorTest, EmptySelectionResultIsEmpty) {
  // A selection value that never occurs yields an empty result.
  catalog_.MaterializeView(AttributeSet::Of({0, 1}));
  catalog_.BuildIndex(AttributeSet::Of({0, 1}), IndexKey({1, 0}));
  SliceQuery q(AttributeSet::Of({0}), AttributeSet::Of({1}));
  // b has cardinality 6; value 5 may exist, so instead use a fact table
  // where we know a missing value: filter on b = 5 after checking.
  GroupedResult fast = executor_.Execute(q, {5});
  GroupedResult naive = executor_.ExecuteNaive(q, {5});
  EXPECT_TRUE(SameResult(fast, naive));
}

}  // namespace
}  // namespace olapidx
