#include "cost/linear_cost_model.h"

#include <gtest/gtest.h>

#include "data/tpcd.h"

namespace olapidx {
namespace {

// The worked examples of Sections 2 and 4 of the paper, verbatim.
class LinearCostModelPaperTest : public ::testing::Test {
 protected:
  LinearCostModelPaperTest() : sizes_(TpcdPaperSizes()), model_(&sizes_) {}

  ViewSizes sizes_;
  LinearCostModel model_;
  AttributeSet p_ = AttributeSet::Of({kTpcdPart});
  AttributeSet s_ = AttributeSet::Of({kTpcdSupplier});
  AttributeSet c_ = AttributeSet::Of({kTpcdCustomer});
};

TEST_F(LinearCostModelPaperTest, Q1FromPsWithoutIndexCostsFullScan) {
  // Q1 = γ_p σ_s answered from subcube ps: 0.8M rows.
  SliceQuery q1(p_, s_);
  EXPECT_NEAR(model_.QueryCost(q1, p_.Union(s_), IndexKey()), 0.8e6, 1);
}

TEST_F(LinearCostModelPaperTest, Q1FromPscCosts6M) {
  SliceQuery q1(p_, s_);
  EXPECT_NEAR(model_.QueryCost(q1, p_.Union(s_).Union(c_), IndexKey()), 6e6,
              1);
}

TEST_F(LinearCostModelPaperTest, Q1WithIspCosts80Rows) {
  // Section 2: answering γ_p σ_s via I_sp on ps processes
  // |ps| / |s| = 0.8M / 0.01M = 80 rows.
  SliceQuery q1(p_, s_);
  IndexKey i_sp({kTpcdSupplier, kTpcdPart});
  EXPECT_NEAR(model_.QueryCost(q1, p_.Union(s_), i_sp), 80.0, 1e-9);
}

TEST_F(LinearCostModelPaperTest, UselessIndexDegradesToScan) {
  // I_ps does not help γ_p σ_s (prefix p is not a selection attribute).
  SliceQuery q1(p_, s_);
  IndexKey i_ps({kTpcdPart, kTpcdSupplier});
  EXPECT_NEAR(model_.QueryCost(q1, p_.Union(s_), i_ps), 0.8e6, 1);
}

TEST_F(LinearCostModelPaperTest, Section411WorkedExample) {
  // Section 4.1.1: V = psc, Q = γ_p σ_s, J = I_scp. E = s, so the cost is
  // |psc| / |s| = 6M / 0.01M = 600 rows.
  SliceQuery q(p_, s_);
  IndexKey i_scp({kTpcdSupplier, kTpcdCustomer, kTpcdPart});
  EXPECT_NEAR(
      model_.QueryCost(q, p_.Union(s_).Union(c_), i_scp), 600.0, 1e-9);
}

TEST_F(LinearCostModelPaperTest, SliceOnPartFromPs) {
  // Section 4.1: γ_s σ_p from part,supplier with I_ps costs
  // |ps| / |p| = 0.8M / 0.2M = 4 rows.
  SliceQuery q(s_, p_);
  IndexKey i_ps({kTpcdPart, kTpcdSupplier});
  EXPECT_NEAR(model_.QueryCost(q, p_.Union(s_), i_ps), 4.0, 1e-9);
}

TEST_F(LinearCostModelPaperTest, SubcubeQueryIgnoresIndexes) {
  // A whole-subcube query (no selection) always scans |V|.
  SliceQuery q(p_.Union(s_), AttributeSet());
  IndexKey i_sp({kTpcdSupplier, kTpcdPart});
  EXPECT_NEAR(model_.QueryCost(q, p_.Union(s_), i_sp), 0.8e6, 1);
}

TEST_F(LinearCostModelPaperTest, FullSelectionPointLookup) {
  // Selecting on every attribute of ps via I_ps touches
  // |ps| / |ps| = 1 row.
  SliceQuery q(AttributeSet(), p_.Union(s_));
  IndexKey i_ps({kTpcdPart, kTpcdSupplier});
  EXPECT_NEAR(model_.QueryCost(q, p_.Union(s_), i_ps), 1.0, 1e-9);
}

TEST_F(LinearCostModelPaperTest, SpaceModel) {
  AttributeSet ps = p_.Union(s_);
  EXPECT_NEAR(model_.ViewSpace(ps), 0.8e6, 1);
  // Any index on a view occupies the view's size (Section 4.2.2).
  EXPECT_NEAR(model_.IndexSpace(ps), 0.8e6, 1);
}

TEST_F(LinearCostModelPaperTest, PrefixDominanceJustifiesFatPruning) {
  // c(Q, V, I_A) <= c(Q, V, I_B) whenever B is a proper prefix of A:
  // the fat index is never worse on any query.
  AttributeSet psc = p_.Union(s_).Union(c_);
  IndexKey fat({kTpcdSupplier, kTpcdCustomer, kTpcdPart});
  IndexKey thin({kTpcdSupplier, kTpcdCustomer});
  EXPECT_TRUE(fat.HasProperPrefix(thin));
  // Check over all 27 slice queries answerable from psc.
  for (uint32_t gb = 0; gb < 8; ++gb) {
    for (uint32_t sel = 0; sel < 8; ++sel) {
      if ((gb & sel) != 0) continue;
      SliceQuery q(AttributeSet::FromMask(gb), AttributeSet::FromMask(sel));
      EXPECT_LE(model_.QueryCost(q, psc, fat),
                model_.QueryCost(q, psc, thin) + 1e-9)
          << q.ToString({"p", "s", "c"});
    }
  }
}

TEST(LinearCostModelDeathTest, UnanswerableQueryRejected) {
  ViewSizes sizes = TpcdPaperSizes();
  LinearCostModel model(&sizes);
  SliceQuery q(AttributeSet::Of({kTpcdCustomer}), AttributeSet());
  EXPECT_DEATH(
      model.QueryCost(q, AttributeSet::Of({kTpcdPart}), IndexKey()),
      "CHECK");
}

}  // namespace
}  // namespace olapidx
