// Remaining small-surface coverage: formatting edge values, workload
// accessors, advisor option plumbing, and schema guards.

#include <gtest/gtest.h>

#include "common/format.h"
#include "core/advisor.h"
#include "data/synthetic.h"
#include "lattice/schema.h"

namespace olapidx {
namespace {

TEST(FormatEdgeTest, BoundariesAndNegatives) {
  EXPECT_EQ(FormatRowCount(0), "0");
  EXPECT_EQ(FormatRowCount(999), "999");
  EXPECT_EQ(FormatRowCount(1'000), "1K");
  EXPECT_EQ(FormatRowCount(99'999), "100K");  // rounds at 2 decimals
  EXPECT_EQ(FormatRowCount(100'000), "0.1M");
  EXPECT_EQ(FormatRowCount(1e9), "1G");
  EXPECT_EQ(FormatRowCount(-2'500'000), "-2.5M");
  EXPECT_EQ(FormatFixed(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

TEST(SchemaGuardsTest, InvalidSchemasDie) {
  EXPECT_DEATH(CubeSchema({}), "CHECK");
  EXPECT_DEATH(CubeSchema({Dimension{"a", 0}}), "CHECK");
  EXPECT_DEATH(CubeSchema({Dimension{"", 5}}), "CHECK");
  std::vector<Dimension> too_many(
      static_cast<size_t>(kMaxDimensions) + 1, Dimension{"d", 2});
  EXPECT_DEATH(CubeSchema{too_many}, "CHECK");
}

TEST(SchemaTest, DomainSizes) {
  CubeSchema schema({Dimension{"a", 10}, Dimension{"b", 20}});
  EXPECT_EQ(schema.DomainSize(AttributeSet()), 1.0);
  EXPECT_EQ(schema.DomainSize(AttributeSet::Of({0})), 10.0);
  EXPECT_EQ(schema.DomainSize(schema.AllAttributes()), 200.0);
  EXPECT_EQ(schema.names(), (std::vector<std::string>{"a", "b"}));
}

TEST(AdvisorOptionsTest, OptimalOptionsPlumbThrough) {
  SyntheticCube cube = UniformSyntheticCube(2, 10, 0.3);
  CubeLattice lattice(cube.schema);
  Advisor advisor(cube.schema, cube.sizes, AllSliceQueries(lattice));
  AdvisorConfig config;
  config.algorithm = Algorithm::kOptimal;
  config.space_budget = cube.sizes.TotalViewSpace();
  config.optimal.node_limit = 2;  // starve the solver
  Recommendation rec = advisor.Recommend(config);
  EXPECT_FALSE(rec.raw.proven_optimal);
  config.optimal.node_limit = 50'000'000;
  rec = advisor.Recommend(config);
  EXPECT_TRUE(rec.raw.proven_optimal);
}

TEST(AdvisorOptionsTest, LazyFlagPlumbsThrough) {
  SyntheticCube cube = UniformSyntheticCube(3, 10, 0.1);
  CubeLattice lattice(cube.schema);
  CubeGraphOptions opts;
  opts.raw_scan_penalty = 2.0;
  Advisor advisor(cube.schema, cube.sizes, AllSliceQueries(lattice), opts);
  AdvisorConfig config;
  config.algorithm = Algorithm::kRGreedy;
  config.r_greedy.r = 1;
  config.space_budget = 0.2 * cube.sizes.TotalViewSpace();
  Recommendation eager = advisor.Recommend(config);
  config.r_greedy.lazy_one_greedy = true;
  Recommendation lazy = advisor.Recommend(config);
  EXPECT_NEAR(lazy.average_query_cost, eager.average_query_cost,
              1e-9 * (1.0 + eager.average_query_cost));
  // The work comparison is against the full-rescan (unmemoized) eager
  // run; the memoized default can evaluate fewer candidates than lazy.
  config.r_greedy.lazy_one_greedy = false;
  config.r_greedy.memoize = false;
  Recommendation rescan = advisor.Recommend(config);
  EXPECT_LE(lazy.raw.candidates_evaluated,
            rescan.raw.candidates_evaluated);
}

}  // namespace
}  // namespace olapidx
