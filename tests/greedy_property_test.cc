// Structural properties of the greedy algorithms on cube-derived graphs:
// budget monotonicity, the prefix property of deterministic greedy,
// space-accounting identities, and the fat-pruning equivalence.

#include <gtest/gtest.h>

#include "core/cube_graph.h"
#include "core/inner_greedy.h"
#include "core/optimal.h"
#include "core/r_greedy.h"
#include "core/selection_state.h"
#include "core/two_step.h"
#include "data/synthetic.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

class GreedyPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  GreedyPropertyTest() {
    SyntheticCube cube =
        RandomSyntheticCube(3, 5, 500, 0.05, GetParam());
    CubeLattice lattice(cube.schema);
    CubeGraphOptions opts;
    opts.raw_scan_penalty = 2.0;
    cube_ = std::make_unique<CubeGraph>(BuildCubeGraph(
        cube.schema, cube.sizes, AllSliceQueries(lattice), opts));
    total_space_ = cube.sizes.TotalViewSpace() +
                   cube.sizes.TotalFatIndexSpace();
  }

  std::unique_ptr<CubeGraph> cube_;
  double total_space_ = 0.0;
};

TEST_P(GreedyPropertyTest, BenefitMonotoneInBudget) {
  for (int algo = 0; algo < 3; ++algo) {
    double prev = -1.0;
    for (double frac : {0.01, 0.05, 0.15, 0.4, 1.0}) {
      double budget = frac * total_space_;
      SelectionResult r =
          algo == 0   ? RGreedy(cube_->graph, budget, {.r = 1})
          : algo == 1 ? RGreedy(cube_->graph, budget, {.r = 2})
                      : InnerLevelGreedy(cube_->graph, budget);
      EXPECT_GE(r.Benefit(), prev - 1e-6)
          << "algo " << algo << " frac " << frac;
      prev = r.Benefit();
    }
  }
}

TEST_P(GreedyPropertyTest, SmallerBudgetSelectsPrefix) {
  // Deterministic greedy makes identical stage decisions until the budget
  // cuts it off, so the small-budget pick list is a prefix of the larger.
  SelectionResult small = RGreedy(cube_->graph, 0.05 * total_space_,
                                  RGreedyOptions{.r = 2});
  SelectionResult large = RGreedy(cube_->graph, 0.5 * total_space_,
                                  RGreedyOptions{.r = 2});
  ASSERT_LE(small.picks.size(), large.picks.size());
  for (size_t i = 0; i < small.picks.size(); ++i) {
    EXPECT_TRUE(small.picks[i] == large.picks[i]) << "position " << i;
  }
}

TEST_P(GreedyPropertyTest, SpaceAccountingMatchesPicks) {
  for (double frac : {0.05, 0.3}) {
    SelectionResult r =
        InnerLevelGreedy(cube_->graph, frac * total_space_);
    double space = 0.0;
    for (const StructureRef& s : r.picks) {
      space += cube_->graph.structure_space(s);
    }
    EXPECT_NEAR(space, r.space_used, 1e-6);
  }
}

TEST_P(GreedyPropertyTest, FinalCostMatchesReplayedPicks) {
  SelectionResult r = RGreedy(cube_->graph, 0.2 * total_space_,
                              RGreedyOptions{.r = 2});
  SelectionState replay(&cube_->graph);
  for (const StructureRef& s : r.picks) replay.ApplyStructure(s);
  EXPECT_NEAR(replay.TotalCost(), r.final_cost, 1e-6);
  EXPECT_NEAR(replay.SpaceUsed(), r.space_used, 1e-6);
}

TEST_P(GreedyPropertyTest, NoDuplicatePicks) {
  SelectionResult r = InnerLevelGreedy(cube_->graph, total_space_);
  for (size_t i = 0; i < r.picks.size(); ++i) {
    for (size_t j = i + 1; j < r.picks.size(); ++j) {
      EXPECT_FALSE(r.picks[i] == r.picks[j]);
    }
  }
}

TEST_P(GreedyPropertyTest, FatPruningLosesNothing) {
  // Rebuild the graph with all ordered-subset indexes; selection benefit
  // must match the fat-only run (Section 4.2.2).
  SyntheticCube cube = RandomSyntheticCube(3, 5, 500, 0.05, GetParam());
  CubeLattice lattice(cube.schema);
  CubeGraphOptions fat_opts;
  fat_opts.raw_scan_penalty = 2.0;
  CubeGraphOptions all_opts = fat_opts;
  all_opts.fat_indexes_only = false;
  CubeGraph fat = BuildCubeGraph(cube.schema, cube.sizes,
                                 AllSliceQueries(lattice), fat_opts);
  CubeGraph all = BuildCubeGraph(cube.schema, cube.sizes,
                                 AllSliceQueries(lattice), all_opts);
  double budget = 0.2 * total_space_;
  EXPECT_NEAR(InnerLevelGreedy(fat.graph, budget).Benefit(),
              InnerLevelGreedy(all.graph, budget).Benefit(),
              1e-6 * (1.0 + InnerLevelGreedy(fat.graph, budget).Benefit()));
}

TEST_P(GreedyPropertyTest, LazyOneGreedyEquivalentToEager) {
  for (double frac : {0.02, 0.1, 0.4}) {
    double budget = frac * total_space_;
    // The work comparison is against the full-rescan (unmemoized) eager
    // run; the memoized default can evaluate fewer candidates than lazy.
    SelectionResult eager = RGreedy(cube_->graph, budget,
                                    {.r = 1, .memoize = false});
    SelectionResult lazy = RGreedy(
        cube_->graph, budget,
        RGreedyOptions{.r = 1, .lazy_one_greedy = true});
    EXPECT_NEAR(lazy.Benefit(), eager.Benefit(),
                1e-9 * (1.0 + eager.Benefit()))
        << "frac " << frac;
    EXPECT_NEAR(lazy.final_cost, eager.final_cost,
                1e-9 * (1.0 + eager.final_cost));
    EXPECT_LE(lazy.candidates_evaluated, eager.candidates_evaluated);
  }
}

TEST_P(GreedyPropertyTest, StageCandidatesPartitionTotalWork) {
  // The eager algorithms attribute every candidate evaluation to exactly
  // one stage, so the per-stage counts must sum to the run total (and
  // there is one count per executed stage). The lazy 1-greedy heap
  // evaluates across stage boundaries and documents stage_candidates as
  // empty instead.
  double budget = 0.2 * total_space_;
  for (int algo = 0; algo < 3; ++algo) {
    SelectionResult r =
        algo == 0   ? RGreedy(cube_->graph, budget, {.r = 1})
        : algo == 1 ? RGreedy(cube_->graph, budget, {.r = 2})
                    : InnerLevelGreedy(cube_->graph, budget);
    ASSERT_TRUE(r.status.ok());
    // stages counts picking stages; the terminating no-winner probe adds
    // one more stage_candidates entry (its evaluations still count).
    EXPECT_GE(r.stats.stage_candidates.size(), r.stats.stages)
        << "algo " << algo;
    EXPECT_LE(r.stats.stage_candidates.size(), r.stats.stages + 1)
        << "algo " << algo;
    uint64_t sum = 0;
    for (uint64_t c : r.stats.stage_candidates) sum += c;
    EXPECT_EQ(sum, r.candidates_evaluated) << "algo " << algo;
  }
  SelectionResult lazy = RGreedy(cube_->graph, budget,
                                 RGreedyOptions{.r = 1,
                                                .lazy_one_greedy = true});
  EXPECT_TRUE(lazy.stats.stage_candidates.empty());
}

TEST_P(GreedyPropertyTest, ExhaustiveBudgetSelectsEverythingUseful) {
  // With an unlimited budget every algorithm reaches the perfect benefit
  // (all queries at their cheapest possible plan).
  SelectionResult r = RGreedy(cube_->graph, 10.0 * total_space_,
                              RGreedyOptions{.r = 2});
  double perfect = PerfectBenefit(cube_->graph);
  EXPECT_NEAR(r.Benefit(), perfect, 1e-6 * (1.0 + perfect));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace olapidx
