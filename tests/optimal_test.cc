#include "core/optimal.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/guarantees.h"
#include "core/inner_greedy.h"
#include "core/r_greedy.h"
#include "data/example_graphs.h"

namespace olapidx {
namespace {

TEST(OptimalTest, Figure2OptimalAtBudget7) {
  QueryViewGraph g = Figure2Instance();
  SelectionResult r = BranchAndBoundOptimal(g, kFigure2Budget);
  EXPECT_TRUE(r.proven_optimal);
  // {V1, I11} + V2 + four 41-indexes = 100 + 164 = 264.
  EXPECT_NEAR(r.Benefit(), 264.0, 1e-9);
  EXPECT_LE(r.space_used, kFigure2Budget + 1e-9);
}

TEST(OptimalTest, Figure2OptimalAtBudget9) {
  QueryViewGraph g = Figure2Instance();
  SelectionResult r = BranchAndBoundOptimal(g, 9.0);
  EXPECT_TRUE(r.proven_optimal);
  // {V1, I11} + full V2 bundle = 100 + 246 = 346.
  EXPECT_NEAR(r.Benefit(), 346.0, 1e-9);
}

TEST(OptimalTest, NeverPicksIndexWithoutView) {
  QueryViewGraph g = Figure2Instance();
  SelectionResult r = BranchAndBoundOptimal(g, 5.0);
  std::vector<bool> has_view(g.num_views(), false);
  for (const StructureRef& s : r.picks) {
    if (s.is_view()) has_view[s.view] = true;
  }
  for (const StructureRef& s : r.picks) {
    if (!s.is_view()) {
      EXPECT_TRUE(has_view[s.view]);
    }
  }
}

TEST(OptimalTest, TrapInstanceOptimum) {
  QueryViewGraph g = OneGreedyTrapInstance(500.0, 1.0);
  SelectionResult r = BranchAndBoundOptimal(g, 2.0);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_NEAR(r.Benefit(), 500.0, 1e-9);
}

TEST(OptimalTest, NodeLimitReportsIncomplete) {
  QueryViewGraph g = Figure2Instance();
  SelectionResult r =
      BranchAndBoundOptimal(g, kFigure2Budget, OptimalOptions{.node_limit = 1});
  EXPECT_FALSE(r.proven_optimal);
  // The greedy seed still provides a valid (sub)selection.
  EXPECT_GE(r.Benefit(), 0.0);
}

// Random-instance property sweep: on every instance, optimal dominates all
// heuristics, and each heuristic respects its guarantee when compared at
// the space it actually used (Theorems 5.1 / 5.2).
class RandomInstanceTest : public ::testing::TestWithParam<uint64_t> {};

QueryViewGraph RandomGraph(uint64_t seed) {
  Pcg32 rng(seed);
  QueryViewGraph g;
  uint32_t n_views = 2 + rng.NextBounded(3);    // 2..4 views
  uint32_t n_queries = 3 + rng.NextBounded(5);  // 3..7 queries
  std::vector<uint32_t> queries;
  for (uint32_t q = 0; q < n_queries; ++q) {
    queries.push_back(
        g.AddQuery("q" + std::to_string(q), 100.0,
                   1.0 + rng.NextBounded(3)));
  }
  for (uint32_t v = 0; v < n_views; ++v) {
    uint32_t view = g.AddView("v" + std::to_string(v), 1.0);
    uint32_t n_idx = rng.NextBounded(4);  // 0..3 indexes
    std::vector<int32_t> idxs;
    for (uint32_t k = 0; k < n_idx; ++k) {
      idxs.push_back(
          g.AddIndex(view, "i" + std::to_string(v) + std::to_string(k),
                     1.0));
    }
    for (uint32_t q : queries) {
      if (rng.NextBounded(100) < 60) {
        double scan = 20.0 + rng.NextBounded(80);
        g.AddViewEdge(q, view, scan);
        for (int32_t k : idxs) {
          if (rng.NextBounded(100) < 50) {
            g.AddIndexEdge(q, view, k, 1.0 + rng.NextBounded(
                                                static_cast<uint32_t>(scan)));
          }
        }
      }
    }
  }
  g.Finalize();
  return g;
}

TEST_P(RandomInstanceTest, HeuristicsRespectTheirGuarantees) {
  QueryViewGraph g = RandomGraph(GetParam());
  // Sweep budgets: the theorems must hold at every S (all structures here
  // have unit size, the setting of Theorem 5.1).
  for (double budget : {1.0, 2.0, 4.0, 7.0}) {
    SelectionResult results[] = {
        RGreedy(g, budget, RGreedyOptions{.r = 1}),
        RGreedy(g, budget, RGreedyOptions{.r = 2}),
        RGreedy(g, budget, RGreedyOptions{.r = 3}),
        InnerLevelGreedy(g, budget),
    };
    const double guarantees[] = {0.0, RGreedyGuarantee(2),
                                 RGreedyGuarantee(3),
                                 InnerLevelGuarantee()};
    for (size_t i = 0; i < 4; ++i) {
      // Compare against the optimum allowed the same space the heuristic
      // actually used, as in the theorems.
      SelectionResult opt = BranchAndBoundOptimal(g, results[i].space_used);
      ASSERT_TRUE(opt.proven_optimal);
      EXPECT_GE(results[i].Benefit(),
                guarantees[i] * opt.Benefit() - 1e-6)
          << "algorithm " << i << " seed " << GetParam() << " S="
          << budget;
      EXPECT_LE(results[i].Benefit(), opt.Benefit() + 1e-6);
    }
  }
}

TEST_P(RandomInstanceTest, TheoremSpaceBounds) {
  QueryViewGraph g = RandomGraph(GetParam());
  for (double budget : {1.0, 3.0, 6.0}) {
    for (int r = 1; r <= 3; ++r) {
      SelectionResult res = RGreedy(g, budget, RGreedyOptions{.r = r});
      // Theorem 5.1 (unit sizes): at most S + r - 1 space.
      EXPECT_LE(res.space_used, budget + r - 1 + 1e-9);
    }
    // Theorem 5.2: inner-level uses at most 2S.
    EXPECT_LE(InnerLevelGreedy(g, budget).space_used, 2 * budget + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstanceTest,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace olapidx
