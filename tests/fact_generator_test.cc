#include "data/fact_generator.h"

#include <gtest/gtest.h>

#include "cost/analytical_model.h"
#include "data/synthetic.h"
#include "engine/materialized_view.h"

namespace olapidx {
namespace {

TEST(GenerateUniformFactsTest, Deterministic) {
  CubeSchema schema({Dimension{"a", 10}, Dimension{"b", 10}});
  FactTable x = GenerateUniformFacts(schema, 100, 5);
  FactTable y = GenerateUniformFacts(schema, 100, 5);
  ASSERT_EQ(x.num_rows(), y.num_rows());
  for (size_t r = 0; r < x.num_rows(); ++r) {
    EXPECT_EQ(x.RowDims(r), y.RowDims(r));
    EXPECT_EQ(x.measure(r), y.measure(r));
  }
  FactTable z = GenerateUniformFacts(schema, 100, 6);
  bool differs = false;
  for (size_t r = 0; r < x.num_rows(); ++r) {
    if (x.RowDims(r) != z.RowDims(r)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(GenerateUniformFactsTest, ViewSizesTrackAnalyticalModel) {
  CubeSchema schema({Dimension{"a", 20}, Dimension{"b", 30}});
  constexpr size_t kRows = 2'000;
  FactTable fact = GenerateUniformFacts(schema, kRows, 11);
  for (uint32_t mask = 1; mask < 4; ++mask) {
    AttributeSet attrs = AttributeSet::FromMask(mask);
    MaterializedView v = MaterializedView::FromFactTable(fact, attrs);
    double expected = ExpectedDistinct(schema.DomainSize(attrs), kRows);
    EXPECT_NEAR(static_cast<double>(v.num_rows()), expected,
                0.1 * expected + 3)
        << "mask " << mask;
  }
}

TEST(GenerateTpcdScaledFactsTest, ReproducesFigure1Shape) {
  // At 1/100 scale the subcube-size *ratios* must match Figure 1:
  // ps ≈ parts·suppliers_per_part is the only small 2-attr subcube, while
  // pc and sc sit near the raw row count.
  TpcdScaledConfig config;
  FactTable fact = GenerateTpcdScaledFacts(config);
  EXPECT_EQ(fact.num_rows(), config.rows);

  auto rows_of = [&](AttributeSet attrs) {
    return static_cast<double>(
        MaterializedView::FromFactTable(fact, attrs).num_rows());
  };
  double ps = rows_of(AttributeSet::Of({0, 1}));
  double pc = rows_of(AttributeSet::Of({0, 2}));
  double sc = rows_of(AttributeSet::Of({1, 2}));
  double p = rows_of(AttributeSet::Of({0}));
  double s = rows_of(AttributeSet::Of({1}));
  double c = rows_of(AttributeSet::Of({2}));

  // Paper: ps = 0.8M of a 6M cube → scaled ≈ 8000 of 60000.
  EXPECT_NEAR(ps, 8'000, 1'200);
  EXPECT_GT(pc, 0.6 * static_cast<double>(config.rows));
  EXPECT_GT(sc, 0.6 * static_cast<double>(config.rows));
  EXPECT_NEAR(p, config.parts, config.parts * 0.1);
  EXPECT_NEAR(s, config.suppliers, config.suppliers * 0.15);
  EXPECT_NEAR(c, config.customers, config.customers * 0.1);
}

TEST(GenerateZipfFactsTest, SkewShrinksDistinctCounts) {
  CubeSchema schema({Dimension{"a", 500}, Dimension{"b", 500}});
  constexpr size_t kRows = 5'000;
  FactTable uniform = GenerateZipfFacts(schema, kRows, 0.0, 3);
  FactTable skewed = GenerateZipfFacts(schema, kRows, 1.5, 3);
  for (uint32_t mask = 1; mask < 4; ++mask) {
    AttributeSet attrs = AttributeSet::FromMask(mask);
    size_t d_uniform =
        MaterializedView::FromFactTable(uniform, attrs).num_rows();
    size_t d_skewed =
        MaterializedView::FromFactTable(skewed, attrs).num_rows();
    EXPECT_LT(d_skewed, d_uniform) << "mask " << mask;
  }
}

TEST(GenerateZipfFactsTest, ZeroSkewMatchesAnalyticalModel) {
  CubeSchema schema({Dimension{"a", 40}, Dimension{"b", 25}});
  constexpr size_t kRows = 2'000;
  FactTable fact = GenerateZipfFacts(schema, kRows, 0.0, 5);
  AttributeSet ab = AttributeSet::Of({0, 1});
  double expected = ExpectedDistinct(schema.DomainSize(ab), kRows);
  EXPECT_NEAR(
      static_cast<double>(
          MaterializedView::FromFactTable(fact, ab).num_rows()),
      expected, 0.1 * expected);
}

TEST(GenerateZipfFactsTest, Deterministic) {
  CubeSchema schema({Dimension{"a", 10}, Dimension{"b", 10}});
  FactTable x = GenerateZipfFacts(schema, 50, 1.0, 9);
  FactTable y = GenerateZipfFacts(schema, 50, 1.0, 9);
  for (size_t r = 0; r < x.num_rows(); ++r) {
    EXPECT_EQ(x.RowDims(r), y.RowDims(r));
  }
}

TEST(SyntheticCubeTest, UniformCube) {
  SyntheticCube cube = UniformSyntheticCube(4, 50, 0.01);
  EXPECT_EQ(cube.schema.num_dimensions(), 4);
  EXPECT_NEAR(cube.raw_rows, 0.01 * 50.0 * 50 * 50 * 50, 1e-6);
  EXPECT_TRUE(cube.sizes.Complete());
  EXPECT_TRUE(cube.sizes.IsMonotone());
}

TEST(SyntheticCubeTest, ExplicitCardinalities) {
  SyntheticCube cube = SyntheticCubeWithCardinalities({10, 200, 3}, 0.05);
  EXPECT_EQ(cube.schema.dimension(1).cardinality, 200u);
  EXPECT_NEAR(cube.sparsity, 0.05, 1e-12);
}

TEST(SyntheticCubeTest, RandomCardinalitiesInRange) {
  SyntheticCube cube = RandomSyntheticCube(5, 10, 1'000, 0.01, 77);
  for (int i = 0; i < 5; ++i) {
    EXPECT_GE(cube.schema.dimension(i).cardinality, 10u);
    EXPECT_LE(cube.schema.dimension(i).cardinality, 1'000u);
  }
  // Deterministic in the seed.
  SyntheticCube again = RandomSyntheticCube(5, 10, 1'000, 0.01, 77);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(cube.schema.dimension(i).cardinality,
              again.schema.dimension(i).cardinality);
  }
}

}  // namespace
}  // namespace olapidx
