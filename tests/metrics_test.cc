// The observability layer: metrics registry units (sharded counters,
// gauges, log-2 histograms, snapshots, deltas), the tracer, and the
// contract between the selection algorithms' EvaluationStats and the
// registry — counters are exact, identical across thread counts, and
// captured per run (never accumulated across runs sharing an Advisor).
//
// The registry is process-global, so every assertion here is phrased as
// a delta over a region of interest, never as an absolute value.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/advisor.h"
#include "core/cube_graph.h"
#include "core/inner_greedy.h"
#include "core/r_greedy.h"
#include "data/synthetic.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

uint64_t SumStageCandidates(const EvaluationStats& stats) {
  uint64_t sum = 0;
  for (uint64_t c : stats.stage_candidates) sum += c;
  return sum;
}

#if defined(OLAPIDX_METRICS_ENABLED)

TEST(CounterTest, SumsAcrossShardsAndThreads) {
  Counter counter;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
  counter.Add(7);
  EXPECT_EQ(counter.Value(), kThreads * kPerThread + 7);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(42);
  EXPECT_EQ(gauge.Value(), 42);
  gauge.Add(-50);
  EXPECT_EQ(gauge.Value(), -8);
}

TEST(HistogramTest, BucketsFollowBitWidth) {
  Histogram histogram;
  // bucket 0 <- 0; bucket 1 <- 1; bucket 2 <- {2, 3}; bucket 3 <- 4.
  for (uint64_t v = 0; v <= 4; ++v) histogram.Observe(v);
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 10u);
  ASSERT_EQ(snap.buckets.size(), 4u);  // trailing zeros trimmed
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 2u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 2.0);
}

TEST(HistogramTest, LargeValuesLandInHighBuckets) {
  Histogram histogram;
  histogram.Observe(uint64_t{1} << 40);
  HistogramSnapshot snap = histogram.Snapshot();
  ASSERT_EQ(snap.buckets.size(), 42u);  // bit_width(2^40) == 41
  EXPECT_EQ(snap.buckets[41], 1u);
}

TEST(MetricsRegistryTest, ReturnsStableDistinctReferences) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& a = registry.GetCounter("metrics_test.stable_a");
  Counter& b = registry.GetCounter("metrics_test.stable_b");
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&a, &registry.GetCounter("metrics_test.stable_a"));
  EXPECT_EQ(&registry.GetHistogram("metrics_test.stable_h"),
            &registry.GetHistogram("metrics_test.stable_h"));
}

TEST(MetricsRegistryTest, SnapshotDeltaAttributesARegion) {
  MetricsRunScope scope;
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("metrics_test.delta_counter").Add(5);
  registry.GetGauge("metrics_test.delta_gauge").Set(-3);
  Histogram& h = registry.GetHistogram("metrics_test.delta_hist");
  h.Observe(1);
  h.Observe(6);
  MetricsSnapshot delta = scope.Delta();
  EXPECT_EQ(delta.CounterValue("metrics_test.delta_counter"), 5u);
  const HistogramSnapshot* hist =
      delta.FindHistogram("metrics_test.delta_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 2u);
  EXPECT_EQ(hist->sum, 7u);
  // Snapshots are sorted by name.
  MetricsSnapshot snap = registry.Snapshot();
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
}

TEST(MetricsRegistryTest, QuiescentDeltaHasNoCountersOrHistograms) {
  // Gauges are instantaneous (the delta keeps `after`), so only the
  // monotone families must vanish over an idle region.
  MetricsRunScope scope;
  MetricsSnapshot delta = scope.Delta();
  EXPECT_TRUE(delta.counters.empty());
  EXPECT_TRUE(delta.histograms.empty());
}

TEST(TracerTest, RecordsSpansOnlyWhenEnabled) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  ASSERT_FALSE(Tracer::Enabled());  // default off
  { OLAPIDX_TRACE_SPAN("metrics_test.disabled"); }
  EXPECT_TRUE(tracer.Spans().empty());

  Tracer::SetEnabled(true);
  { OLAPIDX_TRACE_SPAN("metrics_test.enabled"); }
  Tracer::SetEnabled(false);
  std::vector<SpanRecord> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "metrics_test.enabled");

  StatusOr<Json> parsed = Json::Parse(tracer.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& doc = parsed.value();
  EXPECT_EQ(doc.Find("schema")->AsString(), "olapidx-trace");
  EXPECT_EQ(doc.Find("spans")->size(), 1u);
  tracer.Clear();
  EXPECT_TRUE(tracer.Spans().empty());
}

TEST(TracerTest, SelectionStagesEmitSpans) {
  SyntheticCube cube = RandomSyntheticCube(3, 5, 500, 0.05, 11);
  CubeLattice lattice(cube.schema);
  CubeGraph cg = BuildCubeGraph(cube.schema, cube.sizes,
                                AllSliceQueries(lattice));
  double budget = 0.2 * cube.sizes.TotalViewSpace();
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  Tracer::SetEnabled(true);
  SelectionResult inner = InnerLevelGreedy(cg.graph, budget);
  Tracer::SetEnabled(false);
  ASSERT_TRUE(inner.status.ok());
  uint64_t run_spans = 0;
  uint64_t stage_spans = 0;
  for (const SpanRecord& span : tracer.Spans()) {
    if (std::string(span.name) == "inner_greedy.run") ++run_spans;
    if (std::string(span.name) == "inner_greedy.stage") ++stage_spans;
  }
  EXPECT_EQ(run_spans, 1u);
  // One span per loop iteration: the picking stages plus the terminating
  // no-winner probe.
  EXPECT_GE(stage_spans, inner.stats.stages);
  EXPECT_LE(stage_spans, inner.stats.stages + 1);
  tracer.Clear();
}

#else  // !OLAPIDX_METRICS_ENABLED

TEST(MetricsOffTest, EverythingCompilesToNothing) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("metrics_test.off").Add(100);
  EXPECT_EQ(registry.GetCounter("metrics_test.off").Value(), 0u);
  EXPECT_TRUE(registry.Snapshot().Empty());
  MetricsRunScope scope;
  EXPECT_TRUE(scope.Delta().Empty());

  Tracer::SetEnabled(true);  // ignored
  EXPECT_FALSE(Tracer::Enabled());
  { OLAPIDX_TRACE_SPAN("metrics_test.off"); }
  EXPECT_TRUE(Tracer::Global().Spans().empty());
  StatusOr<Json> parsed = Json::Parse(Tracer::Global().ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().Find("schema")->AsString(), "olapidx-trace");
}

#endif  // OLAPIDX_METRICS_ENABLED

TEST(MetricsSnapshotTest, ToJsonIsValidJson) {
  MetricsSnapshot snap;
  snap.counters.emplace_back("a.count", 3);
  snap.gauges.emplace_back("b.gauge", -2);
  HistogramSnapshot h;
  h.count = 2;
  h.sum = 5;
  h.buckets = {0, 1, 1};
  snap.histograms.emplace_back("c.hist", h);
  StatusOr<Json> parsed = Json::Parse(snap.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& doc = parsed.value();
  EXPECT_DOUBLE_EQ(doc.Find("counters")->Find("a.count")->AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(doc.Find("gauges")->Find("b.gauge")->AsDouble(), -2.0);
  EXPECT_DOUBLE_EQ(
      doc.Find("histograms")->Find("c.hist")->Find("sum")->AsDouble(), 5.0);
}

// ---------------------------------------------------------------------------
// The selection algorithms' counter contract.
// ---------------------------------------------------------------------------

class SelectionMetricsTest : public ::testing::Test {
 protected:
  SelectionMetricsTest()
      : cube_data_(RandomSyntheticCube(3, 5, 500, 0.05, 7)),
        workload_(AllSliceQueries(CubeLattice(cube_data_.schema))) {
    CubeGraphOptions opts;
    opts.raw_scan_penalty = 2.0;
    cube_ = std::make_unique<CubeGraph>(
        BuildCubeGraph(cube_data_.schema, cube_data_.sizes, workload_,
                       opts));
    budget_ = 0.2 * (cube_data_.sizes.TotalViewSpace() +
                     cube_data_.sizes.TotalFatIndexSpace());
  }

  SyntheticCube cube_data_;
  Workload workload_;
  std::unique_ptr<CubeGraph> cube_;
  double budget_ = 0.0;
};

TEST_F(SelectionMetricsTest, CandidateCountersAreExact) {
  for (int r : {1, 2}) {
    SelectionResult res =
        RGreedy(cube_->graph, budget_, RGreedyOptions{.r = r});
    ASSERT_TRUE(res.status.ok());
    ASSERT_GT(res.stats.stages, 0u);
    // The eager algorithms' per-stage counts partition the total exactly.
    EXPECT_EQ(SumStageCandidates(res.stats), res.candidates_evaluated)
        << "r = " << r;
#if defined(OLAPIDX_METRICS_ENABLED)
    // The registry delta attributed to the run agrees with the result's
    // own counters — two independent accounting paths.
    EXPECT_EQ(res.metrics.CounterValue("selection.candidates_evaluated"),
              res.candidates_evaluated);
    EXPECT_EQ(res.metrics.CounterValue("selection.stages"),
              res.stats.stages);
    EXPECT_EQ(res.metrics.CounterValue("selection.cache_hits"),
              res.stats.cache_hits);
    EXPECT_EQ(res.metrics.CounterValue("selection.cache_misses"),
              res.stats.cache_misses);
    EXPECT_EQ(res.metrics.CounterValue("selection.runs"), 1u);
    const HistogramSnapshot* stage_hist =
        res.metrics.FindHistogram("selection.stage_candidates");
    ASSERT_NE(stage_hist, nullptr);
    // One observation per stage_candidates entry (picking stages plus the
    // terminating no-winner probe), summing to the exact total.
    EXPECT_EQ(stage_hist->count, res.stats.stage_candidates.size());
    EXPECT_EQ(stage_hist->sum, res.candidates_evaluated);
#else
    EXPECT_TRUE(res.metrics.Empty());
#endif
  }
}

TEST_F(SelectionMetricsTest, InnerLevelCountersAreExact) {
  SelectionResult res = InnerLevelGreedy(cube_->graph, budget_);
  ASSERT_TRUE(res.status.ok());
  EXPECT_EQ(SumStageCandidates(res.stats), res.candidates_evaluated);
#if defined(OLAPIDX_METRICS_ENABLED)
  EXPECT_EQ(res.metrics.CounterValue("selection.candidates_evaluated"),
            res.candidates_evaluated);
#endif
}

TEST_F(SelectionMetricsTest, CountersIdenticalAcrossThreadCounts) {
  SelectionResult serial = RGreedy(
      cube_->graph, budget_, RGreedyOptions{.r = 2, .num_threads = 1});
  SelectionResult parallel = RGreedy(
      cube_->graph, budget_, RGreedyOptions{.r = 2, .num_threads = 4});
  ASSERT_TRUE(serial.status.ok());
  ASSERT_TRUE(parallel.status.ok());
  // Bit-identical picks (the determinism contract)...
  ASSERT_EQ(serial.picks.size(), parallel.picks.size());
  for (size_t i = 0; i < serial.picks.size(); ++i) {
    EXPECT_TRUE(serial.picks[i] == parallel.picks[i]) << "pick " << i;
  }
  EXPECT_EQ(serial.final_cost, parallel.final_cost);
  // ...and bit-identical work accounting: the same candidates are
  // evaluated no matter how they are sharded over threads.
  EXPECT_EQ(serial.candidates_evaluated, parallel.candidates_evaluated);
  EXPECT_EQ(serial.stats.stage_candidates, parallel.stats.stage_candidates);
#if defined(OLAPIDX_METRICS_ENABLED)
  EXPECT_EQ(serial.metrics.CounterValue("selection.candidates_evaluated"),
            parallel.metrics.CounterValue("selection.candidates_evaluated"));
  EXPECT_EQ(serial.metrics.CounterValue("selection.stages"),
            parallel.metrics.CounterValue("selection.stages"));
#endif
}

// Regression: SelectionResult::metrics must be a fresh per-run delta.
// Repeated Recommend() calls on one Advisor share the process-global
// registry, so a before-snapshot taken at Advisor construction (or any
// other accumulation) would make the second run's delta roughly double
// the first.
TEST_F(SelectionMetricsTest, RepeatedAdvisorRunsYieldEqualDeltas) {
  Advisor advisor(cube_data_.schema, cube_data_.sizes, workload_);
  AdvisorConfig config;
  config.algorithm = Algorithm::kRGreedy;
  config.r_greedy.r = 2;
  config.space_budget = budget_;

  Recommendation first = advisor.Recommend(config);
  Recommendation second = advisor.Recommend(config);
  ASSERT_TRUE(first.status.ok());
  ASSERT_TRUE(second.status.ok());
  ASSERT_EQ(first.structures.size(), second.structures.size());
  EXPECT_EQ(first.raw.candidates_evaluated, second.raw.candidates_evaluated);
  EXPECT_EQ(first.raw.stats.stage_candidates,
            second.raw.stats.stage_candidates);
  // Identical runs produce identical monotone deltas — not doubled ones.
  // (Histogram *timing* entries vary run to run, so the comparison is on
  // the counters and the deterministic stage_candidates histogram.)
  EXPECT_EQ(first.raw.metrics.counters, second.raw.metrics.counters);
#if defined(OLAPIDX_METRICS_ENABLED)
  const HistogramSnapshot* h1 =
      first.raw.metrics.FindHistogram("selection.stage_candidates");
  const HistogramSnapshot* h2 =
      second.raw.metrics.FindHistogram("selection.stage_candidates");
  ASSERT_NE(h1, nullptr);
  ASSERT_NE(h2, nullptr);
  EXPECT_EQ(*h1, *h2);
#endif
}

}  // namespace
}  // namespace olapidx
