// Property tests for the linear cost model over random schemas and random
// queries: structural facts the paper's Section 4 relies on.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cost/analytical_model.h"
#include "cost/linear_cost_model.h"
#include "lattice/cube_lattice.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

class CostPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  CostPropertyTest() {
    Pcg32 rng(GetParam());
    std::vector<Dimension> dims;
    int n = 2 + static_cast<int>(rng.NextBounded(3));  // 2..4 dims
    for (int a = 0; a < n; ++a) {
      dims.push_back(Dimension{std::string(1, static_cast<char>('a' + a)),
                               2 + rng.NextBounded(500)});
    }
    schema_ = std::make_unique<CubeSchema>(dims);
    sizes_ = AnalyticalViewSizes(*schema_,
                                 100.0 + rng.NextBounded(100'000));
  }

  std::unique_ptr<CubeSchema> schema_;
  ViewSizes sizes_;
};

TEST_P(CostPropertyTest, IndexNeverWorseThanScan) {
  LinearCostModel model(&sizes_);
  CubeLattice lattice(*schema_);
  Workload all = AllSliceQueries(lattice);
  for (const WeightedQuery& wq : all.queries()) {
    for (ViewId v = 0; v < lattice.num_views(); ++v) {
      AttributeSet attrs = lattice.AttrsOf(v);
      if (!wq.query.AnswerableFrom(attrs)) continue;
      double scan = model.ScanCost(attrs);
      for (const IndexKey& key : lattice.FatIndexes(v)) {
        EXPECT_LE(model.QueryCost(wq.query, attrs, key), scan + 1e-9);
      }
    }
  }
}

TEST_P(CostPropertyTest, FatIndexDominatesItsPrefixes) {
  // c(Q, V, I_A) <= c(Q, V, I_B) whenever B is a prefix of A — the fact
  // that justifies discarding non-fat indexes (Section 4.2.2).
  LinearCostModel model(&sizes_);
  CubeLattice lattice(*schema_);
  ViewId base = lattice.BaseView();
  AttributeSet attrs = lattice.AttrsOf(base);
  Workload all = AllSliceQueries(lattice);
  for (const IndexKey& fat : lattice.FatIndexes(base)) {
    for (int len = 1; len < fat.size(); ++len) {
      IndexKey prefix(std::vector<int>(fat.attrs().begin(),
                                       fat.attrs().begin() + len));
      for (const WeightedQuery& wq : all.queries()) {
        EXPECT_LE(model.QueryCost(wq.query, attrs, fat),
                  model.QueryCost(wq.query, attrs, prefix) + 1e-9);
      }
    }
  }
}

TEST_P(CostPropertyTest, SmallestAnsweringViewIsCheapestScan) {
  // Among views that can answer Q, the associated view A ∪ B has the
  // minimum scan cost (sizes are monotone across the lattice).
  LinearCostModel model(&sizes_);
  CubeLattice lattice(*schema_);
  Workload all = AllSliceQueries(lattice);
  for (const WeightedQuery& wq : all.queries()) {
    double smallest =
        model.ScanCost(wq.query.AllAttributes());
    for (ViewId v = 0; v < lattice.num_views(); ++v) {
      AttributeSet attrs = lattice.AttrsOf(v);
      if (!wq.query.AnswerableFrom(attrs)) continue;
      EXPECT_GE(model.ScanCost(attrs) + 1e-9, smallest);
    }
  }
}

TEST_P(CostPropertyTest, CostsAtLeastOneRow) {
  LinearCostModel model(&sizes_);
  CubeLattice lattice(*schema_);
  Workload all = AllSliceQueries(lattice);
  for (const WeightedQuery& wq : all.queries()) {
    for (ViewId v = 0; v < lattice.num_views(); ++v) {
      AttributeSet attrs = lattice.AttrsOf(v);
      if (!wq.query.AnswerableFrom(attrs)) continue;
      for (const IndexKey& key : lattice.FatIndexes(v)) {
        EXPECT_GE(model.QueryCost(wq.query, attrs, key), 1.0 - 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace olapidx
