// End-to-end pipeline test: generate data → measure exact view sizes with
// the engine → run the advisor → materialize the recommendation → execute
// the whole workload → check answers against the naive executor and costs
// against the linear cost model.

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "data/fact_generator.h"
#include "engine/executor.h"

namespace olapidx {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static constexpr double kBudgetFraction = 0.4;

  PipelineTest()
      : fact_(GenerateTpcdScaledFacts({.parts = 500,
                                       .suppliers = 40,
                                       .customers = 300,
                                       .suppliers_per_part = 4,
                                       .rows = 15'000,
                                       .seed = 123})),
        catalog_(&fact_),
        executor_(&catalog_) {
    // Exact view sizes measured by materializing every subcube in a scratch
    // catalog (3 dims → cheap).
    sizes_ = ViewSizes(3);
    Catalog scratch(&fact_);
    for (uint32_t mask = 0; mask < 8; ++mask) {
      AttributeSet attrs = AttributeSet::FromMask(mask);
      sizes_.Set(attrs,
                 static_cast<double>(scratch.MaterializeView(attrs)));
    }
  }

  FactTable fact_;
  ViewSizes sizes_;
  Catalog catalog_;
  Executor executor_;
};

TEST_F(PipelineTest, AdvisorRecommendationExecutesCorrectlyAndFast) {
  CubeSchema schema = fact_.schema();
  CubeLattice lattice(schema);
  Workload workload = AllSliceQueries(lattice);
  CubeGraphOptions gopts;
  gopts.raw_scan_penalty = 2.0;
  Advisor advisor(schema, sizes_, workload, gopts);

  AdvisorConfig config;
  config.algorithm = Algorithm::kInnerLevel;
  config.space_budget =
      kBudgetFraction *
      (sizes_.TotalViewSpace() + sizes_.TotalFatIndexSpace());
  Recommendation rec = advisor.Recommend(config);
  ASSERT_FALSE(rec.structures.empty());

  // Materialize the recommendation.
  for (const RecommendedStructure& s : rec.structures) {
    if (s.is_view()) {
      catalog_.MaterializeView(s.view);
    } else {
      catalog_.BuildIndex(s.view, s.index);
    }
  }
  // The engine's space accounting must match the advisor's estimate
  // exactly: sizes were measured from the same data.
  EXPECT_NEAR(catalog_.TotalSpaceRows(), rec.space_used, 1e-6);

  // Execute every workload query with concrete selection constants and
  // compare with the naive executor; accumulate measured rows processed.
  Pcg32 rng(7);
  double measured_total = 0.0;
  for (const QueryPlan& plan : rec.plans) {
    std::vector<uint32_t> values;
    for (int a : plan.query.selection().ToVector()) {
      values.push_back(rng.NextBounded(static_cast<uint32_t>(
          schema.dimension(a).cardinality)));
    }
    ExecutionStats stats;
    GroupedResult fast = executor_.Execute(plan.query, values, &stats);
    GroupedResult naive = executor_.ExecuteNaive(plan.query, values);
    ASSERT_EQ(fast.num_rows(), naive.num_rows())
        << plan.query.ToString(schema.names());
    for (size_t r = 0; r < fast.num_rows(); ++r) {
      EXPECT_EQ(fast.keys[r], naive.keys[r]);
      EXPECT_NEAR(fast.sums[r], naive.sums[r], 1e-6);
    }
    measured_total += static_cast<double>(stats.rows_processed);
    // No query should fall back to raw data: the advisor materialized at
    // least one answering structure per query (the base view).
    EXPECT_FALSE(stats.used_raw);
  }

  // The measured average must sit well below a raw scan per query and in
  // the ballpark of the advisor's estimate. Index estimates are
  // *average* slice sizes, so allow generous slack per query.
  double measured_avg = measured_total / static_cast<double>(27);
  EXPECT_LT(measured_avg, 0.25 * static_cast<double>(fact_.num_rows()));
  EXPECT_LT(measured_avg, 4.0 * rec.average_query_cost + 100.0);
}

TEST_F(PipelineTest, MeasuredScanCostsMatchModelExactly) {
  // For plain view scans the model's cost (|V|) must equal the engine's
  // rows processed exactly.
  catalog_.MaterializeView(AttributeSet::Of({0, 1}));
  SliceQuery q(AttributeSet::Of({0}), AttributeSet::Of({1}));
  ExecutionStats stats;
  executor_.Execute(q, {3}, &stats);
  EXPECT_EQ(static_cast<double>(stats.rows_processed),
            sizes_.SizeOf(AttributeSet::Of({0, 1})));
}

TEST_F(PipelineTest, MeasuredIndexCostsMatchModelOnAverage) {
  // The paper's index cost |V| / |E| is an average over slices; check the
  // *mean* measured rows over all selection constants equals it.
  AttributeSet ps = AttributeSet::Of({0, 1});
  catalog_.MaterializeView(ps);
  catalog_.BuildIndex(ps, IndexKey({1, 0}));
  SliceQuery q(AttributeSet::Of({0}), AttributeSet::Of({1}));

  double total_rows = 0.0;
  uint32_t n_suppliers =
      static_cast<uint32_t>(fact_.schema().dimension(1).cardinality);
  for (uint32_t s = 0; s < n_suppliers; ++s) {
    ExecutionStats stats;
    executor_.Execute(q, {s}, &stats);
    EXPECT_EQ(stats.index, IndexKey({1, 0}));
    total_rows += static_cast<double>(stats.rows_processed);
  }
  double measured_avg = total_rows / n_suppliers;
  double model = sizes_.SizeOf(ps) / sizes_.SizeOf(AttributeSet::Of({1}));
  // |E| here is the count of *observed* suppliers while the loop divides
  // by the domain size; they coincide because every supplier id appears.
  EXPECT_NEAR(measured_avg, model, 0.05 * model + 1.0);
}

}  // namespace
}  // namespace olapidx
