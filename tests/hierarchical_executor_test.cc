#include "hierarchy/hierarchical_executor.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace olapidx {
namespace {

HierarchicalSchema RetailSchema() {
  return HierarchicalSchema({
      HierarchicalDimension{"store",
                            {{"store", 40}, {"city", 8}, {"region", 3}}},
      HierarchicalDimension{"day", {{"day", 24}, {"month", 6}}},
      HierarchicalDimension{"promo", {{"promo", 5}}},
  });
}

bool Same(const HGroupedResult& a, const HGroupedResult& b) {
  if (a.group_dims != b.group_dims) return false;
  if (a.num_rows() != b.num_rows()) return false;
  for (size_t r = 0; r < a.num_rows(); ++r) {
    if (a.keys[r] != b.keys[r]) return false;
    if (std::abs(a.aggregates[r].sum - b.aggregates[r].sum) > 1e-6) {
      return false;
    }
    if (a.aggregates[r].count != b.aggregates[r].count) return false;
  }
  return true;
}

class HierarchicalExecutorTest : public ::testing::Test {
 protected:
  HierarchicalExecutorTest()
      : schema_(RetailSchema()),
        maps_(HierarchyMaps::Balanced(schema_)),
        fact_(GenerateHierarchicalFacts(schema_, 800, /*seed=*/31)),
        catalog_(&fact_, &maps_),
        executor_(&catalog_) {}

  HierarchicalSchema schema_;
  HierarchyMaps maps_;
  FactTable fact_;
  HierarchicalCatalog catalog_;
  HierarchicalExecutor executor_;
};

TEST_F(HierarchicalExecutorTest, ClusteredChildRanges) {
  const DimensionLevelMap& store = maps_.dimension(0);
  EXPECT_TRUE(store.IsClustered());
  // Every city's stores are a contiguous block covering all 40 stores.
  uint32_t covered = 0;
  for (uint32_t city = 0; city < 8; ++city) {
    auto [lo, hi] = store.ChildRange(0, 1, city, 40);
    ASSERT_LE(lo, hi);
    for (uint32_t s = lo; s <= hi; ++s) {
      EXPECT_EQ(store.MapUp(0, 1, s), city);
    }
    covered += hi - lo + 1;
  }
  EXPECT_EQ(covered, 40u);
  // ALL level: the whole range.
  auto [alo, ahi] = store.ChildRange(0, 3, 0, 40);
  EXPECT_EQ(alo, 0u);
  EXPECT_EQ(ahi, 39u);
}

TEST_F(HierarchicalExecutorTest, RawMatchesNaive) {
  // Group by city, select month = 2.
  HSliceQuery q({HDimRole{HDimRole::kGroupBy, 1},
                 HDimRole{HDimRole::kSelect, 1},
                 HDimRole{HDimRole::kAbsent, 0}});
  HExecutionStats stats;
  HGroupedResult fast = executor_.Execute(q, {2}, &stats);
  EXPECT_TRUE(stats.used_raw);
  EXPECT_TRUE(Same(fast, executor_.ExecuteNaive(q, {2})));
}

TEST_F(HierarchicalExecutorTest, LeveledViewScanUsedAndCorrect) {
  catalog_.MaterializeView(LevelVector({1, 1, 1}));  // city, month, ALL
  HSliceQuery q({HDimRole{HDimRole::kGroupBy, 2},   // by region
                 HDimRole{HDimRole::kSelect, 1},    // month = 3
                 HDimRole{HDimRole::kAbsent, 0}});
  HExecutionStats stats;
  HGroupedResult fast = executor_.Execute(q, {3}, &stats);
  EXPECT_FALSE(stats.used_raw);
  EXPECT_TRUE(stats.view == LevelVector({1, 1, 1}));
  EXPECT_EQ(stats.rows_processed,
            catalog_.Find(LevelVector({1, 1, 1}))->view.num_rows());
  EXPECT_TRUE(Same(fast, executor_.ExecuteNaive(q, {3})));
}

TEST_F(HierarchicalExecutorTest, PointIndexTouchesOnlyMatchingRows) {
  LevelVector v({0, 1, 1});  // store, month, ALL (promo's ALL level is 1)
  catalog_.MaterializeView(v);
  catalog_.BuildIndex(v, {1, 0});  // keyed (day-dim at month, store)
  // Select month = 4 exactly at the view's level; group by store.
  HSliceQuery q({HDimRole{HDimRole::kGroupBy, 0},
                 HDimRole{HDimRole::kSelect, 1},
                 HDimRole{HDimRole::kAbsent, 0}});
  HExecutionStats stats;
  HGroupedResult fast = executor_.Execute(q, {4}, &stats);
  EXPECT_FALSE(stats.used_raw);
  EXPECT_EQ(stats.index_order, (std::vector<int>{1, 0}));
  EXPECT_TRUE(Same(fast, executor_.ExecuteNaive(q, {4})));
  // Only rows with month 4 were visited.
  const auto* lv = catalog_.Find(v);
  size_t matching = 0;
  for (size_t r = 0; r < lv->view.num_rows(); ++r) {
    if (lv->view.dim(r, 1) == 4) ++matching;  // position 1 = day dim
  }
  EXPECT_EQ(stats.rows_processed, matching);
}

TEST_F(HierarchicalExecutorTest, CoarserSelectionUsesRangeScan) {
  LevelVector v({0, 0, 1});  // store, day, ALL — finest view
  catalog_.MaterializeView(v);
  catalog_.BuildIndex(v, {0, 1});  // keyed (store, day)
  // Select store's *city* = 5 (coarser than the view's store level).
  HSliceQuery q({HDimRole{HDimRole::kSelect, 1},
                 HDimRole{HDimRole::kGroupBy, 1},
                 HDimRole{HDimRole::kAbsent, 0}});
  HExecutionStats stats;
  HGroupedResult fast = executor_.Execute(q, {5}, &stats);
  EXPECT_FALSE(stats.used_raw);
  EXPECT_EQ(stats.index_order, (std::vector<int>{0, 1}));
  EXPECT_TRUE(Same(fast, executor_.ExecuteNaive(q, {5})));
  // Visited rows are exactly those whose store belongs to city 5.
  const auto* lv = catalog_.Find(v);
  size_t matching = 0;
  for (size_t r = 0; r < lv->view.num_rows(); ++r) {
    if (maps_.dimension(0).MapUp(0, 1, lv->view.dim(r, 0)) == 5) {
      ++matching;
    }
  }
  EXPECT_EQ(stats.rows_processed, matching);
  EXPECT_LT(stats.rows_processed, lv->view.num_rows());
}

TEST_F(HierarchicalExecutorTest, AllQueriesAgreeWithNaive) {
  // Materialize a few views + indexes, then sweep every hierarchical
  // slice-query shape with random selection constants.
  catalog_.MaterializeView(LevelVector({0, 0, 0}));
  catalog_.MaterializeView(LevelVector({1, 1, 1}));
  catalog_.MaterializeView(LevelVector({2, 2, 0}));
  catalog_.BuildIndex(LevelVector({0, 0, 0}), {0, 1, 2});
  catalog_.BuildIndex(LevelVector({0, 0, 0}), {2, 1, 0});
  catalog_.BuildIndex(LevelVector({1, 1, 1}), {1, 0});

  Pcg32 rng(77);
  for (const HSliceQuery& q : EnumerateAllHQueries(schema_)) {
    std::vector<uint32_t> values;
    for (int d = 0; d < schema_.num_dimensions(); ++d) {
      if (q.role(d).kind == HDimRole::kSelect) {
        values.push_back(rng.NextBounded(static_cast<uint32_t>(
            schema_.cardinality(d, q.role(d).level))));
      }
    }
    HGroupedResult fast = executor_.Execute(q, values);
    HGroupedResult naive = executor_.ExecuteNaive(q, values);
    ASSERT_TRUE(Same(fast, naive)) << q.ToString(schema_);
  }
}

TEST_F(HierarchicalExecutorTest, SpaceAccounting) {
  LevelVector v({1, 1, 0});
  size_t rows = catalog_.MaterializeView(v);
  catalog_.BuildIndex(v, {0, 1, 2});
  catalog_.BuildIndex(v, {2, 0, 1});
  EXPECT_EQ(catalog_.TotalSpaceRows(), static_cast<double>(3 * rows));
  // Duplicate build is a no-op.
  catalog_.BuildIndex(v, {0, 1, 2});
  EXPECT_EQ(catalog_.TotalSpaceRows(), static_cast<double>(3 * rows));
}

TEST_F(HierarchicalExecutorTest, IndexRequiresMaterializedView) {
  EXPECT_DEATH(catalog_.BuildIndex(LevelVector({9, 9, 9}), {0}), "CHECK");
}

}  // namespace
}  // namespace olapidx
