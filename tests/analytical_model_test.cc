#include "cost/analytical_model.h"

#include <gtest/gtest.h>

namespace olapidx {
namespace {

TEST(ExpectedDistinctTest, SmallCases) {
  // One draw from any domain gives exactly one distinct value.
  EXPECT_NEAR(ExpectedDistinct(10, 1), 1.0, 1e-9);
  // Domain of one is saturated immediately.
  EXPECT_NEAR(ExpectedDistinct(1, 100), 1.0, 1e-9);
  // Two draws from domain 2: E = 2(1 - (1/2)^2) = 1.5.
  EXPECT_NEAR(ExpectedDistinct(2, 2), 1.5, 1e-9);
}

TEST(ExpectedDistinctTest, SaturatesAtDomainSize) {
  EXPECT_NEAR(ExpectedDistinct(100, 1e9), 100.0, 1e-6);
}

TEST(ExpectedDistinctTest, ApproachesRowsForHugeDomains) {
  // With a domain vastly larger than the draw count, almost all draws are
  // distinct.
  EXPECT_NEAR(ExpectedDistinct(1e18, 1e6), 1e6, 1.0);
}

TEST(ExpectedDistinctTest, MonotoneInBothArguments) {
  double prev = 0.0;
  for (double rows = 1; rows <= 4096; rows *= 2) {
    double d = ExpectedDistinct(1000, rows);
    EXPECT_GE(d, prev);
    prev = d;
  }
  prev = 0.0;
  for (double domain = 1; domain <= 4096; domain *= 2) {
    double d = ExpectedDistinct(domain, 1000);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(AnalyticalViewSizesTest, BasicProperties) {
  CubeSchema schema({Dimension{"a", 100}, Dimension{"b", 50},
                     Dimension{"c", 20}});
  ViewSizes sizes = AnalyticalViewSizes(schema, 10'000);
  EXPECT_TRUE(sizes.Complete());
  EXPECT_TRUE(sizes.IsMonotone());
  // The apex has one row.
  EXPECT_NEAR(sizes.SizeOf(AttributeSet()), 1.0, 1e-12);
  // One-attribute views saturate at their cardinality for many rows.
  EXPECT_NEAR(sizes.SizeOf(AttributeSet::Of({2})), 20.0, 0.1);
  // No view exceeds the raw row count or its domain size.
  for (uint32_t v = 0; v < sizes.num_views(); ++v) {
    AttributeSet attrs = AttributeSet::FromMask(v);
    EXPECT_LE(sizes[v], 10'000.0 + 1e-9);
    EXPECT_LE(sizes[v], schema.DomainSize(attrs) + 1e-9);
  }
}

TEST(SparsityTest, RoundTrips) {
  CubeSchema schema({Dimension{"a", 100}, Dimension{"b", 100}});
  double rows = RawRowsForSparsity(schema, 0.25);
  EXPECT_NEAR(rows, 2500.0, 1e-9);
  EXPECT_NEAR(CubeSparsity(schema, rows), 0.25, 1e-12);
}

TEST(ViewSizesTest, TotalSpaces) {
  ViewSizes sizes(2);
  sizes.Set(AttributeSet::Of({0}), 10.0);
  sizes.Set(AttributeSet::Of({1}), 20.0);
  sizes.Set(AttributeSet::Of({0, 1}), 100.0);
  EXPECT_TRUE(sizes.Complete());
  EXPECT_NEAR(sizes.TotalViewSpace(), 131.0, 1e-12);
  // Fat-index space: 1-attr views have 1 index each; the 2-attr view has 2.
  EXPECT_NEAR(sizes.TotalFatIndexSpace(), 10 + 20 + 2 * 100.0, 1e-12);
}

TEST(ViewSizesTest, MonotoneDetectsViolation) {
  ViewSizes sizes(2);
  sizes.Set(AttributeSet::Of({0}), 50.0);
  sizes.Set(AttributeSet::Of({1}), 20.0);
  sizes.Set(AttributeSet::Of({0, 1}), 10.0);  // smaller than a child view
  EXPECT_FALSE(sizes.IsMonotone());
}

TEST(ViewSizesTest, IncompleteUntilAllSet) {
  ViewSizes sizes(2);
  EXPECT_FALSE(sizes.Complete());
  sizes.Set(AttributeSet::Of({0}), 5.0);
  sizes.Set(AttributeSet::Of({1}), 5.0);
  EXPECT_FALSE(sizes.Complete());
  sizes.Set(AttributeSet::Of({0, 1}), 25.0);
  EXPECT_TRUE(sizes.Complete());
}

}  // namespace
}  // namespace olapidx
