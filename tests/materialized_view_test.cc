#include "engine/materialized_view.h"

#include <map>

#include <gtest/gtest.h>

#include "data/fact_generator.h"

namespace olapidx {
namespace {

CubeSchema SmallSchema() {
  return CubeSchema(
      {Dimension{"a", 4}, Dimension{"b", 3}, Dimension{"c", 2}});
}

FactTable FixedFacts() {
  CubeSchema schema = SmallSchema();
  FactTable fact(schema);
  fact.Append({0, 0, 0}, 1.0);
  fact.Append({0, 0, 1}, 2.0);
  fact.Append({0, 1, 0}, 4.0);
  fact.Append({1, 0, 0}, 8.0);
  fact.Append({1, 0, 0}, 16.0);  // duplicate key in abc
  return fact;
}

TEST(FactTableTest, AppendAndAccess) {
  FactTable fact = FixedFacts();
  EXPECT_EQ(fact.num_rows(), 5u);
  EXPECT_EQ(fact.dim(3, 0), 1u);
  EXPECT_EQ(fact.dim(3, 1), 0u);
  EXPECT_EQ(fact.measure(4), 16.0);
  EXPECT_EQ(fact.RowDims(2), (std::vector<uint32_t>{0, 1, 0}));
}

TEST(MaterializedViewTest, FullGroupByMergesDuplicates) {
  FactTable fact = FixedFacts();
  MaterializedView v = MaterializedView::FromFactTable(
      fact, AttributeSet::Of({0, 1, 2}));
  EXPECT_EQ(v.num_rows(), 4u);  // (1,0,0) appears twice
  // Rows sorted by (a, b, c); find (1,0,0) → sum 24.
  double sum_100 = 0.0;
  for (size_t r = 0; r < v.num_rows(); ++r) {
    if (v.dim(r, 0) == 1 && v.dim(r, 1) == 0 && v.dim(r, 2) == 0) {
      sum_100 = v.sum(r);
    }
  }
  EXPECT_EQ(sum_100, 24.0);
}

TEST(MaterializedViewTest, PartialGroupBy) {
  FactTable fact = FixedFacts();
  MaterializedView v =
      MaterializedView::FromFactTable(fact, AttributeSet::Of({0}));
  EXPECT_EQ(v.num_rows(), 2u);  // a ∈ {0, 1}
  std::map<uint32_t, double> sums;
  for (size_t r = 0; r < v.num_rows(); ++r) sums[v.dim(r, 0)] = v.sum(r);
  EXPECT_EQ(sums[0], 7.0);   // 1 + 2 + 4
  EXPECT_EQ(sums[1], 24.0);  // 8 + 16
}

TEST(MaterializedViewTest, ApexViewIsGrandTotal) {
  FactTable fact = FixedFacts();
  MaterializedView v =
      MaterializedView::FromFactTable(fact, AttributeSet());
  ASSERT_EQ(v.num_rows(), 1u);
  EXPECT_EQ(v.sum(0), 31.0);
  EXPECT_TRUE(v.RowKey(0).empty());
}

TEST(MaterializedViewTest, RollupFromParentMatchesDirect) {
  FactTable fact = GenerateUniformFacts(SmallSchema(), 500, /*seed=*/7);
  MaterializedView base = MaterializedView::FromFactTable(
      fact, AttributeSet::Of({0, 1, 2}));
  for (uint32_t mask = 0; mask < 8; ++mask) {
    AttributeSet attrs = AttributeSet::FromMask(mask);
    MaterializedView direct =
        MaterializedView::FromFactTable(fact, attrs);
    MaterializedView rolled = MaterializedView::FromView(base, attrs);
    ASSERT_EQ(direct.num_rows(), rolled.num_rows()) << "mask " << mask;
    for (size_t r = 0; r < direct.num_rows(); ++r) {
      EXPECT_EQ(direct.RowKey(r), rolled.RowKey(r));
      EXPECT_NEAR(direct.sum(r), rolled.sum(r), 1e-9);
    }
  }
}

TEST(MaterializedViewTest, RowsSortedByKey) {
  FactTable fact = GenerateUniformFacts(SmallSchema(), 300, /*seed=*/9);
  MaterializedView v = MaterializedView::FromFactTable(
      fact, AttributeSet::Of({0, 1}));
  for (size_t r = 1; r < v.num_rows(); ++r) {
    EXPECT_LT(v.RowKey(r - 1), v.RowKey(r));
  }
}

TEST(MaterializedViewTest, SumsPreserveTotal) {
  FactTable fact = GenerateUniformFacts(SmallSchema(), 400, /*seed=*/11);
  double total = 0.0;
  for (size_t r = 0; r < fact.num_rows(); ++r) total += fact.measure(r);
  for (uint32_t mask = 0; mask < 8; ++mask) {
    MaterializedView v = MaterializedView::FromFactTable(
        fact, AttributeSet::FromMask(mask));
    double view_total = 0.0;
    for (size_t r = 0; r < v.num_rows(); ++r) view_total += v.sum(r);
    EXPECT_NEAR(view_total, total, 1e-6) << "mask " << mask;
  }
}

TEST(MaterializedViewDeathTest, RollupRequiresSubset) {
  FactTable fact = FixedFacts();
  MaterializedView a =
      MaterializedView::FromFactTable(fact, AttributeSet::Of({0}));
  EXPECT_DEATH(MaterializedView::FromView(a, AttributeSet::Of({1})),
               "CHECK");
}

}  // namespace
}  // namespace olapidx
