#include "engine/catalog.h"

#include <gtest/gtest.h>

#include "data/fact_generator.h"

namespace olapidx {
namespace {

CubeSchema SmallSchema() {
  return CubeSchema(
      {Dimension{"a", 6}, Dimension{"b", 4}, Dimension{"c", 3}});
}

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest()
      : fact_(GenerateUniformFacts(SmallSchema(), 500, /*seed=*/1)),
        catalog_(&fact_) {}

  FactTable fact_;
  Catalog catalog_;
};

TEST_F(CatalogTest, StartsEmpty) {
  EXPECT_FALSE(catalog_.HasView(AttributeSet::Of({0})));
  EXPECT_TRUE(catalog_.materialized_views().empty());
  EXPECT_EQ(catalog_.TotalSpaceRows(), 0.0);
}

TEST_F(CatalogTest, MaterializeIsIdempotent) {
  size_t rows = catalog_.MaterializeView(AttributeSet::Of({0, 1}));
  EXPECT_TRUE(catalog_.HasView(AttributeSet::Of({0, 1})));
  EXPECT_EQ(catalog_.MaterializeView(AttributeSet::Of({0, 1})), rows);
  EXPECT_EQ(catalog_.materialized_views().size(), 1u);
}

TEST_F(CatalogTest, RollupUsesSmallestAncestor) {
  catalog_.MaterializeView(AttributeSet::Of({0, 1, 2}));
  catalog_.MaterializeView(AttributeSet::Of({0, 1}));
  // Materializing {0} must give the same contents as from the fact table.
  catalog_.MaterializeView(AttributeSet::Of({0}));
  MaterializedView direct =
      MaterializedView::FromFactTable(fact_, AttributeSet::Of({0}));
  const MaterializedView& rolled = catalog_.view(AttributeSet::Of({0}));
  ASSERT_EQ(rolled.num_rows(), direct.num_rows());
  for (size_t r = 0; r < direct.num_rows(); ++r) {
    EXPECT_EQ(rolled.RowKey(r), direct.RowKey(r));
    EXPECT_NEAR(rolled.sum(r), direct.sum(r), 1e-9);
  }
}

TEST_F(CatalogTest, BuildIndexRequiresView) {
  Status missing = catalog_.BuildIndex(AttributeSet::Of({0}), IndexKey({0}));
  EXPECT_EQ(missing.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(missing.message().find("unmaterialized"), std::string::npos)
      << missing.ToString();
  catalog_.MaterializeView(AttributeSet::Of({0}));
  EXPECT_TRUE(catalog_.BuildIndex(AttributeSet::Of({0}), IndexKey({0})).ok());
  EXPECT_EQ(catalog_.indexes(AttributeSet::Of({0})).size(), 1u);
  // Duplicate index build is a no-op.
  EXPECT_TRUE(catalog_.BuildIndex(AttributeSet::Of({0}), IndexKey({0})).ok());
  EXPECT_EQ(catalog_.indexes(AttributeSet::Of({0})).size(), 1u);
}

TEST_F(CatalogTest, BuildIndexRejectsBadKeys) {
  catalog_.MaterializeView(AttributeSet::Of({0, 1}));
  EXPECT_EQ(catalog_.BuildIndex(AttributeSet::Of({0, 1}), IndexKey())
                .code(),
            StatusCode::kInvalidArgument);
  // Key mentions attribute 2, which is outside view {0,1}.
  EXPECT_EQ(catalog_.BuildIndex(AttributeSet::Of({0, 1}), IndexKey({2, 0}))
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(catalog_.indexes(AttributeSet::Of({0, 1})).empty());
}

TEST_F(CatalogTest, SpaceAccountingMatchesPaperModel) {
  AttributeSet ab = AttributeSet::Of({0, 1});
  size_t rows = catalog_.MaterializeView(ab);
  catalog_.BuildIndex(ab, IndexKey({0, 1}));
  catalog_.BuildIndex(ab, IndexKey({1, 0}));
  // View rows + 2 indexes, each the size of the view.
  EXPECT_EQ(catalog_.TotalSpaceRows(), static_cast<double>(3 * rows));
}

TEST_F(CatalogTest, ViewSizesMonotoneAcrossLattice) {
  for (uint32_t mask = 0; mask < 8; ++mask) {
    catalog_.MaterializeView(AttributeSet::FromMask(mask));
  }
  for (uint32_t mask = 0; mask < 8; ++mask) {
    AttributeSet attrs = AttributeSet::FromMask(mask);
    for (int a = 0; a < 3; ++a) {
      if (attrs.Contains(a)) continue;
      EXPECT_LE(catalog_.view(attrs).num_rows(),
                catalog_.view(attrs.With(a)).num_rows());
    }
  }
}

}  // namespace
}  // namespace olapidx
