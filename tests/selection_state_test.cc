#include "core/selection_state.h"

#include <gtest/gtest.h>

namespace olapidx {
namespace {

// A small fixed graph:
//   V0 (space 4): answers Q0 at 2 (scan), index I00 answers Q0 at 1,
//                 answers Q1 at 3 (scan), I00 answers Q1 at 1.
//   V1 (space 2): answers Q1 at 1 (scan).
//   Defaults: Q0 = 10 (freq 1), Q1 = 20 (freq 2).
class SelectionStateTest : public ::testing::Test {
 protected:
  SelectionStateTest() {
    v0_ = g_.AddView("V0", 4.0);
    v1_ = g_.AddView("V1", 2.0);
    i00_ = g_.AddIndex(v0_, "I00", 4.0);
    q0_ = g_.AddQuery("Q0", 10.0, 1.0);
    q1_ = g_.AddQuery("Q1", 20.0, 2.0);
    g_.AddViewEdge(q0_, v0_, 2.0);
    g_.AddIndexEdge(q0_, v0_, i00_, 1.0);
    g_.AddViewEdge(q1_, v0_, 3.0);
    g_.AddIndexEdge(q1_, v0_, i00_, 1.0);
    g_.AddViewEdge(q1_, v1_, 1.0);
    g_.Finalize();
  }

  QueryViewGraph g_;
  uint32_t v0_, v1_, q0_, q1_;
  int32_t i00_;
};

TEST_F(SelectionStateTest, InitialState) {
  SelectionState state(&g_);
  EXPECT_NEAR(state.TotalCost(), 10.0 + 2 * 20.0, 1e-12);
  EXPECT_EQ(state.SpaceUsed(), 0.0);
  EXPECT_EQ(state.TotalBenefit(), 0.0);
  EXPECT_FALSE(state.ViewSelected(v0_));
  EXPECT_EQ(state.QueryBestCost(q0_), 10.0);
}

TEST_F(SelectionStateTest, ViewBenefit) {
  SelectionState state(&g_);
  // V0 alone: Q0 10→2 (+8·1), Q1 20→3 (+17·2) = 42.
  Candidate c{v0_, true, {}};
  EXPECT_NEAR(state.CandidateBenefit(c), 8 + 34, 1e-12);
  EXPECT_NEAR(state.CandidateSpace(c), 4.0, 1e-12);
}

TEST_F(SelectionStateTest, ViewPlusIndexBenefit) {
  SelectionState state(&g_);
  // V0 + I00: Q0 10→1 (+9), Q1 20→1 (+19·2) = 47; space 8.
  Candidate c{v0_, true, {i00_}};
  EXPECT_NEAR(state.CandidateBenefit(c), 9 + 38, 1e-12);
  EXPECT_NEAR(state.CandidateSpace(c), 8.0, 1e-12);
}

TEST_F(SelectionStateTest, ApplyUpdatesEverything) {
  SelectionState state(&g_);
  Candidate c{v0_, true, {}};
  state.Apply(c);
  EXPECT_TRUE(state.ViewSelected(v0_));
  EXPECT_NEAR(state.TotalCost(), 50.0 - 42.0, 1e-12);
  EXPECT_NEAR(state.SpaceUsed(), 4.0, 1e-12);
  EXPECT_NEAR(state.TotalBenefit(), 42.0, 1e-12);
  EXPECT_EQ(state.QueryBestCost(q0_), 2.0);
  EXPECT_EQ(state.QueryBestCost(q1_), 3.0);
  ASSERT_EQ(state.picks().size(), 1u);
  EXPECT_TRUE(state.picks()[0].is_view());

  // Index afterwards: Q0 2→1 (+1), Q1 3→1 (+2·2) = 5.
  Candidate ci{v0_, false, {i00_}};
  EXPECT_NEAR(state.CandidateBenefit(ci), 5.0, 1e-12);
  state.Apply(ci);
  EXPECT_TRUE(state.IndexSelected(v0_, i00_));
  EXPECT_NEAR(state.TotalBenefit(), 47.0, 1e-12);
  EXPECT_NEAR(state.SpaceUsed(), 8.0, 1e-12);
}

TEST_F(SelectionStateTest, BenefitNeverNegative) {
  SelectionState state(&g_);
  state.Apply(Candidate{v0_, true, {i00_}});
  // V1 now helps nothing (Q1 already at 1).
  Candidate c{v1_, true, {}};
  EXPECT_NEAR(state.CandidateBenefit(c), 0.0, 1e-12);
}

TEST_F(SelectionStateTest, StructureHelpers) {
  SelectionState state(&g_);
  StructureRef view_ref{v0_, StructureRef::kNoIndex};
  EXPECT_NEAR(state.StructureBenefit(view_ref), 42.0, 1e-12);
  state.ApplyStructure(view_ref);
  StructureRef index_ref{v0_, i00_};
  EXPECT_NEAR(state.StructureBenefit(index_ref), 5.0, 1e-12);
  state.ApplyStructure(index_ref);
  EXPECT_TRUE(state.Selected(view_ref));
  EXPECT_TRUE(state.Selected(index_ref));
}

TEST_F(SelectionStateTest, FrequenciesWeightBenefit) {
  SelectionState state(&g_);
  // V1 alone: only Q1, 20→1, frequency 2 → benefit 38.
  Candidate c{v1_, true, {}};
  EXPECT_NEAR(state.CandidateBenefit(c), 38.0, 1e-12);
}

TEST_F(SelectionStateTest, ApplyIsIdempotentOnCosts) {
  // Applying a candidate that no longer helps leaves τ unchanged.
  SelectionState state(&g_);
  state.Apply(Candidate{v0_, true, {i00_}});
  double cost = state.TotalCost();
  state.Apply(Candidate{v1_, true, {}});
  EXPECT_NEAR(state.TotalCost(), cost, 1e-12);
  EXPECT_NEAR(state.SpaceUsed(), 10.0, 1e-12);  // space still accrues
}

TEST_F(SelectionStateTest, InvalidCandidatesRejected) {
  SelectionState state(&g_);
  // Index without its view.
  EXPECT_DEATH(state.Apply(Candidate{v0_, false, {i00_}}), "CHECK");
  state.Apply(Candidate{v0_, true, {}});
  // Re-adding a selected view.
  EXPECT_DEATH(state.Apply(Candidate{v0_, true, {}}), "CHECK");
}

}  // namespace
}  // namespace olapidx
