#include "engine/column_store.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "common/rng.h"
#include "data/fact_generator.h"
#include "engine/catalog.h"
#include "engine/executor.h"

namespace olapidx {
namespace {

bool BitEq(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool StatesBitEq(const AggregateState& a, const AggregateState& b) {
  return BitEq(a.sum, b.sum) && a.count == b.count && BitEq(a.min, b.min) &&
         BitEq(a.max, b.max);
}

// ---------------------------------------------------------------------------
// RLE round-trip property: random columns, sorted and unsorted.
// ---------------------------------------------------------------------------

TEST(RleTest, RoundTripsRandomColumns) {
  Pcg32 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    size_t len = rng.NextBounded(500);
    uint32_t domain = 1 + rng.NextBounded(20);
    std::vector<uint32_t> column(len);
    for (auto& v : column) v = rng.NextBounded(domain);
    if (trial % 2 == 0) std::sort(column.begin(), column.end());

    RleColumn rle = RleEncode(column);
    EXPECT_EQ(RleDecode(rle), column);
    EXPECT_EQ(rle.num_rows, column.size());
    EXPECT_LE(rle.num_runs(), column.size());
    if (trial % 2 == 0 && !column.empty()) {
      // Sorted input: one run per distinct value.
      EXPECT_LE(rle.num_runs(), static_cast<size_t>(domain));
    }
  }
}

TEST(RleTest, EdgeCases) {
  EXPECT_TRUE(RleDecode(RleEncode({})).empty());
  EXPECT_EQ(RleDecode(RleEncode({5})), std::vector<uint32_t>{5});
  std::vector<uint32_t> constant(1000, 9);
  RleColumn rle = RleEncode(constant);
  EXPECT_EQ(rle.num_runs(), 1u);
  EXPECT_EQ(RleDecode(rle), constant);
  std::vector<uint32_t> alternating;
  for (uint32_t i = 0; i < 100; ++i) alternating.push_back(i % 2);
  EXPECT_EQ(RleDecode(RleEncode(alternating)), alternating);
}

// ---------------------------------------------------------------------------
// Store vs view content equivalence.
// ---------------------------------------------------------------------------

CubeSchema TestSchema() {
  return CubeSchema(
      {Dimension{"a", 12}, Dimension{"b", 7}, Dimension{"c", 4},
       Dimension{"d", 9}});
}

// Collects the store's (key → state) content as a sorted map, so row-order
// differences between representations cancel out.
std::map<std::vector<uint32_t>, AggregateState> StoreContent(
    const ColumnStore& store) {
  std::vector<int> attrs = store.attrs().ToVector();
  std::map<std::vector<uint32_t>, AggregateState> content;
  store.Scan([&](size_t r, const uint32_t* dims, const AggregateState& st) {
    (void)r;
    std::vector<uint32_t> key;
    for (int a : attrs) key.push_back(dims[static_cast<size_t>(a)]);
    EXPECT_TRUE(content.emplace(std::move(key), st).second);
  });
  return content;
}

std::map<std::vector<uint32_t>, AggregateState> ViewContent(
    const MaterializedView& view) {
  std::map<std::vector<uint32_t>, AggregateState> content;
  for (size_t r = 0; r < view.num_rows(); ++r) {
    content.emplace(view.RowKey(r), view.aggregate(r));
  }
  return content;
}

TEST(ColumnStoreTest, ReconstructsViewContentBitExactly) {
  FactTable fact = GenerateUniformFacts(TestSchema(), 3000, /*seed=*/11);
  for (AttributeSet attrs :
       {AttributeSet::Of({0, 1}), AttributeSet::Of({0, 1, 2, 3}),
        AttributeSet::Of({2}), AttributeSet::Of({1, 3})}) {
    MaterializedView view = MaterializedView::FromFactTable(fact, attrs);
    for (bool reorder : {true, false}) {
      ColumnStore store =
          ColumnStore::FromView(view, ColumnStoreOptions{reorder});
      ASSERT_EQ(store.num_rows(), view.num_rows());
      auto expected = ViewContent(view);
      auto actual = StoreContent(store);
      ASSERT_EQ(actual.size(), expected.size());
      auto it = expected.begin();
      for (const auto& [key, state] : actual) {
        EXPECT_EQ(key, it->first);
        // Aggregate reconstruction is bit-exact even for fractional
        // measures: singletons round-trip through one double, full
        // states are stored verbatim.
        EXPECT_TRUE(StatesBitEq(state, it->second));
        ++it;
      }
    }
  }
}

TEST(ColumnStoreTest, RandomAccessMatchesScan) {
  FactTable fact = GenerateZipfFacts(TestSchema(), 2000, 1.1, /*seed=*/3);
  MaterializedView view =
      MaterializedView::FromFactTable(fact, AttributeSet::Of({0, 1, 3}));
  ColumnStore store = ColumnStore::FromView(view);
  std::vector<int> attrs = store.attrs().ToVector();
  store.Scan([&](size_t r, const uint32_t* dims, const AggregateState& st) {
    for (int a : attrs) {
      EXPECT_EQ(store.dim(r, a), dims[static_cast<size_t>(a)]);
    }
    EXPECT_TRUE(StatesBitEq(store.aggregate(r), st));
  });
}

TEST(ColumnStoreTest, ReorderingReducesTotalRuns) {
  FactTable fact = GenerateZipfFacts(TestSchema(), 4000, 1.0, /*seed=*/5);
  MaterializedView view =
      MaterializedView::FromFactTable(fact, AttributeSet::Of({0, 1, 2}));
  ColumnStore sorted = ColumnStore::FromView(view, ColumnStoreOptions{true});
  ColumnStore unsorted =
      ColumnStore::FromView(view, ColumnStoreOptions{false});
  // The ascending-distinct lexicographic re-sort bounds column k's runs by
  // the product of the leading distinct counts — the ordering that
  // minimizes the sum of those bounds (Kaser & Lemire). The raw view
  // order is also lexicographic but under ascending attribute id, so its
  // leading column is sorted too; the win is in the totals.
  size_t sorted_runs = 0;
  size_t unsorted_runs = 0;
  for (int a : view.attrs().ToVector()) {
    sorted_runs += sorted.NumRuns(a);
    unsorted_runs += unsorted.NumRuns(a);
  }
  EXPECT_LE(sorted_runs, unsorted_runs);
  // And the leading (fewest-distinct) column collapses to one run per
  // value: runs == distinct count ≤ every other ordering's bound.
  std::vector<size_t> distinct;
  std::vector<uint32_t> seen;
  for (int a : view.attrs().ToVector()) {
    seen.clear();
    for (size_t r = 0; r < view.num_rows(); ++r) {
      seen.push_back(view.dim(r, a));
    }
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    distinct.push_back(seen.size());
  }
  size_t min_distinct =
      *std::min_element(distinct.begin(), distinct.end());
  bool found_leading = false;
  for (int a : view.attrs().ToVector()) {
    if (sorted.NumRuns(a) == min_distinct) found_leading = true;
  }
  EXPECT_TRUE(found_leading);
}

// ---------------------------------------------------------------------------
// Executor over the compressed store.
// ---------------------------------------------------------------------------

// Integer measures keep every partial sum exactly representable, so any
// accumulation order yields bit-identical sums — the store's row re-sort
// cannot perturb results (the "dyadic-exact" pinning idiom from the
// metamorphic suite).
FactTable IntegerMeasureFacts(const CubeSchema& schema, size_t rows,
                              uint64_t seed) {
  FactTable fact(schema);
  fact.Reserve(rows);
  Pcg32 rng(seed);
  std::vector<uint32_t> dims(static_cast<size_t>(schema.num_dimensions()));
  for (size_t r = 0; r < rows; ++r) {
    for (int a = 0; a < schema.num_dimensions(); ++a) {
      dims[static_cast<size_t>(a)] = rng.NextBounded(static_cast<uint32_t>(
          schema.dimensions()[static_cast<size_t>(a)].cardinality));
    }
    fact.Append(dims, 1.0 + rng.NextBounded(100));
  }
  return fact;
}

TEST(ColumnStoreTest, ExecutorColumnarScanBitIdenticalToRowScan) {
  FactTable fact = IntegerMeasureFacts(TestSchema(), 2500, /*seed=*/17);
  Catalog catalog(&fact);
  catalog.MaterializeView(AttributeSet::Of({0, 1, 2}));
  catalog.MaterializeView(AttributeSet::Of({1, 3}));
  Catalog compressed(&fact);
  compressed.MaterializeView(AttributeSet::Of({0, 1, 2}));
  compressed.MaterializeView(AttributeSet::Of({1, 3}));
  ASSERT_EQ(compressed.CompressAllViews(), 2u);

  Executor row_exec(&catalog);
  Executor col_exec(&compressed);
  Pcg32 rng(23);
  for (int trial = 0; trial < 40; ++trial) {
    AttributeSet group = AttributeSet::Of({static_cast<int>(
        rng.NextBounded(4))});
    int sel_attr = static_cast<int>(rng.NextBounded(4));
    if (group.Contains(sel_attr)) continue;
    SliceQuery q(group, AttributeSet::Of({sel_attr}));
    std::vector<uint32_t> sel = {rng.NextBounded(static_cast<uint32_t>(
        TestSchema().dimensions()[static_cast<size_t>(sel_attr)]
            .cardinality))};
    ExecutionStats row_stats, col_stats;
    GroupedResult a = row_exec.Execute(q, sel, &row_stats);
    GroupedResult b = col_exec.Execute(q, sel, &col_stats);
    ASSERT_EQ(a.keys, b.keys);
    ASSERT_EQ(a.sums.size(), b.sums.size());
    for (size_t i = 0; i < a.sums.size(); ++i) {
      EXPECT_TRUE(BitEq(a.sums[i], b.sums[i]));
      EXPECT_EQ(a.aggregates[i].count, b.aggregates[i].count);
      EXPECT_TRUE(BitEq(a.aggregates[i].min, b.aggregates[i].min));
      EXPECT_TRUE(BitEq(a.aggregates[i].max, b.aggregates[i].max));
    }
    if (!col_stats.used_raw && col_stats.index.empty()) {
      EXPECT_TRUE(col_stats.used_columnar);
    }
  }
}

TEST(ColumnStoreTest, ExecutorToggleForcesRowStore) {
  FactTable fact = IntegerMeasureFacts(TestSchema(), 800, /*seed=*/29);
  Catalog catalog(&fact);
  catalog.MaterializeView(AttributeSet::Of({0, 1}));
  ASSERT_TRUE(catalog.CompressView(AttributeSet::Of({0, 1})).ok());
  Executor exec(&catalog);
  SliceQuery q(AttributeSet::Of({0}), AttributeSet::Of({1}));
  ExecutionStats on_stats, off_stats;
  GroupedResult on = exec.Execute(q, {2}, &on_stats);
  exec.set_use_column_store(false);
  GroupedResult off = exec.Execute(q, {2}, &off_stats);
  EXPECT_TRUE(on_stats.used_columnar);
  EXPECT_FALSE(off_stats.used_columnar);
  ASSERT_EQ(on.keys, off.keys);
  for (size_t i = 0; i < on.sums.size(); ++i) {
    EXPECT_TRUE(BitEq(on.sums[i], off.sums[i]));
  }
}

TEST(ColumnStoreTest, CatalogRefreshRebuildsStore) {
  CubeSchema schema = TestSchema();
  FactTable fact = IntegerMeasureFacts(schema, 500, /*seed=*/31);
  Catalog catalog(&fact);
  catalog.MaterializeView(AttributeSet::Of({0, 2}));
  ASSERT_TRUE(catalog.CompressView(AttributeSet::Of({0, 2})).ok());
  fact.Append({1, 2, 3, 4}, 5.0);
  fact.Append({1, 2, 3, 5}, 7.0);
  catalog.RefreshAfterAppend();
  const MaterializedView& view = catalog.view(AttributeSet::Of({0, 2}));
  const ColumnStore* store = catalog.column_store(AttributeSet::Of({0, 2}));
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->num_rows(), view.num_rows());
  auto expected = ViewContent(view);
  auto actual = StoreContent(*store);
  ASSERT_EQ(actual.size(), expected.size());
  auto it = expected.begin();
  for (const auto& [key, state] : actual) {
    EXPECT_EQ(key, it->first);
    EXPECT_TRUE(StatesBitEq(state, it->second));
    ++it;
  }
}

TEST(ColumnStoreTest, CompressUnmaterializedViewFails) {
  FactTable fact = IntegerMeasureFacts(TestSchema(), 100, /*seed=*/37);
  Catalog catalog(&fact);
  Status s = catalog.CompressView(AttributeSet::Of({0, 1}));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// The acceptance pin: TPC-D views compress to ≤ 0.5x of row storage.
// ---------------------------------------------------------------------------

TEST(ColumnStoreTest, TpcdViewsCompressBelowHalfOfRowStorage) {
  FactTable fact = GenerateTpcdScaledFacts(TpcdScaledConfig{});
  Catalog catalog(&fact);
  // All non-empty subcubes of (part, supplier, customer), the paper's
  // Figure 1 lattice.
  std::vector<AttributeSet> views;
  for (uint32_t mask = 1; mask < 8; ++mask) {
    views.push_back(AttributeSet::FromMask(mask));
    catalog.MaterializeView(views.back());
  }
  catalog.CompressAllViews();
  size_t row_bytes = 0;
  size_t compressed_bytes = 0;
  for (AttributeSet attrs : views) {
    row_bytes += ColumnStore::RowStoreBytes(catalog.view(attrs));
    compressed_bytes += catalog.column_store(attrs)->CompressedBytes();
  }
  EXPECT_LE(compressed_bytes * 2, row_bytes)
      << "compressed " << compressed_bytes << " vs row " << row_bytes;
}

}  // namespace
}  // namespace olapidx
