// The calibration pipeline end to end: fitter properties (planted
// coefficients, rank deficiency, degenerate inputs), the golden
// regression pinning the fitted coefficients and the dataset schema, and
// the paired-selection never-worse invariant.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "calibration/calibrator.h"
#include "common/metrics.h"
#include "cost/calibrated_cost_model.h"
#include "data/fact_generator.h"
#include "data/size_estimation.h"
#include "engine/catalog.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

// ---------------------------------------------------------------------------
// FitLeastSquares properties.
// ---------------------------------------------------------------------------

TEST(FitLeastSquaresTest, RecoversPlantedCoefficients) {
  // y = 2 x0 + 3 x1 + 7, no noise: the fit must be exact.
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (int i = 0; i < 12; ++i) {
    const double x0 = static_cast<double>(i);
    const double x1 = static_cast<double>((i * 5) % 7);
    rows.push_back({x0, x1, 1.0});
    targets.push_back(2.0 * x0 + 3.0 * x1 + 7.0);
  }
  StatusOr<LeastSquaresFit> fit = FitLeastSquares(rows, targets);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  ASSERT_EQ(fit->coefficients.size(), 3u);
  EXPECT_NEAR(fit->coefficients[0], 2.0, 1e-9);
  EXPECT_NEAR(fit->coefficients[1], 3.0, 1e-9);
  EXPECT_NEAR(fit->coefficients[2], 7.0, 1e-9);
  EXPECT_TRUE(fit->dropped_columns.empty());
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-9);
  EXPECT_LT(fit->rss, 1e-9);
}

TEST(FitLeastSquaresTest, OverdeterminedNoisyFitIsFinite) {
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (int i = 0; i < 50; ++i) {
    const double x = static_cast<double>(i);
    rows.push_back({x, 1.0});
    // Deterministic "noise" that no line fits exactly.
    targets.push_back(4.0 * x + 10.0 + ((i % 3) - 1));
  }
  StatusOr<LeastSquaresFit> fit = FitLeastSquares(rows, targets);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(std::isfinite(fit->coefficients[0]));
  EXPECT_TRUE(std::isfinite(fit->coefficients[1]));
  EXPECT_NEAR(fit->coefficients[0], 4.0, 0.05);
  EXPECT_GT(fit->r_squared, 0.99);
  EXPECT_GT(fit->rss, 0.0);
}

TEST(FitLeastSquaresTest, RankDeficientStrictReturnsFailedPrecondition) {
  // Second column is an exact multiple of the first.
  std::vector<std::vector<double>> rows = {
      {1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
  std::vector<double> targets = {1.0, 2.0, 3.0};
  StatusOr<LeastSquaresFit> fit = FitLeastSquares(rows, targets);
  ASSERT_FALSE(fit.ok());
  EXPECT_EQ(fit.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FitLeastSquaresTest, DropModeRecoversFromZeroColumn) {
  // Column 1 is all-zero — exactly what OLAPIDX_METRICS=OFF produces for
  // the node-touch feature.
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (int i = 1; i <= 8; ++i) {
    rows.push_back({static_cast<double>(i), 0.0, 1.0});
    targets.push_back(5.0 * i + 800.0);
  }
  LeastSquaresOptions options;
  options.drop_degenerate_columns = true;
  StatusOr<LeastSquaresFit> fit = FitLeastSquares(rows, targets, options);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  ASSERT_EQ(fit->dropped_columns, std::vector<int>{1});
  EXPECT_NEAR(fit->coefficients[0], 5.0, 1e-9);
  EXPECT_EQ(fit->coefficients[1], 0.0);
  EXPECT_NEAR(fit->coefficients[2], 800.0, 1e-9);
}

TEST(FitLeastSquaresTest, SingleFeatureFitsSlope) {
  std::vector<std::vector<double>> rows = {{1.0}, {2.0}, {3.0}};
  std::vector<double> targets = {3.0, 6.0, 9.0};
  StatusOr<LeastSquaresFit> fit = FitLeastSquares(rows, targets);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->coefficients[0], 3.0, 1e-12);
}

TEST(FitLeastSquaresTest, RejectsDegenerateInputs) {
  // Empty.
  EXPECT_EQ(FitLeastSquares({}, {}).status().code(),
            StatusCode::kInvalidArgument);
  // Row/target count mismatch.
  EXPECT_EQ(FitLeastSquares({{1.0}}, {1.0, 2.0}).status().code(),
            StatusCode::kInvalidArgument);
  // Ragged rows.
  EXPECT_EQ(
      FitLeastSquares({{1.0, 2.0}, {1.0}}, {1.0, 2.0}).status().code(),
      StatusCode::kInvalidArgument);
  // Zero-column rows.
  EXPECT_EQ(FitLeastSquares({{}, {}}, {1.0, 2.0}).status().code(),
            StatusCode::kInvalidArgument);
  // Non-finite feature and target.
  EXPECT_EQ(FitLeastSquares({{std::nan("")}}, {1.0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FitLeastSquares({{1.0}}, {HUGE_VAL}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FitLeastSquaresTest, AllZeroFeaturesNeverProduceNaN) {
  LeastSquaresOptions drop;
  drop.drop_degenerate_columns = true;
  // Every column degenerate: strict fails, drop mode fails too (nothing
  // left to fit) — but neither may return NaNs via an OK result.
  StatusOr<LeastSquaresFit> strict =
      FitLeastSquares({{0.0, 0.0}, {0.0, 0.0}}, {1.0, 2.0});
  EXPECT_FALSE(strict.ok());
  StatusOr<LeastSquaresFit> dropped =
      FitLeastSquares({{0.0, 0.0}, {0.0, 0.0}}, {1.0, 2.0}, drop);
  if (dropped.ok()) {
    for (double c : dropped->coefficients) EXPECT_TRUE(std::isfinite(c));
  }
}

// ---------------------------------------------------------------------------
// CalibratedCostModel semantics.
// ---------------------------------------------------------------------------

TEST(CalibratedCostModelTest, DegradesToPaperModelWithUnitCoefficients) {
  CalibratedCostModel model({/*per_row=*/1.0, /*per_node=*/0.0,
                             /*fixed=*/0.0});
  PaperCostModel paper;
  EXPECT_DOUBLE_EQ(model.ScanCost(1000.0), paper.ScanCost(1000.0));
  EXPECT_DOUBLE_EQ(model.IndexCost(1000.0, 8.0),
                   paper.IndexCost(1000.0, 8.0));
  EXPECT_DOUBLE_EQ(model.IndexCost(1.0, 1.0), 1.0);
}

TEST(CalibratedCostModelTest, NodeTouchesGrowWithTouchedRows) {
  CalibratedCostModel model({1.0, 1.0, 0.0});
  const double small = model.EstimatedNodeTouches(4096.0, 4096.0);
  const double large = model.EstimatedNodeTouches(4096.0, 1.0);
  EXPECT_GE(small, 1.0);
  EXPECT_GT(large, small);
}

TEST(CalibratedCostModelTest, CostIsFlooredPositive) {
  CalibratedCostModel model({0.0, 0.0, 0.0});
  EXPECT_GT(model.ScanCost(0.0), 0.0);
  EXPECT_GT(model.IndexCost(1.0, 100.0), 0.0);
}

// ---------------------------------------------------------------------------
// Golden regression: dataset schema + pinned fitted coefficients.
// ---------------------------------------------------------------------------

class CalibrationPipelineTest : public ::testing::Test {
 protected:
  static CalibrationRunOptions RunOptions() {
    CalibrationRunOptions options;
    options.max_queries = 24;
    options.repeats = 1;
    options.seed = 42;
    return options;
  }
  static FactTable MakeFact() {
    TpcdScaledConfig config;
    config.rows = 4'000;
    return GenerateTpcdScaledFacts(config);
  }
};

TEST_F(CalibrationPipelineTest, DatasetSchemaAndDeterministicFeatures) {
  FactTable fact = MakeFact();
  StatusOr<CalibrationDataset> dataset =
      RunCalibration(fact, RunOptions());
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->version, kCalibrationDatasetVersion);
  EXPECT_EQ(dataset->num_dimensions, 3);
  EXPECT_EQ(dataset->fact_rows, fact.num_rows());
  // 24 shapes x 3 catalog phases.
  ASSERT_EQ(dataset->probes.size(), 72u);
  size_t raw_probes = 0;
  bool any_index_plan = false;
  for (const CalibrationProbe& p : dataset->probes) {
    EXPECT_TRUE(p.phase == "raw" || p.phase == "view" || p.phase == "index")
        << p.phase;
    if (p.phase == "raw") {
      ++raw_probes;
      // With no structures, the only plan is the full fact scan: the
      // touched-rows feature is pinned exactly.
      EXPECT_EQ(p.touched_rows, fact.num_rows());
      EXPECT_FALSE(p.used_index);
    }
    if (p.used_index) any_index_plan = true;
  }
  EXPECT_EQ(raw_probes, 24u);
  // The index phase must exercise covered access somewhere, or the sweep
  // is not varying the axis it exists to vary.
  EXPECT_TRUE(any_index_plan);

  const std::string json = dataset->ToJson();
  EXPECT_NE(json.find("\"schema\": \"olapidx-calibration\""),
            std::string::npos);
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"probes\""), std::string::npos);
  EXPECT_NE(json.find("\"btree_node_touches\""), std::string::npos);

  // Same options -> bit-identical dataset (and therefore JSON).
  StatusOr<CalibrationDataset> again = RunCalibration(fact, RunOptions());
  ASSERT_TRUE(again.ok());
  std::string json2 = again->ToJson();
  // Only wall_ns may differ between runs; scrub it for the comparison.
  auto scrub = [](std::string s) {
    for (size_t at = s.find("\"wall_ns\""); at != std::string::npos;
         at = s.find("\"wall_ns\"", at + 1)) {
      size_t end = s.find(',', at);
      s.erase(at, end - at);
    }
    return s;
  };
  EXPECT_EQ(scrub(json), scrub(json2));
}

TEST_F(CalibrationPipelineTest, GoldenFitRecoversSimulatedTruth) {
  FactTable fact = MakeFact();
  StatusOr<CalibrationDataset> dataset =
      RunCalibration(fact, RunOptions());
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  StatusOr<CalibrationFitResult> fit =
      FitCalibratedModel(*dataset, CalibrationTarget::kSimulatedNs);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_EQ(fit->probes, 72u);
#if defined(OLAPIDX_METRICS_ENABLED)
  // The simulated target is an exact linear function of the measured
  // features, so the fit recovers kSimulatedTruth to solver precision —
  // the golden pin for the whole measure->fit pipeline.
  EXPECT_EQ(dataset->metrics_enabled, true);
  EXPECT_TRUE(fit->dropped_columns.empty());
  EXPECT_NEAR(fit->coefficients.per_row, kSimulatedTruth.per_row, 1e-4);
  EXPECT_NEAR(fit->coefficients.per_node, kSimulatedTruth.per_node, 1e-3);
  EXPECT_NEAR(fit->coefficients.fixed, kSimulatedTruth.fixed, 1e-2);
#else
  // Metrics compiled out: the node-touch column is structurally zero, the
  // fitter must drop it (graceful degradation) and still recover the
  // remaining coefficients exactly.
  EXPECT_EQ(dataset->metrics_enabled, false);
  ASSERT_EQ(fit->dropped_columns, std::vector<int>{1});
  EXPECT_EQ(fit->coefficients.per_node, 0.0);
  EXPECT_NEAR(fit->coefficients.per_row, kSimulatedTruth.per_row, 1e-4);
  EXPECT_NEAR(fit->coefficients.fixed, kSimulatedTruth.fixed, 1e-2);
#endif
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-6);
}

TEST_F(CalibrationPipelineTest, RejectsEmptyFactAndBadOptions) {
  CubeSchema schema(std::vector<Dimension>{{"a", 4}, {"b", 4}});
  FactTable empty(schema);
  EXPECT_EQ(RunCalibration(empty).status().code(),
            StatusCode::kInvalidArgument);
  FactTable fact = MakeFact();
  CalibrationRunOptions bad = RunOptions();
  bad.repeats = 0;
  EXPECT_EQ(RunCalibration(fact, bad).status().code(),
            StatusCode::kInvalidArgument);
  CalibrationDataset none;
  EXPECT_EQ(FitCalibratedModel(none, CalibrationTarget::kSimulatedNs)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// The paired-selection verdict: never worse on its own metric.
// ---------------------------------------------------------------------------

TEST_F(CalibrationPipelineTest, CalibratedSelectionNeverWorseOnOwnMetric) {
  FactTable fact = MakeFact();
  const CubeSchema& schema = fact.schema();
  ViewSizes sizes = ExactViewSizes(fact);
  CubeLattice lattice(schema);
  Workload workload = ZipfSliceQueries(lattice, 1.0, 7);
  AdvisorConfig config;
  config.space_budget = 2.0 * sizes.SizeOf(schema.AllAttributes());

  // Several deliberately different coefficient regimes, including one
  // dominated by fixed overhead (where the paper's pick order is most
  // wrong) — the invariant must hold in every one.
  const CalibrationCoefficients regimes[] = {
      {5.0, 120.0, 800.0},
      {1.0, 0.0, 0.0},
      {0.001, 50.0, 100000.0},
      {10.0, 0.0, 1.0},
  };
  for (const CalibrationCoefficients& coefficients : regimes) {
    auto model = std::make_shared<CalibratedCostModel>(coefficients);
    StatusOr<PairedSelectionResult> paired =
        RunPairedSelection(schema, sizes, workload, config, model);
    ASSERT_TRUE(paired.ok()) << paired.status().ToString();
    EXPECT_LE(paired->calibrated_under_calibrated.total,
              paired->paper_under_calibrated.total)
        << "per_row=" << coefficients.per_row;
    EXPECT_GE(paired->paper_regret, 0.0);
    // The paper design evaluated under the paper metric must in turn be
    // at least as good as the calibrated design under the paper metric:
    // both selections saw the same candidates.
    EXPECT_LE(paired->paper_under_paper.total,
              paired->calibrated_under_paper.total * (1.0 + 1e-9));
  }
  EXPECT_EQ(RunPairedSelection(schema, sizes, workload, config, nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CalibrationPipelineTest, ReplayDesignExecutesWholeWorkload) {
  FactTable fact = MakeFact();
  const CubeSchema& schema = fact.schema();
  ViewSizes sizes = ExactViewSizes(fact);
  CubeLattice lattice(schema);
  Workload workload = ZipfSliceQueries(lattice, 1.0, 7);
  AdvisorConfig config;
  config.space_budget = 2.0 * sizes.SizeOf(schema.AllAttributes());
  auto model =
      std::make_shared<CalibratedCostModel>(CalibrationCoefficients{});
  StatusOr<PairedSelectionResult> paired =
      RunPairedSelection(schema, sizes, workload, config, model);
  ASSERT_TRUE(paired.ok());
  StatusOr<ReplayResult> replay =
      ReplayDesign(fact, paired->calibrated_design, workload);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->queries, workload.size());
  EXPECT_GT(replay->rows_processed, 0u);
}

TEST_F(CalibrationPipelineTest, ReplayDesignBatchedExpandsAndCoalesces) {
  FactTable fact = MakeFact();
  const CubeSchema& schema = fact.schema();
  ViewSizes sizes = ExactViewSizes(fact);
  CubeLattice lattice(schema);
  // Integer counts, as a parsed query log would carry: each query's
  // frequency expands into that many identical replay requests.
  const Workload source = ZipfSliceQueries(lattice, 1.0, 7);
  Workload workload;
  uint64_t expected_requests = 0;
  size_t rank = 0;
  for (const WeightedQuery& wq : source.queries()) {
    const double count = static_cast<double>(1 + (rank++ % 5));
    workload.Add(wq.query, count);
    expected_requests += static_cast<uint64_t>(count);
  }
  AdvisorConfig config;
  config.space_budget = 2.0 * sizes.SizeOf(schema.AllAttributes());
  auto model =
      std::make_shared<CalibratedCostModel>(CalibrationCoefficients{});
  StatusOr<PairedSelectionResult> paired =
      RunPairedSelection(schema, sizes, workload, config, model);
  ASSERT_TRUE(paired.ok());
  StatusOr<BatchReplayResult> replay = ReplayDesignBatched(
      fact, paired->calibrated_design, workload, /*batch_size=*/64);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->requests, expected_requests);
  EXPECT_EQ(replay->batches, (expected_requests + 63) / 64);
  // Repeats of the same logged query coalesce inside each batch.
  EXPECT_LT(replay->unique_requests, replay->requests);
  EXPECT_GT(replay->logical_rows, 0u);
  EXPECT_LE(replay->rows_decoded, replay->logical_rows);

  // Invalid inputs are rejected up front.
  EXPECT_EQ(ReplayDesignBatched(fact, paired->calibrated_design, workload,
                                /*batch_size=*/0)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace olapidx
