// Edge cases and robustness: degenerate graphs, boundary budgets,
// single-dimension cubes, and malformed-input handling that the main
// suites do not reach.

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/inner_greedy.h"
#include "core/optimal.h"
#include "core/r_greedy.h"
#include "core/serialize.h"
#include "core/two_step.h"
#include "data/example_graphs.h"
#include "data/synthetic.h"
#include "workload/query_log.h"

namespace olapidx {
namespace {

TEST(EdgeCaseTest, GraphWithNoQueries) {
  QueryViewGraph g;
  g.AddView("v", 1.0);
  g.Finalize();
  EXPECT_TRUE(OneGreedy(g, 10.0).picks.empty());
  EXPECT_TRUE(InnerLevelGreedy(g, 10.0).picks.empty());
  EXPECT_TRUE(BranchAndBoundOptimal(g, 10.0).picks.empty());
  EXPECT_EQ(g.DefaultTotalCost(), 0.0);
}

TEST(EdgeCaseTest, GraphWithNoViews) {
  QueryViewGraph g;
  g.AddQuery("q", 100.0);
  g.Finalize();
  SelectionResult r = InnerLevelGreedy(g, 10.0);
  EXPECT_TRUE(r.picks.empty());
  EXPECT_EQ(r.final_cost, 100.0);
}

TEST(EdgeCaseTest, QueryWithNoEdges) {
  // A query nothing can answer stays at its default cost.
  QueryViewGraph g;
  uint32_t v = g.AddView("v", 1.0);
  uint32_t q0 = g.AddQuery("answerable", 100.0);
  g.AddQuery("orphan", 50.0);
  g.AddViewEdge(q0, v, 10.0);
  g.Finalize();
  SelectionResult r = OneGreedy(g, 10.0);
  EXPECT_NEAR(r.final_cost, 10.0 + 50.0, 1e-12);
}

TEST(EdgeCaseTest, BudgetExactlyOneStructure) {
  QueryViewGraph g;
  uint32_t v = g.AddView("v", 4.0);
  uint32_t q = g.AddQuery("q", 100.0);
  g.AddViewEdge(q, v, 10.0);
  g.Finalize();
  // Budget equals the view's space: greedy picks it (strictly-under test
  // happens before the pick).
  SelectionResult r = OneGreedy(g, 4.0);
  EXPECT_EQ(r.picks.size(), 1u);
  EXPECT_NEAR(r.space_used, 4.0, 1e-12);
  // A hair less: still picks (HRU semantics allow the final overshoot).
  SelectionResult r2 = OneGreedy(g, 3.999);
  EXPECT_EQ(r2.picks.size(), 1u);
}

TEST(EdgeCaseTest, SingleDimensionCube) {
  SyntheticCube cube = UniformSyntheticCube(1, 50, 0.5);
  CubeLattice lattice(cube.schema);
  EXPECT_EQ(lattice.num_views(), 2u);
  Workload w = AllSliceQueries(lattice);
  EXPECT_EQ(w.size(), 3u);  // 3^1
  CubeGraphOptions opts;
  opts.raw_scan_penalty = 2.0;
  CubeGraph cg = BuildCubeGraph(cube.schema, cube.sizes, w, opts);
  // Structures: apex + base view + 1 fat index.
  EXPECT_EQ(cg.graph.num_structures(), 3u);
  SelectionResult r = InnerLevelGreedy(cg.graph, 1e9);
  SelectionResult opt = BranchAndBoundOptimal(cg.graph, r.space_used);
  ASSERT_TRUE(opt.proven_optimal);
  EXPECT_NEAR(r.Benefit(), opt.Benefit(), 1e-9);
}

TEST(EdgeCaseTest, TiedCandidatesDeterministic) {
  // Two identical views: greedy must pick deterministically (first id).
  QueryViewGraph g;
  uint32_t v0 = g.AddView("v0", 1.0);
  uint32_t v1 = g.AddView("v1", 1.0);
  uint32_t q0 = g.AddQuery("q0", 100.0);
  uint32_t q1 = g.AddQuery("q1", 100.0);
  g.AddViewEdge(q0, v0, 10.0);
  g.AddViewEdge(q1, v1, 10.0);
  g.Finalize();
  SelectionResult a = OneGreedy(g, 1.0);
  SelectionResult b = OneGreedy(g, 1.0);
  ASSERT_EQ(a.picks.size(), 1u);
  EXPECT_EQ(a.picks[0].view, v0);
  EXPECT_TRUE(a.picks[0] == b.picks[0]);
}

TEST(EdgeCaseTest, TwoStepOnIndexlessGraph) {
  QueryViewGraph g;
  uint32_t v = g.AddView("v", 1.0);
  uint32_t q = g.AddQuery("q", 100.0);
  g.AddViewEdge(q, v, 10.0);
  g.Finalize();
  SelectionResult r =
      TwoStep(g, 2.0, TwoStepOptions{.index_fraction = 0.5});
  EXPECT_EQ(r.picks.size(), 1u);
  EXPECT_NEAR(r.Benefit(), 90.0, 1e-12);
}

TEST(EdgeCaseTest, FourGreedyOnFigure2MatchesThreeGreedy) {
  // On the reconstruction, 4-greedy finds the same optimum as 3-greedy
  // (the bigger bundles don't change the budget-7 outcome).
  QueryViewGraph g = Figure2Instance();
  SelectionResult four = RGreedy(g, kFigure2Budget, RGreedyOptions{.r = 4});
  EXPECT_NEAR(four.Benefit(), 264.0, 1e-9);
}

TEST(EdgeCaseTest, SerializeGarbageNeverCrashes) {
  CubeSchema schema({Dimension{"a", 2}, Dimension{"b", 2}});
  const char* inputs[] = {
      "",
      "\n\n\n",
      "olapidx-design v1",
      "olapidx-design v1\nview",
      "olapidx-design v1\nindex a :",
      "olapidx-design v1\nindex : a",
      "olapidx-sizes v1\nsize a\n",
      "olapidx-design v2\nview a\n",
      "view a\nolapidx-design v1\n",
      "olapidx-design v1\nview a,a\n",
  };
  for (const char* text : inputs) {
    // Must reject (or accept) without crashing; never abort.
    (void)ParseDesign(text, schema);
    (void)ParseViewSizes(text, schema);
    (void)ParseCheckpoint(text, schema);
  }
}

TEST(EdgeCaseTest, QueryLogGarbageNeverCrashes) {
  CubeSchema schema({Dimension{"a", 2}, Dimension{"b", 2}});
  const char* inputs[] = {
      ";;;", "a;b;c;d", "a,b ; a ; 1", "; ;", "a ; b ; 1e999",
      "a ; b ; nan",
  };
  for (const char* text : inputs) {
    Workload w;
    std::string error;
    ParseQueryLog(text, schema, &w, &error);  // must not crash
  }
}

TEST(EdgeCaseTest, WorkloadNormalizeZeroTotalDies) {
  Workload w;
  w.Add(SliceQuery(AttributeSet::Of({0}), AttributeSet()), 0.0);
  EXPECT_DEATH(w.Normalize(), "CHECK");
}

TEST(EdgeCaseTest, AdvisorWithSingleQueryWorkload) {
  SyntheticCube cube = UniformSyntheticCube(3, 20, 0.1);
  Workload w;
  w.Add(SliceQuery(AttributeSet::Of({0}), AttributeSet::Of({1})), 1.0);
  CubeGraphOptions opts;
  opts.raw_scan_penalty = 2.0;
  Advisor advisor(cube.schema, cube.sizes, w, opts);
  AdvisorConfig config;
  config.algorithm = Algorithm::kInnerLevel;
  config.space_budget = cube.sizes.TotalViewSpace();
  Recommendation rec = advisor.Recommend(config);
  ASSERT_EQ(rec.plans.size(), 1u);
  EXPECT_FALSE(rec.plans[0].use_raw);
  // The single query should be answered at (near) its cheapest possible
  // cost: view {0,1} with a selection-prefix index.
  EXPECT_LT(rec.plans[0].estimated_cost,
            cube.sizes.SizeOf(AttributeSet::Of({0, 1})));
}

}  // namespace
}  // namespace olapidx
