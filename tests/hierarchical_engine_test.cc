#include "hierarchy/hierarchical_engine.h"

#include <map>

#include <gtest/gtest.h>

namespace olapidx {
namespace {

HierarchicalSchema RetailSchema() {
  return HierarchicalSchema({
      HierarchicalDimension{"store",
                            {{"store", 30}, {"city", 7}, {"region", 3}}},
      HierarchicalDimension{"day", {{"day", 20}, {"month", 4}}},
  });
}

TEST(LevelMapTest, BalancedMappingIsConsistent) {
  HierarchicalSchema schema = RetailSchema();
  DimensionLevelMap map = DimensionLevelMap::Balanced(schema.dimension(0));
  EXPECT_EQ(map.num_levels(), 3);
  // Identity at the same level.
  EXPECT_EQ(map.MapUp(0, 0, 17u), 17u);
  // Transitivity: store → region equals store → city → region.
  for (uint32_t s = 0; s < 30; ++s) {
    uint32_t city = map.MapUp(0, 1, s);
    EXPECT_LT(city, 7u);
    EXPECT_EQ(map.MapUp(0, 2, s), map.MapUp(1, 2, city));
  }
  // ALL level collapses everything.
  EXPECT_EQ(map.MapUp(0, 3, 29u), 0u);
}

TEST(LevelMapTest, ValidatesTables) {
  HierarchicalSchema schema = RetailSchema();
  // Parent code out of range.
  std::vector<std::vector<uint32_t>> bad_up = {
      std::vector<uint32_t>(30, 99), std::vector<uint32_t>(7, 0)};
  EXPECT_DEATH(DimensionLevelMap(schema.dimension(0), std::move(bad_up)),
               "CHECK");
}

class HierarchicalEngineTest : public ::testing::Test {
 protected:
  HierarchicalEngineTest()
      : schema_(RetailSchema()),
        maps_(HierarchyMaps::Balanced(schema_)),
        fact_(GenerateHierarchicalFacts(schema_, 600, /*seed=*/21)) {}

  HierarchicalSchema schema_;
  HierarchyMaps maps_;
  FactTable fact_;
};

TEST_F(HierarchicalEngineTest, LeveledSchemaShapes) {
  CubeSchema city_month = LeveledSchema(schema_, LevelVector({1, 1}));
  ASSERT_EQ(city_month.num_dimensions(), 2);
  EXPECT_EQ(city_month.dimension(0).name, "store.city");
  EXPECT_EQ(city_month.dimension(0).cardinality, 7u);
  EXPECT_EQ(city_month.dimension(1).cardinality, 4u);
  // One ALL dimension drops out.
  CubeSchema region_only = LeveledSchema(schema_, LevelVector({2, 2}));
  ASSERT_EQ(region_only.num_dimensions(), 1);
  EXPECT_EQ(region_only.dimension(0).cardinality, 3u);
  // Apex.
  CubeSchema apex = LeveledSchema(schema_, LevelVector({3, 2}));
  ASSERT_EQ(apex.num_dimensions(), 1);
  EXPECT_EQ(apex.dimension(0).cardinality, 1u);
}

TEST_F(HierarchicalEngineTest, TotalsPreservedAtEveryLevel) {
  double total = 0.0;
  for (size_t r = 0; r < fact_.num_rows(); ++r) total += fact_.measure(r);
  HierarchicalLattice lattice(&schema_);
  for (HViewId v = 0; v < lattice.num_views(); ++v) {
    MaterializedView view =
        MaterializeHierarchicalView(fact_, maps_, lattice.LevelsOf(v));
    double view_total = 0.0;
    for (size_t r = 0; r < view.num_rows(); ++r) {
      view_total += view.sum(r);
    }
    EXPECT_NEAR(view_total, total, 1e-6) << "view " << v;
  }
}

TEST_F(HierarchicalEngineTest, CityViewMatchesManualRollup) {
  MaterializedView city =
      MaterializeHierarchicalView(fact_, maps_, LevelVector({1, 2}));
  // Manual: sum measures by mapped city code.
  std::map<uint32_t, double> expected;
  for (size_t r = 0; r < fact_.num_rows(); ++r) {
    expected[maps_.dimension(0).MapUp(0, 1, fact_.dim(r, 0))] +=
        fact_.measure(r);
  }
  ASSERT_EQ(city.num_rows(), expected.size());
  for (size_t r = 0; r < city.num_rows(); ++r) {
    EXPECT_NEAR(city.sum(r), expected[city.dim(r, 0)], 1e-9);
  }
}

TEST_F(HierarchicalEngineTest, CoarserViewsNeverLarger) {
  HierarchicalLattice lattice(&schema_);
  for (HViewId a = 0; a < lattice.num_views(); ++a) {
    for (HViewId b = 0; b < lattice.num_views(); ++b) {
      if (!lattice.LevelsOf(a).ComputableFrom(lattice.LevelsOf(b))) {
        continue;
      }
      MaterializedView va =
          MaterializeHierarchicalView(fact_, maps_, lattice.LevelsOf(a));
      MaterializedView vb =
          MaterializeHierarchicalView(fact_, maps_, lattice.LevelsOf(b));
      EXPECT_LE(va.num_rows(), vb.num_rows()) << a << " vs " << b;
    }
  }
}

TEST_F(HierarchicalEngineTest, MeasuredSizesTrackGraphEstimates) {
  // The selection graph's analytical sizes should be in the right
  // ballpark of physically materialized row counts (balanced hierarchies,
  // uniform data — the model's home turf).
  HierarchicalLattice lattice(&schema_);
  std::vector<double> estimated =
      lattice.AnalyticalSizes(static_cast<double>(fact_.num_rows()));
  for (HViewId v = 0; v < lattice.num_views(); ++v) {
    MaterializedView view =
        MaterializeHierarchicalView(fact_, maps_, lattice.LevelsOf(v));
    EXPECT_NEAR(static_cast<double>(view.num_rows()), estimated[v],
                0.15 * estimated[v] + 3.0)
        << lattice.ViewName(lattice.LevelsOf(v));
  }
}

}  // namespace
}  // namespace olapidx
