// Differential and property tests for the workload-pruned sparse cube
// graph (core/sparse_cube_graph.h).
//
// The load-bearing contract: with nothing pruned (full query set,
// query_mass = 1, no caps, every view within max_fat_dim) the sparse
// build is *bit-identical* to TryBuildCubeGraph — same views, keys,
// names, edges, and the exact same double divisions. Compressed cost
// columns must be invisible through the accessors, and the candidate
// index families of wide views must preserve every query's best
// reachable cost.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cube_graph.h"
#include "core/sparse_cube_graph.h"
#include "data/synthetic.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

// Mirrors cube_graph_equivalence_test's checker; duplicated locally so
// the two differential suites stay independently editable.
void ExpectIdenticalGraphs(const CubeGraph& sparse, const CubeGraph& ref,
                           const std::string& label) {
  SCOPED_TRACE(label);
  const QueryViewGraph& f = sparse.graph;
  const QueryViewGraph& r = ref.graph;
  ASSERT_EQ(f.num_views(), r.num_views());
  ASSERT_EQ(f.num_queries(), r.num_queries());
  ASSERT_EQ(f.num_structures(), r.num_structures());
  ASSERT_EQ(sparse.view_attrs, ref.view_attrs);
  ASSERT_EQ(sparse.index_keys, ref.index_keys);
  ASSERT_EQ(sparse.queries.size(), ref.queries.size());
  for (size_t i = 0; i < sparse.queries.size(); ++i) {
    ASSERT_EQ(sparse.queries[i], ref.queries[i]) << "query " << i;
  }
  for (uint32_t q = 0; q < f.num_queries(); ++q) {
    ASSERT_EQ(f.query_name(q), r.query_name(q)) << "query " << q;
    ASSERT_EQ(f.query_default_cost(q), r.query_default_cost(q));
    ASSERT_EQ(f.query_frequency(q), r.query_frequency(q));
    ASSERT_EQ(f.QueryViews(q), r.QueryViews(q)) << "query " << q;
  }
  for (uint32_t v = 0; v < f.num_views(); ++v) {
    SCOPED_TRACE("view " + std::to_string(v));
    ASSERT_EQ(f.view_name(v), r.view_name(v));
    ASSERT_EQ(f.view_space(v), r.view_space(v));
    ASSERT_EQ(f.num_indexes(v), r.num_indexes(v));
    for (int32_t k = 0; k < f.num_indexes(v); ++k) {
      ASSERT_EQ(f.index_name(v, k), r.index_name(v, k)) << "index " << k;
      ASSERT_EQ(f.index_space(v, k), r.index_space(v, k));
    }
    ASSERT_EQ(f.ViewQueries(v), r.ViewQueries(v));
    const size_t nq = f.ViewQueries(v).size();
    for (size_t pos = 0; pos < nq; ++pos) {
      ASSERT_EQ(f.ViewCostAt(v, pos), r.ViewCostAt(v, pos)) << "pos " << pos;
      for (int32_t k = 0; k < f.num_indexes(v); ++k) {
        ASSERT_EQ(f.IndexCostAt(v, k, pos), r.IndexCostAt(v, k, pos))
            << "index " << k << " pos " << pos;
      }
    }
  }
  ASSERT_EQ(f.DefaultTotalCost(), r.DefaultTotalCost());
}

SparseCubeGraphOptions UnprunedOptions(int n, double raw_penalty) {
  SparseCubeGraphOptions options;
  options.max_fat_dim = std::max(n, 1);
  options.raw_scan_penalty = raw_penalty;
  return options;
}

// Best cost query q can reach from ANY (view, index-or-scan) structure.
double BestReachableCost(const QueryViewGraph& g, uint32_t q) {
  double best = g.query_default_cost(q);
  for (uint32_t v : g.QueryViews(q)) {
    const std::vector<uint32_t>& queries = g.ViewQueries(v);
    const size_t pos = static_cast<size_t>(
        std::find(queries.begin(), queries.end(), q) - queries.begin());
    best = std::min(best, g.ViewCostAt(v, pos));
    for (int32_t k = 0; k < g.num_indexes(v); ++k) {
      best = std::min(best, g.IndexCostAt(v, k, pos));
    }
  }
  return best;
}

TEST(SparseGraphEquivalenceTest, UnprunedFullWorkloadMatchesDense) {
  for (int n = 1; n <= 6; ++n) {
    SyntheticCube cube = UniformSyntheticCube(n, 100, 0.05);
    CubeLattice lattice(cube.schema);
    Workload workload = AllSliceQueries(lattice);
    CubeGraphOptions dense_options;
    dense_options.raw_scan_penalty = 2.0;
    StatusOr<CubeGraph> dense =
        TryBuildCubeGraph(cube.schema, cube.sizes, workload, dense_options);
    ASSERT_TRUE(dense.ok()) << dense.status().ToString();

    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      SparseCubeGraphOptions options = UnprunedOptions(n, 2.0);
      options.num_threads = threads;
      StatusOr<SparseCubeGraph> sparse =
          TryBuildSparseCubeGraph(cube.schema, cube.sizes, workload, options);
      ASSERT_TRUE(sparse.ok()) << sparse.status().ToString();
      EXPECT_EQ(sparse->stats.retained_queries, workload.size());
      EXPECT_EQ(sparse->stats.retained_views, size_t{1} << n);
      EXPECT_EQ(sparse->stats.candidate_views, 0u);
      ExpectIdenticalGraphs(sparse->cube, *dense,
                            "n=" + std::to_string(n) +
                                " threads=" + std::to_string(threads));
    }
  }
}

TEST(SparseGraphEquivalenceTest, CompressedColumnsInvisibleThroughAccessors) {
  SyntheticCube cube = UniformSyntheticCube(5, 80, 0.05);
  CubeLattice lattice(cube.schema);
  Workload workload = ZipfSliceQueries(lattice, 1.1, 7);
  SparseCubeGraphOptions compressed = UnprunedOptions(5, 1.5);
  SparseCubeGraphOptions dense_cols = compressed;
  dense_cols.compress_cost_columns = false;
  StatusOr<SparseCubeGraph> a =
      TryBuildSparseCubeGraph(cube.schema, cube.sizes, workload, compressed);
  StatusOr<SparseCubeGraph> b =
      TryBuildSparseCubeGraph(cube.schema, cube.sizes, workload, dense_cols);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->cube.graph.compressed_cost_columns());
  EXPECT_FALSE(b->cube.graph.compressed_cost_columns());
  // Compression trades the k-major table for prototype columns.
  EXPECT_LT(a->cube.graph.CostTableBytes(), b->cube.graph.CostTableBytes());
  ExpectIdenticalGraphs(a->cube, b->cube, "compressed vs dense columns");
}

TEST(SparseGraphEquivalenceTest, CandidateFamiliesPreserveBestCosts) {
  // Force candidate families everywhere (max_fat_dim = 0 keeps only the
  // apex fat) and compare each query's best reachable cost against the
  // all-fat build: the workload-derived keys must not lose any optimum.
  SyntheticCube cube = UniformSyntheticCube(5, 60, 0.1);
  CubeLattice lattice(cube.schema);
  Workload workload = ZipfSliceQueries(lattice, 1.05, 3);
  SparseCubeGraphOptions fat = UnprunedOptions(5, 2.0);
  SparseCubeGraphOptions lean = fat;
  lean.max_fat_dim = 0;
  StatusOr<SparseCubeGraph> full =
      TryBuildSparseCubeGraph(cube.schema, cube.sizes, workload, fat);
  StatusOr<SparseCubeGraph> pruned =
      TryBuildSparseCubeGraph(cube.schema, cube.sizes, workload, lean);
  ASSERT_TRUE(full.ok() && pruned.ok());
  EXPECT_GT(pruned->stats.candidate_views, 0u);
  EXPECT_LT(pruned->cube.graph.num_structures(),
            full->cube.graph.num_structures());
  ASSERT_EQ(full->cube.graph.num_queries(), pruned->cube.graph.num_queries());
  for (uint32_t q = 0; q < full->cube.graph.num_queries(); ++q) {
    EXPECT_EQ(BestReachableCost(full->cube.graph, q),
              BestReachableCost(pruned->cube.graph, q))
        << "query " << q;
  }
}

TEST(SparseGraphEquivalenceTest, QueryPruningRespectsMassAndCap) {
  SyntheticCube cube = UniformSyntheticCube(4, 100, 0.05);
  CubeLattice lattice(cube.schema);
  Workload workload = ZipfSliceQueries(lattice, 1.2, 11);

  SparseCubeGraphOptions by_mass = UnprunedOptions(4, 2.0);
  by_mass.query_mass = 0.9;
  StatusOr<SparseCubeGraph> massed =
      TryBuildSparseCubeGraph(cube.schema, cube.sizes, workload, by_mass);
  ASSERT_TRUE(massed.ok());
  EXPECT_LT(massed->stats.retained_queries, workload.size());
  EXPECT_GE(massed->stats.retained_mass, 0.9 * massed->stats.total_mass);
  EXPECT_EQ(massed->cube.graph.num_queries(),
            massed->stats.retained_queries);

  SparseCubeGraphOptions by_count = UnprunedOptions(4, 2.0);
  by_count.top_queries = 10;
  StatusOr<SparseCubeGraph> capped =
      TryBuildSparseCubeGraph(cube.schema, cube.sizes, workload, by_count);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->stats.retained_queries, 10u);
  // The 10 hottest queries survive: no retained frequency may be beaten
  // by a dropped one.
  double min_kept = std::numeric_limits<double>::infinity();
  for (uint32_t q = 0; q < capped->cube.graph.num_queries(); ++q) {
    min_kept = std::min(min_kept, capped->cube.graph.query_frequency(q));
  }
  std::vector<double> all;
  for (const WeightedQuery& wq : workload.queries()) {
    all.push_back(wq.frequency);
  }
  std::sort(all.begin(), all.end(), std::greater<>());
  EXPECT_GE(min_kept, all[9]);
}

TEST(SparseGraphEquivalenceTest, ViewCapKeepsMinimalViews) {
  // Few queries on a big cube: their minimal views are a handful of
  // masks, so the superset cones overflow a small cap.
  SyntheticCube cube = UniformSyntheticCube(8, 50, 1e-4);
  CubeLattice lattice(cube.schema);
  Workload workload = SampledZipfSliceQueries(lattice, 1.1, 4, 5);
  SparseCubeGraphOptions options;
  options.max_fat_dim = 3;
  options.raw_scan_penalty = 2.0;
  options.max_views = 8;  // far below the superset cones
  StatusOr<SparseCubeGraph> sparse =
      TryBuildSparseCubeGraph(cube.schema, cube.sizes, workload, options);
  ASSERT_TRUE(sparse.ok());
  EXPECT_TRUE(sparse->stats.view_cap_hit);
  // Cap or not, every query keeps its minimal view (and thus at least one
  // answering view): benefit is degraded, never correctness.
  const QueryViewGraph& g = sparse->cube.graph;
  for (uint32_t q = 0; q < g.num_queries(); ++q) {
    EXPECT_FALSE(g.QueryViews(q).empty()) << "query " << q;
  }
}

TEST(SparseGraphEquivalenceTest, TwelveDimensionSmoke) {
  // The point of the sparse path: a build that is impossible densely.
  SyntheticCube cube = UniformSyntheticCube(12, 30, 1e-6);
  CubeLattice lattice(cube.schema);
  Workload workload = SampledZipfSliceQueries(lattice, 1.1, 200, 42);
  ASSERT_EQ(workload.size(), 200u);
  StatusOr<SparseCubeGraph> sparse =
      TryBuildSparseCubeGraph(cube.schema, cube.sizes, workload, {});
  ASSERT_TRUE(sparse.ok()) << sparse.status().ToString();
  const QueryViewGraph& g = sparse->cube.graph;
  EXPECT_TRUE(g.finalized());
  EXPECT_EQ(g.num_queries(), 200u);
  EXPECT_GT(g.num_views(), 200u);
  EXPECT_GT(sparse->stats.build.peak_bytes, 0u);
  EXPECT_GT(sparse->stats.candidate_views, 0u);
  // Sampled workloads are deterministic in the seed.
  Workload again = SampledZipfSliceQueries(lattice, 1.1, 200, 42);
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(workload[i].query, again[i].query);
    EXPECT_EQ(workload[i].frequency, again[i].frequency);
  }
}

}  // namespace
}  // namespace olapidx
