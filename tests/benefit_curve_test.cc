#include "core/benefit_curve.h"

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/r_greedy.h"
#include "data/example_graphs.h"
#include "data/tpcd.h"

namespace olapidx {
namespace {

TEST(BenefitCurveTest, TrajectoryMatchesResult) {
  QueryViewGraph g = Figure2Instance();
  SelectionResult r = RGreedy(g, kFigure2Budget, RGreedyOptions{.r = 2});
  std::vector<BenefitCurvePoint> curve = ComputeBenefitCurve(g, r);
  ASSERT_EQ(curve.size(), r.picks.size() + 1);
  EXPECT_EQ(curve.front().space, 0.0);
  EXPECT_NEAR(curve.front().tau, r.initial_cost, 1e-9);
  EXPECT_NEAR(curve.back().tau, r.final_cost, 1e-9);
  EXPECT_NEAR(curve.back().space, r.space_used, 1e-9);
  // τ never increases, space never decreases along the trajectory.
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].tau, curve[i - 1].tau + 1e-9);
    EXPECT_GE(curve[i].space, curve[i - 1].space);
  }
}

TEST(BenefitCurveTest, KneeDetectionOnTpcd) {
  CubeSchema schema = TpcdSchema();
  CubeLattice lattice(schema);
  CubeGraphOptions opts;
  opts.raw_scan_penalty = 2.0;
  Advisor advisor(schema, TpcdPaperSizes(), AllSliceQueries(lattice), opts);
  AdvisorConfig config;
  config.algorithm = Algorithm::kOneGreedy;
  config.space_budget = 81e6;  // effectively unbounded
  Recommendation rec = advisor.Recommend(config);
  std::vector<BenefitCurvePoint> curve =
      ComputeBenefitCurve(advisor.cube_graph().graph, rec.raw);
  // Example 2.1's law of diminishing returns: 95% of the total benefit is
  // reached within ~30M rows even though the full selection is larger.
  double knee = SpaceForBenefitFraction(curve, 0.95);
  EXPECT_LT(knee, 30e6);
  EXPECT_GT(knee, 5e6);
  // The full curve ends at 100%.
  EXPECT_NEAR(SpaceForBenefitFraction(curve, 1.0), curve.back().space,
              1e-6);
}

TEST(BenefitCurveTest, HalfBenefitBeforeFullBenefit) {
  QueryViewGraph g = Figure2Instance();
  SelectionResult r = RGreedy(g, 20.0, RGreedyOptions{.r = 2});
  std::vector<BenefitCurvePoint> curve = ComputeBenefitCurve(g, r);
  EXPECT_LE(SpaceForBenefitFraction(curve, 0.5),
            SpaceForBenefitFraction(curve, 0.99));
}

TEST(BenefitCurveDeathTest, BadFraction) {
  QueryViewGraph g = Figure2Instance();
  SelectionResult r = RGreedy(g, 3.0, RGreedyOptions{.r = 1});
  std::vector<BenefitCurvePoint> curve = ComputeBenefitCurve(g, r);
  EXPECT_DEATH(SpaceForBenefitFraction(curve, 0.0), "CHECK");
  EXPECT_DEATH(SpaceForBenefitFraction(curve, 1.5), "CHECK");
}

}  // namespace
}  // namespace olapidx
