// A consolidated check of every *numeric claim in the paper's prose* that
// the other suites don't already pin down — the repository's conformance
// statement against the text.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/guarantees.h"
#include "core/optimal.h"
#include "core/r_greedy.h"
#include "data/example_graphs.h"
#include "data/tpcd.h"
#include "lattice/cube_lattice.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

TEST(PaperClaimsTest, Section2IndexCostArithmetic) {
  // "The average number of rows associated with each value of s in subcube
  // ps is 80. Thus the cost of answering Q1 using I_sp is the cost of
  // processing 80 rows."
  ViewSizes sizes = TpcdPaperSizes();
  double ps = sizes.SizeOf(AttributeSet::Of({0, 1}));
  double s = sizes.SizeOf(AttributeSet::Of({1}));
  EXPECT_NEAR(ps / s, 80.0, 1e-9);
}

TEST(PaperClaimsTest, Section35Totals) {
  // "An n-dimensional data cube has associated with it: 2^n views; 3^n
  // slice queries; and about 3n! possible indexes, about 2n! of these
  // being fat indexes."
  for (int n = 2; n <= 6; ++n) {
    CubeSchema schema(std::vector<Dimension>(
        static_cast<size_t>(n), Dimension{"d", 4}));
    // Views.
    CubeLattice lattice(schema);
    EXPECT_EQ(lattice.num_views(), 1u << n);
    // Queries: Σ C(n,r)·2^r = 3^n.
    uint64_t three_n = 1;
    for (int i = 0; i < n; ++i) three_n *= 3;
    EXPECT_EQ(AllSliceQueries(lattice).size(), three_n);
  }
  // Index totals: all-ordered-subset indexes of one m-attribute view
  // approach e·m! and fat indexes are m!, so all/fat → e (the paper's
  // "about 3n!" vs "about 2n!" rounding of e ≈ 2.72 and e − 1 ≈ 1.72
  // applied at cube scale).
  for (int m = 4; m <= 8; ++m) {
    double fact = 1.0;
    for (int i = 2; i <= m; ++i) fact *= i;
    double all = static_cast<double>(CubeLattice::NumAllIndexes(m));
    EXPECT_NEAR(all / fact, std::exp(1.0), 0.2) << "m=" << m;
  }
}

TEST(PaperClaimsTest, Section42PrefixPruningFactor) {
  // "This pruning reduces the number of indexes of interest" — the
  // discarded non-fat indexes number ≈ (e−1)·m! per view.
  for (int m = 4; m <= 8; ++m) {
    double fact = 1.0;
    for (int i = 2; i <= m; ++i) fact *= i;
    double non_fat = static_cast<double>(CubeLattice::NumAllIndexes(m)) -
                     static_cast<double>(CubeLattice::NumFatIndexes(m));
    EXPECT_NEAR(non_fat / fact, std::exp(1.0) - 1.0, 0.2) << "m=" << m;
  }
}

TEST(PaperClaimsTest, Section53CandidateCountBound) {
  // "at each stage, the r-greedy algorithm must consider ... at most
  // v·i + v·C(i, r−1) possible sets" — our evaluation counter must stay
  // within that bound per stage (views v, indexes-per-view i).
  QueryViewGraph g;
  constexpr int kViews = 4, kIdx = 5;
  uint32_t q = g.AddQuery("q", 1000.0);
  for (int v = 0; v < kViews; ++v) {
    uint32_t view = g.AddView("v" + std::to_string(v), 1.0);
    g.AddViewEdge(q, view, 900.0 - v);
    for (int k = 0; k < kIdx; ++k) {
      int32_t idx = g.AddIndex(view, "i", 1.0);
      g.AddIndexEdge(q, view, idx, 100.0 - k);
    }
  }
  g.Finalize();
  SelectionResult r = RGreedy(g, 3.0, RGreedyOptions{.r = 3});
  // 3 stages max; per stage <= v(1 + i + C(i,2)) + total indexes.
  uint64_t per_stage = kViews * (1 + kIdx + kIdx * (kIdx - 1) / 2) +
                       kViews * kIdx;
  EXPECT_LE(r.candidates_evaluated, 3 * per_stage + per_stage);
}

TEST(PaperClaimsTest, Section6OneGreedyGuaranteeIsZeroAndTight) {
  // "the performance guarantee of the 1-greedy is 0; it is possible to
  // construct examples where the ratio ... is arbitrarily small."
  EXPECT_EQ(RGreedyGuarantee(1), 0.0);
  double prev_ratio = 1.0;
  for (double trap : {10.0, 1'000.0, 100'000.0}) {
    QueryViewGraph g = OneGreedyTrapInstance(trap, 1.0);
    double ratio = RGreedy(g, 2.0, {.r = 1}).Benefit() /
                   BranchAndBoundOptimal(g, 2.0).Benefit();
    EXPECT_LT(ratio, prev_ratio);
    prev_ratio = ratio;
  }
  EXPECT_LT(prev_ratio, 1e-4);
}

// Certification: the upper bound really is an upper bound on the exact
// optimum wherever the exact solver can run.
class BoundCertificationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BoundCertificationTest, UpperBoundDominatesOptimal) {
  Pcg32 rng(GetParam());
  QueryViewGraph g;
  uint32_t nq = 3 + rng.NextBounded(4);
  std::vector<uint32_t> queries;
  for (uint32_t i = 0; i < nq; ++i) {
    queries.push_back(g.AddQuery("q" + std::to_string(i), 100.0));
  }
  for (int v = 0; v < 3; ++v) {
    uint32_t view = g.AddView("v" + std::to_string(v), 1.0);
    std::vector<int32_t> idxs;
    for (uint32_t k = 0; k < rng.NextBounded(3); ++k) {
      idxs.push_back(g.AddIndex(view, "i", 1.0));
    }
    for (uint32_t qid : queries) {
      if (rng.NextBounded(2) == 0) continue;
      double scan = 10.0 + rng.NextBounded(90);
      g.AddViewEdge(qid, view, scan);
      for (int32_t k : idxs) {
        g.AddIndexEdge(qid, view, k,
                       1.0 + rng.NextBounded(
                                 static_cast<uint32_t>(scan)));
      }
    }
  }
  g.Finalize();
  for (double budget : {1.0, 2.0, 4.0, 8.0}) {
    SelectionResult opt = BranchAndBoundOptimal(g, budget);
    ASSERT_TRUE(opt.proven_optimal);
    EXPECT_GE(UpperBoundBenefit(g, budget), opt.Benefit() - 1e-9)
        << "seed " << GetParam() << " S=" << budget;
    EXPECT_GE(PerfectBenefit(g), opt.Benefit() - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundCertificationTest,
                         ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace olapidx
