#include "data/tpcd.h"

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/cube_graph.h"

namespace olapidx {
namespace {

TEST(TpcdTest, PaperSizes) {
  ViewSizes sizes = TpcdPaperSizes();
  EXPECT_EQ(sizes.SizeOf(AttributeSet::Of({0, 1, 2})), 6e6);
  EXPECT_EQ(sizes.SizeOf(AttributeSet::Of({0, 1})), 0.8e6);
  EXPECT_EQ(sizes.SizeOf(AttributeSet::Of({0, 2})), 6e6);
  EXPECT_EQ(sizes.SizeOf(AttributeSet::Of({1, 2})), 6e6);
  EXPECT_EQ(sizes.SizeOf(AttributeSet::Of({0})), 0.2e6);
  EXPECT_EQ(sizes.SizeOf(AttributeSet::Of({1})), 0.01e6);
  EXPECT_EQ(sizes.SizeOf(AttributeSet::Of({2})), 0.1e6);
  EXPECT_EQ(sizes.SizeOf(AttributeSet()), 1.0);
}

TEST(TpcdTest, MaterializeEverythingIsAbout80MRows) {
  // Example 2.1: "To materialize all possible subcubes and indexes, we
  // would require space for around 80M rows."
  ViewSizes sizes = TpcdPaperSizes();
  double everything =
      sizes.TotalViewSpace() + sizes.TotalFatIndexSpace();
  EXPECT_NEAR(everything, 80e6, 2e6);
}

class TpcdSelectionTest : public ::testing::Test {
 protected:
  static CubeGraphOptions PaperOptions() {
    CubeGraphOptions opts;
    // Raw data is the normalized TPC-D schema: answering from it costs
    // join work, so scanning a materialized psc is strictly cheaper.
    opts.raw_scan_penalty = 2.0;
    return opts;
  }

  TpcdSelectionTest()
      : schema_(TpcdSchema()),
        sizes_(TpcdPaperSizes()),
        lattice_(schema_),
        advisor_(schema_, sizes_, AllSliceQueries(lattice_),
                 PaperOptions()) {}

  Recommendation Run(Algorithm algo) {
    AdvisorConfig config;
    config.algorithm = algo;
    config.space_budget = kTpcdExampleBudget;
    config.r_greedy.r = 1;
    // Example 2.1's two-step divides the space equally and each step fits
    // within its allotment.
    config.two_step.index_fraction = 0.5;
    config.two_step.strict_fit = true;
    return advisor_.Recommend(config);
  }

  CubeSchema schema_;
  ViewSizes sizes_;
  CubeLattice lattice_;
  Advisor advisor_;
};

TEST_F(TpcdSelectionTest, ReproducesExample21Numbers) {
  // Example 2.1's punchline: integrating the steps improves the average
  // query cost by almost 40 percent. The paper reports 1.18M rows for the
  // two-step process and 0.74M for 1-greedy; we measure 1.18M and 0.71M.
  Recommendation two_step = Run(Algorithm::kTwoStep);
  Recommendation one_greedy = Run(Algorithm::kOneGreedy);
  EXPECT_NEAR(two_step.average_query_cost, 1.18e6, 0.05e6);
  EXPECT_NEAR(one_greedy.average_query_cost, 0.74e6, 0.06e6);
  double improvement =
      1.0 - one_greedy.average_query_cost / two_step.average_query_cost;
  EXPECT_GT(improvement, 0.35);
}

TEST_F(TpcdSelectionTest, OneGreedyMaterializesBaseView) {
  // The paper's 1-greedy trace includes psc; with raw data costing more
  // than a psc scan, greedy must materialize the base cube.
  Recommendation rec = Run(Algorithm::kOneGreedy);
  bool has_psc = false;
  for (const RecommendedStructure& s : rec.structures) {
    if (s.is_view() && s.view == AttributeSet::Of({0, 1, 2})) {
      has_psc = true;
    }
  }
  EXPECT_TRUE(has_psc);
}

TEST_F(TpcdSelectionTest, FinalCostsPenaltyInvariant) {
  // Once every query's chosen plan beats raw data, the final average cost
  // does not depend on the raw-scan penalty.
  double costs[2];
  int i = 0;
  for (double penalty : {1.5, 3.0}) {
    CubeGraphOptions opts;
    opts.raw_scan_penalty = penalty;
    Advisor advisor(schema_, sizes_, AllSliceQueries(lattice_), opts);
    AdvisorConfig config;
    config.algorithm = Algorithm::kOneGreedy;
    config.space_budget = kTpcdExampleBudget;
    Recommendation rec = advisor.Recommend(config);
    for (const QueryPlan& plan : rec.plans) {
      EXPECT_FALSE(plan.use_raw);
    }
    costs[i++] = rec.average_query_cost;
  }
  EXPECT_NEAR(costs[0], costs[1], 1e-6 * costs[0]);
}

TEST_F(TpcdSelectionTest, OneGreedySpendsMostSpaceOnIndexes) {
  // The paper observes the best split here gives about three quarters of
  // the space to indexes.
  Recommendation rec = Run(Algorithm::kOneGreedy);
  double index_space = 0.0;
  for (const RecommendedStructure& s : rec.structures) {
    if (!s.is_view()) index_space += s.space;
  }
  EXPECT_GT(index_space / rec.space_used, 0.5);
}

TEST_F(TpcdSelectionTest, InnerLevelComparableToOneGreedy) {
  Recommendation inner = Run(Algorithm::kInnerLevel);
  Recommendation one = Run(Algorithm::kOneGreedy);
  // Inner-level must be at least as good as the best two-step and in the
  // same ballpark as 1-greedy on this instance.
  EXPECT_LT(inner.average_query_cost, 1.3 * one.average_query_cost);
}

TEST_F(TpcdSelectionTest, PlansCoverAllQueries) {
  Recommendation rec = Run(Algorithm::kOneGreedy);
  EXPECT_EQ(rec.plans.size(), 27u);
  for (const QueryPlan& plan : rec.plans) {
    EXPECT_GT(plan.estimated_cost, 0.0);
    EXPECT_LE(plan.estimated_cost, 6e6);
    if (!plan.use_raw) {
      EXPECT_TRUE(plan.query.AnswerableFrom(plan.view));
    }
  }
}

TEST_F(TpcdSelectionTest, DiminishingReturns) {
  // Example 2.1: the structures beyond ~25M rows provide virtually no
  // benefit — tripling the budget barely moves the average cost.
  Recommendation at_25 = Run(Algorithm::kOneGreedy);
  AdvisorConfig config;
  config.algorithm = Algorithm::kOneGreedy;
  config.space_budget = 81e6;
  Recommendation everything = advisor_.Recommend(config);
  EXPECT_LT(at_25.average_query_cost,
            1.10 * everything.average_query_cost);
}

TEST_F(TpcdSelectionTest, HruViewsOnlyWorseThanWithIndexes) {
  Recommendation hru = Run(Algorithm::kHruViewsOnly);
  Recommendation one = Run(Algorithm::kOneGreedy);
  EXPECT_GT(hru.average_query_cost, one.average_query_cost);
}

}  // namespace
}  // namespace olapidx
