#include "core/inner_greedy.h"

#include <gtest/gtest.h>

#include "core/r_greedy.h"
#include "data/example_graphs.h"

namespace olapidx {
namespace {

TEST(InnerGreedyTest, Figure2Trace) {
  QueryViewGraph g = Figure2Instance();
  SelectionResult r = InnerLevelGreedy(g, kFigure2Budget);
  // Stage 1: {V1, I11} = 100 (ratio 50). Stage 2: the full V2 bundle —
  // view + six 41-indexes, 246 over 7 units (ratio 35.1) — beats the junk
  // view's 22. Total 346 using 9 units.
  EXPECT_NEAR(r.Benefit(), 346.0, 1e-9);
  EXPECT_NEAR(r.space_used, 9.0, 1e-9);
}

TEST(InnerGreedyTest, EscapesOneGreedyTrap) {
  QueryViewGraph g = OneGreedyTrapInstance(1000.0, 1.0);
  SelectionResult r = InnerLevelGreedy(g, 2.0);
  EXPECT_NEAR(r.Benefit(), 1000.0, 1e-9);
}

TEST(InnerGreedyTest, AtMostTwiceTheBudget) {
  // Theorem 5.2: the solution uses at most 2S space (no structure larger
  // than S).
  QueryViewGraph g = Figure2Instance();
  for (double budget : {1.0, 2.0, 4.0, 7.0, 10.0, 20.0}) {
    SelectionResult r = InnerLevelGreedy(g, budget);
    EXPECT_LE(r.space_used, 2.0 * budget + 1e-9) << "S=" << budget;
  }
}

TEST(InnerGreedyTest, BeatsOrMatchesTwoGreedyOnFigure2) {
  // The paper positions inner-level between 2-greedy and 3-greedy in
  // guarantee; on this instance it beats both.
  QueryViewGraph g = Figure2Instance();
  SelectionResult inner = InnerLevelGreedy(g, kFigure2Budget);
  SelectionResult two = RGreedy(g, kFigure2Budget, RGreedyOptions{.r = 2});
  EXPECT_GE(inner.Benefit(), two.Benefit() - 1e-9);
}

TEST(InnerGreedyTest, BundlePrefixMaximizesRatio) {
  // A view whose later indexes dilute the bundle: growth must stop the
  // candidate at the ratio-maximal prefix.
  QueryViewGraph g;
  uint32_t v = g.AddView("v", 1.0);
  int32_t good = g.AddIndex(v, "good", 1.0);
  int32_t weak = g.AddIndex(v, "weak", 1.0);
  uint32_t q0 = g.AddQuery("q0", 100.0);
  uint32_t q1 = g.AddQuery("q1", 100.0);
  uint32_t q2 = g.AddQuery("q2", 100.0);
  g.AddViewEdge(q0, v, 10.0);  // view alone: benefit 90
  g.AddViewEdge(q1, v, 100.0);
  g.AddIndexEdge(q1, v, good, 20.0);  // good index: +80
  g.AddViewEdge(q2, v, 100.0);
  g.AddIndexEdge(q2, v, weak, 99.0);  // weak index: +1
  g.Finalize();

  SelectionResult r = InnerLevelGreedy(g, 10.0);
  // First stage bundle should be {v, good} (ratio 85) not {v, good, weak}
  // (ratio 57); weak is picked later as a single index.
  ASSERT_GE(r.picks.size(), 2u);
  EXPECT_TRUE(r.picks[0].is_view());
  EXPECT_EQ(g.StructureName(r.picks[1]), "good(v)");
  // With enough budget everything is eventually selected.
  EXPECT_NEAR(r.Benefit(), 171.0, 1e-9);
}

TEST(InnerGreedyTest, SecondPhasePicksSingleIndexOnSelectedView) {
  // After a view is in M, a later stage may add one of its indexes alone.
  QueryViewGraph g;
  uint32_t v = g.AddView("v", 1.0);
  int32_t idx = g.AddIndex(v, "idx", 8.0);  // expensive index
  uint32_t q0 = g.AddQuery("q0", 100.0);
  uint32_t q1 = g.AddQuery("q1", 1000.0);
  g.AddViewEdge(q0, v, 1.0);
  g.AddViewEdge(q1, v, 1000.0);
  g.AddIndexEdge(q1, v, idx, 10.0);
  g.Finalize();

  // Budget 1: stage 1 picks {v} alone (ratio 99 beats the bundle's
  // (99 + 990) / 9 = 121? no — 121 > 99, so the bundle wins; make the
  // index weaker for this check).
  SelectionResult r = InnerLevelGreedy(g, 9.0);
  EXPECT_NEAR(r.Benefit(), 99.0 + 990.0, 1e-9);
}

TEST(InnerGreedyTest, EmptyBudget) {
  QueryViewGraph g = Figure2Instance();
  SelectionResult r = InnerLevelGreedy(g, 0.0);
  EXPECT_TRUE(r.picks.empty());
}

TEST(InnerGreedyTest, WorkCounterAdvances) {
  QueryViewGraph g = Figure2Instance();
  SelectionResult r = InnerLevelGreedy(g, kFigure2Budget);
  EXPECT_GT(r.candidates_evaluated, 0u);
}

}  // namespace
}  // namespace olapidx
