#include "hierarchy/hierarchical_graph.h"

#include <gtest/gtest.h>

#include "core/guarantees.h"
#include "core/inner_greedy.h"
#include "core/optimal.h"
#include "core/r_greedy.h"

namespace olapidx {
namespace {

// Retail-style schema: store→city→region, day→month, promo (flat).
HierarchicalSchema RetailSchema() {
  return HierarchicalSchema({
      HierarchicalDimension{
          "store",
          {{"store", 400}, {"city", 60}, {"region", 8}}},
      HierarchicalDimension{"day", {{"day", 365}, {"month", 12}}},
      HierarchicalDimension{"promo", {{"promo", 30}}},
  });
}

TEST(HierarchicalSchemaTest, Basics) {
  HierarchicalSchema schema = RetailSchema();
  EXPECT_EQ(schema.num_dimensions(), 3);
  EXPECT_EQ(schema.num_levels(0), 3);
  EXPECT_EQ(schema.all_level(0), 3);
  EXPECT_EQ(schema.cardinality(0, 1), 60u);
  EXPECT_EQ(schema.cardinality(0, 3), 1u);  // ALL
  EXPECT_EQ(schema.level_name(1, 1), "month");
  EXPECT_EQ(schema.level_name(1, 2), "ALL");
  // Views: (3+1)(2+1)(1+1) = 24.
  EXPECT_EQ(schema.NumViews(), 24u);
}

TEST(HierarchicalSchemaDeathTest, IncreasingCardinalityRejected) {
  EXPECT_DEATH(HierarchicalSchema({HierarchicalDimension{
                   "d", {{"coarse", 10}, {"finer", 100}}}}),
               "CHECK");
}

TEST(LevelVectorTest, Computability) {
  // Finer levels (smaller index) can compute coarser ones.
  LevelVector fine({0, 0, 0});
  LevelVector mid({1, 0, 1});
  LevelVector coarse({2, 1, 1});
  EXPECT_TRUE(mid.ComputableFrom(fine));
  EXPECT_TRUE(coarse.ComputableFrom(mid));
  EXPECT_TRUE(coarse.ComputableFrom(fine));
  EXPECT_FALSE(fine.ComputableFrom(mid));
  // Incomparable pair.
  LevelVector a({0, 1, 0});
  LevelVector b({1, 0, 0});
  EXPECT_FALSE(a.ComputableFrom(b));
  EXPECT_FALSE(b.ComputableFrom(a));
}

TEST(HierarchicalLatticeTest, IdRoundTrip) {
  HierarchicalSchema schema = RetailSchema();
  HierarchicalLattice lattice(&schema);
  EXPECT_EQ(lattice.num_views(), 24u);
  for (HViewId v = 0; v < lattice.num_views(); ++v) {
    EXPECT_EQ(lattice.IdOf(lattice.LevelsOf(v)), v);
  }
  EXPECT_EQ(lattice.LevelsOf(lattice.BaseView()), LevelVector({0, 0, 0}));
}

TEST(HierarchicalLatticeTest, DomainAndNames) {
  HierarchicalSchema schema = RetailSchema();
  HierarchicalLattice lattice(&schema);
  LevelVector v({1, 1, 1});  // city, month, ALL(promo index 1 = ALL)
  EXPECT_EQ(lattice.DomainSize(v), 60.0 * 12.0 * 1.0);
  EXPECT_EQ(lattice.ViewName(v), "store.city|day.month");
  LevelVector apex({3, 2, 1});
  EXPECT_EQ(lattice.ViewName(apex), "none");
  EXPECT_EQ(lattice.DomainSize(apex), 1.0);
}

TEST(HierarchicalLatticeTest, ActiveDimsAndFatIndexes) {
  HierarchicalSchema schema = RetailSchema();
  HierarchicalLattice lattice(&schema);
  LevelVector v({1, 2, 0});  // city, ALL, promo
  EXPECT_EQ(lattice.ActiveDimensions(v), (std::vector<int>{0, 2}));
  EXPECT_EQ(lattice.FatIndexOrders(v).size(), 2u);  // 2 permutations
  EXPECT_TRUE(lattice.FatIndexOrders(LevelVector({3, 2, 1})).empty());
}

TEST(HierarchicalLatticeTest, AnalyticalSizesMonotone) {
  HierarchicalSchema schema = RetailSchema();
  HierarchicalLattice lattice(&schema);
  std::vector<double> sizes = lattice.AnalyticalSizes(50'000);
  // Coarser views never have more rows.
  for (HViewId a = 0; a < lattice.num_views(); ++a) {
    for (HViewId b = 0; b < lattice.num_views(); ++b) {
      if (lattice.LevelsOf(a).ComputableFrom(lattice.LevelsOf(b))) {
        EXPECT_LE(sizes[a], sizes[b] + 1e-9) << a << " vs " << b;
      }
    }
  }
}

TEST(HQueryTest, EnumerationCount) {
  HierarchicalSchema schema = RetailSchema();
  // Π (1 + 2·L_d) = 7 · 5 · 3 = 105.
  EXPECT_EQ(EnumerateAllHQueries(schema).size(), 105u);
  // A flat 1-level-per-dim schema degenerates to 3^n.
  HierarchicalSchema flat({HierarchicalDimension{"a", {{"a", 10}}},
                           HierarchicalDimension{"b", {{"b", 10}}},
                           HierarchicalDimension{"c", {{"c", 10}}}});
  EXPECT_EQ(EnumerateAllHQueries(flat).size(), 27u);
}

TEST(HQueryTest, AnswerabilityRespectsLevels) {
  HierarchicalSchema schema = RetailSchema();
  // Group by city, select month.
  HSliceQuery q({HDimRole{HDimRole::kGroupBy, 1},
                 HDimRole{HDimRole::kSelect, 1},
                 HDimRole{HDimRole::kAbsent, 0}});
  // Answerable from (store, day, promo) — finer everywhere.
  EXPECT_TRUE(q.AnswerableFrom(LevelVector({0, 0, 0}), schema));
  // Answerable from (city, month, ALL) — exactly matching.
  EXPECT_TRUE(q.AnswerableFrom(LevelVector({1, 1, 1}), schema));
  // NOT answerable from (region, month, ALL) — store dim too coarse.
  EXPECT_FALSE(q.AnswerableFrom(LevelVector({2, 1, 1}), schema));
  // NOT answerable from (city, ALL, ALL) — day dim aggregated away.
  EXPECT_FALSE(q.AnswerableFrom(LevelVector({1, 2, 1}), schema));
}

TEST(HQueryTest, ToString) {
  HierarchicalSchema schema = RetailSchema();
  HSliceQuery q({HDimRole{HDimRole::kGroupBy, 1},
                 HDimRole{HDimRole::kSelect, 0},
                 HDimRole{HDimRole::kAbsent, 0}});
  EXPECT_EQ(q.ToString(schema), "g{store.city}s{day.day}");
}

class HierarchicalGraphTest : public ::testing::Test {
 protected:
  HierarchicalGraphTest()
      : schema_(RetailSchema()),
        graph_(BuildHierarchicalCubeGraph(
            schema_, /*raw_rows=*/50'000, UniformHWorkload(schema_),
            HierarchicalGraphOptions{.raw_scan_penalty = 2.0})) {}

  HierarchicalSchema schema_;
  HierarchicalCubeGraph graph_;
};

TEST_F(HierarchicalGraphTest, Shape) {
  EXPECT_EQ(graph_.graph.num_views(), 24u);
  EXPECT_EQ(graph_.graph.num_queries(), 105u);
  // Base view has 3 active dims → 6 fat indexes.
  EXPECT_EQ(graph_.graph.num_indexes(0), 6);
}

TEST_F(HierarchicalGraphTest, FlatSchemaReducesToPaperModel) {
  // A flat hierarchy must produce the same costs as the flat builder: the
  // cost of γ_{store} σ_{day} via I_(day,store) on (store,day) equals
  // |store,day| / |day|.
  HierarchicalSchema flat(
      {HierarchicalDimension{"p", {{"p", 100}}},
       HierarchicalDimension{"s", {{"s", 10}}}});
  HierarchicalCubeGraph g = BuildHierarchicalCubeGraph(
      flat, 5'000, UniformHWorkload(flat));
  // Locate the base view (levels {0,0}).
  HierarchicalLattice lattice(&flat);
  HViewId base = lattice.BaseView();
  double base_size = g.view_sizes[base];
  // |E| for a selection on s is the subcube (ALL, s)'s size.
  HViewId s_view = lattice.IdOf(LevelVector({1, 0}));
  double expected = base_size / g.view_sizes[s_view];
  // Find the query g{p}s{s} and the index (s, p).
  bool checked = false;
  for (uint32_t q = 0; q < g.graph.num_queries(); ++q) {
    if (g.graph.query_name(q) != "g{p.p}s{s.s}") continue;
    const auto& queries = g.graph.ViewQueries(static_cast<uint32_t>(base));
    for (size_t pos = 0; pos < queries.size(); ++pos) {
      if (queries[pos] != q) continue;
      const auto nk = static_cast<size_t>(
          g.graph.num_indexes(static_cast<uint32_t>(base)));
      for (size_t k = 0; k < nk; ++k) {
        if (g.IndexOrderOf(static_cast<uint32_t>(base),
                           static_cast<int32_t>(k)) ==
            std::vector<int>{1, 0}) {
          EXPECT_NEAR(g.graph.IndexCostAt(static_cast<uint32_t>(base),
                                          static_cast<int32_t>(k), pos),
                      expected, 1e-9);
          checked = true;
        }
      }
    }
  }
  EXPECT_TRUE(checked);
}

TEST_F(HierarchicalGraphTest, AlgorithmsRunAndObeyOrdering) {
  double total = 0.0;
  for (uint32_t v = 0; v < graph_.graph.num_views(); ++v) {
    total += graph_.graph.view_space(v) *
             (1.0 + static_cast<double>(graph_.graph.num_indexes(v)));
  }
  double budget = 0.05 * total;
  SelectionResult one = RGreedy(graph_.graph, budget, {.r = 1});
  SelectionResult two = RGreedy(graph_.graph, budget, {.r = 2});
  SelectionResult inner = InnerLevelGreedy(graph_.graph, budget);
  EXPECT_GT(one.Benefit(), 0.0);
  EXPECT_GE(two.Benefit(), one.Benefit() * 0.5);
  EXPECT_GT(inner.Benefit(), 0.0);
  // Certified ratio against the upper bound.
  double ub = UpperBoundBenefit(graph_.graph, inner.space_used);
  EXPECT_GE(inner.Benefit() / ub, 0.45);
}

TEST_F(HierarchicalGraphTest, MidLevelViewsGetSelected) {
  // The whole point of hierarchies: some picked views should sit strictly
  // between base and apex (e.g. city- or month-level aggregates).
  double total = 0.0;
  for (uint32_t v = 0; v < graph_.graph.num_views(); ++v) {
    total += graph_.graph.view_space(v) *
             (1.0 + static_cast<double>(graph_.graph.num_indexes(v)));
  }
  SelectionResult inner = InnerLevelGreedy(graph_.graph, 0.1 * total);
  bool has_mid_level = false;
  for (const StructureRef& s : inner.picks) {
    if (!s.is_view()) continue;
    const LevelVector& levels = graph_.view_levels[s.view];
    for (int d = 0; d < schema_.num_dimensions(); ++d) {
      if (levels.level(d) > 0 && levels.level(d) < schema_.all_level(d)) {
        has_mid_level = true;
      }
    }
  }
  EXPECT_TRUE(has_mid_level);
}

TEST_F(HierarchicalGraphTest, LazyOneGreedyEquivalentOnHierarchies) {
  double total = 0.0;
  for (uint32_t v = 0; v < graph_.graph.num_views(); ++v) {
    total += graph_.graph.view_space(v) *
             (1.0 + static_cast<double>(graph_.graph.num_indexes(v)));
  }
  for (double frac : {0.02, 0.1}) {
    SelectionResult eager =
        RGreedy(graph_.graph, frac * total, RGreedyOptions{.r = 1});
    SelectionResult lazy = RGreedy(
        graph_.graph, frac * total,
        RGreedyOptions{.r = 1, .lazy_one_greedy = true});
    EXPECT_NEAR(lazy.Benefit(), eager.Benefit(),
                1e-9 * (1.0 + eager.Benefit()));
    EXPECT_LE(lazy.candidates_evaluated, eager.candidates_evaluated);
  }
}

TEST_F(HierarchicalGraphTest, GuaranteeHoldsAgainstOptimalOnTinyInstance) {
  HierarchicalSchema tiny(
      {HierarchicalDimension{"a", {{"a0", 40}, {"a1", 5}}},
       HierarchicalDimension{"b", {{"b0", 12}}}});
  HierarchicalCubeGraph g = BuildHierarchicalCubeGraph(
      tiny, 300, UniformHWorkload(tiny),
      HierarchicalGraphOptions{.raw_scan_penalty = 2.0});
  double budget = 150.0;
  SelectionResult two = RGreedy(g.graph, budget, {.r = 2});
  SelectionResult opt = BranchAndBoundOptimal(g.graph, two.space_used);
  ASSERT_TRUE(opt.proven_optimal);
  EXPECT_GE(two.Benefit(), RGreedyGuarantee(2) * opt.Benefit() - 1e-9);
  EXPECT_LE(two.Benefit(), opt.Benefit() + 1e-9);
}

}  // namespace
}  // namespace olapidx
