// Beam selection (RGreedyOptions / InnerGreedyOptions::beam_width):
// capping per-stage re-evaluations at the B best stale bounds.
//
// Contracts under test:
//   - beam_width = 0 and an unbounded beam are bit-identical to the exact
//     greedy (same picks, same doubles), for every thread count;
//   - a finite beam always completes and reports its a-posteriori
//     guarantee: beam_stage_factor ∈ (0, 1], 1.0 exactly when no stage
//     ever skipped a candidate whose bound beat the pick;
//   - the beam defers only certified-bounded views, so it never stops a
//     run earlier than the exact greedy would (deferred fallback).

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cube_graph.h"
#include "core/inner_greedy.h"
#include "core/r_greedy.h"
#include "data/synthetic.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

CubeGraph BuildGraph(int n, uint64_t seed) {
  SyntheticCube cube = UniformSyntheticCube(n, 80, 0.05);
  CubeLattice lattice(cube.schema);
  Workload workload = ZipfSliceQueries(lattice, 1.1, seed);
  CubeGraphOptions options;
  options.raw_scan_penalty = 2.0;
  StatusOr<CubeGraph> built =
      TryBuildCubeGraph(cube.schema, cube.sizes, workload, options);
  OLAPIDX_CHECK(built.ok());
  return *std::move(built);
}

void ExpectBitIdentical(const SelectionResult& a, const SelectionResult& b,
                        const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_TRUE(a.status.ok()) << a.status.ToString();
  ASSERT_TRUE(b.status.ok()) << b.status.ToString();
  ASSERT_EQ(a.picks.size(), b.picks.size());
  for (size_t i = 0; i < a.picks.size(); ++i) {
    EXPECT_EQ(a.picks[i], b.picks[i]) << "pick " << i;
    EXPECT_EQ(a.pick_benefits[i], b.pick_benefits[i]) << "pick " << i;
  }
  EXPECT_EQ(a.final_cost, b.final_cost);
  EXPECT_EQ(a.space_used, b.space_used);
  EXPECT_EQ(a.stats.stages, b.stats.stages);
}

TEST(BeamSelectionTest, UnboundedBeamIsExactRGreedy) {
  for (int n = 3; n <= 6; ++n) {
    CubeGraph cg = BuildGraph(n, static_cast<uint64_t>(n));
    const double budget = 3.0 * cg.graph.view_space(cg.graph.num_views() - 1);
    for (int r : {1, 2}) {
      RGreedyOptions exact;
      exact.r = r;
      SelectionResult base = RGreedy(cg.graph, budget, exact);
      ASSERT_GT(base.picks.size(), 0u);
      for (size_t beam : {size_t{0}, SIZE_MAX, size_t{1} << 20}) {
        RGreedyOptions beamed = exact;
        beamed.beam_width = beam;
        SelectionResult got = RGreedy(cg.graph, budget, beamed);
        EXPECT_EQ(got.beam_skipped, 0u);
        EXPECT_EQ(got.beam_stage_factor, 1.0);
        ExpectBitIdentical(got, base,
                           "n=" + std::to_string(n) +
                               " r=" + std::to_string(r) +
                               " beam=" + std::to_string(beam));
      }
    }
  }
}

TEST(BeamSelectionTest, UnboundedBeamIsExactInnerGreedy) {
  for (int n = 3; n <= 6; ++n) {
    CubeGraph cg = BuildGraph(n, static_cast<uint64_t>(10 + n));
    const double budget = 3.0 * cg.graph.view_space(cg.graph.num_views() - 1);
    SelectionResult base = InnerLevelGreedy(cg.graph, budget, {});
    ASSERT_GT(base.picks.size(), 0u);
    for (size_t beam : {size_t{0}, SIZE_MAX}) {
      InnerGreedyOptions options;
      options.beam_width = beam;
      SelectionResult got = InnerLevelGreedy(cg.graph, budget, options);
      EXPECT_EQ(got.beam_skipped, 0u);
      EXPECT_EQ(got.beam_stage_factor, 1.0);
      ExpectBitIdentical(got, base,
                         "n=" + std::to_string(n) +
                             " beam=" + std::to_string(beam));
    }
  }
}

TEST(BeamSelectionTest, FiniteBeamCompletesAndReportsGuarantee) {
  CubeGraph cg = BuildGraph(5, 21);
  const double budget = 4.0 * cg.graph.view_space(cg.graph.num_views() - 1);
  for (size_t beam : {size_t{1}, size_t{4}, size_t{16}}) {
    SCOPED_TRACE("beam=" + std::to_string(beam));
    InnerGreedyOptions options;
    options.beam_width = beam;
    SelectionResult got = InnerLevelGreedy(cg.graph, budget, options);
    ASSERT_TRUE(got.status.ok()) << got.status.ToString();
    EXPECT_TRUE(got.completed);
    EXPECT_GT(got.picks.size(), 0u);
    EXPECT_GT(got.Benefit(), 0.0);
    EXPECT_GT(got.beam_stage_factor, 0.0);
    EXPECT_LE(got.beam_stage_factor, 1.0);
    // A pick whose ratio matched or beat every skipped bound keeps the
    // factor at exactly 1; anything else must have recorded skips.
    if (got.beam_stage_factor < 1.0) {
      EXPECT_GT(got.beam_skipped, 0u);
    }

    RGreedyOptions ropts;
    ropts.r = 2;
    ropts.beam_width = beam;
    SelectionResult rgot = RGreedy(cg.graph, budget, ropts);
    ASSERT_TRUE(rgot.status.ok()) << rgot.status.ToString();
    EXPECT_TRUE(rgot.completed);
    EXPECT_GT(rgot.beam_stage_factor, 0.0);
    EXPECT_LE(rgot.beam_stage_factor, 1.0);
  }
}

TEST(BeamSelectionTest, FiniteBeamSkipsWork) {
  // A tight beam on a graph with many views must actually defer
  // re-evaluations (the whole point), and still never pick a worse
  // candidate than the bound it certified: the run's final cost can only
  // be above the exact run's by stages whose factor dropped below 1.
  CubeGraph cg = BuildGraph(6, 33);
  const double budget = 4.0 * cg.graph.view_space(cg.graph.num_views() - 1);
  InnerGreedyOptions tight;
  tight.beam_width = 1;
  SelectionResult beamed = InnerLevelGreedy(cg.graph, budget, tight);
  SelectionResult exact = InnerLevelGreedy(cg.graph, budget, {});
  ASSERT_TRUE(beamed.status.ok());
  ASSERT_TRUE(exact.status.ok());
  EXPECT_GT(beamed.beam_skipped, 0u);
  EXPECT_LT(beamed.candidates_evaluated, exact.candidates_evaluated);
  if (beamed.beam_stage_factor == 1.0) {
    EXPECT_EQ(beamed.final_cost, exact.final_cost);
  }
}

TEST(BeamSelectionTest, BeamIsThreadDeterministic) {
  CubeGraph cg = BuildGraph(5, 8);
  const double budget = 4.0 * cg.graph.view_space(cg.graph.num_views() - 1);
  InnerGreedyOptions base;
  base.beam_width = 2;
  base.num_threads = 1;
  SelectionResult serial = InnerLevelGreedy(cg.graph, budget, base);
  ASSERT_TRUE(serial.status.ok());
  for (size_t threads : {size_t{2}, size_t{8}}) {
    InnerGreedyOptions options = base;
    options.num_threads = threads;
    SelectionResult got = InnerLevelGreedy(cg.graph, budget, options);
    EXPECT_EQ(got.beam_skipped, serial.beam_skipped);
    EXPECT_EQ(got.beam_stage_factor, serial.beam_stage_factor);
    ExpectBitIdentical(got, serial,
                       "threads=" + std::to_string(threads));
  }
  RGreedyOptions ropts;
  ropts.r = 1;
  ropts.beam_width = 2;
  ropts.num_threads = 1;
  SelectionResult rserial = RGreedy(cg.graph, budget, ropts);
  ASSERT_TRUE(rserial.status.ok());
  for (size_t threads : {size_t{2}, size_t{8}}) {
    RGreedyOptions options = ropts;
    options.num_threads = threads;
    SelectionResult got = RGreedy(cg.graph, budget, options);
    ExpectBitIdentical(got, rserial,
                       "r-greedy threads=" + std::to_string(threads));
  }
}

TEST(BeamSelectionTest, BeamRequiresMemoization) {
  // With memoization off there are no stale bounds to rank, so the beam
  // must be inert: identical to the exact run, nothing skipped.
  CubeGraph cg = BuildGraph(4, 17);
  const double budget = 3.0 * cg.graph.view_space(cg.graph.num_views() - 1);
  InnerGreedyOptions off;
  off.memoize = false;
  SelectionResult exact = InnerLevelGreedy(cg.graph, budget, off);
  InnerGreedyOptions beamed = off;
  beamed.beam_width = 1;
  SelectionResult got = InnerLevelGreedy(cg.graph, budget, beamed);
  EXPECT_EQ(got.beam_skipped, 0u);
  EXPECT_EQ(got.beam_stage_factor, 1.0);
  ExpectBitIdentical(got, exact, "memoize off");
}

}  // namespace
}  // namespace olapidx
