// FrequencySketch: concurrent determinism (the snapshot depends only on
// the observed multiset, not insertion order, thread interleaving, or
// shard count), the exactness of the per-query totals, journal-grade
// RestoreEntry, and the KL drift score's basic shape.

#include "workload/frequency_sketch.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "lattice/attribute_set.h"
#include "workload/slice_query.h"

namespace olapidx {
namespace {

SliceQuery Q(uint32_t group_mask, uint32_t selection_mask = 0) {
  return SliceQuery(AttributeSet::FromMask(group_mask),
                    AttributeSet::FromMask(selection_mask));
}

TEST(FrequencySketchTest, AccumulatesWeightAndCountPerQuery) {
  FrequencySketch sketch;
  ASSERT_TRUE(sketch.TryRecord(Q(0b001), 2.0).ok());
  ASSERT_TRUE(sketch.TryRecord(Q(0b001), 3.0).ok());
  ASSERT_TRUE(sketch.TryRecord(Q(0b010, 0b100)).ok());

  EXPECT_EQ(sketch.TotalCount(), 3u);
  EXPECT_DOUBLE_EQ(sketch.TotalWeight(), 6.0);
  EXPECT_EQ(sketch.DistinctQueries(), 2u);

  std::vector<FrequencySketch::Entry> entries = sketch.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].query, Q(0b001));
  EXPECT_DOUBLE_EQ(entries[0].weight, 5.0);
  EXPECT_EQ(entries[0].count, 2u);
  EXPECT_EQ(entries[1].query, Q(0b010, 0b100));
  EXPECT_EQ(entries[1].count, 1u);
}

TEST(FrequencySketchTest, RejectsNonPositiveWeight) {
  FrequencySketch sketch;
  EXPECT_EQ(sketch.TryRecord(Q(1), 0.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sketch.TryRecord(Q(1), -1.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sketch.TotalCount(), 0u);
}

TEST(FrequencySketchTest, SnapshotIndependentOfShardCountAndOrder) {
  // The same multiset of observations, inserted in different orders into
  // sketches with different shard counts, must snapshot identically.
  std::vector<std::pair<SliceQuery, double>> observations;
  for (uint32_t g = 1; g < 16; ++g) {
    observations.push_back({Q(g), static_cast<double>(g)});
    observations.push_back({Q(g, (~g) & 0xF), 1.0});
  }
  FrequencySketch a(1), b(7);
  for (const auto& [q, w] : observations) {
    ASSERT_TRUE(a.TryRecord(q, w).ok());
  }
  for (auto it = observations.rbegin(); it != observations.rend(); ++it) {
    ASSERT_TRUE(b.TryRecord(it->first, it->second).ok());
  }
  std::vector<FrequencySketch::Entry> ea = a.Snapshot();
  std::vector<FrequencySketch::Entry> eb = b.Snapshot();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].query, eb[i].query);
    EXPECT_EQ(ea[i].weight, eb[i].weight);  // bit-exact: same additions
    EXPECT_EQ(ea[i].count, eb[i].count);
  }
}

TEST(FrequencySketchTest, ConcurrentInsertsLoseNothing) {
  FrequencySketch sketch(4);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sketch, t] {
      for (int i = 0; i < kPerThread; ++i) {
        uint32_t mask = static_cast<uint32_t>((t * 31 + i) % 8) + 1;
        ASSERT_TRUE(sketch.TryRecord(Q(mask)).ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(sketch.TotalCount(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(sketch.TotalWeight(),
                   static_cast<double>(kThreads) * kPerThread);
}

TEST(FrequencySketchTest, RestoreEntryRebuildsExactly) {
  FrequencySketch original;
  ASSERT_TRUE(original.TryRecord(Q(0b11), 2.5).ok());
  ASSERT_TRUE(original.TryRecord(Q(0b11), 0.5).ok());
  ASSERT_TRUE(original.TryRecord(Q(0b100, 0b10), 7.0).ok());

  FrequencySketch restored;
  for (const FrequencySketch::Entry& e : original.Snapshot()) {
    restored.RestoreEntry(e.query, e.weight, e.count);
  }
  std::vector<FrequencySketch::Entry> ea = original.Snapshot();
  std::vector<FrequencySketch::Entry> eb = restored.Snapshot();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].query, eb[i].query);
    EXPECT_EQ(ea[i].weight, eb[i].weight);
    EXPECT_EQ(ea[i].count, eb[i].count);
  }
}

TEST(FrequencySketchTest, ToWorkloadCarriesAccumulatedWeights) {
  FrequencySketch sketch;
  ASSERT_TRUE(sketch.TryRecord(Q(1), 3.0).ok());
  ASSERT_TRUE(sketch.TryRecord(Q(2), 1.0).ok());
  ASSERT_TRUE(sketch.TryRecord(Q(1), 1.0).ok());
  Workload w = sketch.ToWorkload();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.queries()[0].query, Q(1));
  EXPECT_DOUBLE_EQ(w.queries()[0].frequency, 4.0);
}

TEST(FrequencySketchTest, ClearDropsEverything) {
  FrequencySketch sketch;
  ASSERT_TRUE(sketch.TryRecord(Q(1)).ok());
  sketch.Clear();
  EXPECT_EQ(sketch.TotalCount(), 0u);
  EXPECT_TRUE(sketch.Snapshot().empty());
}

TEST(KlDivergenceTest, IdenticalDistributionsScoreZero) {
  FrequencySketch a, b;
  for (uint32_t g = 1; g <= 4; ++g) {
    ASSERT_TRUE(a.TryRecord(Q(g), static_cast<double>(g)).ok());
    ASSERT_TRUE(b.TryRecord(Q(g), static_cast<double>(g)).ok());
  }
  EXPECT_DOUBLE_EQ(KlDivergence(a, b), 0.0);
}

TEST(KlDivergenceTest, EmptySketchMeansNoEvidence) {
  FrequencySketch a, b;
  ASSERT_TRUE(a.TryRecord(Q(1)).ok());
  EXPECT_DOUBLE_EQ(KlDivergence(a, b), 0.0);  // empty baseline
  EXPECT_DOUBLE_EQ(KlDivergence(b, a), 0.0);  // empty current
}

TEST(KlDivergenceTest, DisjointSupportScoresHigherThanOverlap) {
  FrequencySketch base;
  for (uint32_t g = 1; g <= 3; ++g) {
    ASSERT_TRUE(base.TryRecord(Q(g), 10.0).ok());
  }
  // Same support, same weights: no drift.
  FrequencySketch same;
  for (uint32_t g = 1; g <= 3; ++g) {
    ASSERT_TRUE(same.TryRecord(Q(g), 10.0).ok());
  }
  // Shifted mass within the same support: some drift.
  FrequencySketch shifted;
  ASSERT_TRUE(shifted.TryRecord(Q(1), 25.0).ok());
  ASSERT_TRUE(shifted.TryRecord(Q(2), 4.0).ok());
  ASSERT_TRUE(shifted.TryRecord(Q(3), 1.0).ok());
  // Entirely new queries: the most drift.
  FrequencySketch disjoint;
  for (uint32_t g = 4; g <= 6; ++g) {
    ASSERT_TRUE(disjoint.TryRecord(Q(g), 10.0).ok());
  }
  double none = KlDivergence(same, base);
  double some = KlDivergence(shifted, base);
  double lots = KlDivergence(disjoint, base);
  EXPECT_LT(none, some);
  EXPECT_LT(some, lots);
  EXPECT_GT(lots, 0.5);
}

TEST(KlDivergenceTest, DeterministicAcrossShardLayouts) {
  FrequencySketch a1(1), a8(8), b1(1), b8(8);
  for (uint32_t g = 1; g <= 12; ++g) {
    double w = static_cast<double>(g % 5 + 1);
    ASSERT_TRUE(a1.TryRecord(Q(g), w).ok());
    ASSERT_TRUE(a8.TryRecord(Q(g), w).ok());
    double v = static_cast<double>(13 - g);
    ASSERT_TRUE(b1.TryRecord(Q(g), v).ok());
    ASSERT_TRUE(b8.TryRecord(Q(g), v).ok());
  }
  EXPECT_EQ(KlDivergence(a1, b1), KlDivergence(a8, b8));  // bit-exact
}

}  // namespace
}  // namespace olapidx
