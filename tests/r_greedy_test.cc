#include "core/r_greedy.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "data/example_graphs.h"

namespace olapidx {
namespace {

// A graph where the best choice is obvious: one strong view.
QueryViewGraph SimpleGraph() {
  QueryViewGraph g;
  uint32_t v0 = g.AddView("strong", 2.0);
  uint32_t v1 = g.AddView("weak", 2.0);
  uint32_t q0 = g.AddQuery("q0", 100.0);
  uint32_t q1 = g.AddQuery("q1", 100.0);
  g.AddViewEdge(q0, v0, 10.0);   // benefit 90
  g.AddViewEdge(q1, v1, 80.0);   // benefit 20
  g.Finalize();
  return g;
}

TEST(RGreedyTest, PicksByBenefitPerSpace) {
  QueryViewGraph g = SimpleGraph();
  SelectionResult r = OneGreedy(g, 2.0);
  ASSERT_EQ(r.picks.size(), 1u);
  EXPECT_EQ(g.StructureName(r.picks[0]), "strong");
  EXPECT_NEAR(r.Benefit(), 90.0, 1e-9);
  EXPECT_NEAR(r.space_used, 2.0, 1e-9);
  EXPECT_NEAR(r.initial_cost, 200.0, 1e-9);
  EXPECT_NEAR(r.final_cost, 110.0, 1e-9);
}

TEST(RGreedyTest, StopsWhenNothingBeneficial) {
  QueryViewGraph g = SimpleGraph();
  // Huge budget: picks both views, then stops (indexes don't exist).
  SelectionResult r = OneGreedy(g, 1e9);
  EXPECT_EQ(r.picks.size(), 2u);
  EXPECT_NEAR(r.Benefit(), 110.0, 1e-9);
  EXPECT_NEAR(r.space_used, 4.0, 1e-9);
}

TEST(RGreedyTest, ZeroBudgetSelectsNothing) {
  QueryViewGraph g = SimpleGraph();
  SelectionResult r = OneGreedy(g, 0.0);
  EXPECT_TRUE(r.picks.empty());
  EXPECT_NEAR(r.Benefit(), 0.0, 1e-12);
}

TEST(RGreedyTest, OneGreedyBlindToIndexOnlyViews) {
  // 1-greedy cannot start a view whose entire value lives in its indexes.
  QueryViewGraph g = OneGreedyTrapInstance(/*trap_benefit=*/1000.0,
                                           /*decoy_benefit=*/1.0);
  SelectionResult r1 = OneGreedy(g, 2.0);
  EXPECT_NEAR(r1.Benefit(), 2.0, 1e-9);  // two decoys

  SelectionResult r2 = RGreedy(g, 2.0, RGreedyOptions{.r = 2});
  EXPECT_NEAR(r2.Benefit(), 1000.0, 1e-9);  // {trap, I_trap}
  ASSERT_EQ(r2.picks.size(), 2u);
  EXPECT_TRUE(r2.picks[0].is_view());
  EXPECT_FALSE(r2.picks[1].is_view());
}

TEST(RGreedyTest, TrapRatioGoesToZero) {
  // The ratio 1-greedy/optimal can be made arbitrarily small (the r = 1
  // point of Figure 3).
  for (double trap : {10.0, 100.0, 10'000.0}) {
    QueryViewGraph g = OneGreedyTrapInstance(trap, 1.0);
    SelectionResult r1 = OneGreedy(g, 2.0);
    EXPECT_NEAR(r1.Benefit() / trap, 2.0 / trap, 1e-9);
  }
}

TEST(RGreedyTest, Figure2OneGreedyTrace) {
  QueryViewGraph g = Figure2Instance();
  SelectionResult r = OneGreedy(g, kFigure2Budget);
  // V3 (22) then its six 21-indexes: 22 + 6·21 = 148, exactly 7 units.
  EXPECT_NEAR(r.Benefit(), 148.0, 1e-9);
  EXPECT_NEAR(r.space_used, 7.0, 1e-9);
  ASSERT_EQ(r.picks.size(), 7u);
  EXPECT_EQ(g.StructureName(r.picks[0]), "V3");
}

TEST(RGreedyTest, Figure2TwoGreedyTrace) {
  QueryViewGraph g = Figure2Instance();
  SelectionResult r = RGreedy(g, kFigure2Budget, RGreedyOptions{.r = 2});
  // {V1,I11}=100, V3=22, then four junk indexes at 21: 206.
  EXPECT_NEAR(r.Benefit(), 206.0, 1e-9);
  EXPECT_NEAR(r.space_used, 7.0, 1e-9);
}

TEST(RGreedyTest, Figure2ThreeGreedyTrace) {
  QueryViewGraph g = Figure2Instance();
  SelectionResult r = RGreedy(g, kFigure2Budget, RGreedyOptions{.r = 3});
  // {V1,I11}=100, {V2,I21,I22}=82, then two 41-indexes: 264.
  EXPECT_NEAR(r.Benefit(), 264.0, 1e-9);
  EXPECT_NEAR(r.space_used, 7.0, 1e-9);
}

TEST(RGreedyTest, MonotoneInR) {
  QueryViewGraph g = Figure2Instance();
  double prev = -1.0;
  for (int r = 1; r <= 4; ++r) {
    SelectionResult res = RGreedy(g, kFigure2Budget, RGreedyOptions{.r = r});
    EXPECT_GE(res.Benefit(), prev - 1e-9) << "r=" << r;
    prev = res.Benefit();
  }
}

TEST(RGreedyTest, SubsetCapStillProducesValidResult) {
  QueryViewGraph g = Figure2Instance();
  SelectionResult capped = RGreedy(
      g, kFigure2Budget,
      RGreedyOptions{.r = 3, .max_subsets_per_view = 1});
  SelectionResult exact =
      RGreedy(g, kFigure2Budget, RGreedyOptions{.r = 3});
  EXPECT_GT(capped.Benefit(), 0.0);
  EXPECT_LE(capped.Benefit(), exact.Benefit() + 1e-9);
  EXPECT_LT(capped.candidates_evaluated, exact.candidates_evaluated);
}

TEST(RGreedyTest, PickBenefitsSumToTotalBenefit) {
  QueryViewGraph g = Figure2Instance();
  for (int r = 1; r <= 3; ++r) {
    SelectionResult res = RGreedy(g, kFigure2Budget, RGreedyOptions{.r = r});
    ASSERT_EQ(res.pick_benefits.size(), res.picks.size());
    double sum = 0.0;
    for (double b : res.pick_benefits) sum += b;
    EXPECT_NEAR(sum, res.Benefit(), 1e-6);
  }
}

TEST(RGreedyTest, IndexNeverPickedWithoutItsView) {
  QueryViewGraph g = Figure2Instance();
  for (int r = 1; r <= 3; ++r) {
    SelectionResult res = RGreedy(g, 1e9, RGreedyOptions{.r = r});
    std::vector<bool> view_seen(g.num_views(), false);
    for (const StructureRef& s : res.picks) {
      if (s.is_view()) {
        view_seen[s.view] = true;
      } else {
        EXPECT_TRUE(view_seen[s.view]);
      }
    }
  }
}

TEST(RGreedyTest, UnitSpaceOvershootBound) {
  // Theorem 5.1: with unit sizes the solution uses at most S + r - 1 space.
  QueryViewGraph g = Figure2Instance();
  for (int r = 1; r <= 4; ++r) {
    for (double budget : {1.0, 3.0, 5.0, 7.0, 11.0}) {
      SelectionResult res = RGreedy(g, budget, RGreedyOptions{.r = r});
      EXPECT_LE(res.space_used, budget + r - 1 + 1e-9)
          << "r=" << r << " S=" << budget;
    }
  }
}

TEST(LazyOneGreedyTest, MatchesEagerOnFigure2) {
  QueryViewGraph g = Figure2Instance();
  SelectionResult eager = OneGreedy(g, kFigure2Budget);
  SelectionResult lazy = RGreedy(
      g, kFigure2Budget,
      RGreedyOptions{.r = 1, .lazy_one_greedy = true});
  EXPECT_NEAR(lazy.Benefit(), eager.Benefit(), 1e-9);
  EXPECT_NEAR(lazy.final_cost, eager.final_cost, 1e-9);
  EXPECT_NEAR(lazy.space_used, eager.space_used, 1e-9);
}

TEST(LazyOneGreedyTest, MatchesEagerOnTrap) {
  QueryViewGraph g = OneGreedyTrapInstance(1000.0, 1.0);
  SelectionResult eager = OneGreedy(g, 2.0);
  SelectionResult lazy = RGreedy(
      g, 2.0, RGreedyOptions{.r = 1, .lazy_one_greedy = true});
  EXPECT_NEAR(lazy.Benefit(), eager.Benefit(), 1e-9);
}

TEST(LazyOneGreedyTest, EvaluatesFewerCandidatesOnLargeInstances) {
  // Build a graph with many views; lazy evaluation should do much less
  // work after the first stage.
  QueryViewGraph g;
  std::vector<uint32_t> queries;
  for (int q = 0; q < 50; ++q) {
    // Two-step concatenation sidesteps a GCC 12 -Werror=restrict false
    // positive on "literal" + std::to_string(...) at -O3 (PR 105329).
    std::string qname = "q";
    qname += std::to_string(q);
    queries.push_back(g.AddQuery(qname, 1000.0));
  }
  for (int v = 0; v < 60; ++v) {
    std::string vname = "v";
    vname += std::to_string(v);
    uint32_t view = g.AddView(vname, 1.0);
    // Each view helps a couple of queries by a view-specific amount.
    g.AddViewEdge(queries[static_cast<size_t>(v) % queries.size()], view,
                  1000.0 - 10.0 * (v + 1));
    g.AddViewEdge(
        queries[static_cast<size_t>(v * 7 + 3) % queries.size()], view,
        1000.0 - 5.0 * (v + 1));
  }
  g.Finalize();
  // Compare against the full-rescan (unmemoized) eager run: that is the
  // work the lazy heap is designed to avoid. The memoized eager run can
  // legitimately evaluate even fewer candidates than lazy.
  SelectionResult eager =
      RGreedy(g, 20.0, RGreedyOptions{.r = 1, .memoize = false});
  SelectionResult lazy = RGreedy(
      g, 20.0, RGreedyOptions{.r = 1, .lazy_one_greedy = true});
  EXPECT_NEAR(lazy.Benefit(), eager.Benefit(), 1e-9);
  EXPECT_EQ(lazy.picks.size(), eager.picks.size());
  EXPECT_LT(lazy.candidates_evaluated, eager.candidates_evaluated / 2);
  SelectionResult memoized = OneGreedy(g, 20.0);
  EXPECT_NEAR(memoized.Benefit(), eager.Benefit(), 1e-9);
  EXPECT_LT(memoized.candidates_evaluated, eager.candidates_evaluated);
  EXPECT_GT(memoized.stats.cache_hits, 0u);
}

TEST(RGreedyTest, InvalidConfigsAreRejectedNotFatal) {
  QueryViewGraph g = SimpleGraph();
  SelectionResult bad_r = RGreedy(g, 1.0, RGreedyOptions{.r = 0});
  EXPECT_FALSE(bad_r.completed);
  EXPECT_EQ(bad_r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(bad_r.picks.empty());
  SelectionResult bad_budget =
      RGreedy(g, -1.0, RGreedyOptions{.r = 1});
  EXPECT_EQ(bad_budget.status.code(), StatusCode::kInvalidArgument);
  SelectionResult nan_budget =
      RGreedy(g, std::nan(""), RGreedyOptions{.r = 1});
  EXPECT_EQ(nan_budget.status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace olapidx
