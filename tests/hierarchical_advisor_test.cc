#include "hierarchy/hierarchical_advisor.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "hierarchy/hierarchical_executor.h"

namespace olapidx {
namespace {

HierarchicalSchema Schema() {
  return HierarchicalSchema({
      HierarchicalDimension{"store", {{"store", 50}, {"region", 5}}},
      HierarchicalDimension{"day", {{"day", 30}, {"month", 6}}},
  });
}

TEST(HierarchicalAdvisorTest, RecommendationIsConsistent) {
  HierarchicalSchema schema = Schema();
  HierarchicalGraphOptions options;
  options.raw_scan_penalty = 2.0;
  HierarchicalAdvisor advisor(schema, 1'000,
                              UniformHWorkload(schema), options);
  AdvisorConfig config;
  config.algorithm = Algorithm::kInnerLevel;
  config.space_budget = 2'000;
  HRecommendation rec = advisor.Recommend(config);

  ASSERT_FALSE(rec.structures.empty());
  double space = 0.0;
  for (const HRecommendedStructure& s : rec.structures) space += s.space;
  EXPECT_NEAR(space, rec.space_used, 1e-6);
  EXPECT_LT(rec.average_query_cost, rec.initial_average_cost);
  // Every index pick names a view that appears somewhere in the picks.
  for (const HRecommendedStructure& s : rec.structures) {
    if (s.is_view()) continue;
    bool found = false;
    for (const HRecommendedStructure& v : rec.structures) {
      if (v.is_view() && v.view == s.view) found = true;
    }
    EXPECT_TRUE(found) << s.name;
  }
}

TEST(HierarchicalAdvisorTest, RecommendationMaterializes) {
  HierarchicalSchema schema = Schema();
  HierarchyMaps maps = HierarchyMaps::Balanced(schema);
  FactTable fact = GenerateHierarchicalFacts(schema, 1'000, /*seed=*/3);
  HierarchicalGraphOptions options;
  options.raw_scan_penalty = 2.0;
  HierarchicalAdvisor advisor(schema,
                              static_cast<double>(fact.num_rows()),
                              UniformHWorkload(schema), options);
  AdvisorConfig config;
  config.algorithm = Algorithm::kRGreedy;
  config.r_greedy.r = 2;
  config.space_budget = 2'500;
  HRecommendation rec = advisor.Recommend(config);

  HierarchicalCatalog catalog(&fact, &maps);
  for (const HRecommendedStructure& s : rec.structures) {
    catalog.MaterializeView(s.view);
    if (!s.is_view()) catalog.BuildIndex(s.view, s.index_order);
  }
  EXPECT_EQ(catalog.materialized_views().size(),
            static_cast<size_t>(std::count_if(
                rec.structures.begin(), rec.structures.end(),
                [](const HRecommendedStructure& s) { return s.is_view(); })));
}

TEST(HierarchicalAdvisorTest, AllAlgorithmsRun) {
  HierarchicalSchema schema = Schema();
  HierarchicalGraphOptions options;
  options.raw_scan_penalty = 2.0;
  HierarchicalAdvisor advisor(schema, 1'000,
                              UniformHWorkload(schema), options);
  for (Algorithm algo :
       {Algorithm::kOneGreedy, Algorithm::kInnerLevel, Algorithm::kTwoStep,
        Algorithm::kHruViewsOnly}) {
    AdvisorConfig config;
    config.algorithm = algo;
    config.space_budget = 1'000;
    config.two_step.strict_fit = true;
    HRecommendation rec = advisor.Recommend(config);
    EXPECT_LE(rec.average_query_cost, rec.initial_average_cost)
        << AlgorithmName(algo);
  }
}

}  // namespace
}  // namespace olapidx
