#include "hierarchy/hierarchical_advisor.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "hierarchy/hierarchical_executor.h"

namespace olapidx {
namespace {

HierarchicalSchema Schema() {
  return HierarchicalSchema({
      HierarchicalDimension{"store", {{"store", 50}, {"region", 5}}},
      HierarchicalDimension{"day", {{"day", 30}, {"month", 6}}},
  });
}

TEST(HierarchicalAdvisorTest, RecommendationIsConsistent) {
  HierarchicalSchema schema = Schema();
  HierarchicalGraphOptions options;
  options.raw_scan_penalty = 2.0;
  HierarchicalAdvisor advisor(schema, 1'000,
                              UniformHWorkload(schema), options);
  AdvisorConfig config;
  config.algorithm = Algorithm::kInnerLevel;
  config.space_budget = 2'000;
  HRecommendation rec = advisor.Recommend(config);

  ASSERT_FALSE(rec.structures.empty());
  double space = 0.0;
  for (const HRecommendedStructure& s : rec.structures) space += s.space;
  EXPECT_NEAR(space, rec.space_used, 1e-6);
  EXPECT_LT(rec.average_query_cost, rec.initial_average_cost);
  // Every index pick names a view that appears somewhere in the picks.
  for (const HRecommendedStructure& s : rec.structures) {
    if (s.is_view()) continue;
    bool found = false;
    for (const HRecommendedStructure& v : rec.structures) {
      if (v.is_view() && v.view == s.view) found = true;
    }
    EXPECT_TRUE(found) << s.name;
  }
}

TEST(HierarchicalAdvisorTest, RecommendationMaterializes) {
  HierarchicalSchema schema = Schema();
  HierarchyMaps maps = HierarchyMaps::Balanced(schema);
  FactTable fact = GenerateHierarchicalFacts(schema, 1'000, /*seed=*/3);
  HierarchicalGraphOptions options;
  options.raw_scan_penalty = 2.0;
  HierarchicalAdvisor advisor(schema,
                              static_cast<double>(fact.num_rows()),
                              UniformHWorkload(schema), options);
  AdvisorConfig config;
  config.algorithm = Algorithm::kRGreedy;
  config.r_greedy.r = 2;
  config.space_budget = 2'500;
  HRecommendation rec = advisor.Recommend(config);

  HierarchicalCatalog catalog(&fact, &maps);
  for (const HRecommendedStructure& s : rec.structures) {
    catalog.MaterializeView(s.view);
    if (!s.is_view()) catalog.BuildIndex(s.view, s.index_order);
  }
  EXPECT_EQ(catalog.materialized_views().size(),
            static_cast<size_t>(std::count_if(
                rec.structures.begin(), rec.structures.end(),
                [](const HRecommendedStructure& s) { return s.is_view(); })));
}

TEST(HierarchicalAdvisorTest, AllAlgorithmsRun) {
  HierarchicalSchema schema = Schema();
  HierarchicalGraphOptions options;
  options.raw_scan_penalty = 2.0;
  HierarchicalAdvisor advisor(schema, 1'000,
                              UniformHWorkload(schema), options);
  for (Algorithm algo :
       {Algorithm::kOneGreedy, Algorithm::kInnerLevel, Algorithm::kTwoStep,
        Algorithm::kHruViewsOnly}) {
    AdvisorConfig config;
    config.algorithm = algo;
    config.space_budget = 1'000;
    config.two_step.strict_fit = true;
    HRecommendation rec = advisor.Recommend(config);
    EXPECT_LE(rec.average_query_cost, rec.initial_average_cost)
        << AlgorithmName(algo);
  }
}

TEST(HierarchicalAdvisorRuntimeTest, CreateSurfacesGraphBuildErrors) {
  HierarchicalSchema schema = Schema();
  StatusOr<HierarchicalAdvisor> bad = HierarchicalAdvisor::Create(
      schema, /*raw_rows=*/0.25, UniformHWorkload(schema));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  StatusOr<HierarchicalAdvisor> ok =
      HierarchicalAdvisor::Create(schema, 1'000, UniformHWorkload(schema));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  AdvisorConfig config;
  config.space_budget = 1'500;
  HRecommendation rec = ok->TryRecommend(config);
  EXPECT_TRUE(rec.status.ok());
  EXPECT_TRUE(rec.completed);
  EXPECT_FALSE(rec.structures.empty());
}

TEST(HierarchicalAdvisorRuntimeTest, DeadlineAndCancellationInterrupt) {
  HierarchicalSchema schema = Schema();
  HierarchicalAdvisor advisor(schema, 1'000, UniformHWorkload(schema));
  AdvisorConfig config;
  config.algorithm = Algorithm::kInnerLevel;
  config.space_budget = 2'000;
  config.control.deadline = Deadline::AfterMillis(0);  // already expired
  HRecommendation rec = advisor.TryRecommend(config);
  EXPECT_FALSE(rec.completed);
  EXPECT_EQ(rec.status.code(), StatusCode::kDeadlineExceeded);

  CancelToken token;
  token.Cancel();
  AdvisorConfig cancelled;
  cancelled.algorithm = Algorithm::kOneGreedy;
  cancelled.space_budget = 2'000;
  cancelled.control.cancel = &token;
  HRecommendation rec2 = advisor.TryRecommend(cancelled);
  EXPECT_FALSE(rec2.completed);
  EXPECT_EQ(rec2.status.code(), StatusCode::kCancelled);
}

TEST(HierarchicalAdvisorRuntimeTest, ResumeReproducesFullRunBitExactly) {
  HierarchicalSchema schema = Schema();
  HierarchicalAdvisor advisor(schema, 1'000, UniformHWorkload(schema));
  for (Algorithm algo : {Algorithm::kOneGreedy, Algorithm::kInnerLevel}) {
    SCOPED_TRACE(AlgorithmName(algo));
    AdvisorConfig config;
    config.algorithm = algo;
    config.space_budget = 2'500;
    HRecommendation full = advisor.TryRecommend(config);
    ASSERT_TRUE(full.status.ok());
    ASSERT_GE(full.structures.size(), 2u);

    AdvisorConfig limited = config;
    limited.control.max_steps = 1;
    HRecommendation partial = advisor.TryRecommend(limited);
    ASSERT_FALSE(partial.completed);
    EXPECT_EQ(partial.status.code(), StatusCode::kResourceExhausted);
    ASSERT_LT(partial.structures.size(), full.structures.size());
    HSelectionCheckpoint checkpoint = partial.ToCheckpoint(limited);

    HRecommendation resumed = advisor.TryRecommend(config, &checkpoint);
    ASSERT_TRUE(resumed.status.ok());
    EXPECT_TRUE(resumed.completed);
    ASSERT_EQ(resumed.structures.size(), full.structures.size());
    for (size_t i = 0; i < full.structures.size(); ++i) {
      EXPECT_EQ(resumed.structures[i].name, full.structures[i].name);
      EXPECT_EQ(resumed.structures[i].space, full.structures[i].space);
      EXPECT_EQ(resumed.structures[i].view, full.structures[i].view);
      EXPECT_EQ(resumed.structures[i].index_order,
                full.structures[i].index_order);
    }
    EXPECT_EQ(resumed.space_used, full.space_used);
    EXPECT_EQ(resumed.average_query_cost, full.average_query_cost);
    EXPECT_EQ(resumed.raw.pick_benefits, full.raw.pick_benefits);
  }
}

TEST(HierarchicalAdvisorRuntimeTest, RejectsMismatchedOrFlatCheckpoints) {
  HierarchicalSchema schema = Schema();
  HierarchicalAdvisor advisor(schema, 1'000, UniformHWorkload(schema));
  AdvisorConfig config;
  config.algorithm = Algorithm::kOneGreedy;
  config.space_budget = 2'000;
  config.control.max_steps = 1;
  HRecommendation partial = advisor.TryRecommend(config);
  HSelectionCheckpoint checkpoint = partial.ToCheckpoint(config);

  // Different algorithm tag.
  AdvisorConfig other = config;
  other.algorithm = Algorithm::kInnerLevel;
  EXPECT_EQ(advisor.TryRecommend(other, &checkpoint).status.code(),
            StatusCode::kInvalidArgument);
  // Different budget.
  AdvisorConfig rebudgeted = config;
  rebudgeted.space_budget = 999;
  EXPECT_EQ(advisor.TryRecommend(rebudgeted, &checkpoint).status.code(),
            StatusCode::kInvalidArgument);
  // A pick that does not exist in this lattice.
  HSelectionCheckpoint alien = checkpoint;
  alien.picks.push_back(HRecommendedStructure{
      LevelVector({7, 7}), {}, "bogus", 1.0});
  alien.pick_benefits.push_back(1.0);
  EXPECT_EQ(advisor.TryRecommend(config, &alien).status.code(),
            StatusCode::kInvalidArgument);
  // The flat-cube checkpoint slot is meaningless here.
  SelectionCheckpoint flat;
  AdvisorConfig with_flat = config;
  with_flat.resume = &flat;
  EXPECT_EQ(advisor.TryRecommend(with_flat).status.code(),
            StatusCode::kInvalidArgument);
}

TEST(HierarchicalAdvisorRuntimeTest, NonGreedyRejectsControlAndResume) {
  HierarchicalSchema schema = Schema();
  HierarchicalAdvisor advisor(schema, 1'000, UniformHWorkload(schema));
  AdvisorConfig config;
  config.algorithm = Algorithm::kTwoStep;
  config.space_budget = 1'000;
  config.control.max_steps = 3;
  EXPECT_EQ(advisor.TryRecommend(config).status.code(),
            StatusCode::kUnimplemented);

  AdvisorConfig with_resume;
  with_resume.algorithm = Algorithm::kTwoStep;
  with_resume.space_budget = 1'000;
  HSelectionCheckpoint checkpoint;
  checkpoint.algorithm = AlgorithmName(Algorithm::kTwoStep);
  checkpoint.space_budget = 1'000;
  EXPECT_EQ(advisor.TryRecommend(with_resume, &checkpoint).status.code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace olapidx
