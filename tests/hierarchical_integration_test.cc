// End-to-end pipeline on the hierarchical lattice: build the selection
// graph, choose structures with inner-level greedy, physically materialize
// them (leveled views + B-trees), execute the whole hierarchical workload,
// and verify both correctness (vs the naive executor) and the speedup the
// selection promised.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/inner_greedy.h"
#include "hierarchy/hierarchical_executor.h"
#include "hierarchy/hierarchical_graph.h"

namespace olapidx {
namespace {

HierarchicalSchema RetailSchema() {
  return HierarchicalSchema({
      HierarchicalDimension{"store",
                            {{"store", 60}, {"city", 12}, {"region", 4}}},
      HierarchicalDimension{"day", {{"day", 48}, {"month", 12}}},
      HierarchicalDimension{"promo", {{"promo", 6}}},
  });
}

TEST(HierarchicalPipelineTest, SelectMaterializeExecute) {
  HierarchicalSchema schema = RetailSchema();
  HierarchyMaps maps = HierarchyMaps::Balanced(schema);
  FactTable fact = GenerateHierarchicalFacts(schema, 2'000, /*seed=*/51);

  // Selection over analytical sizes for the generated row count.
  HierarchicalGraphOptions options;
  options.raw_scan_penalty = 2.0;
  HierarchicalCubeGraph cube = BuildHierarchicalCubeGraph(
      schema, static_cast<double>(fact.num_rows()),
      UniformHWorkload(schema), options);
  double total = 0.0;
  for (uint32_t v = 0; v < cube.graph.num_views(); ++v) {
    total += cube.graph.view_space(v) *
             (1.0 + static_cast<double>(cube.graph.num_indexes(v)));
  }
  SelectionResult selection = InnerLevelGreedy(cube.graph, 0.2 * total);
  ASSERT_FALSE(selection.picks.empty());

  // Materialize the picks.
  HierarchicalCatalog catalog(&fact, &maps);
  for (const StructureRef& s : selection.picks) {
    const LevelVector& levels = cube.view_levels[s.view];
    catalog.MaterializeView(levels);
    if (!s.is_view()) {
      catalog.BuildIndex(levels, cube.IndexOrderOf(s.view, s.index));
    }
  }

  // Execute every hierarchical slice query; check against naive and
  // accumulate the measured work.
  HierarchicalExecutor executor(&catalog);
  Pcg32 rng(9);
  double with_rows = 0.0;
  size_t executed = 0;
  size_t raw_fallbacks = 0;
  for (const HSliceQuery& q : EnumerateAllHQueries(schema)) {
    std::vector<uint32_t> values;
    for (int d = 0; d < schema.num_dimensions(); ++d) {
      if (q.role(d).kind == HDimRole::kSelect) {
        values.push_back(rng.NextBounded(static_cast<uint32_t>(
            schema.cardinality(d, q.role(d).level))));
      }
    }
    HExecutionStats stats;
    HGroupedResult fast = executor.Execute(q, values, &stats);
    HGroupedResult naive = executor.ExecuteNaive(q, values);
    ASSERT_EQ(fast.num_rows(), naive.num_rows()) << q.ToString(schema);
    for (size_t r = 0; r < fast.num_rows(); ++r) {
      ASSERT_EQ(fast.keys[r], naive.keys[r]);
      ASSERT_NEAR(fast.aggregates[r].sum, naive.aggregates[r].sum, 1e-6);
      ASSERT_EQ(fast.aggregates[r].count, naive.aggregates[r].count);
    }
    with_rows += static_cast<double>(stats.rows_processed);
    if (stats.used_raw) ++raw_fallbacks;
    ++executed;
  }

  // The physical design must pay off on average (raw = 2000 rows/query),
  // and the base view was selected, so nothing needs the raw table.
  double avg = with_rows / static_cast<double>(executed);
  EXPECT_LT(avg, 0.5 * static_cast<double>(fact.num_rows()));
  EXPECT_EQ(raw_fallbacks, 0u);
  // Engine space accounting matches the selection's estimate loosely
  // (analytical sizes vs measured materialization).
  EXPECT_NEAR(catalog.TotalSpaceRows(), selection.space_used,
              0.25 * selection.space_used);
}

}  // namespace
}  // namespace olapidx
