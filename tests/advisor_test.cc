#include "core/advisor.h"

#include <gtest/gtest.h>

#include "core/guarantees.h"
#include "data/synthetic.h"

namespace olapidx {
namespace {

class AdvisorTest : public ::testing::Test {
 protected:
  AdvisorTest()
      : cube_(UniformSyntheticCube(/*n=*/3, /*cardinality=*/100,
                                   /*sparsity=*/0.01)),
        lattice_(cube_.schema),
        advisor_(cube_.schema, cube_.sizes, AllSliceQueries(lattice_)) {}

  SyntheticCube cube_;
  CubeLattice lattice_;
  Advisor advisor_;
};

TEST_F(AdvisorTest, RecommendationIsConsistent) {
  AdvisorConfig config;
  config.algorithm = Algorithm::kInnerLevel;
  config.space_budget = cube_.sizes.TotalViewSpace() * 0.5;
  Recommendation rec = advisor_.Recommend(config);

  EXPECT_FALSE(rec.structures.empty());
  double space = 0.0;
  for (const RecommendedStructure& s : rec.structures) space += s.space;
  EXPECT_NEAR(space, rec.space_used, 1e-6);
  EXPECT_NEAR(rec.space_used, rec.raw.space_used, 1e-6);
  EXPECT_LT(rec.average_query_cost, rec.initial_average_cost);

  // Average query cost recomputed from per-query plans must equal the
  // algorithm's τ / total frequency.
  double total = 0.0, freq = 0.0;
  for (size_t i = 0; i < rec.plans.size(); ++i) {
    total += rec.plans[i].estimated_cost *
             advisor_.cube_graph().graph.query_frequency(
                 static_cast<uint32_t>(i));
    freq += advisor_.cube_graph().graph.query_frequency(
        static_cast<uint32_t>(i));
  }
  EXPECT_NEAR(total / freq, rec.average_query_cost,
              1e-6 * rec.average_query_cost);
}

TEST_F(AdvisorTest, AllAlgorithmsRun) {
  for (Algorithm algo :
       {Algorithm::kOneGreedy, Algorithm::kRGreedy, Algorithm::kInnerLevel,
        Algorithm::kTwoStep, Algorithm::kHruViewsOnly}) {
    AdvisorConfig config;
    config.algorithm = algo;
    config.space_budget = cube_.sizes.TotalViewSpace() * 0.3;
    config.r_greedy.r = 2;
    Recommendation rec = advisor_.Recommend(config);
    EXPECT_LE(rec.average_query_cost, rec.initial_average_cost)
        << AlgorithmName(algo);
  }
}

TEST_F(AdvisorTest, OptimalDominatesGreedyAtSameSpace) {
  AdvisorConfig greedy_config;
  greedy_config.algorithm = Algorithm::kRGreedy;
  greedy_config.r_greedy.r = 2;
  greedy_config.space_budget = cube_.sizes.TotalViewSpace() * 0.2;
  Recommendation greedy = advisor_.Recommend(greedy_config);

  AdvisorConfig opt_config;
  opt_config.algorithm = Algorithm::kOptimal;
  opt_config.space_budget = greedy.space_used;
  Recommendation optimal = advisor_.Recommend(opt_config);

  ASSERT_TRUE(optimal.raw.proven_optimal);
  EXPECT_LE(optimal.average_query_cost,
            greedy.average_query_cost + 1e-6);
  // Theorem 5.1 bound for r = 2.
  EXPECT_GE(greedy.raw.Benefit(),
            RGreedyGuarantee(2) * optimal.raw.Benefit() - 1e-6);
}

TEST(AdvisorNamesTest, AlgorithmNames) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kOneGreedy), "1-greedy");
  EXPECT_STREQ(AlgorithmName(Algorithm::kInnerLevel),
               "inner-level greedy");
  EXPECT_STREQ(AlgorithmName(Algorithm::kOptimal),
               "branch-and-bound optimal");
}

TEST(GuaranteesTest, PaperValues) {
  // Figure 3's anchor points.
  EXPECT_NEAR(RGreedyGuarantee(1), 0.0, 1e-12);
  EXPECT_NEAR(RGreedyGuarantee(2), 0.39, 0.005);
  EXPECT_NEAR(RGreedyGuarantee(3), 0.49, 0.005);
  EXPECT_NEAR(RGreedyGuarantee(4), 0.53, 0.005);
  EXPECT_NEAR(RGreedyGuarantee(1000), 1.0 - std::exp(-1.0), 1e-3);
  EXPECT_NEAR(InnerLevelGuarantee(), 0.467, 0.005);
  EXPECT_NEAR(HruGuarantee(), 0.632, 0.001);
  // Monotone increasing in r, inner-level between 2- and 3-greedy.
  EXPECT_GT(InnerLevelGuarantee(), RGreedyGuarantee(2));
  EXPECT_LT(InnerLevelGuarantee(), RGreedyGuarantee(3));
}

TEST(AdvisorCreateTest, SurfacesDimensionLimitAsStatus) {
  SyntheticCube cube = UniformSyntheticCube(9, 10, 0.5);
  Workload w;
  w.Add(SliceQuery(AttributeSet::Of({0}), AttributeSet()));
  StatusOr<Advisor> advisor = Advisor::Create(cube.schema, cube.sizes, w);
  ASSERT_FALSE(advisor.ok());
  EXPECT_EQ(advisor.status().code(), StatusCode::kInvalidArgument);
}

TEST(AdvisorCreateTest, BuildsAndRecommendsLikeTheConstructor) {
  SyntheticCube cube = UniformSyntheticCube(3, 100, 0.01);
  CubeLattice lattice(cube.schema);
  Workload workload = AllSliceQueries(lattice);
  StatusOr<Advisor> created =
      Advisor::Create(cube.schema, cube.sizes, workload);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  AdvisorConfig config;
  config.algorithm = Algorithm::kInnerLevel;
  config.space_budget = cube.sizes.TotalViewSpace() * 0.5;
  Recommendation via_create = created->Recommend(config);
  Advisor direct(cube.schema, cube.sizes, workload);
  Recommendation via_ctor = direct.Recommend(config);
  ASSERT_TRUE(via_create.status.ok());
  EXPECT_EQ(via_create.space_used, via_ctor.space_used);
  EXPECT_EQ(via_create.average_query_cost, via_ctor.average_query_cost);
  ASSERT_EQ(via_create.structures.size(), via_ctor.structures.size());
  for (size_t i = 0; i < via_create.structures.size(); ++i) {
    EXPECT_EQ(via_create.structures[i].name, via_ctor.structures[i].name);
  }
}

}  // namespace
}  // namespace olapidx
