// Parallel + memoized candidate evaluation: parallel-vs-serial and
// memoized-vs-rescan equivalence of the greedy cores, the dirty-set
// invalidation properties of SelectionState, and the subset-truncation
// counter.

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/cube_graph.h"
#include "core/inner_greedy.h"
#include "core/r_greedy.h"
#include "core/selection_state.h"
#include "data/example_graphs.h"
#include "data/synthetic.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

struct CubeSetup {
  CubeGraph cg;
  double budget = 0.0;
};

CubeSetup MakeCube(int n, uint64_t seed = 0) {
  SyntheticCube cube = seed == 0
                           ? UniformSyntheticCube(n, 100, 0.05)
                           : RandomSyntheticCube(n, 5, 500, 0.05, seed);
  CubeLattice lattice(cube.schema);
  CubeGraphOptions opts;
  opts.raw_scan_penalty = 2.0;
  CubeSetup setup{BuildCubeGraph(cube.schema, cube.sizes,
                                 AllSliceQueries(lattice), opts),
                  0.0};
  setup.budget = 0.25 * (cube.sizes.TotalViewSpace() +
                         cube.sizes.TotalFatIndexSpace());
  return setup;
}

// Bit-identical: same picks in the same order and bit-equal aggregates.
void ExpectIdenticalSelections(const SelectionResult& a,
                               const SelectionResult& b) {
  ASSERT_EQ(a.picks.size(), b.picks.size());
  for (size_t i = 0; i < a.picks.size(); ++i) {
    EXPECT_TRUE(a.picks[i] == b.picks[i]) << "pick " << i;
  }
  EXPECT_EQ(a.final_cost, b.final_cost);
  EXPECT_EQ(a.space_used, b.space_used);
  EXPECT_EQ(a.initial_cost, b.initial_cost);
}

TEST(ThreadPoolTest, ChunkBoundsCoverRangeExactly) {
  for (size_t n : {0u, 1u, 5u, 16u, 17u, 100u}) {
    for (size_t chunks : {1u, 2u, 3u, 7u, 16u}) {
      size_t covered = 0;
      size_t prev_end = 0;
      for (size_t c = 0; c < chunks; ++c) {
        auto [begin, end] = ThreadPool::ChunkBounds(n, chunks, c);
        EXPECT_EQ(begin, prev_end);
        EXPECT_LE(begin, end);
        covered += end - begin;
        prev_end = end;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(hits.size(), [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
  // Reusable for a second loop.
  size_t total = 0;
  std::vector<size_t> per_chunk(pool.num_threads(), 0);
  pool.ParallelFor(337, [&](size_t begin, size_t end, size_t chunk) {
    per_chunk[chunk] += end - begin;
  });
  for (size_t c : per_chunk) total += c;
  EXPECT_EQ(total, 337u);
}

TEST(ParallelEquivalenceTest, RGreedyParallelMatchesSerialBitExactly) {
  for (int n = 3; n <= 5; ++n) {
    CubeSetup setup = MakeCube(n);
    for (int r = 1; r <= 3; ++r) {
      if (n == 5 && r == 3) continue;  // covered (capped) below
      SelectionResult serial =
          RGreedy(setup.cg.graph, setup.budget,
                  RGreedyOptions{.r = r, .num_threads = 1,
                                 .memoize = false});
      SelectionResult parallel =
          RGreedy(setup.cg.graph, setup.budget,
                  RGreedyOptions{.r = r, .num_threads = 4});
      ExpectIdenticalSelections(serial, parallel);
      // Memoization may only reduce work, never change picks.
      EXPECT_LE(parallel.candidates_evaluated,
                serial.candidates_evaluated);
    }
  }
}

TEST(ParallelEquivalenceTest, RGreedyCappedSubsetsStillEquivalent) {
  CubeSetup setup = MakeCube(5);
  RGreedyOptions serial_opts{.r = 3, .max_subsets_per_view = 5'000,
                             .num_threads = 1, .memoize = false};
  RGreedyOptions parallel_opts{.r = 3, .max_subsets_per_view = 5'000,
                               .num_threads = 4};
  SelectionResult serial = RGreedy(setup.cg.graph, setup.budget,
                                   serial_opts);
  SelectionResult parallel = RGreedy(setup.cg.graph, setup.budget,
                                     parallel_opts);
  ExpectIdenticalSelections(serial, parallel);
}

TEST(ParallelEquivalenceTest, CacheHitRateNonzeroAfterStageOne) {
  CubeSetup setup = MakeCube(5);
  SelectionResult res = RGreedy(setup.cg.graph, setup.budget,
                                RGreedyOptions{.r = 2});
  ASSERT_GT(res.stats.stages, 1u);
  EXPECT_GT(res.stats.cache_hits, 0u);
  EXPECT_GT(res.stats.CacheHitRate(), 0.0);
  // One timing entry per pick-producing stage, plus possibly one final
  // barren scan when the loop ends by exhausting candidates rather than
  // the budget.
  EXPECT_GE(res.stats.stage_wall_micros.size(),
            static_cast<size_t>(res.stats.stages));
  EXPECT_LE(res.stats.stage_wall_micros.size(),
            static_cast<size_t>(res.stats.stages) + 1);
}

TEST(ParallelEquivalenceTest, InnerGreedyParallelMatchesSerialBitExactly) {
  for (int n = 3; n <= 5; ++n) {
    CubeSetup setup = MakeCube(n);
    SelectionResult serial = InnerLevelGreedy(
        setup.cg.graph, setup.budget,
        InnerGreedyOptions{.num_threads = 1, .memoize = false});
    SelectionResult parallel = InnerLevelGreedy(
        setup.cg.graph, setup.budget,
        InnerGreedyOptions{.num_threads = 4});
    ExpectIdenticalSelections(serial, parallel);
    EXPECT_LE(parallel.candidates_evaluated, serial.candidates_evaluated);
    if (parallel.stats.stages > 1) {
      EXPECT_GT(parallel.stats.cache_hits, 0u);
    }
  }
}

TEST(ParallelEquivalenceTest, RandomCubesAgreeAcrossConfigurations) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    CubeSetup setup = MakeCube(3, seed);
    for (int r = 1; r <= 3; ++r) {
      SelectionResult reference =
          RGreedy(setup.cg.graph, setup.budget,
                  RGreedyOptions{.r = r, .num_threads = 1,
                                 .memoize = false});
      for (size_t threads : {size_t{1}, size_t{3}}) {
        SelectionResult memoized = RGreedy(
            setup.cg.graph, setup.budget,
            RGreedyOptions{.r = r, .num_threads = threads});
        ExpectIdenticalSelections(reference, memoized);
      }
    }
  }
}

// ---- Dirty-set invalidation properties ----

TEST(CacheInvalidationTest, ApplyBumpsExactlyTheQuerySharingViews) {
  // a and b share q1; c is disjoint.
  QueryViewGraph g;
  uint32_t a = g.AddView("a", 1.0);
  uint32_t b = g.AddView("b", 1.0);
  uint32_t c = g.AddView("c", 1.0);
  uint32_t q1 = g.AddQuery("q1", 100.0);
  uint32_t q2 = g.AddQuery("q2", 100.0);
  g.AddViewEdge(q1, a, 10.0);
  g.AddViewEdge(q1, b, 20.0);
  g.AddViewEdge(q2, c, 10.0);
  g.Finalize();

  EXPECT_EQ(g.QueryViews(q1), (std::vector<uint32_t>{a, b}));
  EXPECT_EQ(g.QueryViews(q2), (std::vector<uint32_t>{c}));

  SelectionState state(&g);
  uint64_t va = state.ViewVersion(a), vb = state.ViewVersion(b),
           vc = state.ViewVersion(c);
  state.ApplyStructure(StructureRef{a, StructureRef::kNoIndex});
  EXPECT_GT(state.ViewVersion(a), va);  // its own pick
  EXPECT_GT(state.ViewVersion(b), vb);  // shares q1 with a
  EXPECT_EQ(state.ViewVersion(c), vc);  // disjoint: untouched
}

// Cross-checks memoized benefits against fresh CandidateBenefit
// recomputation after every stage of a single-structure greedy: clean
// views must be bit-exact, stale caches must be upper bounds
// (submodularity).
TEST(CacheInvalidationTest, CleanViewsExactStaleViewsUpperBounds) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    CubeSetup setup = MakeCube(3, seed);
    const QueryViewGraph& g = setup.cg.graph;
    SelectionState state(&g);

    struct Snapshot {
      Candidate cand;
      double benefit;
      uint64_t version;
    };

    for (int stage = 0; stage < 12; ++stage) {
      // Snapshot every currently-valid single-structure candidate.
      std::vector<Snapshot> snaps;
      for (uint32_t v = 0; v < g.num_views(); ++v) {
        if (!state.ViewSelected(v)) {
          Candidate cand{v, /*add_view=*/true, {}};
          snaps.push_back(Snapshot{cand, state.CandidateBenefit(cand),
                                   state.ViewVersion(v)});
        } else {
          for (int32_t k = 0; k < g.num_indexes(v); ++k) {
            if (state.IndexSelected(v, k)) continue;
            Candidate cand{v, /*add_view=*/false, {k}};
            snaps.push_back(Snapshot{cand, state.CandidateBenefit(cand),
                                     state.ViewVersion(v)});
          }
        }
      }

      // Greedy pick: best positive benefit-per-space snapshot.
      const Snapshot* best = nullptr;
      double best_ratio = 0.0;
      for (const Snapshot& s : snaps) {
        if (s.benefit <= 0.0) continue;
        double ratio = s.benefit / state.CandidateSpace(s.cand);
        if (best == nullptr || ratio > best_ratio) {
          best = &s;
          best_ratio = ratio;
        }
      }
      if (best == nullptr) break;
      Candidate picked = best->cand;
      state.Apply(picked);

      for (const Snapshot& s : snaps) {
        // Skip candidates invalidated by the pick itself.
        if (s.cand.view == picked.view) continue;
        double fresh = state.CandidateBenefit(s.cand);
        if (state.ViewVersion(s.cand.view) == s.version) {
          // Clean: the memoized value must be bit-exact.
          EXPECT_EQ(fresh, s.benefit)
              << "seed " << seed << " stage " << stage << " view "
              << s.cand.view;
        } else {
          // Stale: monotonicity makes the cached value an upper bound.
          EXPECT_LE(fresh, s.benefit + 1e-9)
              << "seed " << seed << " stage " << stage << " view "
              << s.cand.view;
        }
      }
    }
  }
}

// ---- Subset truncation accounting ----

TEST(TruncationTest, CapIsCountedUncappedIsNot) {
  QueryViewGraph g = Figure2Instance();
  SelectionResult exact =
      RGreedy(g, kFigure2Budget, RGreedyOptions{.r = 3});
  EXPECT_EQ(exact.candidates_truncated, 0u);
  SelectionResult capped = RGreedy(
      g, kFigure2Budget,
      RGreedyOptions{.r = 3, .max_subsets_per_view = 1});
  EXPECT_GT(capped.candidates_truncated, 0u);
}

}  // namespace
}  // namespace olapidx
