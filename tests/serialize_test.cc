#include "core/serialize.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "cost/calibrated_cost_model.h"
#include "data/tpcd.h"

namespace olapidx {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  CubeSchema schema_ = TpcdSchema();
};

TEST_F(SerializeTest, DesignRoundTrip) {
  CubeLattice lattice(schema_);
  CubeGraphOptions opts;
  opts.raw_scan_penalty = 2.0;
  Advisor advisor(schema_, TpcdPaperSizes(), AllSliceQueries(lattice),
                  opts);
  AdvisorConfig config;
  config.algorithm = Algorithm::kOneGreedy;
  config.space_budget = kTpcdExampleBudget;
  Recommendation rec = advisor.Recommend(config);
  ASSERT_FALSE(rec.structures.empty());

  std::string text = SerializeDesign(rec.structures, schema_);
  StatusOr<std::vector<RecommendedStructure>> parsed =
      ParseDesign(text, schema_);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), rec.structures.size());
  for (size_t i = 0; i < parsed->size(); ++i) {
    EXPECT_EQ((*parsed)[i].view, rec.structures[i].view);
    EXPECT_TRUE((*parsed)[i].index == rec.structures[i].index);
  }
}

TEST_F(SerializeTest, DesignParsesHandWrittenFile) {
  const char* text =
      "olapidx-design v1\n"
      "# production design, 2026-07\n"
      "view p,s\n"
      "index p,s : s,p\n"
      "view none\n";
  StatusOr<std::vector<RecommendedStructure>> parsed =
      ParseDesign(text, schema_);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[0].view, AttributeSet::Of({0, 1}));
  EXPECT_TRUE((*parsed)[0].is_view());
  EXPECT_TRUE((*parsed)[1].index == IndexKey({1, 0}));  // s,p ordering
  EXPECT_TRUE((*parsed)[2].view.empty());
}

TEST_F(SerializeTest, DesignRejectsBadInput) {
  Status s = ParseDesign("view p\n", schema_).status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("header"), std::string::npos);
  EXPECT_FALSE(ParseDesign("olapidx-design v1\nview q\n", schema_).ok());
  s = ParseDesign("olapidx-design v1\nview p\nindex p : s\n", schema_)
          .status();
  EXPECT_NE(s.message().find("outside its view"), std::string::npos);
  EXPECT_FALSE(ParseDesign("olapidx-design v1\nfrobnicate\n", schema_)
                   .ok());
}

TEST_F(SerializeTest, DesignRejectsDuplicateStructures) {
  Status s = ParseDesign("olapidx-design v1\nview p\nview p\n", schema_)
                 .status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("duplicate view"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.message().find("line 3"), std::string::npos);
  s = ParseDesign(
          "olapidx-design v1\nview p,s\nindex p,s : s,p\n"
          "index p,s : s,p\n",
          schema_)
          .status();
  EXPECT_NE(s.message().find("duplicate index"), std::string::npos)
      << s.ToString();
}

TEST_F(SerializeTest, DesignRejectsIndexOnUnmaterializedView) {
  Status s =
      ParseDesign("olapidx-design v1\nindex p,s : s,p\n", schema_).status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("unmaterialized view"), std::string::npos)
      << s.ToString();
  // The view line must *precede* the index line.
  s = ParseDesign("olapidx-design v1\nindex p,s : s,p\nview p,s\n",
                  schema_)
          .status();
  EXPECT_NE(s.message().find("unmaterialized view"), std::string::npos);
}

TEST_F(SerializeTest, SizesRoundTrip) {
  ViewSizes original = TpcdPaperSizes();
  std::string text = SerializeViewSizes(original, schema_);
  StatusOr<ViewSizes> parsed = ParseViewSizes(text, schema_);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  for (uint32_t v = 0; v < original.num_views(); ++v) {
    EXPECT_EQ((*parsed)[v], original[v]) << "view " << v;
  }
}

TEST_F(SerializeTest, SizesRejectIncomplete) {
  const char* text =
      "olapidx-sizes v1\n"
      "size p 200000\n";
  Status s = ParseViewSizes(text, schema_).status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("missing sizes"), std::string::npos);
}

TEST_F(SerializeTest, SizesRejectGarbage) {
  EXPECT_FALSE(ParseViewSizes("olapidx-sizes v1\nsize p many\n", schema_)
                   .ok());
  EXPECT_FALSE(ParseViewSizes("nonsense\n", schema_).ok());
}

TEST_F(SerializeTest, SizesRejectDuplicateSubcube) {
  ViewSizes original = TpcdPaperSizes();
  std::string text = SerializeViewSizes(original, schema_);
  text += "size p 12345\n";  // second line for subcube {p}
  Status s = ParseViewSizes(text, schema_).status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("duplicate size"), std::string::npos)
      << s.ToString();
}

TEST_F(SerializeTest, CheckpointRoundTrip) {
  SelectionCheckpoint checkpoint;
  checkpoint.algorithm = "inner-level greedy";
  checkpoint.space_budget = 123456.75;
  checkpoint.stages = 2;
  RecommendedStructure view;
  view.view = AttributeSet::Of({0, 1});
  RecommendedStructure index;
  index.view = AttributeSet::Of({0, 1});
  index.index = IndexKey({1, 0});
  checkpoint.picks = {view, index};
  checkpoint.pick_benefits = {5000.25, 1250.0625};

  std::string text = SerializeCheckpoint(checkpoint, schema_);
  StatusOr<SelectionCheckpoint> parsed = ParseCheckpoint(text, schema_);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->algorithm, checkpoint.algorithm);
  EXPECT_EQ(parsed->space_budget, checkpoint.space_budget);  // bit-exact
  EXPECT_EQ(parsed->stages, checkpoint.stages);
  ASSERT_EQ(parsed->picks.size(), 2u);
  EXPECT_EQ(parsed->picks[0].view, view.view);
  EXPECT_TRUE(parsed->picks[0].is_view());
  EXPECT_TRUE(parsed->picks[1].index == index.index);
  EXPECT_EQ(parsed->pick_benefits, checkpoint.pick_benefits);  // bit-exact
}

TEST_F(SerializeTest, CheckpointRejectsMalformedInput) {
  // Missing header.
  EXPECT_FALSE(ParseCheckpoint("algorithm x\n", schema_).ok());
  // Missing required fields.
  Status s = ParseCheckpoint("olapidx-checkpoint v1\nbudget 5\nstages 0\n",
                             schema_)
                 .status();
  EXPECT_NE(s.message().find("missing 'algorithm'"), std::string::npos)
      << s.ToString();
  // Bad pick benefit.
  EXPECT_FALSE(
      ParseCheckpoint("olapidx-checkpoint v1\nalgorithm a\nbudget 5\n"
                      "stages 1\npick nope view p\n",
                      schema_)
          .ok());
  // Index pick before its view pick.
  s = ParseCheckpoint("olapidx-checkpoint v1\nalgorithm a\nbudget 5\n"
                      "stages 1\npick 1 index p,s : s,p\n",
                      schema_)
          .status();
  EXPECT_NE(s.message().find("unmaterialized view"), std::string::npos)
      << s.ToString();
  // More stages than picks.
  EXPECT_FALSE(
      ParseCheckpoint("olapidx-checkpoint v1\nalgorithm a\nbudget 5\n"
                      "stages 3\npick 1 view p\n",
                      schema_)
          .ok());
}

TEST_F(SerializeTest, CheckpointFingerprintRoundTripsBitExactly) {
  SelectionCheckpoint checkpoint;
  checkpoint.algorithm = "1-greedy";
  checkpoint.space_budget = 42.0;
  checkpoint.stages = 1;
  checkpoint.graph_fingerprint = 0x6b6f2a9c01e4d357ull;
  RecommendedStructure view;
  view.view = AttributeSet::Of({0});
  checkpoint.picks = {view};
  checkpoint.pick_benefits = {7.5};

  std::string text = SerializeCheckpoint(checkpoint, schema_);
  EXPECT_NE(text.find("graph 6b6f2a9c01e4d357"), std::string::npos) << text;
  StatusOr<SelectionCheckpoint> parsed = ParseCheckpoint(text, schema_);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->graph_fingerprint, checkpoint.graph_fingerprint);
}

TEST_F(SerializeTest, CheckpointWithoutFingerprintStaysLegacy) {
  // A checkpoint that was never stamped serializes with no 'graph' line
  // and parses back with fingerprint 0 — the not-stamped sentinel.
  SelectionCheckpoint checkpoint;
  checkpoint.algorithm = "1-greedy";
  checkpoint.space_budget = 42.0;
  checkpoint.stages = 0;

  std::string text = SerializeCheckpoint(checkpoint, schema_);
  EXPECT_EQ(text.find("graph "), std::string::npos) << text;
  StatusOr<SelectionCheckpoint> parsed = ParseCheckpoint(text, schema_);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->graph_fingerprint, 0u);
}

TEST_F(SerializeTest, CheckpointRejectsBadFingerprintLines) {
  const char* prefix =
      "olapidx-checkpoint v1\nalgorithm a\nbudget 5\nstages 0\n";
  // Not 16 hex digits.
  Status s = ParseCheckpoint(std::string(prefix) + "graph xyz\n", schema_)
                 .status();
  EXPECT_NE(s.message().find("bad graph fingerprint"), std::string::npos)
      << s.ToString();
  // Zero is the "no fingerprint" sentinel; writing it out is malformed.
  EXPECT_FALSE(ParseCheckpoint(
                   std::string(prefix) + "graph 0000000000000000\n",
                   schema_)
                   .ok());
  // Duplicate line.
  EXPECT_FALSE(ParseCheckpoint(std::string(prefix) +
                                   "graph 00000000000000ff\n"
                                   "graph 00000000000000ff\n",
                               schema_)
                   .ok());
}

TEST_F(SerializeTest, AdvisorRejectsCheckpointFromDifferentGraph) {
  CubeLattice lattice(schema_);
  CubeGraphOptions opts;
  opts.raw_scan_penalty = 2.0;
  Advisor advisor(schema_, TpcdPaperSizes(), AllSliceQueries(lattice),
                  opts);
  AdvisorConfig config;
  config.algorithm = Algorithm::kOneGreedy;
  config.space_budget = kTpcdExampleBudget;
  config.control.max_steps = 1;
  Recommendation partial = advisor.Recommend(config);
  ASSERT_FALSE(partial.completed);
  SelectionCheckpoint checkpoint = partial.ToCheckpoint(config);
  ASSERT_EQ(checkpoint.graph_fingerprint, advisor.graph_fingerprint());
  ASSERT_NE(checkpoint.graph_fingerprint, 0u);

  // Same schema, different sizes -> different graph -> rejected resume.
  ViewSizes other_sizes = TpcdPaperSizes();
  other_sizes.Set(AttributeSet::Of({0}), 999);
  Advisor other(schema_, other_sizes, AllSliceQueries(lattice), opts);
  ASSERT_NE(other.graph_fingerprint(), advisor.graph_fingerprint());
  AdvisorConfig resume_config = config;
  resume_config.control = RunControl{};
  resume_config.resume = &checkpoint;
  Recommendation rejected = other.Recommend(resume_config);
  EXPECT_EQ(rejected.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(rejected.status.message().find("different query-view graph"),
            std::string::npos)
      << rejected.status.ToString();

  // Clearing the fingerprint opts into the cross-graph warm start.
  checkpoint.graph_fingerprint = 0;
  Recommendation accepted = other.Recommend(resume_config);
  EXPECT_TRUE(accepted.status.ok() || accepted.status.IsInterruption())
      << accepted.status.ToString();
}

// ---------------------------------------------------------------------------
// "olapidx-costmodel v1" (cost/calibrated_cost_model.h).
// ---------------------------------------------------------------------------

TEST(CostModelSerializeTest, SerializeParseRoundTripIsBitIdentical) {
  // Coefficients with no short decimal representation: hexfloat output
  // must reproduce every bit.
  CalibrationCoefficients coefficients;
  coefficients.per_row = 1.0 / 3.0;
  coefficients.per_node = 0.1 + 0.2;
  coefficients.fixed = 12345.6789e-3;
  CalibratedCostModel model(coefficients, /*btree_fanout=*/128);

  std::string text = model.Serialize();
  StatusOr<CalibratedCostModel> parsed = CalibratedCostModel::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->coefficients().per_row, coefficients.per_row);
  EXPECT_EQ(parsed->coefficients().per_node, coefficients.per_node);
  EXPECT_EQ(parsed->coefficients().fixed, coefficients.fixed);
  EXPECT_EQ(parsed->btree_fanout(), 128);
  EXPECT_EQ(parsed->Serialize(), text);
}

TEST(CostModelSerializeTest, SaveLoadRoundTripIsBitIdentical) {
  CalibratedCostModel model({3.14159e-2, 271.828, 0.0});
  const std::string path =
      ::testing::TempDir() + "/serialize_test_costmodel.txt";
  ASSERT_TRUE(model.Save(path).ok());
  StatusOr<CalibratedCostModel> loaded = CalibratedCostModel::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->Serialize(), model.Serialize());
  std::remove(path.c_str());
}

TEST(CostModelSerializeTest, ParseRejectsMalformedInput) {
  auto code = [](const std::string& text) {
    return CalibratedCostModel::Parse(text).status().code();
  };
  EXPECT_EQ(code(""), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("olapidx-design v1\n"), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("olapidx-costmodel v2\nfanout 64\nper_row 1\n"
                 "per_node 0\nfixed 0\n"),
            StatusCode::kInvalidArgument);
  // Missing a line.
  EXPECT_EQ(code("olapidx-costmodel v1\nfanout 64\nper_row 1\n"),
            StatusCode::kInvalidArgument);
  // Wrong key order.
  EXPECT_EQ(code("olapidx-costmodel v1\nfanout 64\nper_node 0\n"
                 "per_row 1\nfixed 0\n"),
            StatusCode::kInvalidArgument);
  // Fanout must be an integer >= 2.
  EXPECT_EQ(code("olapidx-costmodel v1\nfanout 1\nper_row 1\n"
                 "per_node 0\nfixed 0\n"),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(code("olapidx-costmodel v1\nfanout 6.5\nper_row 1\n"
                 "per_node 0\nfixed 0\n"),
            StatusCode::kInvalidArgument);
  // Non-finite coefficient.
  EXPECT_EQ(code("olapidx-costmodel v1\nfanout 64\nper_row inf\n"
                 "per_node 0\nfixed 0\n"),
            StatusCode::kInvalidArgument);
}

TEST(CostModelSerializeTest, LoadMissingFileIsInvalidArgument) {
  StatusOr<CalibratedCostModel> loaded = CalibratedCostModel::Load(
      ::testing::TempDir() + "/serialize_test_no_such_model.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace olapidx
