#include "core/serialize.h"

#include <gtest/gtest.h>

#include "data/tpcd.h"

namespace olapidx {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  CubeSchema schema_ = TpcdSchema();
  std::string error_;
};

TEST_F(SerializeTest, DesignRoundTrip) {
  CubeLattice lattice(schema_);
  CubeGraphOptions opts;
  opts.raw_scan_penalty = 2.0;
  Advisor advisor(schema_, TpcdPaperSizes(), AllSliceQueries(lattice),
                  opts);
  AdvisorConfig config;
  config.algorithm = Algorithm::kOneGreedy;
  config.space_budget = kTpcdExampleBudget;
  Recommendation rec = advisor.Recommend(config);
  ASSERT_FALSE(rec.structures.empty());

  std::string text = SerializeDesign(rec.structures, schema_);
  std::vector<RecommendedStructure> parsed;
  ASSERT_TRUE(ParseDesign(text, schema_, &parsed, &error_)) << error_;
  ASSERT_EQ(parsed.size(), rec.structures.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].view, rec.structures[i].view);
    EXPECT_TRUE(parsed[i].index == rec.structures[i].index);
  }
}

TEST_F(SerializeTest, DesignParsesHandWrittenFile) {
  const char* text =
      "olapidx-design v1\n"
      "# production design, 2026-07\n"
      "view p,s\n"
      "index p,s : s,p\n"
      "view none\n";
  std::vector<RecommendedStructure> parsed;
  ASSERT_TRUE(ParseDesign(text, schema_, &parsed, &error_)) << error_;
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].view, AttributeSet::Of({0, 1}));
  EXPECT_TRUE(parsed[0].is_view());
  EXPECT_TRUE(parsed[1].index == IndexKey({1, 0}));  // s,p ordering
  EXPECT_TRUE(parsed[2].view.empty());
}

TEST_F(SerializeTest, DesignRejectsBadInput) {
  std::vector<RecommendedStructure> parsed;
  EXPECT_FALSE(ParseDesign("view p\n", schema_, &parsed, &error_));
  EXPECT_NE(error_.find("header"), std::string::npos);
  EXPECT_FALSE(ParseDesign("olapidx-design v1\nview q\n", schema_, &parsed,
                           &error_));
  EXPECT_FALSE(ParseDesign("olapidx-design v1\nindex p : s\n", schema_,
                           &parsed, &error_));
  EXPECT_NE(error_.find("outside its view"), std::string::npos);
  EXPECT_FALSE(ParseDesign("olapidx-design v1\nfrobnicate\n", schema_,
                           &parsed, &error_));
}

TEST_F(SerializeTest, SizesRoundTrip) {
  ViewSizes original = TpcdPaperSizes();
  std::string text = SerializeViewSizes(original, schema_);
  ViewSizes parsed;
  ASSERT_TRUE(ParseViewSizes(text, schema_, &parsed, &error_)) << error_;
  for (uint32_t v = 0; v < original.num_views(); ++v) {
    EXPECT_EQ(parsed[v], original[v]) << "view " << v;
  }
}

TEST_F(SerializeTest, SizesRejectIncomplete) {
  const char* text =
      "olapidx-sizes v1\n"
      "size p 200000\n";
  ViewSizes parsed;
  EXPECT_FALSE(ParseViewSizes(text, schema_, &parsed, &error_));
  EXPECT_NE(error_.find("missing sizes"), std::string::npos);
}

TEST_F(SerializeTest, SizesRejectGarbage) {
  ViewSizes parsed;
  EXPECT_FALSE(ParseViewSizes("olapidx-sizes v1\nsize p many\n", schema_,
                              &parsed, &error_));
  EXPECT_FALSE(ParseViewSizes("nonsense\n", schema_, &parsed, &error_));
}

}  // namespace
}  // namespace olapidx
