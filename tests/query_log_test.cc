#include "workload/query_log.h"

#include <gtest/gtest.h>

#include "data/tpcd.h"

namespace olapidx {
namespace {

class QueryLogTest : public ::testing::Test {
 protected:
  CubeSchema schema_ = TpcdSchema();  // dims p, s, c
  Workload workload_;
  std::string error_;
};

TEST_F(QueryLogTest, ParsesBasicLines) {
  const char* log =
      "# a comment\n"
      "c ; p,s ; 120\n"
      "p,c ; - ; 3\n"
      "\n"
      "- ; p ; 15\n";
  ASSERT_TRUE(ParseQueryLog(log, schema_, &workload_, &error_)) << error_;
  ASSERT_EQ(workload_.size(), 3u);
  EXPECT_EQ(workload_[0].query.group_by(), AttributeSet::Of({2}));
  EXPECT_EQ(workload_[0].query.selection(), AttributeSet::Of({0, 1}));
  EXPECT_EQ(workload_[0].frequency, 120.0);
  EXPECT_EQ(workload_[1].query.group_by(), AttributeSet::Of({0, 2}));
  EXPECT_TRUE(workload_[1].query.selection().empty());
  EXPECT_EQ(workload_[2].frequency, 15.0);
}

TEST_F(QueryLogTest, DefaultCountIsOne) {
  ASSERT_TRUE(ParseQueryLog("p ; s\n", schema_, &workload_, &error_));
  ASSERT_EQ(workload_.size(), 1u);
  EXPECT_EQ(workload_[0].frequency, 1.0);
}

TEST_F(QueryLogTest, RepeatedQueriesAccumulate) {
  const char* log =
      "p ; s ; 2\n"
      "c ; - ; 1\n"
      "p ; s ; 5\n";
  ASSERT_TRUE(ParseQueryLog(log, schema_, &workload_, &error_));
  ASSERT_EQ(workload_.size(), 2u);
  EXPECT_EQ(workload_[0].frequency, 7.0);
}

TEST_F(QueryLogTest, TrailingCommentOnDataLine) {
  ASSERT_TRUE(ParseQueryLog("p ; s ; 4 # dashboards\n", schema_,
                            &workload_, &error_));
  EXPECT_EQ(workload_[0].frequency, 4.0);
}

TEST_F(QueryLogTest, RejectsUnknownDimension) {
  EXPECT_FALSE(ParseQueryLog("q ; - ; 1\n", schema_, &workload_, &error_));
  EXPECT_NE(error_.find("line 1"), std::string::npos);
  EXPECT_NE(error_.find("unknown dimension"), std::string::npos);
}

TEST_F(QueryLogTest, RejectsOverlap) {
  EXPECT_FALSE(ParseQueryLog("p ; p ; 1\n", schema_, &workload_, &error_));
  EXPECT_NE(error_.find("overlap"), std::string::npos);
}

TEST_F(QueryLogTest, RejectsBadCount) {
  EXPECT_FALSE(
      ParseQueryLog("p ; s ; zero\n", schema_, &workload_, &error_));
  EXPECT_FALSE(ParseQueryLog("p ; s ; -2\n", schema_, &workload_, &error_));
}

TEST_F(QueryLogTest, RejectsWrongArity) {
  EXPECT_FALSE(ParseQueryLog("p\n", schema_, &workload_, &error_));
  EXPECT_FALSE(
      ParseQueryLog("p ; s ; 1 ; extra\n", schema_, &workload_, &error_));
}

TEST_F(QueryLogTest, RejectsDuplicateAttr) {
  EXPECT_FALSE(
      ParseQueryLog("p,p ; s ; 1\n", schema_, &workload_, &error_));
  EXPECT_NE(error_.find("duplicate"), std::string::npos);
}

TEST_F(QueryLogTest, RoundTrip) {
  const char* log =
      "c ; p,s ; 120\n"
      "p,c ; - ; 3\n"
      "- ; p ; 15\n";
  ASSERT_TRUE(ParseQueryLog(log, schema_, &workload_, &error_));
  std::string rendered = FormatQueryLog(workload_, schema_);
  Workload reparsed;
  ASSERT_TRUE(ParseQueryLog(rendered, schema_, &reparsed, &error_));
  ASSERT_EQ(reparsed.size(), workload_.size());
  for (size_t i = 0; i < workload_.size(); ++i) {
    EXPECT_TRUE(reparsed[i].query == workload_[i].query);
    EXPECT_EQ(reparsed[i].frequency, workload_[i].frequency);
  }
}

TEST_F(QueryLogTest, EmptyLogIsEmptyWorkload) {
  ASSERT_TRUE(ParseQueryLog("# nothing\n\n", schema_, &workload_, &error_));
  EXPECT_TRUE(workload_.empty());
}

}  // namespace
}  // namespace olapidx
