#include "engine/btree.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace olapidx {
namespace {

std::vector<std::pair<uint64_t, uint32_t>> CollectAll(const BPlusTree& t) {
  std::vector<std::pair<uint64_t, uint32_t>> out;
  t.ScanRange(0, ~0ULL, [&](uint64_t k, uint32_t v) {
    out.emplace_back(k, v);
  });
  return out;
}

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.height(), 0);
  EXPECT_EQ(t.ScanRange(0, ~0ULL, [](uint64_t, uint32_t) {}), 0u);
  t.CheckInvariants();
}

TEST(BPlusTreeTest, SingleInsertAndScan) {
  BPlusTree t;
  t.Insert(42, 7);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.height(), 1);
  auto all = CollectAll(t);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], std::make_pair(uint64_t{42}, uint32_t{7}));
  t.CheckInvariants();
}

TEST(BPlusTreeTest, SplitsGrowHeight) {
  BPlusTree t(/*fanout=*/4);
  for (uint32_t i = 0; i < 100; ++i) t.Insert(i, i);
  EXPECT_EQ(t.size(), 100u);
  EXPECT_GT(t.height(), 2);
  t.CheckInvariants();
  auto all = CollectAll(t);
  ASSERT_EQ(all.size(), 100u);
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(all[i].first, i);
    EXPECT_EQ(all[i].second, i);
  }
}

TEST(BPlusTreeTest, RangeScanBounds) {
  BPlusTree t(/*fanout=*/4);
  for (uint64_t i = 0; i < 50; ++i) t.Insert(i * 2, static_cast<uint32_t>(i));
  // [10, 20] contains even keys 10..20: 6 entries.
  size_t n = t.ScanRange(10, 20, [&](uint64_t k, uint32_t) {
    EXPECT_GE(k, 10u);
    EXPECT_LE(k, 20u);
  });
  EXPECT_EQ(n, 6u);
  // Range between keys.
  EXPECT_EQ(t.ScanRange(11, 11, [](uint64_t, uint32_t) {}), 0u);
  // Range past the end.
  EXPECT_EQ(t.ScanRange(1000, 2000, [](uint64_t, uint32_t) {}), 0u);
}

TEST(BPlusTreeTest, DuplicateKeys) {
  BPlusTree t(/*fanout=*/4);
  for (uint32_t v = 0; v < 30; ++v) t.Insert(5, v);
  for (uint32_t v = 0; v < 10; ++v) t.Insert(7, 100 + v);
  t.CheckInvariants();
  EXPECT_EQ(t.ScanRange(5, 5, [](uint64_t, uint32_t) {}), 30u);
  EXPECT_EQ(t.ScanRange(7, 7, [](uint64_t, uint32_t) {}), 10u);
  EXPECT_EQ(t.ScanRange(5, 7, [](uint64_t, uint32_t) {}), 40u);
}

TEST(BPlusTreeTest, BulkLoadMatchesInserts) {
  std::vector<std::pair<uint64_t, uint32_t>> entries;
  Pcg32 rng(3);
  for (uint32_t i = 0; i < 1'000; ++i) {
    entries.emplace_back(rng.NextBounded(500), i);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  BPlusTree bulk(/*fanout=*/8);
  bulk.BulkLoad(entries);
  bulk.CheckInvariants();
  EXPECT_EQ(bulk.size(), entries.size());

  BPlusTree inserted(/*fanout=*/8);
  for (const auto& [k, v] : entries) inserted.Insert(k, v);
  inserted.CheckInvariants();

  // Same multiset of (key, value) pairs in both.
  auto a = CollectAll(bulk);
  auto b = CollectAll(inserted);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(BPlusTreeTest, BulkLoadSingletonTailRebalanced) {
  // fanout 4, 5 entries: naive chunking would leave a 1-entry final leaf.
  std::vector<std::pair<uint64_t, uint32_t>> entries;
  for (uint32_t i = 0; i < 5; ++i) entries.emplace_back(i, i);
  BPlusTree t(/*fanout=*/4);
  t.BulkLoad(entries);
  t.CheckInvariants();
  EXPECT_EQ(t.size(), 5u);
  auto all = CollectAll(t);
  ASSERT_EQ(all.size(), 5u);
}

TEST(BPlusTreeTest, InsertAfterBulkLoad) {
  std::vector<std::pair<uint64_t, uint32_t>> entries;
  for (uint32_t i = 0; i < 200; ++i) entries.emplace_back(i * 3, i);
  BPlusTree t(/*fanout=*/8);
  t.BulkLoad(entries);
  // Interleave new keys between and beyond the loaded ones.
  for (uint32_t i = 0; i < 100; ++i) t.Insert(i * 6 + 1, 1000 + i);
  t.CheckInvariants();
  EXPECT_EQ(t.size(), 300u);
  EXPECT_EQ(t.ScanRange(0, ~0ULL, [](uint64_t, uint32_t) {}), 300u);
  EXPECT_EQ(t.ScanRange(1, 1, [](uint64_t, uint32_t) {}), 1u);
}

TEST(BPlusTreeTest, DuplicateBlockSpanningManyLeaves) {
  BPlusTree t(/*fanout=*/4);
  // 100 duplicates of one key surrounded by neighbours.
  t.Insert(5, 0);
  for (uint32_t v = 0; v < 100; ++v) t.Insert(10, v);
  t.Insert(15, 1);
  t.CheckInvariants();
  size_t seen = 0;
  t.ScanRange(10, 10, [&](uint64_t k, uint32_t) {
    EXPECT_EQ(k, 10u);
    ++seen;
  });
  EXPECT_EQ(seen, 100u);
  EXPECT_EQ(t.ScanRange(0, 9, [](uint64_t, uint32_t) {}), 1u);
  EXPECT_EQ(t.ScanRange(11, 20, [](uint64_t, uint32_t) {}), 1u);
}

TEST(BPlusTreeTest, ExtremeKeys) {
  BPlusTree t(/*fanout=*/4);
  t.Insert(0, 1);
  t.Insert(~0ULL, 2);
  t.Insert(~0ULL - 1, 3);
  t.CheckInvariants();
  EXPECT_EQ(t.ScanRange(~0ULL, ~0ULL, [](uint64_t, uint32_t) {}), 1u);
  EXPECT_EQ(t.ScanRange(0, 0, [](uint64_t, uint32_t) {}), 1u);
  EXPECT_EQ(t.ScanRange(0, ~0ULL, [](uint64_t, uint32_t) {}), 3u);
}

TEST(BPlusTreeTest, MoveSemantics) {
  BPlusTree a(/*fanout=*/4);
  for (uint32_t i = 0; i < 20; ++i) a.Insert(i, i);
  BPlusTree b = std::move(a);
  EXPECT_EQ(b.size(), 20u);
  b.CheckInvariants();
  BPlusTree c(/*fanout=*/4);
  c = std::move(b);
  EXPECT_EQ(c.size(), 20u);
  c.CheckInvariants();
}

// Model-based property test: the tree must agree with std::multimap on
// random workloads across fanouts.
class BPlusTreeModelTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(BPlusTreeModelTest, AgreesWithMultimap) {
  auto [fanout, seed] = GetParam();
  BPlusTree tree(fanout);
  std::multimap<uint64_t, uint32_t> model;
  Pcg32 rng(seed);
  for (uint32_t i = 0; i < 2'000; ++i) {
    uint64_t key = rng.NextBounded(300);
    tree.Insert(key, i);
    model.emplace(key, i);
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), model.size());
  // Random range scans agree on count and key multiset.
  for (int trial = 0; trial < 50; ++trial) {
    uint64_t lo = rng.NextBounded(320);
    uint64_t hi = lo + rng.NextBounded(60);
    std::vector<uint64_t> tree_keys;
    tree.ScanRange(lo, hi, [&](uint64_t k, uint32_t) {
      tree_keys.push_back(k);
    });
    std::vector<uint64_t> model_keys;
    for (auto it = model.lower_bound(lo);
         it != model.end() && it->first <= hi; ++it) {
      model_keys.push_back(it->first);
    }
    EXPECT_EQ(tree_keys, model_keys) << "range [" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    FanoutsAndSeeds, BPlusTreeModelTest,
    ::testing::Combine(::testing::Values(3, 4, 8, 64),
                       ::testing::Values(1u, 2u, 3u)));

TEST(BPlusTreeDeathTest, TinyFanoutRejected) {
  EXPECT_DEATH(BPlusTree(2), "CHECK");
}

TEST(BPlusTreeDeathTest, BulkLoadRequiresSorted) {
  BPlusTree t;
  std::vector<std::pair<uint64_t, uint32_t>> unsorted = {{5, 0}, {1, 1}};
  EXPECT_DEATH(t.BulkLoad(unsorted), "CHECK");
}

}  // namespace
}  // namespace olapidx
