#include "engine/batch_executor.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "data/fact_generator.h"

namespace olapidx {
namespace {

bool BitEq(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void ExpectBitIdentical(const GroupedResult& a, const GroupedResult& b) {
  ASSERT_EQ(a.group_attrs, b.group_attrs);
  ASSERT_EQ(a.keys, b.keys);
  ASSERT_EQ(a.sums.size(), b.sums.size());
  for (size_t i = 0; i < a.sums.size(); ++i) {
    EXPECT_TRUE(BitEq(a.sums[i], b.sums[i]));
    EXPECT_EQ(a.aggregates[i].count, b.aggregates[i].count);
    EXPECT_TRUE(BitEq(a.aggregates[i].min, b.aggregates[i].min));
    EXPECT_TRUE(BitEq(a.aggregates[i].max, b.aggregates[i].max));
  }
}

CubeSchema TestSchema() {
  return CubeSchema({Dimension{"a", 10}, Dimension{"b", 8},
                     Dimension{"c", 5}, Dimension{"d", 6}});
}

// A batch whose plans cover every access-path kind: raw scans (queries on
// attribute d, which no view covers), shared view scans, shared and
// distinct index probes.
class BatchExecutorTest : public ::testing::Test {
 protected:
  BatchExecutorTest()
      : fact_(GenerateZipfFacts(TestSchema(), 2500, 0.9, /*seed=*/41)),
        catalog_(&fact_),
        serial_(&catalog_) {
    catalog_.MaterializeView(AttributeSet::Of({0, 1, 2}));
    catalog_.MaterializeView(AttributeSet::Of({0, 1}));
    OLAPIDX_CHECK(
        catalog_.BuildIndex(AttributeSet::Of({0, 1, 2}), IndexKey({2, 0}))
            .ok());
    Pcg32 rng(43);
    for (int i = 0; i < 60; ++i) {
      int ga = static_cast<int>(rng.NextBounded(4));
      int sa = static_cast<int>(rng.NextBounded(4));
      if (ga == sa) sa = (sa + 1) % 4;
      queries_.emplace_back(AttributeSet::Of({ga}), AttributeSet::Of({sa}));
      values_.push_back({rng.NextBounded(static_cast<uint32_t>(
          TestSchema().dimensions()[static_cast<size_t>(sa)].cardinality))});
    }
  }

  FactTable fact_;
  Catalog catalog_;
  Executor serial_;
  std::vector<SliceQuery> queries_;
  std::vector<std::vector<uint32_t>> values_;
};

TEST_F(BatchExecutorTest, BatchMatchesSerialBitIdenticallyWithStats) {
  BatchExecutor batch(&catalog_, /*num_threads=*/1);
  std::vector<ExecutionStats> batch_stats;
  BatchStats bstats;
  std::vector<GroupedResult> results =
      batch.ExecuteBatch(queries_, values_, &batch_stats, &bstats);
  ASSERT_EQ(results.size(), queries_.size());
  ASSERT_EQ(batch_stats.size(), queries_.size());
  EXPECT_EQ(bstats.queries, queries_.size());
  EXPECT_GT(bstats.scan_groups, 0u);
  EXPECT_GT(bstats.probe_groups, 0u);
  // Sharing must actually amortize: the batch decodes fewer physical rows
  // than the serial path would.
  EXPECT_LT(bstats.rows_decoded, bstats.logical_rows);

  uint64_t serial_rows = 0;
  for (size_t i = 0; i < queries_.size(); ++i) {
    ExecutionStats sstats;
    GroupedResult expected = serial_.Execute(queries_[i], values_[i],
                                             &sstats);
    ExpectBitIdentical(results[i], expected);
    // The batch reports exactly what the serial executor would have:
    // same plan, same per-query row count.
    EXPECT_EQ(batch_stats[i].rows_processed, sstats.rows_processed);
    EXPECT_EQ(batch_stats[i].used_raw, sstats.used_raw);
    EXPECT_EQ(batch_stats[i].view, sstats.view);
    EXPECT_EQ(batch_stats[i].index, sstats.index);
    serial_rows += sstats.rows_processed;
  }
  EXPECT_EQ(bstats.logical_rows, serial_rows);
}

TEST_F(BatchExecutorTest, DeterministicAcrossThreadCounts) {
  BatchExecutor one(&catalog_, 1);
  BatchExecutor two(&catalog_, 2);
  BatchExecutor eight(&catalog_, 8);
  std::vector<GroupedResult> r1 = one.ExecuteBatch(queries_, values_);
  std::vector<GroupedResult> r2 = two.ExecuteBatch(queries_, values_);
  std::vector<GroupedResult> r8 = eight.ExecuteBatch(queries_, values_);
  ASSERT_EQ(r1.size(), r2.size());
  ASSERT_EQ(r1.size(), r8.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    ExpectBitIdentical(r1[i], r2[i]);
    ExpectBitIdentical(r1[i], r8[i]);
  }
  // And re-running the same batch reproduces itself exactly.
  std::vector<GroupedResult> again = eight.ExecuteBatch(queries_, values_);
  for (size_t i = 0; i < r1.size(); ++i) {
    ExpectBitIdentical(r8[i], again[i]);
  }
}

TEST_F(BatchExecutorTest, CompressedBatchMatchesSerialRowStore) {
  // Integer measures: every partial sum is exactly representable, so the
  // columnar store's different row order still produces bit-identical
  // sums (the dyadic-exact pinning idiom).
  CubeSchema schema = TestSchema();
  FactTable fact(schema);
  Pcg32 rng(47);
  std::vector<uint32_t> dims(4);
  for (size_t r = 0; r < 2000; ++r) {
    for (int a = 0; a < 4; ++a) {
      dims[static_cast<size_t>(a)] = rng.NextBounded(static_cast<uint32_t>(
          schema.dimensions()[static_cast<size_t>(a)].cardinality));
    }
    fact.Append(dims, 1.0 + rng.NextBounded(50));
  }
  Catalog catalog(&fact);
  catalog.MaterializeView(AttributeSet::Of({0, 1, 2}));
  catalog.MaterializeView(AttributeSet::Of({1, 3}));
  catalog.CompressAllViews();

  Executor serial(&catalog);
  serial.set_use_column_store(false);  // serial row-store reference
  BatchExecutor compressed_batch(&catalog, 4);
  std::vector<ExecutionStats> stats;
  std::vector<GroupedResult> results =
      compressed_batch.ExecuteBatch(queries_, values_, &stats);
  bool any_columnar = false;
  for (size_t i = 0; i < queries_.size(); ++i) {
    GroupedResult expected = serial.Execute(queries_[i], values_[i]);
    ExpectBitIdentical(results[i], expected);
    any_columnar = any_columnar || stats[i].used_columnar;
  }
  EXPECT_TRUE(any_columnar);
}

TEST_F(BatchExecutorTest, IdenticalRequestsCoalesce) {
  // A Zipf stream repeats popular (query, values) requests; the batch
  // executes each unique request once and copies its result to every
  // duplicate slot — bit-identical by construction.
  std::vector<SliceQuery> batch_q;
  std::vector<std::vector<uint32_t>> batch_v;
  for (int rep = 0; rep < 10; ++rep) {
    batch_q.push_back(queries_[0]);
    batch_v.push_back(values_[0]);
  }
  batch_q.push_back(queries_[1]);
  batch_v.push_back(values_[1]);
  BatchExecutor batch(&catalog_, 2);
  std::vector<ExecutionStats> stats;
  BatchStats bstats;
  std::vector<GroupedResult> results =
      batch.ExecuteBatch(batch_q, batch_v, &stats, &bstats);
  EXPECT_EQ(bstats.queries, 11u);
  EXPECT_EQ(bstats.unique_queries, 2u);

  ExecutionStats s0, s1;
  GroupedResult e0 = serial_.Execute(queries_[0], values_[0], &s0);
  GroupedResult e1 = serial_.Execute(queries_[1], values_[1], &s1);
  for (int rep = 0; rep < 10; ++rep) {
    ExpectBitIdentical(results[static_cast<size_t>(rep)], e0);
    EXPECT_EQ(stats[static_cast<size_t>(rep)].rows_processed,
              s0.rows_processed);
  }
  ExpectBitIdentical(results[10], e1);
  // Physical work is two unique requests' worth, not eleven; the logical
  // (serial-equivalent) row count still charges every duplicate.
  EXPECT_LE(bstats.rows_decoded, s0.rows_processed + s1.rows_processed);
  EXPECT_EQ(bstats.logical_rows,
            10 * s0.rows_processed + s1.rows_processed);
}

TEST_F(BatchExecutorTest, TryExecuteBatchValidatesUpFront) {
  BatchExecutor batch(&catalog_, 2);
  std::vector<GroupedResult> out;

  // Empty batch is fine.
  EXPECT_TRUE(batch.TryExecuteBatch({}, {}, &out).ok());
  EXPECT_TRUE(out.empty());

  // Mismatched vector lengths.
  Status s = batch.TryExecuteBatch(queries_, {}, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);

  // One query with the wrong selection-value count poisons the batch
  // before any work happens.
  std::vector<std::vector<uint32_t>> bad = values_;
  bad[5] = {1, 2, 3};
  s = batch.TryExecuteBatch(queries_, bad, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("query 5"), std::string::npos);
}

TEST_F(BatchExecutorTest, ObserverSeesEveryQueryInBatchOrder) {
  BatchExecutor batch(&catalog_, 4);
  std::vector<SliceQuery> seen;
  std::vector<uint64_t> seen_rows;
  batch.SetQueryObserver(
      [&](const SliceQuery& q, const ExecutionStats& stats) {
        seen.push_back(q);
        seen_rows.push_back(stats.rows_processed);
      });
  std::vector<GroupedResult> out;
  ASSERT_TRUE(batch.TryExecuteBatch(queries_, values_, &out).ok());
  ASSERT_EQ(seen.size(), queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    EXPECT_EQ(seen[i].group_by(), queries_[i].group_by());
    EXPECT_EQ(seen[i].selection(), queries_[i].selection());
    EXPECT_GT(seen_rows[i], 0u);
  }
}

TEST_F(BatchExecutorTest, SerialExecuteNotifiesObserverToo) {
  // The observer asymmetry fix: Execute() (the aborting variant) now
  // notifies through the same path as TryExecute.
  int notified = 0;
  serial_.SetQueryObserver(
      [&](const SliceQuery&, const ExecutionStats&) { ++notified; });
  serial_.Execute(queries_[0], values_[0]);
  EXPECT_EQ(notified, 1);
  GroupedResult out;
  ASSERT_TRUE(serial_.TryExecute(queries_[1], values_[1], &out).ok());
  EXPECT_EQ(notified, 2);
}

}  // namespace
}  // namespace olapidx
