// Metamorphic invariances of the selection algorithms: transformations of
// the input that provably must not change the picked set.
//
//  * Frequency duplication — listing a query twice at frequency f is the
//    same workload as listing it once at 2f (every benefit term becomes
//    f·x + f·x vs 2f·x, which is exact in floating point for adjacent
//    duplicates), so picks, τ, and benefit are identical.
//  * Uniform scaling — multiplying every space, every edge cost, and the
//    budget by the same power of two leaves every greedy benefit/space
//    ratio untouched (both scale by λ), so the pick sequence is identical
//    and τ, benefit, and space scale exactly by λ.
//  * Workload permutation — reordering the queries renumbers query ids
//    but the candidate tie-break (ratio, then view id, then enumeration
//    rank) never consults them. On a cube whose sizes are powers of two
//    every cost and benefit is an exact integer, so reordering the
//    benefit summation cannot shift a single ulp — picks and τ must be
//    bit-identical, not merely close.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/cube_graph.h"
#include "cost/calibrated_cost_model.h"
#include "core/inner_greedy.h"
#include "core/r_greedy.h"
#include "data/synthetic.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

// The three algorithms every invariance is checked for.
SelectionResult RunAlgo(int algo, const QueryViewGraph& g, double budget) {
  switch (algo) {
    case 0:
      return RGreedy(g, budget, RGreedyOptions{.r = 1});
    case 1:
      return RGreedy(g, budget, RGreedyOptions{.r = 2});
    default:
      return InnerLevelGreedy(g, budget);
  }
}

void ExpectSamePicks(const SelectionResult& a, const SelectionResult& b,
                     const std::string& what) {
  ASSERT_EQ(a.picks.size(), b.picks.size()) << what;
  for (size_t i = 0; i < a.picks.size(); ++i) {
    EXPECT_TRUE(a.picks[i] == b.picks[i]) << what << " pick " << i;
  }
}

class MetamorphicTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetamorphicTest, FrequencyDuplicationInvariance) {
  SyntheticCube cube = RandomSyntheticCube(3, 5, 500, 0.05, GetParam());
  CubeLattice lattice(cube.schema);
  Workload base = AllSliceQueries(lattice);

  Workload duplicated;
  Workload doubled;
  for (const WeightedQuery& wq : base.queries()) {
    duplicated.Add(wq.query, wq.frequency);
    duplicated.Add(wq.query, wq.frequency);
    doubled.Add(wq.query, 2.0 * wq.frequency);
  }

  CubeGraphOptions opts;
  opts.raw_scan_penalty = 2.0;
  CubeGraph dup = BuildCubeGraph(cube.schema, cube.sizes, duplicated, opts);
  CubeGraph dbl = BuildCubeGraph(cube.schema, cube.sizes, doubled, opts);
  double budget = 0.2 * (cube.sizes.TotalViewSpace() +
                         cube.sizes.TotalFatIndexSpace());

  for (int algo = 0; algo < 3; ++algo) {
    SelectionResult a = RunAlgo(algo, dup.graph, budget);
    SelectionResult b = RunAlgo(algo, dbl.graph, budget);
    ASSERT_TRUE(a.status.ok());
    ASSERT_TRUE(b.status.ok());
    EXPECT_FALSE(a.picks.empty()) << "algo " << algo;
    ExpectSamePicks(a, b, "algo " + std::to_string(algo));
    // τ is identical up to summation order: f·x + f·x rounds like 2f·x
    // term by term, but the running cross-term partial sums may differ in
    // the last ulps.
    EXPECT_NEAR(a.final_cost, b.final_cost,
                1e-12 * (1.0 + a.final_cost))
        << "algo " << algo;
    EXPECT_NEAR(a.Benefit(), b.Benefit(), 1e-12 * (1.0 + a.Benefit()))
        << "algo " << algo;
  }
}

// One random instance description, built once and instantiated at any
// scale so the two graphs differ by exactly the multiplier.
struct GraphSpec {
  struct View {
    uint64_t space;
    std::vector<uint64_t> index_spaces;
  };
  struct Edge {
    uint32_t query, view;
    int32_t index;  // StructureRef::kNoIndex for a view edge
    uint64_t cost;
  };
  std::vector<View> views;
  std::vector<std::pair<uint64_t, uint64_t>> queries;  // (T_i, f_i)
  std::vector<Edge> edges;
};

GraphSpec RandomSpec(uint64_t seed) {
  Pcg32 rng(seed);
  GraphSpec spec;
  uint32_t num_views = 3 + rng.NextBounded(3);
  for (uint32_t v = 0; v < num_views; ++v) {
    GraphSpec::View view{1 + rng.NextBounded(20), {}};
    uint32_t num_indexes = rng.NextBounded(3);
    for (uint32_t i = 0; i < num_indexes; ++i) {
      view.index_spaces.push_back(1 + rng.NextBounded(20));
    }
    spec.views.push_back(std::move(view));
  }
  uint32_t num_queries = 4 + rng.NextBounded(5);
  for (uint32_t q = 0; q < num_queries; ++q) {
    spec.queries.emplace_back(80 + rng.NextBounded(41),
                              1 + rng.NextBounded(3));
    for (uint32_t v = 0; v < num_views; ++v) {
      if (rng.NextBounded(4) == 0) continue;
      uint64_t scan = 10 + rng.NextBounded(60);
      spec.edges.push_back({q, v, StructureRef::kNoIndex, scan});
      for (size_t k = 0; k < spec.views[v].index_spaces.size(); ++k) {
        if (rng.NextBounded(2) == 0) {
          spec.edges.push_back(
              {q, v, static_cast<int32_t>(k),
               1 + rng.NextBounded(static_cast<uint32_t>(scan))});
        }
      }
    }
  }
  return spec;
}

QueryViewGraph Instantiate(const GraphSpec& spec, double scale) {
  QueryViewGraph g;
  for (size_t v = 0; v < spec.views.size(); ++v) {
    g.AddView("v" + std::to_string(v),
              scale * static_cast<double>(spec.views[v].space));
    for (size_t k = 0; k < spec.views[v].index_spaces.size(); ++k) {
      g.AddIndex(static_cast<uint32_t>(v),
                 "i" + std::to_string(v) + "_" + std::to_string(k),
                 scale * static_cast<double>(spec.views[v].index_spaces[k]));
    }
  }
  for (size_t q = 0; q < spec.queries.size(); ++q) {
    g.AddQuery("q" + std::to_string(q),
               scale * static_cast<double>(spec.queries[q].first),
               static_cast<double>(spec.queries[q].second));
  }
  for (const GraphSpec::Edge& e : spec.edges) {
    if (e.index == StructureRef::kNoIndex) {
      g.AddViewEdge(e.query, e.view, scale * static_cast<double>(e.cost));
    } else {
      g.AddIndexEdge(e.query, e.view, e.index,
                     scale * static_cast<double>(e.cost));
    }
  }
  g.Finalize();
  return g;
}

TEST_P(MetamorphicTest, UniformScalingInvariance) {
  GraphSpec spec = RandomSpec(GetParam());
  constexpr double kScale = 8.0;  // power of two: scaling is exact
  QueryViewGraph unit = Instantiate(spec, 1.0);
  QueryViewGraph scaled = Instantiate(spec, kScale);

  for (double budget : {3.0, 10.0, 30.0}) {
    for (int algo = 0; algo < 3; ++algo) {
      SelectionResult a = RunAlgo(algo, unit, budget);
      SelectionResult b = RunAlgo(algo, scaled, kScale * budget);
      ASSERT_TRUE(a.status.ok());
      ASSERT_TRUE(b.status.ok());
      ExpectSamePicks(a, b, "algo " + std::to_string(algo) + " budget " +
                                std::to_string(budget));
      EXPECT_DOUBLE_EQ(b.final_cost, kScale * a.final_cost);
      EXPECT_DOUBLE_EQ(b.Benefit(), kScale * a.Benefit());
      EXPECT_DOUBLE_EQ(b.space_used, kScale * a.space_used);
    }
  }
}

TEST_P(MetamorphicTest, WorkloadPermutationInvariance) {
  // Power-of-two sizes make every edge cost (a ratio of sizes) and every
  // benefit term an exact integer, so even the floating-point summation
  // order cannot distinguish the permuted workloads.
  constexpr int kDims = 3;
  std::vector<Dimension> dims;
  for (int a = 0; a < kDims; ++a) {
    dims.push_back(Dimension{std::string(1, static_cast<char>('a' + a)),
                             16});
  }
  CubeSchema schema(dims);
  CubeLattice lattice(schema);
  ViewSizes sizes(kDims);
  for (uint32_t v = 0; v < lattice.num_views(); ++v) {
    AttributeSet attrs = lattice.AttrsOf(v);
    sizes.Set(attrs, static_cast<double>(
                         uint64_t{1} << (4 * attrs.ToVector().size())));
  }

  // Frequencies are a function of the query itself (not of its position),
  // so each permutation carries identical weights.
  std::vector<WeightedQuery> weighted;
  Workload all = AllSliceQueries(lattice);
  for (const WeightedQuery& wq : all.queries()) {
    weighted.push_back(WeightedQuery{
        wq.query,
        1.0 + static_cast<double>(wq.query.AllAttributes().ToVector()
                                      .size())});
  }
  Workload forward{weighted};
  std::reverse(weighted.begin(), weighted.end());
  Workload reversed{weighted};
  Pcg32 rng(GetParam());
  for (size_t i = weighted.size(); i > 1; --i) {
    std::swap(weighted[i - 1],
              weighted[rng.NextBounded(static_cast<uint32_t>(i))]);
  }
  Workload shuffled{weighted};

  CubeGraphOptions opts;
  opts.raw_scan_penalty = 2.0;
  CubeGraph fwd = BuildCubeGraph(schema, sizes, forward, opts);
  CubeGraph rev = BuildCubeGraph(schema, sizes, reversed, opts);
  CubeGraph shuf = BuildCubeGraph(schema, sizes, shuffled, opts);
  double budget = 0.25 * (sizes.TotalViewSpace() +
                          sizes.TotalFatIndexSpace());

  for (int algo = 0; algo < 3; ++algo) {
    SelectionResult a = RunAlgo(algo, fwd.graph, budget);
    SelectionResult b = RunAlgo(algo, rev.graph, budget);
    SelectionResult c = RunAlgo(algo, shuf.graph, budget);
    ASSERT_TRUE(a.status.ok());
    EXPECT_FALSE(a.picks.empty()) << "algo " << algo;
    ExpectSamePicks(a, b, "reversed, algo " + std::to_string(algo));
    ExpectSamePicks(a, c, "shuffled, algo " + std::to_string(algo));
    EXPECT_EQ(a.final_cost, b.final_cost) << "algo " << algo;
    EXPECT_EQ(a.final_cost, c.final_cost) << "algo " << algo;
    EXPECT_EQ(a.space_used, b.space_used) << "algo " << algo;
  }
}

// ---------------------------------------------------------------------------
// The same invariances under the calibrated cost model (the CostModel
// seam): dyadic coefficients keep every cost term exact in floating
// point, so the bit-exact contracts carry over unchanged.
// ---------------------------------------------------------------------------

// per_row, per_node, and fixed all powers of two: with power-of-two view
// sizes every ScanCost/IndexCost is a dyadic rational computed exactly.
std::shared_ptr<const CalibratedCostModel> DyadicModel(double scale = 1.0) {
  return std::make_shared<CalibratedCostModel>(CalibrationCoefficients{
      2.0 * scale, 128.0 * scale, 1024.0 * scale});
}

TEST_P(MetamorphicTest, CalibratedModelPermutationInvariance) {
  constexpr int kDims = 3;
  std::vector<Dimension> dims;
  for (int a = 0; a < kDims; ++a) {
    dims.push_back(Dimension{std::string(1, static_cast<char>('a' + a)),
                             16});
  }
  CubeSchema schema(dims);
  CubeLattice lattice(schema);
  ViewSizes sizes(kDims);
  for (uint32_t v = 0; v < lattice.num_views(); ++v) {
    AttributeSet attrs = lattice.AttrsOf(v);
    sizes.Set(attrs, static_cast<double>(
                         uint64_t{1} << (4 * attrs.ToVector().size())));
  }
  std::vector<WeightedQuery> weighted;
  Workload all = AllSliceQueries(lattice);
  for (const WeightedQuery& wq : all.queries()) {
    weighted.push_back(WeightedQuery{
        wq.query,
        1.0 + static_cast<double>(wq.query.AllAttributes().ToVector()
                                      .size())});
  }
  Workload forward{weighted};
  Pcg32 rng(GetParam());
  for (size_t i = weighted.size(); i > 1; --i) {
    std::swap(weighted[i - 1],
              weighted[rng.NextBounded(static_cast<uint32_t>(i))]);
  }
  Workload shuffled{weighted};

  CubeGraphOptions opts;
  opts.raw_scan_penalty = 2.0;
  opts.cost_model = DyadicModel();
  CubeGraph fwd = BuildCubeGraph(schema, sizes, forward, opts);
  CubeGraph shuf = BuildCubeGraph(schema, sizes, shuffled, opts);
  double budget = 0.25 * (sizes.TotalViewSpace() +
                          sizes.TotalFatIndexSpace());
  for (int algo = 0; algo < 3; ++algo) {
    SelectionResult a = RunAlgo(algo, fwd.graph, budget);
    SelectionResult c = RunAlgo(algo, shuf.graph, budget);
    ASSERT_TRUE(a.status.ok());
    EXPECT_FALSE(a.picks.empty()) << "algo " << algo;
    ExpectSamePicks(a, c, "calibrated shuffled, algo " +
                              std::to_string(algo));
    EXPECT_EQ(a.final_cost, c.final_cost) << "algo " << algo;
    EXPECT_EQ(a.space_used, c.space_used) << "algo " << algo;
  }
}

TEST_P(MetamorphicTest, CalibratedCoefficientScalingInvariance) {
  // Scaling all three coefficients by one power of two scales every edge
  // cost (and the default cost) by exactly that factor while spaces stay
  // put, so the pick sequence is bit-identical and τ scales exactly.
  SyntheticCube cube = RandomSyntheticCube(3, 5, 512, 0.1, GetParam());
  // Power-of-two sizes keep the dyadic-exactness argument airtight.
  CubeLattice lattice(cube.schema);
  for (uint32_t v = 0; v < lattice.num_views(); ++v) {
    AttributeSet attrs = lattice.AttrsOf(v);
    cube.sizes.Set(attrs, static_cast<double>(
                              uint64_t{1}
                              << (3 * attrs.ToVector().size())));
  }
  Workload workload = AllSliceQueries(lattice);
  constexpr double kScale = 8.0;

  CubeGraphOptions unit_opts;
  unit_opts.raw_scan_penalty = 2.0;
  unit_opts.cost_model = DyadicModel();
  CubeGraphOptions scaled_opts = unit_opts;
  scaled_opts.cost_model = DyadicModel(kScale);
  CubeGraph unit = BuildCubeGraph(cube.schema, cube.sizes, workload,
                                  unit_opts);
  CubeGraph scaled = BuildCubeGraph(cube.schema, cube.sizes, workload,
                                    scaled_opts);
  double budget = 0.25 * (cube.sizes.TotalViewSpace() +
                          cube.sizes.TotalFatIndexSpace());
  for (int algo = 0; algo < 3; ++algo) {
    SelectionResult a = RunAlgo(algo, unit.graph, budget);
    SelectionResult b = RunAlgo(algo, scaled.graph, budget);
    ASSERT_TRUE(a.status.ok());
    ASSERT_TRUE(b.status.ok());
    EXPECT_FALSE(a.picks.empty()) << "algo " << algo;
    ExpectSamePicks(a, b, "coefficient scaling, algo " +
                              std::to_string(algo));
    EXPECT_DOUBLE_EQ(b.final_cost, kScale * a.final_cost)
        << "algo " << algo;
    EXPECT_EQ(a.space_used, b.space_used) << "algo " << algo;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetamorphicTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace olapidx
