#include "core/query_view_graph.h"

#include <cmath>

#include <gtest/gtest.h>

namespace olapidx {
namespace {

TEST(QueryViewGraphTest, BuildAndIntrospect) {
  QueryViewGraph g;
  uint32_t v0 = g.AddView("V0", 10.0);
  uint32_t v1 = g.AddView("V1", 5.0);
  int32_t i0 = g.AddIndex(v0, "I0", 10.0);
  uint32_t q0 = g.AddQuery("Q0", 100.0, 2.0);
  uint32_t q1 = g.AddQuery("Q1", 50.0);
  g.AddViewEdge(q0, v0, 10.0);
  g.AddIndexEdge(q0, v0, i0, 2.0);
  g.AddViewEdge(q1, v1, 5.0);
  g.Finalize();

  EXPECT_EQ(g.num_views(), 2u);
  EXPECT_EQ(g.num_queries(), 2u);
  EXPECT_EQ(g.num_structures(), 3u);
  EXPECT_EQ(g.view_name(v0), "V0");
  EXPECT_EQ(g.view_space(v0), 10.0);
  EXPECT_EQ(g.num_indexes(v0), 1);
  EXPECT_EQ(g.num_indexes(v1), 0);
  EXPECT_EQ(g.index_space(v0, i0), 10.0);
  EXPECT_EQ(g.query_default_cost(q0), 100.0);
  EXPECT_EQ(g.query_frequency(q0), 2.0);
  EXPECT_EQ(g.query_frequency(q1), 1.0);
  // τ(G, ∅) = 2·100 + 1·50.
  EXPECT_NEAR(g.DefaultTotalCost(), 250.0, 1e-12);

  ASSERT_EQ(g.ViewQueries(v0).size(), 1u);
  EXPECT_EQ(g.ViewQueries(v0)[0], q0);
  EXPECT_EQ(g.ViewCostAt(v0, 0), 10.0);
  EXPECT_EQ(g.IndexCostAt(v0, i0, 0), 2.0);
  ASSERT_EQ(g.ViewQueries(v1).size(), 1u);
  EXPECT_EQ(g.ViewCostAt(v1, 0), 5.0);
}

TEST(QueryViewGraphTest, MissingEdgesAreInfinite) {
  QueryViewGraph g;
  uint32_t v = g.AddView("V", 1.0);
  int32_t i = g.AddIndex(v, "I", 1.0);
  uint32_t q = g.AddQuery("Q", 10.0);
  // Only an index edge, no view edge.
  g.AddIndexEdge(q, v, i, 3.0);
  g.Finalize();
  ASSERT_EQ(g.ViewQueries(v).size(), 1u);
  EXPECT_TRUE(std::isinf(g.ViewCostAt(v, 0)));
  EXPECT_EQ(g.IndexCostAt(v, i, 0), 3.0);
}

TEST(QueryViewGraphTest, MultigraphKeepsCheapestLabel) {
  QueryViewGraph g;
  uint32_t v = g.AddView("V", 1.0);
  uint32_t q = g.AddQuery("Q", 10.0);
  g.AddViewEdge(q, v, 7.0);
  g.AddViewEdge(q, v, 4.0);
  g.AddViewEdge(q, v, 9.0);
  g.Finalize();
  EXPECT_EQ(g.ViewCostAt(v, 0), 4.0);
}

TEST(QueryViewGraphTest, StructureNames) {
  QueryViewGraph g;
  uint32_t v = g.AddView("ps", 1.0);
  int32_t i = g.AddIndex(v, "I_sp", 1.0);
  g.Finalize();
  EXPECT_EQ(g.StructureName(StructureRef{v, StructureRef::kNoIndex}), "ps");
  EXPECT_EQ(g.StructureName(StructureRef{v, i}), "I_sp(ps)");
  EXPECT_EQ(g.structure_space(StructureRef{v, i}), 1.0);
}

TEST(QueryViewGraphTest, ViewsWithNoEdgesHaveEmptyQueryLists) {
  QueryViewGraph g;
  g.AddView("V0", 1.0);
  uint32_t v1 = g.AddView("V1", 1.0);
  uint32_t q = g.AddQuery("Q", 10.0);
  g.AddViewEdge(q, v1, 1.0);
  g.Finalize();
  EXPECT_TRUE(g.ViewQueries(0).empty());
  EXPECT_EQ(g.ViewQueries(v1).size(), 1u);
}

TEST(QueryViewGraphDeathTest, EdgesAfterFinalizeRejected) {
  QueryViewGraph g;
  uint32_t v = g.AddView("V", 1.0);
  uint32_t q = g.AddQuery("Q", 1.0);
  g.Finalize();
  EXPECT_DEATH(g.AddViewEdge(q, v, 1.0), "CHECK");
}

TEST(QueryViewGraphDeathTest, BadIndexPositionRejected) {
  QueryViewGraph g;
  uint32_t v = g.AddView("V", 1.0);
  uint32_t q = g.AddQuery("Q", 1.0);
  EXPECT_DEATH(g.AddIndexEdge(q, v, 0, 1.0), "CHECK");
}

}  // namespace
}  // namespace olapidx
