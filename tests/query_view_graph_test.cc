#include "core/query_view_graph.h"

#include <cmath>

#include <gtest/gtest.h>

namespace olapidx {
namespace {

TEST(QueryViewGraphTest, BuildAndIntrospect) {
  QueryViewGraph g;
  uint32_t v0 = g.AddView("V0", 10.0);
  uint32_t v1 = g.AddView("V1", 5.0);
  int32_t i0 = g.AddIndex(v0, "I0", 10.0);
  uint32_t q0 = g.AddQuery("Q0", 100.0, 2.0);
  uint32_t q1 = g.AddQuery("Q1", 50.0);
  g.AddViewEdge(q0, v0, 10.0);
  g.AddIndexEdge(q0, v0, i0, 2.0);
  g.AddViewEdge(q1, v1, 5.0);
  g.Finalize();

  EXPECT_EQ(g.num_views(), 2u);
  EXPECT_EQ(g.num_queries(), 2u);
  EXPECT_EQ(g.num_structures(), 3u);
  EXPECT_EQ(g.view_name(v0), "V0");
  EXPECT_EQ(g.view_space(v0), 10.0);
  EXPECT_EQ(g.num_indexes(v0), 1);
  EXPECT_EQ(g.num_indexes(v1), 0);
  EXPECT_EQ(g.index_space(v0, i0), 10.0);
  EXPECT_EQ(g.query_default_cost(q0), 100.0);
  EXPECT_EQ(g.query_frequency(q0), 2.0);
  EXPECT_EQ(g.query_frequency(q1), 1.0);
  // τ(G, ∅) = 2·100 + 1·50.
  EXPECT_NEAR(g.DefaultTotalCost(), 250.0, 1e-12);

  ASSERT_EQ(g.ViewQueries(v0).size(), 1u);
  EXPECT_EQ(g.ViewQueries(v0)[0], q0);
  EXPECT_EQ(g.ViewCostAt(v0, 0), 10.0);
  EXPECT_EQ(g.IndexCostAt(v0, i0, 0), 2.0);
  ASSERT_EQ(g.ViewQueries(v1).size(), 1u);
  EXPECT_EQ(g.ViewCostAt(v1, 0), 5.0);
}

TEST(QueryViewGraphTest, MissingEdgesAreInfinite) {
  QueryViewGraph g;
  uint32_t v = g.AddView("V", 1.0);
  int32_t i = g.AddIndex(v, "I", 1.0);
  uint32_t q = g.AddQuery("Q", 10.0);
  // Only an index edge, no view edge.
  g.AddIndexEdge(q, v, i, 3.0);
  g.Finalize();
  ASSERT_EQ(g.ViewQueries(v).size(), 1u);
  EXPECT_TRUE(std::isinf(g.ViewCostAt(v, 0)));
  EXPECT_EQ(g.IndexCostAt(v, i, 0), 3.0);
}

TEST(QueryViewGraphTest, MultigraphKeepsCheapestLabel) {
  QueryViewGraph g;
  uint32_t v = g.AddView("V", 1.0);
  uint32_t q = g.AddQuery("Q", 10.0);
  g.AddViewEdge(q, v, 7.0);
  g.AddViewEdge(q, v, 4.0);
  g.AddViewEdge(q, v, 9.0);
  g.Finalize();
  EXPECT_EQ(g.ViewCostAt(v, 0), 4.0);
}

TEST(QueryViewGraphTest, StructureNames) {
  QueryViewGraph g;
  uint32_t v = g.AddView("ps", 1.0);
  int32_t i = g.AddIndex(v, "I_sp", 1.0);
  g.Finalize();
  EXPECT_EQ(g.StructureName(StructureRef{v, StructureRef::kNoIndex}), "ps");
  EXPECT_EQ(g.StructureName(StructureRef{v, i}), "I_sp(ps)");
  EXPECT_EQ(g.structure_space(StructureRef{v, i}), 1.0);
}

TEST(QueryViewGraphTest, ViewsWithNoEdgesHaveEmptyQueryLists) {
  QueryViewGraph g;
  g.AddView("V0", 1.0);
  uint32_t v1 = g.AddView("V1", 1.0);
  uint32_t q = g.AddQuery("Q", 10.0);
  g.AddViewEdge(q, v1, 1.0);
  g.Finalize();
  EXPECT_TRUE(g.ViewQueries(0).empty());
  EXPECT_EQ(g.ViewQueries(v1).size(), 1u);
}

TEST(QueryViewGraphDeathTest, EdgesAfterFinalizeRejected) {
  QueryViewGraph g;
  uint32_t v = g.AddView("V", 1.0);
  uint32_t q = g.AddQuery("Q", 1.0);
  g.Finalize();
  EXPECT_DEATH(g.AddViewEdge(q, v, 1.0), "CHECK");
}

TEST(QueryViewGraphDeathTest, BadIndexPositionRejected) {
  QueryViewGraph g;
  uint32_t v = g.AddView("V", 1.0);
  uint32_t q = g.AddQuery("Q", 1.0);
  EXPECT_DEATH(g.AddIndexEdge(q, v, 0, 1.0), "CHECK");
}

TEST(QueryViewGraphTest, LazyIndexesRenderNamesOnDemand) {
  QueryViewGraph g;
  g.SetNameDictionary({"p", "s", "c"});
  uint32_t v = g.AddView("psc", 6.0);
  g.AddIndexes(v, {IndexKey({0, 1}), IndexKey({1, 0}), IndexKey({2})}, 6.0,
               0.5);
  EXPECT_EQ(g.num_indexes(v), 3);
  EXPECT_EQ(g.num_structures(), 4u);
  EXPECT_EQ(g.index_name(v, 0), "I_ps");
  EXPECT_EQ(g.index_name(v, 1), "I_sp");
  EXPECT_EQ(g.index_name(v, 2), "I_c");
  EXPECT_EQ(g.StructureName(StructureRef{v, 1}), "I_sp(psc)");
  EXPECT_EQ(g.index_space(v, 0), 6.0);
  EXPECT_EQ(g.index_space(v, 2), 6.0);
  EXPECT_EQ(g.structure_maintenance(StructureRef{v, 1}), 0.5);
  EXPECT_EQ(g.index_key(v, 1), IndexKey({1, 0}));
}

TEST(QueryViewGraphTest, IndexEdgeRunExpandsToEveryIndexInRange) {
  QueryViewGraph g;
  g.SetNameDictionary({"a", "b"});
  uint32_t v = g.AddView("ab", 4.0);
  g.AddIndexes(v, {IndexKey({0}), IndexKey({1}), IndexKey({0, 1}),
                   IndexKey({1, 0})},
               4.0);
  uint32_t q = g.AddQuery("Q", 10.0);
  g.AddViewEdge(q, v, 4.0);
  g.AddIndexEdgeRun(q, v, 1, 3, 2.0);  // indexes 1 and 2, not 0 or 3
  g.Finalize();
  ASSERT_EQ(g.ViewQueries(v).size(), 1u);
  EXPECT_EQ(g.ViewCostAt(v, 0), 4.0);
  EXPECT_TRUE(std::isinf(g.IndexCostAt(v, 0, 0)));
  EXPECT_EQ(g.IndexCostAt(v, 1, 0), 2.0);
  EXPECT_EQ(g.IndexCostAt(v, 2, 0), 2.0);
  EXPECT_TRUE(std::isinf(g.IndexCostAt(v, 3, 0)));
}

TEST(QueryViewGraphTest, FinalizeMergesDuplicateAndOutOfOrderEdges) {
  QueryViewGraph g;
  uint32_t v0 = g.AddView("V0", 1.0);
  uint32_t v1 = g.AddView("V1", 1.0);
  int32_t i0 = g.AddIndex(v1, "I0", 1.0);
  uint32_t q0 = g.AddQuery("Q0", 10.0);
  uint32_t q1 = g.AddQuery("Q1", 10.0);
  // Deliberately interleaved across views, descending query order, with
  // duplicates on both view and index labels.
  g.AddViewEdge(q1, v1, 7.0);
  g.AddIndexEdge(q0, v1, i0, 5.0);
  g.AddViewEdge(q1, v0, 3.0);
  g.AddViewEdge(q0, v0, 2.0);
  g.AddIndexEdge(q0, v1, i0, 4.0);  // cheaper duplicate wins
  g.AddViewEdge(q1, v1, 9.0);       // more expensive duplicate loses
  g.Finalize();
  ASSERT_EQ(g.ViewQueries(v0), (std::vector<uint32_t>{q0, q1}));
  EXPECT_EQ(g.ViewCostAt(v0, 0), 2.0);
  EXPECT_EQ(g.ViewCostAt(v0, 1), 3.0);
  ASSERT_EQ(g.ViewQueries(v1), (std::vector<uint32_t>{q0, q1}));
  EXPECT_TRUE(std::isinf(g.ViewCostAt(v1, 0)));
  EXPECT_EQ(g.ViewCostAt(v1, 1), 7.0);
  EXPECT_EQ(g.IndexCostAt(v1, i0, 0), 4.0);
  EXPECT_TRUE(std::isinf(g.IndexCostAt(v1, i0, 1)));
  EXPECT_EQ(g.QueryViews(q0), (std::vector<uint32_t>{v0, v1}));
  EXPECT_EQ(g.QueryViews(q1), (std::vector<uint32_t>{v0, v1}));
}

TEST(QueryViewGraphTest, ShardMergedBatchesMatchDirectEdges) {
  // The same edges delivered as two AddEdgeRuns shard batches (as the
  // parallel builder does) and as direct calls must finalize identically.
  auto build_direct = [] {
    QueryViewGraph g;
    g.SetNameDictionary({"a", "b"});
    uint32_t v0 = g.AddView("V0", 1.0);
    uint32_t v1 = g.AddView("V1", 2.0);
    g.AddIndexes(v1, {IndexKey({0}), IndexKey({1})}, 2.0);
    g.AddQuery("Q0", 10.0);
    g.AddQuery("Q1", 10.0);
    g.AddViewEdge(0, v0, 1.0);
    g.AddViewEdge(0, v1, 2.0);
    g.AddIndexEdgeRun(0, v1, 0, 2, 0.5);
    g.AddViewEdge(1, v1, 2.0);
    g.AddIndexEdgeRun(1, v1, 1, 2, 0.25);
    g.Finalize();
    return g;
  };
  auto build_sharded = [] {
    QueryViewGraph g;
    g.SetNameDictionary({"a", "b"});
    uint32_t v0 = g.AddView("V0", 1.0);
    uint32_t v1 = g.AddView("V1", 2.0);
    g.AddIndexes(v1, {IndexKey({0}), IndexKey({1})}, 2.0);
    g.AddQuery("Q0", 10.0);
    g.AddQuery("Q1", 10.0);
    g.AddEdgeRuns({
        EdgeRun{0, v0, StructureRef::kNoIndex, StructureRef::kNoIndex, 1.0},
        EdgeRun{0, v1, StructureRef::kNoIndex, StructureRef::kNoIndex, 2.0},
        EdgeRun{0, v1, 0, 2, 0.5},
    });
    g.AddEdgeRuns({
        EdgeRun{1, v1, StructureRef::kNoIndex, StructureRef::kNoIndex, 2.0},
        EdgeRun{1, v1, 1, 2, 0.25},
    });
    g.Finalize();
    return g;
  };
  QueryViewGraph direct = build_direct();
  QueryViewGraph sharded = build_sharded();
  for (uint32_t v = 0; v < direct.num_views(); ++v) {
    ASSERT_EQ(direct.ViewQueries(v), sharded.ViewQueries(v));
    for (size_t pos = 0; pos < direct.ViewQueries(v).size(); ++pos) {
      EXPECT_EQ(direct.ViewCostAt(v, pos), sharded.ViewCostAt(v, pos));
      for (int32_t k = 0; k < direct.num_indexes(v); ++k) {
        EXPECT_EQ(direct.IndexCostAt(v, k, pos),
                  sharded.IndexCostAt(v, k, pos));
      }
    }
  }
  for (uint32_t q = 0; q < direct.num_queries(); ++q) {
    EXPECT_EQ(direct.QueryViews(q), sharded.QueryViews(q));
  }
}

TEST(QueryViewGraphDeathTest, MixingEagerAndLazyIndexesRejected) {
  QueryViewGraph g;
  uint32_t v = g.AddView("V", 1.0);
  g.AddIndex(v, "I", 1.0);
  EXPECT_DEATH(g.AddIndexes(v, {IndexKey({0})}, 1.0), "CHECK");
}

TEST(QueryViewGraphDeathTest, BadRunRangeRejected) {
  QueryViewGraph g;
  g.SetNameDictionary({"a"});
  uint32_t v = g.AddView("V", 1.0);
  g.AddIndexes(v, {IndexKey({0})}, 1.0);
  uint32_t q = g.AddQuery("Q", 1.0);
  EXPECT_DEATH(g.AddIndexEdgeRun(q, v, 0, 2, 1.0), "CHECK");
}

}  // namespace
}  // namespace olapidx
