#include "workload/workload.h"

#include <set>

#include <gtest/gtest.h>

namespace olapidx {
namespace {

CubeSchema ThreeDims() {
  return CubeSchema(
      {Dimension{"p", 10}, Dimension{"s", 10}, Dimension{"c", 10}});
}

TEST(SliceQueryTest, DisjointnessEnforced) {
  SliceQuery ok(AttributeSet::Of({0}), AttributeSet::Of({1}));
  EXPECT_EQ(ok.AllAttributes(), AttributeSet::Of({0, 1}));
  EXPECT_DEATH(SliceQuery(AttributeSet::Of({0}), AttributeSet::Of({0})),
               "CHECK");
}

TEST(SliceQueryTest, AnswerableFrom) {
  SliceQuery q(AttributeSet::Of({2}), AttributeSet::Of({0}));  // γ_c σ_p
  EXPECT_TRUE(q.AnswerableFrom(AttributeSet::Of({0, 2})));
  EXPECT_TRUE(q.AnswerableFrom(AttributeSet::Of({0, 1, 2})));
  EXPECT_FALSE(q.AnswerableFrom(AttributeSet::Of({0, 1})));
  EXPECT_FALSE(q.AnswerableFrom(AttributeSet::Of({2})));
}

TEST(SliceQueryTest, ToString) {
  std::vector<std::string> names = {"p", "s", "c"};
  SliceQuery q(AttributeSet::Of({2}), AttributeSet::Of({0, 1}));
  EXPECT_EQ(q.ToString(names), "g{c}s{ps}");
  SliceQuery whole(AttributeSet::Of({0}), AttributeSet());
  EXPECT_EQ(whole.ToString(names), "g{p}");
}

TEST(WorkloadTest, AllSliceQueriesCount) {
  CubeLattice lattice(ThreeDims());
  Workload w = AllSliceQueries(lattice);
  EXPECT_EQ(w.size(), 27u);  // 3^3 (Section 3.5)
  // All distinct.
  std::set<SliceQuery> seen;
  for (const WeightedQuery& wq : w.queries()) {
    EXPECT_EQ(wq.frequency, 1.0);
    seen.insert(wq.query);
  }
  EXPECT_EQ(seen.size(), 27u);
}

TEST(WorkloadTest, AllSliceQueriesFourDims) {
  CubeSchema schema({Dimension{"a", 2}, Dimension{"b", 2},
                     Dimension{"c", 2}, Dimension{"d", 2}});
  CubeLattice lattice(schema);
  EXPECT_EQ(AllSliceQueries(lattice).size(), 81u);  // 3^4
}

TEST(WorkloadTest, NormalizeMakesFrequenciesSumToOne) {
  CubeLattice lattice(ThreeDims());
  Workload w = AllSliceQueries(lattice);
  w.Normalize();
  EXPECT_NEAR(w.TotalFrequency(), 1.0, 1e-12);
}

TEST(WorkloadTest, ZipfFrequenciesSumToOne) {
  CubeLattice lattice(ThreeDims());
  Workload w = ZipfSliceQueries(lattice, 1.0, /*seed=*/3);
  EXPECT_EQ(w.size(), 27u);
  EXPECT_NEAR(w.TotalFrequency(), 1.0, 1e-9);
  // Skewed: max frequency well above uniform.
  double max_f = 0.0;
  for (const WeightedQuery& wq : w.queries()) {
    max_f = std::max(max_f, wq.frequency);
  }
  EXPECT_GT(max_f, 2.0 / 27.0);
}

TEST(WorkloadTest, ZipfShuffleDependsOnSeed) {
  CubeLattice lattice(ThreeDims());
  Workload a = ZipfSliceQueries(lattice, 1.0, 1);
  Workload b = ZipfSliceQueries(lattice, 1.0, 2);
  bool different = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].query == b[i].query) || a[i].frequency != b[i].frequency) {
      different = true;
    }
  }
  EXPECT_TRUE(different);
}

TEST(WorkloadTest, HotDimensionBoostsQueriesMentioningIt) {
  CubeLattice lattice(ThreeDims());
  AttributeSet hot = AttributeSet::Of({0});
  Workload w = HotDimensionSliceQueries(lattice, hot, 4.0);
  EXPECT_NEAR(w.TotalFrequency(), 1.0, 1e-9);
  double with_hot = 0.0, without_hot = 0.0;
  size_t n_with = 0, n_without = 0;
  for (const WeightedQuery& wq : w.queries()) {
    if (wq.query.AllAttributes().Contains(0)) {
      with_hot += wq.frequency;
      ++n_with;
    } else {
      without_hot += wq.frequency;
      ++n_without;
    }
  }
  // Per-query frequency for hot-mentioning queries is 4x the others.
  EXPECT_NEAR((with_hot / static_cast<double>(n_with)) /
                  (without_hot / static_cast<double>(n_without)),
              4.0, 1e-9);
}

TEST(WorkloadTest, AddAndTotals) {
  Workload w;
  EXPECT_TRUE(w.empty());
  w.Add(SliceQuery(AttributeSet::Of({0}), AttributeSet()), 2.0);
  w.Add(SliceQuery(AttributeSet::Of({1}), AttributeSet()), 3.0);
  EXPECT_EQ(w.size(), 2u);
  EXPECT_NEAR(w.TotalFrequency(), 5.0, 1e-12);
}

}  // namespace
}  // namespace olapidx
