// Differential test for the fast cube-graph builder: TryBuildCubeGraph
// (superset enumeration + prefix-class index costing + sharded parallel
// edge emission + lazy names) must produce a graph *identical* to
// BuildCubeGraphReference (the original serial triple loop) — same views,
// index keys, rendered names, edge sets, and bit-exact costs — for every
// workload, size distribution, option set, and thread count.

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cube_graph.h"
#include "data/synthetic.h"
#include "workload/workload.h"

namespace olapidx {
namespace {

// Exact equality everywhere: both builders must perform the same double
// divisions in the same order, so == (not NEAR) is the contract.
void ExpectIdenticalGraphs(const CubeGraph& fast, const CubeGraph& ref,
                           const std::string& label) {
  SCOPED_TRACE(label);
  const QueryViewGraph& f = fast.graph;
  const QueryViewGraph& r = ref.graph;
  ASSERT_EQ(f.num_views(), r.num_views());
  ASSERT_EQ(f.num_queries(), r.num_queries());
  ASSERT_EQ(f.num_structures(), r.num_structures());
  ASSERT_EQ(fast.view_attrs, ref.view_attrs);
  ASSERT_EQ(fast.index_keys, ref.index_keys);
  ASSERT_EQ(fast.queries.size(), ref.queries.size());
  for (size_t i = 0; i < fast.queries.size(); ++i) {
    ASSERT_EQ(fast.queries[i], ref.queries[i]) << "query " << i;
  }
  for (uint32_t q = 0; q < f.num_queries(); ++q) {
    ASSERT_EQ(f.query_name(q), r.query_name(q)) << "query " << q;
    ASSERT_EQ(f.query_default_cost(q), r.query_default_cost(q));
    ASSERT_EQ(f.query_frequency(q), r.query_frequency(q));
    ASSERT_EQ(f.QueryViews(q), r.QueryViews(q)) << "query " << q;
  }
  for (uint32_t v = 0; v < f.num_views(); ++v) {
    SCOPED_TRACE("view " + std::to_string(v));
    ASSERT_EQ(f.view_name(v), r.view_name(v));
    ASSERT_EQ(f.view_space(v), r.view_space(v));
    ASSERT_EQ(f.num_indexes(v), r.num_indexes(v));
    ASSERT_EQ(f.structure_maintenance(StructureRef{v, StructureRef::kNoIndex}),
              r.structure_maintenance(StructureRef{v, StructureRef::kNoIndex}));
    for (int32_t k = 0; k < f.num_indexes(v); ++k) {
      // Lazy rendering (fast) must match the eagerly stored string (ref).
      ASSERT_EQ(f.index_name(v, k), r.index_name(v, k)) << "index " << k;
      ASSERT_EQ(f.index_space(v, k), r.index_space(v, k));
      ASSERT_EQ(f.structure_maintenance(StructureRef{v, k}),
                r.structure_maintenance(StructureRef{v, k}));
    }
    ASSERT_EQ(f.ViewQueries(v), r.ViewQueries(v));
    const size_t nq = f.ViewQueries(v).size();
    for (size_t pos = 0; pos < nq; ++pos) {
      ASSERT_EQ(f.ViewCostAt(v, pos), r.ViewCostAt(v, pos)) << "pos " << pos;
      for (int32_t k = 0; k < f.num_indexes(v); ++k) {
        ASSERT_EQ(f.IndexCostAt(v, k, pos), r.IndexCostAt(v, k, pos))
            << "index " << k << " pos " << pos;
      }
    }
  }
  ASSERT_EQ(f.DefaultTotalCost(), r.DefaultTotalCost());
}

void CheckEquivalence(const SyntheticCube& cube, const Workload& workload,
                      CubeGraphOptions options, const std::string& label) {
  CubeGraph ref =
      BuildCubeGraphReference(cube.schema, cube.sizes, workload, options);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    options.num_threads = threads;
    StatusOr<CubeGraph> fast =
        TryBuildCubeGraph(cube.schema, cube.sizes, workload, options);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    ExpectIdenticalGraphs(*fast, ref,
                          label + " threads=" + std::to_string(threads));
  }
}

TEST(CubeGraphEquivalenceTest, FullSliceWorkloadAllDims) {
  for (int n = 1; n <= 5; ++n) {
    SyntheticCube cube = UniformSyntheticCube(n, 100, 0.05);
    CubeLattice lattice(cube.schema);
    CubeGraphOptions options;
    options.raw_scan_penalty = 2.0;
    CheckEquivalence(cube, AllSliceQueries(lattice), options,
                     "uniform n=" + std::to_string(n));
  }
}

TEST(CubeGraphEquivalenceTest, RandomCubesAndZipfWorkloads) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const int n = 3 + static_cast<int>(seed % 3);  // dims 3..5
    SyntheticCube cube = RandomSyntheticCube(n, 4, 5000, 0.1, seed);
    CubeLattice lattice(cube.schema);
    CubeGraphOptions options;
    options.raw_scan_penalty = 1.0 + 0.5 * static_cast<double>(seed % 4);
    CheckEquivalence(cube, ZipfSliceQueries(lattice, 1.1, seed), options,
                     "random seed=" + std::to_string(seed));
  }
}

TEST(CubeGraphEquivalenceTest, AblationAllOrderedSubsetIndexes) {
  for (int n = 2; n <= 4; ++n) {
    SyntheticCube cube =
        RandomSyntheticCube(n, 8, 400, 0.2, static_cast<uint64_t>(77 + n));
    CubeLattice lattice(cube.schema);
    CubeGraphOptions options;
    options.fat_indexes_only = false;
    options.raw_scan_penalty = 2.0;
    CheckEquivalence(cube, AllSliceQueries(lattice), options,
                     "ablation n=" + std::to_string(n));
  }
}

TEST(CubeGraphEquivalenceTest, MaintenanceAndCustomDefaultCost) {
  SyntheticCube cube = UniformSyntheticCube(4, 50, 0.1);
  CubeLattice lattice(cube.schema);
  CubeGraphOptions options;
  options.maintenance_per_row = 0.25;
  options.default_query_cost = 123456.0;
  CheckEquivalence(cube, AllSliceQueries(lattice), options, "maintenance");
}

TEST(CubeGraphEquivalenceTest, ApexSizeAboveOneKeepsEmptyPrefixClasses) {
  // SizeOf(∅) > 1 makes the empty-prefix class cost |C|/|∅| < scan, so the
  // permutations whose first attribute is not a selection attribute gain
  // real edges — the fast path must not skip them unconditionally.
  SyntheticCube cube = UniformSyntheticCube(3, 64, 0.5);
  cube.sizes.Set(AttributeSet(), 3.0);
  CubeLattice lattice(cube.schema);
  CubeGraphOptions options;
  options.raw_scan_penalty = 2.0;
  CheckEquivalence(cube, AllSliceQueries(lattice), options, "apex>1");
}

TEST(CubeGraphEquivalenceTest, SubsetWorkloadsAndDuplicateQueries) {
  // Workloads that do not cover all 3^n queries, contain duplicates, and
  // carry zero frequencies.
  SyntheticCube cube = RandomSyntheticCube(5, 10, 1000, 0.05, 9);
  Workload workload;
  Pcg32 rng(42);
  for (int i = 0; i < 40; ++i) {
    uint32_t all = rng.Next() & 31u;
    uint32_t sel = rng.Next() & all;
    workload.Add(SliceQuery(AttributeSet::FromMask(all & ~sel),
                            AttributeSet::FromMask(sel)),
                 (i % 7 == 0) ? 0.0 : 1.0 + static_cast<double>(i % 3));
  }
  // Duplicate the first few queries verbatim.
  for (int i = 0; i < 5; ++i) {
    workload.Add(workload[static_cast<size_t>(i)].query, 2.0);
  }
  CubeGraphOptions options;
  options.raw_scan_penalty = 1.5;
  CheckEquivalence(cube, workload, options, "subset workload");
}

TEST(CubeGraphEquivalenceTest, EmptyWorkloadStillBuildsStructures) {
  SyntheticCube cube = UniformSyntheticCube(3, 16, 0.5);
  CheckEquivalence(cube, Workload(), CubeGraphOptions{}, "empty workload");
}

TEST(CubeGraphEquivalenceTest, ExplicitPaperModelSeamIsBitIdentical) {
  // Routing costs through the CostModel seam with an explicit
  // PaperCostModel must reproduce both the default (nullptr) build and
  // the hard-coded |C|/|E| reference, division for division.
  for (uint64_t seed : {uint64_t{1}, uint64_t{5}}) {
    SyntheticCube cube = RandomSyntheticCube(4, 6, 2000, 0.1, seed);
    CubeLattice lattice(cube.schema);
    Workload workload = ZipfSliceQueries(lattice, 1.0, seed);
    CubeGraphOptions defaults;
    defaults.raw_scan_penalty = 2.0;
    CubeGraphOptions seamed = defaults;
    seamed.cost_model = std::make_shared<PaperCostModel>();

    StatusOr<CubeGraph> base =
        TryBuildCubeGraph(cube.schema, cube.sizes, workload, defaults);
    StatusOr<CubeGraph> via_seam =
        TryBuildCubeGraph(cube.schema, cube.sizes, workload, seamed);
    ASSERT_TRUE(base.ok() && via_seam.ok());
    ExpectIdenticalGraphs(*via_seam, *base,
                          "seam vs default seed=" + std::to_string(seed));
    CubeGraph ref =
        BuildCubeGraphReference(cube.schema, cube.sizes, workload, defaults);
    ExpectIdenticalGraphs(*via_seam, ref,
                          "seam vs reference seed=" + std::to_string(seed));
  }
}

}  // namespace
}  // namespace olapidx
