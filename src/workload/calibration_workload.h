// Calibration workload: a deterministic sweep over slice-query *shapes*.
//
// The cost-model calibration pipeline (calibration/calibrator.h) needs
// probes that vary along the axes the model must explain: selection arity
// (how long an index prefix can get), group-by arity (result width), and —
// via the runner's catalog phases — covered vs non-covered index access.
// A plain workload sampler (workload.h) draws from a frequency
// distribution; this sweep instead enumerates every (group_by, selection)
// partition of the schema's attributes, each attribute taking one of
// {group, select, absent} — 3^n shapes — in a canonical order, optionally
// thinned to a cap by an even deterministic stride. Same schema + same
// options → the same queries, always; that determinism is what lets the
// golden calibration test pin the extracted feature columns.

#ifndef OLAPIDX_WORKLOAD_CALIBRATION_WORKLOAD_H_
#define OLAPIDX_WORKLOAD_CALIBRATION_WORKLOAD_H_

#include <cstddef>
#include <vector>

#include "lattice/schema.h"
#include "workload/slice_query.h"

namespace olapidx {

struct CalibrationWorkloadOptions {
  // Keep at most this many queries (0 = all 3^n). Thinning picks an even
  // stride through the canonical order, preserving shape diversity.
  size_t max_queries = 0;
  // Drop the no-op shape γ_∅ σ_∅ (it measures fixed overhead only; the
  // fitter usually wants it, so it is kept by default).
  bool skip_empty = false;
};

// All (group_by, selection) shapes over `schema`'s attributes, in canonical
// order: ascending mentioned-attribute mask, then ascending selection
// submask within it.
std::vector<SliceQuery> CalibrationSweep(
    const CubeSchema& schema, const CalibrationWorkloadOptions& options = {});

}  // namespace olapidx

#endif  // OLAPIDX_WORKLOAD_CALIBRATION_WORKLOAD_H_
