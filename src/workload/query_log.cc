#include "workload/query_log.h"

#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>

namespace olapidx {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  out.push_back(current);
  return out;
}

// Resolves a comma-separated name list ("-" or empty = none).
bool ParseAttrs(const std::string& field, const CubeSchema& schema,
                AttributeSet* attrs, std::string* error) {
  *attrs = AttributeSet();
  std::string trimmed = Trim(field);
  if (trimmed.empty() || trimmed == "-") return true;
  for (const std::string& raw : Split(trimmed, ',')) {
    std::string name = Trim(raw);
    int found = -1;
    for (int a = 0; a < schema.num_dimensions(); ++a) {
      if (schema.dimension(a).name == name) {
        found = a;
        break;
      }
    }
    if (found < 0) {
      *error = "unknown dimension '" + name + "'";
      return false;
    }
    if (attrs->Contains(found)) {
      *error = "duplicate dimension '" + name + "'";
      return false;
    }
    *attrs = attrs->With(found);
  }
  return true;
}

}  // namespace

bool ParseQueryLog(const std::string& text, const CubeSchema& schema,
                   Workload* workload, std::string* error) {
  OLAPIDX_CHECK(workload != nullptr);
  OLAPIDX_CHECK(error != nullptr);
  std::map<SliceQuery, size_t> position;  // query -> index in `queries`
  std::vector<WeightedQuery> queries;

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& message) {
    *error = "line " + std::to_string(line_no) + ": " + message;
    return false;
  };
  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    if (Trim(line).empty()) continue;

    std::vector<std::string> fields = Split(line, ';');
    if (fields.size() != 2 && fields.size() != 3) {
      return fail("expected 'group-by ; selection [; count]'");
    }
    AttributeSet group_by, selection;
    std::string attr_error;
    if (!ParseAttrs(fields[0], schema, &group_by, &attr_error)) {
      return fail(attr_error);
    }
    if (!ParseAttrs(fields[1], schema, &selection, &attr_error)) {
      return fail(attr_error);
    }
    if (group_by.Intersects(selection)) {
      return fail("group-by and selection attributes overlap");
    }
    double count = 1.0;
    if (fields.size() == 3 && !Trim(fields[2]).empty()) {
      char* end = nullptr;
      std::string count_str = Trim(fields[2]);
      count = std::strtod(count_str.c_str(), &end);
      // !(count > 0) also rejects NaN, whose comparisons are all false.
      if (end == nullptr || *end != '\0' || !(count > 0.0) ||
          !std::isfinite(count)) {
        return fail("bad count '" + count_str + "'");
      }
    }
    SliceQuery query(group_by, selection);
    auto [it, inserted] = position.emplace(query, queries.size());
    if (inserted) {
      queries.push_back(WeightedQuery{query, count});
    } else {
      queries[it->second].frequency += count;
    }
  }
  *workload = Workload(std::move(queries));
  error->clear();
  return true;
}

std::string FormatQueryLog(const Workload& workload,
                           const CubeSchema& schema) {
  std::string out;
  auto attrs_str = [&](AttributeSet attrs) -> std::string {
    if (attrs.empty()) return "-";
    std::string s;
    for (int a : attrs.ToVector()) {
      if (!s.empty()) s += ",";
      s += schema.dimension(a).name;
    }
    return s;
  };
  for (const WeightedQuery& wq : workload.queries()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", wq.frequency);
    out += attrs_str(wq.query.group_by()) + " ; " +
           attrs_str(wq.query.selection()) + " ; " + buf + "\n";
  }
  return out;
}

}  // namespace olapidx
