// FrequencySketch: a sharded concurrent frequency map over observed slice
// queries — the service's record of what the workload *actually* looks
// like, as opposed to the workload the current design was selected for.
//
// Executed queries stream in via TryRecord from many threads; a query is
// keyed by its (group_by, selection) mask pair, so the sketch is exact per
// distinct slice query (the query population is at most 3^n, and observed
// workloads concentrate on far fewer — exact counting is cheap and keeps
// drift detection deterministic, unlike a lossy count-min sketch).
// Sharding by key hash keeps concurrent inserts from serializing on one
// mutex; reads (Snapshot, totals) lock shard-by-shard and are safe to run
// concurrently with inserts.
//
// Snapshot() returns entries sorted by query, so every derived artifact —
// the ToWorkload() used for re-selection, the KL drift score, the journaled
// observation list — is bit-identical for a given multiset of observations
// regardless of insertion order or thread interleaving.

#ifndef OLAPIDX_WORKLOAD_FREQUENCY_SKETCH_H_
#define OLAPIDX_WORKLOAD_FREQUENCY_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "workload/slice_query.h"
#include "workload/workload.h"

namespace olapidx {

class FrequencySketch {
 public:
  // `num_shards` bounds insert contention; 0 is treated as 1. The shard
  // count does not affect any observable result, only throughput.
  explicit FrequencySketch(size_t num_shards = 8);

  FrequencySketch(const FrequencySketch&) = delete;
  FrequencySketch& operator=(const FrequencySketch&) = delete;

  // Records one execution of `query` with weight `weight` (> 0).
  // Thread-safe. Crosses the "service.sketch.insert" fault point: on an
  // injected failure the observation is dropped — the sketch is unchanged
  // and stays consistent — and the injected Status is returned so the
  // caller can count the drop.
  Status TryRecord(const SliceQuery& query, double weight = 1.0);

  struct Entry {
    SliceQuery query;
    double weight = 0.0;   // sum of recorded weights
    uint64_t count = 0;    // number of TryRecord calls
  };

  // All entries sorted by query (deterministic regardless of insertion
  // order). Safe to call concurrently with TryRecord; the result is a
  // consistent per-shard snapshot.
  std::vector<Entry> Snapshot() const;

  // Number of successful TryRecord calls since construction / Clear().
  uint64_t TotalCount() const;
  // Sum of recorded weights.
  double TotalWeight() const;
  // Number of distinct queries observed.
  size_t DistinctQueries() const;

  // The observed workload: one WeightedQuery per distinct observed query,
  // frequency = accumulated weight, in Snapshot() order.
  Workload ToWorkload() const;

  // Drops every observation (the per-epoch reset after a drift check).
  void Clear();

  // Reinstates a journaled entry exactly (weight AND count), accumulating
  // onto any existing entry. No fault point — journal restore must be
  // able to rebuild the pre-crash sketch bit-identically even while fault
  // plans are armed. Not for live observation paths; use TryRecord.
  void RestoreEntry(const SliceQuery& query, double weight, uint64_t count);

 private:
  struct Shard {
    mutable std::mutex mu;
    // key = (group_by mask << 32) | selection mask -> (weight, count)
    std::map<uint64_t, std::pair<double, uint64_t>> entries;
  };

  static uint64_t KeyOf(const SliceQuery& query);
  size_t ShardFor(uint64_t key) const;

  // unique_ptr because Shard (holding a mutex) is immovable and the shard
  // count is a runtime parameter.
  std::vector<std::unique_ptr<Shard>> shards_;
};

// Kullback–Leibler divergence D(P ‖ Q) in nats between the query
// distributions of two sketches, with add-`smoothing` regularization over
// the union support (so a query seen in P but never in Q contributes a
// large-but-finite term instead of infinity). Symmetric in neither
// argument: P is the current epoch, Q the baseline. Returns 0 when either
// sketch is empty (no evidence of drift).
double KlDivergence(const FrequencySketch& current,
                    const FrequencySketch& baseline, double smoothing = 0.5);

}  // namespace olapidx

#endif  // OLAPIDX_WORKLOAD_FREQUENCY_SKETCH_H_
