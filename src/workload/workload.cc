#include "workload/workload.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace olapidx {

namespace {

// Enumerates all 3^n (group-by, selection) pairs. For each dimension the
// trit is 0 = absent, 1 = group-by, 2 = selection.
std::vector<SliceQuery> EnumerateAll(const CubeLattice& lattice) {
  int n = lattice.num_dimensions();
  uint64_t total = 1;
  for (int i = 0; i < n; ++i) total *= 3;
  std::vector<SliceQuery> out;
  out.reserve(total);
  for (uint64_t code = 0; code < total; ++code) {
    AttributeSet group_by;
    AttributeSet selection;
    uint64_t c = code;
    for (int a = 0; a < n; ++a) {
      switch (c % 3) {
        case 1:
          group_by = group_by.With(a);
          break;
        case 2:
          selection = selection.With(a);
          break;
        default:
          break;
      }
      c /= 3;
    }
    out.emplace_back(group_by, selection);
  }
  return out;
}

}  // namespace

Workload::Workload(std::vector<WeightedQuery> queries)
    : queries_(std::move(queries)) {
  for (const WeightedQuery& wq : queries_) {
    OLAPIDX_CHECK(wq.frequency >= 0.0);
  }
}

double Workload::TotalFrequency() const {
  return std::accumulate(
      queries_.begin(), queries_.end(), 0.0,
      [](double acc, const WeightedQuery& wq) { return acc + wq.frequency; });
}

void Workload::Normalize() {
  double total = TotalFrequency();
  OLAPIDX_CHECK(total > 0.0);
  for (WeightedQuery& wq : queries_) wq.frequency /= total;
}

void Workload::Add(SliceQuery query, double frequency) {
  OLAPIDX_CHECK(frequency >= 0.0);
  queries_.push_back(WeightedQuery{query, frequency});
}

Workload AllSliceQueries(const CubeLattice& lattice) {
  std::vector<WeightedQuery> out;
  for (const SliceQuery& q : EnumerateAll(lattice)) {
    out.push_back(WeightedQuery{q, 1.0});
  }
  return Workload(std::move(out));
}

Workload ZipfSliceQueries(const CubeLattice& lattice, double skew,
                          uint64_t seed) {
  std::vector<SliceQuery> all = EnumerateAll(lattice);
  // Shuffle rank assignment deterministically.
  Pcg32 rng(seed);
  for (size_t i = all.size(); i > 1; --i) {
    size_t j = rng.NextBounded(static_cast<uint32_t>(i));
    std::swap(all[i - 1], all[j]);
  }
  ZipfSampler zipf(static_cast<uint32_t>(all.size()), skew);
  std::vector<WeightedQuery> out;
  out.reserve(all.size());
  for (size_t k = 0; k < all.size(); ++k) {
    out.push_back(
        WeightedQuery{all[k], zipf.Probability(static_cast<uint32_t>(k))});
  }
  return Workload(std::move(out));
}

Workload SampledZipfSliceQueries(const CubeLattice& lattice, double skew,
                                 size_t num_queries, uint64_t seed) {
  const int n = lattice.num_dimensions();
  uint64_t total = 1;
  for (int i = 0; i < n; ++i) total *= 3;
  OLAPIDX_CHECK(num_queries > 0 && num_queries <= total);

  // Rejection-sample distinct queries: each draw picks an independent trit
  // per dimension (absent / group-by / selection), so the sample is uniform
  // over the 3^n population without ever enumerating it.
  Pcg32 rng(seed);
  std::vector<SliceQuery> sample;
  sample.reserve(num_queries);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_queries * 2);
  while (sample.size() < num_queries) {
    uint32_t group = 0;
    uint32_t sel = 0;
    for (int a = 0; a < n; ++a) {
      switch (rng.NextBounded(3)) {
        case 1:
          group |= 1u << a;
          break;
        case 2:
          sel |= 1u << a;
          break;
        default:
          break;
      }
    }
    uint64_t key = (static_cast<uint64_t>(group) << 32) | sel;
    if (!seen.insert(key).second) continue;
    sample.emplace_back(AttributeSet::FromMask(group),
                        AttributeSet::FromMask(sel));
  }

  // Draw rank = heat rank: the k-th distinct query sampled gets the k-th
  // Zipf mass, mirroring ZipfSliceQueries' shuffled rank assignment.
  ZipfSampler zipf(static_cast<uint32_t>(num_queries), skew);
  std::vector<WeightedQuery> out;
  out.reserve(num_queries);
  for (size_t k = 0; k < num_queries; ++k) {
    out.push_back(
        WeightedQuery{sample[k], zipf.Probability(static_cast<uint32_t>(k))});
  }
  return Workload(std::move(out));
}

Workload HotDimensionSliceQueries(const CubeLattice& lattice,
                                  AttributeSet hot_attrs, double hot_boost) {
  OLAPIDX_CHECK(hot_boost >= 1.0);
  std::vector<WeightedQuery> out;
  for (const SliceQuery& q : EnumerateAll(lattice)) {
    double f = 1.0;
    for (int a : q.AllAttributes().Intersect(hot_attrs).ToVector()) {
      (void)a;
      f *= hot_boost;
    }
    out.push_back(WeightedQuery{q, f});
  }
  Workload w(std::move(out));
  w.Normalize();
  return w;
}

}  // namespace olapidx
