// Workload: the population of slice queries the system must support, each
// with a frequency. Section 5.1 assumes uniform frequencies; the algorithms
// generalize to arbitrary f_i (we exercise that in experiment E7).

#ifndef OLAPIDX_WORKLOAD_WORKLOAD_H_
#define OLAPIDX_WORKLOAD_WORKLOAD_H_

#include <vector>

#include "common/rng.h"
#include "lattice/cube_lattice.h"
#include "workload/slice_query.h"

namespace olapidx {

struct WeightedQuery {
  SliceQuery query;
  double frequency = 1.0;
};

class Workload {
 public:
  Workload() = default;
  explicit Workload(std::vector<WeightedQuery> queries);

  const std::vector<WeightedQuery>& queries() const { return queries_; }
  size_t size() const { return queries_.size(); }
  bool empty() const { return queries_.empty(); }
  const WeightedQuery& operator[](size_t i) const { return queries_[i]; }

  // Sum of all frequencies.
  double TotalFrequency() const;

  // Rescales frequencies so they sum to 1.
  void Normalize();

  void Add(SliceQuery query, double frequency = 1.0);

 private:
  std::vector<WeightedQuery> queries_;
};

// All 3^n slice queries of an n-dimensional cube, equiprobable
// (each attribute is a group-by attribute, a selection attribute, or absent).
Workload AllSliceQueries(const CubeLattice& lattice);

// All 3^n slice queries with Zipf(skew)-distributed frequencies; the rank
// order of queries is shuffled with `seed` so the skew does not correlate
// with enumeration order.
Workload ZipfSliceQueries(const CubeLattice& lattice, double skew,
                          uint64_t seed);

// A sample of `num_queries` *distinct* slice queries with Zipf(skew)
// frequencies assigned by draw rank (first drawn = hottest). Unlike
// ZipfSliceQueries this never materializes the 3^n population — each draw
// picks an independent trit per dimension — so it scales to the 12–20
// dimension cubes where full enumeration is impossible. Deterministic in
// `seed`. Requires num_queries ≤ 3^n.
Workload SampledZipfSliceQueries(const CubeLattice& lattice, double skew,
                                 size_t num_queries, uint64_t seed);

// All 3^n slice queries, weighting each query by `hot_boost` for every hot
// attribute it mentions — models workloads concentrated on a few dimensions
// (the paper's [MS95] "most frequently used dimensions" setting).
Workload HotDimensionSliceQueries(const CubeLattice& lattice,
                                  AttributeSet hot_attrs, double hot_boost);

}  // namespace olapidx

#endif  // OLAPIDX_WORKLOAD_WORKLOAD_H_
