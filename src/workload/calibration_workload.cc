#include "workload/calibration_workload.h"

#include "lattice/attribute_set.h"

namespace olapidx {

std::vector<SliceQuery> CalibrationSweep(
    const CubeSchema& schema, const CalibrationWorkloadOptions& options) {
  const int n = schema.num_dimensions();
  OLAPIDX_CHECK(n >= 1 && n <= kMaxDimensions);
  std::vector<SliceQuery> all;
  const uint32_t num_masks = 1u << n;
  for (uint32_t mentioned = 0; mentioned < num_masks; ++mentioned) {
    for (uint32_t sel = 0; sel <= mentioned; ++sel) {
      if ((sel & mentioned) != sel) continue;  // sel ⊆ mentioned only
      if (options.skip_empty && mentioned == 0) continue;
      all.emplace_back(AttributeSet::FromMask(mentioned & ~sel),
                       AttributeSet::FromMask(sel));
    }
  }
  if (options.max_queries == 0 || all.size() <= options.max_queries) {
    return all;
  }
  // Even stride through the canonical order: query i of the thinned sweep
  // is all[floor(i * |all| / cap)] — first shape always kept, coverage
  // spread across the whole (mentioned, selection) range.
  std::vector<SliceQuery> thinned;
  thinned.reserve(options.max_queries);
  for (size_t i = 0; i < options.max_queries; ++i) {
    thinned.push_back(all[i * all.size() / options.max_queries]);
  }
  return thinned;
}

}  // namespace olapidx
