#include "workload/frequency_sketch.h"

#include <cmath>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/rng.h"

namespace olapidx {

FrequencySketch::FrequencySketch(size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

uint64_t FrequencySketch::KeyOf(const SliceQuery& query) {
  return (static_cast<uint64_t>(query.group_by().mask()) << 32) |
         static_cast<uint64_t>(query.selection().mask());
}

size_t FrequencySketch::ShardFor(uint64_t key) const {
  // SplitMix64 spreads the structured mask pairs across shards; the shard
  // choice is pure function of the key, so the same query always lands on
  // the same shard (its weight accumulates in one place).
  return static_cast<size_t>(SplitMix64(key).Next() % shards_.size());
}

Status FrequencySketch::TryRecord(const SliceQuery& query, double weight) {
  OLAPIDX_FAULT_POINT("service.sketch.insert");
  if (!(weight > 0.0)) {
    return Status::InvalidArgument("observation weight must be > 0");
  }
  OLAPIDX_METRIC_COUNTER(observed, "sketch.observations");
  observed.Add(1);
  uint64_t key = KeyOf(query);
  Shard& shard = *shards_[ShardFor(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.entries[key];
  slot.first += weight;
  slot.second += 1;
  return Status::Ok();
}

std::vector<FrequencySketch::Entry> FrequencySketch::Snapshot() const {
  // Keys are (group_by << 32) | selection, and shard maps are key-ordered,
  // so merging the shards and sorting by key reproduces SliceQuery's own
  // (group_by, selection) ordering — the snapshot is deterministic in the
  // observed multiset alone.
  std::map<uint64_t, std::pair<double, uint64_t>> merged;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, slot] : shard->entries) {
      auto& out = merged[key];
      out.first += slot.first;
      out.second += slot.second;
    }
  }
  std::vector<Entry> entries;
  entries.reserve(merged.size());
  for (const auto& [key, slot] : merged) {
    Entry e;
    e.query = SliceQuery(
        AttributeSet::FromMask(static_cast<uint32_t>(key >> 32)),
        AttributeSet::FromMask(static_cast<uint32_t>(key & 0xffffffffu)));
    e.weight = slot.first;
    e.count = slot.second;
    entries.push_back(e);
  }
  return entries;
}

uint64_t FrequencySketch::TotalCount() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, slot] : shard->entries) {
      (void)key;
      total += slot.second;
    }
  }
  return total;
}

double FrequencySketch::TotalWeight() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, slot] : shard->entries) {
      (void)key;
      total += slot.first;
    }
  }
  return total;
}

size_t FrequencySketch::DistinctQueries() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

Workload FrequencySketch::ToWorkload() const {
  Workload workload;
  for (const Entry& e : Snapshot()) {
    workload.Add(e.query, e.weight);
  }
  return workload;
}

void FrequencySketch::RestoreEntry(const SliceQuery& query, double weight,
                                   uint64_t count) {
  uint64_t key = KeyOf(query);
  Shard& shard = *shards_[ShardFor(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.entries[key];
  slot.first += weight;
  slot.second += count;
}

void FrequencySketch::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->entries.clear();
  }
}

double KlDivergence(const FrequencySketch& current,
                    const FrequencySketch& baseline, double smoothing) {
  OLAPIDX_CHECK(smoothing > 0.0);
  std::vector<FrequencySketch::Entry> p = current.Snapshot();
  std::vector<FrequencySketch::Entry> q = baseline.Snapshot();
  if (p.empty() || q.empty()) return 0.0;

  // Union support via a sorted two-pointer merge (both snapshots are in
  // query order). Add-`smoothing` puts every union query in both
  // distributions' support, so the divergence is always finite.
  double p_total = 0.0, q_total = 0.0;
  for (const auto& e : p) p_total += e.weight;
  for (const auto& e : q) q_total += e.weight;

  size_t support = 0;
  {
    size_t i = 0, j = 0;
    while (i < p.size() || j < q.size()) {
      if (j >= q.size() || (i < p.size() && p[i].query < q[j].query)) {
        ++i;
      } else if (i >= p.size() || q[j].query < p[i].query) {
        ++j;
      } else {
        ++i;
        ++j;
      }
      ++support;
    }
  }
  double p_norm = p_total + smoothing * static_cast<double>(support);
  double q_norm = q_total + smoothing * static_cast<double>(support);

  double kl = 0.0;
  size_t i = 0, j = 0;
  while (i < p.size() || j < q.size()) {
    double pw = smoothing, qw = smoothing;
    if (j >= q.size() || (i < p.size() && p[i].query < q[j].query)) {
      pw += p[i++].weight;
    } else if (i >= p.size() || q[j].query < p[i].query) {
      qw += q[j++].weight;
    } else {
      pw += p[i++].weight;
      qw += q[j++].weight;
    }
    double pi = pw / p_norm;
    double qi = qw / q_norm;
    kl += pi * std::log(pi / qi);
  }
  // Floating-point cancellation can leave a tiny negative residue when the
  // distributions are identical; KL is ≥ 0 by definition.
  return kl < 0.0 ? 0.0 : kl;
}

}  // namespace olapidx
