// Query-log ingestion: turn a textual log of slice queries into a Workload
// with observed frequencies — the practical way to feed the advisor the
// f_i of Section 5.1.
//
// Format: one query per line,
//
//     <group-by attrs> ; <selection attrs> ; <count>
//
// where each attrs field is a comma-separated list of dimension names or
// "-" for the empty set, and <count> is a positive number (optional,
// default 1). '#' starts a comment; blank lines are ignored. Repeated
// queries accumulate their counts. Example:
//
//     # dashboard traffic, week 27
//     c    ; p,s ; 120
//     p,c  ; -   ; 3
//     -    ; p   ; 15

#ifndef OLAPIDX_WORKLOAD_QUERY_LOG_H_
#define OLAPIDX_WORKLOAD_QUERY_LOG_H_

#include <string>

#include "lattice/schema.h"
#include "workload/workload.h"

namespace olapidx {

// Parses `text`. On success returns true and fills `workload` (queries in
// first-appearance order, counts accumulated). On failure returns false
// and describes the problem (with a line number) in `error`.
bool ParseQueryLog(const std::string& text, const CubeSchema& schema,
                   Workload* workload, std::string* error);

// Renders a workload in the same format (one line per query).
std::string FormatQueryLog(const Workload& workload,
                           const CubeSchema& schema);

}  // namespace olapidx

#endif  // OLAPIDX_WORKLOAD_QUERY_LOG_H_
