#include "workload/slice_query.h"

namespace olapidx {

std::string SliceQuery::ToString(
    const std::vector<std::string>& names) const {
  std::string out = "g{" + group_by_.ToString(names) + "}";
  if (!selection_.empty()) out += "s{" + selection_.ToString(names) + "}";
  return out;
}

}  // namespace olapidx
