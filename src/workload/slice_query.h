// SliceQuery: γ_A σ_B — group by the attributes in A after selecting on the
// attributes in B (Section 3.2). A and B are disjoint; B empty means a whole
// subcube query; A empty means full aggregation. Every query is associated
// with its smallest answering view A ∪ B.

#ifndef OLAPIDX_WORKLOAD_SLICE_QUERY_H_
#define OLAPIDX_WORKLOAD_SLICE_QUERY_H_

#include <string>
#include <vector>

#include "lattice/attribute_set.h"

namespace olapidx {

class SliceQuery {
 public:
  SliceQuery() = default;
  SliceQuery(AttributeSet group_by, AttributeSet selection)
      : group_by_(group_by), selection_(selection) {
    OLAPIDX_CHECK(!group_by.Intersects(selection));
  }

  AttributeSet group_by() const { return group_by_; }
  AttributeSet selection() const { return selection_; }

  // All attributes the query mentions; the smallest view that can answer it.
  AttributeSet AllAttributes() const { return group_by_.Union(selection_); }

  // True iff the query can be answered from a view with attributes
  // `view_attrs` (the computability relation Q ≪ V).
  bool AnswerableFrom(AttributeSet view_attrs) const {
    return AllAttributes().IsSubsetOf(view_attrs);
  }

  // "g{c}s{ps}" style rendering, e.g. γ_c σ_ps.
  std::string ToString(const std::vector<std::string>& names) const;

  friend bool operator==(const SliceQuery& a, const SliceQuery& b) {
    return a.group_by_ == b.group_by_ && a.selection_ == b.selection_;
  }
  friend bool operator<(const SliceQuery& a, const SliceQuery& b) {
    if (a.group_by_ != b.group_by_) return a.group_by_ < b.group_by_;
    return a.selection_ < b.selection_;
  }

 private:
  AttributeSet group_by_;
  AttributeSet selection_;
};

}  // namespace olapidx

#endif  // OLAPIDX_WORKLOAD_SLICE_QUERY_H_
