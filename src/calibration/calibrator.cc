#include "calibration/calibrator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/metrics.h"
#include "common/rng.h"
#include "engine/batch_executor.h"
#include "engine/catalog.h"
#include "engine/executor.h"
#include "workload/calibration_workload.h"

namespace olapidx {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// Selection values for `query`, copied from fact row `row` in ascending
// attribute order (the Executor's convention) — every probe matches at
// least that row, so selectivity tracks the data distribution.
std::vector<uint32_t> SelectionValuesFromRow(const FactTable& fact,
                                             const SliceQuery& query,
                                             size_t row) {
  std::vector<uint32_t> values;
  for (int a : query.selection().ToVector()) {
    values.push_back(fact.dim(row, a));
  }
  return values;
}

// One catalog phase of the sweep: execute every query `repeats` times,
// recording features from the counters' deltas and the minimum wall time.
void RunPhase(const Executor& executor, const FactTable& fact,
              const std::vector<SliceQuery>& sweep,
              const std::vector<size_t>& value_rows, const char* phase,
              int repeats, CalibrationDataset* dataset) {
  for (size_t qi = 0; qi < sweep.size(); ++qi) {
    const SliceQuery& query = sweep[qi];
    const std::vector<uint32_t> values =
        SelectionValuesFromRow(fact, query, value_rows[qi]);
    CalibrationProbe probe;
    probe.query = query;
    probe.phase = phase;
    probe.wall_ns = std::numeric_limits<uint64_t>::max();
    for (int r = 0; r < repeats; ++r) {
      MetricsRunScope scope;
      ExecutionStats stats;
      const uint64_t t0 = NowNs();
      GroupedResult result = executor.Execute(query, values, &stats);
      const uint64_t t1 = NowNs();
      probe.wall_ns = std::min(probe.wall_ns, t1 - t0);
      if (r > 0) continue;  // features are deterministic; record them once
      const MetricsSnapshot delta = scope.Delta();
      probe.touched_rows = stats.rows_processed;
      probe.btree_node_touches = delta.CounterValue("btree.node_touches");
      probe.scan_rows = delta.CounterValue("executor.rows_raw_scanned") +
                        delta.CounterValue("executor.rows_view_scanned");
      probe.index_rows = delta.CounterValue("executor.rows_index_probed");
      probe.result_rows = result.num_rows();
      probe.used_index = !stats.used_raw && !stats.index.empty();
    }
    dataset->probes.push_back(std::move(probe));
  }
}

double Clamped(double coefficient) {
  return coefficient < 0.0 ? 0.0 : coefficient;
}

}  // namespace

std::string CalibrationDataset::ToJson() const {
  std::string out = "{\n";
  out += "  \"schema\": \"olapidx-calibration\",\n";
  out += "  \"version\": " + std::to_string(version) + ",\n";
  out += "  \"num_dimensions\": " + std::to_string(num_dimensions) + ",\n";
  out += "  \"fact_rows\": " + std::to_string(fact_rows) + ",\n";
  out += std::string("  \"metrics_enabled\": ") +
         (metrics_enabled ? "true" : "false") + ",\n";
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  out += "  \"probes\": [\n";
  for (size_t i = 0; i < probes.size(); ++i) {
    const CalibrationProbe& p = probes[i];
    out += "    {\"group_by_mask\": " +
           std::to_string(p.query.group_by().mask()) +
           ", \"selection_mask\": " +
           std::to_string(p.query.selection().mask()) +
           ", \"phase\": \"" + JsonEscape(p.phase) + "\"";
    out += ", \"touched_rows\": " + std::to_string(p.touched_rows);
    out += ", \"btree_node_touches\": " +
           std::to_string(p.btree_node_touches);
    out += ", \"scan_rows\": " + std::to_string(p.scan_rows);
    out += ", \"index_rows\": " + std::to_string(p.index_rows);
    out += ", \"result_rows\": " + std::to_string(p.result_rows);
    out += ", \"wall_ns\": " + std::to_string(p.wall_ns);
    out += std::string(", \"used_index\": ") +
           (p.used_index ? "true" : "false");
    out += i + 1 < probes.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

StatusOr<CalibrationDataset> RunCalibration(
    const FactTable& fact, const CalibrationRunOptions& options) {
  if (fact.num_rows() == 0) {
    return Status::InvalidArgument(
        "calibration: the fact table has no rows");
  }
  if (options.repeats < 1) {
    return Status::InvalidArgument("calibration: repeats must be >= 1");
  }
  const CubeSchema& schema = fact.schema();
  CalibrationWorkloadOptions sweep_options;
  sweep_options.max_queries = options.max_queries;
  const std::vector<SliceQuery> sweep =
      CalibrationSweep(schema, sweep_options);

  // One fact-row draw per sweep query, shared across phases so the three
  // measurements of a shape answer the same concrete query.
  Pcg32 rng(options.seed);
  std::vector<size_t> value_rows;
  value_rows.reserve(sweep.size());
  for (size_t i = 0; i < sweep.size(); ++i) {
    value_rows.push_back(rng.NextBounded(
        static_cast<uint32_t>(std::min<size_t>(fact.num_rows(), ~0u))));
  }

  CalibrationDataset dataset;
  dataset.num_dimensions = schema.num_dimensions();
  dataset.fact_rows = fact.num_rows();
  dataset.seed = options.seed;
#if defined(OLAPIDX_METRICS_ENABLED)
  dataset.metrics_enabled = true;
#else
  dataset.metrics_enabled = false;
#endif

  const int n = schema.num_dimensions();
  const uint32_t num_views = 1u << n;

  {  // Phase "raw": nothing materialized, every plan scans the fact table.
    Catalog catalog(&fact);
    Executor executor(&catalog);
    RunPhase(executor, fact, sweep, value_rows, "raw", options.repeats,
             &dataset);
  }
  {  // Phase "view": every subcube materialized, no indexes — view scans
    // whose size varies across the lattice.
    Catalog catalog(&fact);
    for (uint32_t mask = 0; mask < num_views; ++mask) {
      catalog.MaterializeView(AttributeSet::FromMask(mask));
    }
    Executor executor(&catalog);
    RunPhase(executor, fact, sweep, value_rows, "view", options.repeats,
             &dataset);
  }
  {  // Phase "index": views plus one ascending-order fat index each —
    // covered probes when the query's selection is a key prefix, partially
    // covered or plain scans otherwise.
    Catalog catalog(&fact);
    for (uint32_t mask = 0; mask < num_views; ++mask) {
      AttributeSet attrs = AttributeSet::FromMask(mask);
      catalog.MaterializeView(attrs);
      if (attrs.empty()) continue;
      Status built = catalog.BuildIndex(attrs, IndexKey(attrs.ToVector()));
      if (!built.ok()) return built.WithContext("calibration index build");
    }
    Executor executor(&catalog);
    RunPhase(executor, fact, sweep, value_rows, "index", options.repeats,
             &dataset);
  }
  return dataset;
}

StatusOr<CalibrationFitResult> FitCalibratedModel(
    const CalibrationDataset& dataset, CalibrationTarget target) {
  if (dataset.probes.empty()) {
    return Status::InvalidArgument("calibration: empty dataset");
  }
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  rows.reserve(dataset.probes.size());
  targets.reserve(dataset.probes.size());
  for (const CalibrationProbe& p : dataset.probes) {
    const double touched = static_cast<double>(p.touched_rows);
    const double nodes = static_cast<double>(p.btree_node_touches);
    rows.push_back({touched, nodes, 1.0});
    targets.push_back(target == CalibrationTarget::kWallNs
                          ? static_cast<double>(p.wall_ns)
                          : kSimulatedTruth.per_row * touched +
                                kSimulatedTruth.per_node * nodes +
                                kSimulatedTruth.fixed);
  }
  LeastSquaresOptions fit_options;
  fit_options.drop_degenerate_columns = true;
  StatusOr<LeastSquaresFit> fit = FitLeastSquares(rows, targets, fit_options);
  if (!fit.ok()) return fit.status().WithContext("calibration fit");

  CalibrationFitResult result;
  result.coefficients.per_row = Clamped(fit->coefficients[0]);
  result.coefficients.per_node = Clamped(fit->coefficients[1]);
  result.coefficients.fixed = Clamped(fit->coefficients[2]);
  result.dropped_columns = fit->dropped_columns;
  result.r_squared = fit->r_squared;
  result.probes = dataset.probes.size();
  return result;
}

DesignCost DesignCostUnderModel(
    const CubeSchema& schema, const ViewSizes& sizes,
    const Workload& workload,
    const std::vector<RecommendedStructure>& design, const CostModel& model,
    double raw_scan_penalty) {
  const double default_cost = model.ScanCost(
      raw_scan_penalty * sizes.SizeOf(schema.AllAttributes()));
  DesignCost out;
  double total_frequency = 0.0;
  for (const WeightedQuery& wq : workload.queries()) {
    double best = default_cost;
    for (const RecommendedStructure& s : design) {
      if (!wq.query.AnswerableFrom(s.view)) continue;
      const double view_rows = sizes.SizeOf(s.view);
      const double c =
          s.is_view()
              ? model.ScanCost(view_rows)
              : model.IndexCost(view_rows,
                                sizes.SizeOf(s.index.LongestSelectionPrefix(
                                    wq.query.selection())));
      best = std::min(best, c);
    }
    out.total += wq.frequency * best;
    total_frequency += wq.frequency;
  }
  out.average = total_frequency > 0.0 ? out.total / total_frequency : 0.0;
  return out;
}

StatusOr<PairedSelectionResult> RunPairedSelection(
    const CubeSchema& schema, const ViewSizes& sizes,
    const Workload& workload, const AdvisorConfig& config,
    std::shared_ptr<const CalibratedCostModel> model,
    const CubeGraphOptions& base_options) {
  if (model == nullptr) {
    return Status::InvalidArgument(
        "paired selection: a calibrated model is required");
  }
  StatusOr<Advisor> paper_advisor =
      Advisor::Create(schema, sizes, workload, base_options);
  if (!paper_advisor.ok()) return paper_advisor.status();
  CubeGraphOptions calibrated_options = base_options;
  calibrated_options.cost_model = model;
  StatusOr<Advisor> calibrated_advisor =
      Advisor::Create(schema, sizes, workload, calibrated_options);
  if (!calibrated_advisor.ok()) return calibrated_advisor.status();

  PairedSelectionResult out;
  out.paper = paper_advisor->Recommend(config);
  if (!out.paper.status.ok() && !out.paper.status.IsInterruption()) {
    return out.paper.status.WithContext("paper-model selection");
  }
  out.calibrated = calibrated_advisor->Recommend(config);
  if (!out.calibrated.status.ok() &&
      !out.calibrated.status.IsInterruption()) {
    return out.calibrated.status.WithContext("calibrated-model selection");
  }

  const PaperCostModel& paper_model = PaperCostModel::Instance();
  const double penalty = base_options.raw_scan_penalty;
  out.paper_under_paper = DesignCostUnderModel(
      schema, sizes, workload, out.paper.structures, paper_model, penalty);
  out.paper_under_calibrated = DesignCostUnderModel(
      schema, sizes, workload, out.paper.structures, *model, penalty);
  out.calibrated_design = out.calibrated.structures;
  out.calibrated_under_calibrated =
      DesignCostUnderModel(schema, sizes, workload, out.calibrated_design,
                           *model, penalty);
  // Greedy under the calibrated objective is not optimal; when the paper
  // design happens to score better on the calibrated metric, adopt it —
  // the advisor considered both candidates, so the calibrated side is
  // never worse on its own metric.
  if (out.paper_under_calibrated.total <
      out.calibrated_under_calibrated.total) {
    out.calibrated_design = out.paper.structures;
    out.calibrated_under_calibrated = out.paper_under_calibrated;
    out.fallback_used = true;
  }
  out.calibrated_under_paper = DesignCostUnderModel(
      schema, sizes, workload, out.calibrated_design, paper_model, penalty);
  out.paper_regret =
      out.calibrated_under_calibrated.average > 0.0
          ? out.paper_under_calibrated.average /
                    out.calibrated_under_calibrated.average -
                1.0
          : 0.0;
  return out;
}

StatusOr<ReplayResult> ReplayDesign(
    const FactTable& fact, const std::vector<RecommendedStructure>& design,
    const Workload& workload, uint64_t seed) {
  if (fact.num_rows() == 0) {
    return Status::InvalidArgument("replay: the fact table has no rows");
  }
  Catalog catalog(&fact);
  for (const RecommendedStructure& s : design) {
    catalog.MaterializeView(s.view);
  }
  for (const RecommendedStructure& s : design) {
    if (s.is_view()) continue;
    Status built = catalog.BuildIndex(s.view, s.index);
    if (!built.ok()) return built.WithContext("replay index build");
  }
  Executor executor(&catalog);
  Pcg32 rng(seed);
  ReplayResult out;
  for (const WeightedQuery& wq : workload.queries()) {
    const size_t row = rng.NextBounded(
        static_cast<uint32_t>(std::min<size_t>(fact.num_rows(), ~0u)));
    const std::vector<uint32_t> values =
        SelectionValuesFromRow(fact, wq.query, row);
    ExecutionStats stats;
    const uint64_t t0 = NowNs();
    (void)executor.Execute(wq.query, values, &stats);
    const uint64_t t1 = NowNs();
    ++out.queries;
    out.rows_processed += stats.rows_processed;
    out.wall_ns += t1 - t0;
  }
  return out;
}

StatusOr<BatchReplayResult> ReplayDesignBatched(
    const FactTable& fact, const std::vector<RecommendedStructure>& design,
    const Workload& workload, size_t batch_size, size_t num_threads,
    uint64_t seed) {
  if (fact.num_rows() == 0) {
    return Status::InvalidArgument("replay: the fact table has no rows");
  }
  if (batch_size == 0) {
    return Status::InvalidArgument("replay: batch_size must be positive");
  }
  Catalog catalog(&fact);
  for (const RecommendedStructure& s : design) {
    catalog.MaterializeView(s.view);
  }
  for (const RecommendedStructure& s : design) {
    if (s.is_view()) continue;
    Status built = catalog.BuildIndex(s.view, s.index);
    if (!built.ok()) return built.WithContext("replay index build");
  }
  catalog.CompressAllViews();

  // Expand frequencies into a request stream: the log's count means the
  // same slice was asked that many times, so repeats share one value
  // draw. Thin proportionally past the cap to bound replay time.
  constexpr uint64_t kMaxReplayRequests = 65'536;
  double total_frequency = 0.0;
  for (const WeightedQuery& wq : workload.queries()) {
    total_frequency += std::max(1.0, wq.frequency);
  }
  const double thin =
      total_frequency > static_cast<double>(kMaxReplayRequests)
          ? static_cast<double>(kMaxReplayRequests) / total_frequency
          : 1.0;
  Pcg32 rng(seed);
  std::vector<SliceQuery> stream_queries;
  std::vector<std::vector<uint32_t>> stream_values;
  for (const WeightedQuery& wq : workload.queries()) {
    const size_t row = rng.NextBounded(
        static_cast<uint32_t>(std::min<size_t>(fact.num_rows(), ~0u)));
    const std::vector<uint32_t> values =
        SelectionValuesFromRow(fact, wq.query, row);
    const uint64_t repeats = static_cast<uint64_t>(
        std::max(1.0, std::floor(std::max(1.0, wq.frequency) * thin)));
    for (uint64_t r = 0; r < repeats; ++r) {
      stream_queries.push_back(wq.query);
      stream_values.push_back(values);
    }
  }

  BatchExecutor executor(&catalog, num_threads);
  BatchReplayResult out;
  for (size_t begin = 0; begin < stream_queries.size();
       begin += batch_size) {
    const size_t end =
        std::min(stream_queries.size(), begin + batch_size);
    const std::vector<SliceQuery> queries(
        stream_queries.begin() +
            static_cast<std::ptrdiff_t>(begin),
        stream_queries.begin() + static_cast<std::ptrdiff_t>(end));
    const std::vector<std::vector<uint32_t>> values(
        stream_values.begin() + static_cast<std::ptrdiff_t>(begin),
        stream_values.begin() + static_cast<std::ptrdiff_t>(end));
    BatchStats bstats;
    const uint64_t t0 = NowNs();
    std::vector<GroupedResult> results =
        executor.ExecuteBatch(queries, values, nullptr, &bstats);
    const uint64_t t1 = NowNs();
    out.wall_ns += t1 - t0;
    ++out.batches;
    out.requests += bstats.queries;
    out.unique_requests += bstats.unique_queries;
    out.rows_decoded += bstats.rows_decoded;
    out.logical_rows += bstats.logical_rows;
    out.bytes_scanned += bstats.bytes_scanned;
  }
  return out;
}

}  // namespace olapidx
