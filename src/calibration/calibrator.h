// The cost-model calibration pipeline: sweep → measure → fit → verdict.
//
//   1. RunCalibration drives the deterministic shape sweep
//      (workload/calibration_workload.h) through the real engine in three
//      catalog phases — no structures (raw scans), all views materialized
//      (view scans of every size), views + one fat index per view (covered
//      and partially covered probes) — and records one CalibrationProbe per
//      execution under MetricsRunScope: rows touched, B-tree node touches,
//      scan/index row classification, result rows, wall time.
//   2. CalibrationDataset::ToJson serializes the probes as the
//      schema-versioned "olapidx-calibration" v1 JSON document benches
//      archive next to their reports.
//   3. FitCalibratedModel runs the deterministic least-squares fitter over
//      the features to produce CalibrationCoefficients for a
//      CalibratedCostModel. The target is either measured wall time
//      (kWallNs — the real calibration, machine-dependent) or a synthetic
//      cost computed from the measured features with pinned ground-truth
//      coefficients (kSimulatedNs — exactly recoverable, which is what the
//      golden regression test pins in CI).
//   4. RunPairedSelection is the verdict harness: select a physical design
//      under the paper model and under the calibrated model on the same
//      cube, then evaluate BOTH designs under BOTH models. The calibrated
//      side adopts whichever of the two designs scores better on the
//      calibrated metric (fallback_used reports when greedy-under-
//      calibrated lost to the paper design on its own metric), so by
//      construction the calibrated design is never worse on the metric it
//      optimizes — the sanity invariant bench_calibration reports and
//      calibration_test pins.

#ifndef OLAPIDX_CALIBRATION_CALIBRATOR_H_
#define OLAPIDX_CALIBRATION_CALIBRATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/advisor.h"
#include "cost/calibrated_cost_model.h"
#include "engine/fact_table.h"
#include "lattice/schema.h"
#include "workload/workload.h"

namespace olapidx {

// ---------------------------------------------------------------------------
// Feature extraction.
// ---------------------------------------------------------------------------

// One calibration query executed against one catalog phase.
struct CalibrationProbe {
  SliceQuery query;
  // Catalog phase: "raw" (no structures), "view" (all views, no indexes),
  // "index" (views + one fat index each).
  std::string phase;
  // ExecutionStats.rows_processed — deterministic, metrics-independent.
  uint64_t touched_rows = 0;
  // Deltas of the engine's counters across the execution; all zero when
  // metrics are compiled out (OLAPIDX_METRICS=OFF).
  uint64_t btree_node_touches = 0;  // btree.node_touches
  uint64_t scan_rows = 0;    // rows_raw_scanned + rows_view_scanned
  uint64_t index_rows = 0;   // rows_index_probed
  uint64_t result_rows = 0;  // groups in the query result
  uint64_t wall_ns = 0;      // minimum over the run's repeats
  bool used_index = false;   // the planner chose an index path
};

inline constexpr int kCalibrationDatasetVersion = 1;

struct CalibrationDataset {
  int version = kCalibrationDatasetVersion;
  int num_dimensions = 0;
  uint64_t fact_rows = 0;
  // Whether the binary was built with OLAPIDX_METRICS=ON; when false the
  // counter-derived features are structurally zero and the fitter must
  // drop the node-touch column (graceful degradation).
  bool metrics_enabled = false;
  uint64_t seed = 0;
  std::vector<CalibrationProbe> probes;

  // {"schema": "olapidx-calibration", "version": 1, ...} with one object
  // per probe carrying exactly the feature fields above.
  std::string ToJson() const;
};

struct CalibrationRunOptions {
  // Cap on sweep shapes per phase (0 = all 3^n).
  size_t max_queries = 48;
  // Executions per probe; wall_ns keeps the minimum (the repeats exist
  // only to de-noise wall time — every other feature is deterministic).
  int repeats = 1;
  // Seed for selection-value draws. Values are drawn from actual fact
  // rows, so every selection matches at least one row.
  uint64_t seed = 42;
};

// Executes the sweep and returns the measured dataset. InvalidArgument for
// an empty fact table or out-of-range options.
StatusOr<CalibrationDataset> RunCalibration(
    const FactTable& fact, const CalibrationRunOptions& options = {});

// ---------------------------------------------------------------------------
// Fitting.
// ---------------------------------------------------------------------------

enum class CalibrationTarget {
  kWallNs,       // measured wall time — the real calibration
  kSimulatedNs,  // kSimulatedTruth applied to the measured features —
                 // deterministic, used by the golden regression test
};

// Ground truth for kSimulatedNs: cost = 5·touched + 120·nodes + 800.
inline constexpr CalibrationCoefficients kSimulatedTruth{5.0, 120.0, 800.0};

struct CalibrationFitResult {
  CalibrationCoefficients coefficients;
  // Feature columns dropped as degenerate: 0 = touched_rows,
  // 1 = btree_node_touches (always dropped when metrics are compiled
  // out), 2 = intercept.
  std::vector<int> dropped_columns;
  double r_squared = 0.0;
  size_t probes = 0;
};

// Fits cost ≈ per_row·touched_rows + per_node·node_touches + fixed over
// the dataset by deterministic least squares, dropping degenerate columns
// (all-zero node touches under OLAPIDX_METRICS=OFF) and clamping negative
// fitted coefficients to 0 so the resulting model stays monotone in every
// feature. InvalidArgument for an empty dataset.
StatusOr<CalibrationFitResult> FitCalibratedModel(
    const CalibrationDataset& dataset, CalibrationTarget target);

// ---------------------------------------------------------------------------
// The paired-selection verdict harness.
// ---------------------------------------------------------------------------

struct DesignCost {
  double total = 0.0;    // frequency-weighted Σ over the workload
  double average = 0.0;  // total / total frequency
};

// Cost of answering `workload` with exactly the structures in `design`
// under `model`: per query, the cheapest of the default path
// (ScanCost(raw_scan_penalty × base rows)) and every answerable selected
// structure (ScanCost of a view, IndexCost through an index's longest
// selection-only prefix).
DesignCost DesignCostUnderModel(const CubeSchema& schema,
                                const ViewSizes& sizes,
                                const Workload& workload,
                                const std::vector<RecommendedStructure>& design,
                                const CostModel& model,
                                double raw_scan_penalty = 1.0);

struct PairedSelectionResult {
  Recommendation paper;       // selected under the paper model
  Recommendation calibrated;  // selected under the calibrated model
  // The design the calibrated side finally adopts: the better of the two
  // recommendations on the calibrated metric (greedy is not optimal, so
  // optimizing the calibrated objective can still lose to the paper
  // design — the harness then falls back and flags it).
  std::vector<RecommendedStructure> calibrated_design;
  bool fallback_used = false;
  // Both designs under both metrics.
  DesignCost paper_under_paper;
  DesignCost paper_under_calibrated;
  DesignCost calibrated_under_paper;
  DesignCost calibrated_under_calibrated;
  // paper_under_calibrated.average / calibrated_under_calibrated.average
  // − 1: how much measured-model cost the paper design leaves on the
  // table. ≥ 0 by the fallback rule.
  double paper_regret = 0.0;
};

// Runs the same selection config twice — once with base_options as given
// (paper model) and once with base_options.cost_model = `model` — and
// evaluates both designs under both models. `model` must outlive the call.
StatusOr<PairedSelectionResult> RunPairedSelection(
    const CubeSchema& schema, const ViewSizes& sizes,
    const Workload& workload, const AdvisorConfig& config,
    std::shared_ptr<const CalibratedCostModel> model,
    const CubeGraphOptions& base_options = {});

// ---------------------------------------------------------------------------
// Measured replay.
// ---------------------------------------------------------------------------

struct ReplayResult {
  uint64_t queries = 0;
  uint64_t rows_processed = 0;  // Σ ExecutionStats.rows_processed
  uint64_t wall_ns = 0;
};

// Materializes `design` over `fact` (the view of every pick, then its
// indexes) and executes each workload query once with selection values
// drawn deterministically from fact rows — the ground-truth measurement
// bench_calibration reports next to the model-predicted design costs.
StatusOr<ReplayResult> ReplayDesign(
    const FactTable& fact, const std::vector<RecommendedStructure>& design,
    const Workload& workload, uint64_t seed = 42);

struct BatchReplayResult {
  uint64_t requests = 0;        // replayed requests (frequencies expanded)
  uint64_t unique_requests = 0; // after the batch's identical-request
                                // coalescing, summed over batches
  uint64_t batches = 0;
  uint64_t rows_decoded = 0;    // physical rows the batched path touched
  uint64_t logical_rows = 0;    // what serial execution would have touched
  uint64_t bytes_scanned = 0;
  uint64_t wall_ns = 0;
};

// The serving-path counterpart of ReplayDesign: materializes `design`,
// compresses every view to its columnar store, expands each workload
// query to round(frequency) identical requests (at least one; the stream
// is proportionally thinned when it would exceed 65536 requests), and
// executes the stream through BatchExecutor in batches of `batch_size`.
// Selection values are drawn once per distinct query, from fact rows —
// the repeats model the same logged slice asked again, which is exactly
// what the batch path coalesces. advisor_cli --replay prints this next
// to the model-predicted design cost.
StatusOr<BatchReplayResult> ReplayDesignBatched(
    const FactTable& fact, const std::vector<RecommendedStructure>& design,
    const Workload& workload, size_t batch_size = 256,
    size_t num_threads = 1, uint64_t seed = 42);

}  // namespace olapidx

#endif  // OLAPIDX_CALIBRATION_CALIBRATOR_H_
