// BPlusTree: an in-memory B+tree over (uint64 key → uint32 row id) entries
// with duplicate-key support, point/range scans, single insert and sorted
// bulk load. This is the index structure the paper's "fat" B-tree indexes
// are built with; under the paper's size model an index's space cost is its
// leaf entry count, which equals the underlying view's row count.
//
// Views are immutable once materialized (OLAP precomputation is read-only),
// so the tree intentionally has no delete path.

#ifndef OLAPIDX_ENGINE_BTREE_H_
#define OLAPIDX_ENGINE_BTREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace olapidx {

class BPlusTree {
 public:
  // `fanout`: maximum number of keys per node (leaf and internal alike).
  explicit BPlusTree(int fanout = 64);
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&& other) noexcept;
  BPlusTree& operator=(BPlusTree&& other) noexcept;

  void Insert(uint64_t key, uint32_t value);

  // Builds the tree bottom-up from entries sorted by key (duplicates
  // allowed). The tree must be empty.
  void BulkLoad(const std::vector<std::pair<uint64_t, uint32_t>>& sorted);

  // Invokes `fn(key, value)` for every entry with lo <= key <= hi, in key
  // order. Returns the number of entries visited (i.e. in range).
  template <typename Fn>
  size_t ScanRange(uint64_t lo, uint64_t hi, Fn&& fn) const {
    size_t visited = 0;
    const Node* leaf = FindLeaf(lo);
    while (leaf != nullptr) {
      for (size_t i = 0; i < leaf->keys.size(); ++i) {
        if (leaf->keys[i] < lo) continue;
        if (leaf->keys[i] > hi) return visited;
        fn(leaf->keys[i], leaf->values[i]);
        ++visited;
      }
      leaf = leaf->next;
    }
    return visited;
  }

  size_t size() const { return size_; }
  int height() const { return height_; }
  int fanout() const { return fanout_; }

  // Structural invariants (sortedness, occupancy, leaf-chain coverage);
  // aborts on violation. Used by tests.
  void CheckInvariants() const;

 private:
  struct Node {
    explicit Node(bool leaf) : is_leaf(leaf) {}
    bool is_leaf;
    std::vector<uint64_t> keys;
    // Leaf payload: values parallel to keys; `next` chains leaves in key
    // order.
    std::vector<uint32_t> values;
    Node* next = nullptr;
    // Internal payload: children.size() == keys.size() + 1; keys[i] is a
    // separator >= every key in children[i]'s subtree and <= every key in
    // children[i+1]'s subtree (duplicates may touch the separator on both
    // sides, which the lower-bound descent in FindLeaf tolerates).
    std::vector<Node*> children;
  };

  struct SplitResult {
    Node* right = nullptr;   // nullptr when no split happened
    uint64_t separator = 0;  // first key of `right`'s subtree
  };

  const Node* FindLeaf(uint64_t key) const;
  SplitResult InsertInto(Node* node, uint64_t key, uint32_t value);
  static void DeleteSubtree(Node* node);
  void CheckSubtree(const Node* node, int depth, uint64_t lo,
                    uint64_t hi) const;

  int fanout_;
  Node* root_ = nullptr;
  size_t size_ = 0;
  int height_ = 0;
};

}  // namespace olapidx

#endif  // OLAPIDX_ENGINE_BTREE_H_
