// Executor: answers slice queries from the catalog, choosing the cheapest
// (view, index) access path under the linear cost model, and reports the
// number of rows actually processed — the measurement experiment E10 checks
// against the model's predictions.

#ifndef OLAPIDX_ENGINE_EXECUTOR_H_
#define OLAPIDX_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/catalog.h"
#include "workload/slice_query.h"

namespace olapidx {

struct ExecutionStats {
  // Rows of the chosen table touched to answer the query (the paper's cost
  // measure).
  uint64_t rows_processed = 0;
  bool used_raw = true;
  AttributeSet view;  // meaningful when !used_raw
  IndexKey index;     // empty = plain scan
  // The scan read the view's compressed columnar store rather than its
  // row store (only possible for plain view scans).
  bool used_columnar = false;
  // Storage bytes the scan read: row-store row width × rows processed,
  // or the store's compressed payload for a columnar scan.
  uint64_t bytes_scanned = 0;
  // The planner's cost estimate for the chosen path.
  double estimated_cost = 0.0;
};

// The planner's chosen access path for a query — extracted from the
// executor so BatchExecutor groups queries by the *identical* plan the
// serial path would run. `index_prefix` is the matched selection prefix
// when an index probe was chosen.
struct PlannedAccess {
  bool use_raw = true;
  AttributeSet view;
  const ViewIndex* index = nullptr;
  AttributeSet index_prefix;
  double estimated_cost = 0.0;
};

// Cheapest access path under the linear cost model: raw scan, view scan,
// or index probe — the first minimum wins ties, matching Explain()'s
// stable sort front.
PlannedAccess PlanAccess(const Catalog& catalog, const SliceQuery& query);

// A group-by result: one row per group, sorted by group key. Carries the
// full distributive aggregate state per group; `sums` mirrors the SUM
// values for convenience, and Value(row, kind) answers any AggregateKind.
struct GroupedResult {
  std::vector<int> group_attrs;             // ascending attribute ids
  std::vector<std::vector<uint32_t>> keys;  // [row] parallel to group_attrs
  std::vector<double> sums;
  std::vector<AggregateState> aggregates;   // parallel to keys

  size_t num_rows() const { return sums.size(); }
  double Value(size_t row, AggregateKind kind) const {
    return aggregates[row].Value(kind);
  }
};

class Executor {
 public:
  // The caller owns `catalog` and must keep it alive.
  explicit Executor(const Catalog* catalog);

  // Answers γ_A σ_B with the given selection constants. `selection_values`
  // is parallel to query.selection().ToVector() (ascending attribute ids).
  GroupedResult Execute(const SliceQuery& query,
                        const std::vector<uint32_t>& selection_values,
                        ExecutionStats* stats = nullptr) const;

  // Status-returning variant for service boundaries: rejects a
  // selection-value count that does not match the query (instead of
  // aborting) and crosses the "executor.execute" fault point. On success
  // stores the result in *out.
  Status TryExecute(const SliceQuery& query,
                    const std::vector<uint32_t>& selection_values,
                    GroupedResult* out,
                    ExecutionStats* stats = nullptr) const;

  // Called after every executed query — Execute and TryExecute share the
  // notification path, so the frequency sketch sees all traffic no matter
  // which entry point drove the engine. The hook a resident advisor uses
  // to learn the observed workload without the engine depending on the
  // service layer. The observer must be thread-safe if the executor is
  // driven from multiple threads, must not call back into this Executor,
  // and must outlive it.
  using QueryObserver =
      std::function<void(const SliceQuery&, const ExecutionStats&)>;
  void SetQueryObserver(QueryObserver observer) {
    observer_ = std::move(observer);
  }

  // When on (the default), plain view scans read the view's compressed
  // columnar store whenever the catalog has one attached; off forces the
  // row store everywhere. Index probes and raw scans always use row
  // storage (index row ids reference the view's row order).
  void set_use_column_store(bool use) { use_column_store_ = use; }
  bool use_column_store() const { return use_column_store_; }

  // Reference implementation that always scans the raw fact table; used by
  // tests to validate Execute's answers.
  GroupedResult ExecuteNaive(const SliceQuery& query,
                             const std::vector<uint32_t>& selection_values)
      const;

  // One considered access path, with the planner's cost estimate.
  struct PlanChoice {
    bool use_raw = true;
    AttributeSet view;
    IndexKey index;  // empty = plain scan
    double estimated_cost = 0.0;
    bool chosen = false;
  };

  // All access paths the planner would consider for `query`, sorted by
  // estimated cost (the chosen one first). Does not execute anything.
  std::vector<PlanChoice> Explain(const SliceQuery& query) const;

  // Human-readable EXPLAIN output.
  std::string ExplainString(const SliceQuery& query) const;

 private:
  const Catalog* catalog_;
  QueryObserver observer_;
  bool use_column_store_ = true;
};

}  // namespace olapidx

#endif  // OLAPIDX_ENGINE_EXECUTOR_H_
