// Executor: answers slice queries from the catalog, choosing the cheapest
// (view, index) access path under the linear cost model, and reports the
// number of rows actually processed — the measurement experiment E10 checks
// against the model's predictions.

#ifndef OLAPIDX_ENGINE_EXECUTOR_H_
#define OLAPIDX_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/catalog.h"
#include "workload/slice_query.h"

namespace olapidx {

struct ExecutionStats {
  // Rows of the chosen table touched to answer the query (the paper's cost
  // measure).
  uint64_t rows_processed = 0;
  bool used_raw = true;
  AttributeSet view;  // meaningful when !used_raw
  IndexKey index;     // empty = plain scan
  // The planner's cost estimate for the chosen path.
  double estimated_cost = 0.0;
};

// A group-by result: one row per group, sorted by group key. Carries the
// full distributive aggregate state per group; `sums` mirrors the SUM
// values for convenience, and Value(row, kind) answers any AggregateKind.
struct GroupedResult {
  std::vector<int> group_attrs;             // ascending attribute ids
  std::vector<std::vector<uint32_t>> keys;  // [row] parallel to group_attrs
  std::vector<double> sums;
  std::vector<AggregateState> aggregates;   // parallel to keys

  size_t num_rows() const { return sums.size(); }
  double Value(size_t row, AggregateKind kind) const {
    return aggregates[row].Value(kind);
  }
};

class Executor {
 public:
  // The caller owns `catalog` and must keep it alive.
  explicit Executor(const Catalog* catalog);

  // Answers γ_A σ_B with the given selection constants. `selection_values`
  // is parallel to query.selection().ToVector() (ascending attribute ids).
  GroupedResult Execute(const SliceQuery& query,
                        const std::vector<uint32_t>& selection_values,
                        ExecutionStats* stats = nullptr) const;

  // Status-returning variant for service boundaries: rejects a
  // selection-value count that does not match the query (instead of
  // aborting) and crosses the "executor.execute" fault point. On success
  // stores the result in *out and notifies the query observer (if set).
  Status TryExecute(const SliceQuery& query,
                    const std::vector<uint32_t>& selection_values,
                    GroupedResult* out,
                    ExecutionStats* stats = nullptr) const;

  // Called after every successful TryExecute with the executed query and
  // its stats — the hook a resident advisor uses to learn the observed
  // workload without the engine depending on the service layer. The
  // observer must be thread-safe if TryExecute is called from multiple
  // threads, must not call back into this Executor, and must outlive it.
  // Execute() (the aborting variant) does not notify: it predates the
  // service surface and tests drive it directly.
  using QueryObserver =
      std::function<void(const SliceQuery&, const ExecutionStats&)>;
  void SetQueryObserver(QueryObserver observer) {
    observer_ = std::move(observer);
  }

  // Reference implementation that always scans the raw fact table; used by
  // tests to validate Execute's answers.
  GroupedResult ExecuteNaive(const SliceQuery& query,
                             const std::vector<uint32_t>& selection_values)
      const;

  // One considered access path, with the planner's cost estimate.
  struct PlanChoice {
    bool use_raw = true;
    AttributeSet view;
    IndexKey index;  // empty = plain scan
    double estimated_cost = 0.0;
    bool chosen = false;
  };

  // All access paths the planner would consider for `query`, sorted by
  // estimated cost (the chosen one first). Does not execute anything.
  std::vector<PlanChoice> Explain(const SliceQuery& query) const;

  // Human-readable EXPLAIN output.
  std::string ExplainString(const SliceQuery& query) const;

 private:
  const Catalog* catalog_;
  QueryObserver observer_;
};

}  // namespace olapidx

#endif  // OLAPIDX_ENGINE_EXECUTOR_H_
