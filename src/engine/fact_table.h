// FactTable: the raw data — a columnar, dictionary-coded fact table with
// one uint32 column per dimension and one double measure column (sales).

#ifndef OLAPIDX_ENGINE_FACT_TABLE_H_
#define OLAPIDX_ENGINE_FACT_TABLE_H_

#include <cstdint>
#include <vector>

#include "lattice/schema.h"

namespace olapidx {

class FactTable {
 public:
  explicit FactTable(const CubeSchema& schema);

  const CubeSchema& schema() const { return schema_; }
  size_t num_rows() const { return measure_.size(); }

  void Reserve(size_t rows);

  // `dims[a]` must be < cardinality of dimension a.
  void Append(const std::vector<uint32_t>& dims, double measure);

  uint32_t dim(size_t row, int attr) const {
    OLAPIDX_DCHECK(row < num_rows());
    return columns_[static_cast<size_t>(attr)][row];
  }
  double measure(size_t row) const {
    OLAPIDX_DCHECK(row < num_rows());
    return measure_[row];
  }

  // Raw column of dimension `attr`, for scan loops that resolve the
  // column once per query instead of once per row. Invalidated by Append.
  const uint32_t* column_data(int attr) const {
    return columns_[static_cast<size_t>(attr)].data();
  }
  const double* measure_data() const { return measure_.data(); }

  // All dimension values of one row (indexed by attribute id).
  std::vector<uint32_t> RowDims(size_t row) const;

 private:
  CubeSchema schema_;
  std::vector<std::vector<uint32_t>> columns_;  // [attr][row]
  std::vector<double> measure_;
};

}  // namespace olapidx

#endif  // OLAPIDX_ENGINE_FACT_TABLE_H_
