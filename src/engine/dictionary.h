// Dictionary: order-of-first-appearance string-to-code encoding for one
// dimension. Raw data arrives with string dimension members ("Widgets-R-Us");
// the engine stores dense uint32 codes and the dictionary maps both ways.

#ifndef OLAPIDX_ENGINE_DICTIONARY_H_
#define OLAPIDX_ENGINE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace olapidx {

class Dictionary {
 public:
  Dictionary() = default;

  // Returns the code of `value`, assigning the next dense code on first
  // sight.
  uint32_t Encode(const std::string& value);

  // Returns the code of `value`, or kNotFound if it was never encoded.
  static constexpr uint32_t kNotFound = ~0u;
  uint32_t Lookup(const std::string& value) const;

  const std::string& Decode(uint32_t code) const {
    OLAPIDX_CHECK(code < values_.size());
    return values_[code];
  }

  uint32_t size() const { return static_cast<uint32_t>(values_.size()); }

 private:
  std::unordered_map<std::string, uint32_t> codes_;
  std::vector<std::string> values_;
};

}  // namespace olapidx

#endif  // OLAPIDX_ENGINE_DICTIONARY_H_
