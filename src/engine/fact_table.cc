#include "engine/fact_table.h"

namespace olapidx {

FactTable::FactTable(const CubeSchema& schema) : schema_(schema) {
  columns_.resize(static_cast<size_t>(schema_.num_dimensions()));
}

void FactTable::Reserve(size_t rows) {
  for (auto& col : columns_) col.reserve(rows);
  measure_.reserve(rows);
}

void FactTable::Append(const std::vector<uint32_t>& dims, double measure) {
  OLAPIDX_CHECK(dims.size() ==
                static_cast<size_t>(schema_.num_dimensions()));
  for (int a = 0; a < schema_.num_dimensions(); ++a) {
    OLAPIDX_DCHECK(dims[static_cast<size_t>(a)] <
                   schema_.dimension(a).cardinality);
    columns_[static_cast<size_t>(a)].push_back(
        dims[static_cast<size_t>(a)]);
  }
  measure_.push_back(measure);
}

std::vector<uint32_t> FactTable::RowDims(size_t row) const {
  std::vector<uint32_t> dims(columns_.size());
  for (size_t a = 0; a < columns_.size(); ++a) dims[a] = columns_[a][row];
  return dims;
}

}  // namespace olapidx
