// ViewIndex: a B+tree index over a materialized view, keyed by an ordered
// attribute permutation (or subsequence) — the physical realization of the
// paper's I_{X1..Xk}(V) structures. Supports prefix scans: all view rows
// whose first t key attributes equal the given values.

#ifndef OLAPIDX_ENGINE_VIEW_INDEX_H_
#define OLAPIDX_ENGINE_VIEW_INDEX_H_

#include <cstdint>
#include <vector>

#include "engine/btree.h"
#include "engine/key_codec.h"
#include "engine/materialized_view.h"
#include "lattice/index_key.h"

namespace olapidx {

class ViewIndex {
 public:
  // Builds the index over `view` (bulk-loaded). `key` attributes must be a
  // subset of the view's attributes.
  ViewIndex(const MaterializedView& view, IndexKey key, int fanout = 64);

  const IndexKey& key() const { return key_; }
  size_t num_entries() const { return tree_.size(); }
  const BPlusTree& tree() const { return tree_; }

  // Invokes `fn(row_id)` for every view row whose first
  // `prefix_values.size()` key attributes equal `prefix_values` (given in
  // key order). Returns the number of rows visited.
  template <typename Fn>
  size_t ScanPrefix(const std::vector<uint32_t>& prefix_values,
                    Fn&& fn) const {
    auto [lo, hi] = codec_.PrefixRange(prefix_values);
    return tree_.ScanRange(lo, hi,
                           [&](uint64_t key, uint32_t row) {
                             (void)key;
                             fn(row);
                           });
  }

  // Like ScanPrefix, but the key position after the point-valued prefix
  // ranges over [range_lo, range_hi] (inclusive) — one contiguous B-tree
  // range. Used for hierarchical selections at coarser levels, whose
  // child codes form contiguous blocks under clustered encodings.
  template <typename Fn>
  size_t ScanPrefixRange(const std::vector<uint32_t>& point_values,
                         uint32_t range_lo, uint32_t range_hi,
                         Fn&& fn) const {
    OLAPIDX_CHECK(static_cast<int>(point_values.size()) < key_.size());
    std::vector<uint32_t> lo_vals = point_values;
    lo_vals.push_back(range_lo);
    std::vector<uint32_t> hi_vals = point_values;
    hi_vals.push_back(range_hi);
    uint64_t lo = codec_.PrefixRange(lo_vals).first;
    uint64_t hi = codec_.PrefixRange(hi_vals).second;
    return tree_.ScanRange(lo, hi,
                           [&](uint64_t key, uint32_t row) {
                             (void)key;
                             fn(row);
                           });
  }

 private:
  IndexKey key_;
  KeyCodec codec_;
  BPlusTree tree_;
};

}  // namespace olapidx

#endif  // OLAPIDX_ENGINE_VIEW_INDEX_H_
