// Catalog: the set of materialized structures — which subcubes exist, with
// which indexes — plus the raw fact table. The executor plans against it;
// benches and examples populate it from an Advisor recommendation.

#ifndef OLAPIDX_ENGINE_CATALOG_H_
#define OLAPIDX_ENGINE_CATALOG_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "engine/column_store.h"
#include "engine/fact_table.h"
#include "engine/materialized_view.h"
#include "engine/view_index.h"

namespace olapidx {

class Catalog {
 public:
  // The catalog keeps a pointer to `fact`; the caller owns it and must keep
  // it alive for the catalog's lifetime.
  explicit Catalog(const FactTable* fact);

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  const FactTable& fact() const { return *fact_; }
  const CubeSchema& schema() const { return fact_->schema(); }

  bool HasView(AttributeSet attrs) const;
  const MaterializedView& view(AttributeSet attrs) const;

  // Materializes the subcube, rolling up from the smallest materialized
  // ancestor when one exists (falling back to the fact table). No-op if
  // already materialized. Returns the view's row count.
  size_t MaterializeView(AttributeSet attrs);

  // Builds an index on a materialized view. No-op (OK) for an exact
  // duplicate. Fails with FailedPrecondition when the view is not
  // materialized and InvalidArgument when the key uses attributes outside
  // the view — both reachable from user-authored design files, so they
  // are rejected rather than aborted on.
  Status BuildIndex(AttributeSet view_attrs, const IndexKey& key);

  const std::vector<ViewIndex>& indexes(AttributeSet attrs) const;

  // All materialized view attribute sets, in materialization order.
  const std::vector<AttributeSet>& materialized_views() const {
    return order_;
  }

  // ---- Compressed columnar representation ----
  //
  // A view can additionally carry a ColumnStore — a second, compressed
  // representation of the same rows. The row store stays authoritative
  // (roll-ups, deltas, and index row ids all reference it); executors
  // that scan the whole view read the store instead when attached.

  // Builds (or rebuilds) the columnar store for a materialized view.
  // Fails with FailedPrecondition when the view is not materialized.
  Status CompressView(AttributeSet attrs,
                      const ColumnStoreOptions& options = {});
  // Compresses every materialized view; returns how many were built.
  size_t CompressAllViews(const ColumnStoreOptions& options = {});
  // The view's columnar store, or nullptr when none is attached.
  const ColumnStore* column_store(AttributeSet attrs) const;

  // Space in the paper's units: Σ view rows + Σ index leaf entries.
  double TotalSpaceRows() const;

  // ---- Incremental maintenance ----
  //
  // Each materialized structure remembers the fact-table watermark it was
  // built through. After the caller appends rows to the fact table,
  // RefreshAfterAppend() folds the delta into every stale view and
  // rebuilds its indexes. The returned work statistics are what the
  // update-aware selection extension models as maintenance cost.

  struct RefreshStats {
    size_t views_refreshed = 0;
    size_t groups_touched = 0;      // view groups merged or inserted
    size_t delta_rows_scanned = 0;  // fact rows folded in, summed over views
    size_t indexes_rebuilt = 0;
    double index_entries_rebuilt = 0.0;
  };

  RefreshStats RefreshAfterAppend();

 private:
  struct Entry {
    std::unique_ptr<MaterializedView> view;
    std::vector<ViewIndex> indexes;
    // Optional compressed columnar representation (see CompressView).
    std::unique_ptr<ColumnStore> column_store;
    ColumnStoreOptions column_store_options;
    // Fact rows incorporated into this view so far.
    size_t built_through = 0;
  };

  const Entry* Find(AttributeSet attrs) const;
  Entry* Find(AttributeSet attrs);

  const FactTable* fact_;
  // Indexed by attribute-set mask; slots are null until materialized.
  std::vector<Entry> entries_;
  std::vector<AttributeSet> order_;
};

}  // namespace olapidx

#endif  // OLAPIDX_ENGINE_CATALOG_H_
