// BatchExecutor: throughput-grade serving of many slice queries at once.
//
// Identical requests — same query, same selection values, the common case
// when a Zipf-popular dashboard slice is replayed — are coalesced first:
// one primary executes, copies receive its result verbatim. This shares
// the per-query accumulate/Finish work that scan grouping alone cannot.
// Unique queries are then planned individually (via PlanAccess, the exact
// planner the serial Executor runs) and grouped by access path: all whose
// plan scans the same table — the raw fact table, one view's row store or
// columnar store — share a single scan, with each query's hoisted
// selection predicates evaluated against every decoded row. Index probes
// group by (view, index, prefix values) so identical descents happen
// once. The physical work is therefore one decode per (shared scan, row)
// instead of one per (query, row): the amortization the serving bench
// measures as QPS.
//
// A group is split into tasks of at most kMaxSharedQueriesPerScan member
// queries (each task runs its own full scan) so one hot plan can occupy
// several threads and the per-row accumulator fan-out stays cache-sized.
// Tasks fan out over a fixed-size ThreadPool: ordered by descending
// estimated work and dealt round-robin into one bucket per thread, and
// each query writes only its own result slot — so results are
// deterministic for a given batch regardless of thread count, and
// bit-identical to serial Executor::Execute over the same storage (every
// query sees the full scan in row order → same float merge order).

#ifndef OLAPIDX_ENGINE_BATCH_EXECUTOR_H_
#define OLAPIDX_ENGINE_BATCH_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/executor.h"

namespace olapidx {

// Physical-work accounting for one ExecuteBatch call. `logical_rows` is
// what a serial executor would have scanned (Σ per-query rows_processed);
// `rows_decoded` is what the batch actually decoded (once per shared
// scan) — their ratio is the scan-sharing factor.
struct BatchStats {
  uint64_t queries = 0;
  uint64_t unique_queries = 0;  // after identical-request coalescing
  uint64_t scan_groups = 0;   // shared raw/view/columnar scans performed
  uint64_t probe_groups = 0;  // shared index descents performed
  uint64_t columnar_scans = 0;
  uint64_t rows_decoded = 0;
  uint64_t logical_rows = 0;
  uint64_t bytes_scanned = 0;  // physical bytes, once per shared scan
};

class BatchExecutor {
 public:
  // The caller owns `catalog` and must keep it alive. `num_threads` sizes
  // the private pool the per-group fan-out runs on (1 = serial).
  explicit BatchExecutor(const Catalog* catalog, size_t num_threads = 1);

  // Answers queries[i] with selection_values[i] (parallel vectors; each
  // inner vector parallel to queries[i].selection().ToVector()). Aborts
  // on malformed input, like Executor::Execute. stats (when non-null) is
  // resized to one ExecutionStats per query, reporting what the serial
  // executor would have reported for that query.
  std::vector<GroupedResult> ExecuteBatch(
      const std::vector<SliceQuery>& queries,
      const std::vector<std::vector<uint32_t>>& selection_values,
      std::vector<ExecutionStats>* stats = nullptr,
      BatchStats* batch_stats = nullptr) const;

  // Status-returning variant: validates every query's selection-value
  // count up front (InvalidArgument naming the first offender) before any
  // work runs, and crosses the "executor.batch" fault point. An empty
  // batch is OK and returns no results.
  Status TryExecuteBatch(
      const std::vector<SliceQuery>& queries,
      const std::vector<std::vector<uint32_t>>& selection_values,
      std::vector<GroupedResult>* out,
      std::vector<ExecutionStats>* stats = nullptr,
      BatchStats* batch_stats = nullptr) const;

  // Same hook and contract as Executor::SetQueryObserver: called once per
  // query, in batch order, after the batch completes — on the calling
  // thread, so a sketch-feeding observer needs no extra locking beyond
  // what serial TryExecute already required.
  void SetQueryObserver(Executor::QueryObserver observer) {
    observer_ = std::move(observer);
  }

  // Mirrors Executor::set_use_column_store: when on (default), full-view
  // scan groups read an attached ColumnStore; index probes and raw scans
  // always use row storage.
  void set_use_column_store(bool use) { use_column_store_ = use; }
  bool use_column_store() const { return use_column_store_; }

  size_t num_threads() const { return pool_.num_threads(); }

 private:
  const Catalog* catalog_;
  mutable ThreadPool pool_;
  Executor::QueryObserver observer_;
  bool use_column_store_ = true;
};

}  // namespace olapidx

#endif  // OLAPIDX_ENGINE_BATCH_EXECUTOR_H_
