#include "engine/physical_design.h"

#include <algorithm>
#include <string>

#include "common/fault_injection.h"

namespace olapidx {

StatusOr<PhysicalDesignStats> MaterializePhysicalDesign(
    Catalog& catalog, const std::vector<PhysicalDesignItem>& items) {
  OLAPIDX_FAULT_POINT("engine.materialize");
  PhysicalDesignStats stats;

  // Validate every item up front so a rejected design leaves the catalog
  // untouched.
  const uint32_t num_subcubes =
      uint32_t{1} << catalog.schema().num_dimensions();
  for (size_t i = 0; i < items.size(); ++i) {
    const PhysicalDesignItem& item = items[i];
    auto fail = [&](const std::string& message) {
      return Status::InvalidArgument("design item " + std::to_string(i + 1) +
                                     ": " + message);
    };
    if (item.view.mask() >= num_subcubes) {
      return fail("view attributes outside the schema");
    }
    if (!item.index.empty() &&
        !item.index.AsSet().IsSubsetOf(item.view)) {
      return fail("index key uses attributes outside its view");
    }
  }

  // Gather every view needed (index items imply their view) and build
  // coarsest-first: more attributes first, so children can roll up.
  std::vector<AttributeSet> views;
  for (const PhysicalDesignItem& item : items) {
    views.push_back(item.view);
  }
  std::sort(views.begin(), views.end(),
            [](AttributeSet a, AttributeSet b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a.mask() < b.mask();
            });
  views.erase(std::unique(views.begin(), views.end()), views.end());

  for (AttributeSet v : views) {
    if (catalog.HasView(v)) continue;
    // Roll-up is possible iff some strict superset is already there.
    bool has_parent = false;
    for (AttributeSet existing : catalog.materialized_views()) {
      if (v.IsSubsetOf(existing) && v != existing) {
        has_parent = true;
        break;
      }
    }
    catalog.MaterializeView(v);
    ++stats.views_materialized;
    if (has_parent) ++stats.views_rolled_up;
  }

  for (const PhysicalDesignItem& item : items) {
    if (item.index.empty()) continue;
    size_t before = catalog.indexes(item.view).size();
    OLAPIDX_RETURN_IF_ERROR_CTX(catalog.BuildIndex(item.view, item.index),
                                "applying design");
    if (catalog.indexes(item.view).size() > before) ++stats.indexes_built;
  }
  stats.total_rows = catalog.TotalSpaceRows();
  return stats;
}

}  // namespace olapidx
