#include "engine/physical_design.h"

#include <algorithm>

namespace olapidx {

PhysicalDesignStats MaterializePhysicalDesign(
    Catalog& catalog, const std::vector<PhysicalDesignItem>& items) {
  PhysicalDesignStats stats;

  // Gather every view needed (index items imply their view) and build
  // coarsest-first: more attributes first, so children can roll up.
  std::vector<AttributeSet> views;
  for (const PhysicalDesignItem& item : items) {
    views.push_back(item.view);
  }
  std::sort(views.begin(), views.end(),
            [](AttributeSet a, AttributeSet b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a.mask() < b.mask();
            });
  views.erase(std::unique(views.begin(), views.end()), views.end());

  for (AttributeSet v : views) {
    if (catalog.HasView(v)) continue;
    // Roll-up is possible iff some strict superset is already there.
    bool has_parent = false;
    for (AttributeSet existing : catalog.materialized_views()) {
      if (v.IsSubsetOf(existing) && v != existing) {
        has_parent = true;
        break;
      }
    }
    catalog.MaterializeView(v);
    ++stats.views_materialized;
    if (has_parent) ++stats.views_rolled_up;
  }

  for (const PhysicalDesignItem& item : items) {
    if (item.index.empty()) continue;
    size_t before = catalog.indexes(item.view).size();
    catalog.BuildIndex(item.view, item.index);
    if (catalog.indexes(item.view).size() > before) ++stats.indexes_built;
  }
  stats.total_rows = catalog.TotalSpaceRows();
  return stats;
}

}  // namespace olapidx
