// GroupAccumulator: accumulates (group key → aggregate state) pairs and
// emits a GroupedResult sorted by encoded group key. Shared by the serial
// Executor and the BatchExecutor so both produce byte-identical results —
// the per-group merge order is the row visit order, so two scans of the
// same storage in the same order agree bitwise.

#ifndef OLAPIDX_ENGINE_GROUP_ACCUMULATOR_H_
#define OLAPIDX_ENGINE_GROUP_ACCUMULATOR_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "engine/executor.h"
#include "engine/key_codec.h"

namespace olapidx {

class GroupAccumulator {
 public:
  GroupAccumulator(const CubeSchema& schema, AttributeSet group_by)
      : attrs_(group_by.ToVector()), codec_(schema, attrs_) {}

  // `value_of(attr)` returns the current row's value of `attr`.
  template <typename ValueFn>
  void Add(ValueFn&& value_of, const AggregateState& state) {
    scratch_.resize(attrs_.size());
    for (size_t i = 0; i < attrs_.size(); ++i) {
      scratch_[i] = value_of(attrs_[i]);
    }
    groups_[codec_.EncodePrefix(scratch_)].Merge(state);
  }

  // Hoisted-column variant: `cols[i]` is the raw column of group-by
  // attribute i (ascending attribute order), resolved once per query
  // instead of once per row.
  void AddRow(const uint32_t* const* cols, size_t row,
              const AggregateState& state) {
    scratch_.resize(attrs_.size());
    for (size_t i = 0; i < attrs_.size(); ++i) {
      scratch_[i] = cols[i][row];
    }
    groups_[codec_.EncodePrefix(scratch_)].Merge(state);
  }

  // Decoded-row variant for columnar scans: `dims` is indexed by
  // attribute id (ColumnStore::Scan's row image).
  void AddDims(const uint32_t* dims, const AggregateState& state) {
    scratch_.resize(attrs_.size());
    for (size_t i = 0; i < attrs_.size(); ++i) {
      scratch_[i] = dims[static_cast<size_t>(attrs_[i])];
    }
    groups_[codec_.EncodePrefix(scratch_)].Merge(state);
  }

  GroupedResult Finish() const {
    GroupedResult out;
    out.group_attrs = attrs_;
    // Sort (key, state) pairs once instead of sorting keys and re-probing
    // the hash map per key — Finish dominates large-rollup queries.
    std::vector<std::pair<uint64_t, const AggregateState*>> entries;
    entries.reserve(groups_.size());
    for (const auto& [key, state] : groups_) {
      entries.emplace_back(key, &state);
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out.keys.reserve(entries.size());
    out.sums.reserve(entries.size());
    out.aggregates.reserve(entries.size());
    for (const auto& [key, state] : entries) {
      std::vector<uint32_t> row(attrs_.size());
      for (size_t i = 0; i < attrs_.size(); ++i) {
        row[i] = codec_.Decode(key, static_cast<int>(i));
      }
      out.keys.push_back(std::move(row));
      out.sums.push_back(state->sum);
      out.aggregates.push_back(*state);
    }
    return out;
  }

 private:
  std::vector<int> attrs_;
  KeyCodec codec_;
  std::unordered_map<uint64_t, AggregateState> groups_;
  std::vector<uint32_t> scratch_;
};

}  // namespace olapidx

#endif  // OLAPIDX_ENGINE_GROUP_ACCUMULATOR_H_
