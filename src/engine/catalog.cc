#include "engine/catalog.h"

namespace olapidx {

Catalog::Catalog(const FactTable* fact) : fact_(fact) {
  OLAPIDX_CHECK(fact != nullptr);
  entries_.resize(static_cast<size_t>(1)
                  << fact->schema().num_dimensions());
}

const Catalog::Entry* Catalog::Find(AttributeSet attrs) const {
  OLAPIDX_CHECK(attrs.mask() < entries_.size());
  const Entry& e = entries_[attrs.mask()];
  return e.view != nullptr ? &e : nullptr;
}

Catalog::Entry* Catalog::Find(AttributeSet attrs) {
  OLAPIDX_CHECK(attrs.mask() < entries_.size());
  Entry& e = entries_[attrs.mask()];
  return e.view != nullptr ? &e : nullptr;
}

bool Catalog::HasView(AttributeSet attrs) const {
  return Find(attrs) != nullptr;
}

const MaterializedView& Catalog::view(AttributeSet attrs) const {
  const Entry* e = Find(attrs);
  OLAPIDX_CHECK(e != nullptr);
  return *e->view;
}

size_t Catalog::MaterializeView(AttributeSet attrs) {
  if (const Entry* existing = Find(attrs)) {
    return existing->view->num_rows();
  }
  // Prefer rolling up from the smallest materialized strict superset.
  const MaterializedView* best_parent = nullptr;
  for (AttributeSet parent : order_) {
    if (!attrs.IsSubsetOf(parent) || parent == attrs) continue;
    const MaterializedView& pv = *entries_[parent.mask()].view;
    if (best_parent == nullptr || pv.num_rows() < best_parent->num_rows()) {
      best_parent = &pv;
    }
  }
  Entry& e = entries_[attrs.mask()];
  if (best_parent != nullptr) {
    e.view = std::make_unique<MaterializedView>(
        MaterializedView::FromView(*best_parent, attrs));
  } else {
    e.view = std::make_unique<MaterializedView>(
        MaterializedView::FromFactTable(*fact_, attrs));
  }
  e.built_through = fact_->num_rows();
  order_.push_back(attrs);
  return e.view->num_rows();
}

Status Catalog::BuildIndex(AttributeSet view_attrs, const IndexKey& key) {
  Entry* e = Find(view_attrs);
  const std::vector<std::string>& names = schema().names();
  if (e == nullptr) {
    return Status::FailedPrecondition(
        "cannot build an index on unmaterialized view '" +
        view_attrs.ToString(names) + "'");
  }
  if (key.empty()) {
    return Status::InvalidArgument("empty index key");
  }
  if (!key.AsSet().IsSubsetOf(view_attrs)) {
    return Status::InvalidArgument("index key '" + key.ToString(names) +
                                   "' uses attributes outside view '" +
                                   view_attrs.ToString(names) + "'");
  }
  for (const ViewIndex& existing : e->indexes) {
    if (existing.key() == key) return Status::Ok();
  }
  e->indexes.emplace_back(*e->view, key);
  return Status::Ok();
}

const std::vector<ViewIndex>& Catalog::indexes(AttributeSet attrs) const {
  const Entry* e = Find(attrs);
  OLAPIDX_CHECK(e != nullptr);
  return e->indexes;
}

Status Catalog::CompressView(AttributeSet attrs,
                             const ColumnStoreOptions& options) {
  Entry* e = Find(attrs);
  if (e == nullptr) {
    return Status::FailedPrecondition(
        "cannot compress unmaterialized view '" +
        attrs.ToString(schema().names()) + "'");
  }
  e->column_store = std::make_unique<ColumnStore>(
      ColumnStore::FromView(*e->view, options));
  e->column_store_options = options;
  return Status::Ok();
}

size_t Catalog::CompressAllViews(const ColumnStoreOptions& options) {
  size_t built = 0;
  for (AttributeSet attrs : order_) {
    OLAPIDX_CHECK(CompressView(attrs, options).ok());
    ++built;
  }
  return built;
}

const ColumnStore* Catalog::column_store(AttributeSet attrs) const {
  const Entry* e = Find(attrs);
  OLAPIDX_CHECK(e != nullptr);
  return e->column_store.get();
}

Catalog::RefreshStats Catalog::RefreshAfterAppend() {
  RefreshStats stats;
  size_t now = fact_->num_rows();
  for (AttributeSet attrs : order_) {
    Entry& e = entries_[attrs.mask()];
    if (e.built_through >= now) continue;
    stats.groups_touched +=
        e.view->ApplyDelta(*fact_, e.built_through, now);
    stats.delta_rows_scanned += now - e.built_through;
    e.built_through = now;
    ++stats.views_refreshed;
    // Indexes point into the old row order; rebuild them.
    for (ViewIndex& index : e.indexes) {
      index = ViewIndex(*e.view, index.key());
      ++stats.indexes_rebuilt;
      stats.index_entries_rebuilt +=
          static_cast<double>(index.num_entries());
    }
    // A columnar store is a snapshot of the view's rows; re-encode it.
    if (e.column_store != nullptr) {
      e.column_store = std::make_unique<ColumnStore>(
          ColumnStore::FromView(*e.view, e.column_store_options));
    }
  }
  return stats;
}

double Catalog::TotalSpaceRows() const {
  double total = 0.0;
  for (AttributeSet attrs : order_) {
    const Entry& e = entries_[attrs.mask()];
    total += static_cast<double>(e.view->num_rows());
    for (const ViewIndex& idx : e.indexes) {
      total += static_cast<double>(idx.num_entries());
    }
  }
  return total;
}

}  // namespace olapidx
