// AggregateState: the distributive aggregates (SUM, COUNT, MIN, MAX) of a
// group of fact rows. All four merge associatively, so materialized views
// storing them can be rolled up from any ancestor and refreshed
// incrementally; AVG derives as sum/count.

#ifndef OLAPIDX_ENGINE_AGGREGATE_STATE_H_
#define OLAPIDX_ENGINE_AGGREGATE_STATE_H_

#include <algorithm>
#include <cstdint>
#include <limits>

namespace olapidx {

enum class AggregateKind { kSum, kCount, kMin, kMax, kAvg };

struct AggregateState {
  double sum = 0.0;
  uint64_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  static AggregateState OfMeasure(double measure) {
    return AggregateState{measure, 1, measure, measure};
  }

  void Merge(const AggregateState& other) {
    sum += other.sum;
    count += other.count;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }

  double Value(AggregateKind kind) const {
    switch (kind) {
      case AggregateKind::kSum:
        return sum;
      case AggregateKind::kCount:
        return static_cast<double>(count);
      case AggregateKind::kMin:
        return min;
      case AggregateKind::kMax:
        return max;
      case AggregateKind::kAvg:
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
    return 0.0;
  }
};

}  // namespace olapidx

#endif  // OLAPIDX_ENGINE_AGGREGATE_STATE_H_
