// MaterializedView: a precomputed subcube — the distributive aggregates
// (SUM/COUNT/MIN/MAX of the measure) of the fact table grouped by a set of
// dimensions, stored columnar and sorted by the (ascending-attribute-id)
// group-by key. Supports roll-up construction from any ancestor view and
// in-place incremental refresh from appended fact rows.

#ifndef OLAPIDX_ENGINE_MATERIALIZED_VIEW_H_
#define OLAPIDX_ENGINE_MATERIALIZED_VIEW_H_

#include <cstdint>
#include <vector>

#include "engine/aggregate_state.h"
#include "engine/fact_table.h"
#include "lattice/attribute_set.h"

namespace olapidx {

class MaterializedView {
 public:
  // Aggregates rows [0, fact.num_rows()) of the fact table directly.
  static MaterializedView FromFactTable(const FactTable& fact,
                                        AttributeSet attrs);

  // Rolls up from an already-materialized ancestor (attrs ⊆ parent.attrs());
  // this is how real ROLAP systems avoid rescanning the raw data.
  static MaterializedView FromView(const MaterializedView& parent,
                                   AttributeSet attrs);

  AttributeSet attrs() const { return attrs_; }
  const CubeSchema& schema() const { return schema_; }
  size_t num_rows() const { return states_.size(); }

  // Value of attribute `attr` (which must be in attrs()) in row `row`.
  uint32_t dim(size_t row, int attr) const {
    int col = column_of_[static_cast<size_t>(attr)];
    OLAPIDX_DCHECK(col >= 0);
    return columns_[static_cast<size_t>(col)][row];
  }
  // SUM(measure) of the group (the paper's cost model counts rows, but the
  // engine answers real aggregates).
  double sum(size_t row) const { return states_[row].sum; }
  const AggregateState& aggregate(size_t row) const { return states_[row]; }

  // Raw column of attribute `attr` (which must be in attrs()), for scan
  // loops that resolve the column once per query instead of once per row.
  // Invalidated by ApplyDelta.
  const uint32_t* column_data(int attr) const {
    int col = column_of_[static_cast<size_t>(attr)];
    OLAPIDX_DCHECK(col >= 0);
    return columns_[static_cast<size_t>(col)].data();
  }
  const AggregateState* aggregate_data() const { return states_.data(); }

  // All group-by attribute values of one row, in ascending attribute order.
  std::vector<uint32_t> RowKey(size_t row) const;

  // Incremental refresh: folds fact rows [begin_row, end_row) into this
  // view (merging into existing groups, inserting new ones, keeping rows
  // sorted). Returns the number of groups that were added or changed.
  // The caller must rebuild any indexes on this view afterwards.
  size_t ApplyDelta(const FactTable& fact, size_t begin_row,
                    size_t end_row);

 private:
  MaterializedView(const CubeSchema& schema, AttributeSet attrs);

  template <typename DimFn, typename StateFn>
  void Aggregate(size_t rows, DimFn&& dim_of, StateFn&& state_of);

  // Owned by value: views must outlive the fact table they were built
  // from (e.g. hierarchical views aggregate a transient recoded table).
  CubeSchema schema_;
  AttributeSet attrs_;
  std::vector<int> attr_list_;  // ascending attribute ids
  std::vector<int> column_of_;  // attr id -> column position or -1
  std::vector<std::vector<uint32_t>> columns_;  // [column][row]
  std::vector<AggregateState> states_;
};

}  // namespace olapidx

#endif  // OLAPIDX_ENGINE_MATERIALIZED_VIEW_H_
