#include "engine/batch_executor.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <string>
#include <unordered_map>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "engine/group_accumulator.h"

namespace olapidx {

namespace {

// One hoisted selection predicate against a raw row-store column.
struct SelPred {
  const uint32_t* col;
  uint32_t value;
};

// One hoisted predicate against a decoded columnar row (dims by attr id).
struct DimPred {
  int attr;
  uint32_t value;
};

// Queries whose plans share one physical scan or probe.
struct Group {
  PlannedAccess plan;
  std::vector<uint32_t> prefix_values;  // probe groups only
  std::vector<size_t> members;          // query indices, batch order
};

// Cap on how many queries share one physical scan. Beyond this the
// per-row member loop walks too many accumulators to stay in cache and
// the group monopolizes one thread; a large group is instead split into
// several scans of at most this many queries each — every query still
// sees the full scan in row order, so results are unchanged, while the
// split exposes intra-plan parallelism to the pool.
constexpr size_t kMaxSharedQueriesPerScan = 16;

// One physical scan/probe: a group and the member subrange it serves.
struct Task {
  size_t group = 0;
  size_t member_begin = 0;
  size_t member_end = 0;
};

// Physical work one task performed; slots are written by exactly one
// thread and reduced after the fan-out, keeping BatchStats deterministic.
struct TaskPhysical {
  uint64_t rows_decoded = 0;
  uint64_t bytes_scanned = 0;
  bool columnar = false;
};

void AppendBytes(std::string* key, const void* data, size_t n) {
  key->append(static_cast<const char*>(data), n);
}

// Plans share a physical scan iff their key bytes match: raw scans all
// match, view scans match per view, probes match per (view, index
// identity, prefix values).
std::string GroupKey(const PlannedAccess& plan,
                     const std::vector<uint32_t>& prefix_values) {
  std::string key;
  if (plan.use_raw) {
    key.push_back('R');
    return key;
  }
  uint64_t mask = plan.view.mask();
  if (plan.index == nullptr) {
    key.push_back('V');
    AppendBytes(&key, &mask, sizeof(mask));
    return key;
  }
  key.push_back('I');
  AppendBytes(&key, &mask, sizeof(mask));
  const ViewIndex* index = plan.index;
  AppendBytes(&key, &index, sizeof(index));
  for (uint32_t v : prefix_values) AppendBytes(&key, &v, sizeof(v));
  return key;
}

// Per-member execution state within one group.
struct Member {
  size_t query = 0;
  GroupAccumulator acc;
  std::vector<SelPred> preds;     // row-store scans/probes
  std::vector<DimPred> dim_preds; // columnar scans
  std::vector<const uint32_t*> gcols;  // row-store group-by columns
};

}  // namespace

BatchExecutor::BatchExecutor(const Catalog* catalog, size_t num_threads)
    : catalog_(catalog), pool_(num_threads) {
  OLAPIDX_CHECK(catalog != nullptr);
}

std::vector<GroupedResult> BatchExecutor::ExecuteBatch(
    const std::vector<SliceQuery>& queries,
    const std::vector<std::vector<uint32_t>>& selection_values,
    std::vector<ExecutionStats>* stats, BatchStats* batch_stats) const {
  OLAPIDX_TRACE_SPAN("executor.batch");
  OLAPIDX_CHECK(queries.size() == selection_values.size());
  const CubeSchema& schema = catalog_->schema();
  const size_t num_queries = queries.size();

  std::vector<GroupedResult> results(num_queries);
  // Stats are always produced — the observer contract needs them even
  // when the caller asked for none.
  std::vector<ExecutionStats> local_stats;
  if (stats == nullptr) stats = &local_stats;
  stats->assign(num_queries, ExecutionStats{});
  BatchStats local_batch;
  local_batch.queries = num_queries;

  // ---- Coalesce identical requests. A serving batch repeats popular
  // (query, selection-values) pairs — the same dashboard slice asked
  // again — and every copy would redo identical work, including the
  // per-query accumulate and Finish that scan sharing cannot amortize.
  // Only the first occurrence (the request's "primary") executes; copies
  // take the primary's result and stats verbatim afterwards, which is
  // bit-identical to executing them by definition. ----
  std::vector<size_t> primary_of(num_queries);
  std::vector<size_t> primaries;
  {
    std::unordered_map<std::string, size_t> first_seen;
    first_seen.reserve(num_queries * 2);
    for (size_t i = 0; i < num_queries; ++i) {
      std::string key;
      const uint64_t gmask = queries[i].group_by().mask();
      const uint64_t smask = queries[i].selection().mask();
      AppendBytes(&key, &gmask, sizeof(gmask));
      AppendBytes(&key, &smask, sizeof(smask));
      for (uint32_t v : selection_values[i]) AppendBytes(&key, &v, sizeof(v));
      auto [it, inserted] = first_seen.emplace(std::move(key), i);
      primary_of[i] = it->second;
      if (inserted) primaries.push_back(i);
    }
  }
  local_batch.unique_queries = primaries.size();

  // ---- Plan every unique request and group by shared physical access. ----
  std::vector<PlannedAccess> plans(num_queries);
  std::vector<Group> groups;
  std::unordered_map<std::string, size_t> group_of;
  for (size_t i : primaries) {
    const SliceQuery& query = queries[i];
    const std::vector<int> sel_attrs = query.selection().ToVector();
    OLAPIDX_CHECK(selection_values[i].size() == sel_attrs.size());
    plans[i] = PlanAccess(*catalog_, query);
    std::vector<uint32_t> prefix_values;
    if (plans[i].index != nullptr) {
      // Selection value per attribute id, only needed to order the prefix.
      std::vector<uint32_t> sel_value(
          static_cast<size_t>(schema.num_dimensions()), 0);
      for (size_t k = 0; k < sel_attrs.size(); ++k) {
        sel_value[static_cast<size_t>(sel_attrs[k])] =
            selection_values[i][k];
      }
      for (int a : plans[i].index->key().attrs()) {
        if (!plans[i].index_prefix.Contains(a)) break;
        prefix_values.push_back(sel_value[static_cast<size_t>(a)]);
      }
    }
    std::string key = GroupKey(plans[i], prefix_values);
    auto [it, inserted] = group_of.emplace(key, groups.size());
    if (inserted) {
      groups.push_back(Group{plans[i], std::move(prefix_values), {}});
    }
    groups[it->second].members.push_back(i);
  }

  // ---- Split groups into tasks: one physical scan/probe each, serving
  // at most kMaxSharedQueriesPerScan member queries. Every query sees the
  // full scan in row order, so the split never changes results; it only
  // bounds per-row accumulator fan-out and lets one hot plan use several
  // threads. ----
  std::vector<Task> tasks;
  for (size_t g = 0; g < groups.size(); ++g) {
    const size_t n = groups[g].members.size();
    for (size_t begin = 0; begin < n; begin += kMaxSharedQueriesPerScan) {
      tasks.push_back(
          Task{g, begin, std::min(n, begin + kMaxSharedQueriesPerScan)});
    }
  }

  std::vector<TaskPhysical> physical(tasks.size());
  auto run_task = [&](size_t task_index) {
    const Task& task = tasks[task_index];
    const Group& group = groups[task.group];
    TaskPhysical& phys = physical[task_index];

    // Hoist each member's predicates and group-by columns once.
    std::vector<Member> members;
    members.reserve(task.member_end - task.member_begin);
    const bool columnar = !group.plan.use_raw && group.plan.index == nullptr &&
                          use_column_store_ &&
                          catalog_->column_store(group.plan.view) != nullptr;
    const MaterializedView* view =
        group.plan.use_raw ? nullptr : &catalog_->view(group.plan.view);
    for (size_t mi = task.member_begin; mi < task.member_end; ++mi) {
      const size_t i = group.members[mi];
      const SliceQuery& query = queries[i];
      const std::vector<int> sel_attrs = query.selection().ToVector();
      Member m{i, GroupAccumulator(schema, query.group_by()), {}, {}, {}};
      if (columnar) {
        for (size_t k = 0; k < sel_attrs.size(); ++k) {
          m.dim_preds.push_back({sel_attrs[k], selection_values[i][k]});
        }
      } else if (group.plan.use_raw) {
        const FactTable& fact = catalog_->fact();
        for (size_t k = 0; k < sel_attrs.size(); ++k) {
          m.preds.push_back(
              {fact.column_data(sel_attrs[k]), selection_values[i][k]});
        }
        for (int a : query.group_by().ToVector()) {
          m.gcols.push_back(fact.column_data(a));
        }
      } else {
        for (size_t k = 0; k < sel_attrs.size(); ++k) {
          // Probe members skip predicates the descent already satisfied.
          if (group.plan.index != nullptr &&
              group.plan.index_prefix.Contains(sel_attrs[k])) {
            continue;
          }
          m.preds.push_back(
              {view->column_data(sel_attrs[k]), selection_values[i][k]});
        }
        for (int a : query.group_by().ToVector()) {
          m.gcols.push_back(view->column_data(a));
        }
      }
      members.push_back(std::move(m));
    }

    uint64_t rows = 0;
    if (group.plan.use_raw) {
      const FactTable& fact = catalog_->fact();
      const double* measures = fact.measure_data();
      const size_t n = fact.num_rows();
      for (size_t r = 0; r < n; ++r) {
        for (Member& m : members) {
          bool match = true;
          for (const SelPred& p : m.preds) {
            if (p.col[r] != p.value) {
              match = false;
              break;
            }
          }
          if (!match) continue;
          m.acc.AddRow(m.gcols.data(), r,
                       AggregateState::OfMeasure(measures[r]));
        }
      }
      rows = n;
      phys.bytes_scanned =
          rows * (static_cast<uint64_t>(schema.num_dimensions()) * 4 + 8);
    } else if (group.plan.index == nullptr && columnar) {
      const ColumnStore* store = catalog_->column_store(group.plan.view);
      store->Scan([&](size_t r, const uint32_t* dims,
                      const AggregateState& state) {
        (void)r;
        for (Member& m : members) {
          bool match = true;
          for (const DimPred& p : m.dim_preds) {
            if (dims[p.attr] != p.value) {
              match = false;
              break;
            }
          }
          if (!match) continue;
          m.acc.AddDims(dims, state);
        }
      });
      rows = store->num_rows();
      phys.bytes_scanned = store->CompressedBytes();
      phys.columnar = true;
    } else if (group.plan.index == nullptr) {
      const AggregateState* states = view->aggregate_data();
      const size_t n = view->num_rows();
      for (size_t r = 0; r < n; ++r) {
        for (Member& m : members) {
          bool match = true;
          for (const SelPred& p : m.preds) {
            if (p.col[r] != p.value) {
              match = false;
              break;
            }
          }
          if (!match) continue;
          m.acc.AddRow(m.gcols.data(), r, states[r]);
        }
      }
      rows = n;
      phys.bytes_scanned =
          rows * (static_cast<uint64_t>(view->attrs().ToVector().size()) * 4 +
                  sizeof(AggregateState));
    } else {
      const AggregateState* states = view->aggregate_data();
      rows = group.plan.index->ScanPrefix(
          group.prefix_values, [&](uint32_t r) {
            for (Member& m : members) {
              bool match = true;
              for (const SelPred& p : m.preds) {
                if (p.col[r] != p.value) {
                  match = false;
                  break;
                }
              }
              if (!match) continue;
              m.acc.AddRow(m.gcols.data(), r, states[r]);
            }
          });
      phys.bytes_scanned =
          rows * (static_cast<uint64_t>(view->attrs().ToVector().size()) * 4 +
                  sizeof(AggregateState));
    }
    phys.rows_decoded = rows;

    // Every member writes only its own slots.
    for (Member& m : members) {
      results[m.query] = m.acc.Finish();
      ExecutionStats& s = (*stats)[m.query];
      s.rows_processed = rows;
      s.used_raw = group.plan.use_raw;
      s.view = group.plan.use_raw ? AttributeSet() : group.plan.view;
      s.index = group.plan.index != nullptr ? group.plan.index->key()
                                            : IndexKey();
      s.used_columnar = phys.columnar;
      s.bytes_scanned = phys.bytes_scanned;
      s.estimated_cost = plans[m.query].estimated_cost;
    }
  };

  // ---- Fan out: deal tasks round-robin (largest first) into one bucket
  // per thread; task boundaries and bucket contents depend only on the
  // batch, so runs are reproducible, and results are identical for any
  // thread count because tasks never share mutable state. ----
  std::vector<size_t> by_work(tasks.size());
  std::iota(by_work.begin(), by_work.end(), size_t{0});
  auto work_of = [&](size_t t) {
    const Group& g = groups[tasks[t].group];
    uint64_t rows = g.plan.use_raw
                        ? catalog_->fact().num_rows()
                        : catalog_->view(g.plan.view).num_rows();
    return rows * std::max<uint64_t>(
                      1, tasks[t].member_end - tasks[t].member_begin);
  };
  std::stable_sort(by_work.begin(), by_work.end(),
                   [&](size_t a, size_t b) {
                     return work_of(a) > work_of(b);
                   });
  const size_t num_buckets = pool_.num_threads();
  std::vector<std::vector<size_t>> buckets(num_buckets);
  for (size_t k = 0; k < by_work.size(); ++k) {
    buckets[k % num_buckets].push_back(by_work[k]);
  }
  pool_.ParallelFor(num_buckets,
                    [&](size_t begin, size_t end, size_t chunk) {
                      (void)chunk;
                      for (size_t b = begin; b < end; ++b) {
                        for (size_t t : buckets[b]) run_task(t);
                      }
                    });

  // ---- Propagate primaries' results to their coalesced copies. ----
  for (size_t i = 0; i < num_queries; ++i) {
    if (primary_of[i] != i) {
      results[i] = results[primary_of[i]];
      (*stats)[i] = (*stats)[primary_of[i]];
    }
  }

  // ---- Accounting (one registry update per batch) and notification. ----
  for (size_t t = 0; t < tasks.size(); ++t) {
    if (groups[tasks[t].group].plan.index != nullptr) {
      ++local_batch.probe_groups;
    } else {
      ++local_batch.scan_groups;
    }
    if (physical[t].columnar) ++local_batch.columnar_scans;
    local_batch.rows_decoded += physical[t].rows_decoded;
    local_batch.bytes_scanned += physical[t].bytes_scanned;
  }
  // What a serial executor would have scanned, duplicates included.
  for (size_t i = 0; i < num_queries; ++i) {
    local_batch.logical_rows += (*stats)[i].rows_processed;
  }
  OLAPIDX_METRIC_COUNTER(batches, "executor.batch.batches");
  OLAPIDX_METRIC_COUNTER(batch_queries, "executor.batch.queries");
  OLAPIDX_METRIC_COUNTER(unique_queries, "executor.batch.unique_queries");
  OLAPIDX_METRIC_COUNTER(scan_groups, "executor.batch.scan_groups");
  OLAPIDX_METRIC_COUNTER(probe_groups, "executor.batch.probe_groups");
  OLAPIDX_METRIC_COUNTER(rows_decoded, "executor.batch.rows_decoded");
  OLAPIDX_METRIC_COUNTER(columnar, "executor.batch.columnar_scans");
  batches.Add(1);
  batch_queries.Add(local_batch.queries);
  unique_queries.Add(local_batch.unique_queries);
  scan_groups.Add(local_batch.scan_groups);
  probe_groups.Add(local_batch.probe_groups);
  rows_decoded.Add(local_batch.rows_decoded);
  columnar.Add(local_batch.columnar_scans);

  if (observer_) {
    for (size_t i = 0; i < num_queries; ++i) {
      observer_(queries[i], (*stats)[i]);
    }
  }

  if (batch_stats != nullptr) *batch_stats = local_batch;
  return results;
}

Status BatchExecutor::TryExecuteBatch(
    const std::vector<SliceQuery>& queries,
    const std::vector<std::vector<uint32_t>>& selection_values,
    std::vector<GroupedResult>* out, std::vector<ExecutionStats>* stats,
    BatchStats* batch_stats) const {
  OLAPIDX_CHECK(out != nullptr);
  OLAPIDX_FAULT_POINT("executor.batch");
  if (queries.size() != selection_values.size()) {
    return Status::InvalidArgument(
        "batch has " + std::to_string(queries.size()) + " query(ies) but " +
        std::to_string(selection_values.size()) +
        " selection-value vector(s)");
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    size_t expected = queries[i].selection().ToVector().size();
    if (selection_values[i].size() != expected) {
      return Status::InvalidArgument(
          "batch query " + std::to_string(i) + " selects " +
          std::to_string(expected) + " attribute(s) but " +
          std::to_string(selection_values[i].size()) +
          " selection value(s) were supplied");
    }
  }
  *out = ExecuteBatch(queries, selection_values, stats, batch_stats);
  return Status::Ok();
}

}  // namespace olapidx
