#include "engine/dictionary.h"

namespace olapidx {

uint32_t Dictionary::Encode(const std::string& value) {
  auto [it, inserted] =
      codes_.emplace(value, static_cast<uint32_t>(values_.size()));
  if (inserted) values_.push_back(value);
  return it->second;
}

uint32_t Dictionary::Lookup(const std::string& value) const {
  auto it = codes_.find(value);
  return it == codes_.end() ? kNotFound : it->second;
}

}  // namespace olapidx
