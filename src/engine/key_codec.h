// KeyCodec: packs an ordered list of dimension values into a single uint64
// whose numeric order equals the lexicographic order of the values in key
// order. This is the composite-key representation used by the B+tree
// indexes and the group-by hash tables.

#ifndef OLAPIDX_ENGINE_KEY_CODEC_H_
#define OLAPIDX_ENGINE_KEY_CODEC_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "lattice/schema.h"

namespace olapidx {

class KeyCodec {
 public:
  // `attr_order`: the attributes of the key, most-significant first.
  // The per-attribute bit widths are ceil(log2(cardinality)) and must sum
  // to at most 64.
  KeyCodec(const CubeSchema& schema, std::vector<int> attr_order);

  const std::vector<int>& attr_order() const { return attr_order_; }
  int num_attrs() const { return static_cast<int>(attr_order_.size()); }
  int total_bits() const { return total_bits_; }

  // Encodes the key attributes of one row; `dims[a]` is the value of
  // attribute a (indexed by attribute id, not key position).
  uint64_t EncodeRow(const std::vector<uint32_t>& dims) const {
    uint64_t key = 0;
    for (size_t i = 0; i < attr_order_.size(); ++i) {
      key |= static_cast<uint64_t>(dims[static_cast<size_t>(attr_order_[i])])
             << shifts_[i];
    }
    return key;
  }

  // Encodes explicit values given in key order (values.size() may be a
  // prefix of the key; remaining positions are zero).
  uint64_t EncodePrefix(const std::vector<uint32_t>& values) const;

  // The inclusive key range [lo, hi] of all keys beginning with the given
  // prefix values (in key order).
  std::pair<uint64_t, uint64_t> PrefixRange(
      const std::vector<uint32_t>& values) const;

  // Decodes position `i` (in key order) out of an encoded key.
  uint32_t Decode(uint64_t key, int i) const {
    return static_cast<uint32_t>((key >> shifts_[static_cast<size_t>(i)]) &
                                 masks_[static_cast<size_t>(i)]);
  }

 private:
  std::vector<int> attr_order_;
  std::vector<int> shifts_;       // left shift per key position
  std::vector<uint64_t> masks_;   // value mask per key position
  int total_bits_ = 0;
};

}  // namespace olapidx

#endif  // OLAPIDX_ENGINE_KEY_CODEC_H_
