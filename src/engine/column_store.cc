#include "engine/column_store.h"

#include <algorithm>
#include <numeric>

namespace olapidx {

RleColumn RleEncode(const std::vector<uint32_t>& column) {
  RleColumn out;
  out.num_rows = column.size();
  for (size_t r = 0; r < column.size(); ++r) {
    if (out.values.empty() || column[r] != out.values.back()) {
      out.values.push_back(column[r]);
      out.starts.push_back(static_cast<uint32_t>(r));
    }
  }
  return out;
}

std::vector<uint32_t> RleDecode(const RleColumn& rle) {
  std::vector<uint32_t> out;
  out.reserve(rle.num_rows);
  for (size_t run = 0; run < rle.values.size(); ++run) {
    size_t end = run + 1 < rle.starts.size() ? rle.starts[run + 1]
                                             : rle.num_rows;
    out.insert(out.end(), end - rle.starts[run], rle.values[run]);
  }
  return out;
}

namespace {

int BitsFor(size_t distinct) {
  int bits = 1;
  while ((size_t{1} << bits) < distinct) ++bits;
  return bits;
}

}  // namespace

uint32_t ColumnStore::Column::LocalAt(size_t row) const {
  if (encoding == Encoding::kRle) {
    // Last run whose start is <= row.
    size_t run = static_cast<size_t>(
        std::upper_bound(rle.starts.begin(), rle.starts.end(),
                         static_cast<uint32_t>(row)) -
        rle.starts.begin()) - 1;
    return rle.values[run];
  }
  size_t bit = row * static_cast<size_t>(bits);
  size_t word = bit >> 6;
  int shift = static_cast<int>(bit & 63);
  uint64_t v = packed[word] >> shift;
  if (shift + bits > 64) v |= packed[word + 1] << (64 - shift);
  return static_cast<uint32_t>(v & ((uint64_t{1} << bits) - 1));
}

size_t ColumnStore::Column::PayloadBytes() const {
  return encoding == Encoding::kRle ? rle.PayloadBytes()
                                    : packed.size() * 8;
}

ColumnStore ColumnStore::FromView(const MaterializedView& view,
                                  const ColumnStoreOptions& options) {
  ColumnStore store;
  store.attrs_ = view.attrs();
  store.num_rows_ = view.num_rows();
  store.reordered_ = options.reorder;
  store.num_dimensions_ = view.schema().num_dimensions();
  const std::vector<int> attr_list = view.attrs().ToVector();
  const size_t n = view.num_rows();
  const size_t num_cols = attr_list.size();

  // Per-attribute value frequencies and the frequency-ranked local
  // dictionaries (identity recode when reordering is off).
  std::vector<std::vector<uint32_t>> local_codes(num_cols);
  std::vector<std::vector<uint32_t>> local_to_global(num_cols);
  std::vector<size_t> distinct(num_cols, 0);
  for (size_t c = 0; c < num_cols; ++c) {
    const int attr = attr_list[c];
    uint32_t max_code = 0;
    for (size_t r = 0; r < n; ++r) {
      max_code = std::max(max_code, view.dim(r, attr));
    }
    std::vector<uint64_t> freq(static_cast<size_t>(max_code) + 1, 0);
    for (size_t r = 0; r < n; ++r) ++freq[view.dim(r, attr)];
    std::vector<uint32_t> present;
    for (uint32_t code = 0; code <= max_code; ++code) {
      if (freq[code] > 0) present.push_back(code);
    }
    distinct[c] = present.size();
    if (options.reorder) {
      std::stable_sort(present.begin(), present.end(),
                       [&](uint32_t a, uint32_t b) {
                         return freq[a] > freq[b];  // ties keep code order
                       });
    }
    std::vector<uint32_t> global_to_local(
        static_cast<size_t>(max_code) + 1, 0);
    for (size_t i = 0; i < present.size(); ++i) {
      global_to_local[present[i]] = static_cast<uint32_t>(i);
    }
    local_to_global[c] = std::move(present);
    local_codes[c].resize(n);
    for (size_t r = 0; r < n; ++r) {
      local_codes[c][r] = global_to_local[view.dim(r, attr)];
    }
  }

  // Column storage order: ascending distinct count (ties by attribute
  // id), so the leading sort columns have the fewest possible runs.
  std::vector<size_t> col_order(num_cols);
  std::iota(col_order.begin(), col_order.end(), size_t{0});
  if (options.reorder) {
    std::stable_sort(col_order.begin(), col_order.end(),
                     [&](size_t a, size_t b) {
                       return distinct[a] < distinct[b];
                     });
  }

  // Row order: lexicographic over the local codes in storage-column
  // order. View rows are distinct in their full key, so the order is
  // total and deterministic.
  std::vector<uint32_t> row_order(n);
  std::iota(row_order.begin(), row_order.end(), uint32_t{0});
  if (options.reorder) {
    std::sort(row_order.begin(), row_order.end(),
              [&](uint32_t a, uint32_t b) {
                for (size_t c : col_order) {
                  if (local_codes[c][a] != local_codes[c][b]) {
                    return local_codes[c][a] < local_codes[c][b];
                  }
                }
                return false;
              });
  }

  // Encode each column in the new row order: RLE when the runs pay for
  // themselves, bit-packed literals otherwise.
  store.column_of_.assign(static_cast<size_t>(store.num_dimensions_), -1);
  for (size_t c : col_order) {
    Column col;
    col.attr = attr_list[c];
    col.local_to_global = std::move(local_to_global[c]);
    std::vector<uint32_t> ordered(n);
    for (size_t r = 0; r < n; ++r) {
      ordered[r] = local_codes[c][row_order[r]];
    }
    RleColumn rle = RleEncode(ordered);
    col.bits = BitsFor(std::max<size_t>(distinct[c], 2));
    const size_t packed_bytes = ((n * static_cast<size_t>(col.bits) + 63) / 64) * 8;
    if (rle.PayloadBytes() <= packed_bytes) {
      col.encoding = Encoding::kRle;
      col.rle = std::move(rle);
    } else {
      col.encoding = Encoding::kPacked;
      col.packed.assign((n * static_cast<size_t>(col.bits) + 63) / 64, 0);
      for (size_t r = 0; r < n; ++r) {
        size_t bit = r * static_cast<size_t>(col.bits);
        size_t word = bit >> 6;
        int shift = static_cast<int>(bit & 63);
        col.packed[word] |= static_cast<uint64_t>(ordered[r]) << shift;
        if (shift + col.bits > 64) {
          col.packed[word + 1] |=
              static_cast<uint64_t>(ordered[r]) >> (64 - shift);
        }
      }
    }
    store.column_of_[static_cast<size_t>(col.attr)] =
        static_cast<int>(store.columns_.size());
    store.columns_.push_back(std::move(col));
  }

  // Aggregate plane: bitmap of single-fact-row groups (whole state
  // reconstructible from one double), rank directory per 64-row word,
  // full states for the rest.
  store.single_bits_.assign((n + 63) / 64, 0);
  store.single_rank_.assign((n + 63) / 64, 0);
  uint32_t singles = 0;
  for (size_t r = 0; r < n; ++r) {
    if ((r & 63) == 0) store.single_rank_[r >> 6] = singles;
    const AggregateState& st = view.aggregate(row_order[r]);
    if (st.count == 1 && st.min == st.sum && st.max == st.sum) {
      store.single_bits_[r >> 6] |= uint64_t{1} << (r & 63);
      store.single_sums_.push_back(st.sum);
      ++singles;
    } else {
      store.full_states_.push_back(st);
    }
  }
  return store;
}

uint32_t ColumnStore::dim(size_t row, int attr) const {
  OLAPIDX_DCHECK(row < num_rows_);
  int c = column_of_[static_cast<size_t>(attr)];
  OLAPIDX_DCHECK(c >= 0);
  const Column& col = columns_[static_cast<size_t>(c)];
  return col.local_to_global[col.LocalAt(row)];
}

AggregateState ColumnStore::aggregate(size_t row) const {
  OLAPIDX_DCHECK(row < num_rows_);
  const size_t word = row >> 6;
  const uint64_t below = single_bits_[word] & ((uint64_t{1} << (row & 63)) - 1);
  const size_t singles_before =
      single_rank_[word] + static_cast<size_t>(__builtin_popcountll(below));
  if (IsSingleton(row)) {
    return AggregateState::OfMeasure(single_sums_[singles_before]);
  }
  return full_states_[row - singles_before];
}

ColumnStore::ScanState::ScanState(const ColumnStore& s)
    : store(s),
      dims(static_cast<size_t>(s.num_dimensions_), 0),
      run_index(s.columns_.size(), 0),
      run_end(s.columns_.size(), 0) {}

void ColumnStore::ScanState::Advance(size_t row) {
  for (size_t c = 0; c < store.columns_.size(); ++c) {
    const Column& col = store.columns_[c];
    if (col.encoding == Encoding::kRle) {
      if (row >= run_end[c]) {
        // Entering the next run: one dictionary translation per run, not
        // per row — the decode amortization the batched scans rely on.
        size_t run = row == 0 ? 0 : run_index[c] + 1;
        run_index[c] = run;
        run_end[c] = run + 1 < col.rle.starts.size()
                         ? col.rle.starts[run + 1]
                         : store.num_rows_;
        dims[static_cast<size_t>(col.attr)] =
            col.local_to_global[col.rle.values[run]];
      }
    } else {
      dims[static_cast<size_t>(col.attr)] =
          col.local_to_global[col.LocalAt(row)];
    }
  }
  const size_t word = row >> 6;
  if (store.IsSingleton(row)) {
    state = AggregateState::OfMeasure(store.single_sums_[next_single]);
    ++next_single;
  } else {
    state = store.full_states_[next_full];
    ++next_full;
  }
  (void)word;
}

size_t ColumnStore::ColumnBytes(int attr) const {
  int c = column_of_[static_cast<size_t>(attr)];
  OLAPIDX_DCHECK(c >= 0);
  const Column& col = columns_[static_cast<size_t>(c)];
  return col.PayloadBytes() + col.local_to_global.size() * 4;
}

size_t ColumnStore::AggregateBytes() const {
  return single_bits_.size() * 8 + single_rank_.size() * 4 +
         single_sums_.size() * 8 + full_states_.size() * 32;
}

size_t ColumnStore::CompressedBytes() const {
  size_t total = AggregateBytes();
  for (const Column& col : columns_) {
    total += col.PayloadBytes() + col.local_to_global.size() * 4;
  }
  return total;
}

size_t ColumnStore::RowStoreBytes(const MaterializedView& view) {
  return view.num_rows() *
         (view.attrs().ToVector().size() * 4 + sizeof(AggregateState));
}

size_t ColumnStore::NumRuns(int attr) const {
  int c = column_of_[static_cast<size_t>(attr)];
  OLAPIDX_DCHECK(c >= 0);
  const Column& col = columns_[static_cast<size_t>(c)];
  if (col.encoding == Encoding::kRle) return col.rle.num_runs();
  // Packed columns still have well-defined runs; count them on demand.
  size_t runs = num_rows_ > 0 ? 1 : 0;
  for (size_t r = 1; r < num_rows_; ++r) {
    if (col.LocalAt(r) != col.LocalAt(r - 1)) ++runs;
  }
  return runs;
}

}  // namespace olapidx
