// Applying a physical design to a catalog. Views are materialized
// coarsest-first so that every finer subcube can roll up from an already
// materialized ancestor instead of rescanning the fact table — the way a
// real ROLAP load pipeline orders its aggregations.

#ifndef OLAPIDX_ENGINE_PHYSICAL_DESIGN_H_
#define OLAPIDX_ENGINE_PHYSICAL_DESIGN_H_

#include <vector>

#include "common/status.h"
#include "engine/catalog.h"

namespace olapidx {

struct PhysicalDesignItem {
  AttributeSet view;
  // Empty key = materialize the view itself; otherwise build this index
  // (the view is materialized first if needed).
  IndexKey index;
};

struct PhysicalDesignStats {
  size_t views_materialized = 0;
  size_t views_rolled_up = 0;  // built from an ancestor, not the fact table
  size_t indexes_built = 0;
  double total_rows = 0.0;  // space in the paper's units after applying
};

// Applies the design. Idempotent per item. Every item is validated
// against the catalog's schema *before* anything is materialized (a
// rejected design leaves the catalog unchanged); a bad item or an
// injected fault yields an item-tagged error instead of aborting.
StatusOr<PhysicalDesignStats> MaterializePhysicalDesign(
    Catalog& catalog, const std::vector<PhysicalDesignItem>& items);

}  // namespace olapidx

#endif  // OLAPIDX_ENGINE_PHYSICAL_DESIGN_H_
