#include "engine/view_index.h"

#include <algorithm>

namespace olapidx {

ViewIndex::ViewIndex(const MaterializedView& view, IndexKey key, int fanout)
    : key_(std::move(key)),
      codec_(view.schema(), key_.attrs()),
      tree_(fanout) {
  OLAPIDX_CHECK(!key_.empty());
  OLAPIDX_CHECK(key_.AsSet().IsSubsetOf(view.attrs()));
  std::vector<std::pair<uint64_t, uint32_t>> entries;
  entries.reserve(view.num_rows());
  std::vector<uint32_t> dims(
      static_cast<size_t>(view.schema().num_dimensions()), 0);
  for (size_t r = 0; r < view.num_rows(); ++r) {
    for (int a : key_.attrs()) {
      dims[static_cast<size_t>(a)] = view.dim(r, a);
    }
    entries.emplace_back(codec_.EncodeRow(dims),
                         static_cast<uint32_t>(r));
  }
  std::sort(entries.begin(), entries.end());
  tree_.BulkLoad(entries);
}

}  // namespace olapidx
