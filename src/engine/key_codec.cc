#include "engine/key_codec.h"

#include <bit>

namespace olapidx {

namespace {

int BitsFor(uint64_t cardinality) {
  OLAPIDX_CHECK(cardinality >= 1);
  if (cardinality == 1) return 1;
  return 64 - std::countl_zero(cardinality - 1);
}

}  // namespace

KeyCodec::KeyCodec(const CubeSchema& schema, std::vector<int> attr_order)
    : attr_order_(std::move(attr_order)) {
  std::vector<int> widths;
  widths.reserve(attr_order_.size());
  for (int a : attr_order_) {
    OLAPIDX_CHECK(a >= 0 && a < schema.num_dimensions());
    widths.push_back(BitsFor(schema.dimension(a).cardinality));
  }
  for (int w : widths) total_bits_ += w;
  OLAPIDX_CHECK(total_bits_ <= 64);
  // Most-significant attribute first: shift = bits of everything after it.
  shifts_.resize(widths.size());
  masks_.resize(widths.size());
  int acc = total_bits_;
  for (size_t i = 0; i < widths.size(); ++i) {
    acc -= widths[i];
    shifts_[i] = acc;
    masks_[i] = (widths[i] == 64) ? ~0ULL : ((1ULL << widths[i]) - 1);
  }
}

uint64_t KeyCodec::EncodePrefix(const std::vector<uint32_t>& values) const {
  OLAPIDX_CHECK(values.size() <= attr_order_.size());
  uint64_t key = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    OLAPIDX_CHECK(values[i] <= masks_[i]);
    key |= static_cast<uint64_t>(values[i]) << shifts_[i];
  }
  return key;
}

std::pair<uint64_t, uint64_t> KeyCodec::PrefixRange(
    const std::vector<uint32_t>& values) const {
  uint64_t lo = EncodePrefix(values);
  // shifts_[i] is the bit offset of key position i's least-significant bit,
  // so the free suffix after a non-empty prefix spans
  // shifts_[values.size() - 1] bits.
  int suffix_width = values.empty() ? total_bits_
                     : values.size() == attr_order_.size()
                         ? 0
                         : shifts_[values.size() - 1];
  uint64_t suffix_bits = (suffix_width >= 64) ? ~0ULL
                         : (suffix_width == 0)
                             ? 0
                             : ((1ULL << suffix_width) - 1);
  return {lo, lo | suffix_bits};
}

}  // namespace olapidx
