#include "engine/materialized_view.h"

#include <algorithm>
#include <unordered_map>

#include "engine/key_codec.h"

namespace olapidx {

MaterializedView::MaterializedView(const CubeSchema& schema,
                                   AttributeSet attrs)
    : schema_(schema), attrs_(attrs) {
  attr_list_ = attrs.ToVector();
  column_of_.assign(static_cast<size_t>(schema.num_dimensions()), -1);
  for (size_t i = 0; i < attr_list_.size(); ++i) {
    column_of_[static_cast<size_t>(attr_list_[i])] = static_cast<int>(i);
  }
  columns_.resize(attr_list_.size());
}

template <typename DimFn, typename StateFn>
void MaterializedView::Aggregate(size_t rows, DimFn&& dim_of,
                                 StateFn&& state_of) {
  KeyCodec codec(schema_, attr_list_);
  std::unordered_map<uint64_t, AggregateState> groups;
  groups.reserve(rows);
  std::vector<uint32_t> dims(
      static_cast<size_t>(schema_.num_dimensions()), 0);
  for (size_t r = 0; r < rows; ++r) {
    for (int a : attr_list_) {
      dims[static_cast<size_t>(a)] = dim_of(r, a);
    }
    groups[codec.EncodeRow(dims)].Merge(state_of(r));
  }
  std::vector<uint64_t> keys;
  keys.reserve(groups.size());
  for (const auto& [key, state] : groups) {
    (void)state;
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  for (auto& col : columns_) col.reserve(keys.size());
  states_.reserve(keys.size());
  for (uint64_t key : keys) {
    for (size_t i = 0; i < attr_list_.size(); ++i) {
      columns_[i].push_back(codec.Decode(key, static_cast<int>(i)));
    }
    states_.push_back(groups.find(key)->second);
  }
}

MaterializedView MaterializedView::FromFactTable(const FactTable& fact,
                                                 AttributeSet attrs) {
  MaterializedView view(fact.schema(), attrs);
  view.Aggregate(
      fact.num_rows(), [&](size_t r, int a) { return fact.dim(r, a); },
      [&](size_t r) {
        return AggregateState::OfMeasure(fact.measure(r));
      });
  return view;
}

MaterializedView MaterializedView::FromView(const MaterializedView& parent,
                                            AttributeSet attrs) {
  OLAPIDX_CHECK(attrs.IsSubsetOf(parent.attrs()));
  MaterializedView view(parent.schema_, attrs);  // copies the schema
  view.Aggregate(
      parent.num_rows(), [&](size_t r, int a) { return parent.dim(r, a); },
      [&](size_t r) { return parent.states_[r]; });
  return view;
}

std::vector<uint32_t> MaterializedView::RowKey(size_t row) const {
  std::vector<uint32_t> key(attr_list_.size());
  for (size_t i = 0; i < attr_list_.size(); ++i) key[i] = columns_[i][row];
  return key;
}

size_t MaterializedView::ApplyDelta(const FactTable& fact, size_t begin_row,
                                    size_t end_row) {
  OLAPIDX_CHECK(begin_row <= end_row);
  OLAPIDX_CHECK(end_row <= fact.num_rows());
  if (begin_row == end_row) return 0;

  // Aggregate the delta.
  KeyCodec codec(schema_, attr_list_);
  std::unordered_map<uint64_t, AggregateState> delta;
  std::vector<uint32_t> dims(
      static_cast<size_t>(schema_.num_dimensions()), 0);
  for (size_t r = begin_row; r < end_row; ++r) {
    for (int a : attr_list_) {
      dims[static_cast<size_t>(a)] = fact.dim(r, a);
    }
    delta[codec.EncodeRow(dims)].Merge(
        AggregateState::OfMeasure(fact.measure(r)));
  }

  // Merge existing groups in place; collect genuinely new keys.
  size_t touched = 0;
  std::vector<uint64_t> new_keys;
  for (auto& [key, state] : delta) {
    // Binary search over the sorted rows via the encoded key.
    size_t lo = 0, hi = num_rows();
    bool found = false;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      std::vector<uint32_t> dims_mid(
          static_cast<size_t>(schema_.num_dimensions()), 0);
      for (int a : attr_list_) {
        dims_mid[static_cast<size_t>(a)] = dim(mid, a);
      }
      uint64_t mid_key = codec.EncodeRow(dims_mid);
      if (mid_key == key) {
        states_[mid].Merge(state);
        found = true;
        ++touched;
        break;
      }
      if (mid_key < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (!found) new_keys.push_back(key);
  }

  if (!new_keys.empty()) {
    // Append the new groups, then re-sort all rows by key.
    std::sort(new_keys.begin(), new_keys.end());
    for (uint64_t key : new_keys) {
      for (size_t i = 0; i < attr_list_.size(); ++i) {
        columns_[i].push_back(codec.Decode(key, static_cast<int>(i)));
      }
      states_.push_back(delta.find(key)->second);
      ++touched;
    }
    std::vector<size_t> order(num_rows());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    auto key_of = [&](size_t row) {
      std::vector<uint32_t> dims_row(
          static_cast<size_t>(schema_.num_dimensions()), 0);
      for (int a : attr_list_) {
        dims_row[static_cast<size_t>(a)] = dim(row, a);
      }
      return codec.EncodeRow(dims_row);
    };
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return key_of(a) < key_of(b);
    });
    std::vector<std::vector<uint32_t>> new_columns(columns_.size());
    std::vector<AggregateState> new_states;
    new_states.reserve(states_.size());
    for (size_t i = 0; i < columns_.size(); ++i) {
      new_columns[i].reserve(columns_[i].size());
    }
    for (size_t row : order) {
      for (size_t i = 0; i < columns_.size(); ++i) {
        new_columns[i].push_back(columns_[i][row]);
      }
      new_states.push_back(states_[row]);
    }
    columns_ = std::move(new_columns);
    states_ = std::move(new_states);
  }
  return touched;
}

}  // namespace olapidx
