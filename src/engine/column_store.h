// ColumnStore: a compressed columnar representation of a materialized
// view, built for throughput-grade scan serving.
//
// Layout (Kaser & Lemire-style attribute/value reordering, PAPERS.md):
//
//  1. Per-column value recode: each attribute gets a local dictionary that
//     ranks its values by descending frequency in the view (ties by
//     ascending global code), so hot values get small local codes and
//     cluster together under the sort below.
//  2. Attribute-frequency sort: columns are ordered by ascending
//     distinct-value count (ties by ascending attribute id) and the view's
//     rows are re-sorted lexicographically under that column order over
//     the local codes. Leading low-cardinality columns then consist of a
//     handful of giant runs; the k-th column has at most
//     prod_{j<=k} distinct_j runs — minimized by putting the smallest
//     distinct counts first.
//  3. Per-column encoding: run-length (one {local value, run length} pair
//     per run) when the runs pay for themselves, otherwise bit-packed
//     literals at ceil(log2(distinct)) bits per row. The choice is purely
//     size-driven and invisible through the accessors.
//  4. Aggregate compression: groups that aggregate a single fact row
//     (count == 1, the common case in sparse cubes) have
//     sum == min == max, so one double reconstructs the whole
//     AggregateState bit-exactly; a bitmap marks them and only
//     multi-row groups store the full 32-byte state.
//
// The store is a *second representation* of the view: the row-store
// MaterializedView keeps working unchanged (roll-ups, deltas, indexes),
// and the executor's scan path reads whichever representation the catalog
// says is attached. Scan() decodes sequentially with per-run — not
// per-row — dictionary translation, which is where the batched executor's
// decode amortization comes from. Note the store's row order differs from
// the view's: scans visit the same set of rows in a different order, so
// per-group float accumulation can differ from the row store in the last
// ulp (exact-measure cubes, e.g. dyadic measures, are bit-identical; see
// column_store_test).

#ifndef OLAPIDX_ENGINE_COLUMN_STORE_H_
#define OLAPIDX_ENGINE_COLUMN_STORE_H_

#include <cstdint>
#include <vector>

#include "engine/materialized_view.h"
#include "lattice/attribute_set.h"

namespace olapidx {

// ---------------------------------------------------------------------------
// Run-length encoding of one uint32 column (exposed for property tests).
// ---------------------------------------------------------------------------

struct RleColumn {
  std::vector<uint32_t> values;  // one per run
  std::vector<uint32_t> starts;  // row index of each run's first row
  size_t num_rows = 0;

  size_t num_runs() const { return values.size(); }
  size_t PayloadBytes() const { return values.size() * 8; }
};

// Encodes `column` as maximal runs of equal adjacent values. Works on any
// column, sorted or not; unsorted input simply yields more runs.
RleColumn RleEncode(const std::vector<uint32_t>& column);

// Inverse of RleEncode (exact round trip for any input).
std::vector<uint32_t> RleDecode(const RleColumn& rle);

// ---------------------------------------------------------------------------
// The store.
// ---------------------------------------------------------------------------

struct ColumnStoreOptions {
  // Apply the attribute-frequency sort (ascending-distinct column order +
  // frequency value recode + row re-sort). Off keeps the view's row order,
  // which still RLE-compresses the leading key columns (the view is key
  // sorted) but leaves the trailing ones incompressible.
  bool reorder = true;
};

class ColumnStore {
 public:
  static ColumnStore FromView(const MaterializedView& view,
                              const ColumnStoreOptions& options = {});

  AttributeSet attrs() const { return attrs_; }
  size_t num_rows() const { return num_rows_; }
  bool reordered() const { return reordered_; }

  // ---- Sequential scan (the hot path) ----
  //
  // fn(row, dims, state): `dims` is indexed by attribute id and holds the
  // current row's *global* dimension codes for every attribute of the
  // view; `state` is the row's reconstructed AggregateState. Dictionary
  // translation happens once per run for RLE columns.
  template <typename Fn>
  void Scan(Fn&& fn) const {
    ScanState cursor(*this);
    for (size_t r = 0; r < num_rows_; ++r) {
      cursor.Advance(r);
      fn(r, cursor.dims.data(), cursor.state);
    }
  }

  // ---- Random access (tests, spot checks; O(log runs) for RLE) ----
  uint32_t dim(size_t row, int attr) const;       // global code
  AggregateState aggregate(size_t row) const;     // bit-exact reconstruction

  // ---- Size accounting ----
  // Compressed payload: column encodings + local dictionaries + aggregate
  // encoding (bitmap, singleton doubles, full states).
  size_t CompressedBytes() const;
  // Bytes the row-store representation of `view` occupies: one uint32
  // column per attribute plus one 32-byte AggregateState per row.
  static size_t RowStoreBytes(const MaterializedView& view);
  // Compressed bytes of one attribute's column (encoding + dictionary).
  size_t ColumnBytes(int attr) const;
  // Compressed bytes of the aggregate plane.
  size_t AggregateBytes() const;
  size_t NumRuns(int attr) const;

 private:
  ColumnStore() = default;

  enum class Encoding { kRle, kPacked };

  struct Column {
    int attr = 0;
    Encoding encoding = Encoding::kRle;
    // Local → global code, frequency-ranked.
    std::vector<uint32_t> local_to_global;
    // kRle payload.
    RleColumn rle;
    // kPacked payload: local codes at `bits` per row, little-endian within
    // each uint64 word.
    std::vector<uint64_t> packed;
    int bits = 0;

    uint32_t LocalAt(size_t row) const;
    size_t PayloadBytes() const;
  };

  // Per-row sequential decoder shared by Scan(); kept out of the template
  // so the per-column cursor logic lives in the .cc.
  struct ScanState {
    explicit ScanState(const ColumnStore& store);
    void Advance(size_t row);

    const ColumnStore& store;
    std::vector<uint32_t> dims;  // by attribute id
    // Per column (store order): index of the current run and the row at
    // which it ends (RLE columns only).
    std::vector<size_t> run_index;
    std::vector<size_t> run_end;
    // Aggregate plane cursors.
    size_t next_single = 0;
    size_t next_full = 0;
    AggregateState state;
  };

  uint32_t LocalToGlobal(const Column& c, uint32_t local) const {
    return c.local_to_global[local];
  }
  bool IsSingleton(size_t row) const {
    return (single_bits_[row >> 6] >> (row & 63)) & 1;
  }

  AttributeSet attrs_;
  size_t num_rows_ = 0;
  bool reordered_ = false;
  int num_dimensions_ = 0;
  // Columns in storage (sort-priority) order.
  std::vector<Column> columns_;
  // attr id → position in columns_, or -1.
  std::vector<int> column_of_;

  // Aggregate plane: singleton bitmap + per-64-row rank directory
  // (cumulative singleton count at each word boundary) + payloads.
  std::vector<uint64_t> single_bits_;
  std::vector<uint32_t> single_rank_;     // size == single_bits_.size()
  std::vector<double> single_sums_;       // one per singleton row
  std::vector<AggregateState> full_states_;  // one per non-singleton row
};

}  // namespace olapidx

#endif  // OLAPIDX_ENGINE_COLUMN_STORE_H_
