#include "engine/btree.h"

#include <algorithm>
#include <cstddef>

#include "common/metrics.h"

namespace olapidx {

BPlusTree::BPlusTree(int fanout) : fanout_(fanout) {
  OLAPIDX_CHECK(fanout >= 3);
}

BPlusTree::~BPlusTree() { DeleteSubtree(root_); }

BPlusTree::BPlusTree(BPlusTree&& other) noexcept
    : fanout_(other.fanout_),
      root_(other.root_),
      size_(other.size_),
      height_(other.height_) {
  other.root_ = nullptr;
  other.size_ = 0;
  other.height_ = 0;
}

BPlusTree& BPlusTree::operator=(BPlusTree&& other) noexcept {
  if (this != &other) {
    DeleteSubtree(root_);
    fanout_ = other.fanout_;
    root_ = other.root_;
    size_ = other.size_;
    height_ = other.height_;
    other.root_ = nullptr;
    other.size_ = 0;
    other.height_ = 0;
  }
  return *this;
}

void BPlusTree::DeleteSubtree(Node* node) {
  if (node == nullptr) return;
  for (Node* child : node->children) DeleteSubtree(child);
  delete node;
}

const BPlusTree::Node* BPlusTree::FindLeaf(uint64_t key) const {
  const Node* node = root_;
  if (node == nullptr) return nullptr;
  // Touches are accumulated locally and added once per descent, so the
  // counter costs one atomic add per lookup rather than one per level.
  uint64_t touched = 1;
  while (!node->is_leaf) {
    // First separator >= key: children to its left cannot contain `key`.
    size_t idx = static_cast<size_t>(
        std::lower_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    node = node->children[idx];
    ++touched;
  }
  OLAPIDX_METRIC_COUNTER(touches, "btree.node_touches");
  touches.Add(touched);
  return node;
}

BPlusTree::SplitResult BPlusTree::InsertInto(Node* node, uint64_t key,
                                             uint32_t value) {
  if (node->is_leaf) {
    size_t pos = static_cast<size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    node->keys.insert(node->keys.begin() + static_cast<ptrdiff_t>(pos), key);
    node->values.insert(node->values.begin() + static_cast<ptrdiff_t>(pos),
                        value);
    if (static_cast<int>(node->keys.size()) <= fanout_) return {};
    // Split the leaf in half; the separator is the right half's first key.
    size_t mid = node->keys.size() / 2;
    Node* right = new Node(/*leaf=*/true);
    right->keys.assign(node->keys.begin() + static_cast<ptrdiff_t>(mid),
                       node->keys.end());
    right->values.assign(node->values.begin() + static_cast<ptrdiff_t>(mid),
                         node->values.end());
    node->keys.resize(mid);
    node->values.resize(mid);
    right->next = node->next;
    node->next = right;
    return {right, right->keys.front()};
  }

  size_t idx = static_cast<size_t>(
      std::upper_bound(node->keys.begin(), node->keys.end(), key) -
      node->keys.begin());
  SplitResult child_split = InsertInto(node->children[idx], key, value);
  if (child_split.right == nullptr) return {};
  node->keys.insert(node->keys.begin() + static_cast<ptrdiff_t>(idx),
                    child_split.separator);
  node->children.insert(
      node->children.begin() + static_cast<ptrdiff_t>(idx + 1),
      child_split.right);
  if (static_cast<int>(node->keys.size()) <= fanout_) return {};
  // Split the internal node: the middle separator is promoted.
  size_t mid = node->keys.size() / 2;
  uint64_t promoted = node->keys[mid];
  Node* right = new Node(/*leaf=*/false);
  right->keys.assign(node->keys.begin() + static_cast<ptrdiff_t>(mid + 1),
                     node->keys.end());
  right->children.assign(
      node->children.begin() + static_cast<ptrdiff_t>(mid + 1),
      node->children.end());
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  return {right, promoted};
}

void BPlusTree::Insert(uint64_t key, uint32_t value) {
  OLAPIDX_METRIC_COUNTER(inserts, "btree.inserts");
  inserts.Add(1);
  if (root_ == nullptr) {
    root_ = new Node(/*leaf=*/true);
    height_ = 1;
  }
  SplitResult split = InsertInto(root_, key, value);
  if (split.right != nullptr) {
    Node* new_root = new Node(/*leaf=*/false);
    new_root->keys.push_back(split.separator);
    new_root->children.push_back(root_);
    new_root->children.push_back(split.right);
    root_ = new_root;
    ++height_;
  }
  ++size_;
}

void BPlusTree::BulkLoad(
    const std::vector<std::pair<uint64_t, uint32_t>>& sorted) {
  OLAPIDX_CHECK(root_ == nullptr);
  OLAPIDX_CHECK(std::is_sorted(
      sorted.begin(), sorted.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
  if (sorted.empty()) return;
  OLAPIDX_METRIC_COUNTER(bulk_entries, "btree.bulk_load_entries");
  bulk_entries.Add(sorted.size());

  // Build the leaf level.
  struct Entry {
    Node* node;
    uint64_t first_key;
  };
  std::vector<Entry> level;
  size_t per_leaf = static_cast<size_t>(fanout_);
  for (size_t begin = 0; begin < sorted.size(); begin += per_leaf) {
    size_t end = std::min(begin + per_leaf, sorted.size());
    // Avoid a singleton final leaf by rebalancing with its predecessor.
    if (end - begin == 1 && !level.empty()) {
      Node* prev = level.back().node;
      uint64_t k = prev->keys.back();
      uint32_t v = prev->values.back();
      prev->keys.pop_back();
      prev->values.pop_back();
      Node* leaf = new Node(/*leaf=*/true);
      leaf->keys = {k, sorted[begin].first};
      leaf->values = {v, sorted[begin].second};
      level.back().node->next = leaf;
      level.push_back(Entry{leaf, leaf->keys.front()});
      break;
    }
    Node* leaf = new Node(/*leaf=*/true);
    for (size_t i = begin; i < end; ++i) {
      leaf->keys.push_back(sorted[i].first);
      leaf->values.push_back(sorted[i].second);
    }
    if (!level.empty()) level.back().node->next = leaf;
    level.push_back(Entry{leaf, leaf->keys.front()});
  }
  height_ = 1;

  // Build internal levels bottom-up.
  size_t max_children = static_cast<size_t>(fanout_) + 1;
  while (level.size() > 1) {
    std::vector<Entry> parents;
    size_t begin = 0;
    while (begin < level.size()) {
      size_t end = std::min(begin + max_children, level.size());
      // Avoid a singleton final parent.
      if (level.size() - begin == max_children + 1) {
        end = begin + (max_children + 1) / 2;
      }
      Node* parent = new Node(/*leaf=*/false);
      parent->children.push_back(level[begin].node);
      for (size_t i = begin + 1; i < end; ++i) {
        parent->keys.push_back(level[i].first_key);
        parent->children.push_back(level[i].node);
      }
      parents.push_back(Entry{parent, level[begin].first_key});
      begin = end;
    }
    level = std::move(parents);
    ++height_;
  }
  root_ = level.front().node;
  size_ = sorted.size();
}

void BPlusTree::CheckSubtree(const Node* node, int depth, uint64_t lo,
                             uint64_t hi) const {
  OLAPIDX_CHECK(node != nullptr);
  OLAPIDX_CHECK(std::is_sorted(node->keys.begin(), node->keys.end()));
  for (uint64_t k : node->keys) {
    OLAPIDX_CHECK(k >= lo && k <= hi);
  }
  if (node->is_leaf) {
    OLAPIDX_CHECK(depth == height_);
    OLAPIDX_CHECK(node->keys.size() == node->values.size());
    OLAPIDX_CHECK(node->children.empty());
    OLAPIDX_CHECK(node == root_ || !node->keys.empty());
    return;
  }
  OLAPIDX_CHECK(node->values.empty());
  OLAPIDX_CHECK(node->children.size() == node->keys.size() + 1);
  for (size_t i = 0; i < node->children.size(); ++i) {
    uint64_t child_lo = (i == 0) ? lo : node->keys[i - 1];
    uint64_t child_hi = (i == node->keys.size()) ? hi : node->keys[i];
    CheckSubtree(node->children[i], depth + 1, child_lo, child_hi);
  }
}

void BPlusTree::CheckInvariants() const {
  if (root_ == nullptr) {
    OLAPIDX_CHECK(size_ == 0);
    OLAPIDX_CHECK(height_ == 0);
    return;
  }
  CheckSubtree(root_, 1, 0, ~0ULL);
  // The leaf chain must enumerate exactly size_ entries in sorted order.
  const Node* leaf = root_;
  while (!leaf->is_leaf) leaf = leaf->children.front();
  size_t total = 0;
  uint64_t prev = 0;
  bool first = true;
  while (leaf != nullptr) {
    for (uint64_t k : leaf->keys) {
      OLAPIDX_CHECK(first || k >= prev);
      prev = k;
      first = false;
      ++total;
    }
    leaf = leaf->next;
  }
  OLAPIDX_CHECK(total == size_);
}

}  // namespace olapidx
