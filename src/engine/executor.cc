#include "engine/executor.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "cost/analytical_model.h"
#include "engine/group_accumulator.h"

namespace olapidx {

namespace {

// Estimated number of distinct combinations of `attrs` within a table of
// `rows` rows (independence assumption; exact when the catalog happens to
// have the subcube materialized — the caller handles that case).
double EstimateDistinct(const CubeSchema& schema, AttributeSet attrs,
                        double rows) {
  if (attrs.empty()) return 1.0;
  return ExpectedDistinct(schema.DomainSize(attrs), rows);
}

// One hoisted selection predicate: the raw column, resolved once per
// query, and the constant it must equal.
struct SelPred {
  const uint32_t* col;
  uint32_t value;
};

}  // namespace

PlannedAccess PlanAccess(const Catalog& catalog, const SliceQuery& query) {
  const CubeSchema& schema = catalog.schema();
  PlannedAccess plan;
  plan.estimated_cost = static_cast<double>(catalog.fact().num_rows());

  for (AttributeSet view_attrs : catalog.materialized_views()) {
    if (!query.AnswerableFrom(view_attrs)) continue;
    const MaterializedView& view = catalog.view(view_attrs);
    double view_rows = static_cast<double>(view.num_rows());
    if (view_rows < plan.estimated_cost) {
      plan = PlannedAccess{false, view_attrs, nullptr, AttributeSet(),
                           view_rows};
    }
    for (const ViewIndex& index : catalog.indexes(view_attrs)) {
      AttributeSet prefix =
          index.key().LongestSelectionPrefix(query.selection());
      if (prefix.empty()) continue;
      double distinct = catalog.HasView(prefix)
                            ? static_cast<double>(
                                  catalog.view(prefix).num_rows())
                            : EstimateDistinct(schema, prefix, view_rows);
      double est = view_rows / std::max(1.0, distinct);
      if (est < plan.estimated_cost) {
        plan = PlannedAccess{false, view_attrs, &index, prefix, est};
      }
    }
  }
  return plan;
}

Executor::Executor(const Catalog* catalog) : catalog_(catalog) {
  OLAPIDX_CHECK(catalog != nullptr);
}

GroupedResult Executor::Execute(
    const SliceQuery& query, const std::vector<uint32_t>& selection_values,
    ExecutionStats* stats) const {
  OLAPIDX_TRACE_SPAN("executor.execute");
  const CubeSchema& schema = catalog_->schema();
  std::vector<int> sel_attrs = query.selection().ToVector();
  OLAPIDX_CHECK(selection_values.size() == sel_attrs.size());
  // Selection value per attribute id.
  std::vector<uint32_t> sel_value(
      static_cast<size_t>(schema.num_dimensions()), 0);
  for (size_t i = 0; i < sel_attrs.size(); ++i) {
    sel_value[static_cast<size_t>(sel_attrs[i])] = selection_values[i];
  }
  const std::vector<int> group_attrs = query.group_by().ToVector();

  PlannedAccess plan = PlanAccess(*catalog_, query);

  // ---- Execute the chosen path. ----
  //
  // Selection predicates and group-by columns are resolved to raw column
  // pointers once per query, not once per row — the scan loops below
  // touch no per-row indirection beyond the columns themselves.
  GroupAccumulator acc(schema, query.group_by());
  uint64_t rows_processed = 0;
  uint64_t bytes_scanned = 0;
  bool used_columnar = false;

  if (plan.use_raw) {
    const FactTable& fact = catalog_->fact();
    std::vector<SelPred> preds;
    preds.reserve(sel_attrs.size());
    for (size_t i = 0; i < sel_attrs.size(); ++i) {
      preds.push_back({fact.column_data(sel_attrs[i]), selection_values[i]});
    }
    std::vector<const uint32_t*> gcols;
    gcols.reserve(group_attrs.size());
    for (int a : group_attrs) gcols.push_back(fact.column_data(a));
    const double* measures = fact.measure_data();
    const size_t n = fact.num_rows();
    for (size_t r = 0; r < n; ++r) {
      ++rows_processed;
      bool match = true;
      for (const SelPred& p : preds) {
        if (p.col[r] != p.value) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      acc.AddRow(gcols.data(), r, AggregateState::OfMeasure(measures[r]));
    }
    bytes_scanned = rows_processed *
                    (static_cast<uint64_t>(schema.num_dimensions()) * 4 + 8);
  } else if (plan.index == nullptr) {
    const MaterializedView& view = catalog_->view(plan.view);
    const ColumnStore* store =
        use_column_store_ ? catalog_->column_store(plan.view) : nullptr;
    const uint64_t row_bytes =
        static_cast<uint64_t>(view.attrs().ToVector().size()) * 4 +
        sizeof(AggregateState);
    if (store != nullptr) {
      used_columnar = true;
      store->Scan([&](size_t r, const uint32_t* dims,
                      const AggregateState& state) {
        (void)r;
        ++rows_processed;
        for (int a : sel_attrs) {
          if (dims[a] != sel_value[static_cast<size_t>(a)]) return;
        }
        acc.AddDims(dims, state);
      });
      bytes_scanned = store->CompressedBytes();
    } else {
      std::vector<SelPred> preds;
      preds.reserve(sel_attrs.size());
      for (size_t i = 0; i < sel_attrs.size(); ++i) {
        preds.push_back(
            {view.column_data(sel_attrs[i]), selection_values[i]});
      }
      std::vector<const uint32_t*> gcols;
      gcols.reserve(group_attrs.size());
      for (int a : group_attrs) gcols.push_back(view.column_data(a));
      const AggregateState* states = view.aggregate_data();
      const size_t n = view.num_rows();
      for (size_t r = 0; r < n; ++r) {
        ++rows_processed;
        bool match = true;
        for (const SelPred& p : preds) {
          if (p.col[r] != p.value) {
            match = false;
            break;
          }
        }
        if (!match) continue;
        acc.AddRow(gcols.data(), r, states[r]);
      }
      bytes_scanned = rows_processed * row_bytes;
    }
  } else {
    const MaterializedView& view = catalog_->view(plan.view);
    // Prefix values in index-key order for the matched prefix; rows the
    // probe returns already satisfy the prefix attributes, so only the
    // residual selection is re-checked.
    std::vector<uint32_t> prefix_values;
    std::vector<SelPred> preds;
    for (int a : plan.index->key().attrs()) {
      if (!plan.index_prefix.Contains(a)) break;
      prefix_values.push_back(sel_value[static_cast<size_t>(a)]);
    }
    for (size_t i = 0; i < sel_attrs.size(); ++i) {
      if (plan.index_prefix.Contains(sel_attrs[i])) continue;
      preds.push_back({view.column_data(sel_attrs[i]), selection_values[i]});
    }
    std::vector<const uint32_t*> gcols;
    gcols.reserve(group_attrs.size());
    for (int a : group_attrs) gcols.push_back(view.column_data(a));
    const AggregateState* states = view.aggregate_data();
    rows_processed += plan.index->ScanPrefix(
        prefix_values, [&](uint32_t r) {
          for (const SelPred& p : preds) {
            if (p.col[r] != p.value) return;
          }
          acc.AddRow(gcols.data(), r, states[r]);
        });
    bytes_scanned =
        rows_processed *
        (static_cast<uint64_t>(view.attrs().ToVector().size()) * 4 +
         sizeof(AggregateState));
  }

  // One registry update per query (not per row): the row counts were
  // accumulated locally above, and which counter they land in classifies
  // the chosen access path (raw scan vs. view scan vs. index probe).
  OLAPIDX_METRIC_COUNTER(queries, "executor.queries");
  queries.Add(1);
  if (plan.use_raw) {
    OLAPIDX_METRIC_COUNTER(raw_plans, "executor.plans_raw");
    OLAPIDX_METRIC_COUNTER(raw_rows, "executor.rows_raw_scanned");
    raw_plans.Add(1);
    raw_rows.Add(rows_processed);
  } else if (plan.index == nullptr) {
    OLAPIDX_METRIC_COUNTER(view_plans, "executor.plans_view_scan");
    OLAPIDX_METRIC_COUNTER(view_rows, "executor.rows_view_scanned");
    view_plans.Add(1);
    view_rows.Add(rows_processed);
    if (used_columnar) {
      OLAPIDX_METRIC_COUNTER(columnar_plans, "executor.plans_columnar_scan");
      columnar_plans.Add(1);
    }
  } else {
    OLAPIDX_METRIC_COUNTER(index_plans, "executor.plans_index");
    OLAPIDX_METRIC_COUNTER(index_rows, "executor.rows_index_probed");
    index_plans.Add(1);
    index_rows.Add(rows_processed);
  }

  ExecutionStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  stats->rows_processed = rows_processed;
  stats->used_raw = plan.use_raw;
  stats->view = plan.use_raw ? AttributeSet() : plan.view;
  stats->index = plan.index != nullptr ? plan.index->key() : IndexKey();
  stats->used_columnar = used_columnar;
  stats->bytes_scanned = bytes_scanned;
  stats->estimated_cost = plan.estimated_cost;
  // Both entry points notify here, so the observed-workload sketch sees
  // traffic regardless of which variant drove the engine.
  if (observer_) observer_(query, *stats);
  return acc.Finish();
}

Status Executor::TryExecute(const SliceQuery& query,
                            const std::vector<uint32_t>& selection_values,
                            GroupedResult* out,
                            ExecutionStats* stats) const {
  OLAPIDX_CHECK(out != nullptr);
  OLAPIDX_FAULT_POINT("executor.execute");
  size_t expected = query.selection().ToVector().size();
  if (selection_values.size() != expected) {
    return Status::InvalidArgument(
        "query selects " + std::to_string(expected) +
        " attribute(s) but " + std::to_string(selection_values.size()) +
        " selection value(s) were supplied");
  }
  *out = Execute(query, selection_values, stats);
  return Status::Ok();
}

std::vector<Executor::PlanChoice> Executor::Explain(
    const SliceQuery& query) const {
  const CubeSchema& schema = catalog_->schema();
  std::vector<PlanChoice> out;
  PlanChoice raw;
  raw.use_raw = true;
  raw.estimated_cost = static_cast<double>(catalog_->fact().num_rows());
  out.push_back(raw);
  for (AttributeSet view_attrs : catalog_->materialized_views()) {
    if (!query.AnswerableFrom(view_attrs)) continue;
    const MaterializedView& view = catalog_->view(view_attrs);
    double view_rows = static_cast<double>(view.num_rows());
    out.push_back(PlanChoice{false, view_attrs, IndexKey(), view_rows,
                             false});
    for (const ViewIndex& index : catalog_->indexes(view_attrs)) {
      AttributeSet prefix =
          index.key().LongestSelectionPrefix(query.selection());
      if (prefix.empty()) continue;
      double distinct =
          catalog_->HasView(prefix)
              ? static_cast<double>(catalog_->view(prefix).num_rows())
              : EstimateDistinct(schema, prefix, view_rows);
      out.push_back(PlanChoice{false, view_attrs, index.key(),
                               view_rows / std::max(1.0, distinct),
                               false});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const PlanChoice& a, const PlanChoice& b) {
                     return a.estimated_cost < b.estimated_cost;
                   });
  if (!out.empty()) out.front().chosen = true;
  return out;
}

std::string Executor::ExplainString(const SliceQuery& query) const {
  const CubeSchema& schema = catalog_->schema();
  std::string out =
      "EXPLAIN " + query.ToString(schema.names()) + "\n";
  for (const PlanChoice& p : Explain(query)) {
    out += p.chosen ? "  -> " : "     ";
    if (p.use_raw) {
      out += "scan raw fact table";
    } else if (p.index.empty()) {
      out += "scan " + p.view.ToString(schema.names());
    } else {
      out += "index " + p.index.ToString(schema.names()) + " on " +
             p.view.ToString(schema.names());
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), "  (est. %.1f rows)", p.estimated_cost);
    out += buf;
    out += "\n";
  }
  return out;
}

GroupedResult Executor::ExecuteNaive(
    const SliceQuery& query,
    const std::vector<uint32_t>& selection_values) const {
  const CubeSchema& schema = catalog_->schema();
  std::vector<int> sel_attrs = query.selection().ToVector();
  OLAPIDX_CHECK(selection_values.size() == sel_attrs.size());
  GroupAccumulator acc(schema, query.group_by());
  const FactTable& fact = catalog_->fact();
  for (size_t r = 0; r < fact.num_rows(); ++r) {
    bool match = true;
    for (size_t i = 0; i < sel_attrs.size(); ++i) {
      if (fact.dim(r, sel_attrs[i]) != selection_values[i]) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    acc.Add([&](int a) { return fact.dim(r, a); },
            AggregateState::OfMeasure(fact.measure(r)));
  }
  return acc.Finish();
}

}  // namespace olapidx
