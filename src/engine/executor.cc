#include "engine/executor.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_map>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "cost/analytical_model.h"
#include "engine/key_codec.h"

namespace olapidx {

namespace {

// Accumulates (group key → aggregate state) pairs and emits a
// GroupedResult sorted by encoded group key.
class GroupAccumulator {
 public:
  GroupAccumulator(const CubeSchema& schema, AttributeSet group_by)
      : attrs_(group_by.ToVector()), codec_(schema, attrs_) {}

  // `value_of(attr)` returns the current row's value of `attr`.
  template <typename ValueFn>
  void Add(ValueFn&& value_of, const AggregateState& state) {
    scratch_.resize(attrs_.size());
    for (size_t i = 0; i < attrs_.size(); ++i) {
      scratch_[i] = value_of(attrs_[i]);
    }
    groups_[codec_.EncodePrefix(scratch_)].Merge(state);
  }

  GroupedResult Finish() const {
    GroupedResult out;
    out.group_attrs = attrs_;
    std::vector<uint64_t> keys;
    keys.reserve(groups_.size());
    for (const auto& [key, state] : groups_) {
      (void)state;
      keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
    for (uint64_t key : keys) {
      std::vector<uint32_t> row(attrs_.size());
      for (size_t i = 0; i < attrs_.size(); ++i) {
        row[i] = codec_.Decode(key, static_cast<int>(i));
      }
      out.keys.push_back(std::move(row));
      const AggregateState& state = groups_.find(key)->second;
      out.sums.push_back(state.sum);
      out.aggregates.push_back(state);
    }
    return out;
  }

 private:
  std::vector<int> attrs_;
  KeyCodec codec_;
  std::unordered_map<uint64_t, AggregateState> groups_;
  std::vector<uint32_t> scratch_;
};

// Estimated number of distinct combinations of `attrs` within a table of
// `rows` rows (independence assumption; exact when the catalog happens to
// have the subcube materialized — the caller handles that case).
double EstimateDistinct(const CubeSchema& schema, AttributeSet attrs,
                        double rows) {
  if (attrs.empty()) return 1.0;
  return ExpectedDistinct(schema.DomainSize(attrs), rows);
}

}  // namespace

Executor::Executor(const Catalog* catalog) : catalog_(catalog) {
  OLAPIDX_CHECK(catalog != nullptr);
}

GroupedResult Executor::Execute(
    const SliceQuery& query, const std::vector<uint32_t>& selection_values,
    ExecutionStats* stats) const {
  OLAPIDX_TRACE_SPAN("executor.execute");
  const CubeSchema& schema = catalog_->schema();
  std::vector<int> sel_attrs = query.selection().ToVector();
  OLAPIDX_CHECK(selection_values.size() == sel_attrs.size());
  // Selection value per attribute id.
  std::vector<uint32_t> sel_value(
      static_cast<size_t>(schema.num_dimensions()), 0);
  for (size_t i = 0; i < sel_attrs.size(); ++i) {
    sel_value[static_cast<size_t>(sel_attrs[i])] = selection_values[i];
  }

  // ---- Plan: pick the cheapest access path. ----
  struct Plan {
    bool use_raw = true;
    AttributeSet view;
    const ViewIndex* index = nullptr;
    double estimated_cost = 0.0;
  };
  Plan plan;
  plan.estimated_cost = static_cast<double>(catalog_->fact().num_rows());

  for (AttributeSet view_attrs : catalog_->materialized_views()) {
    if (!query.AnswerableFrom(view_attrs)) continue;
    const MaterializedView& view = catalog_->view(view_attrs);
    double view_rows = static_cast<double>(view.num_rows());
    if (view_rows < plan.estimated_cost) {
      plan = Plan{false, view_attrs, nullptr, view_rows};
    }
    for (const ViewIndex& index : catalog_->indexes(view_attrs)) {
      AttributeSet prefix =
          index.key().LongestSelectionPrefix(query.selection());
      if (prefix.empty()) continue;
      double distinct = catalog_->HasView(prefix)
                            ? static_cast<double>(
                                  catalog_->view(prefix).num_rows())
                            : EstimateDistinct(schema, prefix, view_rows);
      double est = view_rows / std::max(1.0, distinct);
      if (est < plan.estimated_cost) {
        plan = Plan{false, view_attrs, &index, est};
      }
    }
  }

  // ---- Execute the chosen path. ----
  GroupAccumulator acc(schema, query.group_by());
  uint64_t rows_processed = 0;

  auto matches_selection = [&](auto&& value_of) {
    for (int a : sel_attrs) {
      if (value_of(a) != sel_value[static_cast<size_t>(a)]) return false;
    }
    return true;
  };

  if (plan.use_raw) {
    const FactTable& fact = catalog_->fact();
    for (size_t r = 0; r < fact.num_rows(); ++r) {
      ++rows_processed;
      auto value_of = [&](int a) { return fact.dim(r, a); };
      if (!matches_selection(value_of)) continue;
      acc.Add(value_of, AggregateState::OfMeasure(fact.measure(r)));
    }
  } else {
    const MaterializedView& view = catalog_->view(plan.view);
    if (plan.index == nullptr) {
      for (size_t r = 0; r < view.num_rows(); ++r) {
        ++rows_processed;
        auto value_of = [&](int a) { return view.dim(r, a); };
        if (!matches_selection(value_of)) continue;
        acc.Add(value_of, view.aggregate(r));
      }
    } else {
      // Prefix values in index-key order for the matched prefix.
      AttributeSet prefix =
          plan.index->key().LongestSelectionPrefix(query.selection());
      std::vector<uint32_t> prefix_values;
      for (int a : plan.index->key().attrs()) {
        if (!prefix.Contains(a)) break;
        prefix_values.push_back(sel_value[static_cast<size_t>(a)]);
      }
      rows_processed += plan.index->ScanPrefix(
          prefix_values, [&](uint32_t r) {
            auto value_of = [&](int a) { return view.dim(r, a); };
            if (!matches_selection(value_of)) return;
            acc.Add(value_of, view.aggregate(r));
          });
    }
  }

  // One registry update per query (not per row): the row counts were
  // accumulated locally above, and which counter they land in classifies
  // the chosen access path (raw scan vs. view scan vs. index probe).
  OLAPIDX_METRIC_COUNTER(queries, "executor.queries");
  queries.Add(1);
  if (plan.use_raw) {
    OLAPIDX_METRIC_COUNTER(raw_plans, "executor.plans_raw");
    OLAPIDX_METRIC_COUNTER(raw_rows, "executor.rows_raw_scanned");
    raw_plans.Add(1);
    raw_rows.Add(rows_processed);
  } else if (plan.index == nullptr) {
    OLAPIDX_METRIC_COUNTER(view_plans, "executor.plans_view_scan");
    OLAPIDX_METRIC_COUNTER(view_rows, "executor.rows_view_scanned");
    view_plans.Add(1);
    view_rows.Add(rows_processed);
  } else {
    OLAPIDX_METRIC_COUNTER(index_plans, "executor.plans_index");
    OLAPIDX_METRIC_COUNTER(index_rows, "executor.rows_index_probed");
    index_plans.Add(1);
    index_rows.Add(rows_processed);
  }

  if (stats != nullptr) {
    stats->rows_processed = rows_processed;
    stats->used_raw = plan.use_raw;
    stats->view = plan.use_raw ? AttributeSet() : plan.view;
    stats->index = plan.index != nullptr ? plan.index->key() : IndexKey();
    stats->estimated_cost = plan.estimated_cost;
  }
  return acc.Finish();
}

Status Executor::TryExecute(const SliceQuery& query,
                            const std::vector<uint32_t>& selection_values,
                            GroupedResult* out,
                            ExecutionStats* stats) const {
  OLAPIDX_CHECK(out != nullptr);
  OLAPIDX_FAULT_POINT("executor.execute");
  size_t expected = query.selection().ToVector().size();
  if (selection_values.size() != expected) {
    return Status::InvalidArgument(
        "query selects " + std::to_string(expected) +
        " attribute(s) but " + std::to_string(selection_values.size()) +
        " selection value(s) were supplied");
  }
  ExecutionStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *out = Execute(query, selection_values, stats);
  if (observer_) observer_(query, *stats);
  return Status::Ok();
}

std::vector<Executor::PlanChoice> Executor::Explain(
    const SliceQuery& query) const {
  const CubeSchema& schema = catalog_->schema();
  std::vector<PlanChoice> out;
  PlanChoice raw;
  raw.use_raw = true;
  raw.estimated_cost = static_cast<double>(catalog_->fact().num_rows());
  out.push_back(raw);
  for (AttributeSet view_attrs : catalog_->materialized_views()) {
    if (!query.AnswerableFrom(view_attrs)) continue;
    const MaterializedView& view = catalog_->view(view_attrs);
    double view_rows = static_cast<double>(view.num_rows());
    out.push_back(PlanChoice{false, view_attrs, IndexKey(), view_rows,
                             false});
    for (const ViewIndex& index : catalog_->indexes(view_attrs)) {
      AttributeSet prefix =
          index.key().LongestSelectionPrefix(query.selection());
      if (prefix.empty()) continue;
      double distinct =
          catalog_->HasView(prefix)
              ? static_cast<double>(catalog_->view(prefix).num_rows())
              : EstimateDistinct(schema, prefix, view_rows);
      out.push_back(PlanChoice{false, view_attrs, index.key(),
                               view_rows / std::max(1.0, distinct),
                               false});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const PlanChoice& a, const PlanChoice& b) {
                     return a.estimated_cost < b.estimated_cost;
                   });
  if (!out.empty()) out.front().chosen = true;
  return out;
}

std::string Executor::ExplainString(const SliceQuery& query) const {
  const CubeSchema& schema = catalog_->schema();
  std::string out =
      "EXPLAIN " + query.ToString(schema.names()) + "\n";
  for (const PlanChoice& p : Explain(query)) {
    out += p.chosen ? "  -> " : "     ";
    if (p.use_raw) {
      out += "scan raw fact table";
    } else if (p.index.empty()) {
      out += "scan " + p.view.ToString(schema.names());
    } else {
      out += "index " + p.index.ToString(schema.names()) + " on " +
             p.view.ToString(schema.names());
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), "  (est. %.1f rows)", p.estimated_cost);
    out += buf;
    out += "\n";
  }
  return out;
}

GroupedResult Executor::ExecuteNaive(
    const SliceQuery& query,
    const std::vector<uint32_t>& selection_values) const {
  const CubeSchema& schema = catalog_->schema();
  std::vector<int> sel_attrs = query.selection().ToVector();
  OLAPIDX_CHECK(selection_values.size() == sel_attrs.size());
  GroupAccumulator acc(schema, query.group_by());
  const FactTable& fact = catalog_->fact();
  for (size_t r = 0; r < fact.num_rows(); ++r) {
    bool match = true;
    for (size_t i = 0; i < sel_attrs.size(); ++i) {
      if (fact.dim(r, sel_attrs[i]) != selection_values[i]) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    acc.Add([&](int a) { return fact.dim(r, a); },
            AggregateState::OfMeasure(fact.measure(r)));
  }
  return acc.Finish();
}

}  // namespace olapidx
