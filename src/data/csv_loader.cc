#include "data/csv_loader.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/fault_injection.h"

namespace olapidx {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> out;
  std::string current;
  for (char c : line) {
    if (c == ',') {
      out.push_back(Trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  out.push_back(Trim(current));
  return out;
}

}  // namespace

StatusOr<CsvCube> LoadCsvFacts(const std::string& text) {
  OLAPIDX_FAULT_POINT("csv.load");
  // std::getline splits on '\n' and Trim strips the '\r' of CRLF files;
  // the final row is parsed whether or not the file ends in a newline.
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& message) {
    return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                   message);
  };

  // Header.
  std::vector<std::string> header;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    header = SplitCsv(line);
    break;
  }
  if (header.size() < 2) {
    return fail("header must name at least one dimension and the measure");
  }
  size_t n_dims = header.size() - 1;
  if (n_dims > static_cast<size_t>(kMaxDimensions)) {
    return fail("too many dimensions");
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i].empty()) return fail("empty column name in header");
    for (size_t j = i + 1; j < header.size(); ++j) {
      if (header[i] == header[j]) {
        return fail("duplicate column name '" + header[i] + "'");
      }
    }
  }

  // Pass 1: dictionary-encode rows into temporaries (cardinalities are
  // only known at the end).
  std::vector<Dictionary> dictionaries(n_dims);
  std::vector<std::vector<uint32_t>> coded(n_dims);
  std::vector<double> measures;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = SplitCsv(line);
    if (fields.size() != header.size()) {
      std::string message = "expected " + std::to_string(header.size()) +
                            " fields, got " + std::to_string(fields.size());
      // The most common cause of extra fields is a quoted value with an
      // embedded comma; the format has no quoting, so say so.
      if (fields.size() > header.size() &&
          line.find('"') != std::string::npos) {
        message +=
            " (quoting is not supported; fields must not contain commas)";
      }
      return fail(message);
    }
    for (size_t d = 0; d < n_dims; ++d) {
      if (fields[d].empty()) {
        return fail("empty value for dimension '" + header[d] + "'");
      }
      coded[d].push_back(dictionaries[d].Encode(fields[d]));
    }
    const std::string& m = fields[n_dims];
    char* end = nullptr;
    errno = 0;
    double measure = std::strtod(m.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return fail("bad measure '" + m + "'");
    }
    if (errno == ERANGE && (measure == HUGE_VAL || measure == -HUGE_VAL)) {
      return fail("measure '" + m + "' overflows a double");
    }
    if (!std::isfinite(measure)) {
      return fail("bad measure '" + m + "' (must be finite)");
    }
    measures.push_back(measure);
  }
  if (measures.empty()) return fail("no data rows");

  std::vector<Dimension> dims;
  for (size_t d = 0; d < n_dims; ++d) {
    dims.push_back(
        Dimension{header[d], std::max<uint64_t>(1, dictionaries[d].size())});
  }
  CubeSchema schema(dims);
  FactTable fact(schema);
  fact.Reserve(measures.size());
  std::vector<uint32_t> row(n_dims);
  for (size_t r = 0; r < measures.size(); ++r) {
    for (size_t d = 0; d < n_dims; ++d) row[d] = coded[d][r];
    fact.Append(row, measures[r]);
  }
  return CsvCube{std::move(schema), std::move(fact),
                 std::move(dictionaries)};
}

std::string WriteCsvFacts(const FactTable& fact,
                          const std::vector<Dictionary>& dictionaries,
                          const std::string& measure_name) {
  const CubeSchema& schema = fact.schema();
  OLAPIDX_CHECK(dictionaries.size() ==
                static_cast<size_t>(schema.num_dimensions()));
  std::string out;
  for (int a = 0; a < schema.num_dimensions(); ++a) {
    out += schema.dimension(a).name + ",";
  }
  out += measure_name + "\n";
  char buf[64];
  for (size_t r = 0; r < fact.num_rows(); ++r) {
    for (int a = 0; a < schema.num_dimensions(); ++a) {
      out += dictionaries[static_cast<size_t>(a)].Decode(fact.dim(r, a));
      out += ",";
    }
    std::snprintf(buf, sizeof(buf), "%.17g", fact.measure(r));
    out += buf;
    out += "\n";
  }
  return out;
}

}  // namespace olapidx
