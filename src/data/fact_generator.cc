#include "data/fact_generator.h"

#include "common/rng.h"
#include "data/tpcd.h"

namespace olapidx {

FactTable GenerateUniformFacts(const CubeSchema& schema, size_t rows,
                               uint64_t seed) {
  FactTable fact(schema);
  fact.Reserve(rows);
  Pcg32 rng(seed);
  std::vector<uint32_t> dims(
      static_cast<size_t>(schema.num_dimensions()), 0);
  for (size_t r = 0; r < rows; ++r) {
    for (int a = 0; a < schema.num_dimensions(); ++a) {
      dims[static_cast<size_t>(a)] = rng.NextBounded(
          static_cast<uint32_t>(schema.dimension(a).cardinality));
    }
    fact.Append(dims, 1.0 + rng.NextDouble() * 99.0);  // sales in [1, 100)
  }
  return fact;
}

FactTable GenerateZipfFacts(const CubeSchema& schema, size_t rows,
                            double skew, uint64_t seed) {
  OLAPIDX_CHECK(skew >= 0.0);
  FactTable fact(schema);
  fact.Reserve(rows);
  Pcg32 rng(seed);
  // One sampler and one member shuffle per dimension.
  std::vector<ZipfSampler> samplers;
  std::vector<std::vector<uint32_t>> shuffles;
  for (int a = 0; a < schema.num_dimensions(); ++a) {
    uint32_t card =
        static_cast<uint32_t>(schema.dimension(a).cardinality);
    samplers.emplace_back(card, skew);
    std::vector<uint32_t> shuffle(card);
    for (uint32_t i = 0; i < card; ++i) shuffle[i] = i;
    for (uint32_t i = card; i > 1; --i) {
      std::swap(shuffle[i - 1], shuffle[rng.NextBounded(i)]);
    }
    shuffles.push_back(std::move(shuffle));
  }
  std::vector<uint32_t> dims(
      static_cast<size_t>(schema.num_dimensions()), 0);
  for (size_t r = 0; r < rows; ++r) {
    for (int a = 0; a < schema.num_dimensions(); ++a) {
      dims[static_cast<size_t>(a)] =
          shuffles[static_cast<size_t>(a)]
                  [samplers[static_cast<size_t>(a)].Sample(rng)];
    }
    fact.Append(dims, 1.0 + rng.NextDouble() * 99.0);
  }
  return fact;
}

FactTable GenerateTpcdScaledFacts(const TpcdScaledConfig& config) {
  OLAPIDX_CHECK(config.suppliers_per_part >= 1);
  OLAPIDX_CHECK(config.suppliers_per_part <= config.suppliers);
  CubeSchema schema({Dimension{"p", config.parts},
                     Dimension{"s", config.suppliers},
                     Dimension{"c", config.customers}});
  FactTable fact(schema);
  fact.Reserve(config.rows);
  Pcg32 rng(config.seed);
  // Deterministic per-part supplier sets: supplier j of part p is
  // hash(p, j) mod suppliers. Collisions within a part merely shrink its
  // supplier set slightly, which is harmless.
  SplitMix64 hash_seed(config.seed ^ 0x5eed5eed5eed5eedULL);
  uint64_t salt = hash_seed.Next();
  auto supplier_of = [&](uint32_t part, uint32_t j) {
    SplitMix64 h(salt ^ (static_cast<uint64_t>(part) << 20) ^ j);
    return static_cast<uint32_t>(h.Next() % config.suppliers);
  };
  std::vector<uint32_t> dims(3);
  for (size_t r = 0; r < config.rows; ++r) {
    uint32_t part = rng.NextBounded(config.parts);
    uint32_t j = rng.NextBounded(config.suppliers_per_part);
    dims[static_cast<size_t>(kTpcdPart)] = part;
    dims[static_cast<size_t>(kTpcdSupplier)] = supplier_of(part, j);
    dims[static_cast<size_t>(kTpcdCustomer)] =
        rng.NextBounded(config.customers);
    fact.Append(dims, 1.0 + rng.NextDouble() * 99.0);
  }
  return fact;
}

}  // namespace olapidx
