#include "data/example_graphs.h"

namespace olapidx {

QueryViewGraph Figure2Instance() {
  QueryViewGraph g;
  const double kDefault = 1000.0;

  // V1 "pair": one query; the view scans at the default cost (no benefit),
  // the index answers it 100 cheaper.
  uint32_t v1 = g.AddView("V1", 1.0);
  int32_t i11 = g.AddIndex(v1, "I1,1", 1.0);
  uint32_t qa = g.AddQuery("qa", kDefault);
  g.AddViewEdge(qa, v1, kDefault);
  g.AddIndexEdge(qa, v1, i11, kDefault - 100.0);

  // V2 "trap": six queries, one per index; each index is worth 41 but the
  // view alone is worth nothing.
  uint32_t v2 = g.AddView("V2", 1.0);
  for (int j = 0; j < 6; ++j) {
    int32_t idx = g.AddIndex(v2, "I2," + std::to_string(j + 1), 1.0);
    uint32_t q = g.AddQuery("qb" + std::to_string(j + 1), kDefault);
    g.AddViewEdge(q, v2, kDefault);
    g.AddIndexEdge(q, v2, idx, kDefault - 41.0);
  }

  // V3 "junk": its own query gives 22 up front; each index serves another
  // query worth 21 — the bait that keeps 1- and 2-greedy busy.
  uint32_t v3 = g.AddView("V3", 1.0);
  uint32_t qj = g.AddQuery("qc0", kDefault);
  g.AddViewEdge(qj, v3, kDefault - 22.0);
  for (int j = 0; j < 6; ++j) {
    int32_t idx = g.AddIndex(v3, "I3," + std::to_string(j + 1), 1.0);
    uint32_t q = g.AddQuery("qc" + std::to_string(j + 1), kDefault);
    g.AddViewEdge(q, v3, kDefault);
    g.AddIndexEdge(q, v3, idx, kDefault - 21.0);
  }

  g.Finalize();
  return g;
}

QueryViewGraph OneGreedyTrapInstance(double trap_benefit,
                                     double decoy_benefit) {
  OLAPIDX_CHECK(trap_benefit > 0.0);
  OLAPIDX_CHECK(decoy_benefit > 0.0);
  QueryViewGraph g;
  double kDefault = 10.0 * (trap_benefit + decoy_benefit);

  uint32_t trap = g.AddView("trap", 1.0);
  int32_t trap_idx = g.AddIndex(trap, "I_trap", 1.0);
  uint32_t q_trap = g.AddQuery("q_trap", kDefault);
  g.AddViewEdge(q_trap, trap, kDefault);  // no benefit without the index
  g.AddIndexEdge(q_trap, trap, trap_idx, kDefault - trap_benefit);

  // Two decoy views with immediate (but tiny) benefit fill budget 2.
  for (int j = 0; j < 2; ++j) {
    uint32_t decoy = g.AddView("decoy" + std::to_string(j), 1.0);
    uint32_t q = g.AddQuery("q_decoy" + std::to_string(j), kDefault);
    g.AddViewEdge(q, decoy, kDefault - decoy_benefit);
  }

  g.Finalize();
  return g;
}

}  // namespace olapidx
