#include "data/tpcd.h"

namespace olapidx {

CubeSchema TpcdSchema() {
  return CubeSchema({Dimension{"p", 200'000},
                     Dimension{"s", 10'000},
                     Dimension{"c", 100'000}});
}

ViewSizes TpcdPaperSizes() {
  ViewSizes sizes(3);
  AttributeSet p = AttributeSet::Of({kTpcdPart});
  AttributeSet s = AttributeSet::Of({kTpcdSupplier});
  AttributeSet c = AttributeSet::Of({kTpcdCustomer});
  sizes.Set(p.Union(s).Union(c), 6e6);  // psc (the raw cube)
  sizes.Set(p.Union(s), 0.8e6);         // ps
  sizes.Set(p.Union(c), 6e6);           // pc
  sizes.Set(s.Union(c), 6e6);           // sc
  sizes.Set(p, 0.2e6);
  sizes.Set(s, 0.01e6);
  sizes.Set(c, 0.1e6);
  // none = 1 is set by the ViewSizes constructor.
  OLAPIDX_CHECK(sizes.Complete());
  OLAPIDX_CHECK(sizes.IsMonotone());
  return sizes;
}

}  // namespace olapidx
