// Hand-built query-view graphs reproducing the paper's Section 5 examples.
//
// The published Figure 2 is not machine-readable from the paper text and
// some of its reported intermediate numbers are mutually inconsistent (OCR
// noise), so Figure2Instance() is a faithful *reconstruction*: a unit-space
// instance exhibiting exactly the phenomena Examples 5.1/5.2 demonstrate —
//   * 1-greedy fills the budget with shallow structures because views whose
//     whole value lives in their indexes show zero immediate benefit;
//   * 2-greedy unlocks view+index pairs but can still be lured into junk
//     whose single-structure density beats every pair;
//   * 3-greedy sees view+2-index bundles and reaches the optimum;
//   * inner-level greedy builds the full bundle and lands between.
// The exact benefit values for this instance are deterministic and asserted
// in tests; the experiment bench prints them next to the paper's numbers.

#ifndef OLAPIDX_DATA_EXAMPLE_GRAPHS_H_
#define OLAPIDX_DATA_EXAMPLE_GRAPHS_H_

#include "core/query_view_graph.h"

namespace olapidx {

// Unit spaces, budget 7 (like Example 5.1). Views:
//   V1 "pair":  0 alone; one index; {V1, I11} benefit 100.
//   V2 "trap":  0 alone; 6 indexes, each worth 41 once V2 is selected.
//   V3 "junk":  22 alone; 6 indexes worth 21 each.
// Expected outcomes at budget 7 (asserted in tests):
//   1-greedy 148, 2-greedy 206, 3-greedy 264 = optimal(7);
//   inner-level 346 using 9 units (= optimal for 9 units).
QueryViewGraph Figure2Instance();

// The budget Example 5.1 uses.
inline constexpr double kFigure2Budget = 7.0;

// A parameterized family on which 1-greedy is arbitrarily bad (the paper's
// Figure 3 point at r = 1): a decoy view with tiny but positive benefit
// `decoy_benefit` per structure, and a trap view whose single index is
// worth `trap_benefit`. With budget 2, 1-greedy takes two decoy structures
// (2·decoy_benefit) while the optimum takes {trap view, index}
// (trap_benefit); the ratio tends to 0 as trap_benefit grows.
QueryViewGraph OneGreedyTrapInstance(double trap_benefit,
                                     double decoy_benefit);

}  // namespace olapidx

#endif  // OLAPIDX_DATA_EXAMPLE_GRAPHS_H_
