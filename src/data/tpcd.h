// The TPC-D-based running example of Sections 2-4 (Figure 1): dimensions
// part / supplier / customer with the paper's published subcube row counts.
// These hard-coded sizes make the selection-level experiments (E1, E8)
// byte-for-byte reproducible against the paper's numbers; the execution
// engine uses the scaled generator in data/fact_generator.h instead.

#ifndef OLAPIDX_DATA_TPCD_H_
#define OLAPIDX_DATA_TPCD_H_

#include "cost/view_sizes.h"
#include "lattice/schema.h"

namespace olapidx {

// Attribute ids of the TPC-D example, in schema order.
inline constexpr int kTpcdPart = 0;
inline constexpr int kTpcdSupplier = 1;
inline constexpr int kTpcdCustomer = 2;

// part (p, 0.2M members), supplier (s, 0.01M), customer (c, 0.1M).
CubeSchema TpcdSchema();

// Figure 1 row counts: psc = 6M, pc = 6M, sc = 6M, ps = 0.8M, p = 0.2M,
// c = 0.1M, s = 0.01M, none = 1.
ViewSizes TpcdPaperSizes();

// The space budget of Example 2.1 ("around 25M rows worth of space").
inline constexpr double kTpcdExampleBudget = 25e6;

}  // namespace olapidx

#endif  // OLAPIDX_DATA_TPCD_H_
