// One-pass view-size estimation over a fact table: a HyperLogLog sketch
// per subcube, all fed from a single scan (Section 4.2.1's "estimate the
// sizes ... if we only materialize the largest element", done the way a
// modern system would).

#ifndef OLAPIDX_DATA_SIZE_ESTIMATION_H_
#define OLAPIDX_DATA_SIZE_ESTIMATION_H_

#include "cost/view_sizes.h"
#include "engine/fact_table.h"

namespace olapidx {

// Estimates |V| for every one of the 2^n subcubes with one scan of `fact`.
// `precision` is the HyperLogLog precision (error ~1.04/sqrt(2^p)).
// Estimated sizes are clamped to [1, fact rows] and repaired to be
// monotone across the lattice (|V1| <= |V2| when attrs(V1) ⊆ attrs(V2)).
ViewSizes EstimateViewSizesHll(const FactTable& fact, int precision = 12);

// Exact sizes by hashing full composite keys per view (one scan, one hash
// set per subcube). Memory-heavy; for tests and small data.
ViewSizes ExactViewSizes(const FactTable& fact);

}  // namespace olapidx

#endif  // OLAPIDX_DATA_SIZE_ESTIMATION_H_
