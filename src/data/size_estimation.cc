#include "data/size_estimation.h"

#include <algorithm>
#include <unordered_set>

#include "cost/hyperloglog.h"

namespace olapidx {

namespace {

// Per-attribute salted hashes, combined in ascending attribute order into
// a per-view key hash.
uint64_t CombineForView(const std::vector<uint64_t>& attr_hashes,
                        AttributeSet attrs) {
  uint64_t key = 0x9e3779b97f4a7c15ULL;
  for (int a : attrs.ToVector()) {
    key = HyperLogLog::Mix(key ^ attr_hashes[static_cast<size_t>(a)]);
  }
  return key;
}

// Enforces |child| <= |parent| across the lattice by propagating maxima
// upward (supersets can only be at least as large).
void RepairMonotone(ViewSizes& sizes, int n) {
  for (uint32_t v = 0; v < sizes.num_views(); ++v) {
    AttributeSet attrs = AttributeSet::FromMask(v);
    for (int a = 0; a < n; ++a) {
      if (attrs.Contains(a)) continue;
      AttributeSet parent = attrs.With(a);
      if (sizes.SizeOf(parent) < sizes.SizeOf(attrs)) {
        sizes.Set(parent, sizes.SizeOf(attrs));
      }
    }
  }
}

}  // namespace

ViewSizes EstimateViewSizesHll(const FactTable& fact, int precision) {
  const CubeSchema& schema = fact.schema();
  int n = schema.num_dimensions();
  uint32_t num_views = 1u << n;
  std::vector<HyperLogLog> sketches;
  sketches.reserve(num_views);
  for (uint32_t v = 0; v < num_views; ++v) {
    sketches.emplace_back(precision);
  }

  std::vector<uint64_t> attr_hashes(static_cast<size_t>(n));
  for (size_t r = 0; r < fact.num_rows(); ++r) {
    for (int a = 0; a < n; ++a) {
      // Salt by attribute id so equal codes in different dimensions
      // hash differently.
      attr_hashes[static_cast<size_t>(a)] = HyperLogLog::Mix(
          (static_cast<uint64_t>(a) << 32) ^ fact.dim(r, a));
    }
    for (uint32_t v = 1; v < num_views; ++v) {
      sketches[v].AddHash(
          CombineForView(attr_hashes, AttributeSet::FromMask(v)));
    }
  }

  ViewSizes sizes(n);
  double max_rows = static_cast<double>(fact.num_rows());
  for (uint32_t v = 1; v < num_views; ++v) {
    double est = std::clamp(sketches[v].Estimate(), 1.0, max_rows);
    sizes.Set(AttributeSet::FromMask(v), est);
  }
  RepairMonotone(sizes, n);
  OLAPIDX_CHECK(sizes.Complete());
  return sizes;
}

ViewSizes ExactViewSizes(const FactTable& fact) {
  const CubeSchema& schema = fact.schema();
  int n = schema.num_dimensions();
  uint32_t num_views = 1u << n;
  std::vector<std::unordered_set<uint64_t>> seen(num_views);
  std::vector<uint64_t> attr_hashes(static_cast<size_t>(n));
  for (size_t r = 0; r < fact.num_rows(); ++r) {
    for (int a = 0; a < n; ++a) {
      attr_hashes[static_cast<size_t>(a)] = HyperLogLog::Mix(
          (static_cast<uint64_t>(a) << 32) ^ fact.dim(r, a));
    }
    for (uint32_t v = 1; v < num_views; ++v) {
      seen[v].insert(CombineForView(attr_hashes, AttributeSet::FromMask(v)));
    }
  }
  ViewSizes sizes(n);
  for (uint32_t v = 1; v < num_views; ++v) {
    sizes.Set(AttributeSet::FromMask(v),
              std::max<double>(1.0, static_cast<double>(seen[v].size())));
  }
  OLAPIDX_CHECK(sizes.Complete());
  return sizes;
}

}  // namespace olapidx
