// Synthetic cube instances for the Section 6 experiments: cubes of varying
// dimensionality, per-dimension cardinality, and sparsity, with view sizes
// from the [HRU96] analytical model.

#ifndef OLAPIDX_DATA_SYNTHETIC_H_
#define OLAPIDX_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "cost/analytical_model.h"
#include "cost/view_sizes.h"
#include "lattice/schema.h"

namespace olapidx {

struct SyntheticCube {
  CubeSchema schema;
  ViewSizes sizes;
  double raw_rows = 0.0;
  double sparsity = 0.0;
};

// A cube whose n dimensions all have the given cardinality; raw row count
// chosen to achieve `sparsity` (raw rows / product of cardinalities).
SyntheticCube UniformSyntheticCube(int n, uint64_t cardinality,
                                   double sparsity);

// A cube with explicitly given per-dimension cardinalities.
SyntheticCube SyntheticCubeWithCardinalities(
    const std::vector<uint64_t>& cardinalities, double sparsity);

// A cube with log-uniformly random cardinalities in
// [cardinality_min, cardinality_max], deterministic in `seed`.
SyntheticCube RandomSyntheticCube(int n, uint64_t cardinality_min,
                                  uint64_t cardinality_max, double sparsity,
                                  uint64_t seed);

}  // namespace olapidx

#endif  // OLAPIDX_DATA_SYNTHETIC_H_
