// CSV fact-table ingestion: header row names the dimensions, the last
// column is the numeric measure; dimension values are arbitrary strings,
// dictionary-encoded in order of first appearance. No quoting — fields
// must not contain commas.
//
//     part,supplier,customer,sales
//     widget,Widgets-R-Us,acme,129.95
//     sprocket,Widgets-R-Us,globex,12.50

#ifndef OLAPIDX_DATA_CSV_LOADER_H_
#define OLAPIDX_DATA_CSV_LOADER_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/dictionary.h"
#include "engine/fact_table.h"

namespace olapidx {

struct CsvCube {
  CubeSchema schema;  // cardinalities = dictionary sizes
  FactTable fact;
  std::vector<Dictionary> dictionaries;  // per dimension, schema order
};

// Parses `text`. Returns nullptr with a line-tagged message in `error` on
// malformed input (missing header, non-numeric measure, ragged rows, ...).
std::unique_ptr<CsvCube> LoadCsvFacts(const std::string& text,
                                      std::string* error);

// The inverse: renders a fact table (with its dictionaries) back into the
// same CSV format, `measure_name` as the last column. Round-trips with
// LoadCsvFacts.
std::string WriteCsvFacts(const FactTable& fact,
                          const std::vector<Dictionary>& dictionaries,
                          const std::string& measure_name = "measure");

}  // namespace olapidx

#endif  // OLAPIDX_DATA_CSV_LOADER_H_
