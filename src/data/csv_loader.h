// CSV fact-table ingestion: header row names the dimensions, the last
// column is the numeric measure; dimension values are arbitrary strings,
// dictionary-encoded in order of first appearance. No quoting — fields
// must not contain commas.
//
//     part,supplier,customer,sales
//     widget,Widgets-R-Us,acme,129.95
//     sprocket,Widgets-R-Us,globex,12.50

#ifndef OLAPIDX_DATA_CSV_LOADER_H_
#define OLAPIDX_DATA_CSV_LOADER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/dictionary.h"
#include "engine/fact_table.h"

namespace olapidx {

struct CsvCube {
  CubeSchema schema;  // cardinalities = dictionary sizes
  FactTable fact;
  std::vector<Dictionary> dictionaries;  // per dimension, schema order
};

// Parses `text`. Tolerates CRLF line endings and a final row without a
// trailing newline. Returns a line-tagged InvalidArgument on malformed
// input — missing header, ragged rows, non-numeric / infinite /
// out-of-range measures — with a quoting hint when a ragged row looks
// like an attempt at quoted embedded commas.
StatusOr<CsvCube> LoadCsvFacts(const std::string& text);

// The inverse: renders a fact table (with its dictionaries) back into the
// same CSV format, `measure_name` as the last column. Round-trips with
// LoadCsvFacts.
std::string WriteCsvFacts(const FactTable& fact,
                          const std::vector<Dictionary>& dictionaries,
                          const std::string& measure_name = "measure");

}  // namespace olapidx

#endif  // OLAPIDX_DATA_CSV_LOADER_H_
