// Fact-table generators. The paper's experiments run at TPC-D scale (a 6M
// row base cube) — far larger than useful for in-memory unit tests and
// engine validation — so these generators produce structurally equivalent
// data at a configurable scale: the *ratios* between subcube sizes (which
// are what drive every selection decision) match the paper's instance.

#ifndef OLAPIDX_DATA_FACT_GENERATOR_H_
#define OLAPIDX_DATA_FACT_GENERATOR_H_

#include <cstdint>

#include "engine/fact_table.h"
#include "lattice/schema.h"

namespace olapidx {

// Independent uniform draws for every dimension: view sizes follow the
// analytical model of cost/analytical_model.h.
FactTable GenerateUniformFacts(const CubeSchema& schema, size_t rows,
                               uint64_t seed);

// Independent Zipf(skew) draws per dimension (member 0 most popular, with
// a per-dimension member shuffle so popularity does not correlate with
// code order). Skewed data makes subcube sizes fall *below* the
// independence model — the regime where measured/estimated sizes matter.
FactTable GenerateZipfFacts(const CubeSchema& schema, size_t rows,
                            double skew, uint64_t seed);

// A scaled TPC-D-like instance over (part, supplier, customer). Each part
// is bought from `suppliers_per_part` fixed suppliers (TPC-D's PARTSUPP has
// 4), which makes |ps| ≈ parts · suppliers_per_part while |pc| and |sc|
// stay near the row count — the shape of Figure 1, where ps = 0.8M is the
// only small 2-dimensional subcube.
struct TpcdScaledConfig {
  uint32_t parts = 2'000;       // paper: 200K
  uint32_t suppliers = 100;     // paper: 10K
  uint32_t customers = 1'000;   // paper: 100K
  uint32_t suppliers_per_part = 4;
  size_t rows = 60'000;         // paper raw cube: 6M
  uint64_t seed = 42;
};

FactTable GenerateTpcdScaledFacts(const TpcdScaledConfig& config);

}  // namespace olapidx

#endif  // OLAPIDX_DATA_FACT_GENERATOR_H_
