#include "data/synthetic.h"

#include <cmath>
#include <string>

#include "common/rng.h"

namespace olapidx {

namespace {

// Dimension names "d0", "d1", ... (multi-character names render with
// comma separators in AttributeSet::ToString).
std::vector<Dimension> NamedDimensions(
    const std::vector<uint64_t>& cardinalities) {
  std::vector<Dimension> dims;
  dims.reserve(cardinalities.size());
  for (size_t i = 0; i < cardinalities.size(); ++i) {
    // Built up in two steps: GCC 12's -Wrestrict misfires (bug 105329) on
    // `"d" + std::to_string(i)` under -O3 and the build runs -Werror.
    std::string name = "d";
    name += std::to_string(i);
    dims.push_back(Dimension{std::move(name), cardinalities[i]});
  }
  return dims;
}

}  // namespace

SyntheticCube SyntheticCubeWithCardinalities(
    const std::vector<uint64_t>& cardinalities, double sparsity) {
  OLAPIDX_CHECK(!cardinalities.empty());
  OLAPIDX_CHECK(sparsity > 0.0 && sparsity <= 1.0);
  CubeSchema schema(NamedDimensions(cardinalities));
  double raw_rows = std::max(1.0, RawRowsForSparsity(schema, sparsity));
  SyntheticCube cube{schema, AnalyticalViewSizes(schema, raw_rows), raw_rows,
                     sparsity};
  return cube;
}

SyntheticCube UniformSyntheticCube(int n, uint64_t cardinality,
                                   double sparsity) {
  OLAPIDX_CHECK(n >= 1);
  return SyntheticCubeWithCardinalities(
      std::vector<uint64_t>(static_cast<size_t>(n), cardinality), sparsity);
}

SyntheticCube RandomSyntheticCube(int n, uint64_t cardinality_min,
                                  uint64_t cardinality_max, double sparsity,
                                  uint64_t seed) {
  OLAPIDX_CHECK(n >= 1);
  OLAPIDX_CHECK(cardinality_min >= 1);
  OLAPIDX_CHECK(cardinality_min <= cardinality_max);
  Pcg32 rng(seed);
  std::vector<uint64_t> cards;
  double lo = std::log(static_cast<double>(cardinality_min));
  double hi = std::log(static_cast<double>(cardinality_max));
  for (int i = 0; i < n; ++i) {
    double u = rng.NextDouble();
    cards.push_back(static_cast<uint64_t>(
        std::llround(std::exp(lo + u * (hi - lo)))));
  }
  return SyntheticCubeWithCardinalities(cards, sparsity);
}

}  // namespace olapidx
