#include "service/advisor_service.h"

#include <cinttypes>
#include <cstdio>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "common/deadline.h"
#include "common/fault_injection.h"
#include "common/journal.h"
#include "common/metrics.h"
#include "core/serialize.h"

namespace olapidx {

namespace {

constexpr char kJournalHeader[] = "olapidx-service-journal v1";

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// One "wq"/"pv"/"ob" journal line: masks, then the numeric payload.
std::string SketchLine(const char* tag, const SliceQuery& query,
                       const std::string& payload) {
  return std::string(tag) + " " +
         std::to_string(query.group_by().mask()) + " " +
         std::to_string(query.selection().mask()) + " " + payload + "\n";
}

struct JournalCursor {
  const std::string& text;
  size_t pos = 0;

  bool NextLine(std::string* line) {
    if (pos >= text.size()) return false;
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    *line = text.substr(pos, end - pos);
    pos = end + 1;
    return true;
  }
};

bool ParseMaskedQuery(const std::string& rest, SliceQuery* out,
                      std::string* tail) {
  unsigned long g = 0, s = 0;
  int consumed = 0;
  if (std::sscanf(rest.c_str(), "%lu %lu%n", &g, &s, &consumed) != 2) {
    return false;
  }
  AttributeSet group = AttributeSet::FromMask(static_cast<uint32_t>(g));
  AttributeSet selection = AttributeSet::FromMask(static_cast<uint32_t>(s));
  if (group.Intersects(selection)) return false;
  *out = SliceQuery(group, selection);
  *tail = rest.substr(static_cast<size_t>(consumed));
  return true;
}

}  // namespace

AdvisorService::AdvisorService(CubeSchema schema, ViewSizes sizes,
                               ServiceOptions options)
    : schema_(std::move(schema)),
      sizes_(std::move(sizes)),
      options_(std::move(options)),
      current_sketch_(
          std::make_unique<FrequencySketch>(options_.sketch_shards)),
      previous_sketch_(
          std::make_unique<FrequencySketch>(options_.sketch_shards)) {}

StatusOr<std::unique_ptr<AdvisorService>> AdvisorService::Create(
    const CubeSchema& schema, const ViewSizes& sizes,
    const Workload& initial_workload, const ServiceOptions& options) {
  std::unique_ptr<AdvisorService> service(
      new AdvisorService(schema, sizes, options));

  if (!options.journal_path.empty() && FileExists(options.journal_path)) {
    StatusOr<std::string> text = ReadFileToString(options.journal_path);
    if (!text.ok()) {
      return text.status().WithContext("reading service journal '" +
                                       options.journal_path + "'");
    }
    Status loaded = service->LoadJournal(*text);
    if (!loaded.ok()) {
      return loaded.WithContext("restoring service journal '" +
                                options.journal_path + "'");
    }
    return service;
  }

  if (initial_workload.empty()) {
    return Status::InvalidArgument(
        "the initial workload is empty and no journal exists to restore "
        "from");
  }
  bool degraded = false;
  StatusOr<Advisor> advisor =
      service->BuildAdvisor(initial_workload, &degraded);
  if (!advisor.ok()) {
    return advisor.status().WithContext("building the initial advisor");
  }
  RunControl control;
  control.deadline = Deadline::AfterMillis(options.reselect_deadline_ms);
  control.max_steps = options.reselect_max_stages;
  Recommendation rec =
      service->RunSelection(*advisor, options.base.space_budget, control,
                            degraded, /*resume=*/nullptr);
  if (!rec.status.ok() && !rec.status.IsInterruption()) {
    return rec.status.WithContext("initial selection");
  }

  auto state = std::make_shared<ServedState>();
  state->advisor = std::make_shared<const Advisor>(*std::move(advisor));
  ServedSnapshot& snap = state->snapshot;
  snap.epoch = 0;
  snap.generation = 1;
  snap.degraded = degraded;
  snap.pending = !rec.completed;
  AdvisorConfig stamp = options.base;
  snap.checkpoint = rec.ToCheckpoint(stamp);
  snap.workload = initial_workload;
  snap.graph_fingerprint = state->advisor->graph_fingerprint();
  snap.recommendation = std::move(rec);
  service->Publish(std::move(state));
  // Best effort: a failed initial journal write must not take down a
  // service that is otherwise ready to serve — Save() can be retried.
  (void)service->Save();
  return service;
}

StatusOr<Advisor> AdvisorService::BuildAdvisor(const Workload& workload,
                                               bool* degraded) const {
  *degraded = false;
  StatusOr<Advisor> dense =
      Advisor::Create(schema_, sizes_, workload, options_.graph);
  if (dense.ok() && dense->cube_graph().graph.CostTableBytes() <=
                        options_.memory_ceiling_bytes) {
    return dense;
  }
  // Graceful degradation: dense build impossible (dimension limits) or its
  // cost tables would bust the memory ceiling — fall back to the
  // workload-pruned sparse build with compressed cost columns.
  *degraded = true;
  OLAPIDX_METRIC_COUNTER(degraded_builds, "service.degraded_builds");
  degraded_builds.Add(1);
  return Advisor::CreateSparse(schema_, sizes_, workload, options_.sparse);
}

Recommendation AdvisorService::RunSelection(
    const Advisor& advisor, double budget, const RunControl& control,
    bool degraded, const SelectionCheckpoint* resume) const {
  AdvisorConfig config = options_.base;
  config.space_budget = budget;
  config.control = control;
  config.resume = resume;
  // Serial selection: concurrent what-if requests and the re-selection
  // worker would otherwise race for the shared pool's single job slot.
  config.r_greedy.num_threads = 1;
  config.inner_greedy.num_threads = 1;
  if (degraded && options_.degraded_beam_width > 0) {
    config.r_greedy.beam_width = options_.degraded_beam_width;
    config.inner_greedy.beam_width = options_.degraded_beam_width;
  }
  return advisor.Recommend(config);
}

Status AdvisorService::Observe(const SliceQuery& query, double weight) {
  Status status;
  {
    std::lock_guard<std::mutex> lock(sketch_mu_);
    status = current_sketch_->TryRecord(query, weight);
  }
  if (status.ok()) {
    observations_.fetch_add(1, std::memory_order_relaxed);
  } else {
    observations_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

std::function<void(const SliceQuery&, const ExecutionStats&)>
AdvisorService::ObserverCallback() {
  return [this](const SliceQuery& query, const ExecutionStats&) {
    // Drop-on-failure: an injected sketch fault must never fail the query
    // that was, after all, already answered.
    (void)Observe(query);
  };
}

WhatIfResult AdvisorService::WhatIf(const WhatIfRequest& request) {
  OLAPIDX_METRIC_COUNTER(requests, "service.whatif_requests");
  requests.Add(1);
  WhatIfResult result;
  result.epoch = epoch();

  // Admission control: bounded in-flight requests, reject (don't queue)
  // past the limit so the caller gets a terminal answer immediately.
  size_t inflight = inflight_.fetch_add(1, std::memory_order_acq_rel);
  struct InflightGuard {
    std::atomic<size_t>& counter;
    ~InflightGuard() { counter.fetch_sub(1, std::memory_order_acq_rel); }
  } guard{inflight_};
  if (inflight >= options_.max_concurrent_requests) {
    whatif_rejected_.fetch_add(1, std::memory_order_relaxed);
    result.status = Status::ResourceExhausted(
        "what-if rejected: " + std::to_string(inflight) +
        " request(s) already in flight (admission limit " +
        std::to_string(options_.max_concurrent_requests) + ")");
    return result;
  }

  std::shared_ptr<const ServedState> state = Current();
  Deadline deadline = Deadline::AfterMillis(
      request.deadline_ms > 0 ? request.deadline_ms
                              : options_.default_deadline_ms);
  std::vector<double> budgets = request.budgets;
  if (budgets.empty()) budgets.push_back(options_.base.space_budget);

  std::set<std::string> served_names;
  if (request.diff_against_current) {
    for (const RecommendedStructure& s :
         state->snapshot.recommendation.structures) {
      served_names.insert(s.name);
    }
  }

  for (size_t i = 0; i < budgets.size(); ++i) {
    if (deadline.expired()) {
      result.status = Status::DeadlineExceeded(
          "what-if sweep: deadline expired with " +
          std::to_string(budgets.size() - i) + " budget point(s) left");
      break;
    }
    WhatIfPoint point;
    point.budget = budgets[i];
    Recommendation rec;
    size_t retries = 0;
    Status attempt = RetryWithBackoff(
        options_.retry, deadline,
        [&]() -> Status {
          OLAPIDX_FAULT_POINT("service.whatif.run");
          RunControl control;
          control.deadline = deadline;
          rec = RunSelection(*state->advisor, point.budget, control,
                             state->snapshot.degraded, /*resume=*/nullptr);
          // An interruption is an acceptable anytime answer for this
          // point, not a retryable failure.
          if (!rec.status.ok() && !rec.status.IsInterruption()) {
            return rec.status;
          }
          return Status::Ok();
        },
        &retries);
    result.retries += retries;
    whatif_retries_.fetch_add(retries, std::memory_order_relaxed);
    if (!attempt.ok()) {
      point.status = attempt;
      result.points.push_back(std::move(point));
      result.status = attempt;
      break;
    }
    point.status = rec.status;
    point.completed = rec.completed;
    point.space_used = rec.space_used;
    point.average_query_cost = rec.average_query_cost;
    point.num_structures = rec.structures.size();
    if (request.diff_against_current) {
      std::set<std::string> new_names;
      for (const RecommendedStructure& s : rec.structures) {
        new_names.insert(s.name);
      }
      for (const std::string& name : new_names) {
        if (served_names.count(name) == 0) point.added.push_back(name);
      }
      for (const std::string& name : served_names) {
        if (new_names.count(name) == 0) point.removed.push_back(name);
      }
    }
    result.points.push_back(std::move(point));
  }

  if (result.status.ok()) {
    whatif_ok_.fetch_add(1, std::memory_order_relaxed);
  } else if (result.status.code() == StatusCode::kDeadlineExceeded) {
    whatif_deadline_.fetch_add(1, std::memory_order_relaxed);
  } else {
    whatif_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

EpochResult AdvisorService::AdvanceEpoch() {
  std::lock_guard<std::mutex> epoch_lock(epoch_mu_);
  EpochResult out;
  out.epoch = epoch();
  out.drift = KlDivergence(*current_sketch_, *previous_sketch_,
                           options_.kl_smoothing);
  out.drift_detected = out.drift > options_.drift_threshold;

  if (out.drift_detected) {
    Workload observed = current_sketch_->ToWorkload();
    Status reselected = Reselect(observed, &out);
    if (!reselected.ok()) {
      // The previous design keeps serving and the epoch does not advance;
      // the next AdvanceEpoch retries against the same sketches.
      epoch_failures_.fetch_add(1, std::memory_order_relaxed);
      out.status = reselected;
      return out;
    }
    reselections_.fetch_add(1, std::memory_order_relaxed);
    if (out.degraded) {
      degraded_reselections_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Rotate the observation epochs: the closing epoch becomes the drift
  // baseline, the old baseline is recycled as the (empty) new epoch.
  {
    std::lock_guard<std::mutex> lock(sketch_mu_);
    std::swap(current_sketch_, previous_sketch_);
    current_sketch_->Clear();
  }
  out.epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  epochs_advanced_.fetch_add(1, std::memory_order_relaxed);
  OLAPIDX_METRIC_COUNTER(epochs, "service.epochs");
  epochs.Add(1);
  // A journal write failure is reported but does not un-advance the epoch
  // — the in-memory state is consistent and Save() can be retried.
  out.status = Save();
  return out;
}

Status AdvisorService::Reselect(const Workload& workload, EpochResult* out) {
  OLAPIDX_FAULT_POINT("service.worker.spawn");
  std::shared_ptr<const ServedState> prev = Current();

  // Warm start from the served checkpoint with the fingerprint cleared:
  // the re-selection graph is built from the *observed* workload, so it is
  // a different graph by construction, and the strict fingerprint check
  // would always reject it. Pick resolution still validates every
  // structure against the new graph.
  SelectionCheckpoint warm = prev->snapshot.checkpoint;
  warm.graph_fingerprint = 0;

  RunControl control;
  control.deadline = Deadline::AfterMillis(options_.reselect_deadline_ms);
  control.max_steps = options_.reselect_max_stages;

  bool degraded = false;
  std::optional<StatusOr<Advisor>> built;
  Recommendation rec;
  // The re-selection runs on a worker thread — the pattern a resident
  // service uses so its control plane never blocks its request plane (the
  // soak test exercises exactly this interleaving).
  std::thread worker([&] {
    built.emplace(BuildAdvisor(workload, &degraded));
    if (!built->ok()) return;
    rec = RunSelection(**built, options_.base.space_budget, control,
                       degraded, &warm);
    if (!rec.status.ok() && !rec.status.IsInterruption()) {
      // Warm start rejected (e.g. a served pick has no counterpart in the
      // new graph): degrade to a cold start instead of failing the epoch.
      rec = RunSelection(**built, options_.base.space_budget, control,
                         degraded, /*resume=*/nullptr);
    }
  });
  worker.join();

  if (!built->ok()) {
    return built->status().WithContext(
        "rebuilding the advisor for the observed workload");
  }
  if (!rec.status.ok() && !rec.status.IsInterruption()) {
    return rec.status.WithContext("re-selection");
  }
  OLAPIDX_FAULT_POINT("service.swap");

  auto state = std::make_shared<ServedState>();
  state->advisor = std::make_shared<const Advisor>(*std::move(*built));
  ServedSnapshot& snap = state->snapshot;
  snap.epoch = epoch() + 1;
  snap.generation = prev->snapshot.generation + 1;
  snap.degraded = degraded;
  snap.pending = !rec.completed;
  AdvisorConfig stamp = options_.base;
  snap.checkpoint = rec.ToCheckpoint(stamp);
  snap.workload = workload;
  snap.graph_fingerprint = state->advisor->graph_fingerprint();
  snap.recommendation = std::move(rec);
  out->reselected = true;
  out->degraded = degraded;
  out->pending = snap.pending;
  Publish(std::move(state));
  return Status::Ok();
}

Status AdvisorService::CompletePendingReselection() {
  std::lock_guard<std::mutex> epoch_lock(epoch_mu_);
  std::shared_ptr<const ServedState> prev = Current();
  if (!prev->snapshot.pending) return Status::Ok();

  // Same advisor, unlimited control: the checkpoint replays for free and
  // the remaining stages run to completion — bit-identical to the design
  // an uninterrupted selection would have produced.
  RunControl control;
  Recommendation rec =
      RunSelection(*prev->advisor, options_.base.space_budget, control,
                   prev->snapshot.degraded, &prev->snapshot.checkpoint);
  if (!rec.status.ok() && !rec.status.IsInterruption()) {
    return rec.status.WithContext("completing the pending re-selection");
  }
  OLAPIDX_FAULT_POINT("service.swap");

  auto state = std::make_shared<ServedState>();
  state->advisor = prev->advisor;
  ServedSnapshot& snap = state->snapshot;
  snap.epoch = prev->snapshot.epoch;
  snap.generation = prev->snapshot.generation + 1;
  snap.degraded = prev->snapshot.degraded;
  snap.pending = !rec.completed;
  AdvisorConfig stamp = options_.base;
  snap.checkpoint = rec.ToCheckpoint(stamp);
  snap.workload = prev->snapshot.workload;
  snap.graph_fingerprint = prev->snapshot.graph_fingerprint;
  snap.recommendation = std::move(rec);
  Publish(std::move(state));
  return Save();
}

Status AdvisorService::Save() {
  if (options_.journal_path.empty()) return Status::Ok();
  return AtomicWriteFile(options_.journal_path, SerializeJournal());
}

void AdvisorService::Publish(std::shared_ptr<const ServedState> next) {
  std::lock_guard<std::mutex> lock(state_mu_);
  state_ = std::move(next);
}

std::shared_ptr<const AdvisorService::ServedState> AdvisorService::Current()
    const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return state_;
}

ServedSnapshot AdvisorService::Snapshot() const { return Current()->snapshot; }

ServiceStats AdvisorService::Stats() const {
  ServiceStats stats;
  stats.whatif_ok = whatif_ok_.load(std::memory_order_relaxed);
  stats.whatif_deadline_exceeded =
      whatif_deadline_.load(std::memory_order_relaxed);
  stats.whatif_rejected = whatif_rejected_.load(std::memory_order_relaxed);
  stats.whatif_failed = whatif_failed_.load(std::memory_order_relaxed);
  stats.whatif_retries = whatif_retries_.load(std::memory_order_relaxed);
  stats.observations = observations_.load(std::memory_order_relaxed);
  stats.observations_dropped =
      observations_dropped_.load(std::memory_order_relaxed);
  stats.epochs_advanced = epochs_advanced_.load(std::memory_order_relaxed);
  stats.epoch_failures = epoch_failures_.load(std::memory_order_relaxed);
  stats.reselections = reselections_.load(std::memory_order_relaxed);
  stats.degraded_reselections =
      degraded_reselections_.load(std::memory_order_relaxed);
  return stats;
}

std::string AdvisorService::SerializeJournal() const {
  ServedSnapshot snap = Snapshot();
  std::vector<FrequencySketch::Entry> current_entries;
  std::vector<FrequencySketch::Entry> previous_entries;
  {
    std::lock_guard<std::mutex> lock(sketch_mu_);
    current_entries = current_sketch_->Snapshot();
    previous_entries = previous_sketch_->Snapshot();
  }

  std::string payload;
  payload += "epoch " + std::to_string(epoch()) + "\n";
  payload += "generation " + std::to_string(snap.generation) + "\n";
  payload += "degraded " + std::string(snap.degraded ? "1" : "0") + "\n";
  payload += "pending " + std::string(snap.pending ? "1" : "0") + "\n";
  payload += "graph " + HashToHex(snap.graph_fingerprint) + "\n";
  payload += "workload " + std::to_string(snap.workload.size()) + "\n";
  for (const WeightedQuery& wq : snap.workload.queries()) {
    payload += SketchLine("wq", wq.query, FormatDouble(wq.frequency));
  }
  payload += "prev " + std::to_string(previous_entries.size()) + "\n";
  for (const FrequencySketch::Entry& e : previous_entries) {
    payload += SketchLine("pv", e.query,
                          FormatDouble(e.weight) + " " +
                              std::to_string(e.count));
  }
  payload += "obs " + std::to_string(current_entries.size()) + "\n";
  for (const FrequencySketch::Entry& e : current_entries) {
    payload += SketchLine("ob", e.query,
                          FormatDouble(e.weight) + " " +
                              std::to_string(e.count));
  }
  payload += "checkpoint\n";
  payload += SerializeCheckpoint(snap.checkpoint, schema_);

  std::string out = std::string(kJournalHeader) + "\n";
  out += "checksum " + HashToHex(Fnv1a64(payload)) + "\n";
  out += payload;
  return out;
}

Status AdvisorService::LoadJournal(const std::string& text) {
  JournalCursor cursor{text};
  std::string line;
  if (!cursor.NextLine(&line) || line != kJournalHeader) {
    return Status::InvalidArgument("missing '" + std::string(kJournalHeader) +
                                   "' header");
  }
  if (!cursor.NextLine(&line) || line.rfind("checksum ", 0) != 0) {
    return Status::DataLoss("missing 'checksum' line");
  }
  uint64_t expected = 0;
  if (!ParseHexHash(line.substr(9), &expected)) {
    return Status::DataLoss("bad checksum '" + line.substr(9) + "'");
  }
  std::string payload = text.substr(cursor.pos);
  if (Fnv1a64(payload) != expected) {
    return Status::DataLoss(
        "journal checksum mismatch: the file is corrupt (or was edited); "
        "delete it to start the service fresh");
  }

  uint64_t epoch = 0;
  uint64_t generation = 0;
  bool degraded = false;
  bool pending = false;
  uint64_t graph_fingerprint = 0;
  Workload workload;
  std::vector<FrequencySketch::Entry> previous_entries;
  std::vector<FrequencySketch::Entry> current_entries;
  std::string checkpoint_text;

  auto parse_count = [](const std::string& value, uint64_t* out_count) {
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || end == nullptr || *end != '\0') return false;
    *out_count = static_cast<uint64_t>(parsed);
    return true;
  };

  while (cursor.NextLine(&line)) {
    if (line == "checkpoint") {
      checkpoint_text = text.substr(cursor.pos);
      break;
    }
    size_t space = line.find(' ');
    if (space == std::string::npos) {
      return Status::DataLoss("malformed journal line '" + line + "'");
    }
    std::string key = line.substr(0, space);
    std::string value = line.substr(space + 1);
    if (key == "epoch") {
      if (!parse_count(value, &epoch)) {
        return Status::DataLoss("bad epoch '" + value + "'");
      }
    } else if (key == "generation") {
      if (!parse_count(value, &generation)) {
        return Status::DataLoss("bad generation '" + value + "'");
      }
    } else if (key == "degraded") {
      degraded = value == "1";
    } else if (key == "pending") {
      pending = value == "1";
    } else if (key == "graph") {
      if (!ParseHexHash(value, &graph_fingerprint)) {
        return Status::DataLoss("bad graph fingerprint '" + value + "'");
      }
    } else if (key == "workload" || key == "prev" || key == "obs") {
      // Counts are advisory (the lines carry their own tags); validated
      // after the loop.
    } else if (key == "wq" || key == "pv" || key == "ob") {
      SliceQuery query;
      std::string tail;
      if (!ParseMaskedQuery(value, &query, &tail)) {
        return Status::DataLoss("bad query masks in '" + line + "'");
      }
      if (key == "wq") {
        double frequency = 0.0;
        if (std::sscanf(tail.c_str(), "%lf", &frequency) != 1 ||
            !(frequency > 0.0)) {
          return Status::DataLoss("bad workload frequency in '" + line + "'");
        }
        workload.Add(query, frequency);
      } else {
        double weight = 0.0;
        unsigned long long count = 0;
        if (std::sscanf(tail.c_str(), "%lf %llu", &weight, &count) != 2 ||
            !(weight > 0.0) || count == 0) {
          return Status::DataLoss("bad sketch entry in '" + line + "'");
        }
        FrequencySketch::Entry entry;
        entry.query = query;
        entry.weight = weight;
        entry.count = static_cast<uint64_t>(count);
        (key == "pv" ? previous_entries : current_entries)
            .push_back(entry);
      }
    } else {
      return Status::DataLoss("unknown journal key '" + key + "'");
    }
  }
  if (checkpoint_text.empty()) {
    return Status::DataLoss("missing embedded checkpoint");
  }
  if (workload.empty()) {
    return Status::DataLoss("journal carries no workload");
  }

  StatusOr<SelectionCheckpoint> checkpoint =
      ParseCheckpoint(checkpoint_text, schema_);
  if (!checkpoint.ok()) {
    return checkpoint.status().WithContext("parsing the embedded checkpoint");
  }

  // Rebuild the advisor exactly the way the journaled state was built —
  // the journal pins which path (dense or sparse) produced the graph.
  StatusOr<Advisor> advisor =
      degraded
          ? Advisor::CreateSparse(schema_, sizes_, workload, options_.sparse)
          : Advisor::Create(schema_, sizes_, workload, options_.graph);
  if (!advisor.ok()) {
    return advisor.status().WithContext(
        "rebuilding the advisor from the journaled workload");
  }
  if (advisor->graph_fingerprint() != graph_fingerprint) {
    return Status::FailedPrecondition(
        "the rebuilt query-view graph does not match the journaled "
        "fingerprint — schema, sizes, or build options changed since the "
        "journal was written; delete the journal to start fresh");
  }

  // Restore the recommendation by replaying the checkpoint on the rebuilt
  // graph. Replayed stages are free (they do not count against max_steps),
  // so a pending selection is restored as exactly the same pending prefix
  // (max_steps = 0 stops before the first *new* stage), and a completed
  // one re-terminates identically.
  RunControl control;
  if (pending) control.max_steps = 0;
  Recommendation rec = RunSelection(*advisor, options_.base.space_budget,
                                    control, degraded, &*checkpoint);
  if (!rec.status.ok() && !rec.status.IsInterruption()) {
    return rec.status.WithContext(
        "replaying the journaled checkpoint on the rebuilt graph");
  }

  {
    std::lock_guard<std::mutex> lock(sketch_mu_);
    current_sketch_->Clear();
    previous_sketch_->Clear();
    for (const FrequencySketch::Entry& e : current_entries) {
      current_sketch_->RestoreEntry(e.query, e.weight, e.count);
    }
    for (const FrequencySketch::Entry& e : previous_entries) {
      previous_sketch_->RestoreEntry(e.query, e.weight, e.count);
    }
  }

  auto state = std::make_shared<ServedState>();
  state->advisor = std::make_shared<const Advisor>(*std::move(advisor));
  ServedSnapshot& snap = state->snapshot;
  snap.epoch = epoch;
  snap.generation = generation;
  snap.degraded = degraded;
  snap.pending = pending;
  snap.checkpoint = *std::move(checkpoint);
  snap.workload = std::move(workload);
  snap.graph_fingerprint = graph_fingerprint;
  snap.recommendation = std::move(rec);
  epoch_.store(epoch, std::memory_order_release);
  Publish(std::move(state));
  return Status::Ok();
}

}  // namespace olapidx
