// AdvisorService: the resident ("always-on") form of the advisor.
//
// The one-shot Advisor answers "given this workload, what should I
// materialize?" once. A deployed OLAP system asks the question
// continuously: queries stream through the engine, the workload drifts
// away from what the current design was selected for, operators probe
// alternative space budgets while the system is live, and the process
// hosting all of this can crash at any point. AdvisorService packages the
// selection machinery for that setting:
//
//  * Shared immutable state. The query-view graph and the current
//    recommendation live in an immutable ServedState published through a
//    shared_ptr swap; readers (what-if requests, the drift monitor,
//    observers) grab a reference and are immune to concurrent re-selection
//    — a swapped-out state stays alive until its last reader drops it.
//  * Observed workloads. Executed slice queries feed a sharded concurrent
//    FrequencySketch (wire Executor::SetQueryObserver to ObserverCallback).
//  * What-if requests. Budget sweeps and design diffs run concurrently,
//    each under its own deadline, with admission control (bounded
//    in-flight requests; excess is rejected, not queued) and bounded
//    retry-with-backoff on transient (fault-injected) failures.
//  * Drift-triggered re-selection. AdvanceEpoch closes the current
//    observation epoch, compares it against the previous one (KL
//    divergence) and, past the threshold, re-selects for the observed
//    workload on a worker thread — warm-started from the last
//    SelectionCheckpoint, falling back to a sparse build and beam
//    selection when the dense graph would bust the memory ceiling
//    (graceful degradation; a failed re-selection leaves the previous
//    design serving, it never aborts the service).
//  * Crash safety. Save() journals the full served state — observed
//    sketches, workload, checkpoint, graph fingerprint — via
//    write-temp-then-atomic-rename with a whole-file checksum; Create()
//    restores from the journal bit-identically (a pending, interrupted
//    selection is restored as exactly the same pending prefix).
//
// Every public entry point returns a terminal Status: Ok, an interruption
// code (DeadlineExceeded / ResourceExhausted for admission rejection), or
// a real error — never a hang, never an abort. The soak test drives all of
// this concurrently under seeded random fault injection.

#ifndef OLAPIDX_SERVICE_ADVISOR_SERVICE_H_
#define OLAPIDX_SERVICE_ADVISOR_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/status.h"
#include "core/advisor.h"
#include "core/sparse_cube_graph.h"
#include "workload/frequency_sketch.h"
#include "workload/workload.h"

namespace olapidx {

struct ExecutionStats;  // engine/executor.h; only referenced, never used here

struct ServiceOptions {
  // Algorithm, space budget, and per-algorithm knobs used for the initial
  // selection, re-selections, and (with the budget overridden) what-if
  // runs. `base.control` and `base.resume` are ignored — the service
  // supplies its own deadlines and checkpoints.
  AdvisorConfig base;

  // Dense graph build options (initial build and non-degraded
  // re-selections).
  CubeGraphOptions graph;

  // Degraded path: sparse, workload-pruned build used when the dense build
  // fails or its cost tables would exceed memory_ceiling_bytes, paired
  // with beam-capped selection (degraded_beam_width) so the run finishes
  // within the re-selection deadline.
  SparseCubeGraphOptions sparse;
  size_t degraded_beam_width = 16;
  uint64_t memory_ceiling_bytes = 1ull << 30;

  // KL divergence (nats) between the closing and previous observation
  // epochs above which AdvanceEpoch re-selects.
  double drift_threshold = 0.25;
  // Smoothing weight for the KL estimate (see KlDivergence).
  double kl_smoothing = 0.5;

  // Admission control: what-if requests in flight beyond this are rejected
  // with ResourceExhausted ("no lost request": rejection is a terminal
  // answer, not a queue).
  size_t max_concurrent_requests = 4;

  // Retry policy for transient (kUnavailable, e.g. fault-injected)
  // failures inside a what-if request; delays are capped by the request
  // deadline.
  RetryPolicy retry;

  // Deadline for a what-if request that does not bring its own.
  int64_t default_deadline_ms = 1000;

  // Wall-clock ceiling for one re-selection (initial selection included).
  // An expiry mid-selection publishes the anytime prefix as a *pending*
  // design (resumable via CompletePendingReselection).
  int64_t reselect_deadline_ms = 10'000;
  // Deterministic stage ceiling for re-selections; SIZE_MAX = unlimited.
  // The crash-resume tests use this to stop a selection at an exact stage.
  size_t reselect_max_stages = SIZE_MAX;

  // Observation sketch shard count (throughput only; results identical).
  size_t sketch_shards = 8;

  // When nonempty, Save() writes the journal here and Create() restores
  // from it if it exists.
  std::string journal_path;
};

// What-if: evaluate the current selection problem at alternative space
// budgets, against the state current at admission time.
struct WhatIfRequest {
  // Budgets to sweep; empty = just the served budget.
  std::vector<double> budgets;
  // 0 = ServiceOptions::default_deadline_ms.
  int64_t deadline_ms = 0;
  // Compute added/removed structure names vs the served design.
  bool diff_against_current = true;
};

struct WhatIfPoint {
  double budget = 0.0;
  // Ok, or an interruption code when the deadline cut the run short (the
  // numbers then describe the anytime prefix).
  Status status;
  bool completed = false;
  double space_used = 0.0;
  double average_query_cost = 0.0;
  size_t num_structures = 0;
  // Design diff vs the served recommendation (names), when requested.
  std::vector<std::string> added;
  std::vector<std::string> removed;
};

struct WhatIfResult {
  // Terminal request outcome: Ok (all points evaluated), DeadlineExceeded
  // (sweep cut short; completed points are present), ResourceExhausted
  // (rejected by admission control; no points), or the first hard error.
  Status status;
  // Epoch of the state the request ran against.
  uint64_t epoch = 0;
  // Transparent retry count across the sweep (transient failures absorbed
  // by the backoff loop).
  size_t retries = 0;
  std::vector<WhatIfPoint> points;
};

// Outcome of one AdvanceEpoch call.
struct EpochResult {
  // Status of the epoch transition itself: Ok also when nothing drifted;
  // a re-selection failure (injected fault, rejected config) leaves the
  // epoch unadvanced and reports the cause here; a journal write failure
  // after an otherwise successful transition also lands here (the
  // in-memory state did advance — Save() can be retried).
  Status status;
  uint64_t epoch = 0;       // epoch after the call
  double drift = 0.0;       // KL(closing epoch ‖ previous epoch), nats
  bool drift_detected = false;
  bool reselected = false;  // a new design was published
  bool degraded = false;    // ... via the sparse + beam fallback
  bool pending = false;     // ... and was cut short (resumable)
};

// Monotonically increasing identifier of the served design.
struct ServedSnapshot {
  uint64_t epoch = 0;        // observation epoch when this design landed
  uint64_t generation = 0;   // bumped by every published design
  bool degraded = false;     // built via the sparse fallback path
  bool pending = false;      // selection was interrupted; resumable
  Recommendation recommendation;
  SelectionCheckpoint checkpoint;  // resumable prefix of `recommendation`
  Workload workload;               // workload the advisor was built from
  uint64_t graph_fingerprint = 0;
};

// Aggregate counters for the soak harness ("no lost request": ok +
// deadline_exceeded + rejected + failed == requests submitted).
struct ServiceStats {
  uint64_t whatif_ok = 0;
  uint64_t whatif_deadline_exceeded = 0;
  uint64_t whatif_rejected = 0;
  uint64_t whatif_failed = 0;
  uint64_t whatif_retries = 0;
  uint64_t observations = 0;
  uint64_t observations_dropped = 0;
  uint64_t epochs_advanced = 0;
  uint64_t epoch_failures = 0;
  uint64_t reselections = 0;
  uint64_t degraded_reselections = 0;
};

class AdvisorService {
 public:
  // Builds the initial advisor and design for `initial_workload` (dense
  // build, sparse fallback past the memory ceiling) and starts serving at
  // epoch 0 — unless options.journal_path names an existing journal, in
  // which case the served state (epoch, sketches, design, pending
  // checkpoint) is restored from it bit-identically and
  // `initial_workload` is ignored. Returns the first hard error instead
  // of a service (corrupt journal = DataLoss; journal taken against
  // different schema/sizes = FailedPrecondition).
  static StatusOr<std::unique_ptr<AdvisorService>> Create(
      const CubeSchema& schema, const ViewSizes& sizes,
      const Workload& initial_workload, const ServiceOptions& options);

  AdvisorService(const AdvisorService&) = delete;
  AdvisorService& operator=(const AdvisorService&) = delete;

  // ---- Observation plane ----

  // Records one executed query. Thread-safe, wait-free past the sketch
  // shard lock. A transient failure (injected at "service.sketch.insert")
  // drops the observation, bumps observations_dropped, and is returned —
  // the service keeps running.
  Status Observe(const SliceQuery& query, double weight = 1.0);

  // Adapter for Executor::SetQueryObserver: feeds every executed query
  // into Observe (drop-on-failure). The returned callable holds a raw
  // pointer to this service; the service must outlive the executor. The
  // std::function type matches Executor::QueryObserver without this
  // header depending on the engine.
  std::function<void(const SliceQuery&, const ExecutionStats&)>
  ObserverCallback();

  // ---- Request plane ----

  // Budget sweep / design diff against the currently served state. Safe to
  // call from many threads; each call is admitted (or rejected) and runs
  // under its own deadline with bounded retry on transient failures.
  WhatIfResult WhatIf(const WhatIfRequest& request);

  // ---- Control plane ----

  // Closes the current observation epoch: scores drift vs the previous
  // epoch, re-selects when past the threshold (worker thread, checkpoint
  // warm start, degradation fallback), publishes, journals (when
  // configured), and advances the epoch counter. Serialized internally;
  // concurrent calls simply run one after the other. On a re-selection
  // failure the epoch does not advance and the previous design keeps
  // serving — the caller may retry.
  EpochResult AdvanceEpoch();

  // Resumes and completes a pending (interrupted) re-selection on the
  // *same* advisor, publishing the completed design. No-op (Ok) when
  // nothing is pending. The completed design is bit-identical to what the
  // uninterrupted selection would have produced (the greedy determinism
  // contract).
  Status CompletePendingReselection();

  // Journals the served state (atomic write + checksum). No-op (Ok) when
  // journaling is not configured.
  Status Save();

  // ---- Introspection ----

  // Copy of the currently served snapshot (cheap relative to selection;
  // used by CLIs and tests).
  ServedSnapshot Snapshot() const;

  // Current observation epoch (monotone; never decreases).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  ServiceStats Stats() const;

  const ServiceOptions& options() const { return options_; }

 private:
  struct ServedState {
    std::shared_ptr<const Advisor> advisor;
    ServedSnapshot snapshot;
  };

  AdvisorService(CubeSchema schema, ViewSizes sizes, ServiceOptions options);

  // Builds an advisor for `workload`: dense first, sparse + compressed
  // columns when the dense build fails or busts the memory ceiling.
  // *degraded reports which path was taken.
  StatusOr<Advisor> BuildAdvisor(const Workload& workload,
                                 bool* degraded) const;

  // One selection run on `advisor` (serial — selection threads would race
  // concurrent what-ifs for the shared pool's single job slot), honoring
  // `control` and the degraded beam cap.
  Recommendation RunSelection(const Advisor& advisor, double budget,
                              const RunControl& control, bool degraded,
                              const SelectionCheckpoint* resume) const;

  // Re-selects for `workload` and publishes the result. Called with
  // epoch_mu_ held.
  Status Reselect(const Workload& workload, EpochResult* out);

  // Publishes a new served state (the only writer of state_).
  void Publish(std::shared_ptr<const ServedState> next);
  std::shared_ptr<const ServedState> Current() const;

  std::string SerializeJournal() const;
  Status LoadJournal(const std::string& text);

  const CubeSchema schema_;
  const ViewSizes sizes_;
  const ServiceOptions options_;

  mutable std::mutex state_mu_;  // guards the state_ pointer swap
  std::shared_ptr<const ServedState> state_;

  std::atomic<uint64_t> epoch_{0};
  std::atomic<size_t> inflight_{0};

  // Epoch transitions (drift scoring, re-selection, sketch rotation) are
  // serialized; observation inserts are not blocked by this.
  std::mutex epoch_mu_;
  // Guards the epoch-boundary rotation of the two sketch pointers against
  // concurrent Observe calls (inserts themselves serialize on the sketch's
  // own shard locks).
  mutable std::mutex sketch_mu_;
  std::unique_ptr<FrequencySketch> current_sketch_;
  std::unique_ptr<FrequencySketch> previous_sketch_;

  // Stats counters (relaxed; read as a snapshot).
  std::atomic<uint64_t> whatif_ok_{0};
  std::atomic<uint64_t> whatif_deadline_{0};
  std::atomic<uint64_t> whatif_rejected_{0};
  std::atomic<uint64_t> whatif_failed_{0};
  std::atomic<uint64_t> whatif_retries_{0};
  std::atomic<uint64_t> observations_{0};
  std::atomic<uint64_t> observations_dropped_{0};
  std::atomic<uint64_t> epochs_advanced_{0};
  std::atomic<uint64_t> epoch_failures_{0};
  std::atomic<uint64_t> reselections_{0};
  std::atomic<uint64_t> degraded_reselections_{0};
};

}  // namespace olapidx

#endif  // OLAPIDX_SERVICE_ADVISOR_SERVICE_H_
