#include "service/hierarchical_degrade.h"

#include "common/metrics.h"

namespace olapidx {

StatusOr<HierarchicalAdvisor> BuildHierarchicalAdvisorDegraded(
    const HierarchicalSchema& schema, double raw_rows,
    const std::vector<WeightedHQuery>& workload,
    const HierarchicalDegradeOptions& options, bool* degraded) {
  *degraded = false;
  StatusOr<HierarchicalAdvisor> dense =
      HierarchicalAdvisor::Create(schema, raw_rows, workload, options.dense);
  if (dense.ok() && dense->cube_graph().graph.CostTableBytes() <=
                        options.memory_ceiling_bytes) {
    return dense;
  }
  *degraded = true;
  OLAPIDX_METRIC_COUNTER(degraded_builds, "service.degraded_builds");
  degraded_builds.Add(1);
  return HierarchicalAdvisor::CreateSparse(schema, raw_rows, workload,
                                           options.sparse);
}

}  // namespace olapidx
