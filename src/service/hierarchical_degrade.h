// The hierarchical rung of the service degradation ladder: the same
// dense → sparse fallback AdvisorService::BuildAdvisor applies to flat
// cubes (service/advisor_service.cc), for callers standing up a
// HierarchicalAdvisor. Try the dense hierarchical build first; if it is
// impossible (lattice over the size ceilings, too many dimensions for fat
// enumeration) or its cost tables would exceed the memory ceiling, fall
// back to the workload-pruned sparse hierarchical build with compressed
// cost columns. `*degraded` reports which path was taken, and degraded
// builds bump the same service.degraded_builds counter.

#ifndef OLAPIDX_SERVICE_HIERARCHICAL_DEGRADE_H_
#define OLAPIDX_SERVICE_HIERARCHICAL_DEGRADE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "hierarchy/hierarchical_advisor.h"

namespace olapidx {

struct HierarchicalDegradeOptions {
  // Dense build attempted first.
  HierarchicalGraphOptions dense;
  // Sparse fallback (pruning knobs, streaming sink window).
  SparseHierarchicalGraphOptions sparse;
  // Dense cost tables above this fall through to the sparse rung (same
  // default as ServiceOptions::memory_ceiling_bytes).
  uint64_t memory_ceiling_bytes = 1ull << 30;
};

StatusOr<HierarchicalAdvisor> BuildHierarchicalAdvisorDegraded(
    const HierarchicalSchema& schema, double raw_rows,
    const std::vector<WeightedHQuery>& workload,
    const HierarchicalDegradeOptions& options, bool* degraded);

}  // namespace olapidx

#endif  // OLAPIDX_SERVICE_HIERARCHICAL_DEGRADE_H_
