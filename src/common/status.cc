#include "common/status.h"

namespace olapidx {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
  }
  return "UNKNOWN";
}

int StatusExitCode(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 0;
    // 1 is the catch-all shells use for "something failed"; 2 is reserved
    // for usage errors (the getopt convention the CLIs follow). Status
    // codes start at 3 so scripted callers can branch on the failure kind.
    case StatusCode::kInvalidArgument:
      return 3;
    case StatusCode::kNotFound:
      return 4;
    case StatusCode::kAlreadyExists:
      return 5;
    case StatusCode::kFailedPrecondition:
      return 6;
    case StatusCode::kResourceExhausted:
      return 7;
    case StatusCode::kDeadlineExceeded:
      return 8;
    case StatusCode::kCancelled:
      return 9;
    case StatusCode::kUnavailable:
      return 10;
    case StatusCode::kDataLoss:
      return 11;
    case StatusCode::kInternal:
      return 12;
    case StatusCode::kUnimplemented:
      return 13;
  }
  return 1;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace olapidx
