// Recoverable-error propagation for boundary-reachable failure paths.
//
// The library does not use exceptions (see DESIGN.md). Programming errors
// and violated internal invariants still abort via OLAPIDX_CHECK; anything
// an *external input* can trigger — malformed design/sizes/CSV text, an
// impossible advisor configuration, an injected fault, a deadline — travels
// as a Status (or StatusOr<T> for value-returning entry points) so that a
// long-running advisor service can reject the request and keep serving.
//
// Context chaining: callers closer to the boundary prepend what they were
// doing, producing messages like
//     "applying design 'prod.design': line 7: unknown dimension 'q'"
// via Status::WithContext / OLAPIDX_RETURN_IF_ERROR_CTX.

#ifndef OLAPIDX_COMMON_STATUS_H_
#define OLAPIDX_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace olapidx {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,    // malformed external input or configuration
  kNotFound,           // a named entity does not exist
  kAlreadyExists,      // duplicate where uniqueness is required
  kFailedPrecondition, // operation ordering violated (e.g. index before view)
  kResourceExhausted,  // a caller-imposed budget (stages, space) ran out
  kDeadlineExceeded,   // wall-clock deadline expired (anytime stop)
  kCancelled,          // cooperative cancellation requested (anytime stop)
  kUnavailable,        // transient environment failure (injected faults)
  kDataLoss,           // persisted artifact is corrupt beyond parsing
  kInternal,           // invariant violation surfaced instead of aborting
  kUnimplemented,      // requested combination is not supported
};

// "OK", "INVALID_ARGUMENT", ... (stable, used in rendered messages).
const char* StatusCodeName(StatusCode code);

class Status;

// Process exit code for a CLI that failed with `status`: 0 for OK and a
// distinct, stable nonzero code per StatusCode (3 = kInvalidArgument
// through 13 = kUnimplemented; 2 stays reserved for usage errors), so
// scripted callers can branch on the failure kind without parsing stderr.
int StatusExitCode(const Status& status);

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    OLAPIDX_DCHECK(code != StatusCode::kOk || message_.empty());
  }

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status DataLoss(std::string m) {
    return Status(StatusCode::kDataLoss, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // True for the codes that mean "stopped early on purpose, partial result
  // is valid" rather than "the input was bad": deadline, cancellation, and
  // exhausted caller budgets. The anytime contract of the selection
  // algorithms keys off this.
  bool IsInterruption() const {
    return code_ == StatusCode::kDeadlineExceeded ||
           code_ == StatusCode::kCancelled ||
           code_ == StatusCode::kResourceExhausted;
  }

  // "OK" or "INVALID_ARGUMENT: line 3: unknown dimension 'q'".
  std::string ToString() const;

  // Returns a copy with `context + ": "` prepended to the message (no-op
  // on OK). Chain outward: innermost detail stays rightmost.
  Status WithContext(const std::string& context) const {
    if (ok()) return *this;
    return Status(code_, context + ": " + message_);
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// A value or the Status explaining why there is none. Access to the value
// of a failed StatusOr is a programming error and aborts (OLAPIDX_CHECK).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Implicit from Status (must be non-OK) and from T — so `return status;`
  // and `return value;` both work, as does OLAPIDX_FAULT_POINT.
  StatusOr(Status status) : status_(std::move(status)) {
    OLAPIDX_CHECK(!status_.ok());
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    OLAPIDX_CHECK(ok());
    return *value_;
  }
  const T& value() const& {
    OLAPIDX_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    OLAPIDX_CHECK(ok());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  // Without this overload `*std::move(statusor)` silently binds the const&
  // accessor and deep-copies the value — for a finalized dim-7 graph that
  // copy is ~125 MB of cost tables.
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

}  // namespace olapidx

// Early-return plumbing for Status-returning functions (works in functions
// returning Status or StatusOr<T>).
#define OLAPIDX_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::olapidx::Status _olapidx_status = (expr);      \
    if (!_olapidx_status.ok()) return _olapidx_status; \
  } while (false)

// Same, prepending `context` to the propagated message.
#define OLAPIDX_RETURN_IF_ERROR_CTX(expr, context)                    \
  do {                                                                \
    ::olapidx::Status _olapidx_status = (expr);                       \
    if (!_olapidx_status.ok())                                        \
      return _olapidx_status.WithContext(context);                    \
  } while (false)

#endif  // OLAPIDX_COMMON_STATUS_H_
