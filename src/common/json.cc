#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace olapidx {

namespace {

// Largest double for which every smaller-magnitude integral double maps to
// a distinct int64 (2^53).
constexpr double kMaxExactInteger = 9007199254740992.0;

std::string FormatNumber(double v) {
  OLAPIDX_CHECK(std::isfinite(v));
  if (v == std::floor(v) && std::fabs(v) < kMaxExactInteger) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  // Shortest precision that survives a strtod round trip (15 digits is
  // usually enough; 17 always is).
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// ---- Parser ----

constexpr int kMaxParseDepth = 200;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<Json> Run() {
    Json value;
    OLAPIDX_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxParseDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        OLAPIDX_RETURN_IF_ERROR(ParseString(&s));
        *out = Json::Str(std::move(s));
        return Status::Ok();
      }
      case 't':
        return ParseLiteral("true", Json::Bool(true), out);
      case 'f':
        return ParseLiteral("false", Json::Bool(false), out);
      case 'n':
        return ParseLiteral("null", Json::Null(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(const char* literal, Json value, Json* out) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Error(std::string("expected '") + literal + "'");
      }
      ++pos_;
    }
    *out = std::move(value);
    return Status::Ok();
  }

  Status ParseObject(Json* out, int depth) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      OLAPIDX_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      Json value;
      OLAPIDX_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Set(key, std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(Json* out, int depth) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    for (;;) {
      Json value;
      OLAPIDX_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Push(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t code = 0;
          OLAPIDX_RETURN_IF_ERROR(ParseHex4(&code));
          if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair: expect a low surrogate next.
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              uint32_t low = 0;
              OLAPIDX_RETURN_IF_ERROR(ParseHex4(&low));
              if (low < 0xDC00 || low > 0xDFFF) {
                return Error("invalid low surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              return Error("unpaired high surrogate");
            }
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
      value = (value << 4) | digit;
    }
    *out = value;
    return Status::Ok();
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    // Validate against the JSON number grammar before handing the token
    // to strtod (which would happily accept hex, inf, and nan).
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    size_t int_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    size_t int_len = pos_ - int_start;
    if (int_len == 0) {
      pos_ = start;
      return Error("invalid value");
    }
    if (int_len > 1 && text_[int_start] == '0') {
      pos_ = start;
      return Error("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      size_t frac_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == frac_start) return Error("missing fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == exp_start) return Error("missing exponent digits");
    }
    std::string token = text_.substr(start, pos_ - start);
    double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) return Error("number out of range");
    *out = Json::Number(value);
    return Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Json Json::Bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double v) {
  OLAPIDX_CHECK(std::isfinite(v));
  // Integers beyond 2^53 silently lose precision; refuse them.
  OLAPIDX_CHECK(std::fabs(v) <= kMaxExactInteger);
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::Str(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::AsBool() const {
  OLAPIDX_CHECK(is_bool());
  return bool_;
}

double Json::AsDouble() const {
  OLAPIDX_CHECK(is_number());
  return number_;
}

const std::string& Json::AsString() const {
  OLAPIDX_CHECK(is_string());
  return string_;
}

void Json::Push(Json value) {
  OLAPIDX_CHECK(is_array());
  elements_.push_back(std::move(value));
}

size_t Json::size() const {
  if (is_array()) return elements_.size();
  if (is_object()) return members_.size();
  return 0;
}

const Json& Json::at(size_t i) const {
  OLAPIDX_CHECK(is_array());
  OLAPIDX_CHECK(i < elements_.size());
  return elements_[i];
}

Json& Json::Set(const std::string& key, Json value) {
  OLAPIDX_CHECK(is_object());
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

const Json* Json::Find(const std::string& key) const {
  OLAPIDX_CHECK(is_object());
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  OLAPIDX_CHECK(is_object());
  return members_;
}

const std::vector<Json>& Json::elements() const {
  OLAPIDX_CHECK(is_array());
  return elements_;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  auto newline_indent = [&](int d) {
    if (indent <= 0) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      *out += FormatNumber(number_);
      break;
    case Type::kString:
      AppendEscaped(string_, out);
      break;
    case Type::kArray:
      if (elements_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < elements_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline_indent(depth + 1);
        elements_[i].DumpTo(out, indent, depth + 1);
      }
      newline_indent(depth);
      out->push_back(']');
      break;
    case Type::kObject:
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline_indent(depth + 1);
        AppendEscaped(members_[i].first, out);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      newline_indent(depth);
      out->push_back('}');
      break;
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  if (indent > 0) out.push_back('\n');
  return out;
}

StatusOr<Json> Json::Parse(const std::string& text) {
  return Parser(text).Run();
}

}  // namespace olapidx
