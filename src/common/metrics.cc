#include "common/metrics.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <new>

#include "common/json.h"

namespace olapidx {

// ---------------------------------------------------------------------------
// Snapshot methods — compiled in both build modes.
// ---------------------------------------------------------------------------

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  Json counters_obj = Json::Object();
  for (const auto& [name, value] : counters) {
    counters_obj.Set(name, Json::Number(static_cast<double>(value)));
  }
  Json gauges_obj = Json::Object();
  for (const auto& [name, value] : gauges) {
    gauges_obj.Set(name, Json::Number(static_cast<double>(value)));
  }
  Json histograms_obj = Json::Object();
  for (const auto& [name, h] : histograms) {
    Json entry = Json::Object();
    entry.Set("count", Json::Number(static_cast<double>(h.count)));
    entry.Set("sum", Json::Number(static_cast<double>(h.sum)));
    Json buckets = Json::Array();
    for (uint64_t b : h.buckets) {
      buckets.Push(Json::Number(static_cast<double>(b)));
    }
    entry.Set("buckets", std::move(buckets));
    histograms_obj.Set(name, std::move(entry));
  }
  Json doc = Json::Object();
  doc.Set("counters", std::move(counters_obj));
  doc.Set("gauges", std::move(gauges_obj));
  doc.Set("histograms", std::move(histograms_obj));
  return doc.Dump(0);
}

MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  // Counters: after − before (both sorted by name; merge walk).
  size_t i = 0;
  for (const auto& [name, value] : after.counters) {
    while (i < before.counters.size() && before.counters[i].first < name) {
      ++i;
    }
    uint64_t prior =
        (i < before.counters.size() && before.counters[i].first == name)
            ? before.counters[i].second
            : 0;
    if (value > prior) delta.counters.emplace_back(name, value - prior);
  }
  // Gauges are instantaneous: keep `after`'s values.
  delta.gauges = after.gauges;
  // Histograms: count/sum and buckets subtract element-wise.
  i = 0;
  for (const auto& [name, h] : after.histograms) {
    while (i < before.histograms.size() &&
           before.histograms[i].first < name) {
      ++i;
    }
    const HistogramSnapshot* prior =
        (i < before.histograms.size() && before.histograms[i].first == name)
            ? &before.histograms[i].second
            : nullptr;
    if (prior == nullptr) {
      if (h.count > 0) delta.histograms.emplace_back(name, h);
      continue;
    }
    if (h.count <= prior->count) continue;  // quiescent (or reset: drop)
    HistogramSnapshot d;
    d.count = h.count - prior->count;
    d.sum = h.sum >= prior->sum ? h.sum - prior->sum : 0;
    d.buckets.resize(h.buckets.size(), 0);
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      uint64_t p = b < prior->buckets.size() ? prior->buckets[b] : 0;
      d.buckets[b] = h.buckets[b] >= p ? h.buckets[b] - p : 0;
    }
    while (!d.buckets.empty() && d.buckets.back() == 0) d.buckets.pop_back();
    delta.histograms.emplace_back(name, std::move(d));
  }
  return delta;
}

#if defined(OLAPIDX_METRICS_ENABLED)

// ---------------------------------------------------------------------------
// Real registry.
// ---------------------------------------------------------------------------

namespace metrics_internal {

size_t ThisThreadShard() {
  static std::atomic<size_t> next_ordinal{0};
  thread_local size_t shard =
      next_ordinal.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace metrics_internal

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  out.buckets.assign(kHistogramBuckets, 0);
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  while (!out.buckets.empty() && out.buckets.back() == 0) {
    out.buckets.pop_back();
  }
  return out;
}

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // Sorted maps of unique_ptrs: stable addresses, Snapshot iterates in
  // name order for free.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  // Leaked deliberately: instrumentation sites hold references across
  // static destruction.
  static Impl* impl = new Impl();
  return *impl;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::unique_ptr<Counter>& slot = im.counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::unique_ptr<Gauge>& slot = im.gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::unique_ptr<Histogram>& slot = im.histograms[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  MetricsSnapshot out;
  for (const auto& [name, counter] : im.counters) {
    uint64_t v = counter->Value();
    if (v != 0) out.counters.emplace_back(name, v);
  }
  for (const auto& [name, gauge] : im.gauges) {
    int64_t v = gauge->Value();
    if (v != 0) out.gauges.emplace_back(name, v);
  }
  for (const auto& [name, histogram] : im.histograms) {
    HistogramSnapshot h = histogram->Snapshot();
    if (h.count != 0) out.histograms.emplace_back(name, std::move(h));
  }
  return out;
}

void MetricsRegistry::Reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  // Re-created in place (the maps own them); references handed out by
  // Get* would dangle, so rebuild the objects' state instead: swap each
  // for a fresh instance is unsafe — zero them by reconstruction.
  for (auto& [name, counter] : im.counters) {
    Counter* fresh = new (counter.get()) Counter();
    (void)fresh;
  }
  for (auto& [name, gauge] : im.gauges) {
    Gauge* fresh = new (gauge.get()) Gauge();
    (void)fresh;
  }
  for (auto& [name, histogram] : im.histograms) {
    Histogram* fresh = new (histogram.get()) Histogram();
    (void)fresh;
  }
}

#endif  // OLAPIDX_METRICS_ENABLED

}  // namespace olapidx
