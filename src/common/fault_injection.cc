#include "common/fault_injection.h"

#include "common/rng.h"

namespace olapidx {

FaultInjector& FaultInjector::Global() {
  // Leaked deliberately, like ThreadPool::Shared(): fault points may be
  // crossed during static destruction.
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::ArmNth(const std::string& point, uint64_t nth,
                           StatusCode code) {
  OLAPIDX_CHECK(nth >= 1);
  std::lock_guard<std::mutex> lock(mu_);
  PointState& s = points_[point];
  s.mode = PointState::Mode::kNth;
  s.nth = nth;
  s.armed_at_hit = s.hits;
  s.code = code;
}

void FaultInjector::ArmAlways(const std::string& point, StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& s = points_[point];
  s.mode = PointState::Mode::kAlways;
  s.code = code;
}

void FaultInjector::ArmRandom(const std::string& point, double probability,
                              uint64_t seed, StatusCode code) {
  OLAPIDX_CHECK(probability >= 0.0 && probability <= 1.0);
  std::lock_guard<std::mutex> lock(mu_);
  PointState& s = points_[point];
  s.mode = PointState::Mode::kRandom;
  s.probability = probability;
  s.rng_state = seed;
  s.code = code;
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it != points_.end()) it->second.mode = PointState::Mode::kDisarmed;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
}

uint64_t FaultInjector::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it != points_.end() ? it->second.hits : 0;
}

Status FaultInjector::Check(const char* point) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& s = points_[point];
  ++s.hits;
  bool fire = false;
  switch (s.mode) {
    case PointState::Mode::kDisarmed:
      break;
    case PointState::Mode::kNth:
      fire = s.hits == s.armed_at_hit + s.nth;
      break;
    case PointState::Mode::kAlways:
      fire = true;
      break;
    case PointState::Mode::kRandom: {
      SplitMix64 rng(s.rng_state);
      uint64_t draw = rng.Next();
      s.rng_state = draw;  // advance the per-point stream deterministically
      // Top 53 bits -> uniform double in [0, 1).
      double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
      fire = u < s.probability;
      break;
    }
  }
  if (!fire) return Status::Ok();
  return Status(s.code, std::string("injected fault at '") + point + "'");
}

}  // namespace olapidx
