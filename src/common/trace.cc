#include "common/trace.h"

#if defined(OLAPIDX_METRICS_ENABLED)

#include <algorithm>
#include <array>
#include <chrono>
#include <mutex>

#include "common/json.h"

namespace olapidx {

std::atomic<bool> Tracer::enabled_{false};

uint64_t TraceNowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            epoch)
          .count());
}

namespace {

uint32_t ThisThreadOrdinal() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

struct Tracer::Impl {
  mutable std::mutex mu;
  std::array<SpanRecord, kTraceCapacity> ring;
  uint64_t recorded = 0;  // total ever; ring slot = index % capacity
};

Tracer::Impl& Tracer::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Record(const char* name, uint64_t start_micros,
                    uint64_t duration_micros) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.ring[im.recorded % kTraceCapacity] =
      SpanRecord{name, start_micros, duration_micros, ThisThreadOrdinal()};
  ++im.recorded;
}

std::vector<SpanRecord> Tracer::Spans() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<SpanRecord> out;
  uint64_t retained = std::min<uint64_t>(im.recorded, kTraceCapacity);
  out.reserve(static_cast<size_t>(retained));
  for (uint64_t i = im.recorded - retained; i < im.recorded; ++i) {
    out.push_back(im.ring[i % kTraceCapacity]);
  }
  return out;
}

uint64_t Tracer::recorded() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.recorded;
}

uint64_t Tracer::dropped() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.recorded > kTraceCapacity ? im.recorded - kTraceCapacity : 0;
}

void Tracer::Clear() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.recorded = 0;
}

std::string Tracer::ToJson() const {
  Json spans = Json::Array();
  for (const SpanRecord& s : Spans()) {
    Json span = Json::Object();
    span.Set("name", Json::Str(s.name));
    span.Set("start_us", Json::Number(static_cast<double>(s.start_micros)));
    span.Set("dur_us", Json::Number(static_cast<double>(s.duration_micros)));
    span.Set("thread", Json::Number(static_cast<double>(s.thread)));
    spans.Push(std::move(span));
  }
  Json doc = Json::Object();
  doc.Set("schema", Json::Str("olapidx-trace"));
  doc.Set("version", Json::Number(1));
  doc.Set("dropped", Json::Number(static_cast<double>(dropped())));
  doc.Set("spans", std::move(spans));
  return doc.Dump(0);
}

}  // namespace olapidx

#endif  // OLAPIDX_METRICS_ENABLED
