// Process-wide metrics registry: named counters, gauges, and histograms
// with fixed log-2 buckets, designed so that instrumentation can live on
// hot paths.
//
// Hot-path cost model. Counters and histograms are *lock-sharded*: each
// holds kMetricShards cache-line-aligned atomic cells, a thread picks its
// shard once (a thread-local ordinal) and updates it with a relaxed
// fetch_add, so concurrent writers on different threads touch different
// cache lines. Reads (Value / Snapshot) sum the shards — slightly stale
// under concurrency, exact once writers are quiescent. Registration
// (MetricsRegistry::Get*) takes a mutex and returns a stable reference;
// instrumentation sites cache it in a function-local static via the
// OLAPIDX_METRIC_* macros below, so steady state is one guarded static
// read plus one relaxed atomic add per event.
//
// Build modes. With the CMake option OLAPIDX_METRICS=ON (the default) the
// real registry is compiled; with OLAPIDX_METRICS=OFF every class below
// becomes an empty constexpr-constructible stub, the macros declare inert
// objects, and calls compile to nothing — zero overhead, same API, no
// #ifdefs at call sites.
//
// Snapshots. MetricsSnapshot is plain data (available in both modes): the
// non-zero metrics sorted by name. SnapshotDelta(before, after) attributes
// activity to a region of interest — SelectionResult::metrics carries one
// such delta per selection run. Deltas are process-wide: selections
// running concurrently in other threads bleed into each other's deltas
// (the repository's entry points run selections serially).

#ifndef OLAPIDX_COMMON_METRICS_H_
#define OLAPIDX_COMMON_METRICS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#if defined(OLAPIDX_METRICS_ENABLED)
#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#endif

namespace olapidx {

// ---------------------------------------------------------------------------
// Snapshot types — plain data, identical in both build modes.
// ---------------------------------------------------------------------------

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  // buckets[i] counts observations v with bit_width(v) == i: bucket 0
  // holds v == 0, bucket i >= 1 holds 2^(i-1) <= v < 2^i. Trailing zero
  // buckets are trimmed, so buckets.size() <= 65.
  std::vector<uint64_t> buckets;

  double Mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

struct MetricsSnapshot {
  // Each list is sorted by name; zero counters, zero gauges, and empty
  // histograms are dropped.
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  bool Empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  // 0 / nullptr when the name is absent.
  uint64_t CounterValue(const std::string& name) const;
  const HistogramSnapshot* FindHistogram(const std::string& name) const;

  // Deterministic single-line JSON:
  //   {"counters":{...},"gauges":{...},"histograms":{"h":{"count":..,
  //    "sum":..,"buckets":[..]}}}
  std::string ToJson() const;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

// Counters and histograms: after − before (monotone, so never negative
// unless the registry was Reset in between — negative differences are
// dropped). Gauges are instantaneous, so the delta keeps `after`'s values.
// Zero/empty entries are dropped, so the delta of a quiescent region is
// Empty().
MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after);

#if defined(OLAPIDX_METRICS_ENABLED)

// ---------------------------------------------------------------------------
// Real implementation (OLAPIDX_METRICS=ON).
// ---------------------------------------------------------------------------

inline constexpr size_t kMetricShards = 8;
// bit_width of a uint64_t is in [0, 64].
inline constexpr size_t kHistogramBuckets = 65;

namespace metrics_internal {
// This thread's shard: a small per-thread ordinal modulo kMetricShards.
size_t ThisThreadShard();
}  // namespace metrics_internal

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    shards_[metrics_internal::ThisThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(uint64_t value) {
    size_t bucket =
        value == 0 ? 0 : static_cast<size_t>(std::bit_width(value));
    Shard& s = shards_[metrics_internal::ThisThreadShard()];
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
    s.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  }
  HistogramSnapshot Snapshot() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
  };
  std::array<Shard, kMetricShards> shards_{};
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Registers on first use; returns the same stable reference thereafter.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // The current non-zero metrics, sorted by name.
  MetricsSnapshot Snapshot() const;

  // Test support: zeroes every registered metric (names stay registered).
  // Not safe against concurrent writers.
  void Reset();

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

#else  // !OLAPIDX_METRICS_ENABLED

// ---------------------------------------------------------------------------
// No-op stubs (OLAPIDX_METRICS=OFF): same API, constexpr-constructible,
// every call compiles away.
// ---------------------------------------------------------------------------

class Counter {
 public:
  constexpr Counter() = default;
  void Add(uint64_t = 1) {}
  uint64_t Value() const { return 0; }
};

class Gauge {
 public:
  constexpr Gauge() = default;
  void Set(int64_t) {}
  void Add(int64_t) {}
  int64_t Value() const { return 0; }
};

class Histogram {
 public:
  constexpr Histogram() = default;
  void Observe(uint64_t) {}
  HistogramSnapshot Snapshot() const { return {}; }
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global() {
    static MetricsRegistry registry;
    return registry;
  }
  Counter& GetCounter(const std::string&) { return counter_; }
  Gauge& GetGauge(const std::string&) { return gauge_; }
  Histogram& GetHistogram(const std::string&) { return histogram_; }
  MetricsSnapshot Snapshot() const { return {}; }
  void Reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

#endif  // OLAPIDX_METRICS_ENABLED

// Captures a registry snapshot at construction; Delta() is the activity
// since then. Used by the selection entry points to fill
// SelectionResult::metrics. Free (empty) when metrics are compiled out.
class MetricsRunScope {
 public:
#if defined(OLAPIDX_METRICS_ENABLED)
  MetricsRunScope() : before_(MetricsRegistry::Global().Snapshot()) {}
  MetricsSnapshot Delta() const {
    return SnapshotDelta(before_, MetricsRegistry::Global().Snapshot());
  }

 private:
  MetricsSnapshot before_;
#else
  MetricsRunScope() = default;
  MetricsSnapshot Delta() const { return {}; }
#endif
};

}  // namespace olapidx

// Instrumentation-site macros: declare a function-local handle `var` and
// use it with var.Add(..) / var.Set(..) / var.Observe(..). With metrics
// compiled out the handle is an inert constexpr-initialized stub (no
// static-init guard, no code).
#if defined(OLAPIDX_METRICS_ENABLED)
#define OLAPIDX_METRIC_COUNTER(var, name)   \
  static ::olapidx::Counter& var =          \
      ::olapidx::MetricsRegistry::Global().GetCounter(name)
#define OLAPIDX_METRIC_GAUGE(var, name)     \
  static ::olapidx::Gauge& var =            \
      ::olapidx::MetricsRegistry::Global().GetGauge(name)
#define OLAPIDX_METRIC_HISTOGRAM(var, name) \
  static ::olapidx::Histogram& var =        \
      ::olapidx::MetricsRegistry::Global().GetHistogram(name)
#else
#define OLAPIDX_METRIC_COUNTER(var, name) \
  static constinit ::olapidx::Counter var
#define OLAPIDX_METRIC_GAUGE(var, name) \
  static constinit ::olapidx::Gauge var
#define OLAPIDX_METRIC_HISTOGRAM(var, name) \
  static constinit ::olapidx::Histogram var
#endif

#endif  // OLAPIDX_COMMON_METRICS_H_
