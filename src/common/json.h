// Minimal deterministic JSON: a tree value type, a byte-stable writer, and
// a strict recursive-descent parser.
//
// Written for the machine-readable artifacts (BENCH_*.json, the metrics
// and trace exports), not as a general-purpose library, so it makes three
// deliberate guarantees the golden-file tests rely on:
//
//   1. Objects preserve insertion order (and the parser preserves source
//      order), so Dump(Parse(Dump(x))) == Dump(x) byte-for-byte.
//   2. Numbers print as integers when they are integral and exactly
//      representable, otherwise with the shortest decimal form that
//      round-trips through strtod — never in a locale- or
//      platform-dependent format.
//   3. Dump is a pure function of the tree: no pointers, no hashes, no
//      iteration-order dependence.
//
// Numbers are stored as double (like JavaScript); integers beyond 2^53
// are rejected by CHECK in Json::Number. NaN/Inf are not representable in
// JSON and likewise rejected.

#ifndef OLAPIDX_COMMON_JSON_H_
#define OLAPIDX_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace olapidx {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null

  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Number(double v);  // CHECKs isfinite and integral-exactness
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Value access; CHECKs the type.
  bool AsBool() const;
  double AsDouble() const;
  const std::string& AsString() const;

  // Array access. Push CHECKs is_array.
  void Push(Json value);
  size_t size() const;            // array: elements; object: members
  const Json& at(size_t i) const; // array element i

  // Object access. Set appends a new member or overwrites an existing one
  // in place (keeping its position); returns *this for chaining. Find
  // returns nullptr when the key is absent (first occurrence wins).
  Json& Set(const std::string& key, Json value);
  const Json* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const;
  const std::vector<Json>& elements() const;

  // Serialization. indent > 0 pretty-prints with that many spaces per
  // level and a trailing newline; indent == 0 is compact single-line.
  std::string Dump(int indent = 2) const;

  // Strict parse: exactly one JSON value plus trailing whitespace.
  // Errors carry the byte offset.
  static StatusOr<Json> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> elements_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace olapidx

#endif  // OLAPIDX_COMMON_JSON_H_
