// Scoped-span tracing: a low-overhead record of where wall time went.
//
// A span is (name, start, duration, thread), timed on the monotonic
// steady clock relative to a process-local epoch, and recorded into a
// global fixed-capacity ring buffer (oldest spans are overwritten once
// the ring wraps; `dropped()` reports how many). Spans are recorded at
// stage/query granularity — dozens to thousands per run, not per row —
// so the ring is guarded by a plain mutex; the cost that matters is the
// *disabled* path: tracing is off by default, and a disabled
// OLAPIDX_TRACE_SPAN costs one relaxed atomic load and no clock reads.
//
// Span names must be string literals (the ring stores the pointer).
//
// With the CMake option OLAPIDX_METRICS=OFF this entire facility compiles
// to nothing, same as the metrics registry (one switch for the whole
// observability layer).

#ifndef OLAPIDX_COMMON_TRACE_H_
#define OLAPIDX_COMMON_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#if defined(OLAPIDX_METRICS_ENABLED)
#include <atomic>
#endif

namespace olapidx {

struct SpanRecord {
  const char* name = nullptr;   // static string literal
  uint64_t start_micros = 0;    // since the process trace epoch (monotonic)
  uint64_t duration_micros = 0;
  uint32_t thread = 0;          // small per-thread ordinal

  friend bool operator==(const SpanRecord&, const SpanRecord&) = default;
};

#if defined(OLAPIDX_METRICS_ENABLED)

inline constexpr size_t kTraceCapacity = 16384;

class Tracer {
 public:
  static Tracer& Global();

  // Tracing starts disabled; advisor_cli --trace-json and the tests turn
  // it on. The check is a relaxed atomic load.
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  void Record(const char* name, uint64_t start_micros,
              uint64_t duration_micros);

  // The retained spans, oldest first.
  std::vector<SpanRecord> Spans() const;
  uint64_t recorded() const;  // total ever recorded
  uint64_t dropped() const;   // overwritten by ring wrap-around
  void Clear();

  // {"schema":"olapidx-trace","version":1,"dropped":N,"spans":[...]}
  std::string ToJson() const;

 private:
  Tracer() = default;
  struct Impl;
  Impl& impl() const;

  static std::atomic<bool> enabled_;
};

// Monotonic microseconds since the process trace epoch.
uint64_t TraceNowMicros();

class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (Tracer::Enabled()) {
      name_ = name;
      start_ = TraceNowMicros();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      Tracer::Global().Record(name_, start_, TraceNowMicros() - start_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_ = 0;
};

#else  // !OLAPIDX_METRICS_ENABLED

class Tracer {
 public:
  static Tracer& Global() {
    static Tracer tracer;
    return tracer;
  }
  static bool Enabled() { return false; }
  static void SetEnabled(bool) {}
  void Record(const char*, uint64_t, uint64_t) {}
  std::vector<SpanRecord> Spans() const { return {}; }
  uint64_t recorded() const { return 0; }
  uint64_t dropped() const { return 0; }
  void Clear() {}
  std::string ToJson() const {
    return "{\"schema\":\"olapidx-trace\",\"version\":1,\"dropped\":0,"
           "\"spans\":[]}";
  }
};

inline uint64_t TraceNowMicros() { return 0; }

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*) {}
};

#endif  // OLAPIDX_METRICS_ENABLED

}  // namespace olapidx

// OLAPIDX_TRACE_SPAN("name"): a block-scoped span covering the rest of
// the enclosing scope. Compiles to nothing under OLAPIDX_METRICS=OFF.
#if defined(OLAPIDX_METRICS_ENABLED)
#define OLAPIDX_TRACE_CONCAT_INNER(a, b) a##b
#define OLAPIDX_TRACE_CONCAT(a, b) OLAPIDX_TRACE_CONCAT_INNER(a, b)
#define OLAPIDX_TRACE_SPAN(name) \
  ::olapidx::ScopedSpan OLAPIDX_TRACE_CONCAT(olapidx_span_, __LINE__)(name)
#else
#define OLAPIDX_TRACE_SPAN(name) static_cast<void>(0)
#endif

#endif  // OLAPIDX_COMMON_TRACE_H_
