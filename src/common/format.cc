#include "common/format.h"

#include <cmath>
#include <cstdio>

namespace olapidx {

namespace {

// Renders `value` with up to two decimals, trimming trailing zeros and a
// dangling decimal point ("6", "0.8", "1.18").
std::string TrimmedFixed(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", value);
  std::string s(buf);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

}  // namespace

std::string FormatRowCount(double rows) {
  double a = std::fabs(rows);
  if (a >= 1e9) return TrimmedFixed(rows / 1e9) + "G";
  // The paper annotates subcubes in millions down to 0.1M, so prefer the M
  // unit from 1e5 upward.
  if (a >= 1e5) return TrimmedFixed(rows / 1e6) + "M";
  if (a >= 1e3) return TrimmedFixed(rows / 1e3) + "K";
  return TrimmedFixed(rows);
}

std::string FormatFixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return std::string(buf);
}

std::string FormatPercent(double fraction, int decimals) {
  return FormatFixed(fraction * 100.0, decimals) + "%";
}

}  // namespace olapidx
