#include "common/journal.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <sys/stat.h>

#include "common/fault_injection.h"

namespace olapidx {

uint64_t Fnv1a64(const void* data, size_t size, uint64_t seed) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 0xcbf29ce484222325ULL ^ seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string HashToHex(uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

bool ParseHexHash(const std::string& text, uint64_t* out) {
  if (text.size() != 16) return false;
  uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *out = value;
  return true;
}

Status AtomicWriteFile(const std::string& path, const std::string& content) {
  OLAPIDX_FAULT_POINT("journal.write");
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || !(out << content) || !out.flush()) {
      std::remove(tmp.c_str());
      return Status::Unavailable("cannot write temp file '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Unavailable("cannot rename '" + tmp + "' to '" + path +
                               "'");
  }
  return Status::Ok();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  OLAPIDX_FAULT_POINT("journal.read");
  if (!FileExists(path)) {
    return Status::NotFound("no such file '" + path + "'");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Unavailable("cannot open '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad()) return Status::Unavailable("read failure on '" + path + "'");
  return out.str();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace olapidx
