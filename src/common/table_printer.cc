#include "common/table_printer.h"

#include <algorithm>

#include "common/check.h"

namespace olapidx {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  OLAPIDX_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  OLAPIDX_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "| " : " | ",
                   static_cast<int>(widths[c]), row[c].c_str());
    }
    std::fprintf(out, " |\n");
  };
  print_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    std::fprintf(out, "%s%s", c == 0 ? "|-" : "-|-",
                 std::string(widths[c], '-').c_str());
  }
  std::fprintf(out, "-|\n");
  for (const auto& row : rows_) print_row(row);
}

}  // namespace olapidx
